// Package dits_test holds one testing.B benchmark per table and figure of
// the paper's evaluation. The `ditsbench` command regenerates the full
// tables (parameter sweeps, all sources); these benchmarks time the core
// operation behind each figure at the default parameters so `go test
// -bench=.` gives a quick, comparable profile of the whole system.
package dits_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dits/internal/bench"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
	"dits/internal/transport"
	"dits/internal/workload"
)

// fixture is the shared benchmark state: the five scaled sources gridded at
// the default θ, plus query nodes.
type fixture struct {
	sources []*dataset.Source
	grid    geo.Grid // shared world grid (federation benchmarks)
	nodes   [][]*dataset.Node

	transit      *dataset.Source
	transitGrid  geo.Grid
	transitNodes []*dataset.Node
	queries      []*dataset.Node
	queryCells   []cellset.Set
}

var (
	fx     *fixture
	fxOnce sync.Once
)

const (
	benchScale = 0.02
	benchTheta = 12
	benchK     = 10
	benchDelta = 10.0
	benchF     = 30
)

func setup() *fixture {
	fxOnce.Do(func() {
		f := &fixture{}
		f.sources = workload.GenerateAll(benchScale, 1)
		world := geo.EmptyRect
		for _, s := range f.sources {
			world = world.Union(s.Bounds())
		}
		f.grid = geo.NewGrid(benchTheta, world)
		for _, s := range f.sources {
			f.nodes = append(f.nodes, s.Nodes(f.grid))
			if s.Name == "Transit" {
				f.transit = s
			}
		}
		f.transitGrid = geo.NewGrid(benchTheta, f.transit.Bounds())
		f.transitNodes = f.transit.Nodes(f.transitGrid)
		for _, d := range workload.SampleQueries(f.transit, 10, 2) {
			if nd := dataset.NewNode(f.transitGrid, d); nd != nil {
				nd.ID = -1
				f.queries = append(f.queries, nd)
			}
			f.queryCells = append(f.queryCells, cellset.FromPoints(f.grid, d.Points))
		}
		fx = f
	})
	return fx
}

// --- Table I / Fig. 7: workload statistics -------------------------------

func BenchmarkTable1Stats(b *testing.B) {
	f := setup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range f.sources {
			_ = s.ComputeStats()
		}
	}
}

func BenchmarkFig7Heatmap(b *testing.B) {
	f := setup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		workload.Heatmap(f.transit, 48)
	}
}

// --- Fig. 8: index construction ------------------------------------------

func BenchmarkFig8Construction(b *testing.B) {
	f := setup()
	b.Run("DITS-L", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dits.Build(f.transitGrid, f.transitNodes, benchF)
		}
	})
	b.Run("QuadTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			quadtree.Build(benchTheta, f.transitNodes)
		}
	})
	b.Run("Rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.Build(8, f.transitNodes)
		}
	})
	b.Run("STS3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sts3.Build(f.transitNodes)
		}
	})
	b.Run("Josie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			josie.Build(f.transitNodes)
		}
	})
}

// --- Figs. 9-12: OJSP search ----------------------------------------------

func overlapSearchers(f *fixture, leafCap int) map[string]overlap.Searcher {
	return map[string]overlap.Searcher{
		"OverlapSearch": &overlap.DITSSearcher{Index: dits.Build(f.transitGrid, f.transitNodes, leafCap)},
		"Rtree":         &overlap.RtreeSearcher{Index: rtree.Build(8, f.transitNodes)},
		"Josie":         &overlap.JosieSearcher{Index: josie.Build(f.transitNodes)},
		"QuadTree":      &overlap.QuadtreeSearcher{Index: quadtree.Build(benchTheta, f.transitNodes)},
		"STS3":          &overlap.STS3Searcher{Index: sts3.Build(f.transitNodes)},
	}
}

func benchOverlap(b *testing.B, k int, leafCap int) {
	f := setup()
	for _, name := range []string{"OverlapSearch", "Rtree", "Josie", "QuadTree", "STS3"} {
		s := overlapSearchers(f, leafCap)[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.TopK(f.queries[i%len(f.queries)], k)
			}
		})
	}
}

func BenchmarkFig9OverlapK(b *testing.B)  { benchOverlap(b, benchK, benchF) }
func BenchmarkFig11OverlapQ(b *testing.B) { benchOverlap(b, benchK, benchF) }

func BenchmarkFig10OverlapTheta(b *testing.B) {
	f := setup()
	for _, theta := range []int{10, 12, 14} {
		g := geo.NewGrid(theta, f.transit.Bounds())
		nodes := f.transit.Nodes(g)
		s := &overlap.DITSSearcher{Index: dits.Build(g, nodes, benchF)}
		var qs []*dataset.Node
		for _, d := range workload.SampleQueries(f.transit, 10, 2) {
			if nd := dataset.NewNode(g, d); nd != nil {
				nd.ID = -1
				qs = append(qs, nd)
			}
		}
		b.Run(itoa2("theta", theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.TopK(qs[i%len(qs)], benchK)
			}
		})
	}
}

func BenchmarkFig12OverlapF(b *testing.B) {
	f := setup()
	for _, leafCap := range []int{10, 30, 50} {
		s := &overlap.DITSSearcher{Index: dits.Build(f.transitGrid, f.transitNodes, leafCap)}
		b.Run(itoa2("f", leafCap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.TopK(f.queries[i%len(f.queries)], benchK)
			}
		})
	}
}

// --- Figs. 13-14, 19-20: federation communication -------------------------

func buildCenter(f *fixture, opts federation.Options) *federation.Center {
	center := federation.NewCenter(f.grid, opts)
	for i, s := range f.sources {
		idx := dits.Build(f.grid, f.nodes[i], benchF)
		srv := federation.NewSourceServerWithGrid(s.Name, idx)
		center.Register(srv.Summary(), &transport.InProc{
			Name: s.Name, Handler: srv.Handler(), Metrics: center.Metrics,
		})
	}
	return center
}

func BenchmarkFig13OverlapComm(b *testing.B) {
	f := setup()
	center := buildCenter(f, federation.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := center.OverlapSearch(context.Background(), f.queryCells[i%len(f.queryCells)], benchK); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(center.Metrics.Bytes())/float64(b.N), "bytes/op")
}

func BenchmarkFig14OverlapTransmission(b *testing.B) {
	f := setup()
	center := buildCenter(f, federation.DefaultOptions())
	if _, err := center.OverlapSearch(context.Background(), f.queryCells[0], benchK); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = center.Metrics.TransmissionTime(125_000)
	}
}

func BenchmarkFig19CoverageComm(b *testing.B) {
	f := setup()
	center := buildCenter(f, federation.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := center.CoverageSearch(context.Background(), f.queryCells[i%len(f.queryCells)], benchDelta, 5); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(center.Metrics.Bytes())/float64(b.N), "bytes/op")
}

func BenchmarkFig20CoverageTransmission(b *testing.B) {
	f := setup()
	center := buildCenter(f, federation.DefaultOptions())
	if _, err := center.CoverageSearch(context.Background(), f.queryCells[0], benchDelta, 5); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = center.Metrics.TransmissionTime(125_000)
	}
}

// --- Figs. 15-18: CJSP search ----------------------------------------------

func coverageSearchers(f *fixture) map[string]coverage.Searcher {
	idx := dits.Build(f.transitGrid, f.transitNodes, benchF)
	return map[string]coverage.Searcher{
		"CoverageSearch": &coverage.DITSSearcher{Index: idx},
		"SG+DITS":        &coverage.SGDITS{Index: idx},
		"SG":             &coverage.SG{Nodes: f.transitNodes},
	}
}

func benchCoverage(b *testing.B, delta float64, k int) {
	f := setup()
	for _, name := range []string{"CoverageSearch", "SG+DITS", "SG"} {
		s := coverageSearchers(f)[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Search(f.queries[i%len(f.queries)], delta, k)
			}
		})
	}
}

func BenchmarkFig15CoverageK(b *testing.B)     { benchCoverage(b, benchDelta, benchK) }
func BenchmarkFig17CoverageQ(b *testing.B)     { benchCoverage(b, benchDelta, benchK) }
func BenchmarkFig18CoverageDelta(b *testing.B) { benchCoverage(b, 20, benchK) }

func BenchmarkFig16CoverageTheta(b *testing.B) {
	f := setup()
	for _, theta := range []int{10, 12, 14} {
		g := geo.NewGrid(theta, f.transit.Bounds())
		nodes := f.transit.Nodes(g)
		s := &coverage.DITSSearcher{Index: dits.Build(g, nodes, benchF)}
		var qs []*dataset.Node
		for _, d := range workload.SampleQueries(f.transit, 10, 2) {
			if nd := dataset.NewNode(g, d); nd != nil {
				nd.ID = -1
				qs = append(qs, nd)
			}
		}
		b.Run(itoa2("theta", theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Search(qs[i%len(qs)], benchDelta, benchK)
			}
		})
	}
}

// --- Figs. 21-22: index maintenance ---------------------------------------

func BenchmarkFig21Inserts(b *testing.B) {
	f := setup()
	fresh := func() *dataset.Node {
		return dataset.NewNodeFromCells(1_000_000, "synthetic", f.transitNodes[0].Cells.Clone())
	}
	b.Run("DITS", func(b *testing.B) {
		idx := dits.Build(f.transitGrid, f.transitNodes, benchF)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := fresh()
			nd.ID = 1_000_000 + i
			if err := idx.Insert(nd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("STS3", func(b *testing.B) {
		idx := sts3.Build(f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := fresh()
			nd.ID = 1_000_000 + i
			idx.Insert(nd)
		}
	})
	b.Run("Rtree", func(b *testing.B) {
		idx := rtree.Build(8, f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := fresh()
			nd.ID = 1_000_000 + i
			idx.Insert(nd)
		}
	})
	b.Run("QuadTree", func(b *testing.B) {
		idx := quadtree.Build(benchTheta, f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := fresh()
			nd.ID = 1_000_000 + i
			idx.Insert(nd)
		}
	})
	b.Run("Josie", func(b *testing.B) {
		idx := josie.Build(f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := fresh()
			nd.ID = 1_000_000 + i
			idx.Insert(nd)
		}
	})
}

func BenchmarkFig22Updates(b *testing.B) {
	f := setup()
	variant := func(i int) *dataset.Node {
		src := f.transitNodes[i%len(f.transitNodes)]
		return dataset.NewNodeFromCells(src.ID, src.Name, f.transitNodes[(i+1)%len(f.transitNodes)].Cells.Clone())
	}
	b.Run("DITS", func(b *testing.B) {
		idx := dits.Build(f.transitGrid, f.transitNodes, benchF)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := idx.Update(variant(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("STS3", func(b *testing.B) {
		idx := sts3.Build(f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Update(variant(i))
		}
	})
	b.Run("Rtree", func(b *testing.B) {
		idx := rtree.Build(8, f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Update(variant(i))
		}
	})
	b.Run("QuadTree", func(b *testing.B) {
		idx := quadtree.Build(benchTheta, f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Update(variant(i))
		}
	})
	b.Run("Josie", func(b *testing.B) {
		idx := josie.Build(f.transitNodes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Update(variant(i))
		}
	})
}

// --- Concurrent query gateway: parallel-client throughput ------------------

// BenchmarkGatewayThroughput shares b.N federated overlap searches among N
// concurrent clients over real TCP loopback transport and reports the
// aggregate queries/sec — the core workload of cmd/ditsgate under load.
// It reuses the harness behind `ditsbench -exp throughput`.
func BenchmarkGatewayThroughput(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, v := range []struct {
		name      string
		pool      int
		cacheSize int
	}{
		{"pool=1-nocache", 1, 0},
		{"pool=8-nocache", 8, 0},
		{"pool=8-cache", 8, 4096},
	} {
		b.Run(v.name, func(b *testing.B) {
			center, qs, stop, err := bench.NewTCPFederation(cfg, v.pool, v.cacheSize)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			for _, clients := range []int{1, 8, 64} {
				b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
					b.ResetTimer()
					qps, err := bench.DrainQueries(center, qs, clients, b.N, cfg.K)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(qps, "queries/sec")
				})
			}
		})
	}
}

// --- Full harness passes (kept cheap via tiny scale) -----------------------

// BenchmarkHarnessTable2 exercises the bench package itself so the harness
// is covered by `go test -bench`.
func BenchmarkHarnessTable2(b *testing.B) {
	cfg := bench.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run("table2", cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa2(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v/10)) + string(rune('0'+v%10))
}
