// Package geo provides the planar geometry primitives used throughout the
// DITS library: points, axis-aligned rectangles, the uniform grid partition
// of Definition 4, and the z-order (Morton) encoding that turns grid cells
// into integer cell IDs.
package geo

import (
	"fmt"
	"math"
)

// Point is a 2-dimensional spatial point (Definition 1). X is the
// longitude-like coordinate and Y the latitude-like coordinate, but the
// library is agnostic to the actual units.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root on hot paths such as pruning comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the component-wise sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6f, %.6f)", p.X, p.Y) }
