package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func testGrid() Grid {
	return NewGrid(2, Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4})
}

func TestGridCellID(t *testing.T) {
	g := testGrid()
	cases := []struct {
		p    Point
		want uint64
	}{
		{Pt(0.5, 0.5), 0},
		{Pt(1.5, 0.5), 1},
		{Pt(0.5, 1.5), 2},
		{Pt(3.5, 3.5), 15},
		{Pt(0, 0), 0},
		// Points on the far boundary clamp into the last cell.
		{Pt(4, 4), 15},
		// Points outside the space clamp to the nearest edge cell.
		{Pt(-1, -1), 0},
		{Pt(9, 0.5), ZEncode(3, 0)},
	}
	for _, c := range cases {
		if got := g.CellID(c.p); got != c.want {
			t.Errorf("CellID(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestGridGeometry(t *testing.T) {
	g := testGrid()
	if g.Side() != 4 {
		t.Fatalf("Side = %d, want 4", g.Side())
	}
	if g.NumCells() != 16 {
		t.Fatalf("NumCells = %d, want 16", g.NumCells())
	}
	r := g.CellRect(9) // cell (1,2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 2, MaxY: 3}
	if r != want {
		t.Errorf("CellRect(9) = %v, want %v", r, want)
	}
	if c := g.CellCenter(9); c != Pt(1.5, 2.5) {
		t.Errorf("CellCenter(9) = %v, want (1.5,2.5)", c)
	}
}

func TestGridRectCoords(t *testing.T) {
	g := testGrid()
	x0, y0, x1, y1 := g.RectCoords(Rect{MinX: 0.5, MinY: 1.2, MaxX: 2.9, MaxY: 3.7})
	if x0 != 0 || y0 != 1 || x1 != 2 || y1 != 3 {
		t.Errorf("RectCoords = (%d,%d,%d,%d), want (0,1,2,3)", x0, y0, x1, y1)
	}
}

func TestGridDegenerateBounds(t *testing.T) {
	// A single-point space must still produce a usable grid.
	g := NewGrid(3, Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5})
	if g.CellW <= 0 || g.CellH <= 0 {
		t.Fatalf("degenerate grid has non-positive cells: %v", g)
	}
	if id := g.CellID(Pt(5, 5)); id != 0 {
		t.Errorf("CellID at origin of degenerate grid = %d, want 0", id)
	}
	g2 := NewGrid(3, EmptyRect)
	if g2.CellW <= 0 || g2.CellH <= 0 {
		t.Fatalf("empty-bounds grid has non-positive cells: %v", g2)
	}
}

func TestGridPanicsOnBadTheta(t *testing.T) {
	for _, theta := range []int{0, -1, MaxTheta + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGrid(θ=%d) should panic", theta)
				}
			}()
			NewGrid(theta, Rect{MaxX: 1, MaxY: 1})
		}()
	}
}

func TestGridPointInCellProperty(t *testing.T) {
	g := NewGrid(10, Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90})
	f := func(px, py float64) bool {
		p := Pt(math.Mod(norm(px), 180), math.Mod(norm(py), 90))
		id := g.CellID(p)
		r := g.CellRect(id)
		// Allow boundary epsilon: a point is in (or on the edge of) its cell.
		const eps = 1e-9
		return p.X >= r.MinX-eps && p.X <= r.MaxX+eps && p.Y >= r.MinY-eps && p.Y <= r.MaxY+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellsToRectDist(t *testing.T) {
	g := testGrid()
	r := Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4} // cells (2..3, 2..3)
	if d := g.CellsToRectDist(0, 0, r); math.Abs(d-math.Hypot(2, 2)) > 1e-12 {
		t.Errorf("corner dist = %v, want 2*sqrt2", d)
	}
	if d := g.CellsToRectDist(2, 2, r); d != 0 {
		t.Errorf("inside dist = %v, want 0", d)
	}
	if d := g.CellsToRectDist(0, 3, r); d != 2 {
		t.Errorf("left dist = %v, want 2", d)
	}
}
