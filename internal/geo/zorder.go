package geo

// The z-order (Morton) curve interleaves the bits of a cell's (X, Y) grid
// coordinates to form a single integer cell ID (Definition 4 and Fig. 2 of
// the paper). With resolution θ the grid has 2^θ × 2^θ cells and IDs form
// the dense range [0, 2^θ · 2^θ − 1].

// MaxTheta is the largest supported grid resolution: 2^28 cells per axis
// keeps interleaved IDs within 56 bits.
const MaxTheta = 28

// part1By1 spreads the low 32 bits of v so that bit i moves to bit 2i.
func part1By1(v uint64) uint64 {
	v &= 0x00000000ffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact1By1 is the inverse of part1By1: it gathers every other bit of v
// (bits 0,2,4,…) into the low half.
func compact1By1(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// ZEncode interleaves grid coordinates (x, y) into a z-order cell ID. The x
// coordinate occupies the even bits and y the odd bits, so the bottom-left
// cell (0,0) maps to 0 as in Fig. 2 of the paper.
func ZEncode(x, y uint32) uint64 {
	return part1By1(uint64(x)) | part1By1(uint64(y))<<1
}

// ZDecode recovers the grid coordinates from a z-order cell ID.
func ZDecode(c uint64) (x, y uint32) {
	return uint32(compact1By1(c)), uint32(compact1By1(c >> 1))
}

// CellDist returns the Euclidean distance between the grid coordinates of
// two cell IDs, the ||c_i, c_j||_2 term of the cell-based dataset distance
// (Definition 6).
func CellDist(a, b uint64) float64 {
	ax, ay := ZDecode(a)
	bx, by := ZDecode(b)
	dx := float64(int64(ax) - int64(bx))
	dy := float64(int64(ay) - int64(by))
	// math.Hypot is precise but slow; the coordinates are ≤ 2^28 so the
	// naive form cannot overflow.
	return sqrt(dx*dx + dy*dy)
}

// CellDist2 returns the squared grid-coordinate distance between two cell
// IDs, for threshold comparisons without the square root.
func CellDist2(a, b uint64) float64 {
	ax, ay := ZDecode(a)
	bx, by := ZDecode(b)
	dx := float64(int64(ax) - int64(bx))
	dy := float64(int64(ay) - int64(by))
	return dx*dx + dy*dy
}
