package geo

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, used as the minimum bounding rectangle
// (MBR) of datasets and index nodes. A Rect is valid when MinX <= MaxX and
// MinY <= MaxY; the zero Rect is the degenerate rectangle at the origin.
type Rect struct {
	MinX, MinY float64
	MaxX, MaxY float64
}

// EmptyRect is the identity element for Union: it contains nothing and
// Union(EmptyRect, r) == r.
var EmptyRect = Rect{
	MinX: math.Inf(1), MinY: math.Inf(1),
	MaxX: math.Inf(-1), MaxY: math.Inf(-1),
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// BoundingRect returns the MBR of the given points. It returns EmptyRect
// when pts is empty.
func BoundingRect(pts []Point) Rect {
	r := EmptyRect
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no points (as EmptyRect does).
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r, 0 for an empty rectangle.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Width() * r.Height()
}

// Center returns the pivot of r: the average of its bottom-left and
// top-right corners (Definition 12).
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Radius returns half the diagonal length of r, the ball radius used by
// dataset and index nodes (Definition 12).
func (r Rect) Radius() float64 {
	if r.IsEmpty() {
		return 0
	}
	return math.Hypot(r.Width(), r.Height()) / 2
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r. An empty s is
// contained in every rectangle.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point (boundary
// touching counts as intersection, matching the MBR-overlap pruning rule
// N.rect ∩ N_Q.rect ≠ ∅ of Algorithm 2).
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the overlapping region of r and s, or EmptyRect when
// they are disjoint.
func (r Rect) Intersection(s Rect) Rect {
	if !r.Intersects(s) {
		return EmptyRect
	}
	return Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	if r.IsEmpty() {
		return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
	}
	return Rect{
		MinX: math.Min(r.MinX, p.X), MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X), MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Expand returns r grown by d on every side. Expanding by a negative d
// shrinks the rectangle and may produce an empty one.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// MinDist returns the minimum Euclidean distance between any point of r and
// any point of s; 0 when they intersect.
func (r Rect) MinDist(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(s.MinX-r.MaxX, r.MinX-s.MaxX))
	dy := math.Max(0, math.Max(s.MinY-r.MaxY, r.MinY-s.MaxY))
	return math.Hypot(dx, dy)
}

// MinDistPoint returns the minimum Euclidean distance from p to r; 0 when p
// is inside r.
func (r Rect) MinDistPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.4f,%.4f]x[%.4f,%.4f]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}
