package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(2, 5), Pt(0, 1))
	if r.MinX != 0 || r.MaxX != 2 || r.MinY != 1 || r.MaxY != 5 {
		t.Fatalf("NewRect normalized wrong: %v", r)
	}
	if got := r.Width(); got != 2 {
		t.Errorf("Width = %v, want 2", got)
	}
	if got := r.Height(); got != 4 {
		t.Errorf("Height = %v, want 4", got)
	}
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Center(); got != Pt(1, 3) {
		t.Errorf("Center = %v, want (1,3)", got)
	}
	if got, want := r.Radius(), math.Hypot(2, 4)/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("Radius = %v, want %v", got, want)
	}
}

func TestRectEmpty(t *testing.T) {
	if !EmptyRect.IsEmpty() {
		t.Error("EmptyRect should be empty")
	}
	if EmptyRect.Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	if EmptyRect.Intersects(Rect{MaxX: 1, MaxY: 1}) {
		t.Error("empty rect should intersect nothing")
	}
	r := Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}
	if got := EmptyRect.Union(r); got != r {
		t.Errorf("EmptyRect.Union = %v, want %v", got, r)
	}
	if got := r.Union(EmptyRect); got != r {
		t.Errorf("Union(empty) = %v, want %v", got, r)
	}
	if BoundingRect(nil) != EmptyRect {
		t.Error("BoundingRect(nil) should be EmptyRect")
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}
	cases := []struct {
		name      string
		b         Rect
		wantEmpty bool
		want      Rect
	}{
		{"overlap", Rect{MinX: 2, MinY: 2, MaxX: 6, MaxY: 6}, false, Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4}},
		{"contained", Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, false, Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}},
		{"touching-edge", Rect{MinX: 4, MinY: 0, MaxX: 8, MaxY: 4}, false, Rect{MinX: 4, MinY: 0, MaxX: 4, MaxY: 4}},
		{"disjoint", Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, true, EmptyRect},
		{"disjoint-x-only", Rect{MinX: 5, MinY: 0, MaxX: 6, MaxY: 4}, true, EmptyRect},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := a.Intersection(c.b)
			if c.wantEmpty {
				if !got.IsEmpty() {
					t.Errorf("Intersection = %v, want empty", got)
				}
				if a.Intersects(c.b) {
					t.Error("Intersects should be false")
				}
				return
			}
			if got != c.want {
				t.Errorf("Intersection = %v, want %v", got, c.want)
			}
			if !a.Intersects(c.b) || !c.b.Intersects(a) {
				t.Error("Intersects should be true and symmetric")
			}
		})
	}
}

func TestRectMinDist(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	cases := []struct {
		b    Rect
		want float64
	}{
		{Rect{MinX: 2, MinY: 0, MaxX: 3, MaxY: 1}, 1},                    // right
		{Rect{MinX: 0, MinY: 3, MaxX: 1, MaxY: 4}, 2},                    // above
		{Rect{MinX: 4, MinY: 5, MaxX: 6, MaxY: 7}, math.Hypot(3, 4)},     // diagonal
		{Rect{MinX: 0.5, MinY: 0.5, MaxX: 2, MaxY: 2}, 0},                // overlap
		{Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, 0},                    // corner touch
		{Rect{MinX: -3, MinY: -4, MaxX: -2, MaxY: -3}, math.Hypot(2, 3)}, // below-left
	}
	for _, c := range cases {
		if got := a.MinDist(c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestRectMinDistPoint(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	if got := r.MinDistPoint(Pt(1, 1)); got != 0 {
		t.Errorf("inside point dist = %v, want 0", got)
	}
	if got := r.MinDistPoint(Pt(5, 6)); math.Abs(got-5) > 1e-12 {
		t.Errorf("corner dist = %v, want 5", got)
	}
}

func TestRectUnionContainsProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := NewRect(Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)))
		b := NewRect(Pt(norm(cx), norm(cy)), Pt(norm(dx), norm(dy)))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersectionSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		a := NewRect(Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)))
		b := NewRect(Pt(norm(cx), norm(cy)), Pt(norm(dx), norm(dy)))
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		// Intersection is contained in both.
		i := a.Intersection(b)
		return a.ContainsRect(i) && b.ContainsRect(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// norm maps arbitrary float64s (possibly NaN/Inf from quick) into a sane
// bounded range so rectangle invariants are meaningful.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(3, -1), Pt(0, 4), Pt(-2, 2)}
	got := BoundingRect(pts)
	want := Rect{MinX: -2, MinY: -1, MaxX: 3, MaxY: 4}
	if got != want {
		t.Errorf("BoundingRect = %v, want %v", got, want)
	}
	for _, p := range pts {
		if !got.Contains(p) {
			t.Errorf("BoundingRect should contain %v", p)
		}
	}
}
