package geo

import (
	"math"
	"testing"
)

func TestCellSizeKm(t *testing.T) {
	// The paper's example: a 2^12 grid over the globe gives cells of
	// roughly 10km x 5km (longitude shrinks with latitude; at mid
	// latitudes the width is below the equatorial 9.77km).
	g := NewGrid(12, Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90})
	w, h := g.CellSizeKm()
	if h < 4 || h > 6 {
		t.Errorf("cell height = %vkm, want ~5km", h)
	}
	if w <= 0 || w > 10 {
		t.Errorf("cell width = %vkm, want positive and below the equatorial 10km", w)
	}
}

func TestDeltaForKm(t *testing.T) {
	g := NewGrid(12, Rect{MinX: -78, MinY: 36, MaxX: -74, MaxY: 40})
	delta := g.DeltaForKm(1.0) // connect routes within ~1km
	if delta <= 0 {
		t.Fatalf("delta = %v, want positive", delta)
	}
	// A δ of that many cells must span at least 1km.
	w, h := g.CellSizeKm()
	if delta*math.Max(w, h) < 1-1e-9 {
		t.Errorf("δ=%v cells spans %vkm, want >= 1km", delta, delta*math.Max(w, h))
	}
}

func TestThetaForCellKm(t *testing.T) {
	world := Rect{MinX: -180, MinY: -90, MaxX: 180, MaxY: 90}
	theta := ThetaForCellKm(world, 10)
	if theta < 11 || theta > 13 {
		t.Errorf("θ for 10km world cells = %d, want ~12", theta)
	}
	g := NewGrid(theta, world)
	_, h := g.CellSizeKm()
	if h > 10+1e-9 {
		t.Errorf("cells at θ=%d are %vkm tall, want <= 10km", theta, h)
	}
	if got := ThetaForCellKm(world, 0); got != MaxTheta {
		t.Errorf("zero km should clamp to MaxTheta, got %d", got)
	}
	if got := ThetaForCellKm(world, 1e9); got != 1 {
		t.Errorf("huge km should clamp to 1, got %d", got)
	}
	if got := ThetaForCellKm(EmptyRect, 10); got != MaxTheta {
		t.Errorf("empty bounds should clamp to MaxTheta, got %d", got)
	}
}
