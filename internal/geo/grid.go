package geo

import (
	"fmt"
	"math"
)

// sqrt is a local alias so zorder.go does not import math directly in its
// hot path; the compiler intrinsifies math.Sqrt either way.
func sqrt(v float64) float64 { return math.Sqrt(v) }

// Grid is the uniform partition of a 2-dimensional space into 2^θ × 2^θ
// cells (Definition 4). Origin is the bottom-left point (x0, y0) of the
// space and CellW/CellH the width ν and height µ of each cell.
type Grid struct {
	Theta  int     // resolution θ; the grid has 2^θ cells per axis
	Origin Point   // bottom-left corner of the indexed space
	CellW  float64 // ν: cell width
	CellH  float64 // µ: cell height
}

// NewGrid partitions the space covered by bounds into a 2^θ × 2^θ grid.
// Degenerate bounds (zero width or height) are widened so every point still
// maps to a valid cell. It panics if theta is outside [1, MaxTheta]; the
// resolution is a static configuration value, so a bad one is a programming
// error rather than a runtime condition.
func NewGrid(theta int, bounds Rect) Grid {
	if theta < 1 || theta > MaxTheta {
		panic(fmt.Sprintf("geo: resolution θ=%d outside [1, %d]", theta, MaxTheta))
	}
	if bounds.IsEmpty() {
		bounds = Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	w, h := bounds.Width(), bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	side := float64(uint64(1) << uint(theta))
	return Grid{
		Theta:  theta,
		Origin: Point{X: bounds.MinX, Y: bounds.MinY},
		CellW:  w / side,
		CellH:  h / side,
	}
}

// Side returns the number of cells per axis, 2^θ.
func (g Grid) Side() uint32 { return uint32(1) << uint(g.Theta) }

// NumCells returns the total number of cells in the grid, 2^θ · 2^θ.
func (g Grid) NumCells() uint64 { return uint64(g.Side()) * uint64(g.Side()) }

// clampCoord converts one coordinate to a cell index, clamping points on or
// beyond the far edge of the space into the last cell.
func clampCoord(v, origin, cell float64, side uint32) uint32 {
	if cell <= 0 {
		return 0
	}
	i := int64(math.Floor((v - origin) / cell))
	if i < 0 {
		i = 0
	}
	if i >= int64(side) {
		i = int64(side) - 1
	}
	return uint32(i)
}

// CellCoords returns the grid coordinates (X, Y) of the cell containing p,
// the ((x−x0)/ν, (y−y0)/µ) mapping of Definition 5.
func (g Grid) CellCoords(p Point) (x, y uint32) {
	return clampCoord(p.X, g.Origin.X, g.CellW, g.Side()),
		clampCoord(p.Y, g.Origin.Y, g.CellH, g.Side())
}

// CellID returns the z-order cell ID of the cell containing p.
func (g Grid) CellID(p Point) uint64 {
	x, y := g.CellCoords(p)
	return ZEncode(x, y)
}

// CellRect returns the spatial rectangle covered by cell ID c.
func (g Grid) CellRect(c uint64) Rect {
	x, y := ZDecode(c)
	minX := g.Origin.X + float64(x)*g.CellW
	minY := g.Origin.Y + float64(y)*g.CellH
	return Rect{MinX: minX, MinY: minY, MaxX: minX + g.CellW, MaxY: minY + g.CellH}
}

// CellCenter returns the center point of cell ID c.
func (g Grid) CellCenter(c uint64) Point {
	x, y := ZDecode(c)
	return Point{
		X: g.Origin.X + (float64(x)+0.5)*g.CellW,
		Y: g.Origin.Y + (float64(y)+0.5)*g.CellH,
	}
}

// RectCoords returns the inclusive cell-coordinate span [x0,x1]×[y0,y1]
// covered by r, clamped to the grid.
func (g Grid) RectCoords(r Rect) (x0, y0, x1, y1 uint32) {
	x0, y0 = g.CellCoords(Point{X: r.MinX, Y: r.MinY})
	x1, y1 = g.CellCoords(Point{X: r.MaxX, Y: r.MaxY})
	return x0, y0, x1, y1
}

// CellsToRectDist returns the minimum distance, in cell units, between the
// cell with coordinates (cx, cy) and the coordinate span of rectangle r.
// It is used to prune grid regions farther than a connectivity threshold.
func (g Grid) CellsToRectDist(cx, cy uint32, r Rect) float64 {
	x0, y0, x1, y1 := g.RectCoords(r)
	dx, dy := 0.0, 0.0
	switch {
	case cx < x0:
		dx = float64(x0 - cx)
	case cx > x1:
		dx = float64(cx - x1)
	}
	switch {
	case cy < y0:
		dy = float64(y0 - cy)
	case cy > y1:
		dy = float64(cy - y1)
	}
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (g Grid) String() string {
	return fmt.Sprintf("Grid{θ=%d, origin=%s, cell=%.6fx%.6f}", g.Theta, g.Origin, g.CellW, g.CellH)
}
