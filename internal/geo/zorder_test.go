package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZEncodeKnownValues(t *testing.T) {
	// The 4x4 grid of Fig. 2(a) in the paper: IDs laid out as
	//   10 11 14 15
	//    8  9 12 13
	//    2  3  6  7
	//    0  1  4  5
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{2, 0, 4}, {3, 0, 5}, {2, 1, 6}, {3, 1, 7},
		{0, 2, 8}, {1, 2, 9}, {0, 3, 10}, {1, 3, 11},
		{2, 2, 12}, {3, 2, 13}, {2, 3, 14}, {3, 3, 15},
	}
	for _, c := range cases {
		if got := ZEncode(c.x, c.y); got != c.want {
			t.Errorf("ZEncode(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestZRoundTripProperty(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= (1 << MaxTheta) - 1
		y &= (1 << MaxTheta) - 1
		gx, gy := ZDecode(ZEncode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZEncodeMonotoneInQuadrant(t *testing.T) {
	// Within a quadrant at any level, all IDs of the lower quadrant are
	// smaller than all IDs of a higher quadrant — the defining property of
	// the z-order curve used to keep IDs consecutive per block.
	f := func(x, y uint32) bool {
		x &= (1 << 20) - 1
		y &= (1 << 20) - 1
		id := ZEncode(x, y)
		// The cell one full quadrant to the upper-right always has a
		// larger ID.
		return ZEncode(x|1<<20, y|1<<20) > id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellDist(t *testing.T) {
	// Example 3 of the paper: dist(S_D1,S_D2)=1, dist(S_D1,S_D3)=1,
	// dist(S_D2,S_D3)=sqrt(2) on the 4x4 grid with
	// S_D1={9,11}, S_D2={1,3}, S_D3={12,13}.
	if d := CellDist(9, 3); d != 1 {
		t.Errorf("CellDist(9,3) = %v, want 1", d)
	}
	if d := CellDist(9, 12); d != 1 {
		t.Errorf("CellDist(9,12) = %v, want 1", d)
	}
	if d := CellDist(3, 12); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("CellDist(3,12) = %v, want sqrt(2)", d)
	}
	if d := CellDist(7, 7); d != 0 {
		t.Errorf("CellDist(7,7) = %v, want 0", d)
	}
}

func TestCellDist2MatchesCellDist(t *testing.T) {
	f := func(a, b uint64) bool {
		a &= (1 << 56) - 1
		b &= (1 << 56) - 1
		d := CellDist(a, b)
		return math.Abs(d*d-CellDist2(a, b)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkZEncode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += ZEncode(uint32(i), uint32(i)*2654435761)
	}
	_ = sink
}

func BenchmarkZDecode(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		x, y := ZDecode(uint64(i) * 0x9e3779b97f4a7c15 & ((1 << 56) - 1))
		sink += x + y
	}
	_ = sink
}
