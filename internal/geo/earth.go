package geo

import "math"

// Helpers for interpreting grids over longitude/latitude degrees. The
// paper sets θ by distance sampling ("one degree of longitude or latitude
// is about 111km; dividing the globe into a 2^12 × 2^12 grid makes each
// cell about 10km × 5km") and δ by "the closest distance between point
// pairs the user requires"; these helpers do those conversions.

// KmPerDegree is the approximate surface distance of one degree of
// latitude (and of longitude at the equator).
const KmPerDegree = 111.0

// CellSizeKm returns the approximate width and height of one grid cell in
// kilometers, at the latitude of the grid's vertical center. Longitude
// degrees shrink with cos(latitude).
func (g Grid) CellSizeKm() (w, h float64) {
	midLat := g.Origin.Y + float64(g.Side())*g.CellH/2
	scale := math.Cos(midLat * math.Pi / 180)
	if scale < 0.01 {
		scale = 0.01 // near-polar grids: avoid a zero width
	}
	return g.CellW * KmPerDegree * scale, g.CellH * KmPerDegree
}

// DeltaForKm converts a connectivity distance in kilometers into the cell
// units Definition 7's threshold δ is expressed in, using the larger cell
// dimension so the returned δ never under-connects.
func (g Grid) DeltaForKm(km float64) float64 {
	w, h := g.CellSizeKm()
	m := math.Min(w, h)
	if m <= 0 {
		return 0
	}
	return km / m
}

// ThetaForCellKm returns the smallest resolution θ whose cells are no
// wider than the requested kilometers on either axis, for a space covering
// bounds — the paper's distance-sampling recipe for picking θ.
func ThetaForCellKm(bounds Rect, km float64) int {
	if km <= 0 || bounds.IsEmpty() {
		return MaxTheta
	}
	spanKm := math.Max(bounds.Width(), bounds.Height()) * KmPerDegree
	theta := int(math.Ceil(math.Log2(spanKm / km)))
	if theta < 1 {
		return 1
	}
	if theta > MaxTheta {
		return MaxTheta
	}
	return theta
}
