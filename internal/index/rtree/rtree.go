// Package rtree implements the R-tree baseline of §VII-B [27]: a Guttman
// R-tree with quadratic split built over the datasets' MBRs in grid
// coordinate space. Overlap search collects every dataset whose MBR
// intersects the query MBR and verifies the exact set intersection.
package rtree

import (
	"dits/internal/dataset"
	"dits/internal/geo"
)

// DefaultMaxEntries is the default node capacity M.
const DefaultMaxEntries = 8

// node is an R-tree node. Leaf nodes store dataset nodes in data; internal
// nodes store child pointers.
type node struct {
	rect     geo.Rect
	parent   *node
	children []*node
	data     []*dataset.Node
	leaf     bool
}

// Tree is a dynamic R-tree over dataset nodes.
type Tree struct {
	root   *node
	max    int // M: max entries per node
	min    int // m: min entries per node (M/2)
	size   int
	leafOf map[int]*node
}

// New creates an empty R-tree with node capacity maxEntries (M). Passing a
// non-positive capacity selects DefaultMaxEntries.
func New(maxEntries int) *Tree {
	if maxEntries <= 1 {
		maxEntries = DefaultMaxEntries
	}
	return &Tree{
		root:   &node{leaf: true},
		max:    maxEntries,
		min:    maxEntries / 2,
		leafOf: make(map[int]*node),
	}
}

// Build inserts all dataset nodes one by one (the classical dynamic
// construction the paper times in Fig. 8).
func Build(maxEntries int, nodes []*dataset.Node) *Tree {
	t := New(maxEntries)
	for _, n := range nodes {
		if n != nil {
			t.Insert(n)
		}
	}
	return t
}

// Size returns the number of indexed datasets.
func (t *Tree) Size() int { return t.size }

// Insert adds a dataset node.
func (t *Tree) Insert(d *dataset.Node) {
	leaf := t.chooseLeaf(t.root, d.Rect)
	leaf.data = append(leaf.data, d)
	leaf.rect = leaf.rect.Union(d.Rect)
	t.leafOf[d.ID] = leaf
	t.size++
	if len(leaf.data) > t.max {
		t.splitNode(leaf)
	} else {
		t.adjustUp(leaf.parent)
	}
}

// chooseLeaf descends to the leaf needing the least area enlargement.
func (t *Tree) chooseLeaf(n *node, r geo.Rect) *node {
	for !n.leaf {
		var best *node
		bestEnl, bestArea := 0.0, 0.0
		for _, c := range n.children {
			enl := c.rect.Union(r).Area() - c.rect.Area()
			if best == nil || enl < bestEnl || (enl == bestEnl && c.rect.Area() < bestArea) {
				best, bestEnl, bestArea = c, enl, c.rect.Area()
			}
		}
		n = best
	}
	return n
}

// entryRect abstracts over leaf data entries and internal children during
// splits.
func (n *node) entryRects() []geo.Rect {
	if n.leaf {
		rects := make([]geo.Rect, len(n.data))
		for i, d := range n.data {
			rects[i] = d.Rect
		}
		return rects
	}
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	return rects
}

// splitNode performs Guttman's quadratic split on an overflowing node and
// propagates upward.
func (t *Tree) splitNode(n *node) {
	rects := n.entryRects()
	seedA, seedB := quadraticSeeds(rects)

	groupA, groupB := []int{seedA}, []int{seedB}
	rectA, rectB := rects[seedA], rects[seedB]
	remaining := make([]int, 0, len(rects))
	for i := range rects {
		if i != seedA && i != seedB {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Force assignment if one group must take all the rest to reach m.
		if len(groupA)+len(remaining) == t.min {
			groupA = append(groupA, remaining...)
			for _, i := range remaining {
				rectA = rectA.Union(rects[i])
			}
			break
		}
		if len(groupB)+len(remaining) == t.min {
			groupB = append(groupB, remaining...)
			for _, i := range remaining {
				rectB = rectB.Union(rects[i])
			}
			break
		}
		// Pick the entry with maximum preference for one group.
		bestIdx, bestDiff, bestPos := -1, -1.0, 0
		for pos, i := range remaining {
			dA := rectA.Union(rects[i]).Area() - rectA.Area()
			dB := rectB.Union(rects[i]).Area() - rectB.Area()
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff, bestPos = i, diff, pos
			}
		}
		i := bestIdx
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		dA := rectA.Union(rects[i]).Area() - rectA.Area()
		dB := rectB.Union(rects[i]).Area() - rectB.Area()
		if dA < dB || (dA == dB && len(groupA) < len(groupB)) {
			groupA = append(groupA, i)
			rectA = rectA.Union(rects[i])
		} else {
			groupB = append(groupB, i)
			rectB = rectB.Union(rects[i])
		}
	}

	// Materialize the two halves.
	a := &node{leaf: n.leaf, rect: rectA, parent: n.parent}
	b := &node{leaf: n.leaf, rect: rectB, parent: n.parent}
	if n.leaf {
		for _, i := range groupA {
			a.data = append(a.data, n.data[i])
		}
		for _, i := range groupB {
			b.data = append(b.data, n.data[i])
		}
		for _, d := range a.data {
			t.leafOf[d.ID] = a
		}
		for _, d := range b.data {
			t.leafOf[d.ID] = b
		}
	} else {
		for _, i := range groupA {
			c := n.children[i]
			c.parent = a
			a.children = append(a.children, c)
		}
		for _, i := range groupB {
			c := n.children[i]
			c.parent = b
			b.children = append(b.children, c)
		}
	}

	if n.parent == nil {
		// Grow a new root.
		t.root = &node{leaf: false, children: []*node{a, b}, rect: rectA.Union(rectB)}
		a.parent, b.parent = t.root, t.root
		return
	}
	p := n.parent
	for i, c := range p.children {
		if c == n {
			p.children[i] = a
			break
		}
	}
	p.children = append(p.children, b)
	if len(p.children) > t.max {
		t.splitNode(p)
	} else {
		t.adjustUp(p)
	}
}

// quadraticSeeds picks the two rects wasting the most area together.
func quadraticSeeds(rects []geo.Rect) (int, int) {
	seedA, seedB, worst := 0, 1, -1.0
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, seedA, seedB = waste, i, j
			}
		}
	}
	return seedA, seedB
}

// adjustUp refreshes MBRs from n to the root.
func (t *Tree) adjustUp(n *node) {
	for ; n != nil; n = n.parent {
		r := geo.EmptyRect
		if n.leaf {
			for _, d := range n.data {
				r = r.Union(d.Rect)
			}
		} else {
			for _, c := range n.children {
				r = r.Union(c.rect)
			}
		}
		n.rect = r
	}
}

// Delete removes the dataset with the given ID; it reports whether it was
// present. Underflowing leaves are dissolved and their remaining entries
// reinserted (condense-tree).
func (t *Tree) Delete(id int) bool {
	leaf, ok := t.leafOf[id]
	if !ok {
		return false
	}
	for i, d := range leaf.data {
		if d.ID == id {
			leaf.data = append(leaf.data[:i], leaf.data[i+1:]...)
			break
		}
	}
	delete(t.leafOf, id)
	t.size--

	if len(leaf.data) < t.min && leaf.parent != nil {
		orphans := append([]*dataset.Node(nil), leaf.data...)
		t.detach(leaf)
		for _, d := range orphans {
			delete(t.leafOf, d.ID)
			t.size--
			t.Insert(d)
		}
	} else {
		t.adjustUp(leaf)
	}
	return true
}

// detach unlinks a node from its parent, dissolving ancestors left with a
// single child.
func (t *Tree) detach(n *node) {
	p := n.parent
	for i, c := range p.children {
		if c == n {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	if p.parent == nil {
		switch len(p.children) {
		case 0:
			// Every entry is gone: reset to an empty leaf root.
			t.root = &node{leaf: true}
		case 1:
			// Root with one child: hoist (keeps the tree shallow).
			t.root = p.children[0]
			t.root.parent = nil
		default:
			t.adjustUp(p)
		}
		return
	}
	if len(p.children) == 0 {
		t.detach(p)
		return
	}
	t.adjustUp(p)
}

// Update replaces the indexed version of d (same ID) with d.
func (t *Tree) Update(d *dataset.Node) {
	t.Delete(d.ID)
	t.Insert(d)
}

// SearchIntersect returns every dataset whose MBR intersects r.
func (t *Tree) SearchIntersect(r geo.Rect) []*dataset.Node {
	var out []*dataset.Node
	var walk func(n *node)
	walk = func(n *node) {
		if !n.rect.Intersects(r) {
			return
		}
		if n.leaf {
			for _, d := range n.data {
				if d.Rect.Intersects(r) {
					out = append(out, d)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// All returns every indexed dataset node.
func (t *Tree) All() []*dataset.Node {
	var out []*dataset.Node
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			out = append(out, n.data...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// NumNodes returns the number of R-tree nodes.
func (t *Tree) NumNodes() int {
	var count func(n *node) int
	count = func(n *node) int {
		total := 1
		for _, c := range n.children {
			total += count(c)
		}
		return total
	}
	return count(t.root)
}

// Height returns the height of the tree.
func (t *Tree) Height() int {
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

// MemoryBytes estimates the resident size of the index.
func (t *Tree) MemoryBytes() int64 {
	const nodeSize = 72
	var bytes int64 = int64(t.NumNodes()) * nodeSize
	for _, d := range t.All() {
		bytes += int64(d.Cells.Len())*8 + 64
	}
	return bytes
}

// CheckInvariants validates MBR containment, parent pointers, and entry
// counts; used by tests.
func (t *Tree) CheckInvariants() error {
	return t.check(t.root, nil)
}

func (t *Tree) check(n *node, parent *node) error {
	if n.parent != parent {
		return errBadParent
	}
	if n.leaf {
		for _, d := range n.data {
			if !n.rect.ContainsRect(d.Rect) {
				return errBadRect
			}
			if t.leafOf[d.ID] != n {
				return errStaleLeaf
			}
		}
		return nil
	}
	if len(n.children) == 0 {
		return errEmptyInternal
	}
	for _, c := range n.children {
		if !n.rect.ContainsRect(c.rect) {
			return errBadRect
		}
		if err := t.check(c, n); err != nil {
			return err
		}
	}
	return nil
}

type treeError string

func (e treeError) Error() string { return string(e) }

const (
	errBadParent     = treeError("rtree: bad parent pointer")
	errBadRect       = treeError("rtree: node rect does not contain entry")
	errStaleLeaf     = treeError("rtree: stale leafOf entry")
	errEmptyInternal = treeError("rtree: empty internal node")
)
