package rtree

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

func randomNodes(rng *rand.Rand, n, theta int) []*dataset.Node {
	side := 1 << uint(theta)
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		cx, cy := rng.Intn(side), rng.Intn(side)
		m := 1 + rng.Intn(12)
		ids := make([]uint64, m)
		for j := range ids {
			x := min(side-1, cx+rng.Intn(6))
			y := min(side-1, cy+rng.Intn(6))
			ids[j] = geo.ZEncode(uint32(x), uint32(y))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func TestBuildAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 9, 100, 400} {
		for _, m := range []int{4, 8, 16} {
			tr := Build(m, randomNodes(rng, n, 7))
			if tr.Size() != n {
				t.Fatalf("n=%d M=%d: Size = %d", n, m, tr.Size())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d M=%d: %v", n, m, err)
			}
			if got := len(tr.All()); got != n {
				t.Fatalf("n=%d M=%d: All = %d", n, m, got)
			}
		}
	}
}

func TestSearchIntersectMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes := randomNodes(rng, 250, 7)
	tr := Build(8, nodes)
	for trial := 0; trial < 150; trial++ {
		x, y := rng.Float64()*128, rng.Float64()*128
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*30, MaxY: y + rng.Float64()*30}
		got := make(map[int]bool)
		for _, d := range tr.SearchIntersect(q) {
			got[d.ID] = true
		}
		for _, d := range nodes {
			want := d.Rect.Intersects(q)
			if got[d.ID] != want {
				t.Fatalf("trial %d: dataset %d intersect=%v reported=%v", trial, d.ID, want, got[d.ID])
			}
		}
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nodes := randomNodes(rng, 200, 7)
	tr := Build(8, nodes)

	// Delete half in random order.
	perm := rng.Perm(200)
	for _, idx := range perm[:100] {
		if !tr.Delete(nodes[idx].ID) {
			t.Fatalf("Delete(%d) returned false", nodes[idx].ID)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", nodes[idx].ID, err)
		}
	}
	if tr.Size() != 100 {
		t.Fatalf("Size = %d, want 100", tr.Size())
	}
	if tr.Delete(123456) {
		t.Error("Delete of unknown ID should return false")
	}

	// Update the survivors.
	for _, idx := range perm[100:] {
		repl := randomNodes(rng, 1, 7)[0]
		repl.ID = nodes[idx].ID
		tr.Update(repl)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after update %d: %v", repl.ID, err)
		}
	}
	if tr.Size() != 100 {
		t.Fatalf("Size after updates = %d, want 100", tr.Size())
	}

	// Delete everything.
	for _, idx := range perm[100:] {
		tr.Delete(nodes[idx].ID)
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d after deleting all", tr.Size())
	}
	if got := tr.SearchIntersect(geo.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9}); len(got) != 0 {
		t.Fatalf("empty tree returned %d results", len(got))
	}
}

func TestHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Build(4, randomNodes(rng, 300, 7))
	if tr.Height() < 3 {
		t.Errorf("Height = %d, expected >= 3 for 300 entries with M=4", tr.Height())
	}
	if tr.NumNodes() < 75 {
		t.Errorf("NumNodes = %d, unexpectedly small", tr.NumNodes())
	}
	if tr.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
