package ditsfile

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/exec"
	"dits/internal/search/overlap"
)

// buildWorld generates n clustered datasets on a 2^theta grid and indexes
// them. Deterministic per seed; same shape as the exec test worlds.
func buildWorld(t testing.TB, n, theta, f int, seed int64) (*dits.Local, []*dataset.Node) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	side := 1 << uint(theta)
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		blk := 4 + rng.Intn(12)
		bx, by := rng.Intn(side-blk), rng.Intn(side-blk)
		var ids []uint64
		for dx := 0; dx < blk; dx++ {
			for dy := 0; dy < blk; dy++ {
				if rng.Intn(3) > 0 {
					ids = append(ids, geo.ZEncode(uint32(bx+dx), uint32(by+dy)))
				}
			}
		}
		if nd := dataset.NewNodeFromCells(i, fmt.Sprintf("ds-%d", i), cellset.New(ids...)); nd != nil {
			nodes = append(nodes, nd)
		}
	}
	g := geo.NewGrid(1, geo.Rect{MinX: 0, MinY: 0, MaxX: float64(side), MaxY: float64(side)})
	return dits.Build(g, nodes, f), nodes
}

func queryFrom(rng *rand.Rand, nodes []*dataset.Node) *dataset.Node {
	q := nodes[rng.Intn(len(nodes))].Cells
	for j := 0; j < rng.Intn(3); j++ {
		q = q.Union(nodes[rng.Intn(len(nodes))].Cells)
	}
	return dataset.NewNodeFromCells(-1, "query", q)
}

// writeSnap writes idx to a fresh snapshot file and returns its path.
func writeSnap(t testing.TB, idx *dits.Local) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.dsnap")
	if err := WriteFile(path, idx); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func pickedIDs(r coverage.Result) []int {
	ids := make([]int, len(r.Picked))
	for i, nd := range r.Picked {
		ids[i] = nd.ID
	}
	return ids
}

// checkParity runs the full search surface — sequential top-k, parallel
// and batched executor, coverage search, connect-set walks — against both
// indexes and requires identical results.
func checkParity(t *testing.T, heap, fb *dits.Local, nodes []*dataset.Node, seed int64) {
	t.Helper()
	if err := fb.CheckInvariants(); err != nil {
		t.Fatalf("file-backed invariants: %v", err)
	}
	if heap.Len() != fb.Len() {
		t.Fatalf("Len: heap %d, file-backed %d", heap.Len(), fb.Len())
	}
	for _, nd := range heap.All() {
		got := fb.Get(nd.ID)
		if got == nil {
			t.Fatalf("dataset %d missing from file-backed index", nd.ID)
		}
		if got.Name != nd.Name || got.Rect != nd.Rect || got.Coverage() != nd.Coverage() {
			t.Fatalf("dataset %d differs: %+v vs %+v", nd.ID, got, nd)
		}
		if !got.CompactCells().Equal(nd.CompactCells()) {
			t.Fatalf("dataset %d cells differ", nd.ID)
		}
	}
	rng := rand.New(rand.NewSource(seed * 131))
	hs := &overlap.DITSSearcher{Index: heap}
	fs := &overlap.DITSSearcher{Index: fb}
	e := &exec.Executor{Workers: 4}
	ctx := context.Background()
	var batch []exec.BatchQuery
	for qi := 0; qi < 10; qi++ {
		q := queryFrom(rng, nodes)
		k := 1 + rng.Intn(8)
		want := hs.TopK(q, k)
		if got := fs.TopK(q, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d query %d: TopK %v != heap %v", seed, qi, got, want)
		}
		got, err := e.OverlapTopK(ctx, fb, q, k)
		if err != nil {
			t.Fatalf("executor: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d query %d: executor %v != heap %v", seed, qi, got, want)
		}
		batch = append(batch, exec.BatchQuery{Q: q, K: k})

		delta := float64(1 + rng.Intn(4))
		ck := 1 + rng.Intn(4)
		wantCov, err := e.CoverageSearch(ctx, heap, q, delta, ck)
		if err != nil {
			t.Fatalf("heap coverage: %v", err)
		}
		gotCov, err := e.CoverageSearch(ctx, fb, q, delta, ck)
		if err != nil {
			t.Fatalf("file-backed coverage: %v", err)
		}
		if !reflect.DeepEqual(pickedIDs(gotCov), pickedIDs(wantCov)) || gotCov.Coverage != wantCov.Coverage {
			t.Fatalf("seed %d query %d: coverage %v/%d != heap %v/%d",
				seed, qi, pickedIDs(gotCov), gotCov.Coverage, pickedIDs(wantCov), wantCov.Coverage)
		}
		wantConn := coverage.FindConnectSet(heap.Root, q, delta)
		gotConn := coverage.FindConnectSet(fb.Root, q, delta)
		if len(wantConn) != len(gotConn) {
			t.Fatalf("seed %d query %d: connect set size %d != %d", seed, qi, len(gotConn), len(wantConn))
		}
		for i := range wantConn {
			if wantConn[i].ID != gotConn[i].ID {
				t.Fatalf("seed %d query %d: connect set diverges at %d", seed, qi, i)
			}
		}
	}
	wantBatch, err := e.OverlapTopKBatch(ctx, heap, batch)
	if err != nil {
		t.Fatalf("heap batch: %v", err)
	}
	gotBatch, err := e.OverlapTopKBatch(ctx, fb, batch)
	if err != nil {
		t.Fatalf("file-backed batch: %v", err)
	}
	if !reflect.DeepEqual(gotBatch, wantBatch) {
		t.Fatalf("seed %d: batch diverged", seed)
	}
}

// TestRoundTripParity is the tentpole differential: a snapshot opened in
// mmap mode, in copy mode, and via LoadHeap must be search-identical to
// the heap index it was written from.
func TestRoundTripParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, cfg := range []struct{ n, f int }{{1, 4}, {7, 2}, {120, 5}, {250, 16}} {
			heap, nodes := buildWorld(t, cfg.n, 8, cfg.f, seed)
			path := writeSnap(t, heap)
			for _, opts := range []Options{{MMap: true}, {MMap: false, VerifyData: true}} {
				r, err := Open(path, opts)
				if err != nil {
					t.Fatalf("n=%d f=%d mmap=%v: Open: %v", cfg.n, cfg.f, opts.MMap, err)
				}
				checkParity(t, heap, r.Index(), nodes, seed)
				if r.LoadErrors() != 0 {
					t.Fatalf("load errors: %d", r.LoadErrors())
				}
				if opts.MMap && mmapSupported {
					if !r.Mapped() || r.MappedBytes() == 0 {
						t.Fatal("mmap open did not map")
					}
					r.DropResident()
					// Results must survive a page drop (refault from file).
					checkParity(t, heap, r.Index(), nodes, seed+7)
				}
				if r.Index().MemoryBytes() != r.ResidentEstBytes() {
					t.Fatal("file-backed MemoryBytes should delegate to Backing")
				}
				if err := r.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			}
			hl, err := LoadHeap(path)
			if err != nil {
				t.Fatalf("LoadHeap: %v", err)
			}
			if hl.Backing != nil {
				t.Fatal("LoadHeap index still file-backed")
			}
			checkParity(t, heap, hl, nodes, seed+13)
		}
	}
}

// TestWriterDeterministic pins byte-stable output: two writes of one
// index are identical, so snapshot checksums are reproducible.
func TestWriterDeterministic(t *testing.T) {
	heap, _ := buildWorld(t, 90, 8, 5, 4)
	a, err := os.ReadFile(writeSnap(t, heap))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(writeSnap(t, heap))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two writes of the same index differ")
	}
}

// TestLiveOverlayParity is the WAL-overlay differential: the same
// mutation stream applied to a file-backed index (lazy leaves and all)
// and to a plain heap index must leave them search-identical at every
// checkpoint. This is exactly what the ingest store does between
// compactions — serve the snapshot with the WAL tail applied on top.
func TestLiveOverlayParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		path := writeSnap(t, mustBuild(t, seed))
		for _, mm := range []bool{true, false} {
			// Fresh heap twin each mode: both sides mutate below.
			heap, nodes := buildWorld(t, 100, 8, 4, seed)
			r, err := Open(path, Options{MMap: mm})
			if err != nil {
				t.Fatal(err)
			}
			fb := r.Index()
			rng := rand.New(rand.NewSource(seed * 977))
			live := append([]*dataset.Node(nil), nodes...)
			nextID := 10_000
			for step := 0; step < 60; step++ {
				switch op := rng.Intn(3); {
				case op == 0 || len(live) < 5: // insert
					nd := queryFrom(rng, nodes)
					nd.ID, nd.Name = nextID, fmt.Sprintf("ins-%d", nextID)
					nextID++
					nd2 := dataset.NewNodeFromCells(nd.ID, nd.Name, nd.Cells)
					if err := heap.Insert(nd); err != nil {
						t.Fatalf("heap insert: %v", err)
					}
					if err := fb.Insert(nd2); err != nil {
						t.Fatalf("file-backed insert: %v", err)
					}
					live = append(live, nd)
				case op == 1: // delete
					i := rng.Intn(len(live))
					id := live[i].ID
					live = append(live[:i], live[i+1:]...)
					if err := heap.Delete(id); err != nil {
						t.Fatalf("heap delete %d: %v", id, err)
					}
					if err := fb.Delete(id); err != nil {
						t.Fatalf("file-backed delete %d: %v", id, err)
					}
				default: // update
					i := rng.Intn(len(live))
					id, name := live[i].ID, live[i].Name
					c := queryFrom(rng, nodes).Cells
					upd := dataset.NewNodeFromCells(id, name, c)
					upd2 := dataset.NewNodeFromCells(id, name, c)
					if err := heap.Update(upd); err != nil {
						t.Fatalf("heap update %d: %v", id, err)
					}
					if err := fb.Update(upd2); err != nil {
						t.Fatalf("file-backed update %d: %v", id, err)
					}
					live[i] = upd
				}
				if step%15 == 14 {
					checkParity(t, heap, fb, live, seed+int64(step))
				}
			}
			checkParity(t, heap, fb, live, seed+99)
			r.Close()
		}
	}
}

func mustBuild(t *testing.T, seed int64) *dits.Local {
	t.Helper()
	heap, _ := buildWorld(t, 100, 8, 4, seed)
	return heap
}

// sectionTable parses the five section descriptors out of raw header
// bytes (offsets only; the test corrupts files below the API).
func sectionTable(t *testing.T, raw []byte) [numSecs]section {
	t.Helper()
	var secs [numSecs]section
	for i := range secs {
		p := raw[72+24*i:]
		secs[i] = section{
			off: binary.LittleEndian.Uint64(p),
			len: binary.LittleEndian.Uint64(p[8:]),
		}
	}
	return secs
}

// TestTornAndCorruptFiles drives the torn-write table: truncation at
// every section boundary and a bit flip inside every section must fail
// cleanly — an error from a verifying open, never a panic — which is
// what lets ingest recovery fall back to a WAL replay.
func TestTornAndCorruptFiles(t *testing.T) {
	heap, nodes := buildWorld(t, 80, 8, 5, 6)
	good, err := os.ReadFile(writeSnap(t, heap))
	if err != nil {
		t.Fatal(err)
	}
	secs := sectionTable(t, good)

	type tc struct {
		name string
		data []byte
	}
	var cases []tc
	trunc := func(name string, n uint64) {
		if n < uint64(len(good)) {
			cases = append(cases, tc{name, good[:n]})
		}
	}
	trunc("empty", 0)
	trunc("half-header", headerLen/2)
	trunc("header-only", headerLen)
	for i, s := range secs {
		trunc(fmt.Sprintf("at-section-%d", i), s.off)
		trunc(fmt.Sprintf("mid-section-%d", i), s.off+s.len/2)
		trunc(fmt.Sprintf("end-section-%d", i), s.off+s.len)
	}
	trunc("last-byte", uint64(len(good))-1)
	flip := func(name string, at uint64) {
		b := append([]byte(nil), good...)
		b[at] ^= 0x10
		cases = append(cases, tc{name, b})
	}
	flip("magic", 0)
	flip("header-crc", 9)
	flip("header-body", 40)
	for i, s := range secs {
		if s.len > 0 {
			flip(fmt.Sprintf("flip-section-%d", i), s.off+s.len/2)
		}
	}

	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	for ci, c := range cases {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.dsnap", ci))
		if err := os.WriteFile(path, c.data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The verifying open (ingest recovery) must reject every case.
		if err := Verify(path); err == nil {
			t.Errorf("%s: Verify accepted corrupt snapshot", c.name)
		}
		// A non-verifying open may succeed on payload damage; it must
		// never panic, whatever searches run afterwards.
		for _, mm := range []bool{true, false} {
			r, err := Open(path, Options{MMap: mm})
			if err != nil {
				continue
			}
			s := &overlap.DITSSearcher{Index: r.Index()}
			for qi := 0; qi < 3; qi++ {
				s.TopK(queryFrom(rng, nodes), 5)
			}
			r.Index().CheckInvariants()
			r.Close()
		}
	}
}

// FuzzSnapshotDecode feeds arbitrary bytes through the full open path —
// header decode, skeleton validation, and leaf materialization via a
// search — asserting it never panics. Seeds include a valid snapshot so
// the fuzzer mutates from meaningful structure.
func FuzzSnapshotDecode(f *testing.F) {
	heap, _ := buildWorld(f, 16, 6, 3, 11)
	good, err := os.ReadFile(writeSnap(f, heap))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:headerLen])
	f.Add(good[:len(good)/2])
	f.Add([]byte(magic))
	q := dataset.NewNodeFromCells(-1, "q", cellset.New(1, 2, 3, 257, 70000))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.dsnap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		for _, opts := range []Options{{MMap: true}, {VerifyData: true}} {
			r, err := Open(path, opts)
			if err != nil {
				continue
			}
			(&overlap.DITSSearcher{Index: r.Index()}).TopK(q, 3)
			r.Index().CheckInvariants()
			r.Close()
		}
	})
}
