//go:build !unix

package ditsfile

import (
	"errors"
	"os"
)

const mmapSupported = false

var errNoMmap = errors.New("ditsfile: mmap not supported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmap(b []byte) error { return nil }

func madviseDontNeed(b []byte) error { return nil }
