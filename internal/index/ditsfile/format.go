// Package ditsfile is the binary on-disk snapshot format of a DITS-L
// index, designed to be searched IN PLACE: the reader mmaps the file
// (io.ReaderAt fallback off unix), decodes only the fixed-width tree
// skeleton eagerly, and materializes each leaf's payload — child cell
// containers, Lemma 2/3 union/all summaries, posting lists — on first
// touch, straight out of the mapping with zero copies on little-endian
// hosts. A leaf the tree walk prunes never faults its pages in, which is
// what lets one source serve an index several times larger than its RAM
// budget (ROADMAP item 5; measured by `ditsbench -exp bigsource`).
//
// # Layout
//
// All integers are little-endian; every section and every record inside
// one starts 8-byte aligned, so mapped payload words are naturally
// aligned for in-place use.
//
//	header (192 B)
//	  [0:8)    magic "DSNAP001"
//	  [8:12)   u32 CRC-32C of header[12:192)
//	  [12:16)  u32 flags (must be 1: little-endian payload)
//	  [16:20)  u32 theta      — grid resolution
//	  [20:24)  u32 leafCap    — the index's f
//	  [24:56)  f64 originX, originY, cellW, cellH
//	  [56:60)  u32 numNodes   — tree nodes, preorder, root first
//	  [60:64)  u32 numDatasets
//	  [64:72)  u64 fileSize   — total bytes, rejects truncated files
//	  [72:192) 5 × section descriptor {u64 off, u64 len, u32 crc32c, u32 0}
//	           in order: NODES, DIR, NAMES, CELLS, POST
//
//	NODES — numNodes × 104 B records (tree skeleton, preorder):
//	  [0:32)   f64 minX, minY, maxX, maxY  — MBR in grid coordinates
//	  [32:48)  f64 oX, oY                  — pivot
//	  [48:56)  f64 r                       — radius
//	  [56:64)  u32 left, right             — node indexes; ~0 = leaf
//	  [64:72)  u32 firstChild, numChildren — DIR range of a leaf's datasets
//	  [72:76)  u32 maxCells                — Lemma 2/3 free bound |S_D|max
//	  [76:80)  u32 reserved (0)
//	  [80:88)  u64 unionOff  — CELLS offset of the leaf union summary, ~0 if none
//	  [88:96)  u64 allOff    — CELLS offset of the all-children summary
//	  [96:104) u64 postOff   — POST offset of the leaf's posting block
//
//	DIR — numDatasets × 88 B records (dataset stubs, leaf-major order so
//	every leaf's children are one contiguous range):
//	  [0:8)    i64 id
//	  [8:16)   u32 nameOff, nameLen        — into NAMES
//	  [16:48)  f64 minX, minY, maxX, maxY
//	  [48:72)  f64 oX, oY, r
//	  [72:80)  u64 cellsOff                — CELLS offset of the cell record
//	  [80:88)  u32 numCells, u32 reserved (0)
//
//	NAMES — raw name bytes, addressed by DIR.
//
//	CELLS — cellset storage records (cellset.AppendStorage): the children's
//	cell containers and the per-leaf union/all summaries, 8-aligned.
//
//	POST — per-leaf posting blocks, 8-aligned:
//	  u32 nCells, u32 nEntries
//	  u64 × nCells   distinct cells, strictly ascending (== union summary)
//	  u32 × nCells   prefix end offsets into the entries
//	  u16 × nEntries child positions, grouped per cell, ascending
//	  pad to 8
//
// # Integrity
//
// The header CRC and the NODES/DIR/NAMES section CRCs are verified at
// every Open (they are small and decoded eagerly anyway). The CELLS/POST
// CRCs cover the bulk payload and are verified only when
// Options.VerifyData is set — the ingest recovery path does; latency
// benchmarks do not, so a cold open faults nothing it does not search.
// Independent of CRCs, every record is structurally validated when
// touched; a leaf whose payload fails validation degrades to an empty
// leaf and bumps the reader's error counter. No input bytes can panic
// the reader (FuzzSnapshotDecode).
package ditsfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"dits/internal/geo"
)

const (
	magic     = "DSNAP001"
	headerLen = 192

	flagLittleEndian = 1

	secNodes = 0
	secDir   = 1
	secNames = 2
	secCells = 3
	secPost  = 4
	numSecs  = 5

	nodeRecLen = 104
	dirRecLen  = 88

	noneU32 = ^uint32(0)
	noneU64 = ^uint64(0)
)

// castagnoli is the CRC-32C polynomial table shared by writer and reader.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// section is one section descriptor of the header table.
type section struct {
	off, len uint64
	crc      uint32
}

// header is the decoded file header.
type header struct {
	grid        geo.Grid
	leafCap     int
	numNodes    int
	numDatasets int
	fileSize    uint64
	secs        [numSecs]section
}

// encode serializes the header, computing its CRC.
func (h *header) encode() []byte {
	buf := make([]byte, headerLen)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[12:], flagLittleEndian)
	binary.LittleEndian.PutUint32(buf[16:], uint32(h.grid.Theta))
	binary.LittleEndian.PutUint32(buf[20:], uint32(h.leafCap))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(h.grid.Origin.X))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(h.grid.Origin.Y))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(h.grid.CellW))
	binary.LittleEndian.PutUint64(buf[48:], math.Float64bits(h.grid.CellH))
	binary.LittleEndian.PutUint32(buf[56:], uint32(h.numNodes))
	binary.LittleEndian.PutUint32(buf[60:], uint32(h.numDatasets))
	binary.LittleEndian.PutUint64(buf[64:], h.fileSize)
	for i, s := range h.secs {
		p := buf[72+24*i:]
		binary.LittleEndian.PutUint64(p, s.off)
		binary.LittleEndian.PutUint64(p[8:], s.len)
		binary.LittleEndian.PutUint32(p[16:], s.crc)
	}
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(buf[12:], castagnoli))
	return buf
}

// decodeHeader parses and validates the header against the actual file
// size. Every failure mode is a clean error: recovery falls back to a
// full WAL replay when a snapshot does not open.
func decodeHeader(buf []byte, fileSize int64) (*header, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("ditsfile: file shorter than header (%d bytes)", len(buf))
	}
	if string(buf[:8]) != magic {
		return nil, fmt.Errorf("ditsfile: bad magic %q", buf[:8])
	}
	if got, want := crc32.Checksum(buf[12:headerLen], castagnoli), binary.LittleEndian.Uint32(buf[8:]); got != want {
		return nil, fmt.Errorf("ditsfile: header CRC mismatch (got %08x, want %08x)", got, want)
	}
	if flags := binary.LittleEndian.Uint32(buf[12:]); flags != flagLittleEndian {
		return nil, fmt.Errorf("ditsfile: unsupported flags %#x", flags)
	}
	h := &header{
		leafCap:     int(binary.LittleEndian.Uint32(buf[20:])),
		numNodes:    int(binary.LittleEndian.Uint32(buf[56:])),
		numDatasets: int(binary.LittleEndian.Uint32(buf[60:])),
		fileSize:    binary.LittleEndian.Uint64(buf[64:]),
	}
	h.grid.Theta = int(binary.LittleEndian.Uint32(buf[16:]))
	h.grid.Origin.X = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	h.grid.Origin.Y = math.Float64frombits(binary.LittleEndian.Uint64(buf[32:]))
	h.grid.CellW = math.Float64frombits(binary.LittleEndian.Uint64(buf[40:]))
	h.grid.CellH = math.Float64frombits(binary.LittleEndian.Uint64(buf[48:]))
	if h.grid.Theta < 1 || h.grid.Theta > geo.MaxTheta {
		return nil, fmt.Errorf("ditsfile: corrupt resolution θ=%d", h.grid.Theta)
	}
	if h.leafCap < 1 || h.leafCap > 1<<20 {
		return nil, fmt.Errorf("ditsfile: corrupt leaf capacity %d", h.leafCap)
	}
	if h.fileSize != uint64(fileSize) {
		return nil, fmt.Errorf("ditsfile: header says %d bytes, file has %d (truncated?)", h.fileSize, fileSize)
	}
	if h.numNodes < 1 || h.numDatasets < 0 {
		return nil, fmt.Errorf("ditsfile: corrupt node counts (%d nodes, %d datasets)", h.numNodes, h.numDatasets)
	}
	prevEnd := uint64(headerLen)
	for i := range h.secs {
		p := buf[72+24*i:]
		s := section{
			off: binary.LittleEndian.Uint64(p),
			len: binary.LittleEndian.Uint64(p[8:]),
			crc: binary.LittleEndian.Uint32(p[16:]),
		}
		if binary.LittleEndian.Uint32(p[20:]) != 0 {
			return nil, fmt.Errorf("ditsfile: section %d reserved field not zero", i)
		}
		if s.off%8 != 0 || s.off < prevEnd || s.len > h.fileSize || s.off > h.fileSize-s.len {
			return nil, fmt.Errorf("ditsfile: section %d [%d,+%d) out of bounds", i, s.off, s.len)
		}
		prevEnd = s.off + s.len
		h.secs[i] = s
	}
	if uint64(h.numNodes)*nodeRecLen != h.secs[secNodes].len {
		return nil, fmt.Errorf("ditsfile: NODES section length %d != %d records", h.secs[secNodes].len, h.numNodes)
	}
	if uint64(h.numDatasets)*dirRecLen != h.secs[secDir].len {
		return nil, fmt.Errorf("ditsfile: DIR section length %d != %d records", h.secs[secDir].len, h.numDatasets)
	}
	return h, nil
}
