package ditsfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync/atomic"
	"unsafe"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

// Options configures how a snapshot is opened.
type Options struct {
	// MMap maps the file and serves leaf payloads zero-copy out of the
	// mapping. When false (or on platforms without mmap) each leaf is
	// materialized once via pread into heap copies instead — same
	// results, bounded only by how many leaves the workload touches.
	MMap bool

	// VerifyData additionally checks the CELLS and POST section CRCs at
	// open. The header and the NODES/DIR/NAMES sections are always
	// verified. Ingest recovery sets this (a corrupt snapshot must fall
	// back to WAL replay, not serve wrong counts); latency benchmarks do
	// not, so a cold open faults nothing the queries will not.
	VerifyData bool
}

// Reader is an open snapshot: it owns the file (and mapping) behind the
// *dits.Local it assembled. The index stays valid until Close; in mmap
// mode Close unmaps memory live search results may still alias, so an
// owner that swaps readers (the ingest store) must keep retired readers
// open until the whole store shuts down.
type Reader struct {
	f    *os.File
	data []byte // whole-file mapping; nil in copy mode
	hdr  *header

	local    *dits.Local
	skeleton int64 // heap estimate of the eagerly decoded skeleton

	leafLoads atomic.Int64
	resident  atomic.Int64
	loadErrs  atomic.Int64
}

// dsMeta is the payload address of one dataset, kept reader-side.
type dsMeta struct {
	cellsOff uint64
	numCells uint32
}

// leafMeta is the payload address of one leaf.
type leafMeta struct {
	unionOff, allOff, postOff uint64
	first, count              uint32
}

// Open opens a snapshot and assembles its file-backed index. The header
// and skeleton sections are decoded and CRC-verified eagerly; leaf
// payloads stay on disk until a search touches them. Any corruption
// detectable at this point is a clean error — the caller (ingest
// recovery) falls back to replaying the WAL from the previous snapshot.
func Open(path string, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := open(f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func open(f *os.File, opts Options) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hbuf := make([]byte, headerLen)
	if _, err := f.ReadAt(hbuf, 0); err != nil {
		return nil, fmt.Errorf("ditsfile: read header: %w", err)
	}
	hdr, err := decodeHeader(hbuf, st.Size())
	if err != nil {
		return nil, err
	}
	r := &Reader{f: f, hdr: hdr}
	if opts.MMap && mmapSupported {
		data, err := mmapFile(f, st.Size())
		if err != nil {
			return nil, fmt.Errorf("ditsfile: mmap: %w", err)
		}
		r.data = data
	}
	for _, si := range []int{secNodes, secDir, secNames} {
		if err := r.verifySection(si); err != nil {
			r.cleanup()
			return nil, err
		}
	}
	if opts.VerifyData {
		for _, si := range []int{secCells, secPost} {
			if err := r.verifySection(si); err != nil {
				r.cleanup()
				return nil, err
			}
		}
	}
	if err := r.assemble(); err != nil {
		r.cleanup()
		return nil, err
	}
	return r, nil
}

func (r *Reader) cleanup() {
	munmap(r.data)
	r.data = nil
}

// Index returns the file-backed index. It is valid until Close.
func (r *Reader) Index() *dits.Local { return r.local }

// Mapped reports whether the reader serves payloads from an mmap'd file
// (false when opened in copy mode or on platforms without mmap).
func (r *Reader) Mapped() bool { return r.data != nil }

// MappedBytes implements dits.BackingInfo.
func (r *Reader) MappedBytes() int64 { return int64(len(r.data)) }

// ResidentEstBytes implements dits.BackingInfo: the decoded skeleton plus
// the payload bytes of every leaf materialized so far. In copy mode this
// tracks actual heap; in mmap mode it estimates the mapped pages the
// index has faulted in (an upper bound the OS is free to shrink).
func (r *Reader) ResidentEstBytes() int64 { return r.skeleton + r.resident.Load() }

// LeafLoads implements dits.BackingInfo.
func (r *Reader) LeafLoads() int64 { return r.leafLoads.Load() }

// LoadErrors implements dits.BackingInfo.
func (r *Reader) LoadErrors() int64 { return r.loadErrs.Load() }

// DropResident asks the kernel to drop the mapping's resident pages (a
// no-op in copy mode). Already-materialized leaves stay valid — their
// views refault from the file on next access.
func (r *Reader) DropResident() { madviseDontNeed(r.data) }

// Close unmaps and closes the file. In mmap mode the index and anything
// aliasing it must no longer be in use.
func (r *Reader) Close() error {
	err := munmap(r.data)
	r.data = nil
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadHeap fully materializes a snapshot into an ordinary heap-resident
// index and closes the file: the gob-replacement load path for stores
// running without -mmap. It is strict — data CRCs are verified and any
// leaf that fails validation fails the load.
func LoadHeap(path string) (*dits.Local, error) {
	r, err := Open(path, Options{VerifyData: true})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var lerr error
	r.local.Root.VisitLeaves(func(n *dits.TreeNode) {
		n.EnsureLoaded()
		if err := n.LoadErr(); err != nil && lerr == nil {
			lerr = err
		}
	})
	if lerr != nil {
		return nil, lerr
	}
	r.local.Backing = nil
	return r.local, nil
}

// Verify opens the snapshot in copy mode with full CRC verification and
// materializes every leaf, reporting the first corruption found.
func Verify(path string) error {
	_, err := LoadHeap(path)
	return err
}

// verifySection checks one section's CRC-32C, streaming in copy mode so
// verification never buffers a whole data section.
func (r *Reader) verifySection(si int) error {
	sec := r.hdr.secs[si]
	var got uint32
	if r.data != nil {
		got = crc32.Checksum(r.data[sec.off:sec.off+sec.len], castagnoli)
	} else {
		buf := make([]byte, 1<<20)
		off, rem := int64(sec.off), int64(sec.len)
		for rem > 0 {
			n := int64(len(buf))
			if rem < n {
				n = rem
			}
			if _, err := r.f.ReadAt(buf[:n], off); err != nil {
				return fmt.Errorf("ditsfile: read section %d: %w", si, err)
			}
			got = crc32.Update(got, castagnoli, buf[:n])
			off += n
			rem -= n
		}
	}
	if got != sec.crc {
		return fmt.Errorf("ditsfile: section %d CRC mismatch (got %08x, want %08x)", si, got, sec.crc)
	}
	return nil
}

// sectionBytes returns a whole section: a mapping subslice, or one pread.
func (r *Reader) sectionBytes(si int) ([]byte, error) {
	sec := r.hdr.secs[si]
	if r.data != nil {
		return r.data[sec.off : sec.off+sec.len], nil
	}
	buf := make([]byte, sec.len)
	if _, err := r.f.ReadAt(buf, int64(sec.off)); err != nil {
		return nil, fmt.Errorf("ditsfile: read section %d: %w", si, err)
	}
	return buf, nil
}

// assemble decodes the skeleton (NODES, DIR, NAMES), validates the tree
// shape, and arms every non-empty leaf with its lazy loader.
func (r *Reader) assemble() error {
	h := r.hdr
	nodesB, err := r.sectionBytes(secNodes)
	if err != nil {
		return err
	}
	dirB, err := r.sectionBytes(secDir)
	if err != nil {
		return err
	}
	namesB, err := r.sectionBytes(secNames)
	if err != nil {
		return err
	}

	// Dataset stubs. Duplicate IDs are caught by NewFromTree below.
	stubs := make([]*dataset.Node, h.numDatasets)
	arena := make([]dataset.Node, h.numDatasets)
	ds := make([]dsMeta, h.numDatasets)
	for j := 0; j < h.numDatasets; j++ {
		b := dirB[j*dirRecLen:]
		nameOff := binary.LittleEndian.Uint32(b[8:])
		nameLen := binary.LittleEndian.Uint32(b[12:])
		if uint64(nameOff)+uint64(nameLen) > uint64(len(namesB)) {
			return fmt.Errorf("ditsfile: dataset %d name out of bounds", j)
		}
		cellsOff := binary.LittleEndian.Uint64(b[72:])
		numCells := binary.LittleEndian.Uint32(b[80:])
		if binary.LittleEndian.Uint32(b[84:]) != 0 {
			return fmt.Errorf("ditsfile: dataset %d reserved field not zero", j)
		}
		if numCells == 0 || cellsOff%8 != 0 || cellsOff >= h.secs[secCells].len {
			return fmt.Errorf("ditsfile: dataset %d payload address corrupt", j)
		}
		nd := &arena[j]
		nd.ID = int(int64(binary.LittleEndian.Uint64(b)))
		nd.Name = string(namesB[nameOff : nameOff+nameLen])
		nd.Rect, nd.O, nd.R = getRect(b[16:])
		stubs[j] = nd
		ds[j] = dsMeta{cellsOff: cellsOff, numCells: numCells}
	}

	// Tree skeleton.
	tree := make([]dits.TreeNode, h.numNodes)
	metas := make([]leafMeta, h.numNodes)
	refs := make([]uint8, h.numNodes)
	claimed := 0
	for i := 0; i < h.numNodes; i++ {
		b := nodesB[i*nodeRecLen:]
		n := &tree[i]
		n.Rect, n.O, n.R = getRect(b)
		left := binary.LittleEndian.Uint32(b[56:])
		right := binary.LittleEndian.Uint32(b[60:])
		first := binary.LittleEndian.Uint32(b[64:])
		count := binary.LittleEndian.Uint32(b[68:])
		n.MaxCells = int(binary.LittleEndian.Uint32(b[72:]))
		if binary.LittleEndian.Uint32(b[76:]) != 0 {
			return fmt.Errorf("ditsfile: node %d reserved field not zero", i)
		}
		m := leafMeta{
			unionOff: binary.LittleEndian.Uint64(b[80:]),
			allOff:   binary.LittleEndian.Uint64(b[88:]),
			postOff:  binary.LittleEndian.Uint64(b[96:]),
			first:    first,
			count:    count,
		}
		if (left == noneU32) != (right == noneU32) {
			return fmt.Errorf("ditsfile: node %d has one child link", i)
		}
		if left != noneU32 { // internal
			if int(left) <= i || int(left) >= h.numNodes || int(right) <= i || int(right) >= h.numNodes || left == right {
				return fmt.Errorf("ditsfile: node %d child links corrupt", i)
			}
			if count != 0 || first != 0 || m.unionOff != noneU64 || m.allOff != noneU64 || m.postOff != noneU64 {
				return fmt.Errorf("ditsfile: internal node %d carries leaf payload", i)
			}
			n.Left, n.Right = &tree[left], &tree[right]
			tree[left].Parent, tree[right].Parent = n, n
			refs[left]++
			refs[right]++
			continue
		}
		// Leaf.
		if int(count) > h.leafCap || uint64(first)+uint64(count) > uint64(h.numDatasets) {
			return fmt.Errorf("ditsfile: leaf %d child range corrupt", i)
		}
		if count == 0 {
			if m.unionOff != noneU64 || m.allOff != noneU64 || m.postOff != noneU64 {
				return fmt.Errorf("ditsfile: empty leaf %d carries payload addresses", i)
			}
			continue
		}
		if m.unionOff == noneU64 || m.unionOff%8 != 0 || m.unionOff >= h.secs[secCells].len ||
			m.allOff == noneU64 || m.allOff%8 != 0 || m.allOff >= h.secs[secCells].len ||
			m.postOff == noneU64 || m.postOff%8 != 0 || m.postOff >= h.secs[secPost].len {
			return fmt.Errorf("ditsfile: leaf %d payload addresses corrupt", i)
		}
		maxCov := 0
		for j := first; j < first+count; j++ {
			if cov := int(ds[j].numCells); cov > maxCov {
				maxCov = cov
			}
		}
		// MaxCells is a search-pruning bound: a too-small value silently
		// drops results, so it must match the directory exactly.
		if n.MaxCells != maxCov {
			return fmt.Errorf("ditsfile: leaf %d MaxCells %d != max child coverage %d", i, n.MaxCells, maxCov)
		}
		n.Children = stubs[first : first+count : first+count]
		claimed += int(count)
		metas[i] = m
	}
	for i := 1; i < h.numNodes; i++ {
		if refs[i] != 1 {
			return fmt.Errorf("ditsfile: node %d referenced %d times", i, refs[i])
		}
	}
	if refs[0] != 0 {
		return fmt.Errorf("ditsfile: root is referenced as a child")
	}
	if claimed != h.numDatasets {
		return fmt.Errorf("ditsfile: leaves claim %d datasets, directory has %d", claimed, h.numDatasets)
	}

	for i := range tree {
		n := &tree[i]
		if !n.IsLeaf() || len(n.Children) == 0 {
			continue
		}
		m := metas[i]
		kids := ds[m.first : m.first+m.count]
		dits.AttachLazyLeaf(n, func() (dits.LeafData, error) { return r.loadLeaf(m, kids) })
	}

	local, err := dits.NewFromTree(h.grid, h.leafCap, &tree[0])
	if err != nil {
		return err
	}
	local.Backing = r
	r.local = local
	r.skeleton = int64(h.numNodes)*int64(unsafe.Sizeof(dits.TreeNode{})) +
		int64(h.numDatasets)*(int64(unsafe.Sizeof(dataset.Node{}))+64) +
		int64(len(namesB))
	return nil
}

// loadLeaf materializes one leaf: child cell containers, union/all
// summaries, and the posting block. A validation failure counts as a load
// error and leaves the leaf empty; it never panics.
func (r *Reader) loadLeaf(m leafMeta, kids []dsMeta) (dits.LeafData, error) {
	r.leafLoads.Add(1)
	ld, bytes, err := r.materializeLeaf(m, kids)
	if err != nil {
		r.loadErrs.Add(1)
		return dits.LeafData{}, err
	}
	r.resident.Add(bytes)
	return ld, nil
}

func (r *Reader) materializeLeaf(m leafMeta, kids []dsMeta) (dits.LeafData, int64, error) {
	var ld dits.LeafData
	var bytes int64
	entries := 0
	ld.ChildCells = make([]*cellset.Compact, len(kids))
	for j, k := range kids {
		c, n, err := r.cellRecord(k.cellsOff)
		if err != nil {
			return ld, 0, err
		}
		if c.Len() != int(k.numCells) {
			return ld, 0, fmt.Errorf("ditsfile: cell record holds %d cells, directory says %d", c.Len(), k.numCells)
		}
		ld.ChildCells[j] = c
		entries += c.Len()
		bytes += int64(n)
	}
	union, n, err := r.cellRecord(m.unionOff)
	if err != nil {
		return ld, 0, err
	}
	bytes += int64(n)
	all, n, err := r.cellRecord(m.allOff)
	if err != nil {
		return ld, 0, err
	}
	bytes += int64(n)
	post, n, err := r.postBlock(m.postOff, union.Len(), entries, len(kids))
	if err != nil {
		return ld, 0, err
	}
	bytes += int64(n)
	ld.Union, ld.All, ld.Post = union, all, post
	return ld, bytes, nil
}

// cellRecord decodes one cellset storage record at the given CELLS
// offset. In mmap mode the containers alias the mapping; in copy mode
// they alias a fresh heap buffer read for this record.
func (r *Reader) cellRecord(off uint64) (*cellset.Compact, int, error) {
	b, err := r.recordBytes(secCells, off)
	if err != nil {
		return nil, 0, err
	}
	return cellset.ViewStorage(b)
}

// recordBytes returns the bytes of a length-prefixed record at off: the
// rest of the mapped section (the decoder reads its own length), or, in
// copy mode, exactly the record via a length pread then a payload pread.
func (r *Reader) recordBytes(si int, off uint64) ([]byte, error) {
	sec := r.hdr.secs[si]
	if off+4 > sec.len {
		return nil, fmt.Errorf("ditsfile: record offset %d beyond section %d", off, si)
	}
	if r.data != nil {
		return r.data[sec.off+off : sec.off+sec.len], nil
	}
	var l4 [4]byte
	if _, err := r.f.ReadAt(l4[:], int64(sec.off+off)); err != nil {
		return nil, fmt.Errorf("ditsfile: read record: %w", err)
	}
	byteLen := uint64(binary.LittleEndian.Uint32(l4[:]))
	if byteLen < 4 || byteLen > sec.len-off {
		return nil, fmt.Errorf("ditsfile: record at %d overruns section %d", off, si)
	}
	buf := make([]byte, byteLen)
	if _, err := r.f.ReadAt(buf, int64(sec.off+off)); err != nil {
		return nil, fmt.Errorf("ditsfile: read record: %w", err)
	}
	return buf, nil
}

// postBlock decodes one leaf posting block, validating it against the
// union summary (cell count), the children's total cells (entry count),
// and the child count (position range).
func (r *Reader) postBlock(off uint64, wantCells, wantEntries, nchildren int) (*dits.LeafPostings, int, error) {
	sec := r.hdr.secs[secPost]
	if off+8 > sec.len {
		return nil, 0, fmt.Errorf("ditsfile: posting block offset %d out of bounds", off)
	}
	var b []byte
	if r.data != nil {
		b = r.data[sec.off+off : sec.off+sec.len]
	} else {
		var h8 [8]byte
		if _, err := r.f.ReadAt(h8[:], int64(sec.off+off)); err != nil {
			return nil, 0, fmt.Errorf("ditsfile: read posting block: %w", err)
		}
		nc := int(binary.LittleEndian.Uint32(h8[:]))
		ne := int(binary.LittleEndian.Uint32(h8[4:]))
		if nc != wantCells || ne != wantEntries {
			return nil, 0, fmt.Errorf("ditsfile: posting block header (%d cells, %d entries) disagrees with leaf (%d, %d)", nc, ne, wantCells, wantEntries)
		}
		blk := postBlockLen(nc, ne)
		if blk > sec.len-off {
			return nil, 0, fmt.Errorf("ditsfile: posting block at %d overruns section", off)
		}
		b = make([]byte, blk)
		if _, err := r.f.ReadAt(b, int64(sec.off+off)); err != nil {
			return nil, 0, fmt.Errorf("ditsfile: read posting block: %w", err)
		}
	}
	nc := int(binary.LittleEndian.Uint32(b))
	ne := int(binary.LittleEndian.Uint32(b[4:]))
	if nc != wantCells || ne != wantEntries {
		return nil, 0, fmt.Errorf("ditsfile: posting block header (%d cells, %d entries) disagrees with leaf (%d, %d)", nc, ne, wantCells, wantEntries)
	}
	need := int(postBlockLen(nc, ne))
	if need > len(b) {
		return nil, 0, fmt.Errorf("ditsfile: posting block truncated")
	}
	p := &dits.LeafPostings{
		CellList: sliceU64(b[8:], nc),
		Ends:     sliceU32(b[8+8*nc:], nc),
		Entries:  sliceU16(b[8+12*nc:], ne),
	}
	prevCell := ^uint64(0)
	for i, c := range p.CellList {
		if i > 0 && c <= prevCell {
			return nil, 0, fmt.Errorf("ditsfile: posting cells not strictly ascending")
		}
		prevCell = c
	}
	prevEnd := uint32(0)
	for _, e := range p.Ends {
		if e <= prevEnd || e > uint32(ne) {
			return nil, 0, fmt.Errorf("ditsfile: posting ends corrupt")
		}
		prevEnd = e
	}
	if nc > 0 && p.Ends[nc-1] != uint32(ne) {
		return nil, 0, fmt.Errorf("ditsfile: posting ends do not cover all entries")
	}
	for _, pos := range p.Entries {
		if int(pos) >= nchildren {
			return nil, 0, fmt.Errorf("ditsfile: posting position %d out of range", pos)
		}
	}
	return p, need, nil
}

// hostLittleEndian gates the zero-copy word views below.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// sliceU64 views n little-endian u64 words at the front of b, aliasing b
// when the host representation matches and b is aligned, copying
// otherwise. Callers have bounds-checked b.
func sliceU64(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func sliceU32(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func sliceU16(b []byte, n int) []uint16 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}

// getRect decodes MBR + pivot + radius from b[0:56].
func getRect(b []byte) (geo.Rect, geo.Point, float64) {
	r := geo.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(b)),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}
	o := geo.Point{
		X: math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		Y: math.Float64frombits(binary.LittleEndian.Uint64(b[40:])),
	}
	return r, o, math.Float64frombits(binary.LittleEndian.Uint64(b[48:]))
}
