package ditsfile

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

// Write serializes idx into the snapshot format. It streams: sections are
// planned with exact sizes first, then encoded record by record through a
// CRC-tracking writer, so peak memory is one record, not one section. The
// header (which carries the section CRCs) is written last by seeking back
// to the start.
//
// Write only reads the index — materializing file-backed leaves through
// their sync.Once is its only logically-visible effect — so the ingest
// store runs it under the same shared lock searches use.
func Write(ws io.WriteSeeker, idx *dits.Local) error {
	if idx == nil || idx.Root == nil {
		return fmt.Errorf("ditsfile: write nil index")
	}
	p, err := plan(idx)
	if err != nil {
		return err
	}
	if _, err := ws.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ditsfile: write: %w", err)
	}
	h := &header{
		grid:        idx.Grid,
		leafCap:     idx.F,
		numNodes:    len(p.order),
		numDatasets: len(p.dir),
	}
	bw := bufio.NewWriterSize(ws, 1<<16)
	// Header placeholder; the real one lands after the sections are
	// streamed and their CRCs known.
	if _, err := bw.Write(make([]byte, headerLen)); err != nil {
		return fmt.Errorf("ditsfile: write: %w", err)
	}
	sw := &sectionWriter{w: bw, n: headerLen}
	if err := p.writeSections(sw, h); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ditsfile: write: %w", err)
	}
	h.fileSize = uint64(sw.n)
	if _, err := ws.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ditsfile: write: %w", err)
	}
	if _, err := ws.Write(h.encode()); err != nil {
		return fmt.Errorf("ditsfile: write header: %w", err)
	}
	return nil
}

// WriteFile writes idx to a new file at path, fsyncing before close.
// Callers needing atomic replacement (the ingest store) write to a temp
// path and rename.
func WriteFile(path string, idx *dits.Local) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, idx); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// sectionWriter tracks the byte count and per-section CRC of the stream.
type sectionWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (s *sectionWriter) begin() { s.crc = 0 }

func (s *sectionWriter) write(b []byte) error {
	s.crc = crc32.Update(s.crc, castagnoli, b)
	n, err := s.w.Write(b)
	s.n += int64(n)
	return err
}

var zeros [8]byte

// padTo8 pads the stream to the next 8-byte boundary inside a section.
func (s *sectionWriter) padTo8() error {
	if rem := s.n % 8; rem != 0 {
		return s.write(zeros[:8-rem])
	}
	return nil
}

// filePlan is the exact layout computed before any byte is emitted:
// preorder node list with child indexes, leaf-major dataset directory,
// and the running CELLS/POST/NAMES offsets every record refers to.
type filePlan struct {
	order       []*dits.TreeNode
	left, right []uint32
	firstChild  []uint32
	numChildren []uint32
	unionOff    []uint64
	allOff      []uint64
	postOff     []uint64

	dir      []*dataset.Node
	nameOff  []uint32
	cellsOff []uint64

	namesLen int64
	cellsLen uint64
	postLen  uint64
}

func plan(idx *dits.Local) (*filePlan, error) {
	p := &filePlan{}
	var err error
	var visit func(n *dits.TreeNode) uint32
	visit = func(n *dits.TreeNode) uint32 {
		i := uint32(len(p.order))
		p.order = append(p.order, n)
		p.left = append(p.left, noneU32)
		p.right = append(p.right, noneU32)
		p.firstChild = append(p.firstChild, 0)
		p.numChildren = append(p.numChildren, 0)
		p.unionOff = append(p.unionOff, noneU64)
		p.allOff = append(p.allOff, noneU64)
		p.postOff = append(p.postOff, noneU64)
		if !n.IsLeaf() {
			l := visit(n.Left)
			r := visit(n.Right)
			p.left[i], p.right[i] = l, r
			return i
		}
		p.firstChild[i] = uint32(len(p.dir))
		p.numChildren[i] = uint32(len(n.Children))
		union, all := n.LeafSummaries() // materializes a file-backed leaf
		if err != nil {
			return i
		}
		entries := 0
		for _, c := range n.Children {
			cc := c.CompactCells()
			if cc.Len() == 0 {
				err = fmt.Errorf("ditsfile: dataset %d has no cells", c.ID)
				return i
			}
			p.dir = append(p.dir, c)
			p.nameOff = append(p.nameOff, uint32(p.namesLen))
			p.cellsOff = append(p.cellsOff, p.cellsLen)
			p.namesLen += int64(len(c.Name))
			p.cellsLen += uint64(cellset.StorageSize(cc))
			entries += cc.Len()
		}
		if len(n.Children) > 0 {
			p.unionOff[i] = p.cellsLen
			p.cellsLen += uint64(cellset.StorageSize(union))
			p.allOff[i] = p.cellsLen
			p.cellsLen += uint64(cellset.StorageSize(all))
			p.postOff[i] = p.postLen
			p.postLen += postBlockLen(union.Len(), entries)
		}
		return i
	}
	visit(idx.Root)
	if err != nil {
		return nil, err
	}
	if len(p.order) > int(noneU32)-1 || p.namesLen > int64(noneU32) {
		return nil, fmt.Errorf("ditsfile: index too large for format")
	}
	return p, nil
}

// postBlockLen is the padded byte length of one leaf posting block.
func postBlockLen(nCells, nEntries int) uint64 {
	return uint64((8 + 12*nCells + 2*nEntries + 7) &^ 7)
}

// writeSections streams the five sections in order, recording their
// descriptors (offset, length, CRC) into h.
func (p *filePlan) writeSections(sw *sectionWriter, h *header) error {
	var rec [nodeRecLen]byte

	// NODES
	start := sw.n
	sw.begin()
	for i, n := range p.order {
		b := rec[:nodeRecLen]
		putRect(b, n.Rect, n.O, n.R)
		binary.LittleEndian.PutUint32(b[56:], p.left[i])
		binary.LittleEndian.PutUint32(b[60:], p.right[i])
		binary.LittleEndian.PutUint32(b[64:], p.firstChild[i])
		binary.LittleEndian.PutUint32(b[68:], p.numChildren[i])
		binary.LittleEndian.PutUint32(b[72:], uint32(n.MaxCells))
		binary.LittleEndian.PutUint32(b[76:], 0)
		binary.LittleEndian.PutUint64(b[80:], p.unionOff[i])
		binary.LittleEndian.PutUint64(b[88:], p.allOff[i])
		binary.LittleEndian.PutUint64(b[96:], p.postOff[i])
		if err := sw.write(b); err != nil {
			return fmt.Errorf("ditsfile: write nodes: %w", err)
		}
	}
	h.secs[secNodes] = section{off: uint64(start), len: uint64(sw.n - start), crc: sw.crc}

	// DIR
	start = sw.n
	sw.begin()
	for i, c := range p.dir {
		b := rec[:dirRecLen]
		binary.LittleEndian.PutUint64(b, uint64(int64(c.ID)))
		binary.LittleEndian.PutUint32(b[8:], p.nameOff[i])
		binary.LittleEndian.PutUint32(b[12:], uint32(len(c.Name)))
		putRect(b[16:], c.Rect, c.O, c.R)
		binary.LittleEndian.PutUint64(b[72:], p.cellsOff[i])
		binary.LittleEndian.PutUint32(b[80:], uint32(c.Coverage()))
		binary.LittleEndian.PutUint32(b[84:], 0)
		if err := sw.write(b); err != nil {
			return fmt.Errorf("ditsfile: write dir: %w", err)
		}
	}
	h.secs[secDir] = section{off: uint64(start), len: uint64(sw.n - start), crc: sw.crc}

	// NAMES
	start = sw.n
	sw.begin()
	for _, c := range p.dir {
		if err := sw.write([]byte(c.Name)); err != nil {
			return fmt.Errorf("ditsfile: write names: %w", err)
		}
	}
	h.secs[secNames] = section{off: uint64(start), len: uint64(sw.n - start), crc: sw.crc}
	if err := sw.padTo8(); err != nil {
		return fmt.Errorf("ditsfile: write: %w", err)
	}

	// CELLS: per-child records in DIR order, then each leaf's union/all
	// summaries — exactly the offsets the plan assigned.
	start = sw.n
	sw.begin()
	var buf []byte
	writeCells := func(c *cellset.Compact) error {
		buf = cellset.AppendStorage(buf[:0], c)
		return sw.write(buf)
	}
	for i, n := range p.order {
		if !n.IsLeaf() || len(n.Children) == 0 {
			continue
		}
		for _, c := range n.Children {
			if uint64(sw.n-start) != p.cellsOff[p.childDirIdx(i, c)] {
				return fmt.Errorf("ditsfile: cells offset drift at dataset %d", c.ID)
			}
			if err := writeCells(c.CompactCells()); err != nil {
				return fmt.Errorf("ditsfile: write cells: %w", err)
			}
		}
		union, all := n.LeafSummaries()
		if uint64(sw.n-start) != p.unionOff[i] {
			return fmt.Errorf("ditsfile: union offset drift at node %d", i)
		}
		if err := writeCells(union); err != nil {
			return fmt.Errorf("ditsfile: write cells: %w", err)
		}
		if err := writeCells(all); err != nil {
			return fmt.Errorf("ditsfile: write cells: %w", err)
		}
	}
	h.secs[secCells] = section{off: uint64(start), len: uint64(sw.n - start), crc: sw.crc}

	// POST
	start = sw.n
	sw.begin()
	for i, n := range p.order {
		if !n.IsLeaf() || len(n.Children) == 0 {
			continue
		}
		if uint64(sw.n-start) != p.postOff[i] {
			return fmt.Errorf("ditsfile: post offset drift at node %d", i)
		}
		if err := writePostings(sw, n.Children); err != nil {
			return err
		}
	}
	h.secs[secPost] = section{off: uint64(start), len: uint64(sw.n - start), crc: sw.crc}
	return nil
}

// childDirIdx returns the DIR index of child c of the leaf at node index
// i. Children are contiguous from firstChild in slice order, so this is a
// bounded scan used only for the offset-drift assertions.
func (p *filePlan) childDirIdx(i int, c *dataset.Node) int {
	first := int(p.firstChild[i])
	for j := 0; j < int(p.numChildren[i]); j++ {
		if p.dir[first+j] == c {
			return first + j
		}
	}
	return first
}

// writePostings emits one leaf's posting block: the flattened inverted
// index grouped by cell, positions ascending within each cell.
func writePostings(sw *sectionWriter, children []*dataset.Node) error {
	type pair struct {
		cell uint64
		pos  uint16
	}
	var pairs []pair
	for pos, c := range children {
		c.CompactCells().ForEach(func(cell uint64) bool {
			pairs = append(pairs, pair{cell, uint16(pos)})
			return true
		})
	}
	slices.SortFunc(pairs, func(a, b pair) int {
		if c := cmp.Compare(a.cell, b.cell); c != 0 {
			return c
		}
		return cmp.Compare(a.pos, b.pos)
	})
	nCells := 0
	for i, pr := range pairs {
		if i == 0 || pr.cell != pairs[i-1].cell {
			nCells++
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(nCells))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(pairs)))
	if err := sw.write(hdr[:]); err != nil {
		return fmt.Errorf("ditsfile: write post: %w", err)
	}
	var w8 [8]byte
	for i, pr := range pairs {
		if i == 0 || pr.cell != pairs[i-1].cell {
			binary.LittleEndian.PutUint64(w8[:], pr.cell)
			if err := sw.write(w8[:]); err != nil {
				return fmt.Errorf("ditsfile: write post: %w", err)
			}
		}
	}
	end := uint32(0)
	for i, pr := range pairs {
		end++
		if i == len(pairs)-1 || pr.cell != pairs[i+1].cell {
			binary.LittleEndian.PutUint32(w8[:4], end)
			if err := sw.write(w8[:4]); err != nil {
				return fmt.Errorf("ditsfile: write post: %w", err)
			}
		}
	}
	for _, pr := range pairs {
		binary.LittleEndian.PutUint16(w8[:2], pr.pos)
		if err := sw.write(w8[:2]); err != nil {
			return fmt.Errorf("ditsfile: write post: %w", err)
		}
	}
	return sw.padTo8()
}

// putRect encodes MBR + pivot + radius at b[0:56].
func putRect(b []byte, r geo.Rect, o geo.Point, rad float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.MaxY))
	binary.LittleEndian.PutUint64(b[32:], math.Float64bits(o.X))
	binary.LittleEndian.PutUint64(b[40:], math.Float64bits(o.Y))
	binary.LittleEndian.PutUint64(b[48:], math.Float64bits(rad))
}
