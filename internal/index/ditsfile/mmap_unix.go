//go:build unix

package ditsfile

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps the whole file read-only and shared: pages fault in on
// first access and the OS may reclaim them under memory pressure, which
// is the mechanism the RSS budget relies on.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

// madviseDontNeed tells the kernel to drop the mapping's resident pages;
// the data refaults from the file on next access. Used to retire swapped
// readers and to start cold-cache benchmark runs honestly.
func madviseDontNeed(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	return syscall.Madvise(b, syscall.MADV_DONTNEED)
}
