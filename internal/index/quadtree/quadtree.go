// Package quadtree implements the QuadTree baseline of §VII-B [26]: a PR
// quadtree built over the individual cell IDs of all datasets (not over
// datasets), with the classical leaf capacity of 4. Overlap search locates,
// for every query cell, the leaf holding that cell and collects the IDs of
// the datasets occupying it — which is why the paper finds it behaves like
// an inverted index and is insensitive to k.
package quadtree

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// LeafCapacity is the fixed quadtree leaf capacity (§VII-C1: "the leaf node
// capacity in QuadTree is 4").
const LeafCapacity = 4

// entry is one indexed cell occurrence: dataset ds contains cell (x, y).
type entry struct {
	x, y uint32
	ds   int32
}

// node is a square region of the cell-coordinate space.
type node struct {
	x, y     uint32 // bottom-left cell coordinate of the region
	side     uint32 // region side length in cells (power of two)
	children *[4]node
	entries  []entry
}

// Tree is the PR quadtree index over all cells of all datasets.
type Tree struct {
	root  node
	size  int
	cells map[int]cellset.Set // dataset ID -> its cells, for update/delete
	names map[int]string
}

// Build indexes every cell of every dataset node. theta fixes the extent of
// the root region.
func Build(theta int, nodes []*dataset.Node) *Tree {
	t := &Tree{
		root:  node{side: 1 << uint(theta)},
		cells: make(map[int]cellset.Set),
		names: make(map[int]string),
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		t.Insert(n)
	}
	return t
}

// Insert adds every cell of the dataset node to the tree.
func (t *Tree) Insert(n *dataset.Node) {
	t.cells[n.ID] = n.Cells
	t.names[n.ID] = n.Name
	for _, c := range n.Cells {
		x, y := geo.ZDecode(c)
		t.root.insert(entry{x: x, y: y, ds: int32(n.ID)})
		t.size++
	}
}

// Delete removes every cell occurrence of the dataset.
func (t *Tree) Delete(id int) {
	cells, ok := t.cells[id]
	if !ok {
		return
	}
	for _, c := range cells {
		x, y := geo.ZDecode(c)
		if t.root.remove(x, y, int32(id)) {
			t.size--
		}
	}
	delete(t.cells, id)
	delete(t.names, id)
}

// Update replaces the dataset's cells: the paper's Fig. 22 workload. The
// quadtree "has to repeatedly find the updated cell ID for insertion and
// deletion", which is why it updates slowest.
func (t *Tree) Update(n *dataset.Node) {
	t.Delete(n.ID)
	t.Insert(n)
}

func (n *node) contains(x, y uint32) bool {
	return x >= n.x && x < n.x+n.side && y >= n.y && y < n.y+n.side
}

func (n *node) insert(e entry) {
	if n.children != nil {
		n.child(e.x, e.y).insert(e)
		return
	}
	n.entries = append(n.entries, e)
	// Split when over capacity, unless the region is a single cell (all
	// entries share coordinates and can never be separated).
	if len(n.entries) > LeafCapacity && n.side > 1 {
		n.split()
	}
}

func (n *node) split() {
	half := n.side / 2
	n.children = &[4]node{
		{x: n.x, y: n.y, side: half},
		{x: n.x + half, y: n.y, side: half},
		{x: n.x, y: n.y + half, side: half},
		{x: n.x + half, y: n.y + half, side: half},
	}
	entries := n.entries
	n.entries = nil
	for _, e := range entries {
		n.child(e.x, e.y).insert(e)
	}
}

func (n *node) child(x, y uint32) *node {
	half := n.side / 2
	i := 0
	if x >= n.x+half {
		i |= 1
	}
	if y >= n.y+half {
		i |= 2
	}
	return &n.children[i]
}

// remove deletes one entry matching (x, y, ds) and reports success. Empty
// children are not collapsed; the paper's baseline does not compact either.
func (n *node) remove(x, y uint32, ds int32) bool {
	if !n.contains(x, y) {
		return false
	}
	if n.children != nil {
		return n.child(x, y).remove(x, y, ds)
	}
	for i, e := range n.entries {
		if e.x == x && e.y == y && e.ds == ds {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			return true
		}
	}
	return false
}

// locate returns the leaf whose region contains (x, y).
func (n *node) locate(x, y uint32) *node {
	if n.children == nil {
		return n
	}
	return n.child(x, y).locate(x, y)
}

// OverlapCounts returns, for every dataset sharing at least one cell with
// the query set, the exact |S_Q ∩ S_D|, the way §VII-C describes the
// baseline: find all leaves intersecting the query's MBR and check every
// cell occurrence found there against the query set — which scans all
// points in the query's bounding region, not just the query's own cells.
func (t *Tree) OverlapCounts(q cellset.Set) map[int]int {
	counts := make(map[int]int)
	minX, minY, maxX, maxY, ok := q.Bounds()
	if !ok {
		return counts
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.x > maxX || n.y > maxY || n.x+n.side-1 < minX || n.y+n.side-1 < minY {
			return
		}
		if n.children != nil {
			for i := range n.children {
				walk(&n.children[i])
			}
			return
		}
		for _, e := range n.entries {
			if e.x < minX || e.x > maxX || e.y < minY || e.y > maxY {
				continue
			}
			if q.Contains(geo.ZEncode(e.x, e.y)) {
				counts[int(e.ds)]++
			}
		}
	}
	walk(&t.root)
	return counts
}

// Locate returns the dataset IDs occupying the cell containing (x, y); it
// is the point-query primitive of the PR quadtree.
func (t *Tree) Locate(x, y uint32) []int {
	leaf := t.root.locate(x, y)
	var out []int
	for _, e := range leaf.entries {
		if e.x == x && e.y == y {
			out = append(out, int(e.ds))
		}
	}
	return out
}

// Name returns the stored name of a dataset ID.
func (t *Tree) Name(id int) string { return t.names[id] }

// Size returns the number of indexed cell occurrences.
func (t *Tree) Size() int { return t.size }

// NumNodes returns the number of quadtree nodes.
func (t *Tree) NumNodes() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n.children == nil {
			return 1
		}
		total := 1
		for i := range n.children {
			total += count(&n.children[i])
		}
		return total
	}
	return count(&t.root)
}

// MemoryBytes estimates the index's resident size: the paper's Fig. 8
// expects the quadtree to be the largest index because it stores a node
// hierarchy over N cells rather than n datasets.
func (t *Tree) MemoryBytes() int64 {
	const nodeSize = 48
	return int64(t.NumNodes())*nodeSize + int64(t.size)*12
}
