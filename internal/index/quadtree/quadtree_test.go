package quadtree

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

func randomNodes(rng *rand.Rand, n, theta int) []*dataset.Node {
	side := 1 << uint(theta)
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		m := 1 + rng.Intn(15)
		ids := make([]uint64, m)
		for j := range ids {
			ids[j] = geo.ZEncode(uint32(rng.Intn(side)), uint32(rng.Intn(side)))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func oracleCounts(nodes []*dataset.Node, q cellset.Set) map[int]int {
	counts := make(map[int]int)
	for _, n := range nodes {
		if c := n.Cells.IntersectCount(q); c > 0 {
			counts[n.ID] = c
		}
	}
	return counts
}

func sameCounts(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestOverlapCountsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes := randomNodes(rng, 150, 6)
	tree := Build(6, nodes)
	for trial := 0; trial < 100; trial++ {
		q := randomNodes(rng, 1, 6)[0].Cells
		got := tree.OverlapCounts(q)
		want := oracleCounts(nodes, q)
		if !sameCounts(got, want) {
			t.Fatalf("trial %d: counts mismatch\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

func TestInsertDeleteUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes := randomNodes(rng, 60, 5)
	tree := Build(5, nodes[:40])
	live := append([]*dataset.Node(nil), nodes[:40]...)

	// Inserts.
	for _, n := range nodes[40:] {
		tree.Insert(n)
		live = append(live, n)
	}
	q := randomNodes(rng, 1, 5)[0].Cells
	if !sameCounts(tree.OverlapCounts(q), oracleCounts(live, q)) {
		t.Fatal("counts wrong after inserts")
	}

	// Updates.
	for i := 0; i < 20; i++ {
		idx := rng.Intn(len(live))
		repl := randomNodes(rng, 1, 5)[0]
		repl.ID = live[idx].ID
		tree.Update(repl)
		live[idx] = repl
	}
	if !sameCounts(tree.OverlapCounts(q), oracleCounts(live, q)) {
		t.Fatal("counts wrong after updates")
	}

	// Deletes.
	for i := 0; i < 20; i++ {
		idx := rng.Intn(len(live))
		tree.Delete(live[idx].ID)
		live = append(live[:idx], live[idx+1:]...)
	}
	if !sameCounts(tree.OverlapCounts(q), oracleCounts(live, q)) {
		t.Fatal("counts wrong after deletes")
	}
	if tree.Delete(99999); false {
		t.Fatal("unreachable")
	}
}

func TestSingleCellOverflow(t *testing.T) {
	// More than LeafCapacity datasets in the same cell: the leaf cannot
	// split below one cell and must simply hold them all.
	var nodes []*dataset.Node
	for i := 0; i < 20; i++ {
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(geo.ZEncode(2, 2))))
	}
	tree := Build(3, nodes)
	counts := tree.OverlapCounts(cellset.New(geo.ZEncode(2, 2)))
	if len(counts) != 20 {
		t.Fatalf("got %d datasets, want 20", len(counts))
	}
	for id, c := range counts {
		if c != 1 {
			t.Fatalf("dataset %d count = %d, want 1", id, c)
		}
	}
}

func TestLocate(t *testing.T) {
	a := dataset.NewNodeFromCells(1, "", cellset.New(geo.ZEncode(3, 4)))
	b := dataset.NewNodeFromCells(2, "", cellset.New(geo.ZEncode(3, 4), geo.ZEncode(5, 5)))
	tree := Build(4, []*dataset.Node{a, b})
	got := tree.Locate(3, 4)
	if len(got) != 2 {
		t.Fatalf("Locate(3,4) = %v, want both datasets", got)
	}
	if got := tree.Locate(9, 9); len(got) != 0 {
		t.Fatalf("Locate(empty cell) = %v, want none", got)
	}
}

func TestOverlapCountsEmptyQuery(t *testing.T) {
	tree := Build(4, randomNodes(rand.New(rand.NewSource(9)), 10, 4))
	if got := tree.OverlapCounts(nil); len(got) != 0 {
		t.Fatalf("empty query counts = %v", got)
	}
}

func TestAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nodes := randomNodes(rng, 50, 5)
	tree := Build(5, nodes)
	if tree.Size() == 0 {
		t.Error("Size should be positive")
	}
	if tree.NumNodes() == 0 {
		t.Error("NumNodes should be positive")
	}
	if tree.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	nodes[0].Name = "hello"
	tree.Update(nodes[0])
	if tree.Name(nodes[0].ID) != "hello" {
		t.Error("Name not tracked")
	}
}
