// Package sts3 implements the STS3 baseline of §VII-B [39]: the plane is
// divided into cells, every dataset becomes a cell set, and a flat
// inverted index maps each cell ID to the datasets occupying it. Search
// follows the paper's characterization of STS3 (§II: "it requires scanning
// all datasets and estimating the number of set intersections, where
// pairwise comparisons are time-consuming"): the query is intersected with
// every dataset's cell set, which is why the paper finds STS3 cheap to
// build and update but slow to search and insensitive to k. The inverted
// index serves construction/update parity and the fast candidate lookup
// used by tests.
package sts3

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
)

// Index is the flat inverted index over one data source.
type Index struct {
	post  map[uint64][]int32  // cell ID -> dataset IDs
	cells map[int]cellset.Set // dataset ID -> cells, for updates and ranking
	names map[int]string
}

// Build indexes all dataset nodes.
func Build(nodes []*dataset.Node) *Index {
	idx := &Index{
		post:  make(map[uint64][]int32),
		cells: make(map[int]cellset.Set),
		names: make(map[int]string),
	}
	for _, n := range nodes {
		if n != nil {
			idx.Insert(n)
		}
	}
	return idx
}

// Insert adds a dataset's cells to the posting lists.
func (idx *Index) Insert(n *dataset.Node) {
	idx.cells[n.ID] = n.Cells
	idx.names[n.ID] = n.Name
	for _, c := range n.Cells {
		idx.post[c] = append(idx.post[c], int32(n.ID))
	}
}

// Delete removes a dataset from every posting list it appears in.
func (idx *Index) Delete(id int) {
	cells, ok := idx.cells[id]
	if !ok {
		return
	}
	for _, c := range cells {
		pl := idx.post[c]
		for i, ds := range pl {
			if ds == int32(id) {
				pl = append(pl[:i], pl[i+1:]...)
				break
			}
		}
		if len(pl) == 0 {
			delete(idx.post, c)
		} else {
			idx.post[c] = pl
		}
	}
	delete(idx.cells, id)
	delete(idx.names, id)
}

// Update replaces a dataset's cells, touching only the changed posting
// lists' worth of work (delete + insert).
func (idx *Index) Update(n *dataset.Node) {
	idx.Delete(n.ID)
	idx.Insert(n)
}

// OverlapCounts returns |S_Q ∩ S_D| for every dataset sharing at least one
// cell with the query set, computed the STS3 way: one pairwise set
// intersection per indexed dataset.
func (idx *Index) OverlapCounts(q cellset.Set) map[int]int {
	counts := make(map[int]int)
	for id, cells := range idx.cells {
		if c := cells.IntersectCount(q); c > 0 {
			counts[id] = c
		}
	}
	return counts
}

// PostingCounts returns the same counts through one pass over the query's
// posting lists — the stronger inverted-scan strategy. It exists so tests
// can cross-check the pairwise scan and so ablations can quantify the gap.
func (idx *Index) PostingCounts(q cellset.Set) map[int]int {
	counts := make(map[int]int)
	for _, c := range q {
		for _, ds := range idx.post[c] {
			counts[int(ds)]++
		}
	}
	return counts
}

// Cells returns the indexed cell set of a dataset (nil when unknown).
func (idx *Index) Cells(id int) cellset.Set { return idx.cells[id] }

// Name returns the stored name of a dataset ID.
func (idx *Index) Name(id int) string { return idx.names[id] }

// Size returns the number of indexed datasets.
func (idx *Index) Size() int { return len(idx.cells) }

// All returns the IDs of all indexed datasets.
func (idx *Index) All() []int {
	out := make([]int, 0, len(idx.cells))
	for id := range idx.cells {
		out = append(out, id)
	}
	return out
}

// MemoryBytes estimates the index's resident size: posting entries only —
// the paper's Fig. 8 expects STS3 to be the smallest index.
func (idx *Index) MemoryBytes() int64 {
	var bytes int64
	for _, pl := range idx.post {
		bytes += 8 + int64(len(pl))*4
	}
	return bytes
}
