package sts3

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

func randomNodes(rng *rand.Rand, n int) []*dataset.Node {
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		m := 1 + rng.Intn(15)
		ids := make([]uint64, m)
		for j := range ids {
			ids[j] = geo.ZEncode(uint32(rng.Intn(64)), uint32(rng.Intn(64)))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func oracleCounts(nodes []*dataset.Node, q cellset.Set) map[int]int {
	counts := make(map[int]int)
	for _, n := range nodes {
		if c := n.Cells.IntersectCount(q); c > 0 {
			counts[n.ID] = c
		}
	}
	return counts
}

func TestOverlapCountsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes := randomNodes(rng, 200)
	idx := Build(nodes)
	for trial := 0; trial < 100; trial++ {
		q := randomNodes(rng, 1)[0].Cells
		want := oracleCounts(nodes, q)
		for variant, got := range map[string]map[int]int{
			"pairwise": idx.OverlapCounts(q),
			"postings": idx.PostingCounts(q),
		} {
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d candidates, want %d", trial, variant, len(got), len(want))
			}
			for id, c := range want {
				if got[id] != c {
					t.Fatalf("trial %d %s: dataset %d count %d, want %d", trial, variant, id, got[id], c)
				}
			}
		}
	}
}

func TestMutationsKeepOracleAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nodes := randomNodes(rng, 80)
	idx := Build(nodes[:50])
	live := map[int]*dataset.Node{}
	for _, n := range nodes[:50] {
		live[n.ID] = n
	}
	for step := 0; step < 300; step++ {
		switch rng.Intn(3) {
		case 0:
			n := randomNodes(rng, 1)[0]
			n.ID = 1000 + step
			idx.Insert(n)
			live[n.ID] = n
		case 1:
			if len(live) == 0 {
				continue
			}
			id := anyKey(rng, live)
			idx.Delete(id)
			delete(live, id)
		default:
			if len(live) == 0 {
				continue
			}
			id := anyKey(rng, live)
			repl := randomNodes(rng, 1)[0]
			repl.ID = id
			idx.Update(repl)
			live[id] = repl
		}
	}
	if idx.Size() != len(live) {
		t.Fatalf("Size = %d, want %d", idx.Size(), len(live))
	}
	var all []*dataset.Node
	for _, n := range live {
		all = append(all, n)
	}
	q := randomNodes(rng, 1)[0].Cells
	got := idx.OverlapCounts(q)
	want := oracleCounts(all, q)
	if len(got) != len(want) {
		t.Fatalf("after mutations: %d candidates, want %d", len(got), len(want))
	}
	for id, c := range want {
		if got[id] != c {
			t.Fatalf("after mutations: dataset %d count %d, want %d", id, got[id], c)
		}
	}
}

func TestAccessors(t *testing.T) {
	n := dataset.NewNodeFromCells(7, "seven", cellset.New(1, 2, 3))
	idx := Build([]*dataset.Node{n, nil})
	if idx.Size() != 1 {
		t.Errorf("Size = %d, want 1 (nil skipped)", idx.Size())
	}
	if idx.Name(7) != "seven" {
		t.Error("Name not stored")
	}
	if !idx.Cells(7).Equal(n.Cells) {
		t.Error("Cells not stored")
	}
	if got := idx.All(); len(got) != 1 || got[0] != 7 {
		t.Errorf("All = %v", got)
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	idx.Delete(42) // unknown: no-op
	if idx.Size() != 1 {
		t.Error("Delete(unknown) should not change size")
	}
}

func anyKey(rng *rand.Rand, m map[int]*dataset.Node) int {
	n := rng.Intn(len(m))
	for id := range m {
		if n == 0 {
			return id
		}
		n--
	}
	panic("unreachable")
}
