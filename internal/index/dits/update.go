package dits

import (
	"fmt"

	"dits/internal/dataset"
)

// The update operations of Appendix C. The bidirectional parent pointers
// let every operation touch only one root-to-leaf path: descend to the
// right leaf, mutate it, then refresh ancestor geometry bottom-up.

// Insert adds a new dataset node to the index. It descends the tree toward
// the child whose pivot is nearest the new node's pivot, inserts at the
// reached leaf, splits the leaf with Algorithm 1 if it overflows f, and
// refreshes ancestors. It returns an error if the ID is already indexed.
func (l *Local) Insert(nd *dataset.Node) error {
	if nd == nil {
		return fmt.Errorf("dits: insert nil dataset node")
	}
	if _, dup := l.byID[nd.ID]; dup {
		return fmt.Errorf("dits: dataset %d already indexed", nd.ID)
	}
	nd.EnsureCompact()
	leaf := l.descend(nd)
	leaf.EnsureLoaded()
	leaf.ensureInv()
	leaf.Children = append(leaf.Children, nd)
	l.byID[nd.ID] = nd
	l.leafOf[nd.ID] = leaf

	if len(leaf.Children) > l.F {
		l.splitLeaf(leaf)
	} else {
		leaf.addInv(nd, len(leaf.Children)-1)
		leaf.addToSummaries(nd)
		leaf.Rect = leaf.Rect.Union(nd.Rect)
		leaf.O = leaf.Rect.Center()
		leaf.R = leaf.Rect.Radius()
		if cov := nd.Coverage(); cov > leaf.MaxCells {
			leaf.MaxCells = cov
		}
		l.refreshAncestors(leaf.Parent)
	}
	return nil
}

// descend walks from the root to the leaf whose pivot is closest to nd's
// pivot at every level (Appendix C: "find the node with the minimum
// distance ||N.o, N_D.o|| in each layer").
func (l *Local) descend(nd *dataset.Node) *TreeNode {
	n := l.Root
	for !n.IsLeaf() {
		if nd.O.Dist2(n.Left.O) <= nd.O.Dist2(n.Right.O) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// splitLeaf converts an overflowing leaf into an internal node whose two
// children are rebuilt with Algorithm 1's split.
func (l *Local) splitLeaf(leaf *TreeNode) {
	children := leaf.Children
	leaf.Children = nil
	leaf.Inv = nil
	leaf.unionC, leaf.allC = nil, nil
	sub := l.build(children, leaf.Parent)
	// Graft sub's structure onto the existing leaf node so the parent's
	// child pointer stays valid.
	leaf.Left, leaf.Right = sub.Left, sub.Right
	leaf.Children, leaf.Inv = sub.Children, sub.Inv
	leaf.unionC, leaf.allC = sub.unionC, sub.allC
	leaf.Rect, leaf.O, leaf.R = sub.Rect, sub.O, sub.R
	leaf.MaxCells = sub.MaxCells
	// The node is internal now (or a freshly rebuilt leaf when the split
	// degenerates); any file-backed payload state died with the old leaf.
	leaf.lazy, leaf.post = nil, nil
	if leaf.Left != nil {
		leaf.Left.Parent = leaf
		leaf.Right.Parent = leaf
	}
	// Re-point leafOf at the grafted leaves.
	leaf.visitLeaves(func(lf *TreeNode) {
		for _, c := range lf.Children {
			l.leafOf[c.ID] = lf
		}
	})
	l.refreshAncestors(leaf.Parent)
}

// Delete removes the dataset with the given ID. When a leaf empties and has
// a sibling, the sibling is hoisted into the parent so the tree never keeps
// dead branches. It returns an error when the ID is unknown.
func (l *Local) Delete(id int) error {
	leaf, ok := l.leafOf[id]
	if !ok {
		return fmt.Errorf("dits: dataset %d not indexed", id)
	}
	leaf.EnsureLoaded()
	leaf.ensureInv()
	for i, c := range leaf.Children {
		if c.ID != id {
			continue
		}
		leaf.removeInv(c, i)
		last := len(leaf.Children) - 1
		if i != last {
			// Swap-remove: move the last child into the freed slot and
			// rewrite just its postings.
			moved := leaf.Children[last]
			leaf.Children[i] = moved
			leaf.moveInv(moved, last, i)
		}
		leaf.Children = leaf.Children[:last]
		break
	}
	delete(l.byID, id)
	delete(l.leafOf, id)

	if len(leaf.Children) == 0 && leaf.Parent != nil {
		l.hoistSibling(leaf)
		return nil
	}
	leaf.refreshGeometry()
	l.refreshAncestors(leaf.Parent)
	return nil
}

// hoistSibling removes an empty leaf by replacing its parent with the
// sibling subtree.
func (l *Local) hoistSibling(empty *TreeNode) {
	parent := empty.Parent
	sibling := parent.Left
	if sibling == empty {
		sibling = parent.Right
	}
	// Copy the sibling's content into the parent slot. MaxCells and the
	// file-backed payload state must move too: when the sibling is a leaf
	// the parent slot BECOMES that leaf, and an internal node's stale
	// MaxCells (often 0) would make searches prune the hoisted leaf as if
	// it held no cells.
	parent.Left, parent.Right = sibling.Left, sibling.Right
	parent.Children, parent.Inv = sibling.Children, sibling.Inv
	parent.unionC, parent.allC = sibling.unionC, sibling.allC
	parent.Rect, parent.O, parent.R = sibling.Rect, sibling.O, sibling.R
	parent.MaxCells = sibling.MaxCells
	parent.lazy, parent.post = sibling.lazy, sibling.post
	if parent.Left != nil {
		parent.Left.Parent = parent
		parent.Right.Parent = parent
	}
	if parent.IsLeaf() {
		for _, c := range parent.Children {
			l.leafOf[c.ID] = parent
		}
	}
	l.refreshAncestors(parent.Parent)
}

// Update replaces the indexed dataset node carrying nd.ID with nd in place
// (Appendix C): the leaf's inverted index is rebuilt and ancestor geometry
// refreshed bottom-up. It returns an error when the ID is unknown.
func (l *Local) Update(nd *dataset.Node) error {
	if nd == nil {
		return fmt.Errorf("dits: update nil dataset node")
	}
	leaf, ok := l.leafOf[nd.ID]
	if !ok {
		return fmt.Errorf("dits: dataset %d not indexed", nd.ID)
	}
	nd.EnsureCompact()
	leaf.EnsureLoaded()
	leaf.ensureInv()
	for i, c := range leaf.Children {
		if c.ID == nd.ID {
			leaf.removeInv(c, i)
			leaf.Children[i] = nd
			leaf.addInv(nd, i)
			break
		}
	}
	l.byID[nd.ID] = nd
	leaf.refreshGeometry()
	l.refreshAncestors(leaf.Parent)
	return nil
}

// refreshAncestors recomputes geometry from n up to the root.
func (l *Local) refreshAncestors(n *TreeNode) {
	for ; n != nil; n = n.Parent {
		n.refreshGeometry()
	}
}
