package dits

import (
	"math/rand"
	"testing"
)

func TestBuildBottomUpInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 2, 7, 50, 150} {
		for _, f := range []int{1, 4, 10} {
			l := BuildBottomUp(testGrid(7), randomNodes(rng, n, 7), f)
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("n=%d f=%d: %v", n, f, err)
			}
			if l.Len() != n {
				t.Fatalf("n=%d f=%d: Len = %d", n, f, l.Len())
			}
		}
	}
}

func TestBuildBottomUpAnswersLikeTopDown(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	nodes := randomNodes(rng, 120, 7)
	top := Build(testGrid(7), nodes, 6)
	bottom := BuildBottomUp(testGrid(7), nodes, 6)
	// Same datasets, same per-leaf bounds semantics: compare overlap
	// bounds aggregated over all leaves for random queries — exactness of
	// searches over either tree follows from the shared leaf machinery,
	// so here it suffices that both trees index identical content.
	for trial := 0; trial < 50; trial++ {
		q := randomNodes(rng, 1, 7)[0]
		var topTotal, bottomTotal int
		top.Root.visitLeaves(func(leaf *TreeNode) {
			topTotal += sumCounts(leaf.OverlapCounts(q.Cells))
		})
		bottom.Root.visitLeaves(func(leaf *TreeNode) {
			bottomTotal += sumCounts(leaf.OverlapCounts(q.Cells))
		})
		if topTotal != bottomTotal {
			t.Fatalf("trial %d: total overlaps differ: %d vs %d", trial, topTotal, bottomTotal)
		}
	}
	// Updates work on the bottom-up tree too.
	nd := randomNodes(rng, 1, 7)[0]
	nd.ID = 9999
	if err := bottom.Insert(nd); err != nil {
		t.Fatal(err)
	}
	if err := bottom.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := bottom.Delete(9999); err != nil {
		t.Fatal(err)
	}
	if err := bottom.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildBottomUpRejectsHugeInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BuildBottomUp should panic beyond its size cap")
		}
	}()
	rng := rand.New(rand.NewSource(63))
	BuildBottomUp(testGrid(7), randomNodes(rng, BuildBottomUpMaxDatasets+1, 7), 10)
}

func sumCounts(counts []int) int {
	total := 0
	for _, c := range counts {
		total += c
	}
	return total
}
