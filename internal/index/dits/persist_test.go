package dits

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	orig := Build(testGrid(8), randomNodes(rng, 200, 8), 7)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() || loaded.F != orig.F {
		t.Fatalf("loaded %d/%d, want %d/%d", loaded.Len(), loaded.F, orig.Len(), orig.F)
	}
	if loaded.Grid != orig.Grid {
		t.Fatalf("grid %v, want %v", loaded.Grid, orig.Grid)
	}
	// Every dataset must come back with identical cells.
	for _, nd := range orig.All() {
		got := loaded.Get(nd.ID)
		if got == nil {
			t.Fatalf("dataset %d lost", nd.ID)
		}
		if !got.Cells.Equal(nd.Cells) {
			t.Fatalf("dataset %d cells differ", nd.ID)
		}
		if got.Name != nd.Name {
			t.Fatalf("dataset %d name differs", nd.ID)
		}
	}
	// The rebuilt tree must be structurally identical to a fresh build
	// (Save sorts by ID; Build is deterministic).
	if loaded.NumTreeNodes() != orig.NumTreeNodes() || loaded.Height() != orig.Height() {
		t.Errorf("tree shape differs: %d/%d nodes, %d/%d height",
			loaded.NumTreeNodes(), orig.NumTreeNodes(), loaded.Height(), orig.Height())
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	orig := Build(testGrid(4), nil, 5)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Errorf("loaded %d datasets from empty index", loaded.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage should fail to load")
	}
	// Wrong version.
	var buf bytes.Buffer
	orig := Build(testGrid(4), nil, 5)
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt by truncation.
	if _, err := Load(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated snapshot should fail to load")
	}
}
