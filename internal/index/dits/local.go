package dits

import (
	"cmp"
	"fmt"
	"slices"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// DefaultLeafCapacity is the default f when callers pass a non-positive
// capacity, matching the middle of the paper's parameter grid (Table II).
const DefaultLeafCapacity = 30

// Local is the DITS-L index of one data source: the ball tree plus the
// bookkeeping (dataset-by-ID, leaf-of-dataset) that Appendix C's update
// operations need. Local is not safe for concurrent mutation; concurrent
// read-only searches are safe.
type Local struct {
	Grid geo.Grid
	F    int // leaf capacity f
	Root *TreeNode

	// Backing is non-nil for file-backed indexes (internal/index/ditsfile):
	// the reader that owns the underlying mapping and reports its memory
	// footprint. Heap-built indexes leave it nil.
	Backing BackingInfo

	byID   map[int]*dataset.Node
	leafOf map[int]*TreeNode
}

// Build constructs the DITS-L index over the given dataset nodes using the
// top-down median split of Algorithm 1. Nil nodes (empty datasets) are
// skipped. The input slice is not modified.
func Build(g geo.Grid, nodes []*dataset.Node, f int) *Local {
	if f <= 0 {
		f = DefaultLeafCapacity
	}
	l := &Local{
		Grid:   g,
		F:      f,
		byID:   make(map[int]*dataset.Node),
		leafOf: make(map[int]*TreeNode),
	}
	ds := make([]*dataset.Node, 0, len(nodes))
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if _, dup := l.byID[n.ID]; dup {
			panic(fmt.Sprintf("dits: duplicate dataset ID %d", n.ID))
		}
		n.EnsureCompact()
		l.byID[n.ID] = n
		ds = append(ds, n)
	}
	l.Root = l.build(ds, nil)
	return l
}

// BuildFromSource grids the source's datasets and builds its DITS-L index.
func BuildFromSource(src *dataset.Source, theta, f int) *Local {
	g := geo.NewGrid(theta, src.Bounds())
	return Build(g, src.Nodes(g), f)
}

// build implements Algorithm 1: make the node covering nds; if it fits in a
// leaf attach the children and the inverted index, otherwise split on the
// widest MBR dimension at the median pivot and recurse.
func (l *Local) build(nds []*dataset.Node, parent *TreeNode) *TreeNode {
	root := &TreeNode{Parent: parent}
	if len(nds) <= l.F {
		root.Children = append([]*dataset.Node(nil), nds...)
		root.refreshGeometry()
		root.rebuildInv()
		for _, c := range nds {
			l.leafOf[c.ID] = root
		}
		return root
	}
	r := geo.EmptyRect
	for _, n := range nds {
		r = r.Union(n.Rect)
	}
	root.Rect = r
	root.O = r.Center()
	root.R = r.Radius()

	// Split dimension: the axis on which the node's MBR is widest
	// (Algorithm 1, lines 11-14). Split position: the median of the child
	// pivots on that axis. The pseudocode compares against the root pivot,
	// but that can leave one side empty on skewed data; the text's median
	// split is used here and guarantees both halves are non-empty.
	splitX := r.Width() >= r.Height()
	key := func(n *dataset.Node) float64 {
		if splitX {
			return n.O.X
		}
		return n.O.Y
	}
	sorted := append([]*dataset.Node(nil), nds...)
	slices.SortStableFunc(sorted, func(a, b *dataset.Node) int { return cmp.Compare(key(a), key(b)) })
	mid := len(sorted) / 2

	root.Left = l.build(sorted[:mid], root)
	root.Right = l.build(sorted[mid:], root)
	return root
}

// Len returns the number of indexed datasets.
func (l *Local) Len() int { return len(l.byID) }

// Get returns the indexed dataset node with the given ID, or nil. On a
// file-backed index the owning leaf is materialized first, so the
// returned node always carries its cells.
func (l *Local) Get(id int) *dataset.Node {
	if leaf := l.leafOf[id]; leaf != nil {
		leaf.EnsureLoaded()
	}
	return l.byID[id]
}

// All returns all indexed dataset nodes in unspecified order. On a
// file-backed index this materializes every leaf.
func (l *Local) All() []*dataset.Node {
	out := make([]*dataset.Node, 0, len(l.byID))
	l.Root.visitLeaves(func(leaf *TreeNode) {
		leaf.EnsureLoaded()
		out = append(out, leaf.Children...)
	})
	return out
}

// Summary returns the root-node summary this source uploads to the data
// center when the global index is built (§V-B): the root's MBR and ball
// converted back to raw (latitude/longitude) coordinates, so sources with
// different resolutions are comparable.
func (l *Local) Summary(name string) SourceSummary {
	raw := l.RawRect(l.Root.Rect)
	return SourceSummary{
		Name:  name,
		Rect:  raw,
		O:     raw.Center(),
		R:     raw.Radius(),
		Theta: l.Grid.Theta,
	}
}

// RawRect converts a rectangle in grid-coordinate space (cell indices) back
// to raw coordinates, covering the full extent of the boundary cells.
func (l *Local) RawRect(r geo.Rect) geo.Rect {
	if r.IsEmpty() {
		return geo.EmptyRect
	}
	g := l.Grid
	return geo.Rect{
		MinX: g.Origin.X + r.MinX*g.CellW,
		MinY: g.Origin.Y + r.MinY*g.CellH,
		MaxX: g.Origin.X + (r.MaxX+1)*g.CellW,
		MaxY: g.Origin.Y + (r.MaxY+1)*g.CellH,
	}
}

// GridRect converts a raw-coordinate rectangle into the grid-coordinate
// span of the cells it touches.
func (l *Local) GridRect(r geo.Rect) geo.Rect {
	if r.IsEmpty() {
		return geo.EmptyRect
	}
	x0, y0, x1, y1 := l.Grid.RectCoords(r)
	return geo.Rect{MinX: float64(x0), MinY: float64(y0), MaxX: float64(x1), MaxY: float64(y1)}
}

// NumTreeNodes returns the number of tree nodes, the dominant term of the
// index's space complexity analysis (Appendix D).
func (l *Local) NumTreeNodes() int { return l.Root.countNodes() }

// Height returns the height of the tree.
func (l *Local) Height() int { return l.Root.height() }

// MemoryBytes estimates the resident size of the index: tree nodes plus
// posting-list entries plus the cell sets held by dataset nodes. It is the
// figure reported in the Fig. 8 memory comparison. A file-backed index
// delegates to its reader's resident estimate — walking its leaves here
// would fault every payload in just to measure it.
func (l *Local) MemoryBytes() int64 {
	if l.Backing != nil {
		return l.Backing.ResidentEstBytes()
	}
	const nodeSize = 96 // TreeNode header: rect + pivot + radius + pointers
	var bytes int64
	l.Root.visitLeaves(func(leaf *TreeNode) {
		for _, pl := range leaf.Inv {
			bytes += 8 + int64(len(pl))*4 // key + posting entries
		}
		for _, c := range leaf.Children {
			bytes += int64(c.Cells.Len())*8 + 64 // cell set + node header
			bytes += c.Compact.MemoryBytes()     // container representation
		}
		// The unionC/allC leaf summaries are not counted: their containers
		// largely alias the children's (Union/Intersect share containers
		// for chunks present on one side, and a single-child leaf aliases
		// the child outright), so adding them would double-count.
	})
	bytes += int64(l.Root.countNodes()) * nodeSize
	return bytes
}

// CheckInvariants validates the structural invariants of the tree and
// returns a descriptive error when one is violated. Tests run it after
// builds and after random update sequences.
func (l *Local) CheckInvariants() error {
	seen := make(map[int]bool)
	var check func(n *TreeNode, parent *TreeNode) error
	check = func(n *TreeNode, parent *TreeNode) error {
		if n == nil {
			return fmt.Errorf("dits: nil tree node")
		}
		if n.Parent != parent {
			return fmt.Errorf("dits: bad parent pointer at %v", n.Rect)
		}
		if n.IsLeaf() {
			n.EnsureLoaded()
			if err := n.LoadErr(); err != nil {
				return fmt.Errorf("dits: leaf at %v failed to materialize: %w", n.Rect, err)
			}
			if len(n.Children) > l.F {
				return fmt.Errorf("dits: leaf overflow: %d > f=%d", len(n.Children), l.F)
			}
			maxCov := 0
			var union, all *cellset.Compact
			for i, c := range n.Children {
				if seen[c.ID] {
					return fmt.Errorf("dits: dataset %d appears twice", c.ID)
				}
				seen[c.ID] = true
				if !n.Rect.ContainsRect(c.Rect) {
					return fmt.Errorf("dits: leaf rect %v misses child %d rect %v", n.Rect, c.ID, c.Rect)
				}
				if l.leafOf[c.ID] != n {
					return fmt.Errorf("dits: leafOf[%d] stale", c.ID)
				}
				cc := c.CompactCells()
				// File-backed children carry only the container form; the
				// flat/compact agreement check applies when both exist.
				if c.Cells != nil && !cc.Equal(cellset.FromSet(c.Cells)) {
					return fmt.Errorf("dits: dataset %d compact cells out of sync with flat cells", c.ID)
				}
				if cov := c.Coverage(); cov > maxCov {
					maxCov = cov
				}
				if i == 0 {
					union, all = cc, cc
				} else {
					union = union.Union(cc)
					all = all.Intersect(cc)
				}
				if err := n.checkPostings(c, i); err != nil {
					return err
				}
			}
			if n.MaxCells != maxCov {
				return fmt.Errorf("dits: leaf MaxCells %d != max child coverage %d at %v", n.MaxCells, maxCov, n.Rect)
			}
			// The compact leaf summaries must agree with the children they
			// summarize: unionC is the union of the children's cells, allC
			// the cells present in every child.
			if !n.unionC.Equal(union) {
				return fmt.Errorf("dits: leaf union summary out of sync at %v", n.Rect)
			}
			if !n.allC.Equal(all) {
				return fmt.Errorf("dits: leaf all-children summary out of sync at %v", n.Rect)
			}
			return nil
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("dits: internal node with missing child")
		}
		if !n.Rect.ContainsRect(n.Left.Rect) || !n.Rect.ContainsRect(n.Right.Rect) {
			return fmt.Errorf("dits: internal rect %v misses children", n.Rect)
		}
		if err := check(n.Left, n); err != nil {
			return err
		}
		return check(n.Right, n)
	}
	if err := check(l.Root, nil); err != nil {
		return err
	}
	if len(seen) != len(l.byID) {
		return fmt.Errorf("dits: tree holds %d datasets, byID holds %d", len(seen), len(l.byID))
	}
	return nil
}
