package dits

import (
	"cmp"
	"slices"

	"dits/internal/geo"
)

// SourceSummary is what each data source uploads to the data center after
// building its local index (§V-B): its root node's MBR, pivot, and radius
// converted to raw latitude/longitude coordinates, plus the source's own
// grid resolution. The global index is built over these summaries only —
// no dataset ever leaves its source at index time.
type SourceSummary struct {
	Name  string
	Rect  geo.Rect  // root MBR in raw coordinates
	O     geo.Point // pivot
	R     float64   // radius
	Theta int       // the source's grid resolution θ
}

// GNode is a node of the DITS-G tree. Leaves hold source summaries instead
// of dataset nodes, and carry no inverted index (Example 5).
type GNode struct {
	Rect        geo.Rect
	O           geo.Point
	R           float64
	Left, Right *GNode
	Sources     []SourceSummary // leaf only
}

// IsLeaf reports whether g is a leaf.
func (g *GNode) IsLeaf() bool { return g.Left == nil && g.Right == nil }

// Global is the DITS-G index maintained by the data center.
type Global struct {
	Root *GNode
	F    int
}

// BuildGlobal constructs DITS-G over the uploaded source summaries with
// leaf capacity f, using the same top-down median split as the local index.
func BuildGlobal(summaries []SourceSummary, f int) *Global {
	if f <= 0 {
		f = DefaultLeafCapacity
	}
	g := &Global{F: f}
	g.Root = buildGlobal(append([]SourceSummary(nil), summaries...), f)
	return g
}

func buildGlobal(ss []SourceSummary, f int) *GNode {
	n := &GNode{}
	r := geo.EmptyRect
	for _, s := range ss {
		r = r.Union(s.Rect)
	}
	n.Rect = r
	if !r.IsEmpty() {
		n.O = r.Center()
		// The node's ball must cover the *balls* of every source in the
		// subtree, not just their MBRs — a skewed source rect has a ball
		// sticking out of the union rect, and the distance lower bound
		// dist(N.o, N_Q.o) − N.r − N_Q.r is only a safe prune when the
		// node ball contains every descendant ball.
		for _, s := range ss {
			if cover := n.O.Dist(s.O) + s.R; cover > n.R {
				n.R = cover
			}
		}
	}
	if len(ss) <= f {
		n.Sources = ss
		return n
	}
	splitX := r.Width() >= r.Height()
	key := func(s SourceSummary) float64 {
		if splitX {
			return s.O.X
		}
		return s.O.Y
	}
	slices.SortStableFunc(ss, func(a, b SourceSummary) int {
		return cmp.Compare(key(a), key(b))
	})
	mid := len(ss) / 2
	n.Left = buildGlobal(ss[:mid], f)
	n.Right = buildGlobal(ss[mid:], f)
	return n
}

// QueryNode is the query's summary in raw coordinates, used by the data
// center to pick candidate sources.
type QueryNode struct {
	Rect geo.Rect
	O    geo.Point
	R    float64
}

// CandidateSources walks DITS-G and returns the sources that may hold
// results for the query (§VI-A, first distribution strategy): a subtree is
// pruned when its MBR neither intersects the query MBR nor can be within
// deltaRaw (the connectivity threshold converted to raw distance) of it,
// i.e. when dist(N.o, N_Q.o) − N.r − N_Q.r ≥ δ and the MBRs are disjoint.
// Pass deltaRaw = 0 for overlap search, where only MBR intersection counts.
func (g *Global) CandidateSources(q QueryNode, deltaRaw float64) []SourceSummary {
	var out []SourceSummary
	var walk func(n *GNode)
	walk = func(n *GNode) {
		if n == nil {
			return
		}
		if !n.Rect.Intersects(q.Rect) {
			lb := n.O.Dist(q.O) - n.R - q.R
			if lb > deltaRaw {
				return
			}
		}
		if n.IsLeaf() {
			for _, s := range n.Sources {
				if s.Rect.Intersects(q.Rect) {
					out = append(out, s)
					continue
				}
				if s.O.Dist(q.O)-s.R-q.R <= deltaRaw {
					out = append(out, s)
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(g.Root)
	return out
}

// WithSource returns a new Global with s inserted, path-copying only the
// nodes along the insertion route. The receiver is never mutated, so
// snapshots handed to in-flight queries stay valid while the center swaps
// in the new tree — the copy-on-write half of epoch-based membership.
// Ancestor bounds grow to cover the new source's ball (the covering
// invariant CandidateSources' pruning relies on); pivots are left in place,
// which keeps the prune conservative, never unsafe.
func (g *Global) WithSource(s SourceSummary) *Global {
	out := &Global{F: g.F}
	if g.Root == nil || (g.Root.IsLeaf() && len(g.Root.Sources) == 0) {
		out.Root = buildGlobal([]SourceSummary{s}, g.F)
		return out
	}
	out.Root = insertSource(g.Root, s, g.F)
	return out
}

// insertSource returns a copy of n with s added to the best-fitting leaf
// below it. Untouched subtrees are shared with the input tree.
func insertSource(n *GNode, s SourceSummary, f int) *GNode {
	if n.IsLeaf() {
		ss := make([]SourceSummary, 0, len(n.Sources)+1)
		ss = append(ss, n.Sources...)
		ss = append(ss, s)
		if len(ss) > f {
			// Leaf overflow: rebuild just this leaf into a subtree.
			// Sort by name first so the split is registration-order
			// independent, like a full rebuild would be.
			slices.SortFunc(ss, func(a, b SourceSummary) int {
				return cmp.Compare(a.Name, b.Name)
			})
			return buildGlobal(ss, f)
		}
		nn := &GNode{Sources: ss}
		nn.Rect, nn.O, nn.R = grownBounds(n, s)
		return nn
	}
	nn := &GNode{Left: n.Left, Right: n.Right}
	nn.Rect, nn.O, nn.R = grownBounds(n, s)
	// Descend into the child whose pivot is nearest the new source —
	// the ball-tree analogue of least-enlargement insertion.
	if n.Left.O.Dist(s.O) <= n.Right.O.Dist(s.O) {
		nn.Left = insertSource(n.Left, s, f)
	} else {
		nn.Right = insertSource(n.Right, s, f)
	}
	return nn
}

// grownBounds returns n's bounds expanded to cover source s, keeping the
// pivot fixed.
func grownBounds(n *GNode, s SourceSummary) (geo.Rect, geo.Point, float64) {
	rect := n.Rect.Union(s.Rect)
	o, r := n.O, n.R
	if n.Rect.IsEmpty() {
		o = rect.Center()
	}
	if cover := o.Dist(s.O) + s.R; cover > r {
		r = cover
	}
	return rect, o, r
}

// WithoutSource returns a new Global with the named source removed,
// path-copying the branch that held it; the receiver is never mutated.
// Bounds along the copied path are recomputed from the surviving children,
// so they stay covering (and typically shrink). Removing an unknown name
// returns an equivalent tree.
func (g *Global) WithoutSource(name string) *Global {
	out := &Global{F: g.F}
	root, _ := removeSource(g.Root, name)
	if root == nil {
		root = buildGlobal(nil, g.F)
	}
	out.Root = root
	return out
}

// removeSource returns the subtree with name removed (nil when the subtree
// became empty) and whether the name was found under n.
func removeSource(n *GNode, name string) (*GNode, bool) {
	if n == nil {
		return nil, false
	}
	if n.IsLeaf() {
		i := slices.IndexFunc(n.Sources, func(s SourceSummary) bool { return s.Name == name })
		if i < 0 {
			return n, false
		}
		ss := make([]SourceSummary, 0, len(n.Sources)-1)
		ss = append(ss, n.Sources[:i]...)
		ss = append(ss, n.Sources[i+1:]...)
		if len(ss) == 0 {
			return nil, true
		}
		return buildGlobal(ss, 1+len(ss)), true
	}
	if left, ok := removeSource(n.Left, name); ok {
		if left == nil {
			return n.Right, true
		}
		return rebound(&GNode{Left: left, Right: n.Right}), true
	}
	if right, ok := removeSource(n.Right, name); ok {
		if right == nil {
			return n.Left, true
		}
		return rebound(&GNode{Left: n.Left, Right: right}), true
	}
	return n, false
}

// rebound recomputes an internal node's bounds from its two children: the
// rect is their union and the ball covers both child balls.
func rebound(n *GNode) *GNode {
	n.Rect = n.Left.Rect.Union(n.Right.Rect)
	n.O = n.Rect.Center()
	n.R = 0
	for _, c := range []*GNode{n.Left, n.Right} {
		if cover := n.O.Dist(c.O) + c.R; cover > n.R {
			n.R = cover
		}
	}
	return n
}

// Sources returns every source summary in the tree, sorted by name.
func (g *Global) Sources() []SourceSummary {
	var out []SourceSummary
	var walk func(n *GNode)
	walk = func(n *GNode) {
		if n == nil {
			return
		}
		if n.IsLeaf() {
			out = append(out, n.Sources...)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(g.Root)
	slices.SortFunc(out, func(a, b SourceSummary) int { return cmp.Compare(a.Name, b.Name) })
	return out
}

// NumNodes returns the number of tree nodes in DITS-G.
func (g *Global) NumNodes() int {
	var count func(n *GNode) int
	count = func(n *GNode) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(g.Root)
}
