package dits

import (
	"sort"

	"dits/internal/geo"
)

// SourceSummary is what each data source uploads to the data center after
// building its local index (§V-B): its root node's MBR, pivot, and radius
// converted to raw latitude/longitude coordinates, plus the source's own
// grid resolution. The global index is built over these summaries only —
// no dataset ever leaves its source at index time.
type SourceSummary struct {
	Name  string
	Rect  geo.Rect  // root MBR in raw coordinates
	O     geo.Point // pivot
	R     float64   // radius
	Theta int       // the source's grid resolution θ
}

// GNode is a node of the DITS-G tree. Leaves hold source summaries instead
// of dataset nodes, and carry no inverted index (Example 5).
type GNode struct {
	Rect        geo.Rect
	O           geo.Point
	R           float64
	Left, Right *GNode
	Sources     []SourceSummary // leaf only
}

// IsLeaf reports whether g is a leaf.
func (g *GNode) IsLeaf() bool { return g.Left == nil && g.Right == nil }

// Global is the DITS-G index maintained by the data center.
type Global struct {
	Root *GNode
	F    int
}

// BuildGlobal constructs DITS-G over the uploaded source summaries with
// leaf capacity f, using the same top-down median split as the local index.
func BuildGlobal(summaries []SourceSummary, f int) *Global {
	if f <= 0 {
		f = DefaultLeafCapacity
	}
	g := &Global{F: f}
	g.Root = buildGlobal(append([]SourceSummary(nil), summaries...), f)
	return g
}

func buildGlobal(ss []SourceSummary, f int) *GNode {
	n := &GNode{}
	r := geo.EmptyRect
	for _, s := range ss {
		r = r.Union(s.Rect)
	}
	n.Rect = r
	if !r.IsEmpty() {
		n.O = r.Center()
		// The node's ball must cover the *balls* of every source in the
		// subtree, not just their MBRs — a skewed source rect has a ball
		// sticking out of the union rect, and the distance lower bound
		// dist(N.o, N_Q.o) − N.r − N_Q.r is only a safe prune when the
		// node ball contains every descendant ball.
		for _, s := range ss {
			if cover := n.O.Dist(s.O) + s.R; cover > n.R {
				n.R = cover
			}
		}
	}
	if len(ss) <= f {
		n.Sources = ss
		return n
	}
	splitX := r.Width() >= r.Height()
	key := func(s SourceSummary) float64 {
		if splitX {
			return s.O.X
		}
		return s.O.Y
	}
	sort.SliceStable(ss, func(i, j int) bool { return key(ss[i]) < key(ss[j]) })
	mid := len(ss) / 2
	n.Left = buildGlobal(ss[:mid], f)
	n.Right = buildGlobal(ss[mid:], f)
	return n
}

// QueryNode is the query's summary in raw coordinates, used by the data
// center to pick candidate sources.
type QueryNode struct {
	Rect geo.Rect
	O    geo.Point
	R    float64
}

// CandidateSources walks DITS-G and returns the sources that may hold
// results for the query (§VI-A, first distribution strategy): a subtree is
// pruned when its MBR neither intersects the query MBR nor can be within
// deltaRaw (the connectivity threshold converted to raw distance) of it,
// i.e. when dist(N.o, N_Q.o) − N.r − N_Q.r ≥ δ and the MBRs are disjoint.
// Pass deltaRaw = 0 for overlap search, where only MBR intersection counts.
func (g *Global) CandidateSources(q QueryNode, deltaRaw float64) []SourceSummary {
	var out []SourceSummary
	var walk func(n *GNode)
	walk = func(n *GNode) {
		if n == nil {
			return
		}
		if !n.Rect.Intersects(q.Rect) {
			lb := n.O.Dist(q.O) - n.R - q.R
			if lb > deltaRaw {
				return
			}
		}
		if n.IsLeaf() {
			for _, s := range n.Sources {
				if s.Rect.Intersects(q.Rect) {
					out = append(out, s)
					continue
				}
				if s.O.Dist(q.O)-s.R-q.R <= deltaRaw {
					out = append(out, s)
				}
			}
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(g.Root)
	return out
}

// NumNodes returns the number of tree nodes in DITS-G.
func (g *Global) NumNodes() int {
	var count func(n *GNode) int
	count = func(n *GNode) int {
		if n == nil {
			return 0
		}
		if n.IsLeaf() {
			return 1
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(g.Root)
}
