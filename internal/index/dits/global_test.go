package dits

import (
	"math/rand"
	"testing"

	"dits/internal/geo"
)

func summaries(n int, rng *rand.Rand) []SourceSummary {
	out := make([]SourceSummary, n)
	for i := range out {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 1 + rng.Float64()*10, MaxY: y + 1 + rng.Float64()*10}
		out[i] = SourceSummary{
			Name: string(rune('A' + i%26)), Rect: r, O: r.Center(), R: r.Radius(), Theta: 10,
		}
	}
	return out
}

func TestBuildGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 3, 20, 100} {
		g := BuildGlobal(summaries(n, rng), 4)
		if g.NumNodes() == 0 {
			t.Fatalf("n=%d: no nodes", n)
		}
		// Every summary is findable with a query covering the world.
		world := QueryNode{Rect: geo.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}}
		world.O = world.Rect.Center()
		world.R = world.Rect.Radius()
		if got := len(g.CandidateSources(world, 0)); got != n {
			t.Fatalf("n=%d: world query found %d sources", n, got)
		}
	}
}

func TestCandidateSourcesPruning(t *testing.T) {
	// Two well-separated sources; a query overlapping only one.
	a := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	b := geo.Rect{MinX: 100, MinY: 100, MaxX: 110, MaxY: 110}
	g := BuildGlobal([]SourceSummary{
		{Name: "near", Rect: a, O: a.Center(), R: a.Radius()},
		{Name: "far", Rect: b, O: b.Center(), R: b.Radius()},
	}, 4)
	q := geo.Rect{MinX: 5, MinY: 5, MaxX: 8, MaxY: 8}
	qn := QueryNode{Rect: q, O: q.Center(), R: q.Radius()}

	got := g.CandidateSources(qn, 0)
	if len(got) != 1 || got[0].Name != "near" {
		t.Fatalf("overlap candidates = %v, want [near]", names(got))
	}
	// A huge δ brings the far source back in.
	got = g.CandidateSources(qn, 1000)
	if len(got) != 2 {
		t.Fatalf("δ=1000 candidates = %v, want both", names(got))
	}
	// δ just below the center-distance lower bound still prunes.
	got = g.CandidateSources(qn, 1)
	if len(got) != 1 {
		t.Fatalf("δ=1 candidates = %v, want [near]", names(got))
	}
}

func TestCandidateSourcesNeverMissesOracle(t *testing.T) {
	// Property: pruning must be safe. Any source whose true MBR
	// intersects the query, or whose ball lower bound is within δ, must
	// be returned.
	rng := rand.New(rand.NewSource(9))
	ss := summaries(60, rng)
	g := BuildGlobal(ss, 3)
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Float64()*120-10, rng.Float64()*120-10
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
		qn := QueryNode{Rect: q, O: q.Center(), R: q.Radius()}
		delta := rng.Float64() * 20
		got := make(map[string]bool)
		for _, s := range g.CandidateSources(qn, delta) {
			got[s.Name+s.Rect.String()] = true
		}
		for _, s := range ss {
			lb := s.O.Dist(qn.O) - s.R - qn.R
			mustFind := s.Rect.Intersects(q) || lb <= delta
			if mustFind && !got[s.Name+s.Rect.String()] {
				t.Fatalf("trial %d: source %s (lb=%v δ=%v intersects=%v) pruned wrongly",
					trial, s.Name, lb, delta, s.Rect.Intersects(q))
			}
		}
	}
}

func names(ss []SourceSummary) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
