package dits

import (
	"fmt"
	"math/rand"
	"testing"

	"dits/internal/geo"
)

func summaries(n int, rng *rand.Rand) []SourceSummary {
	out := make([]SourceSummary, n)
	for i := range out {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + 1 + rng.Float64()*10, MaxY: y + 1 + rng.Float64()*10}
		out[i] = SourceSummary{
			Name: string(rune('A' + i%26)), Rect: r, O: r.Center(), R: r.Radius(), Theta: 10,
		}
	}
	return out
}

func TestBuildGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 3, 20, 100} {
		g := BuildGlobal(summaries(n, rng), 4)
		if g.NumNodes() == 0 {
			t.Fatalf("n=%d: no nodes", n)
		}
		// Every summary is findable with a query covering the world.
		world := QueryNode{Rect: geo.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}}
		world.O = world.Rect.Center()
		world.R = world.Rect.Radius()
		if got := len(g.CandidateSources(world, 0)); got != n {
			t.Fatalf("n=%d: world query found %d sources", n, got)
		}
	}
}

func TestCandidateSourcesPruning(t *testing.T) {
	// Two well-separated sources; a query overlapping only one.
	a := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	b := geo.Rect{MinX: 100, MinY: 100, MaxX: 110, MaxY: 110}
	g := BuildGlobal([]SourceSummary{
		{Name: "near", Rect: a, O: a.Center(), R: a.Radius()},
		{Name: "far", Rect: b, O: b.Center(), R: b.Radius()},
	}, 4)
	q := geo.Rect{MinX: 5, MinY: 5, MaxX: 8, MaxY: 8}
	qn := QueryNode{Rect: q, O: q.Center(), R: q.Radius()}

	got := g.CandidateSources(qn, 0)
	if len(got) != 1 || got[0].Name != "near" {
		t.Fatalf("overlap candidates = %v, want [near]", names(got))
	}
	// A huge δ brings the far source back in.
	got = g.CandidateSources(qn, 1000)
	if len(got) != 2 {
		t.Fatalf("δ=1000 candidates = %v, want both", names(got))
	}
	// δ just below the center-distance lower bound still prunes.
	got = g.CandidateSources(qn, 1)
	if len(got) != 1 {
		t.Fatalf("δ=1 candidates = %v, want [near]", names(got))
	}
}

func TestCandidateSourcesNeverMissesOracle(t *testing.T) {
	// Property: pruning must be safe. Any source whose true MBR
	// intersects the query, or whose ball lower bound is within δ, must
	// be returned.
	rng := rand.New(rand.NewSource(9))
	ss := summaries(60, rng)
	g := BuildGlobal(ss, 3)
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Float64()*120-10, rng.Float64()*120-10
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
		qn := QueryNode{Rect: q, O: q.Center(), R: q.Radius()}
		delta := rng.Float64() * 20
		got := make(map[string]bool)
		for _, s := range g.CandidateSources(qn, delta) {
			got[s.Name+s.Rect.String()] = true
		}
		for _, s := range ss {
			lb := s.O.Dist(qn.O) - s.R - qn.R
			mustFind := s.Rect.Intersects(q) || lb <= delta
			if mustFind && !got[s.Name+s.Rect.String()] {
				t.Fatalf("trial %d: source %s (lb=%v δ=%v intersects=%v) pruned wrongly",
					trial, s.Name, lb, delta, s.Rect.Intersects(q))
			}
		}
	}
}

// uniqueSummaries is summaries with collision-free names, so removal by
// name is unambiguous.
func uniqueSummaries(n int, rng *rand.Rand) []SourceSummary {
	out := summaries(n, rng)
	for i := range out {
		out[i].Name = fmt.Sprintf("src-%03d", i)
	}
	return out
}

// checkCovering asserts the structural invariant CandidateSources' pruning
// depends on (and buildGlobal documents): every node's rect contains the
// rects, and every node's ball the balls, of all sources in its subtree.
// It returns the sources under n.
func checkCovering(t *testing.T, n *GNode) []SourceSummary {
	t.Helper()
	if n == nil {
		return nil
	}
	var ss []SourceSummary
	if n.IsLeaf() {
		ss = n.Sources
	} else {
		ss = append(ss, checkCovering(t, n.Left)...)
		ss = append(ss, checkCovering(t, n.Right)...)
	}
	for _, s := range ss {
		if n.Rect.Union(s.Rect) != n.Rect {
			t.Fatalf("node rect %v does not contain source %s rect %v", n.Rect, s.Name, s.Rect)
		}
		if n.O.Dist(s.O)+s.R > n.R+1e-9 {
			t.Fatalf("node ball (R=%v) does not cover source %s ball", n.R, s.Name)
		}
	}
	return ss
}

// TestIncrementalGlobalMatchesRebuild drives a random join/leave churn
// through WithSource/WithoutSource and checks, after every step, that the
// incremental tree holds exactly the live membership, keeps the covering
// invariant, and never prunes a source a fresh rebuild would return.
func TestIncrementalGlobalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pool := uniqueSummaries(40, rng)
	live := map[string]SourceSummary{}
	g := BuildGlobal(nil, 3)

	for step := 0; step < 200; step++ {
		s := pool[rng.Intn(len(pool))]
		if _, ok := live[s.Name]; ok && rng.Intn(2) == 0 {
			g = g.WithoutSource(s.Name)
			delete(live, s.Name)
		} else {
			if _, ok := live[s.Name]; ok {
				g = g.WithoutSource(s.Name)
			}
			g = g.WithSource(s)
			live[s.Name] = s
		}
		if got := len(g.Sources()); got != len(live) {
			t.Fatalf("step %d: tree holds %d sources, want %d", step, got, len(live))
		}
		checkCovering(t, g.Root)

		// Safety vs the rebuild oracle: anything the fresh tree must
		// return, the incremental tree must return too.
		x, y := rng.Float64()*120-10, rng.Float64()*120-10
		q := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
		qn := QueryNode{Rect: q, O: q.Center(), R: q.Radius()}
		delta := rng.Float64() * 20
		got := make(map[string]bool)
		for _, s := range g.CandidateSources(qn, delta) {
			got[s.Name] = true
		}
		for _, s := range live {
			lb := s.O.Dist(qn.O) - s.R - qn.R
			if (s.Rect.Intersects(q) || lb <= delta) && !got[s.Name] {
				t.Fatalf("step %d: incremental tree pruned %s wrongly", step, s.Name)
			}
		}
	}
}

// TestIncrementalGlobalIsCopyOnWrite: updating must not disturb a snapshot
// taken before the update — the property epoch-pinned queries rely on.
func TestIncrementalGlobalIsCopyOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ss := uniqueSummaries(20, rng)
	g := BuildGlobal(ss[:10], 3)
	snapshot := g
	world := QueryNode{Rect: geo.Rect{MinX: -1000, MinY: -1000, MaxX: 1000, MaxY: 1000}}
	world.O, world.R = world.Rect.Center(), world.Rect.Radius()

	for _, s := range ss[10:] {
		g = g.WithSource(s)
	}
	for _, s := range ss[:5] {
		g = g.WithoutSource(s.Name)
	}
	if got := len(snapshot.CandidateSources(world, 0)); got != 10 {
		t.Errorf("snapshot drifted: world query found %d sources, want 10", got)
	}
	if got := len(g.CandidateSources(world, 0)); got != 15 {
		t.Errorf("updated tree: world query found %d sources, want 15", got)
	}
}

func names(ss []SourceSummary) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
