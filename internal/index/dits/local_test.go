package dits

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// randomNodes builds n random dataset nodes on a 2^theta grid, each with a
// cluster of cells so MBRs are realistic.
func randomNodes(rng *rand.Rand, n, theta int) []*dataset.Node {
	side := 1 << uint(theta)
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		cx, cy := rng.Intn(side), rng.Intn(side)
		m := 1 + rng.Intn(20)
		ids := make([]uint64, m)
		for j := range ids {
			x := clampInt(cx+rng.Intn(9)-4, 0, side-1)
			y := clampInt(cy+rng.Intn(9)-4, 0, side-1)
			ids[j] = geo.ZEncode(uint32(x), uint32(y))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func testGrid(theta int) geo.Grid {
	side := float64(int64(1) << uint(theta))
	return geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
}

func TestBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 5, 31, 100, 500} {
		for _, f := range []int{1, 2, 10, 30} {
			l := Build(testGrid(8), randomNodes(rng, n, 8), f)
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("n=%d f=%d: %v", n, f, err)
			}
			if l.Len() != n {
				t.Fatalf("n=%d f=%d: Len = %d", n, f, l.Len())
			}
			if got := len(l.All()); got != n {
				t.Fatalf("n=%d f=%d: All = %d nodes", n, f, got)
			}
		}
	}
}

func TestBuildDefaultCapacity(t *testing.T) {
	l := Build(testGrid(4), nil, 0)
	if l.F != DefaultLeafCapacity {
		t.Errorf("F = %d, want %d", l.F, DefaultLeafCapacity)
	}
}

func TestBuildDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with duplicate IDs should panic")
		}
	}()
	a := dataset.NewNodeFromCells(1, "", cellset.New(1))
	b := dataset.NewNodeFromCells(1, "", cellset.New(2))
	Build(testGrid(4), []*dataset.Node{a, b}, 2)
}

func TestBuildIdenticalPivots(t *testing.T) {
	// All datasets in the same cell: median split must still terminate.
	nodes := make([]*dataset.Node, 50)
	for i := range nodes {
		nodes[i] = dataset.NewNodeFromCells(i, "", cellset.New(geo.ZEncode(3, 3)))
	}
	l := Build(testGrid(4), nodes, 4)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapBoundsLemmas(t *testing.T) {
	// Lemma 2 (UB) and Lemma 3 (LB): for every leaf and random query,
	// LB <= max per-dataset intersection <= ... and per-dataset
	// intersection ∈ [LB, UB] for all datasets in the leaf.
	rng := rand.New(rand.NewSource(2))
	l := Build(testGrid(6), randomNodes(rng, 200, 6), 8)
	for trial := 0; trial < 100; trial++ {
		q := randomNodes(rng, 1, 6)[0]
		l.Root.visitLeaves(func(leaf *TreeNode) {
			lb, ub := leaf.OverlapBounds(q.Cells)
			if lb > ub {
				t.Fatalf("lb %d > ub %d", lb, ub)
			}
			counts := leaf.OverlapCounts(q.Cells)
			for i, c := range leaf.Children {
				exact := c.Cells.IntersectCount(q.Cells)
				if counts[i] != exact {
					t.Fatalf("OverlapCounts[%d] = %d, exact = %d", i, counts[i], exact)
				}
				if exact < lb || exact > ub {
					t.Fatalf("dataset %d: intersection %d outside [lb=%d, ub=%d]",
						c.ID, exact, lb, ub)
				}
			}
		})
	}
}

func TestOverlapBoundsFig5Example(t *testing.T) {
	// Fig. 5 of the paper: a leaf holding datasets with cells {9,11,12,13}
	// and {7,9,12,13}; query {3, 9}. Cell 9 is in both children so it
	// counts toward LB; cell 3 is absent: UB = 1, LB = 1.
	a := dataset.NewNodeFromCells(1, "", cellset.New(9, 11, 12, 13))
	b := dataset.NewNodeFromCells(2, "", cellset.New(7, 9, 12, 13))
	l := Build(testGrid(2), []*dataset.Node{a, b}, 2)
	leaf := l.Root
	if !leaf.IsLeaf() {
		t.Fatal("expected single leaf")
	}
	lb, ub := leaf.OverlapBounds(cellset.New(3, 9))
	if lb != 1 || ub != 1 {
		t.Errorf("bounds = (lb=%d, ub=%d), want (1, 1)", lb, ub)
	}
}

func TestRawGridRectRoundTrip(t *testing.T) {
	src := &dataset.Source{Name: "s", Datasets: []*dataset.Dataset{
		{ID: 0, Points: []geo.Point{geo.Pt(0.2, 0.3), geo.Pt(3.7, 3.1)}},
	}}
	l := BuildFromSource(src, 4, 8)
	raw := l.RawRect(l.Root.Rect)
	if raw.IsEmpty() {
		t.Fatal("raw rect empty")
	}
	// Every point of the source must fall inside the raw root rect.
	for _, p := range src.Datasets[0].Points {
		if !raw.Contains(p) {
			t.Errorf("raw root rect %v does not contain %v", raw, p)
		}
	}
	if l.RawRect(geo.EmptyRect) != geo.EmptyRect {
		t.Error("RawRect(empty) should be empty")
	}
	gr := l.GridRect(raw)
	if !gr.ContainsRect(l.Root.Rect) {
		t.Errorf("GridRect(raw)=%v should cover root rect %v", gr, l.Root.Rect)
	}
}

func TestMemoryAndShapeAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := Build(testGrid(6), randomNodes(rng, 300, 6), 10)
	if l.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
	if l.NumTreeNodes() < 30 {
		t.Errorf("NumTreeNodes = %d, unexpectedly small", l.NumTreeNodes())
	}
	if l.Height() < 5 {
		t.Errorf("Height = %d, unexpectedly small", l.Height())
	}
	if l.Get(0) == nil || l.Get(999999) != nil {
		t.Error("Get misbehaves")
	}
}
