package dits

import (
	"fmt"
	"slices"
	"sync"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// File-backed indexes. internal/index/ditsfile decodes only the tree
// SKELETON of a snapshot eagerly — node geometry, child links, MaxCells,
// and stub dataset nodes with ID/Name/MBR — and arms each leaf with a
// loader that materializes the heavy payload (children cell containers,
// union/all summaries, posting lists) on first touch. The Lemma 2/3
// kernels below call EnsureLoaded themselves, so every consumer of the
// leaf access interface (search/exec, the sequential searchers, coverage
// sessions, batch) works against a file-backed index unchanged: a leaf
// pruned by the tree walk never faults its pages in.

// LeafData is everything a file-backed leaf materializes on first touch.
// ChildCells aligns with the leaf's Children slice.
type LeafData struct {
	ChildCells []*cellset.Compact
	Union, All *cellset.Compact
	Post       *LeafPostings
}

// LeafPostings is the flat, possibly file-aliased form of a leaf's
// inverted index: for CellList[i], the child positions holding that cell
// are Entries[Ends[i-1]:Ends[i]]. It replaces the Inv map for file-backed
// leaves until a mutation forces the map to be built (ensureInv).
type LeafPostings struct {
	CellList []uint64 // distinct cells, strictly ascending
	Ends     []uint32 // prefix end offsets into Entries, len == len(CellList)
	Entries  []uint16 // child positions, grouped per cell
}

// lazyLeaf arms a leaf for one-shot materialization. The once gives every
// racing reader a happens-before edge on the loaded fields; load errors
// leave the leaf empty (searches see zero overlap) and are surfaced via
// the reader's error counter, never as a panic.
type lazyLeaf struct {
	once sync.Once
	load func() (LeafData, error)
	err  error
}

// EnsureLoaded materializes a file-backed leaf's payload, blocking until
// the first toucher finishes. It is a two-instruction no-op on heap-built
// leaves and after the first load.
func (n *TreeNode) EnsureLoaded() {
	lz := n.lazy
	if lz == nil {
		return
	}
	lz.once.Do(func() {
		data, err := lz.load()
		if err != nil {
			lz.err = err
			return
		}
		for i, cc := range data.ChildCells {
			if i < len(n.Children) {
				n.Children[i].Compact = cc
			}
		}
		n.unionC, n.allC = data.Union, data.All
		n.post = data.Post
	})
}

// LoadErr returns the materialization error of a file-backed leaf, or nil.
// It is meaningful only after EnsureLoaded has run.
func (n *TreeNode) LoadErr() error {
	if n.lazy == nil {
		return nil
	}
	return n.lazy.err
}

// AttachLazyLeaf arms a leaf for on-demand materialization. It must run
// during index assembly, before the index is published to searchers.
func AttachLazyLeaf(n *TreeNode, load func() (LeafData, error)) {
	n.lazy = &lazyLeaf{load: load}
}

// VisitLeaves calls fn for every leaf under n, in tree order.
func (n *TreeNode) VisitLeaves(fn func(*TreeNode)) { n.visitLeaves(fn) }

// LeafSummaries returns the leaf's compact union/all summaries (Lemma 2/3),
// materializing a file-backed leaf first. Both are nil for internal nodes
// and empty leaves.
func (n *TreeNode) LeafSummaries() (union, all *cellset.Compact) {
	n.EnsureLoaded()
	return n.unionC, n.allC
}

// BackingInfo reports the memory footprint of a file-backed index; the
// ditsfile reader implements it and Open attaches it to the Local it
// assembles. A heap-built index has a nil Backing.
type BackingInfo interface {
	// MappedBytes is the size of the file mapping (0 in copy mode).
	MappedBytes() int64
	// ResidentEstBytes estimates resident memory: the eagerly decoded
	// skeleton plus the payload bytes of every leaf materialized so far.
	ResidentEstBytes() int64
	// LeafLoads counts leaves materialized so far — the page-fault proxy:
	// each load walks that leaf's payload pages exactly once.
	LeafLoads() int64
	// LoadErrors counts leaves whose payload failed validation and
	// degraded to an empty leaf.
	LoadErrors() int64
}

// NewFromTree assembles a Local around an externally decoded tree — the
// ditsfile reader's entry point. It derives the byID/leafOf bookkeeping
// from a leaf walk (the skeleton's Children must be populated with stub
// dataset nodes; payloads may still be lazy) and rejects duplicate IDs.
func NewFromTree(g geo.Grid, f int, root *TreeNode) (*Local, error) {
	if root == nil {
		return nil, fmt.Errorf("dits: nil root")
	}
	if f <= 0 {
		f = DefaultLeafCapacity
	}
	l := &Local{
		Grid:   g,
		F:      f,
		Root:   root,
		byID:   make(map[int]*dataset.Node),
		leafOf: make(map[int]*TreeNode),
	}
	var err error
	root.visitLeaves(func(leaf *TreeNode) {
		for _, c := range leaf.Children {
			if _, dup := l.byID[c.ID]; dup && err == nil {
				err = fmt.Errorf("dits: duplicate dataset ID %d", c.ID)
			}
			l.byID[c.ID] = c
			l.leafOf[c.ID] = leaf
		}
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// eachCell visits a child's cells whichever form the node carries: the
// flat set for heap-built nodes, the container form for file-backed ones.
func eachCell(nd *dataset.Node, fn func(uint64)) {
	if nd.Cells != nil {
		for _, c := range nd.Cells {
			fn(c)
		}
		return
	}
	nd.CompactCells().ForEach(func(c uint64) bool { fn(c); return true })
}

// ensureInv guarantees the leaf carries the mutable Inv map, building it
// from the materialized children when the leaf came off a file. Mutation
// entry points call it (after EnsureLoaded) before touching postings; the
// flat posting lists are dropped since they no longer agree after a write.
func (n *TreeNode) ensureInv() {
	if n.Inv != nil {
		return
	}
	n.rebuildInv()
	n.post = nil
}

// overlapBoundsPost is OverlapBounds against the flat posting lists of a
// file-backed leaf; results are identical to the Inv-map path.
func (n *TreeNode) overlapBoundsPost(q cellset.Set) (lb, ub int) {
	p := n.post
	full := len(n.Children)
	if len(p.CellList) < len(q) {
		for i, c := range p.CellList {
			if !q.Contains(c) {
				continue
			}
			ub++
			if n.postLen(i) == full {
				lb++
			}
		}
		return lb, ub
	}
	lo := 0
	for _, c := range q {
		if !n.inRect(c) {
			continue
		}
		i, found := slices.BinarySearch(p.CellList[lo:], c)
		lo += i
		if !found {
			continue
		}
		ub++
		if n.postLen(lo) == full {
			lb++
		}
		lo++
	}
	return lb, ub
}

// appendOverlapCountsPost is AppendOverlapCounts against the flat posting
// lists; counts must already be sized to len(Children).
func (n *TreeNode) appendOverlapCountsPost(q cellset.Set, counts []int) []int {
	p := n.post
	if len(p.CellList) < len(q) {
		for i, c := range p.CellList {
			if !q.Contains(c) {
				continue
			}
			for _, pos := range n.postList(i) {
				counts[pos]++
			}
		}
		return counts
	}
	lo := 0
	for _, c := range q {
		if !n.inRect(c) {
			continue
		}
		i, found := slices.BinarySearch(p.CellList[lo:], c)
		lo += i
		if !found {
			continue
		}
		for _, pos := range n.postList(lo) {
			counts[pos]++
		}
		lo++
	}
	return counts
}

// postList returns the child positions holding the i-th posting cell.
func (n *TreeNode) postList(i int) []uint16 {
	p := n.post
	start := uint32(0)
	if i > 0 {
		start = p.Ends[i-1]
	}
	return p.Entries[start:p.Ends[i]]
}

// checkPostings verifies that every cell of the child at position pos is
// findable in the leaf's inverted index — the Inv map for heap leaves,
// the flat posting lists for file-backed ones. CheckInvariants uses it.
func (n *TreeNode) checkPostings(c *dataset.Node, pos int) error {
	var missing uint64
	ok := true
	switch {
	case n.Inv != nil:
		eachCell(c, func(cell uint64) {
			if !ok {
				return
			}
			hit := false
			for _, idx := range n.Inv[cell] {
				if idx == int32(pos) {
					hit = true
					break
				}
			}
			if !hit {
				ok, missing = false, cell
			}
		})
	case n.post != nil:
		eachCell(c, func(cell uint64) {
			if !ok {
				return
			}
			i, hit := slices.BinarySearch(n.post.CellList, cell)
			if hit {
				hit = slices.Contains(n.postList(i), uint16(pos))
			}
			if !hit {
				ok, missing = false, cell
			}
		})
	default:
		return fmt.Errorf("dits: leaf at %v has neither inverted index nor postings", n.Rect)
	}
	if !ok {
		return fmt.Errorf("dits: cell %d of dataset %d missing from inverted index", missing, c.ID)
	}
	return nil
}

// postLen returns the posting-list length of the i-th cell.
func (n *TreeNode) postLen(i int) int {
	p := n.post
	start := uint32(0)
	if i > 0 {
		start = p.Ends[i-1]
	}
	return int(p.Ends[i] - start)
}
