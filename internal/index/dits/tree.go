// Package dits implements the paper's DIstributed Tree-based Spatial index:
// the per-source local index DITS-L (§V-A, Algorithm 1) — a top-down
// ball-tree over dataset nodes whose leaves carry an inverted index from
// cell ID to the datasets containing it — and the centralized global index
// DITS-G (§V-B) built over the sources' root-node summaries.
//
// # Concurrency and ownership
//
// A Local and everything reachable from it (tree nodes, leaf inverted
// indexes, compact leaf summaries, the dataset nodes themselves) are
// immutable under search: any number of goroutines — the searchers in
// search/{overlap,coverage} and the worker pools in search/exec — may
// read one index concurrently. File-backed indexes (lazy.go,
// internal/index/ditsfile) materialize leaf payloads on first touch under
// a per-leaf sync.Once — a logically read-only load that stays safe under
// concurrent searches. Mutations (Insert, Delete, Update) demand
// exclusive access: no search may run while one is in flight; the caller
// provides that exclusion. Dataset nodes handed to Build are owned by
// the index afterwards (Build caches their compact form via
// EnsureCompact) and must not be mutated by the caller.
//
// A Global is immutable after construction; WithSource/WithoutSource
// return new path-copied trees sharing untouched subtrees, which is what
// lets the federation center publish them in atomic epoch snapshots.
package dits

import (
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// TreeNode is a node of the DITS-L tree. Internal nodes (Definition 13)
// have Left and Right children; leaf nodes (Definition 14) hold up to F
// dataset nodes in Children plus the inverted index Inv. All nodes carry
// the MBR (in grid-coordinate space), pivot, radius, and a parent pointer —
// the bidirectional structure Appendix C relies on for fast updates.
type TreeNode struct {
	Rect   geo.Rect
	O      geo.Point
	R      float64
	Parent *TreeNode

	// Internal node fields.
	Left, Right *TreeNode

	// Leaf node fields.
	Children []*dataset.Node
	Inv      map[uint64][]int32 // cell ID -> positions in Children
	// MaxCells caches the largest |S_D| among Children: min(|S_Q|,
	// MaxCells) is a free upper bound on any intersection in the leaf,
	// checked before the O(|S_Q|) Lemma 2/3 bounds.
	MaxCells int

	// unionC and allC summarize the leaf for the container-based cell-set
	// engine: the union of the children's cells (a query cell outside it
	// cannot contribute — Lemma 2) and the cells present in every child
	// (a query cell inside it is guaranteed in all of them — Lemma 3).
	// They turn OverlapBoundsCompact into two word-parallel intersection
	// counts. Maintained by refreshGeometry and the Insert fast path.
	unionC, allC *cellset.Compact

	// File-backed leaves (lazy.go): lazy materializes the payload on first
	// touch; post is the flat, possibly file-aliased posting-list form that
	// stands in for Inv until a mutation builds the map. Both are nil on
	// heap-built leaves.
	lazy *lazyLeaf
	post *LeafPostings
}

// IsLeaf reports whether n is a leaf node.
func (n *TreeNode) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// refreshGeometry recomputes Rect, O, and R from the node's children
// (dataset nodes for leaves, subtrees for internal nodes).
func (n *TreeNode) refreshGeometry() {
	r := geo.EmptyRect
	if n.IsLeaf() {
		n.MaxCells = 0
		for _, c := range n.Children {
			r = r.Union(c.Rect)
			if cov := c.Coverage(); cov > n.MaxCells {
				n.MaxCells = cov
			}
		}
		n.refreshSummaries()
	} else {
		if n.Left != nil {
			r = r.Union(n.Left.Rect)
		}
		if n.Right != nil {
			r = r.Union(n.Right.Rect)
		}
	}
	n.Rect = r
	if r.IsEmpty() {
		n.O = geo.Point{}
		n.R = 0
		return
	}
	n.O = r.Center()
	n.R = r.Radius()
}

// refreshSummaries recomputes the leaf's compact summaries from its
// children. It runs in mutation contexts only (build, delete, update);
// the Insert fast path updates the summaries incrementally instead.
func (n *TreeNode) refreshSummaries() {
	if len(n.Children) == 0 {
		n.unionC, n.allC = nil, nil
		return
	}
	u := n.Children[0].CompactCells()
	a := u
	for _, c := range n.Children[1:] {
		cc := c.CompactCells()
		u = u.Union(cc)
		a = a.Intersect(cc)
	}
	n.unionC, n.allC = u, a
}

// addToSummaries folds one more child's cells into the leaf summaries
// (the Insert fast path: no full recomputation).
func (n *TreeNode) addToSummaries(nd *dataset.Node) {
	cc := nd.CompactCells()
	if len(n.Children) == 1 {
		n.unionC, n.allC = cc, cc
		return
	}
	n.unionC = n.unionC.Union(cc)
	n.allC = n.allC.Intersect(cc)
}

// rebuildInv reconstructs the leaf's inverted index from its children; it
// is used at construction and when a leaf is split. Point mutations use
// the incremental addInv/removeInv/moveInv instead, so an insert or delete
// touches only the affected dataset's postings.
func (n *TreeNode) rebuildInv() {
	n.Inv = make(map[uint64][]int32)
	for i, c := range n.Children {
		eachCell(c, func(cell uint64) {
			n.Inv[cell] = append(n.Inv[cell], int32(i))
		})
	}
}

// addInv appends postings for the dataset at child position pos.
func (n *TreeNode) addInv(nd *dataset.Node, pos int) {
	if n.Inv == nil {
		n.Inv = make(map[uint64][]int32)
	}
	eachCell(nd, func(cell uint64) {
		n.Inv[cell] = append(n.Inv[cell], int32(pos))
	})
}

// removeInv deletes the postings of the dataset that was at position pos.
func (n *TreeNode) removeInv(nd *dataset.Node, pos int) {
	eachCell(nd, func(cell uint64) {
		pl := n.Inv[cell]
		for i, p := range pl {
			if p == int32(pos) {
				pl[i] = pl[len(pl)-1]
				pl = pl[:len(pl)-1]
				break
			}
		}
		if len(pl) == 0 {
			delete(n.Inv, cell)
		} else {
			n.Inv[cell] = pl
		}
	})
}

// moveInv rewrites the postings of nd from child position from to position
// to (used when a delete swap-moves the last child into the freed slot).
func (n *TreeNode) moveInv(nd *dataset.Node, from, to int) {
	eachCell(nd, func(cell uint64) {
		pl := n.Inv[cell]
		for i, p := range pl {
			if p == int32(from) {
				pl[i] = int32(to)
				break
			}
		}
	})
}

// inRect reports whether cell c's grid coordinates fall inside the node's
// MBR. Decoding is a handful of bit operations, much cheaper than a map
// lookup, so bounds and verification clip query cells against the leaf
// rectangle first.
func (n *TreeNode) inRect(c uint64) bool {
	x, y := geo.ZDecode(c)
	fx, fy := float64(x), float64(y)
	return fx >= n.Rect.MinX && fx <= n.Rect.MaxX && fy >= n.Rect.MinY && fy <= n.Rect.MaxY
}

// OverlapBounds returns the Lemma 2 upper bound and Lemma 3 lower bound on
// the set intersection between the query cells and any dataset in this
// leaf: ub counts query cells present in the inverted index at all, lb
// counts query cells whose posting list covers every child of the leaf.
// It iterates whichever side is smaller: the query's cells (clipped to the
// leaf MBR) or the leaf's posting keys.
func (n *TreeNode) OverlapBounds(q cellset.Set) (lb, ub int) {
	n.EnsureLoaded()
	if n.Inv == nil && n.post != nil {
		return n.overlapBoundsPost(q)
	}
	full := len(n.Children)
	if len(n.Inv) < len(q) {
		for c, pl := range n.Inv {
			if !q.Contains(c) {
				continue
			}
			ub++
			if len(pl) == full {
				lb++
			}
		}
		return lb, ub
	}
	for _, c := range q {
		if !n.inRect(c) {
			continue
		}
		pl, ok := n.Inv[c]
		if !ok {
			continue
		}
		ub++
		if len(pl) == full {
			lb++
		}
	}
	return lb, ub
}

// OverlapCounts computes, via one pass over the leaf's posting lists, the
// exact |S_Q ∩ S_D| for every dataset node in the leaf. The returned slice
// is indexed like Children. This is the verification step of Algorithm 2.
func (n *TreeNode) OverlapCounts(q cellset.Set) []int {
	return n.AppendOverlapCounts(q, nil)
}

// AppendOverlapCounts is OverlapCounts writing into counts' backing array
// when it has the capacity — the zero-alloc variant the executor's leaf
// hot loop threads a per-worker scratch slice through. The returned slice
// has exactly len(Children) entries and replaces counts.
func (n *TreeNode) AppendOverlapCounts(q cellset.Set, counts []int) []int {
	n.EnsureLoaded()
	counts = resizeCounts(counts, len(n.Children))
	if n.Inv == nil && n.post != nil {
		return n.appendOverlapCountsPost(q, counts)
	}
	if len(n.Inv) < len(q) {
		for c, pl := range n.Inv {
			if !q.Contains(c) {
				continue
			}
			for _, idx := range pl {
				counts[idx]++
			}
		}
		return counts
	}
	for _, c := range q {
		if !n.inRect(c) {
			continue
		}
		for _, idx := range n.Inv[c] {
			counts[idx]++
		}
	}
	return counts
}

// OverlapBoundsCompact is OverlapBounds on the container engine: the
// Lemma 2 upper bound is |q ∩ ∪children| against the cached union summary
// and the Lemma 3 lower bound |q ∩ ∩children| against the cached
// all-children summary — two word-parallel intersection counts instead of
// a per-cell posting-list walk. Results are identical to OverlapBounds.
func (n *TreeNode) OverlapBoundsCompact(q *cellset.Compact) (lb, ub int) {
	n.EnsureLoaded()
	return q.IntersectCount(n.allC), q.IntersectCount(n.unionC)
}

// OverlapUBCompact returns only the Lemma 2 upper bound. The top-k
// searcher prunes on ub alone (the lower bound is subsumed by the exact
// counting that follows), so it skips the allC intersection that
// OverlapBoundsCompact would waste on the hot path.
func (n *TreeNode) OverlapUBCompact(q *cellset.Compact) int {
	n.EnsureLoaded()
	return q.IntersectCount(n.unionC)
}

// OverlapCountsCompact is OverlapCounts on the container engine: the exact
// |S_Q ∩ S_D| for every dataset node in the leaf, one chunk-wise
// intersection count per child. Results are identical to OverlapCounts.
func (n *TreeNode) OverlapCountsCompact(q *cellset.Compact) []int {
	return n.AppendOverlapCountsCompact(q, nil)
}

// AppendOverlapCountsCompact is OverlapCountsCompact reusing counts'
// backing array when capacity allows; see AppendOverlapCounts.
func (n *TreeNode) AppendOverlapCountsCompact(q *cellset.Compact, counts []int) []int {
	n.EnsureLoaded()
	counts = resizeCounts(counts, len(n.Children))
	for i, d := range n.Children {
		counts[i] = q.IntersectCount(d.CompactCells())
	}
	return counts
}

// resizeCounts returns counts resized to n and zeroed, reusing the
// backing array when it is big enough.
func resizeCounts(counts []int, n int) []int {
	if cap(counts) < n {
		return make([]int, n)
	}
	counts = counts[:n]
	clear(counts)
	return counts
}

// visitLeaves calls fn for every leaf under n.
func (n *TreeNode) visitLeaves(fn func(*TreeNode)) {
	if n == nil {
		return
	}
	if n.IsLeaf() {
		fn(n)
		return
	}
	n.Left.visitLeaves(fn)
	n.Right.visitLeaves(fn)
}

// countNodes returns the number of tree nodes (internal + leaf) under n.
func (n *TreeNode) countNodes() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	return 1 + n.Left.countNodes() + n.Right.countNodes()
}

// height returns the height of the subtree rooted at n (a single leaf has
// height 1).
func (n *TreeNode) height() int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	l, r := n.Left.height(), n.Right.height()
	if l > r {
		return 1 + l
	}
	return 1 + r
}
