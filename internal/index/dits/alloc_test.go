package dits

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAppendOverlapCountsParity: the Append variants must equal the
// allocating originals for every leaf, and reuse the scratch buffer.
func TestAppendOverlapCountsParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := Build(testGrid(8), randomNodes(rng, 300, 8), 10)
	q := randomNodes(rng, 1, 8)[0]
	qc := q.CompactCells()
	var scratch []int
	l.Root.visitLeaves(func(n *TreeNode) {
		scratch = n.AppendOverlapCounts(q.Cells, scratch)
		if want := n.OverlapCounts(q.Cells); !reflect.DeepEqual(scratch, want) {
			t.Fatalf("AppendOverlapCounts diverged: %v != %v", scratch, want)
		}
		scratch = n.AppendOverlapCountsCompact(qc, scratch)
		if want := n.OverlapCountsCompact(qc); !reflect.DeepEqual(scratch, want) {
			t.Fatalf("AppendOverlapCountsCompact diverged: %v != %v", scratch, want)
		}
	})
}

// TestAppendOverlapCountsZeroAlloc: with a warm scratch buffer the leaf
// counting kernels — the executor's inner loop — must not allocate.
func TestAppendOverlapCountsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := Build(testGrid(8), randomNodes(rng, 300, 8), 10)
	q := randomNodes(rng, 1, 8)[0]
	qc := q.CompactCells()
	var leaves []*TreeNode
	l.Root.visitLeaves(func(n *TreeNode) { leaves = append(leaves, n) })
	scratch := make([]int, 0, 64)
	if allocs := testing.AllocsPerRun(50, func() {
		for _, n := range leaves {
			scratch = n.AppendOverlapCounts(q.Cells, scratch)
		}
	}); allocs != 0 {
		t.Errorf("AppendOverlapCounts allocated %.1f times per sweep", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		for _, n := range leaves {
			scratch = n.AppendOverlapCountsCompact(qc, scratch)
		}
	}); allocs != 0 {
		t.Errorf("AppendOverlapCountsCompact allocated %.1f times per sweep", allocs)
	}
}
