package dits

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// TestLeafCompactParity differentially checks the container-engine leaf
// kernels against the posting-list reference on random builds, and again
// after update sequences: identical bounds and identical exact counts for
// every leaf and query.
func TestLeafCompactParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	checkAllLeaves := func(l *Local, label string) {
		t.Helper()
		for trial := 0; trial < 20; trial++ {
			q := randomNodes(rng, 1, 8)[0]
			qc := q.CompactCells()
			l.Root.visitLeaves(func(leaf *TreeNode) {
				flb, fub := leaf.OverlapBounds(q.Cells)
				clb, cub := leaf.OverlapBoundsCompact(qc)
				if flb != clb || fub != cub {
					t.Fatalf("%s: OverlapBounds flat (%d,%d) != compact (%d,%d)",
						label, flb, fub, clb, cub)
				}
				fc := leaf.OverlapCounts(q.Cells)
				cc := leaf.OverlapCountsCompact(qc)
				for i := range fc {
					if fc[i] != cc[i] {
						t.Fatalf("%s: OverlapCounts[%d] flat %d != compact %d",
							label, i, fc[i], cc[i])
					}
				}
			})
		}
	}

	l := Build(testGrid(8), randomNodes(rng, 200, 8), 10)
	checkAllLeaves(l, "after build")

	// Mutate: inserts (including leaf splits), deletes, updates.
	extra := randomNodes(rng, 60, 8)
	for i, nd := range extra {
		nd.ID = 1000 + i
		if err := l.Insert(nd); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 40; id++ {
		if err := l.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range randomNodes(rng, 20, 8) {
		nd.ID = 1000 + i
		if err := l.Update(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checkAllLeaves(l, "after updates")
}

// TestLeafCompactParityHandBuiltQuery covers the CompactCells fallback for
// query nodes built without going through NewNodeFromCells.
func TestLeafCompactParityHandBuiltQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	l := Build(testGrid(8), randomNodes(rng, 50, 8), 5)
	cells := cellset.New(geo.ZEncode(3, 4), geo.ZEncode(5, 6), geo.ZEncode(200, 200))
	q := &dataset.Node{ID: -1, Cells: cells} // no Compact field
	qc := q.CompactCells()
	if qc == nil || qc.Len() != cells.Len() {
		t.Fatalf("CompactCells fallback = %v", qc)
	}
	l.Root.visitLeaves(func(leaf *TreeNode) {
		fc := leaf.OverlapCounts(cells)
		cc := leaf.OverlapCountsCompact(qc)
		for i := range fc {
			if fc[i] != cc[i] {
				t.Fatalf("counts diverge: flat %v compact %v", fc, cc)
			}
		}
	})
}
