package dits

import (
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

func TestInsertBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := Build(testGrid(6), randomNodes(rng, 20, 6), 4)
	for i := 0; i < 100; i++ {
		nd := randomNodes(rng, 1, 6)[0]
		nd.ID = 1000 + i
		if err := l.Insert(nd); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if l.Len() != 120 {
		t.Errorf("Len = %d, want 120", l.Len())
	}
}

func TestInsertErrors(t *testing.T) {
	l := Build(testGrid(4), nil, 4)
	if err := l.Insert(nil); err == nil {
		t.Error("Insert(nil) should error")
	}
	nd := dataset.NewNodeFromCells(1, "", cellset.New(1))
	if err := l.Insert(nd); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(nd); err == nil {
		t.Error("duplicate Insert should error")
	}
}

func TestInsertIntoEmptyIndex(t *testing.T) {
	l := Build(testGrid(4), nil, 2)
	for i := 0; i < 10; i++ {
		nd := dataset.NewNodeFromCells(i, "", cellset.New(geo.ZEncode(uint32(i), uint32(i))))
		if err := l.Insert(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 10 {
		t.Errorf("Len = %d, want 10", l.Len())
	}
}

func TestDeleteBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nodes := randomNodes(rng, 100, 6)
	l := Build(testGrid(6), nodes, 4)
	perm := rng.Perm(100)
	for i, idx := range perm {
		if err := l.Delete(nodes[idx].ID); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d after deleting all, want 0", l.Len())
	}
	if err := l.Delete(12345); err == nil {
		t.Error("Delete of unknown ID should error")
	}
}

func TestUpdateBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nodes := randomNodes(rng, 50, 6)
	l := Build(testGrid(6), nodes, 4)
	for i := 0; i < 100; i++ {
		id := rng.Intn(50)
		nd := randomNodes(rng, 1, 6)[0]
		nd.ID = id
		if err := l.Update(nd); err != nil {
			t.Fatal(err)
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("after update %d: %v", i, err)
		}
		if got := l.Get(id); got != nd {
			t.Fatal("Get should return the replacement node")
		}
	}
	if err := l.Update(dataset.NewNodeFromCells(999, "", cellset.New(1))); err == nil {
		t.Error("Update of unknown ID should error")
	}
	if err := l.Update(nil); err == nil {
		t.Error("Update(nil) should error")
	}
}

func TestMixedUpdateSequenceProperty(t *testing.T) {
	// Random interleavings of insert/update/delete must keep the tree's
	// invariants and its contents in sync with a reference map.
	rng := rand.New(rand.NewSource(7))
	l := Build(testGrid(6), nil, 3)
	ref := make(map[int]*dataset.Node)
	nextID := 0
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ref) == 0: // insert
			nd := randomNodes(rng, 1, 6)[0]
			nd.ID = nextID
			nextID++
			if err := l.Insert(nd); err != nil {
				t.Fatal(err)
			}
			ref[nd.ID] = nd
		case op == 1: // delete random existing
			id := anyKey(rng, ref)
			if err := l.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(ref, id)
		default: // update random existing
			id := anyKey(rng, ref)
			nd := randomNodes(rng, 1, 6)[0]
			nd.ID = id
			if err := l.Update(nd); err != nil {
				t.Fatal(err)
			}
			ref[id] = nd
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if l.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref = %d", step, l.Len(), len(ref))
		}
	}
	for id, nd := range ref {
		if got := l.Get(id); got != nd {
			t.Fatalf("Get(%d) = %v, want %v", id, got, nd)
		}
	}
}

func anyKey(rng *rand.Rand, m map[int]*dataset.Node) int {
	n := rng.Intn(len(m))
	for id := range m {
		if n == 0 {
			return id
		}
		n--
	}
	panic("unreachable")
}
