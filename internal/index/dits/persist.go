package dits

import (
	"encoding/gob"
	"fmt"
	"io"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

// Index persistence. The snapshot stores the grid, the leaf capacity, and
// the dataset nodes; the tree itself is rebuilt on load. Rebuilding costs
// O(n log n) — the same as the original Algorithm 1 construction — and
// avoids serializing a structure with parent pointers, while guaranteeing
// a loaded index is byte-for-byte the index Build would produce today.

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the serialized form of a Local index.
type snapshot struct {
	Version int
	Theta   int
	Origin  geo.Point
	CellW   float64
	CellH   float64
	F       int
	Nodes   []snapshotNode
}

type snapshotNode struct {
	ID    int
	Name  string
	Cells []uint64
}

// Save writes the index to w. The format is stable across processes on the
// same architecture (encoding/gob).
func (l *Local) Save(w io.Writer) error {
	snap := snapshot{
		Version: snapshotVersion,
		Theta:   l.Grid.Theta,
		Origin:  l.Grid.Origin,
		CellW:   l.Grid.CellW,
		CellH:   l.Grid.CellH,
		F:       l.F,
	}
	nodes := l.All()
	dataset.SortByID(nodes)
	for _, nd := range nodes {
		snap.Nodes = append(snap.Nodes, snapshotNode{ID: nd.ID, Name: nd.Name, Cells: nd.FlatCells()})
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("dits: save: %w", err)
	}
	return nil
}

// Load reads an index previously written by Save and rebuilds it.
func Load(r io.Reader) (*Local, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dits: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("dits: load: unsupported snapshot version %d", snap.Version)
	}
	if snap.Theta < 1 || snap.Theta > geo.MaxTheta {
		return nil, fmt.Errorf("dits: load: corrupt resolution θ=%d", snap.Theta)
	}
	g := geo.Grid{Theta: snap.Theta, Origin: snap.Origin, CellW: snap.CellW, CellH: snap.CellH}
	nodes := make([]*dataset.Node, 0, len(snap.Nodes))
	for _, sn := range snap.Nodes {
		nd := dataset.NewNodeFromCells(sn.ID, sn.Name, cellset.Set(sn.Cells))
		if nd == nil {
			return nil, fmt.Errorf("dits: load: dataset %d has no cells", sn.ID)
		}
		nodes = append(nodes, nd)
	}
	return Build(g, nodes, snap.F), nil
}
