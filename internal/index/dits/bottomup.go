package dits

import (
	"fmt"

	"dits/internal/dataset"
	"dits/internal/geo"
)

// BuildBottomUp constructs a DITS-L index with the classical agglomerative
// ball-tree strategy §V-A contrasts against: repeatedly merge the two
// clusters whose combined MBR has the smallest area, until one root
// remains, then split results into a binary tree. The paper cites O(n³)
// for this approach [38] and picks the O(n log n) top-down median split
// instead; this builder exists so the construction-strategy ablation can
// measure that trade-off, and it produces an index answering exactly like
// Build's.
//
// BuildBottomUpMaxDatasets bounds the input size, since the construction
// is cubic.
const BuildBottomUpMaxDatasets = 4000

// BuildBottomUp builds the index; it panics when more than
// BuildBottomUpMaxDatasets datasets are given (the caller chose the wrong
// builder, not a runtime condition).
func BuildBottomUp(g geo.Grid, nodes []*dataset.Node, f int) *Local {
	if f <= 0 {
		f = DefaultLeafCapacity
	}
	l := &Local{
		Grid:   g,
		F:      f,
		byID:   make(map[int]*dataset.Node),
		leafOf: make(map[int]*TreeNode),
	}
	var ds []*dataset.Node
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if _, dup := l.byID[n.ID]; dup {
			panic(fmt.Sprintf("dits: duplicate dataset ID %d", n.ID))
		}
		n.EnsureCompact()
		l.byID[n.ID] = n
		ds = append(ds, n)
	}
	if len(ds) > BuildBottomUpMaxDatasets {
		panic(fmt.Sprintf("dits: BuildBottomUp limited to %d datasets, got %d",
			BuildBottomUpMaxDatasets, len(ds)))
	}

	// Start with one cluster per dataset; leaves materialize when a
	// cluster's population reaches f during merging.
	type cluster struct {
		rect geo.Rect
		node *TreeNode // nil until materialized as a subtree
		data []*dataset.Node
	}
	clusters := make([]*cluster, 0, len(ds))
	for _, n := range ds {
		clusters = append(clusters, &cluster{rect: n.Rect, data: []*dataset.Node{n}})
	}
	if len(clusters) == 0 {
		l.Root = l.build(nil, nil)
		return l
	}

	materialize := func(c *cluster) *TreeNode {
		if c.node != nil {
			return c.node
		}
		leaf := &TreeNode{Children: append([]*dataset.Node(nil), c.data...)}
		leaf.refreshGeometry()
		leaf.rebuildInv()
		for _, d := range c.data {
			l.leafOf[d.ID] = leaf
		}
		c.node = leaf
		return leaf
	}

	for len(clusters) > 1 {
		// Find the pair whose union MBR area is smallest.
		bi, bj, bestArea := 0, 1, 0.0
		first := true
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				area := clusters[i].rect.Union(clusters[j].rect).Area()
				if first || area < bestArea {
					first, bi, bj, bestArea = false, i, j, area
				}
			}
		}
		a, b := clusters[bi], clusters[bj]
		mergedRect := a.rect.Union(b.rect)
		merged := &cluster{rect: mergedRect}
		if a.node == nil && b.node == nil && len(a.data)+len(b.data) <= l.F {
			// Still fits a single leaf: keep accumulating datasets.
			merged.data = append(append([]*dataset.Node(nil), a.data...), b.data...)
		} else {
			parent := &TreeNode{Left: materialize(a), Right: materialize(b)}
			parent.Left.Parent = parent
			parent.Right.Parent = parent
			parent.refreshGeometry()
			merged.node = parent
		}
		// Remove j first (j > i) then replace i.
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
	l.Root = materialize(clusters[0])
	l.Root.Parent = nil
	return l
}
