package josie

import (
	"math/rand"
	"sort"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
)

func randomNodes(rng *rand.Rand, n int) []*dataset.Node {
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		m := 1 + rng.Intn(25)
		ids := make([]uint64, m)
		for j := range ids {
			ids[j] = geo.ZEncode(uint32(rng.Intn(48)), uint32(rng.Intn(48)))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", cellset.New(ids...)))
	}
	return nodes
}

// oracleTopK returns the exact top-k overlap values (sorted descending),
// which is the tie-insensitive notion of top-k correctness.
func oracleTopK(nodes []*dataset.Node, q cellset.Set, k int) []int {
	var overlaps []int
	for _, n := range nodes {
		if c := n.Cells.IntersectCount(q); c > 0 {
			overlaps = append(overlaps, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(overlaps)))
	if len(overlaps) > k {
		overlaps = overlaps[:k]
	}
	return overlaps
}

func overlapsOf(rs []Result) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Overlap
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTopKMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nodes := randomNodes(rng, 300)
	idx := Build(nodes)
	byID := map[int]*dataset.Node{}
	for _, n := range nodes {
		byID[n.ID] = n
	}
	for trial := 0; trial < 150; trial++ {
		q := randomNodes(rng, 1)[0].Cells
		for _, k := range []int{1, 3, 10, 50} {
			got := idx.TopK(q, k)
			if !equalInts(overlapsOf(got), oracleTopK(nodes, q, k)) {
				t.Fatalf("trial %d k=%d: overlaps %v, want %v",
					trial, k, overlapsOf(got), oracleTopK(nodes, q, k))
			}
			// Reported overlaps must be the true counts for those IDs.
			for _, r := range got {
				if exact := byID[r.ID].Cells.IntersectCount(q); exact != r.Overlap {
					t.Fatalf("trial %d: dataset %d overlap %d, exact %d",
						trial, r.ID, r.Overlap, exact)
				}
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	idx := Build(randomNodes(rand.New(rand.NewSource(2)), 10))
	if got := idx.TopK(nil, 5); got != nil {
		t.Errorf("empty query should return nil, got %v", got)
	}
	if got := idx.TopK(cellset.New(1), 0); got != nil {
		t.Errorf("k=0 should return nil, got %v", got)
	}
	if got := idx.TopK(cellset.New(geo.ZEncode(1000, 1000)), 5); len(got) != 0 {
		t.Errorf("disjoint query should return empty, got %v", got)
	}
}

func TestPrefixFilterFiresOnLongQueries(t *testing.T) {
	// A query of many tokens against datasets that all share a long prefix
	// of it: the filter must still return exact results.
	var cells []uint64
	for i := 0; i < 200; i++ {
		cells = append(cells, geo.ZEncode(uint32(i%48), uint32(i/48)))
	}
	q := cellset.New(cells...)
	var nodes []*dataset.Node
	for i := 0; i < 30; i++ {
		nodes = append(nodes, dataset.NewNodeFromCells(i, "", q[:10+i*5].Clone()))
	}
	idx := Build(nodes)
	got := idx.TopK(q, 5)
	want := oracleTopK(nodes, q, 5)
	if !equalInts(overlapsOf(got), want) {
		t.Fatalf("overlaps %v, want %v", overlapsOf(got), want)
	}
}

func TestMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nodes := randomNodes(rng, 100)
	idx := Build(nodes[:60])
	live := append([]*dataset.Node(nil), nodes[:60]...)
	for _, n := range nodes[60:] {
		idx.Insert(n)
		live = append(live, n)
	}
	for i := 0; i < 25; i++ {
		at := rng.Intn(len(live))
		repl := randomNodes(rng, 1)[0]
		repl.ID = live[at].ID
		idx.Update(repl)
		live[at] = repl
	}
	for i := 0; i < 25; i++ {
		at := rng.Intn(len(live))
		idx.Delete(live[at].ID)
		live = append(live[:at], live[at+1:]...)
	}
	if idx.Size() != len(live) {
		t.Fatalf("Size = %d, want %d", idx.Size(), len(live))
	}
	q := randomNodes(rng, 1)[0].Cells
	got := idx.TopK(q, 10)
	if !equalInts(overlapsOf(got), oracleTopK(live, q, 10)) {
		t.Fatalf("after mutations: overlaps %v, want %v",
			overlapsOf(got), oracleTopK(live, q, 10))
	}
	if idx.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}
