// Package josie implements the Josie baseline of §VII-B [73]: a sorted
// inverted index whose posting lists store (dataset ID, token position,
// dataset size) triples, enabling the prefix filter — once the k-th best
// exact overlap is at least the number of unprocessed query tokens, no new
// candidate can win, and the already-seen candidates are verified by
// merging their remaining suffixes from the recorded positions.
package josie

import (
	"container/heap"
	"sort"

	"dits/internal/cellset"
	"dits/internal/dataset"
)

// posting is one entry of a posting list: dataset ds contains this token at
// position pos of its sorted token list, and has size tokens in total.
type posting struct {
	ds   int32
	pos  int32
	size int32
}

// Index is the Josie sorted inverted index over one data source.
type Index struct {
	post  map[uint64][]posting
	cells map[int]cellset.Set
	names map[int]string
}

// Build indexes all dataset nodes. Each posting list is kept sorted by
// (size, ds) as Josie's cost model requires; the extra sorting is why the
// paper's Fig. 8 finds Josie the slowest index to construct.
func Build(nodes []*dataset.Node) *Index {
	idx := &Index{
		post:  make(map[uint64][]posting),
		cells: make(map[int]cellset.Set),
		names: make(map[int]string),
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		idx.cells[n.ID] = n.Cells
		idx.names[n.ID] = n.Name
		for i, c := range n.Cells {
			idx.post[c] = append(idx.post[c], posting{
				ds: int32(n.ID), pos: int32(i), size: int32(n.Cells.Len()),
			})
		}
	}
	for c := range idx.post {
		sortPostings(idx.post[c])
	}
	return idx
}

func sortPostings(pl []posting) {
	sort.Slice(pl, func(i, j int) bool {
		if pl[i].size != pl[j].size {
			return pl[i].size < pl[j].size
		}
		return pl[i].ds < pl[j].ds
	})
}

// Insert adds a dataset, inserting each posting at its sorted position
// (the per-list binary search + shift is why Josie inserts slowest in
// Fig. 21).
func (idx *Index) Insert(n *dataset.Node) {
	idx.cells[n.ID] = n.Cells
	idx.names[n.ID] = n.Name
	size := int32(n.Cells.Len())
	for i, c := range n.Cells {
		p := posting{ds: int32(n.ID), pos: int32(i), size: size}
		pl := idx.post[c]
		at := sort.Search(len(pl), func(j int) bool {
			if pl[j].size != p.size {
				return pl[j].size > p.size
			}
			return pl[j].ds >= p.ds
		})
		pl = append(pl, posting{})
		copy(pl[at+1:], pl[at:])
		pl[at] = p
		idx.post[c] = pl
	}
}

// Delete removes a dataset from every posting list it appears in.
func (idx *Index) Delete(id int) {
	cells, ok := idx.cells[id]
	if !ok {
		return
	}
	for _, c := range cells {
		pl := idx.post[c]
		for i := range pl {
			if pl[i].ds == int32(id) {
				pl = append(pl[:i], pl[i+1:]...)
				break
			}
		}
		if len(pl) == 0 {
			delete(idx.post, c)
		} else {
			idx.post[c] = pl
		}
	}
	delete(idx.cells, id)
	delete(idx.names, id)
}

// Update replaces a dataset's cells.
func (idx *Index) Update(n *dataset.Node) {
	idx.Delete(n.ID)
	idx.Insert(n)
}

// Size returns the number of indexed datasets.
func (idx *Index) Size() int { return len(idx.cells) }

// Name returns the stored name of a dataset ID.
func (idx *Index) Name(id int) string { return idx.names[id] }

// MemoryBytes estimates the resident size: postings are 12 bytes (id,
// position, size) against STS3's 4, so Josie sits between STS3 and the
// trees in Fig. 8.
func (idx *Index) MemoryBytes() int64 {
	var bytes int64
	for _, pl := range idx.post {
		bytes += 8 + int64(len(pl))*12
	}
	return bytes
}

// Result is one ranked dataset.
type Result struct {
	ID      int
	Overlap int
}

// kthRefreshEvery controls how often the exact k-th largest partial count
// is recomputed to test the prefix-filter cutoff. Partial counts only grow
// and the remaining-token budget only shrinks, so a stale (lower) estimate
// is always safe — it just delays termination.
const kthRefreshEvery = 16

// TopK returns the k datasets with the largest exact overlap with the
// query set (ties broken toward smaller IDs), using the prefix filter: a
// dataset first appearing at query token i can overlap by at most the
// len(q)−i unprocessed tokens, so once the current k-th best partial count
// reaches that budget, no unseen dataset can enter the top-k and the
// remaining tokens only finish the counts of already-admitted candidates.
func (idx *Index) TopK(q cellset.Set, k int) []Result {
	if k <= 0 || q.Len() == 0 {
		return nil
	}
	partial := make(map[int32]int32) // candidate -> matches among processed tokens
	kthLB := int32(0)                // lower bound on the k-th largest partial

	for i := 0; i < len(q); i++ {
		remaining := int32(len(q) - i)
		if kthLB >= remaining {
			// Prefix filter fired: stop admitting, just finish the counts
			// of existing candidates over the remaining tokens.
			for j := i; j < len(q); j++ {
				for _, p := range idx.post[q[j]] {
					if _, seen := partial[p.ds]; seen {
						partial[p.ds]++
					}
				}
			}
			break
		}
		for _, p := range idx.post[q[i]] {
			partial[p.ds]++
		}
		if i%kthRefreshEvery == kthRefreshEvery-1 && len(partial) >= k {
			kthLB = kthLargest(partial, k)
		}
	}

	final := make([]Result, 0, len(partial))
	for ds, c := range partial {
		final = append(final, Result{ID: int(ds), Overlap: int(c)})
	}
	sort.Slice(final, func(a, b int) bool {
		if final[a].Overlap != final[b].Overlap {
			return final[a].Overlap > final[b].Overlap
		}
		return final[a].ID < final[b].ID
	})
	if len(final) > k {
		final = final[:k]
	}
	return final
}

// kthLargest returns the k-th largest value among the map's counts using a
// size-k min-heap.
func kthLargest(counts map[int32]int32, k int) int32 {
	h := make(minHeap, 0, k)
	for _, c := range counts {
		if len(h) < k {
			heap.Push(&h, c)
		} else if c > h[0] {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	if len(h) < k {
		return 0
	}
	return h[0]
}

type minHeap []int32

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(int32)) }
func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
