package cellset

import (
	"math/bits"
	"slices"
)

// Compact is the container-based representation of a cell set, built for
// the overlap/coverage hot path. Cells are partitioned by the high 48 bits
// of their z-order ID into chunks; each chunk stores its low 16 bits as
// either a sorted []uint16 array or a 1024-word bitmap, whichever is
// denser. Set operations then proceed chunk-at-a-time, and dense×dense
// chunks reduce to word operations (AND + popcount), which is where the
// z-order clustering of real datasets pays off: spatially compact data
// lands in few, dense chunks.
//
// A Compact is immutable: every operation returns a new value (possibly
// sharing containers with its inputs), so values may be read concurrently.
// All methods accept a nil receiver or argument as the empty set. The flat
// Set remains the construction and interchange format; FromSet and
// (*Compact).Set convert between the two.
type Compact struct {
	keys []uint64    // sorted chunk keys: cell >> chunkBits
	cts  []container // cts[i] holds the cells of chunk keys[i]
	n    int         // total cardinality
}

const (
	chunkBits   = 16
	chunkMask   = 1<<chunkBits - 1
	bitmapWords = 1 << (chunkBits - 6) // 1024 words = 8 KiB per dense chunk

	// arrayMaxLen is the array↔bitmap crossover: 4096 uint16s occupy
	// exactly the bitmap's 8 KiB, so the chosen form is never larger than
	// the alternative. Containers keep the canonical form — array iff the
	// cardinality is at most arrayMaxLen — which makes Equal structural.
	arrayMaxLen = 4096
)

// bitmap is one dense chunk: bit v set means cell low bits v is present.
type bitmap [bitmapWords]uint64

// container holds one chunk's cells. Exactly one of arr and bm is in use:
// arr when n <= arrayMaxLen, bm beyond.
type container struct {
	arr []uint16 // sorted unique low bits; nil iff bm != nil
	bm  *bitmap
	n   int
}

// FromSet converts a flat Set (sorted, unique — the Set invariant) into
// its container representation.
func FromSet(s Set) *Compact {
	c := &Compact{}
	if len(s) == 0 {
		return c
	}
	c.keys = make([]uint64, 0, 1+len(s)/arrayMaxLen)
	c.cts = make([]container, 0, cap(c.keys))
	for i := 0; i < len(s); {
		key := s[i] >> chunkBits
		j := i + 1
		for j < len(s) && s[j]>>chunkBits == key {
			j++
		}
		c.keys = append(c.keys, key)
		c.cts = append(c.cts, makeContainer(s[i:j]))
		c.n += j - i
		i = j
	}
	return c
}

// makeContainer builds the canonical container for one chunk's cells.
func makeContainer(cells Set) container {
	if len(cells) <= arrayMaxLen {
		arr := make([]uint16, len(cells))
		for i, cell := range cells {
			arr[i] = uint16(cell & chunkMask)
		}
		return container{arr: arr, n: len(arr)}
	}
	var bm bitmap
	for _, cell := range cells {
		v := cell & chunkMask
		bm[v>>6] |= 1 << (v & 63)
	}
	return container{bm: &bm, n: len(cells)}
}

// Len returns the number of cells.
func (c *Compact) Len() int {
	if c == nil {
		return 0
	}
	return c.n
}

// IsEmpty reports whether the set has no cells.
func (c *Compact) IsEmpty() bool { return c.Len() == 0 }

// NumChunks returns the number of chunks the cells occupy. Len/NumChunks
// is the set's density — the signal the query executor uses to pick
// between the word-parallel chunk kernel (dense sets) and the
// posting-list kernel (sparse sets).
func (c *Compact) NumChunks() int {
	if c == nil {
		return 0
	}
	return len(c.keys)
}

// Set materializes the flat sorted Set.
func (c *Compact) Set() Set {
	if c.Len() == 0 {
		return nil
	}
	return c.AppendCells(make(Set, 0, c.n))
}

// AppendCells appends the cells in ascending order to dst and returns it.
func (c *Compact) AppendCells(dst Set) Set {
	if c == nil {
		return dst
	}
	for i, key := range c.keys {
		base := key << chunkBits
		ct := &c.cts[i]
		if ct.bm != nil {
			for w, word := range ct.bm {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					dst = append(dst, base|uint64(w<<6+b))
					word &= word - 1
				}
			}
			continue
		}
		for _, v := range ct.arr {
			dst = append(dst, base|uint64(v))
		}
	}
	return dst
}

// ForEach calls fn for every cell in ascending order until fn returns
// false.
func (c *Compact) ForEach(fn func(cell uint64) bool) {
	if c == nil {
		return
	}
	for i, key := range c.keys {
		base := key << chunkBits
		ct := &c.cts[i]
		if ct.bm != nil {
			for w, word := range ct.bm {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					if !fn(base | uint64(w<<6+b)) {
						return
					}
					word &= word - 1
				}
			}
			continue
		}
		for _, v := range ct.arr {
			if !fn(base | uint64(v)) {
				return
			}
		}
	}
}

// Contains reports whether cell is in the set.
func (c *Compact) Contains(cell uint64) bool {
	if c == nil {
		return false
	}
	i, ok := slices.BinarySearch(c.keys, cell>>chunkBits)
	if !ok {
		return false
	}
	ct := &c.cts[i]
	v := cell & chunkMask
	if ct.bm != nil {
		return ct.bm[v>>6]>>(v&63)&1 == 1
	}
	_, found := slices.BinarySearch(ct.arr, uint16(v))
	return found
}

// Equal reports whether c and o contain exactly the same cells. Canonical
// container forms make this a structural comparison.
func (c *Compact) Equal(o *Compact) bool {
	if c.Len() != o.Len() {
		return false
	}
	if c.Len() == 0 {
		return true
	}
	if !slices.Equal(c.keys, o.keys) {
		return false
	}
	for i := range c.cts {
		a, b := &c.cts[i], &o.cts[i]
		if a.n != b.n || (a.bm != nil) != (b.bm != nil) {
			return false
		}
		if a.bm != nil {
			if *a.bm != *b.bm {
				return false
			}
		} else if !slices.Equal(a.arr, b.arr) {
			return false
		}
	}
	return true
}

// IntersectCount returns |c ∩ o| without materializing the intersection —
// the overlap measure of OJSP (Definition 10). Allocation-free.
func (c *Compact) IntersectCount(o *Compact) int {
	if c.Len() == 0 || o.Len() == 0 {
		return 0
	}
	n, i, j := 0, 0, 0
	for i < len(c.keys) && j < len(o.keys) {
		switch {
		case c.keys[i] == o.keys[j]:
			n += intersectCount(&c.cts[i], &o.cts[j])
			i++
			j++
		case c.keys[i] < o.keys[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// UnionCount returns |c ∪ o| without materializing the union.
func (c *Compact) UnionCount(o *Compact) int {
	return c.Len() + o.Len() - c.IntersectCount(o)
}

// MarginalGain returns g(o, c) = |o ∪ c| − |c|: the number of cells o adds
// on top of c (Equation 3 with c playing the accumulated result set).
// Allocation-free.
func (c *Compact) MarginalGain(o *Compact) int {
	return o.Len() - c.IntersectCount(o)
}

// Union returns c ∪ o. The result may share containers with the inputs.
func (c *Compact) Union(o *Compact) *Compact {
	if c.Len() == 0 {
		if o.Len() == 0 {
			return &Compact{}
		}
		return o
	}
	if o.Len() == 0 {
		return c
	}
	out := &Compact{
		keys: make([]uint64, 0, len(c.keys)+len(o.keys)),
		cts:  make([]container, 0, len(c.keys)+len(o.keys)),
	}
	i, j := 0, 0
	for i < len(c.keys) && j < len(o.keys) {
		switch {
		case c.keys[i] == o.keys[j]:
			out.push(c.keys[i], unionContainers(&c.cts[i], &o.cts[j]))
			i++
			j++
		case c.keys[i] < o.keys[j]:
			out.push(c.keys[i], c.cts[i])
			i++
		default:
			out.push(o.keys[j], o.cts[j])
			j++
		}
	}
	for ; i < len(c.keys); i++ {
		out.push(c.keys[i], c.cts[i])
	}
	for ; j < len(o.keys); j++ {
		out.push(o.keys[j], o.cts[j])
	}
	return out
}

// Intersect returns c ∩ o.
func (c *Compact) Intersect(o *Compact) *Compact {
	out := &Compact{}
	if c.Len() == 0 || o.Len() == 0 {
		return out
	}
	i, j := 0, 0
	for i < len(c.keys) && j < len(o.keys) {
		switch {
		case c.keys[i] == o.keys[j]:
			out.push(c.keys[i], intersectContainers(&c.cts[i], &o.cts[j]))
			i++
			j++
		case c.keys[i] < o.keys[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Diff returns c \ o. The result may share containers with c.
func (c *Compact) Diff(o *Compact) *Compact {
	if c.Len() == 0 {
		return &Compact{}
	}
	if o.Len() == 0 {
		return c
	}
	out := &Compact{}
	i, j := 0, 0
	for i < len(c.keys) && j < len(o.keys) {
		switch {
		case c.keys[i] == o.keys[j]:
			out.push(c.keys[i], diffContainers(&c.cts[i], &o.cts[j]))
			i++
			j++
		case c.keys[i] < o.keys[j]:
			out.push(c.keys[i], c.cts[i])
			i++
		default:
			j++
		}
	}
	for ; i < len(c.keys); i++ {
		out.push(c.keys[i], c.cts[i])
	}
	return out
}

// MemoryBytes estimates the resident size of the representation: chunk
// keys plus each container's payload.
func (c *Compact) MemoryBytes() int64 {
	if c == nil {
		return 0
	}
	bytes := int64(len(c.keys)) * 8
	for i := range c.cts {
		if c.cts[i].bm != nil {
			bytes += bitmapWords * 8
		} else {
			bytes += int64(len(c.cts[i].arr)) * 2
		}
		bytes += 32 // container header
	}
	return bytes
}

// push appends a non-empty container under key, maintaining n.
func (c *Compact) push(key uint64, ct container) {
	if ct.n == 0 {
		return
	}
	c.keys = append(c.keys, key)
	c.cts = append(c.cts, ct)
	c.n += ct.n
}

// intersectCount counts the intersection of two containers.
func intersectCount(a, b *container) int {
	switch {
	case a.bm != nil && b.bm != nil:
		n := 0
		for w := range a.bm {
			n += bits.OnesCount64(a.bm[w] & b.bm[w])
		}
		return n
	case a.bm != nil:
		return arrBitmapCount(b.arr, a.bm)
	case b.bm != nil:
		return arrBitmapCount(a.arr, b.bm)
	default:
		return arrIntersectCount(a.arr, b.arr)
	}
}

// arrBitmapCount counts the array entries whose bit is set in bm.
func arrBitmapCount(arr []uint16, bm *bitmap) int {
	n := 0
	for _, v := range arr {
		n += int(bm[v>>6] >> (v & 63) & 1)
	}
	return n
}

// arrIntersectCount counts the intersection of two sorted arrays, with
// galloping when the sizes are very skewed (mirroring Set.IntersectCount).
func arrIntersectCount(a, b []uint16) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b)/len(a) >= 32 {
		n, lo := 0, 0
		for _, v := range a {
			idx, found := slices.BinarySearch(b[lo:], v)
			lo += idx
			if found {
				n++
				lo++
			}
			if lo >= len(b) {
				break
			}
		}
		return n
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// unionContainers returns the canonical union of two containers.
func unionContainers(a, b *container) container {
	switch {
	case a.bm != nil && b.bm != nil:
		var bm bitmap
		n := 0
		for w := range bm {
			v := a.bm[w] | b.bm[w]
			bm[w] = v
			n += bits.OnesCount64(v)
		}
		return container{bm: &bm, n: n}
	case a.bm != nil:
		return bitmapArrUnion(a, b.arr)
	case b.bm != nil:
		return bitmapArrUnion(b, a.arr)
	default:
		merged := make([]uint16, 0, len(a.arr)+len(b.arr))
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] == b.arr[j]:
				merged = append(merged, a.arr[i])
				i++
				j++
			case a.arr[i] < b.arr[j]:
				merged = append(merged, a.arr[i])
				i++
			default:
				merged = append(merged, b.arr[j])
				j++
			}
		}
		merged = append(merged, a.arr[i:]...)
		merged = append(merged, b.arr[j:]...)
		if len(merged) > arrayMaxLen {
			return arrayToBitmap(merged)
		}
		return container{arr: merged, n: len(merged)}
	}
}

// bitmapArrUnion unions an array into a copy of a bitmap container. The
// result keeps at least a's cardinality (> arrayMaxLen), so it stays a
// bitmap.
func bitmapArrUnion(a *container, arr []uint16) container {
	out := *a.bm
	n := a.n
	for _, v := range arr {
		w, bit := v>>6, uint64(1)<<(v&63)
		if out[w]&bit == 0 {
			out[w] |= bit
			n++
		}
	}
	return container{bm: &out, n: n}
}

// intersectContainers returns the canonical intersection of two containers.
func intersectContainers(a, b *container) container {
	switch {
	case a.bm != nil && b.bm != nil:
		var bm bitmap
		n := 0
		for w := range bm {
			v := a.bm[w] & b.bm[w]
			bm[w] = v
			n += bits.OnesCount64(v)
		}
		return canonBitmap(&bm, n)
	case a.bm != nil:
		return filterArr(b.arr, a.bm, 1)
	case b.bm != nil:
		return filterArr(a.arr, b.bm, 1)
	default:
		small, big := a.arr, b.arr
		if len(small) > len(big) {
			small, big = big, small
		}
		out := make([]uint16, 0, len(small))
		i, j := 0, 0
		for i < len(small) && j < len(big) {
			switch {
			case small[i] == big[j]:
				out = append(out, small[i])
				i++
				j++
			case small[i] < big[j]:
				i++
			default:
				j++
			}
		}
		return container{arr: out, n: len(out)}
	}
}

// diffContainers returns the canonical difference a \ b.
func diffContainers(a, b *container) container {
	switch {
	case a.bm != nil && b.bm != nil:
		var bm bitmap
		n := 0
		for w := range bm {
			v := a.bm[w] &^ b.bm[w]
			bm[w] = v
			n += bits.OnesCount64(v)
		}
		return canonBitmap(&bm, n)
	case a.bm != nil:
		// Clear b's array entries out of a copy of a's bitmap.
		out := *a.bm
		n := a.n
		for _, v := range b.arr {
			w, bit := v>>6, uint64(1)<<(v&63)
			if out[w]&bit != 0 {
				out[w] &^= bit
				n--
			}
		}
		return canonBitmap(&out, n)
	case b.bm != nil:
		return filterArr(a.arr, b.bm, 0)
	default:
		out := make([]uint16, 0, len(a.arr))
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] == b.arr[j]:
				i++
				j++
			case a.arr[i] < b.arr[j]:
				out = append(out, a.arr[i])
				i++
			default:
				j++
			}
		}
		out = append(out, a.arr[i:]...)
		return container{arr: out, n: len(out)}
	}
}

// filterArr keeps the array entries whose bitmap bit equals want (1 keeps
// members of bm — intersection; 0 keeps non-members — difference).
func filterArr(arr []uint16, bm *bitmap, want uint64) container {
	out := make([]uint16, 0, len(arr))
	for _, v := range arr {
		if bm[v>>6]>>(v&63)&1 == want {
			out = append(out, v)
		}
	}
	return container{arr: out, n: len(out)}
}

// arrayToBitmap converts a sorted array that outgrew the threshold into a
// bitmap container.
func arrayToBitmap(arr []uint16) container {
	var bm bitmap
	for _, v := range arr {
		bm[v>>6] |= 1 << (v & 63)
	}
	return container{bm: &bm, n: len(arr)}
}

// canonBitmap converts a freshly computed bitmap with n set bits into
// canonical form: an array when sparse enough, the bitmap otherwise.
func canonBitmap(bm *bitmap, n int) container {
	if n > arrayMaxLen {
		return container{bm: bm, n: n}
	}
	arr := make([]uint16, 0, n)
	for w, word := range bm {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return container{arr: arr, n: n}
}
