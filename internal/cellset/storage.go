package cellset

import (
	"encoding/binary"
	"math/bits"
	"unsafe"
)

// Storage serialization of container sets — the on-disk form the snapshot
// format (internal/index/ditsfile) stores cell sets in. Unlike the wire
// form (wire.go), which optimizes for transmitted bytes with varint-delta
// headers, the storage form optimizes for being READ IN PLACE: every
// numeric field sits at a naturally aligned offset, container payloads are
// the exact little-endian words Compact holds in memory, and on a
// little-endian host a record inside an mmap'd file aliases straight into
// a *Compact without copying a byte. On big-endian hosts (or unaligned
// input) the same record decodes by copying, producing an identical set.
//
// Record layout (all little-endian, record start 8-byte aligned):
//
//	u32 byteLen    total record length, including this header and padding
//	u32 n          total cardinality
//	u32 nchunks
//	u32 reserved   must be zero
//	u64 × nchunks  chunk keys, strictly ascending
//	u16 × nchunks  per-chunk cardinality minus one (1..65536)
//	pad to 8
//	per chunk, in key order, each payload starting 8-aligned:
//	  cardinality <= arrayMaxLen: sorted u16 words, padded to 8
//	  cardinality >  arrayMaxLen: the 1024 u64 words of the chunk bitmap
//
// ViewStorage validates everything — lengths, key order, array ordering,
// bitmap cardinality — and returns errors, never panics, on truncated or
// corrupt input (fuzz-tested). Validation walks the payload words, which
// also serves the mmap reader's purpose of faulting a leaf's pages exactly
// once, at materialization.

// storageHeaderLen is the fixed record header size.
const storageHeaderLen = 16

// storageMaxChunkKey is the largest encodable chunk key.
const storageMaxChunkKey = (1 << (64 - chunkBits)) - 1

// hostLittleEndian reports whether the host stores multi-byte words
// little-endian; only then can storage payloads be aliased in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func pad8(n int) int { return (n + 7) &^ 7 }

// StorageSize returns the exact number of bytes AppendStorage will emit
// for c, letting writers plan section offsets without encoding twice.
func StorageSize(c *Compact) int {
	size := storageHeaderLen
	if c.Len() == 0 {
		return size
	}
	size = pad8(size + 10*len(c.keys)) // keys (8B) + cardinalities (2B)
	for i := range c.cts {
		if c.cts[i].bm != nil {
			size += bitmapWords * 8
		} else {
			size += pad8(2 * len(c.cts[i].arr))
		}
	}
	return size
}

// AppendStorage appends the storage record of c to dst and returns the
// extended slice. The caller must ensure len(dst) is a multiple of 8 so
// the record lands aligned; the record itself ends 8-aligned.
func AppendStorage(dst []byte, c *Compact) []byte {
	start := len(dst)
	var hdr [storageHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.NumChunks()))
	dst = append(dst, hdr[:]...)
	if c.Len() > 0 {
		for _, key := range c.keys {
			dst = binary.LittleEndian.AppendUint64(dst, key)
		}
		for i := range c.cts {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(c.cts[i].n-1))
		}
		for len(dst)%8 != 0 {
			dst = append(dst, 0)
		}
		for i := range c.cts {
			ct := &c.cts[i]
			if ct.bm != nil {
				for _, w := range ct.bm {
					dst = binary.LittleEndian.AppendUint64(dst, w)
				}
				continue
			}
			for _, v := range ct.arr {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
			for len(dst)%8 != 0 {
				dst = append(dst, 0)
			}
		}
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start))
	return dst
}

// ViewStorage decodes one storage record from the front of data, returning
// the set and the record's byte length. On a little-endian host with data
// 8-aligned (an mmap'd section), container payloads ALIAS data — the
// caller guarantees data stays mapped and is never written for as long as
// the returned set lives. Otherwise payloads are copied. Corrupt input
// returns an error, never panics.
func ViewStorage(data []byte) (*Compact, int, error) {
	return decodeStorage(data, hostLittleEndian && addrAligned8(data))
}

// DecodeStorage is ViewStorage with payloads always copied to the heap:
// the returned set never references data.
func DecodeStorage(data []byte) (*Compact, int, error) {
	return decodeStorage(data, false)
}

func addrAligned8(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

func decodeStorage(data []byte, alias bool) (*Compact, int, error) {
	if len(data) < storageHeaderLen {
		return nil, 0, wireErr("storage record truncated at header")
	}
	byteLen := int(binary.LittleEndian.Uint32(data))
	n := int(binary.LittleEndian.Uint32(data[4:]))
	nchunks := int(binary.LittleEndian.Uint32(data[8:]))
	if binary.LittleEndian.Uint32(data[12:]) != 0 {
		return nil, 0, wireErr("storage record reserved field not zero")
	}
	if byteLen < storageHeaderLen || byteLen > len(data) || byteLen%8 != 0 {
		return nil, 0, wireErr("storage record length %d out of range", byteLen)
	}
	if n == 0 || nchunks == 0 {
		if n != 0 || nchunks != 0 || byteLen != storageHeaderLen {
			return nil, 0, wireErr("storage record empty-set header inconsistent")
		}
		return &Compact{}, byteLen, nil
	}
	// Keys and cardinalities must fit the declared record; a bitmap chunk
	// holds at most 65536 cells, bounding n by the payload space.
	if nchunks > (byteLen-storageHeaderLen)/10 || n > nchunks<<chunkBits {
		return nil, 0, wireErr("storage record chunk count %d out of range", nchunks)
	}
	rec := data[:byteLen]
	keysOff := storageHeaderLen
	cardsOff := keysOff + 8*nchunks
	payOff := pad8(cardsOff + 2*nchunks)
	if payOff > byteLen {
		return nil, 0, wireErr("storage record header overruns payload")
	}
	c := &Compact{
		keys: make([]uint64, nchunks),
		cts:  make([]container, nchunks),
	}
	prevKey := ^uint64(0)
	for i := 0; i < nchunks; i++ {
		key := binary.LittleEndian.Uint64(rec[keysOff+8*i:])
		if (i > 0 && key <= prevKey) || key > storageMaxChunkKey {
			return nil, 0, wireErr("storage chunk keys not strictly ascending")
		}
		prevKey = key
		c.keys[i] = key
		card := int(binary.LittleEndian.Uint16(rec[cardsOff+2*i:])) + 1
		ct, next, err := decodeStorageContainer(rec, payOff, card, alias)
		if err != nil {
			return nil, 0, err
		}
		payOff = next
		c.cts[i] = ct
		c.n += card
	}
	if c.n != n {
		return nil, 0, wireErr("storage cardinality %d != declared %d", c.n, n)
	}
	if byteLen-payOff >= 8 {
		return nil, 0, wireErr("storage record has %d trailing bytes", byteLen-payOff)
	}
	return c, byteLen, nil
}

// decodeStorageContainer decodes one chunk payload at rec[off:], returning
// the container and the offset past the payload (and its padding).
func decodeStorageContainer(rec []byte, off, card int, alias bool) (container, int, error) {
	if card > arrayMaxLen {
		end := off + bitmapWords*8
		if end > len(rec) {
			return container{}, 0, wireErr("storage bitmap chunk truncated")
		}
		var bm *bitmap
		pop := 0
		if alias {
			bm = (*bitmap)(unsafe.Pointer(&rec[off]))
			for _, w := range bm {
				pop += bits.OnesCount64(w)
			}
		} else {
			bm = new(bitmap)
			for w := range bm {
				bm[w] = binary.LittleEndian.Uint64(rec[off+8*w:])
				pop += bits.OnesCount64(bm[w])
			}
		}
		if pop != card {
			return container{}, 0, wireErr("storage bitmap cardinality %d != declared %d", pop, card)
		}
		return container{bm: bm, n: card}, end, nil
	}
	end := off + 2*card
	if end > len(rec) {
		return container{}, 0, wireErr("storage array chunk truncated")
	}
	var arr []uint16
	if alias {
		arr = unsafe.Slice((*uint16)(unsafe.Pointer(&rec[off])), card)
		prev := -1
		for _, v := range arr {
			if int(v) <= prev {
				return container{}, 0, wireErr("storage array chunk not strictly increasing")
			}
			prev = int(v)
		}
	} else {
		arr = make([]uint16, card)
		prev := -1
		for k := range arr {
			v := binary.LittleEndian.Uint16(rec[off+2*k:])
			if int(v) <= prev {
				return container{}, 0, wireErr("storage array chunk not strictly increasing")
			}
			prev = int(v)
			arr[k] = v
		}
	}
	return container{arr: arr, n: card}, pad8(end), nil
}
