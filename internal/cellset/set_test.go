package cellset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dits/internal/geo"
)

func TestNewNormalizes(t *testing.T) {
	s := New(5, 3, 5, 1, 3, 9)
	want := Set{1, 3, 5, 9}
	if !s.Equal(want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestFromPoints(t *testing.T) {
	// The example of Fig. 2(b): D1 -> {9, 11}, D2 -> {1, 3}, D3 -> {12, 13}.
	g := geo.NewGrid(2, geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4})
	d1 := FromPoints(g, []geo.Point{geo.Pt(1.5, 2.5), geo.Pt(1.5, 3.5), geo.Pt(1.2, 2.1)})
	if !d1.Equal(Set{9, 11}) {
		t.Errorf("S_D1 = %v, want {9,11}", d1)
	}
	d2 := FromPoints(g, []geo.Point{geo.Pt(1.5, 0.5), geo.Pt(1.5, 1.5)})
	if !d2.Equal(Set{1, 3}) {
		t.Errorf("S_D2 = %v, want {1,3}", d2)
	}
	d3 := FromPoints(g, []geo.Point{geo.Pt(2.5, 2.5), geo.Pt(3.5, 2.5)})
	if !d3.Equal(Set{12, 13}) {
		t.Errorf("S_D3 = %v, want {12,13}", d3)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 8)
	for _, c := range []uint64{2, 4, 8} {
		if !s.Contains(c) {
			t.Errorf("Contains(%d) = false, want true", c)
		}
	}
	for _, c := range []uint64{0, 3, 9, 100} {
		if s.Contains(c) {
			t.Errorf("Contains(%d) = true, want false", c)
		}
	}
	if Set(nil).Contains(1) {
		t.Error("empty set should contain nothing")
	}
}

func TestSetAlgebraSmall(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(3, 4, 5)
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := a.Intersect(b); !got.Equal(Set{3, 4}) {
		t.Errorf("Intersect = %v, want {3,4}", got)
	}
	if got := a.Union(b); !got.Equal(Set{1, 2, 3, 4, 5}) {
		t.Errorf("Union = %v, want {1..5}", got)
	}
	if got := a.UnionCount(b); got != 5 {
		t.Errorf("UnionCount = %d, want 5", got)
	}
	if got := a.Diff(b); !got.Equal(Set{1, 2}) {
		t.Errorf("Diff = %v, want {1,2}", got)
	}
	if got := a.MarginalGain(b); got != 1 {
		t.Errorf("MarginalGain = %d, want 1 (b adds only cell 5)", got)
	}
}

func TestSetAlgebraEdgeCases(t *testing.T) {
	var empty Set
	a := New(1, 2)
	if got := empty.IntersectCount(a); got != 0 {
		t.Errorf("empty ∩ a = %d, want 0", got)
	}
	if got := a.Union(empty); !got.Equal(a) {
		t.Errorf("a ∪ empty = %v, want %v", got, a)
	}
	if got := a.IntersectCount(a); got != 2 {
		t.Errorf("a ∩ a = %d, want 2", got)
	}
	if got := a.MarginalGain(a); got != 0 {
		t.Errorf("gain of a over a = %d, want 0", got)
	}
	if UnionAll() != nil {
		t.Error("UnionAll() should be nil")
	}
}

// mapOracle computes intersection/union sizes with maps, as ground truth.
func mapOracle(a, b Set) (inter, union int) {
	m := make(map[uint64]bool)
	for _, c := range a {
		m[c] = true
	}
	union = len(m)
	for _, c := range b {
		if m[c] {
			inter++
		} else {
			union++
		}
	}
	return inter, union
}

func randomSet(rng *rand.Rand, n int, space uint64) Set {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(rng.Int63n(int64(space)))
	}
	return New(ids...)
}

func TestSetAlgebraAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomSet(rng, rng.Intn(200), 500)
		b := randomSet(rng, rng.Intn(200), 500)
		wantI, wantU := mapOracle(a, b)
		if got := a.IntersectCount(b); got != wantI {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, wantI)
		}
		if got := b.IntersectCount(a); got != wantI {
			t.Fatalf("trial %d: IntersectCount not symmetric", trial)
		}
		if got := a.UnionCount(b); got != wantU {
			t.Fatalf("trial %d: UnionCount = %d, want %d", trial, got, wantU)
		}
		if got := a.Union(b).Len(); got != wantU {
			t.Fatalf("trial %d: Union len = %d, want %d", trial, got, wantU)
		}
		if got := a.Intersect(b).Len(); got != wantI {
			t.Fatalf("trial %d: Intersect len = %d, want %d", trial, got, wantI)
		}
		if got := a.Diff(b).Len(); got != a.Len()-wantI {
			t.Fatalf("trial %d: Diff len = %d, want %d", trial, got, a.Len()-wantI)
		}
	}
}

func TestGallopPathAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		small := randomSet(rng, 5, 1<<20)
		big := randomSet(rng, 4000, 1<<20)
		// Plant some of small inside big to guarantee hits.
		big = big.Union(small[:len(small)/2])
		wantI, _ := mapOracle(small, big)
		if got := small.IntersectCount(big); got != wantI {
			t.Fatalf("trial %d: gallop IntersectCount = %d, want %d", trial, got, wantI)
		}
		if got := big.IntersectCount(small); got != wantI {
			t.Fatalf("trial %d: gallop reversed = %d, want %d", trial, got, wantI)
		}
	}
}

func TestSetPropertyInvariants(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a := New(xs...)
		b := New(ys...)
		i := a.IntersectCount(b)
		// |a∩b| ≤ min(|a|,|b|) and |a∪b| = |a|+|b|−|a∩b| ≥ max(|a|,|b|).
		if i > a.Len() || i > b.Len() {
			return false
		}
		u := a.UnionCount(b)
		if u != a.Len()+b.Len()-i {
			return false
		}
		if u < a.Len() || u < b.Len() {
			return false
		}
		// Union is sorted-unique.
		un := a.Union(b)
		for k := 1; k < len(un); k++ {
			if un[k] <= un[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBounds(t *testing.T) {
	s := New(geo.ZEncode(2, 3), geo.ZEncode(7, 1), geo.ZEncode(4, 9))
	minX, minY, maxX, maxY, ok := s.Bounds()
	if !ok || minX != 2 || minY != 1 || maxX != 7 || maxY != 9 {
		t.Fatalf("Bounds = (%d,%d,%d,%d,%v), want (2,1,7,9,true)", minX, minY, maxX, maxY, ok)
	}
	if _, _, _, _, ok := Set(nil).Bounds(); ok {
		t.Error("empty Bounds should be not-ok")
	}
}

func TestFilterRect(t *testing.T) {
	g := geo.NewGrid(2, geo.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4})
	s := New(0, 1, 3, 9, 12, 15) // coords (0,0),(1,0),(1,1),(1,2),(2,2),(3,3)
	// Keep cells with coords inside [0,2]x[0,2] spatial rect -> grid span
	// x,y in [0,1] inclusive (cell (2,2) spans spatial [2,3] so RectCoords
	// of MaxX=2 lands in cell 2... verify below).
	got := s.FilterRect(g, geo.Rect{MinX: 0, MinY: 0, MaxX: 1.9, MaxY: 1.9})
	if !got.Equal(Set{0, 1, 3}) {
		t.Errorf("FilterRect = %v, want {0,1,3}", got)
	}
	if got := s.FilterRect(g, geo.EmptyRect); got.Len() != 0 {
		t.Errorf("FilterRect(empty) = %v, want empty", got)
	}
	all := s.FilterRect(g, geo.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10})
	if !all.Equal(s) {
		t.Errorf("FilterRect(everything) = %v, want %v", all, s)
	}
}

func BenchmarkIntersectCountMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomSet(rng, 5000, 1<<24)
	y := randomSet(rng, 5000, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectCount(y)
	}
}

func BenchmarkIntersectCountGallop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomSet(rng, 50, 1<<24)
	y := randomSet(rng, 50000, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectCount(y)
	}
}
