package cellset

import (
	"math"
	"math/rand"
	"testing"

	"dits/internal/geo"
)

func TestDistPaperExample(t *testing.T) {
	// Example 3: S_D1={9,11}, S_D2={1,3}, S_D3={12,13} on the 4x4 grid.
	d1 := New(9, 11)
	d2 := New(1, 3)
	d3 := New(12, 13)
	if d := Dist(d1, d2); d != 1 {
		t.Errorf("dist(D1,D2) = %v, want 1", d)
	}
	if d := Dist(d1, d3); d != 1 {
		t.Errorf("dist(D1,D3) = %v, want 1", d)
	}
	if d := Dist(d2, d3); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("dist(D2,D3) = %v, want sqrt2", d)
	}
}

func TestDistEmpty(t *testing.T) {
	if !math.IsInf(Dist(nil, New(1)), 1) {
		t.Error("Dist with empty set should be +Inf")
	}
	if !math.IsInf(DistNaive(New(1), nil), 1) {
		t.Error("DistNaive with empty set should be +Inf")
	}
	if WithinDist(nil, New(1), 100) {
		t.Error("empty set is never connected")
	}
}

func TestDistZeroOnOverlap(t *testing.T) {
	a := New(5, 9, 77)
	b := New(3, 77, 200)
	if d := Dist(a, b); d != 0 {
		t.Errorf("overlapping sets dist = %v, want 0", d)
	}
	if !WithinDist(a, b, 0) {
		t.Error("overlapping sets should be connected at δ=0")
	}
}

func TestDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := randomGridSet(rng, 1+rng.Intn(60))
		b := randomGridSet(rng, 1+rng.Intn(60))
		want := DistNaive(a, b)
		if got := Dist(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Dist = %v, naive = %v\na=%v\nb=%v", trial, got, want, a, b)
		}
	}
}

func TestWithinDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 300; trial++ {
		a := randomGridSet(rng, 1+rng.Intn(40))
		b := randomGridSet(rng, 1+rng.Intn(40))
		d := DistNaive(a, b)
		for _, delta := range []float64{0, 1, 2, 5, 10, 20, 64} {
			want := d <= delta
			if got := WithinDist(a, b, delta); got != want {
				t.Fatalf("trial %d δ=%v: WithinDist = %v, want %v (true dist %v)",
					trial, delta, got, want, d)
			}
		}
	}
}

func TestWithinDistNegativeDelta(t *testing.T) {
	if WithinDist(New(1), New(1), -1) {
		t.Error("negative δ should never connect")
	}
}

func randomGridSet(rng *rand.Rand, n int) Set {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = geo.ZEncode(uint32(rng.Intn(64)), uint32(rng.Intn(64)))
	}
	return New(ids...)
}

func BenchmarkDistSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomGridSet(rng, 500)
	y := randomGridSet(rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dist2(x, y)
	}
}

func BenchmarkWithinDistHash(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randomGridSet(rng, 500)
	y := randomGridSet(rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WithinDist(x, y, 2)
	}
}
