package cellset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// Wire serialization of cell sets — the compact binary encoding the
// federation's binary codec ships query and dataset cells in (see
// docs/PROTOCOL.md, "Cell-set encoding"). A serialized set is one form
// tag followed by the form's payload:
//
//	wireEmpty:  nothing — the empty set.
//	wireFlat:   uvarint count, then the cells delta-encoded: the first
//	            cell as a uvarint, every later cell as uvarint
//	            (cell - previous - 1). Used for tiny sets, where the
//	            container form's per-chunk overhead would dominate.
//	wireChunks: uvarint total cardinality, uvarint chunk count, then per
//	            chunk (ascending key order): uvarint delta-encoded chunk
//	            key (first absolute, then key - previous - 1), uvarint
//	            chunk cardinality n, and the container payload exactly as
//	            Compact stores it — n little-endian uint16 words when
//	            n <= arrayMaxLen (the sorted array form), else the 1024
//	            little-endian uint64 words of the chunk bitmap. No Set
//	            round-trip: a Compact's containers are copied to the wire
//	            as raw words, and a sorted flat Set is chunk-walked
//	            directly into the identical container layout.
//
// Decoders validate everything — counts against remaining input, array
// ordering, bitmap cardinality, key/cell overflow — and return errors,
// never panic, on truncated or corrupt input (fuzz-tested).
const (
	wireEmpty  = 0
	wireFlat   = 1
	wireChunks = 2

	// flatWireMax is the largest set encoded in flat form: beyond it the
	// container form is at most 2 bytes/cell plus small per-chunk
	// overhead, which beats varint deltas on all but pathological sets.
	flatWireMax = 64
)

// errWire is the common prefix of wire-decoding failures.
var errWire = errors.New("cellset: corrupt wire set")

func wireErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errWire, fmt.Sprintf(format, args...))
}

// AppendWire appends the wire encoding of s to dst and returns the
// extended slice. It allocates nothing beyond dst's growth.
func (s Set) AppendWire(dst []byte) []byte {
	if len(s) == 0 {
		return append(dst, wireEmpty)
	}
	if len(s) <= flatWireMax {
		dst = append(dst, wireFlat)
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		prev := uint64(0)
		for i, cell := range s {
			if i == 0 {
				dst = binary.AppendUvarint(dst, cell)
			} else {
				dst = binary.AppendUvarint(dst, cell-prev-1)
			}
			prev = cell
		}
		return dst
	}
	dst = append(dst, wireChunks)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	nchunks := 0
	prevKey := ^uint64(0)
	for _, cell := range s {
		if key := cell >> chunkBits; key != prevKey {
			nchunks++
			prevKey = key
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nchunks))
	prevKey = 0
	first := true
	for i := 0; i < len(s); {
		key := s[i] >> chunkBits
		j := i + 1
		for j < len(s) && s[j]>>chunkBits == key {
			j++
		}
		if first {
			dst = binary.AppendUvarint(dst, key)
			first = false
		} else {
			dst = binary.AppendUvarint(dst, key-prevKey-1)
		}
		prevKey = key
		n := j - i
		dst = binary.AppendUvarint(dst, uint64(n))
		if n <= arrayMaxLen {
			for _, cell := range s[i:j] {
				dst = binary.LittleEndian.AppendUint16(dst, uint16(cell&chunkMask))
			}
		} else {
			var bm bitmap
			for _, cell := range s[i:j] {
				v := cell & chunkMask
				bm[v>>6] |= 1 << (v & 63)
			}
			dst = appendBitmap(dst, &bm)
		}
		i = j
	}
	return dst
}

// AppendWire appends the wire encoding of c to dst and returns the
// extended slice. Containers are written to the wire in the exact form
// they are stored — raw little-endian words, array or bitmap as-is —
// with no intermediate flat Set. For any set large enough to use the
// container form, c.AppendWire and c.Set().AppendWire produce identical
// bytes.
func (c *Compact) AppendWire(dst []byte) []byte {
	if c.Len() == 0 {
		return append(dst, wireEmpty)
	}
	dst = append(dst, wireChunks)
	dst = binary.AppendUvarint(dst, uint64(c.n))
	dst = binary.AppendUvarint(dst, uint64(len(c.keys)))
	prevKey := uint64(0)
	for i, key := range c.keys {
		if i == 0 {
			dst = binary.AppendUvarint(dst, key)
		} else {
			dst = binary.AppendUvarint(dst, key-prevKey-1)
		}
		prevKey = key
		ct := &c.cts[i]
		dst = binary.AppendUvarint(dst, uint64(ct.n))
		if ct.bm == nil {
			for _, v := range ct.arr {
				dst = binary.LittleEndian.AppendUint16(dst, v)
			}
		} else {
			dst = appendBitmap(dst, ct.bm)
		}
	}
	return dst
}

func appendBitmap(dst []byte, bm *bitmap) []byte {
	for _, w := range bm {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// DecodeWireSet decodes one wire-encoded cell set from the front of data,
// returning the set and the unconsumed remainder.
func DecodeWireSet(data []byte) (Set, []byte, error) {
	c, s, rest, err := decodeWire(data, false)
	if err != nil {
		return nil, nil, err
	}
	if c != nil {
		return c.Set(), rest, nil
	}
	return s, rest, nil
}

// DecodeWireCompact decodes one wire-encoded cell set from the front of
// data directly into container form — chunk payloads are copied off the
// wire as raw words, with no flat Set round-trip — returning the set and
// the unconsumed remainder.
func DecodeWireCompact(data []byte) (*Compact, []byte, error) {
	c, s, rest, err := decodeWire(data, true)
	if err != nil {
		return nil, nil, err
	}
	if c == nil {
		c = FromSet(s)
	}
	return c, rest, nil
}

// decodeWire is the shared decoder: container-form input yields a
// *Compact, flat-form input yields a Set (converting is the caller's
// choice; tiny flat sets convert cheaply either way).
func decodeWire(data []byte, wantCompact bool) (*Compact, Set, []byte, error) {
	if len(data) == 0 {
		return nil, nil, nil, wireErr("missing form tag")
	}
	form, data := data[0], data[1:]
	switch form {
	case wireEmpty:
		return nil, nil, data, nil
	case wireFlat:
		n, data, err := wireUvarint(data)
		if err != nil {
			return nil, nil, nil, err
		}
		// Every flat cell costs at least one byte, so n can never
		// honestly exceed the remaining input — reject before allocating.
		if n == 0 || n > uint64(len(data)) {
			return nil, nil, nil, wireErr("flat count %d out of range", n)
		}
		s := make(Set, 0, n)
		prev := uint64(0)
		for i := uint64(0); i < n; i++ {
			d, rest, err := wireUvarint(data)
			if err != nil {
				return nil, nil, nil, err
			}
			data = rest
			cell := d
			if i > 0 {
				if d > ^uint64(0)-prev-1 {
					return nil, nil, nil, wireErr("flat delta overflow")
				}
				cell = prev + 1 + d
			}
			s = append(s, cell)
			prev = cell
		}
		return nil, s, data, nil
	case wireChunks:
		return decodeWireChunks(data, wantCompact)
	default:
		return nil, nil, nil, wireErr("unknown form tag %d", form)
	}
}

// decodeWireChunks decodes the container form.
func decodeWireChunks(data []byte, wantCompact bool) (*Compact, Set, []byte, error) {
	total, data, err := wireUvarint(data)
	if err != nil {
		return nil, nil, nil, err
	}
	nchunks, data, err := wireUvarint(data)
	if err != nil {
		return nil, nil, nil, err
	}
	// A bitmap chunk holds at most 65536 cells in 8 KiB (8 cells/byte),
	// and every chunk costs at least two header bytes: cheap upper bounds
	// that reject hostile counts before any allocation.
	if total == 0 || total > 8*uint64(len(data)) {
		return nil, nil, nil, wireErr("cardinality %d out of range", total)
	}
	if nchunks == 0 || nchunks > uint64(len(data)/2)+1 {
		return nil, nil, nil, wireErr("chunk count %d out of range", nchunks)
	}
	var c *Compact
	var flat Set
	if wantCompact {
		c = &Compact{
			keys: make([]uint64, 0, nchunks),
			cts:  make([]container, 0, nchunks),
		}
	} else {
		flat = make(Set, 0, total)
	}
	prevKey := uint64(0)
	for i := uint64(0); i < nchunks; i++ {
		d, rest, err := wireUvarint(data)
		if err != nil {
			return nil, nil, nil, err
		}
		data = rest
		key := d
		if i > 0 {
			key = prevKey + 1 + d
			if key <= prevKey {
				return nil, nil, nil, wireErr("chunk key overflow")
			}
		}
		if key > (1<<(64-chunkBits))-1 {
			return nil, nil, nil, wireErr("chunk key %d out of range", key)
		}
		prevKey = key
		n, rest, err := wireUvarint(data)
		if err != nil {
			return nil, nil, nil, err
		}
		data = rest
		if n == 0 || n > 1<<chunkBits {
			return nil, nil, nil, wireErr("chunk cardinality %d out of range", n)
		}
		var ct container
		if n <= arrayMaxLen {
			need := 2 * int(n)
			if len(data) < need {
				return nil, nil, nil, wireErr("truncated array chunk")
			}
			arr := make([]uint16, n)
			prev := -1
			for k := range arr {
				v := binary.LittleEndian.Uint16(data[2*k:])
				if int(v) <= prev {
					return nil, nil, nil, wireErr("array chunk not strictly increasing")
				}
				prev = int(v)
				arr[k] = v
			}
			data = data[need:]
			ct = container{arr: arr, n: int(n)}
		} else {
			need := bitmapWords * 8
			if len(data) < need {
				return nil, nil, nil, wireErr("truncated bitmap chunk")
			}
			var bm bitmap
			pop := 0
			for w := range bm {
				bm[w] = binary.LittleEndian.Uint64(data[8*w:])
				pop += bits.OnesCount64(bm[w])
			}
			if pop != int(n) {
				return nil, nil, nil, wireErr("bitmap cardinality %d != declared %d", pop, n)
			}
			data = data[need:]
			ct = container{bm: &bm, n: int(n)}
		}
		if wantCompact {
			c.keys = append(c.keys, key)
			c.cts = append(c.cts, ct)
			c.n += ct.n
		} else {
			base := key << chunkBits
			if ct.bm == nil {
				for _, v := range ct.arr {
					flat = append(flat, base|uint64(v))
				}
			} else {
				for w, word := range ct.bm {
					for ; word != 0; word &= word - 1 {
						flat = append(flat, base|uint64(w<<6|bits.TrailingZeros64(word)))
					}
				}
			}
		}
	}
	got := uint64(len(flat))
	if wantCompact {
		got = uint64(c.n)
	}
	if got != total {
		return nil, nil, nil, wireErr("cardinality %d != declared %d", got, total)
	}
	if wantCompact {
		return c, nil, data, nil
	}
	return nil, flat, data, nil
}

// wireUvarint reads one uvarint off the front of data.
func wireUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, wireErr("truncated varint")
	}
	return v, data[n:], nil
}
