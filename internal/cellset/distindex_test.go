package cellset

import (
	"math/rand"
	"testing"

	"dits/internal/geo"
)

func TestDistIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		q := randomGridSet(rng, 1+rng.Intn(50))
		s := randomGridSet(rng, 1+rng.Intn(50))
		for _, delta := range []float64{0, 1, 2.5, 7, 15, 40} {
			ix := NewDistIndex(q, delta)
			want := DistNaive(q, s) <= delta
			if got := ix.Connected(s); got != want {
				t.Fatalf("trial %d δ=%v: Connected=%v, naive=%v\nq=%v\ns=%v",
					trial, delta, got, want, q, s)
			}
		}
	}
}

func TestDistIndexAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		base := randomGridSet(rng, 1+rng.Intn(30))
		extra := randomGridSet(rng, 1+rng.Intn(30))
		probe := randomGridSet(rng, 1+rng.Intn(30))
		delta := float64(rng.Intn(8))
		ix := NewDistIndex(base, delta)
		ix.Add(extra)
		want := DistNaive(base, probe) <= delta || DistNaive(extra, probe) <= delta
		if got := ix.Connected(probe); got != want {
			t.Fatalf("trial %d δ=%v: Connected=%v, want %v", trial, delta, got, want)
		}
	}
}

// TestDistIndexExtremeCoordinates is the regression test for the bucket-key
// overflow: with side 1, grid coordinates above 2^31 used to overflow the
// int32 bucket keys, collapsing far-apart cells into colliding buckets and
// (worse) separating genuinely close cells into buckets that no longer
// neighbor each other.
func TestDistIndexExtremeCoordinates(t *testing.T) {
	const big = uint64(1) << 33 // past int32 when divided by side=1
	x, y := uint32(big>>2), uint32(big>>2+3)
	q := New(geo.ZEncode(x, y))
	near := New(geo.ZEncode(x+1, y+1))
	far := New(geo.ZEncode(x+1000, y+1000))
	ix := NewDistIndex(q, 2)
	if !ix.Connected(near) {
		t.Error("adjacent cell at extreme coordinates should be connected")
	}
	if ix.Connected(far) {
		t.Error("distant cell at extreme coordinates should not be connected")
	}
	// Exhaustive agreement with the naive distance around the extreme
	// corner, including coordinates on both sides of the 2^31 boundary.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		mk := func() Set {
			ids := make([]uint64, 1+rng.Intn(20))
			for i := range ids {
				ids[i] = geo.ZEncode(
					uint32(1)<<31-10+uint32(rng.Intn(20)),
					uint32(1)<<31-10+uint32(rng.Intn(20)))
			}
			return New(ids...)
		}
		a, b := mk(), mk()
		for _, delta := range []float64{0, 1, 3, 10} {
			want := DistNaive(a, b) <= delta
			if got := NewDistIndex(a, delta).Connected(b); got != want {
				t.Fatalf("trial %d δ=%v: Connected=%v, naive=%v", trial, delta, got, want)
			}
		}
	}
}

// TestDistIndexCompactParity checks the Compact-fed entry points agree with
// the Set-fed ones.
func TestDistIndexCompactParity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 100; trial++ {
		base := randomGridSet(rng, 1+rng.Intn(40))
		extra := randomGridSet(rng, 1+rng.Intn(40))
		probe := randomGridSet(rng, 1+rng.Intn(40))
		delta := float64(rng.Intn(10))
		a := NewDistIndex(base, delta)
		a.Add(extra)
		b := NewDistIndex(base, delta)
		b.AddCompact(FromSet(extra))
		if got, want := b.ConnectedCompact(FromSet(probe)), a.Connected(probe); got != want {
			t.Fatalf("trial %d: compact path Connected=%v, set path %v", trial, got, want)
		}
	}
	var nilIx *DistIndex
	nilIx.AddCompact(FromSet(New(1))) // must not panic
	if nilIx.ConnectedCompact(FromSet(New(1))) {
		t.Error("nil index connects nothing")
	}
}

func TestDistIndexEdgeCases(t *testing.T) {
	if ix := NewDistIndex(nil, 5); ix != nil {
		t.Error("empty set should yield nil index")
	}
	if ix := NewDistIndex(New(1), -1); ix != nil {
		t.Error("negative delta should yield nil index")
	}
	var nilIx *DistIndex
	if nilIx.Connected(New(1)) {
		t.Error("nil index connects nothing")
	}
	nilIx.Add(New(1)) // must not panic
	ix := NewDistIndex(New(5), 0)
	if !ix.Connected(New(5)) {
		t.Error("identical cell should be connected at δ=0")
	}
	if ix.Connected(nil) {
		t.Error("empty probe is never connected")
	}
}

func BenchmarkDistIndexConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	q := randomGridSet(rng, 2000)
	s := randomGridSet(rng, 200)
	ix := NewDistIndex(q, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Connected(s)
	}
}
