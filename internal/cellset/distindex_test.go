package cellset

import (
	"math/rand"
	"testing"
)

func TestDistIndexMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		q := randomGridSet(rng, 1+rng.Intn(50))
		s := randomGridSet(rng, 1+rng.Intn(50))
		for _, delta := range []float64{0, 1, 2.5, 7, 15, 40} {
			ix := NewDistIndex(q, delta)
			want := DistNaive(q, s) <= delta
			if got := ix.Connected(s); got != want {
				t.Fatalf("trial %d δ=%v: Connected=%v, naive=%v\nq=%v\ns=%v",
					trial, delta, got, want, q, s)
			}
		}
	}
}

func TestDistIndexAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		base := randomGridSet(rng, 1+rng.Intn(30))
		extra := randomGridSet(rng, 1+rng.Intn(30))
		probe := randomGridSet(rng, 1+rng.Intn(30))
		delta := float64(rng.Intn(8))
		ix := NewDistIndex(base, delta)
		ix.Add(extra)
		want := DistNaive(base, probe) <= delta || DistNaive(extra, probe) <= delta
		if got := ix.Connected(probe); got != want {
			t.Fatalf("trial %d δ=%v: Connected=%v, want %v", trial, delta, got, want)
		}
	}
}

func TestDistIndexEdgeCases(t *testing.T) {
	if ix := NewDistIndex(nil, 5); ix != nil {
		t.Error("empty set should yield nil index")
	}
	if ix := NewDistIndex(New(1), -1); ix != nil {
		t.Error("negative delta should yield nil index")
	}
	var nilIx *DistIndex
	if nilIx.Connected(New(1)) {
		t.Error("nil index connects nothing")
	}
	nilIx.Add(New(1)) // must not panic
	ix := NewDistIndex(New(5), 0)
	if !ix.Connected(New(5)) {
		t.Error("identical cell should be connected at δ=0")
	}
	if ix.Connected(nil) {
		t.Error("empty probe is never connected")
	}
}

func BenchmarkDistIndexConnected(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	q := randomGridSet(rng, 2000)
	s := randomGridSet(rng, 200)
	ix := NewDistIndex(q, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Connected(s)
	}
}
