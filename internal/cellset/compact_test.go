package cellset

import (
	"math/rand"
	"testing"
)

// denseChunkSet builds a set with >arrayMaxLen cells inside one chunk, so
// its container is a bitmap.
func denseChunkSet(base uint64, n int) Set {
	s := make(Set, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, base<<chunkBits|uint64(i*3%((1<<chunkBits)-1)))
	}
	return s.normalize()
}

// clusteredSet mimics z-order-clustered data: a few dense runs of
// consecutive cell IDs, which is what spatially compact datasets produce
// after Morton encoding.
func clusteredSet(rng *rand.Rand, runs, runLen int) Set {
	s := make(Set, 0, runs*runLen)
	for r := 0; r < runs; r++ {
		start := uint64(rng.Int63n(1 << 24))
		for i := 0; i < runLen; i++ {
			if rng.Intn(4) > 0 { // ~75% fill: dense but not contiguous
				s = append(s, start+uint64(i))
			}
		}
	}
	return s.normalize()
}

func TestCompactRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []Set{
		nil,
		New(0),
		New(1, 2, 3, 1<<20, 1<<40),
		randomSet(rng, 300, 1<<30),
		denseChunkSet(7, 6000),
		clusteredSet(rng, 5, 3000),
	}
	for i, s := range cases {
		c := FromSet(s)
		if c.Len() != s.Len() {
			t.Fatalf("case %d: Len = %d, want %d", i, c.Len(), s.Len())
		}
		if got := c.Set(); !got.Equal(s) {
			t.Fatalf("case %d: round trip = %v, want %v", i, got, s)
		}
		if !FromSet(s).Equal(c) {
			t.Fatalf("case %d: Equal not reflexive across builds", i)
		}
	}
}

func TestCompactContainerForms(t *testing.T) {
	sparse := FromSet(New(1, 2, 3))
	if sparse.cts[0].bm != nil {
		t.Error("3-cell chunk should be an array container")
	}
	dense := FromSet(denseChunkSet(0, 6000))
	if dense.cts[0].bm == nil {
		t.Errorf("%d-cell chunk should be a bitmap container", dense.n)
	}
	// Diff that shrinks a bitmap chunk below the threshold must convert
	// back to the canonical array form.
	most := denseChunkSet(0, 6000)
	few := most[:10].Clone()
	d := FromSet(most).Diff(FromSet(most.Diff(few)))
	if !d.Set().Equal(few) {
		t.Fatalf("diff = %v, want %v", d.Set(), few)
	}
	if len(d.cts) != 1 || d.cts[0].bm != nil {
		t.Error("10-cell result chunk should have converted to an array")
	}
}

func TestCompactContains(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randomSet(rng, 500, 1<<22).Union(denseChunkSet(99, 5000))
	c := FromSet(s)
	for _, cell := range s {
		if !c.Contains(cell) {
			t.Fatalf("Contains(%d) = false, want true", cell)
		}
	}
	for i := 0; i < 1000; i++ {
		cell := uint64(rng.Int63n(1 << 24))
		if c.Contains(cell) != s.Contains(cell) {
			t.Fatalf("Contains(%d) = %v, flat says %v", cell, c.Contains(cell), s.Contains(cell))
		}
	}
	if (*Compact)(nil).Contains(1) {
		t.Error("nil Compact contains nothing")
	}
}

// checkOps verifies every Compact operation against the flat-slice
// reference on one pair of sets. It is the shared core of the property
// test and the differential fuzz target.
func checkOps(t *testing.T, s, u Set) {
	t.Helper()
	cs, cu := FromSet(s), FromSet(u)
	if got, want := cs.IntersectCount(cu), s.IntersectCount(u); got != want {
		t.Fatalf("IntersectCount = %d, flat %d\ns=%v\nu=%v", got, want, s, u)
	}
	if got, want := cu.IntersectCount(cs), u.IntersectCount(s); got != want {
		t.Fatalf("IntersectCount not symmetric: %d vs flat %d", got, want)
	}
	if got, want := cs.UnionCount(cu), s.UnionCount(u); got != want {
		t.Fatalf("UnionCount = %d, flat %d", got, want)
	}
	if got, want := cs.MarginalGain(cu), s.MarginalGain(u); got != want {
		t.Fatalf("MarginalGain = %d, flat %d\ns=%v\nu=%v", got, want, s, u)
	}
	un := cs.Union(cu)
	if !un.Set().Equal(s.Union(u)) {
		t.Fatalf("Union = %v, flat %v", un.Set(), s.Union(u))
	}
	if un.Len() != s.Union(u).Len() {
		t.Fatalf("Union Len = %d, flat %d", un.Len(), s.Union(u).Len())
	}
	if !un.Equal(FromSet(s.Union(u))) {
		t.Fatalf("Union not canonical: computed and rebuilt forms differ")
	}
	if got, want := cs.Intersect(cu).Set(), s.Intersect(u); !got.Equal(want) {
		t.Fatalf("Intersect = %v, flat %v", got, want)
	}
	if got, want := cs.Diff(cu).Set(), s.Diff(u); !got.Equal(want) {
		t.Fatalf("Diff = %v, flat %v", got, want)
	}
	if !cs.Diff(cu).Equal(FromSet(s.Diff(u))) {
		t.Fatalf("Diff not canonical")
	}
	if cs.Equal(cu) != s.Equal(u) {
		t.Fatalf("Equal = %v, flat %v", cs.Equal(cu), s.Equal(u))
	}
}

func TestCompactOpsAgainstFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		var s, u Set
		switch trial % 3 {
		case 0: // sparse uniform
			s = randomSet(rng, rng.Intn(400), 1<<26)
			u = randomSet(rng, rng.Intn(400), 1<<26)
		case 1: // clustered, overlapping ranges
			s = clusteredSet(rng, 1+rng.Intn(4), 2000)
			u = clusteredSet(rng, 1+rng.Intn(4), 2000).Union(s[:len(s)/2].Clone())
		default: // dense bitmap chunks with partial overlap
			s = denseChunkSet(uint64(rng.Intn(3)), 4500+rng.Intn(2000))
			u = denseChunkSet(uint64(rng.Intn(3)), 4500+rng.Intn(2000))
		}
		checkOps(t, s, u)
	}
}

func TestCompactForEachOrderAndStop(t *testing.T) {
	s := New(5, 1, 9, 70000, 70001)
	c := FromSet(s)
	var got Set
	c.ForEach(func(cell uint64) bool {
		got = append(got, cell)
		return true
	})
	if !got.Equal(New(1, 5, 9, 70000, 70001)) {
		t.Fatalf("ForEach order = %v", got)
	}
	calls := 0
	c.ForEach(func(uint64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("ForEach did not stop: %d calls", calls)
	}
}

func TestCompactNilSafety(t *testing.T) {
	var nilC *Compact
	full := FromSet(New(1, 2, 3))
	if nilC.Len() != 0 || !nilC.IsEmpty() {
		t.Error("nil Compact should be empty")
	}
	if nilC.IntersectCount(full) != 0 || full.IntersectCount(nilC) != 0 {
		t.Error("intersect with nil should be 0")
	}
	if got := nilC.Union(full); got.Len() != 3 {
		t.Errorf("nil ∪ full = %d cells, want 3", got.Len())
	}
	if got := full.Union(nilC); got.Len() != 3 {
		t.Errorf("full ∪ nil = %d cells, want 3", got.Len())
	}
	if got := full.Diff(nilC); got.Len() != 3 {
		t.Errorf("full \\ nil = %d cells, want 3", got.Len())
	}
	if got := nilC.Diff(full); got.Len() != 0 {
		t.Errorf("nil \\ full = %d cells, want 0", got.Len())
	}
	if nilC.MarginalGain(full) != 3 {
		t.Error("nil set gains all of full")
	}
	if !nilC.Equal(FromSet(nil)) {
		t.Error("nil and empty should be Equal")
	}
	if nilC.Set() != nil {
		t.Error("nil Compact materializes to nil Set")
	}
}

// TestSetOpAllocs pins the counting kernels at zero allocations — the
// -benchmem guarantee the microbenchmarks report, asserted so CI catches a
// regression without parsing benchmark output.
func TestSetOpAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	s := clusteredSet(rng, 4, 3000)
	u := clusteredSet(rng, 4, 3000).Union(s[:len(s)/3].Clone())
	cs, cu := FromSet(s), FromSet(u)
	checks := []struct {
		name string
		fn   func()
	}{
		{"Set.IntersectCount", func() { s.IntersectCount(u) }},
		{"Set.MarginalGain", func() { s.MarginalGain(u) }},
		{"Compact.IntersectCount", func() { cs.IntersectCount(cu) }},
		{"Compact.UnionCount", func() { cs.UnionCount(cu) }},
		{"Compact.MarginalGain", func() { cs.MarginalGain(cu) }},
		{"Compact.Contains", func() { cs.Contains(u[0]) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(100, c.fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", c.name, avg)
		}
	}
}

// FuzzSetOps differentially fuzzes the container engine against the flat
// reference. Inputs decode into runs of cells so that fuzzing reaches
// array containers, bitmap containers (runs accumulate past the 4096
// array↔bitmap threshold), and chunk-boundary cells.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 5}, []byte{0, 0, 2, 5})
	f.Add([]byte{1, 255, 255, 255, 2, 0, 0, 9}, []byte{1, 255, 0, 200})
	f.Add([]byte{}, []byte{3, 1, 0, 50})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkOps(t, fuzzSet(a), fuzzSet(b))
	})
}

// fuzzSet decodes bytes into a Set: each 4-byte group (key, hi, lo, run)
// contributes a run of run+1 consecutive cells starting at
// key%8 << 16 | hi<<8|lo, scaled so runs can cross chunk boundaries and
// pile one chunk past the bitmap threshold.
func fuzzSet(data []byte) Set {
	var s Set
	for i := 0; i+3 < len(data); i += 4 {
		base := uint64(data[i]%8)<<chunkBits | uint64(data[i+1])<<8 | uint64(data[i+2])
		run := uint64(data[i+3])*8 + 1
		for c := base; c < base+run; c++ {
			s = append(s, c)
		}
	}
	return s.normalize()
}

// Microbenchmarks for the set-operation kernels, flat vs container, on the
// two workload shapes that matter: z-order-clustered (dense chunks, the
// real-dataset case) and uniform-sparse (the adversarial case). Run with
// -benchmem; TestSetOpAllocs asserts the counting kernels stay at zero.
func benchSets(clustered bool) (Set, Set) {
	rng := rand.New(rand.NewSource(42))
	if clustered {
		s := clusteredSet(rng, 8, 20000)
		u := clusteredSet(rng, 8, 20000).Union(s[:len(s)/2].Clone())
		return s, u
	}
	return randomSet(rng, 100000, 1<<26), randomSet(rng, 100000, 1<<26)
}

func BenchmarkIntersectCount(b *testing.B) {
	for _, w := range []struct {
		name      string
		clustered bool
	}{{"clustered", true}, {"uniform", false}} {
		s, u := benchSets(w.clustered)
		cs, cu := FromSet(s), FromSet(u)
		b.Run(w.name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.IntersectCount(u)
			}
		})
		b.Run(w.name+"/compact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs.IntersectCount(cu)
			}
		})
	}
}

func BenchmarkUnion(b *testing.B) {
	for _, w := range []struct {
		name      string
		clustered bool
	}{{"clustered", true}, {"uniform", false}} {
		s, u := benchSets(w.clustered)
		cs, cu := FromSet(s), FromSet(u)
		b.Run(w.name+"/flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Union(u)
			}
		})
		b.Run(w.name+"/compact", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs.Union(cu)
			}
		})
	}
}
