package cellset

import (
	"cmp"
	"math"
	"slices"

	"dits/internal/geo"
)

// Dist returns the cell-based dataset distance of Definition 6: the minimum
// Euclidean distance, in grid-coordinate units, between any cell of s and
// any cell of t. It returns +Inf when either set is empty.
//
// The implementation sorts both sets by x coordinate and sweeps with an
// early-exit window, which is far cheaper than the naive |s|·|t| scan on
// spatially separated sets while remaining exact.
func Dist(s, t Set) float64 {
	return math.Sqrt(Dist2(s, t))
}

// Dist2 returns the squared cell-based dataset distance.
func Dist2(s, t Set) float64 {
	if len(s) == 0 || len(t) == 0 {
		return math.Inf(1)
	}
	a := decodeSorted(s)
	b := decodeSorted(t)
	best := math.Inf(1)
	j0 := 0
	for _, p := range a {
		// Points of b left of p by more than sqrt(best) can never win for
		// p — nor for any later p, since a is sorted by x ascending.
		for j0 < len(b) {
			dx := float64(p.x) - float64(b[j0].x)
			if dx > 0 && dx*dx > best {
				j0++
				continue
			}
			break
		}
		for j := j0; j < len(b); j++ {
			dx := float64(b[j].x) - float64(p.x)
			if dx > 0 && dx*dx > best {
				break // b is sorted by x; everything further is worse
			}
			dy := float64(b[j].y) - float64(p.y)
			if d := dx*dx + dy*dy; d < best {
				best = d
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}

type cellXY struct{ x, y uint32 }

func decodeSorted(s Set) []cellXY {
	out := make([]cellXY, len(s))
	for i, c := range s {
		x, y := geo.ZDecode(c)
		out[i] = cellXY{x, y}
	}
	slices.SortFunc(out, func(a, b cellXY) int {
		if a.x != b.x {
			return cmp.Compare(a.x, b.x)
		}
		return cmp.Compare(a.y, b.y)
	})
	return out
}

// WithinDist reports whether Dist(s, t) <= delta, i.e. whether the two
// cell-based datasets are directly connected under threshold δ
// (Definition 7). It buckets the smaller set into δ-sided squares and
// probes the larger set's cells against the 3×3 bucket neighborhood,
// stopping at the first pair within δ. The per-call index build keeps this
// an honest pairwise kernel; callers that repeatedly test against the same
// set should build one DistIndex instead.
func WithinDist(s, t Set, delta float64) bool {
	if len(s) == 0 || len(t) == 0 || delta < 0 {
		return false
	}
	if len(s) > len(t) {
		s, t = t, s
	}
	return NewDistIndex(s, delta).Connected(t)
}

// DistNaive is the textbook O(|s|·|t|) pairwise minimum used as the oracle
// in tests and by the SG baseline, mirroring how a plain greedy
// implementation without index support computes Definition 6.
func DistNaive(s, t Set) float64 {
	if len(s) == 0 || len(t) == 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, a := range s {
		for _, b := range t {
			if d := geo.CellDist2(a, b); d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}
