package cellset

import (
	"math/rand"
	"testing"
)

// randomStorageSet builds a set mixing dense runs (bitmap chunks) and
// sparse scatter (array chunks) across several chunk keys.
func randomStorageSet(rng *rand.Rand) Set {
	var cells []uint64
	for c := 0; c < 1+rng.Intn(4); c++ {
		base := uint64(rng.Intn(8)) << chunkBits
		if rng.Intn(2) == 0 {
			// Dense run: forces a bitmap container.
			start := rng.Intn(1 << 14)
			for i := 0; i < arrayMaxLen+1+rng.Intn(2000); i++ {
				cells = append(cells, base|uint64((start+i)&(1<<chunkBits-1)))
			}
		} else {
			for i := 0; i < 1+rng.Intn(200); i++ {
				cells = append(cells, base|uint64(rng.Intn(1<<chunkBits)))
			}
		}
	}
	return New(cells...)
}

func TestStorageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sets := []Set{nil, New(0), New(1, 2, 3), New(1 << 40)}
	for i := 0; i < 40; i++ {
		sets = append(sets, randomStorageSet(rng))
	}
	for i, s := range sets {
		c := FromSet(s)
		rec := AppendStorage(nil, c)
		if len(rec) != StorageSize(c) {
			t.Fatalf("set %d: StorageSize %d != emitted %d", i, StorageSize(c), len(rec))
		}
		if len(rec)%8 != 0 {
			t.Fatalf("set %d: record not 8-aligned (%d bytes)", i, len(rec))
		}
		for _, decode := range []func([]byte) (*Compact, int, error){ViewStorage, DecodeStorage} {
			got, n, err := decode(rec)
			if err != nil {
				t.Fatalf("set %d: decode: %v", i, err)
			}
			if n != len(rec) {
				t.Fatalf("set %d: decode consumed %d of %d bytes", i, n, len(rec))
			}
			if !got.Equal(c) {
				t.Fatalf("set %d: round-trip mismatch", i)
			}
		}
		// Back-to-back records in one buffer decode independently.
		double := AppendStorage(rec, c)
		if _, n, err := ViewStorage(double[len(rec):]); err != nil || n != len(rec) {
			t.Fatalf("set %d: second record: n=%d err=%v", i, n, err)
		}
	}
}

// TestStorageViewAliases pins the zero-copy contract: on a little-endian
// host an aligned record is aliased by ViewStorage (mutating the buffer
// changes the set) while DecodeStorage always copies.
func TestStorageViewAliases(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("aliasing only on little-endian hosts")
	}
	s := randomStorageSet(rand.New(rand.NewSource(7)))
	c := FromSet(s)
	rec := AppendStorage(nil, c)

	cp, _, err := DecodeStorage(rec)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), rec...)
	for i := storageHeaderLen; i < len(rec); i++ {
		rec[i] = 0xAA
	}
	if !cp.Equal(c) {
		t.Fatal("DecodeStorage result changed when the buffer was scribbled")
	}
	copy(rec, saved)

	view, _, err := ViewStorage(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Equal(c) {
		t.Fatal("view decode mismatch")
	}
}

func TestStorageRejectsCorrupt(t *testing.T) {
	c := FromSet(New(1, 2, 3, 1<<20, 1<<21))
	good := AppendStorage(nil, c)
	for n := 0; n < len(good); n++ {
		if _, _, err := ViewStorage(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Declared-length/cardinality corruption must be caught, not trusted.
	for _, off := range []int{0, 4, 8, 12, storageHeaderLen} {
		b := append([]byte(nil), good...)
		b[off] ^= 0xFF
		if _, _, err := ViewStorage(b); err == nil {
			// A key byte flip can still be a valid (different) set; only
			// the header fields are unconditionally detectable.
			if off < storageHeaderLen {
				t.Fatalf("header flip at %d accepted", off)
			}
		}
	}
}

func FuzzStorageDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	f.Add(AppendStorage(nil, FromSet(nil)))
	f.Add(AppendStorage(nil, FromSet(New(1, 2, 3))))
	f.Add(AppendStorage(nil, FromSet(randomStorageSet(rng))))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, decode := range []func([]byte) (*Compact, int, error){ViewStorage, DecodeStorage} {
			c, n, err := decode(data)
			if err != nil {
				continue
			}
			if n < storageHeaderLen || n > len(data) {
				t.Fatalf("decoded length %d out of range", n)
			}
			// Whatever decoded must be a coherent set: re-encoding it
			// round-trips.
			rec := AppendStorage(nil, c)
			back, _, err := DecodeStorage(rec)
			if err != nil || !back.Equal(c) {
				t.Fatalf("re-encode round trip failed: %v", err)
			}
		}
	})
}
