package cellset

import (
	"math"

	"dits/internal/geo"
)

// DistIndex answers repeated "is this set within δ of q?" questions against
// a fixed set q — the access pattern of connectivity verification, where
// FindConnectSet probes many candidate datasets against the same (growing)
// merged query. It hashes q's cells into square buckets of side
// max(⌈δ⌉, 1): any pair of cells within δ lies in the same or an adjacent
// bucket, so each probe inspects at most a 3×3 bucket neighborhood.
type DistIndex struct {
	delta   float64
	d2      float64
	side    int64 // bucket side in cell units
	buckets map[bucketKey][]cellXY
}

// bucketKey uses int64 coordinates: grid coordinates span the full uint32
// range, so with side 1 the bucket coordinate itself needs more than 31
// bits — int32 keys silently collapsed distant cells into the same bucket
// above 2^31.
type bucketKey struct{ x, y int64 }

// NewDistIndex builds the index over q for threshold delta. A nil index is
// returned for an empty q or a negative delta: Connected on it is false.
func NewDistIndex(q Set, delta float64) *DistIndex {
	if len(q) == 0 || delta < 0 || math.IsNaN(delta) {
		return nil
	}
	side := int64(math.Ceil(delta))
	if side < 1 {
		side = 1
	}
	ix := &DistIndex{
		delta:   delta,
		d2:      delta * delta,
		side:    side,
		buckets: make(map[bucketKey][]cellXY, len(q)),
	}
	ix.Add(q)
	return ix
}

// Add extends the indexed set with more cells (the merge step of
// CoverageSearch grows the query side without rebuilding).
func (ix *DistIndex) Add(cells Set) {
	if ix == nil {
		return
	}
	for _, c := range cells {
		ix.add(c)
	}
}

// AddCompact extends the indexed set with the cells of a container set.
func (ix *DistIndex) AddCompact(cells *Compact) {
	if ix == nil {
		return
	}
	cells.ForEach(func(c uint64) bool {
		ix.add(c)
		return true
	})
}

func (ix *DistIndex) add(c uint64) {
	x, y := geo.ZDecode(c)
	k := bucketKey{int64(x) / ix.side, int64(y) / ix.side}
	ix.buckets[k] = append(ix.buckets[k], cellXY{x, y})
}

// Connected reports whether any cell of s lies within delta of an indexed
// cell — exactly the directly-connected relation of Definition 7.
func (ix *DistIndex) Connected(s Set) bool {
	if ix == nil || len(s) == 0 {
		return false
	}
	for _, c := range s {
		if ix.probe(c) {
			return true
		}
	}
	return false
}

// ConnectedCompact is Connected over a container set.
func (ix *DistIndex) ConnectedCompact(s *Compact) bool {
	if ix == nil || s.Len() == 0 {
		return false
	}
	hit := false
	s.ForEach(func(c uint64) bool {
		hit = ix.probe(c)
		return !hit
	})
	return hit
}

// probe reports whether cell c is within delta of any indexed cell.
func (ix *DistIndex) probe(c uint64) bool {
	x, y := geo.ZDecode(c)
	bx := int64(x) / ix.side
	by := int64(y) / ix.side
	for dy := int64(-1); dy <= 1; dy++ {
		for dx := int64(-1); dx <= 1; dx++ {
			pts, ok := ix.buckets[bucketKey{bx + dx, by + dy}]
			if !ok {
				continue
			}
			for _, p := range pts {
				ddx := float64(p.x) - float64(x)
				ddy := float64(p.y) - float64(y)
				if ddx*ddx+ddy*ddy <= ix.d2 {
					return true
				}
			}
		}
	}
	return false
}
