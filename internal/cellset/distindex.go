package cellset

import (
	"math"

	"dits/internal/geo"
)

// DistIndex answers repeated "is this set within δ of q?" questions against
// a fixed set q — the access pattern of connectivity verification, where
// FindConnectSet probes many candidate datasets against the same (growing)
// merged query. It hashes q's cells into square buckets of side
// max(⌈δ⌉, 1): any pair of cells within δ lies in the same or an adjacent
// bucket, so each probe inspects at most a 3×3 bucket neighborhood.
type DistIndex struct {
	delta   float64
	d2      float64
	side    int64 // bucket side in cell units
	buckets map[bucketKey][]cellXY
}

type bucketKey struct{ x, y int32 }

// NewDistIndex builds the index over q for threshold delta. A nil index is
// returned for an empty q or a negative delta: Connected on it is false.
func NewDistIndex(q Set, delta float64) *DistIndex {
	if len(q) == 0 || delta < 0 || math.IsNaN(delta) {
		return nil
	}
	side := int64(math.Ceil(delta))
	if side < 1 {
		side = 1
	}
	ix := &DistIndex{
		delta:   delta,
		d2:      delta * delta,
		side:    side,
		buckets: make(map[bucketKey][]cellXY, len(q)),
	}
	for _, c := range q {
		x, y := geo.ZDecode(c)
		k := bucketKey{int32(int64(x) / side), int32(int64(y) / side)}
		ix.buckets[k] = append(ix.buckets[k], cellXY{x, y})
	}
	return ix
}

// Add extends the indexed set with more cells (the merge step of
// CoverageSearch grows the query side without rebuilding).
func (ix *DistIndex) Add(cells Set) {
	if ix == nil {
		return
	}
	for _, c := range cells {
		x, y := geo.ZDecode(c)
		k := bucketKey{int32(int64(x) / ix.side), int32(int64(y) / ix.side)}
		ix.buckets[k] = append(ix.buckets[k], cellXY{x, y})
	}
}

// Connected reports whether any cell of s lies within delta of an indexed
// cell — exactly the directly-connected relation of Definition 7.
func (ix *DistIndex) Connected(s Set) bool {
	if ix == nil || len(s) == 0 {
		return false
	}
	for _, c := range s {
		x, y := geo.ZDecode(c)
		bx := int64(x) / ix.side
		by := int64(y) / ix.side
		for dy := int64(-1); dy <= 1; dy++ {
			for dx := int64(-1); dx <= 1; dx++ {
				pts, ok := ix.buckets[bucketKey{int32(bx + dx), int32(by + dy)}]
				if !ok {
					continue
				}
				for _, p := range pts {
					ddx := float64(p.x) - float64(x)
					ddy := float64(p.y) - float64(y)
					if ddx*ddx+ddy*ddy <= ix.d2 {
						return true
					}
				}
			}
		}
	}
	return false
}
