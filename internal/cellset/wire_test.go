package cellset

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// wireTestSets covers every encoding form: empty, flat (≤ flatWireMax),
// container with array chunks, container with a bitmap chunk, and sets
// spanning many chunks with large key gaps.
func wireTestSets() map[string]Set {
	dense := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ { // >arrayMaxLen in one chunk: bitmap form
		dense = append(dense, uint64(i))
	}
	sparse := make([]uint64, 0, 300)
	for i := 0; i < 300; i++ { // 1 cell per chunk, huge key deltas
		sparse = append(sparse, uint64(i)*1e9)
	}
	rng := rand.New(rand.NewSource(7))
	random := make([]uint64, 0, 2000)
	for i := 0; i < 2000; i++ {
		random = append(random, rng.Uint64()>>8)
	}
	return map[string]Set{
		"empty":     nil,
		"single":    New(42),
		"flat":      New(1, 2, 3, 100, 1<<40, 1<<63),
		"flat-max":  New(seq(0, flatWireMax, 3)...),
		"array":     New(seq(0, 200, 5)...),
		"bitmap":    New(dense...),
		"sparse":    New(sparse...),
		"random":    New(random...),
		"max-cell":  New(0, ^uint64(0)),
		"two-forms": New(append(append([]uint64{}, dense...), sparse...)...),
	}
}

func seq(start uint64, n, step int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i*step)
	}
	return out
}

// TestWireRoundTrip: every set survives Set → wire → Set and wire →
// Compact → Set unchanged, and the remainder handling is exact.
func TestWireRoundTrip(t *testing.T) {
	for name, s := range wireTestSets() {
		t.Run(name, func(t *testing.T) {
			wire := s.AppendWire(nil)
			tail := []byte{0xde, 0xad}
			got, rest, err := DecodeWireSet(append(append([]byte{}, wire...), tail...))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rest, tail) {
				t.Fatalf("decoder consumed the wrong amount: rest %x", rest)
			}
			if !reflect.DeepEqual(got, s) {
				t.Fatalf("set round trip: got %d cells, want %d", len(got), len(s))
			}
			c, rest, err := DecodeWireCompact(wire)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("compact decoder left %d bytes", len(rest))
			}
			if cs := c.Set(); !reflect.DeepEqual(cs, s) && !(len(cs) == 0 && len(s) == 0) {
				t.Fatalf("compact round trip diverged: %d cells, want %d", len(cs), len(s))
			}
		})
	}
}

// TestWireCompactByteEquality: for any set big enough to use the
// container form, Compact.AppendWire must produce byte-identical output
// to Set.AppendWire — the compact path writes raw container words with
// no flat round-trip, and this pins that it is a pure fast path.
func TestWireCompactByteEquality(t *testing.T) {
	for name, s := range wireTestSets() {
		if len(s) <= flatWireMax {
			continue // flat form: Compact always writes container form
		}
		t.Run(name, func(t *testing.T) {
			viaSet := s.AppendWire(nil)
			viaCompact := FromSet(s).AppendWire(nil)
			if !bytes.Equal(viaSet, viaCompact) {
				t.Fatalf("Set and Compact encodings differ: %d vs %d bytes", len(viaSet), len(viaCompact))
			}
			// And a decoded Compact re-encodes identically.
			c, _, err := DecodeWireCompact(viaSet)
			if err != nil {
				t.Fatal(err)
			}
			if again := c.AppendWire(nil); !bytes.Equal(viaSet, again) {
				t.Fatal("decoded Compact does not re-encode to identical bytes")
			}
		})
	}
}

// TestWireAppendZeroAlloc: with capacity already in dst, AppendWire must
// not allocate — it is the inner loop of the binary codec's encode path.
func TestWireAppendZeroAlloc(t *testing.T) {
	for name, s := range wireTestSets() {
		s := s
		dst := make([]byte, 0, len(s.AppendWire(nil))+64)
		c := FromSet(s)
		if allocs := testing.AllocsPerRun(100, func() {
			dst = s.AppendWire(dst[:0])
		}); allocs != 0 {
			t.Errorf("%s: Set.AppendWire allocated %.1f times", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			dst = c.AppendWire(dst[:0])
		}); allocs != 0 {
			t.Errorf("%s: Compact.AppendWire allocated %.1f times", name, allocs)
		}
	}
}

// TestWireDecodeRejectsCorrupt: hand-built hostile inputs must error —
// never panic, never mis-decode.
func TestWireDecodeRejectsCorrupt(t *testing.T) {
	valid := New(seq(0, 200, 5)...).AppendWire(nil)
	cases := map[string][]byte{
		"empty input":     {},
		"unknown form":    {9},
		"flat no count":   {wireFlat},
		"flat zero count": {wireFlat, 0},
		"flat count lies": {wireFlat, 200, 1, 1},
		"flat truncated":  New(1, 2, 3).AppendWire(nil)[:3],
		"chunks headless": {wireChunks, 5},
		"chunks huge total": {
			wireChunks, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1, 1,
		},
		"chunk truncated": valid[:len(valid)-3],
		"chunk card zero": {wireChunks, 1, 1, 0, 0},
	}
	for name, data := range cases {
		if _, _, err := DecodeWireSet(data); err == nil {
			t.Errorf("%s: DecodeWireSet accepted corrupt input", name)
		}
		if _, _, err := DecodeWireCompact(data); err == nil {
			t.Errorf("%s: DecodeWireCompact accepted corrupt input", name)
		}
	}
	// Array chunks must be strictly increasing: total=2, one chunk, key 0,
	// n=2, then cells 9 and 1 out of order.
	bad := []byte{wireChunks, 2, 1, 0, 2, 9, 0, 1, 0}
	if _, _, err := DecodeWireSet(bad); err == nil {
		t.Error("out-of-order array chunk accepted")
	}
}

// FuzzWireDecode drives both decoders over arbitrary input: they must
// return without panicking, and anything they accept must re-encode to
// an equivalent set.
func FuzzWireDecode(f *testing.F) {
	for _, s := range wireTestSets() {
		f.Add(s.AppendWire(nil))
	}
	f.Add([]byte{wireChunks, 10, 1, 0, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, err := DecodeWireSet(data)
		c, _, cerr := DecodeWireCompact(data)
		if (err == nil) != (cerr == nil) {
			t.Fatalf("decoders disagree: set err %v, compact err %v", err, cerr)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(c.Set(), s) && len(s) != 0 {
			t.Fatal("set and compact decoders produced different sets")
		}
		wire := s.AppendWire(nil)
		again, _, err := DecodeWireSet(wire)
		if err != nil {
			t.Fatalf("re-encoded set does not decode: %v", err)
		}
		if !reflect.DeepEqual(again, s) {
			t.Fatal("re-encoded set decodes differently")
		}
	})
}
