// Package cellset implements the cell-based dataset representation of the
// paper (Definition 5): a spatial dataset reduced to the sorted set of
// z-order cell IDs its points occupy. All of OJSP's overlap computation and
// CJSP's coverage/marginal-gain computation happens on these sets.
package cellset

import (
	"slices"

	"dits/internal/geo"
)

// Set is a cell-based dataset: a strictly increasing slice of z-order cell
// IDs. The sorted-unique invariant makes intersection and union linear
// merges and keeps results deterministic.
type Set []uint64

// New builds a Set from arbitrary (possibly duplicated, unsorted) cell IDs.
func New(ids ...uint64) Set {
	s := make(Set, len(ids))
	copy(s, ids)
	return s.normalize()
}

// FromPoints builds the cell-based dataset S_{D,Cθ} of the given points
// under grid g.
func FromPoints(g geo.Grid, pts []geo.Point) Set {
	s := make(Set, len(pts))
	for i, p := range pts {
		s[i] = g.CellID(p)
	}
	return s.normalize()
}

// normalize sorts s and removes duplicates in place.
func (s Set) normalize() Set {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Len returns the number of cells, the spatial coverage |S_D| of the set.
func (s Set) Len() int { return len(s) }

// IsEmpty reports whether the set has no cells.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether cell c is in the set.
func (s Set) Contains(c uint64) bool {
	_, ok := slices.BinarySearch(s, c)
	return ok
}

// Clone returns an independent copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Equal reports whether s and t contain exactly the same cells.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// IntersectCount returns |s ∩ t|, the overlap measure of OJSP
// (Definition 10), without materializing the intersection.
func (s Set) IntersectCount(t Set) int {
	// Merge the shorter into the longer with galloping when sizes are very
	// skewed; plain linear merge otherwise.
	if len(s) > len(t) {
		s, t = t, s
	}
	if len(s) == 0 {
		return 0
	}
	if len(t)/len(s) >= 32 {
		return gallopIntersectCount(s, t)
	}
	n, i, j := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			n++
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// gallopIntersectCount counts the intersection of a small set s against a
// much larger set t using exponential + binary search.
func gallopIntersectCount(s, t Set) int {
	n, lo := 0, 0
	for _, c := range s {
		// Exponential probe from lo.
		hi, step := lo, 1
		for hi < len(t) && t[hi] < c {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		// The probe loop stopped either past the end or at t[hi] >= c;
		// widen the window by one so a hit at t[hi] itself is found.
		hi++
		if hi > len(t) {
			hi = len(t)
		}
		idx, found := slices.BinarySearch(t[lo:hi], c)
		lo += idx
		if found {
			n++
			lo++
		}
		if lo >= len(t) {
			break
		}
	}
	return n
}

// Intersect returns s ∩ t as a new Set.
func (s Set) Intersect(t Set) Set {
	if len(s) > len(t) {
		s, t = t, s
	}
	out := make(Set, 0, len(s))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns s ∪ t as a new Set.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			out = append(out, t[j])
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// UnionCount returns |s ∪ t| without materializing the union.
func (s Set) UnionCount(t Set) int {
	return len(s) + len(t) - s.IntersectCount(t)
}

// MarginalGain returns g(t, s) = |t ∪ s| − |s|: the number of cells t adds
// on top of s (Equation 3 with s playing the accumulated result set).
func (s Set) MarginalGain(t Set) int {
	return len(t) - s.IntersectCount(t)
}

// Diff returns s \ t as a new Set.
func (s Set) Diff(t Set) Set {
	out := make(Set, 0, len(s))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		default:
			j++
		}
	}
	out = append(out, s[i:]...)
	return out
}

// UnionAll returns the union of all given sets.
func UnionAll(sets ...Set) Set {
	var out Set
	for _, s := range sets {
		out = out.Union(s)
	}
	return out
}

// Bounds returns the MBR, in grid-coordinate space, spanned by the set's
// cells: [minX,maxX]×[minY,maxY] inclusive. ok is false for an empty set.
func (s Set) Bounds() (minX, minY, maxX, maxY uint32, ok bool) {
	if len(s) == 0 {
		return 0, 0, 0, 0, false
	}
	minX, minY = ^uint32(0), ^uint32(0)
	for _, c := range s {
		x, y := geo.ZDecode(c)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return minX, minY, maxX, maxY, true
}

// FilterRect returns the subset of s whose cells fall inside the
// grid-coordinate span of rect r under grid g. It implements the query
// clipping of the second distribution strategy in §VI-A: only the portion
// of the query intersecting a candidate source's MBR is shipped.
func (s Set) FilterRect(g geo.Grid, r geo.Rect) Set {
	if r.IsEmpty() {
		return nil
	}
	x0, y0, x1, y1 := g.RectCoords(r)
	out := make(Set, 0, len(s))
	for _, c := range s {
		x, y := geo.ZDecode(c)
		if x >= x0 && x <= x1 && y >= y0 && y <= y1 {
			out = append(out, c)
		}
	}
	return out
}
