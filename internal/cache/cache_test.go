package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", "two")
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v.(string) != "two" {
		t.Fatalf("Get(b) = %v, %v", v, ok)
	}
	c.Put("a", 10) // overwrite
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Len != 2 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 16 over 16 shards = 1 entry per shard: inserting two keys
	// that land in the same shard must evict the older one.
	c := New(16)
	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		keys = append(keys, fmt.Sprintf("k%d", i))
	}
	var a, b string
	for i := 0; i < len(keys) && b == ""; i++ {
		for j := i + 1; j < len(keys); j++ {
			if c.shard(keys[i]) == c.shard(keys[j]) {
				a, b = keys[i], keys[j]
				break
			}
		}
	}
	if b == "" {
		t.Fatal("no shard collision among 64 keys")
	}
	c.Put(a, 1)
	c.Put(b, 2)
	if _, ok := c.Get(a); ok {
		t.Error("LRU entry not evicted")
	}
	if v, ok := c.Get(b); !ok || v.(int) != 2 {
		t.Error("newest entry evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestRecencyOrder(t *testing.T) {
	// One shard of capacity 2: touching the older entry must flip the
	// eviction victim. Shard assignment is per-cache (seeded), so the
	// same-shard keys are found with the cache under test itself.
	c2 := New(2 * numShards) // 2 per shard
	var same []string
	for i := 0; len(same) < 3 && i < 4096; i++ {
		k := fmt.Sprintf("k%d", i)
		if len(same) == 0 || c2.shard(k) == c2.shard(same[0]) {
			same = append(same, k)
		}
	}
	if len(same) < 3 {
		t.Fatal("could not find 3 same-shard keys")
	}
	c2.Put(same[0], 0)
	c2.Put(same[1], 1)
	c2.Get(same[0]) // promote oldest
	c2.Put(same[2], 2)
	if _, ok := c2.Get(same[1]); ok {
		t.Error("least recently used entry survived")
	}
	if _, ok := c2.Get(same[0]); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestClear(t *testing.T) {
	c := New(32)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("entry survived Clear")
	}
}

func TestNilCache(t *testing.T) {
	var c *Cache
	if c != New(0) {
		t.Error("New(0) should be the nil always-miss cache")
	}
	c.Put("a", 1) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache hit")
	}
	c.Clear()
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache not empty")
	}
}

// TestConcurrentAccess is the -race stress test: readers, writers, and
// clearers on overlapping keys.
func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%200)
				c.Put(k, i)
				if v, ok := c.Get(k); ok {
					if _, isInt := v.(int); !isInt {
						t.Errorf("corrupt value %v", v)
						return
					}
				}
				if i%100 == 0 && w == 0 {
					c.Clear()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128+numShards {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
