// Package cache provides a sharded, fixed-capacity LRU cache used by the
// federation center to memoize whole-query results. Keys are canonical
// byte strings (the cell-based query representation is already sorted and
// de-duplicated, so equal queries produce equal keys); sharding by key
// hash keeps lock contention low when many gateway clients hit the cache
// concurrently. All methods are safe for concurrent use and safe on a nil
// *Cache, which behaves as an always-miss cache.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"

	"dits/internal/metrics"
)

// numShards is the shard count; a power of two so shard selection is a
// mask. 16 shards keep contention negligible at the gateway's default
// concurrency without bloating the per-cache footprint.
const numShards = 16

// Cache is a sharded LRU mapping string keys to arbitrary values. The
// hit/miss/eviction counters are cache-level lock-free metrics instruments
// so the hot Get path adds nothing to the shard critical sections and the
// same counters feed both Stats and Prometheus exposition (Register).
type Cache struct {
	shards [numShards]shard
	seed   maphash.Seed

	hits      metrics.Counter
	misses    metrics.Counter
	evictions metrics.Counter
}

type shard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// entry is one element payload in a shard's LRU list.
type entry struct {
	key   string
	value any
}

// New creates a cache holding up to capacity entries, spread evenly over
// the shards (each shard holds at least one entry). A capacity of 0 or
// less returns nil, the always-miss cache, so callers can treat "cache
// disabled" and "cache enabled" uniformly.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)&(numShards-1)]
}

// Get returns the cached value for key and promotes it to most recently
// used. The second result reports whether the key was present.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	s.ll.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put stores value under key, evicting the least recently used entry of
// the key's shard when the shard is full.
func (c *Cache) Put(key string, value any) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).value = value
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*entry).key)
		c.evictions.Inc()
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, value: value})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Clear drops every entry; the hit/miss counters are kept. The center
// calls this when federation membership changes, since cached results may
// then include departed sources or miss new ones.
func (c *Cache) Clear() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 before any lookups.
func (st Stats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the cache's counters summed over the shards.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Len += s.ll.Len()
		st.Capacity += s.cap
		s.mu.Unlock()
	}
	return st
}

// Register exposes the cache counters on a metrics registry under the
// dits_cache_* names. Safe on a nil cache (registers nothing).
func (c *Cache) Register(r *metrics.Registry) {
	if c == nil {
		return
	}
	r.RegisterCounter("dits_cache_hits_total", "Result-cache hits", &c.hits)
	r.RegisterCounter("dits_cache_misses_total", "Result-cache misses", &c.misses)
	r.RegisterCounter("dits_cache_evictions_total", "Result-cache LRU evictions", &c.evictions)
	r.RegisterGaugeFunc("dits_cache_entries", "Cached entries", func() float64 {
		return float64(c.Len())
	})
	r.RegisterGaugeFunc("dits_cache_capacity", "Cache capacity", func() float64 {
		return float64(c.Stats().Capacity)
	})
}
