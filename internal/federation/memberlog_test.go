package federation

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestMemberLogReplayAndFold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members.log")
	l, events, err := OpenMemberLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh log replayed %d events", len(events))
	}
	history := []MemberEvent{
		{Op: MemberJoin, Name: "alpha", Addr: "a:1"},
		{Op: MemberJoin, Name: "bravo", Addr: "b:1", Replicas: []string{"b:2", "b:3"}},
		{Op: MemberJoin, Name: "charlie", Addr: "c:1"},
		{Op: MemberLeave, Name: "charlie"},
		// Re-registration at a new address: the newest join wins the fold.
		{Op: MemberJoin, Name: "alpha", Addr: "a:9", Replicas: []string{"a:10"}},
	}
	for _, ev := range history {
		if err := l.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, replayed, err := OpenMemberLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(replayed, history) {
		t.Fatalf("replayed %+v,\nwant %+v", replayed, history)
	}
	live := FoldMembers(replayed)
	want := map[string]MemberEvent{
		"alpha": history[4],
		"bravo": history[1],
	}
	if !reflect.DeepEqual(live, want) {
		t.Fatalf("fold = %+v, want %+v", live, want)
	}
}

func TestMemberLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "members.log")
	l, _, err := OpenMemberLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "bravo", "charlie"} {
		if err := l.Append(MemberEvent{Op: MemberJoin, Name: name, Addr: name + ":1"}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Crash mid-append: the final frame is torn. Recovery keeps the intact
	// prefix and appends resume after it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, replayed, err := OpenMemberLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 || replayed[1].Name != "bravo" {
		t.Fatalf("torn-tail replay = %+v", replayed)
	}
	if err := l2.Append(MemberEvent{Op: MemberJoin, Name: "delta", Addr: "d:1"}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, again, err := OpenMemberLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, ev := range again {
		names = append(names, ev.Name)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "bravo", "delta"}) {
		t.Fatalf("post-tear history = %v", names)
	}
}
