package federation

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
	"dits/internal/transport"
)

const theta = 7

func worldGrid() geo.Grid {
	side := float64(int64(1) << theta)
	return geo.NewGrid(theta, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
}

// buildFederation creates m in-process sources over disjoint ID ranges,
// clustered in different regions so global filtering has something to
// prune. Returns the center, all pooled nodes, and the source servers.
func buildFederation(rng *rand.Rand, m, perSource int, opts Options) (*Center, []*dataset.Node, []*SourceServer) {
	g := worldGrid()
	center := NewCenter(g, opts)
	var pooled []*dataset.Node
	var servers []*SourceServer
	side := 1 << theta
	for s := 0; s < m; s++ {
		// Each source occupies a horizontal band of the space, with some
		// spill so sources overlap a little.
		bandLo := s * side / m
		bandHi := (s+1)*side/m + side/8
		var nodes []*dataset.Node
		for i := 0; i < perSource; i++ {
			id := s*10000 + i
			cx := rng.Intn(side)
			cy := bandLo + rng.Intn(max(1, bandHi-bandLo))
			n := 1 + rng.Intn(15)
			ids := make([]uint64, n)
			for j := range ids {
				x := clamp(cx+rng.Intn(9)-4, 0, side-1)
				y := clamp(cy+rng.Intn(9)-4, 0, side-1)
				ids[j] = geo.ZEncode(uint32(x), uint32(y))
			}
			nd := dataset.NewNodeFromCells(id, "", cellset.New(ids...))
			nodes = append(nodes, nd)
			pooled = append(pooled, nd)
		}
		idx := dits.Build(g, nodes, 8)
		srv := NewSourceServerWithGrid(srcName(s), idx)
		servers = append(servers, srv)
		// Every second source speaks the binary codec so the whole suite
		// runs mixed-codec federations end to end.
		var codec transport.Codec
		if s%2 == 0 {
			codec = BinaryCodec
		}
		center.Register(srv.Summary(), &transport.InProc{
			Name: srv.Name, Handler: srv.Handler(), Metrics: center.Metrics,
			Codec: codec,
		})
	}
	return center, pooled, servers
}

// srcName yields names whose lexicographic order matches the ID ranges, so
// the federated tie-break (source, id) matches the pooled tie-break (id).
func srcName(s int) string { return string(rune('a' + s)) }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func randomQuery(rng *rand.Rand) cellset.Set {
	side := 1 << theta
	cx, cy := rng.Intn(side), rng.Intn(side)
	n := 3 + rng.Intn(25)
	ids := make([]uint64, n)
	for j := range ids {
		x := clamp(cx+rng.Intn(17)-8, 0, side-1)
		y := clamp(cy+rng.Intn(17)-8, 0, side-1)
		ids[j] = geo.ZEncode(uint32(x), uint32(y))
	}
	return cellset.New(ids...)
}

func overlapsOf(rs []SourceResult) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Overlap
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFederatedOverlapMatchesPooled: distributing the search across sources
// must not change the answer a single pooled index would give.
func TestFederatedOverlapMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	center, pooled, _ := buildFederation(rng, 4, 120, DefaultOptions())
	oracle := &overlap.BruteForce{Nodes: pooled}
	for trial := 0; trial < 40; trial++ {
		q := randomQuery(rng)
		qNode := dataset.NewNodeFromCells(-1, "", q)
		for _, k := range []int{1, 5, 20} {
			want := oracle.TopK(qNode, k)
			got, err := center.OverlapSearch(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			wantOverlaps := make([]int, len(want))
			for i, r := range want {
				wantOverlaps[i] = r.Overlap
			}
			if !equalInts(overlapsOf(got), wantOverlaps) {
				t.Fatalf("trial %d k=%d: federated %v, pooled %v",
					trial, k, overlapsOf(got), wantOverlaps)
			}
		}
	}
}

// TestDistributionStrategiesPreserveResults: switching global filtering and
// query clipping on/off must never change results, only communication cost.
func TestDistributionStrategiesPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	variants := []Options{
		{GlobalFilter: true, ClipQuery: true},
		{GlobalFilter: true, ClipQuery: false},
		{GlobalFilter: false, ClipQuery: true},
		{GlobalFilter: false, ClipQuery: false},
	}
	var centers []*Center
	for _, opts := range variants {
		c, _, _ := buildFederation(rand.New(rand.NewSource(7)), 3, 80, opts)
		centers = append(centers, c)
	}
	for trial := 0; trial < 25; trial++ {
		q := randomQuery(rng)
		ref, err := centers[0].OverlapSearch(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		for vi, c := range centers[1:] {
			got, err := c.OverlapSearch(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(overlapsOf(got), overlapsOf(ref)) {
				t.Fatalf("trial %d variant %d: %v vs ref %v", trial, vi+1,
					overlapsOf(got), overlapsOf(ref))
			}
		}
		refCov, err := centers[0].CoverageSearch(context.Background(), q, 2, 5)
		if err != nil {
			t.Fatal(err)
		}
		for vi, c := range centers[1:] {
			got, err := c.CoverageSearch(context.Background(), q, 2, 5)
			if err != nil {
				t.Fatal(err)
			}
			if got.Coverage != refCov.Coverage || len(got.Picked) != len(refCov.Picked) {
				t.Fatalf("trial %d variant %d coverage: %d/%d picks vs ref %d/%d",
					trial, vi+1, got.Coverage, len(got.Picked), refCov.Coverage, len(refCov.Picked))
			}
		}
	}
}

// TestStrategiesReduceCommunication: with both strategies on, bytes sent
// must not exceed the broadcast-everything variant (Figs. 13 and 19).
func TestStrategiesReduceCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	smart, _, _ := buildFederation(rand.New(rand.NewSource(9)), 4, 80, DefaultOptions())
	naive, _, _ := buildFederation(rand.New(rand.NewSource(9)), 4, 80, Options{})
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(rng)
		smart.Metrics.Reset()
		naive.Metrics.Reset()
		if _, err := smart.OverlapSearch(context.Background(), q, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := naive.OverlapSearch(context.Background(), q, 10); err != nil {
			t.Fatal(err)
		}
		if smart.Metrics.BytesSent() > naive.Metrics.BytesSent() {
			t.Fatalf("trial %d: smart sent %d > naive %d bytes",
				trial, smart.Metrics.BytesSent(), naive.Metrics.BytesSent())
		}
		if smart.Metrics.Messages() > naive.Metrics.Messages() {
			t.Fatalf("trial %d: smart sent %d > naive %d messages",
				trial, smart.Metrics.Messages(), naive.Metrics.Messages())
		}
	}
}

// TestFederatedCoverageMatchesPooled: the federated greedy must produce the
// same coverage as the single-machine greedy over the pooled corpus.
func TestFederatedCoverageMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	center, pooled, _ := buildFederation(rng, 3, 100, DefaultOptions())
	sg := &coverage.SG{Nodes: pooled}
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(rng)
		qNode := dataset.NewNodeFromCells(-1, "", q)
		for _, delta := range []float64{0, 2, 6} {
			for _, k := range []int{1, 4} {
				want := sg.Search(qNode, delta, k)
				got, err := center.CoverageSearch(context.Background(), q, delta, k)
				if err != nil {
					t.Fatal(err)
				}
				if got.Coverage != want.Coverage {
					t.Fatalf("trial %d δ=%v k=%d: federated coverage %d (picks %v), pooled %d (picks %v)",
						trial, delta, k, got.Coverage, got.Picked, want.Coverage, want.IDs())
				}
			}
		}
	}
}

// TestTCPFederationMatchesInProc runs the same federation over real TCP
// connections and expects byte-identical results.
func TestTCPFederationMatchesInProc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inproc, _, servers := buildFederation(rand.New(rand.NewSource(11)), 3, 60, DefaultOptions())

	g := worldGrid()
	tcpCenter := NewCenter(g, DefaultOptions())
	for _, srv := range servers {
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		peer, err := transport.Dial(srv.Name, ts.Addr(), tcpCenter.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()
		tcpCenter.Register(srv.Summary(), peer)
	}

	for trial := 0; trial < 10; trial++ {
		q := randomQuery(rng)
		a, err := inproc.OverlapSearch(context.Background(), q, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tcpCenter.OverlapSearch(context.Background(), q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
		ca, err := inproc.CoverageSearch(context.Background(), q, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := tcpCenter.CoverageSearch(context.Background(), q, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if ca.Coverage != cb.Coverage || len(ca.Picked) != len(cb.Picked) {
			t.Fatalf("trial %d coverage: %+v vs %+v", trial, ca, cb)
		}
	}
}

// failingPeer always errors, for failure injection.
type failingPeer struct{}

func (failingPeer) Call(context.Context, string, any, any) error {
	return errors.New("link down")
}
func (failingPeer) Close() error { return nil }

func TestSourceFailurePropagates(t *testing.T) {
	g := worldGrid()
	center := NewCenter(g, Options{}) // broadcast so the bad peer is hit
	nd := dataset.NewNodeFromCells(1, "", cellset.New(geo.ZEncode(3, 3)))
	idx := dits.Build(g, []*dataset.Node{nd}, 4)
	srv := NewSourceServerWithGrid("ok", idx)
	center.Register(srv.Summary(), &transport.InProc{Name: "ok", Handler: srv.Handler(), Metrics: center.Metrics})
	center.Register(dits.SourceSummary{Name: "zz-bad", Rect: geo.Rect{MaxX: 1, MaxY: 1}}, failingPeer{})

	if _, err := center.OverlapSearch(context.Background(), cellset.New(geo.ZEncode(3, 3)), 3); err == nil {
		t.Error("overlap with failing source should error")
	}
	if _, err := center.CoverageSearch(context.Background(), cellset.New(geo.ZEncode(3, 3)), 1, 3); err == nil {
		t.Error("coverage with failing source should error")
	}
}

func TestEmptySourceNeverAnswersButDoesNotPoison(t *testing.T) {
	// A source with no datasets uploads an empty summary; it must neither
	// become a candidate nor break the global index for healthy sources.
	g := worldGrid()
	center := NewCenter(g, DefaultOptions())
	empty := NewSourceServerWithGrid("empty", dits.Build(g, nil, 4))
	center.Register(empty.Summary(), &transport.InProc{Name: "empty", Handler: empty.Handler(), Metrics: center.Metrics})

	nd := dataset.NewNodeFromCells(1, "only", cellset.New(geo.ZEncode(7, 7)))
	full := NewSourceServerWithGrid("full", dits.Build(g, []*dataset.Node{nd}, 4))
	center.Register(full.Summary(), &transport.InProc{Name: "full", Handler: full.Handler(), Metrics: center.Metrics})

	rs, err := center.OverlapSearch(context.Background(), cellset.New(geo.ZEncode(7, 7)), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Source != "full" || rs[0].ID != 1 {
		t.Fatalf("results = %v, want the one dataset from 'full'", rs)
	}
	cov, err := center.CoverageSearch(context.Background(), cellset.New(geo.ZEncode(8, 7)), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Picked) != 1 || cov.Picked[0].Source != "full" {
		t.Fatalf("coverage picked %v, want the one dataset from 'full'", cov.Picked)
	}
}

func TestEmptyFederationAndQueries(t *testing.T) {
	center := NewCenter(worldGrid(), DefaultOptions())
	if rs, err := center.OverlapSearch(context.Background(), cellset.New(1), 3); err != nil || rs != nil {
		t.Errorf("empty federation: %v %v", rs, err)
	}
	res, err := center.CoverageSearch(context.Background(), nil, 1, 3)
	if err != nil || len(res.Picked) != 0 {
		t.Errorf("empty query coverage: %+v %v", res, err)
	}
	rng := rand.New(rand.NewSource(6))
	c2, _, _ := buildFederation(rng, 2, 10, DefaultOptions())
	if rs, err := c2.OverlapSearch(context.Background(), nil, 3); err != nil || rs != nil {
		t.Errorf("nil query: %v %v", rs, err)
	}
	if rs, err := c2.OverlapSearch(context.Background(), cellset.New(1), 0); err != nil || rs != nil {
		t.Errorf("k=0: %v %v", rs, err)
	}
	if c2.NumSources() != 2 {
		t.Errorf("NumSources = %d", c2.NumSources())
	}
	c2.Unregister(srcName(0))
	if c2.NumSources() != 1 {
		t.Errorf("NumSources after unregister = %d", c2.NumSources())
	}
}
