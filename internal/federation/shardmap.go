package federation

import (
	"cmp"
	"slices"
	"sort"
	"strconv"
)

// ShardMap assigns sources to centers by consistent hashing: each center
// contributes shardVnodes points on a 64-bit ring, and a source belongs
// to the center owning the first ring point at or after the source's own
// hash. Two properties matter to the cluster plane:
//
//   - Determinism across processes: the hash is fixed (shardHash) over
//     the source NAME (a source's stable identity — hashing its extent
//     would reshuffle the whole map on every mutation), so every gateway and
//     every test computes the identical assignment with no coordination.
//
//   - Minimal movement: removing a center deletes only its own ring
//     points, so exactly the sources it owned move (to their next
//     surviving point) and every other assignment is untouched; adding a
//     center steals only the sources whose hash now lands on one of its
//     points — about 1/N of the total. Failover falls out for free: the
//     gateway rebuilds the ring over the healthy centers and only the
//     dead center's shard re-routes.
//
// A ShardMap is immutable after construction and safe for concurrent use.
type ShardMap struct {
	centers []string // sorted, de-duplicated center names
	hashes  []uint64 // ring point hashes, ascending
	owner   []int    // owner[i] indexes centers for ring point hashes[i]
}

// shardVnodes is the number of ring points per center. 64 keeps the
// ring small (a 3-center ring is 192 points) while bounding shard-size
// imbalance to a few percent.
const shardVnodes = 64

// shardHash is 64-bit FNV-1a followed by a murmur3-style finalizer,
// written out so the shard map's assignments are pinned by this file
// alone — no library behavior in the cross-process determinism contract.
// The finalizer matters: raw FNV-1a keeps structured names ("center-b#0"
// … "center-b#63") in tight arcs of the ring, which collapses the whole
// source population onto one center; the avalanche rounds spread each
// vnode uniformly.
func shardHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewShardMap builds the ring over the given centers (order-insensitive;
// duplicates and empty names collapse away — "" is the "no assignment"
// sentinel, not a center). An empty center list yields a map that
// assigns nothing.
func NewShardMap(centers []string) *ShardMap {
	names := slices.Clone(centers)
	slices.Sort(names)
	names = slices.Compact(names)
	names = slices.DeleteFunc(names, func(s string) bool { return s == "" })
	m := &ShardMap{
		centers: names,
		hashes:  make([]uint64, 0, len(names)*shardVnodes),
		owner:   make([]int, 0, len(names)*shardVnodes),
	}
	type point struct {
		h   uint64
		idx int
	}
	pts := make([]point, 0, len(names)*shardVnodes)
	for i, name := range names {
		for v := 0; v < shardVnodes; v++ {
			pts = append(pts, point{h: shardHash(name + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	// Sort by hash; a (vanishingly unlikely) hash collision between two
	// centers' points is broken by name order so the ring stays one
	// deterministic total order.
	slices.SortFunc(pts, func(a, b point) int {
		if a.h != b.h {
			return cmp.Compare(a.h, b.h)
		}
		return cmp.Compare(names[a.idx], names[b.idx])
	})
	for _, p := range pts {
		m.hashes = append(m.hashes, p.h)
		m.owner = append(m.owner, p.idx)
	}
	return m
}

// Centers returns the ring's center names, sorted.
func (m *ShardMap) Centers() []string { return m.centers }

// NumCenters returns the number of centers on the ring.
func (m *ShardMap) NumCenters() int { return len(m.centers) }

// succ returns the ring index owning hash h.
func (m *ShardMap) succ(h uint64) int {
	i := sort.Search(len(m.hashes), func(i int) bool { return m.hashes[i] >= h })
	if i == len(m.hashes) {
		return 0 // wrap past the top of the ring
	}
	return i
}

// Assign returns the center owning the named source, or "" on an empty
// ring.
func (m *ShardMap) Assign(source string) string {
	if len(m.hashes) == 0 {
		return ""
	}
	return m.centers[m.owner[m.succ(shardHash(source))]]
}

// AssignUpTo returns up to n distinct centers for the source in ring
// (preference) order: the owner first, then the next distinct centers
// clockwise — the retry order a mutation walks when the owner is down.
func (m *ShardMap) AssignUpTo(source string, n int) []string {
	if len(m.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(m.centers) {
		n = len(m.centers)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, m.succ(shardHash(source)); len(out) < n && i < len(m.hashes); i++ {
		idx := m.owner[(start+i)%len(m.hashes)]
		if !seen[idx] {
			seen[idx] = true
			out = append(out, m.centers[idx])
		}
	}
	return out
}

// Shards partitions sources by owning center: center name → name-sorted
// sources. Centers owning nothing are absent from the map.
func (m *ShardMap) Shards(sources []string) map[string][]string {
	out := make(map[string][]string, len(m.centers))
	for _, s := range sources {
		c := m.Assign(s)
		if c == "" {
			continue
		}
		out[c] = append(out[c], s)
	}
	for _, shard := range out {
		slices.Sort(shard)
	}
	return out
}
