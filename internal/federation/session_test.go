package federation

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

// registerAll wires the given servers into a fresh center over InProc
// peers recording into the center's Metrics.
func registerAll(c *Center, servers []*SourceServer) {
	for _, srv := range servers {
		c.Register(srv.Summary(), &transport.InProc{
			Name: srv.Name, Handler: srv.Handler(), Metrics: c.Metrics,
		})
	}
}

// TestSessionStatelessParity is the protocol-parity gate: the session
// protocol (delta rounds + two-phase fetch) must produce byte-identical
// Picked and Coverage to the stateless protocol on the same federation,
// across query shapes, k, and δ.
func TestSessionStatelessParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	_, _, servers := buildFederation(rand.New(rand.NewSource(22)), 4, 120, DefaultOptions())

	stateless := NewCenter(worldGrid(), Options{GlobalFilter: true, ClipQuery: true})
	session := NewCenter(worldGrid(), DefaultOptions())
	registerAll(stateless, servers)
	registerAll(session, servers)

	for trial := 0; trial < 30; trial++ {
		q := randomQuery(rng)
		for _, delta := range []float64{0, 2, 6} {
			for _, k := range []int{1, 3, 7} {
				want, err := stateless.CoverageSearch(context.Background(), q, delta, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := session.CoverageSearch(context.Background(), q, delta, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d δ=%v k=%d: session %+v, stateless %+v",
						trial, delta, k, got, want)
				}
			}
		}
	}
	// Sessions must be torn down once queries complete.
	for _, srv := range servers {
		if n := srv.NumSessions(); n != 0 {
			t.Errorf("source %s still holds %d sessions", srv.Name, n)
		}
	}
}

// TestSessionCutsCoverageBytes asserts the point of the refactor: the
// session protocol ships fewer bytes per CJSP query than the stateless
// one, and losers never ship cell sets back (exactly one coverage.fetch
// per greedy pick).
func TestSessionCutsCoverageBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	_, _, servers := buildFederation(rand.New(rand.NewSource(24)), 4, 120, DefaultOptions())

	stateless := NewCenter(worldGrid(), Options{GlobalFilter: true, ClipQuery: true})
	session := NewCenter(worldGrid(), DefaultOptions())
	registerAll(stateless, servers)
	registerAll(session, servers)

	picks := 0
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(rng)
		a, err := stateless.CoverageSearch(context.Background(), q, 4, 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := session.CoverageSearch(context.Background(), q, 4, 6); err != nil {
			t.Fatal(err)
		}
		picks += len(a.Picked)
	}
	sb, tb := session.Metrics.Bytes(), stateless.Metrics.Bytes()
	if sb >= tb {
		t.Errorf("session protocol shipped %d bytes >= stateless %d", sb, tb)
	}
	pm := session.Metrics.PerMethod()
	if got := pm[MethodFetchCells].Calls; got != int64(picks) {
		t.Errorf("coverage.fetch calls = %d, want one per pick (%d)", got, picks)
	}
	if pm[MethodCoverage].Calls != 0 {
		t.Errorf("session center used the stateless method %d times", pm[MethodCoverage].Calls)
	}
	// Round responses carry (ID, Gain) only — on average they must be
	// smaller than the stateless responses that ship each candidate's
	// full cell set.
	rounds := pm[MethodCoverageRound]
	stRounds := stateless.Metrics.PerMethod()[MethodCoverage]
	if rounds.Calls > 0 && stRounds.Calls > 0 &&
		rounds.BytesReceived/rounds.Calls >= stRounds.BytesReceived/stRounds.Calls {
		t.Errorf("round responses average %d bytes >= stateless %d — losers are shipping cells?",
			rounds.BytesReceived/rounds.Calls, stRounds.BytesReceived/stRounds.Calls)
	}
}

// droppingPeer simulates a source that loses its session state between
// center calls: before forwarding a round (or fetch, per mode), it closes
// the session at the server, forcing the center onto the stateless
// fallback (SessionMiss) or the Committed=false re-open path.
type droppingPeer struct {
	inner transport.Peer
	srv   *SourceServer
	mode  string // method whose sessions get dropped first
}

func (p *droppingPeer) Call(ctx context.Context, method string, req, resp any) error {
	if method == p.mode {
		var sess uint64
		switch r := req.(type) {
		case *CoverageRoundRequest:
			sess = r.Session
		case *FetchCellsRequest:
			sess = r.Session
		}
		p.srv.handleSessionClose(SessionCloseRequest{Session: sess})
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *droppingPeer) Close() error { return p.inner.Close() }

// TestSessionMissFallback drops the session before every round and before
// every fetch (two separate federations) and requires results identical to
// the stateless protocol: losing session state may cost bytes, never
// correctness.
func TestSessionMissFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	_, _, servers := buildFederation(rand.New(rand.NewSource(26)), 3, 90, DefaultOptions())
	stateless := NewCenter(worldGrid(), Options{GlobalFilter: true, ClipQuery: true})
	registerAll(stateless, servers)

	for _, mode := range []string{MethodCoverageRound, MethodFetchCells} {
		center := NewCenter(worldGrid(), DefaultOptions())
		for _, srv := range servers {
			center.Register(srv.Summary(), &droppingPeer{
				inner: &transport.InProc{Name: srv.Name, Handler: srv.Handler(), Metrics: center.Metrics},
				srv:   srv,
				mode:  mode,
			})
		}
		for trial := 0; trial < 12; trial++ {
			q := randomQuery(rng)
			want, err := stateless.CoverageSearch(context.Background(), q, 3, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := center.CoverageSearch(context.Background(), q, 3, 5)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mode %s trial %d: dropped-session result %+v, want %+v",
					mode, trial, got, want)
			}
		}
	}
}

// TestSourceSessionEviction drives the session table directly: the cap
// holds, idle sessions are reclaimed by TTL, and close removes state.
func TestSourceSessionEviction(t *testing.T) {
	g := worldGrid()
	nd := dataset.NewNodeFromCells(1, "d", cellset.New(geo.ZEncode(3, 3)))
	srv := NewSourceServerWithGrid("s", dits.Build(g, []*dataset.Node{nd}, 4))
	srv.MaxSessions = 4
	srv.SessionTTL = time.Minute
	now := time.Unix(1000, 0)
	srv.now = func() time.Time { return now }

	base := cellset.New(geo.ZEncode(3, 3), geo.ZEncode(4, 4))
	for id := uint64(1); id <= 10; id++ {
		resp := srv.handleCoverageRound(context.Background(), CoverageRoundRequest{Session: id, Base: base, Delta: 2})
		if wantStateless := id > 4; resp.Stateless != wantStateless {
			t.Errorf("session %d: Stateless = %v, want %v", id, resp.Stateless, wantStateless)
		}
		if !resp.Found {
			t.Errorf("session %d: overflow round lost the answer", id)
		}
	}
	if n := srv.NumSessions(); n != 4 {
		t.Errorf("session table holds %d, want the 4 stored before the cap", n)
	}

	// All sessions idle past the TTL are reclaimed on the next insert.
	now = now.Add(2 * time.Minute)
	srv.handleCoverageRound(context.Background(), CoverageRoundRequest{Session: 99, Base: base, Delta: 2})
	if n := srv.NumSessions(); n != 1 {
		t.Errorf("TTL sweep left %d sessions, want 1", n)
	}

	// A round against an evicted session reports the miss instead of
	// silently answering from stale state.
	resp := srv.handleCoverageRound(context.Background(), CoverageRoundRequest{Session: 1, Added: base, Delta: 2})
	if !resp.SessionMiss {
		t.Error("round against evicted session should report SessionMiss")
	}

	if got := srv.handleSessionClose(SessionCloseRequest{Session: 99}); !got.Closed {
		t.Error("close of live session should report Closed")
	}
	if n := srv.NumSessions(); n != 0 {
		t.Errorf("close left %d sessions", n)
	}
}

// flakyPeer works until failAfter calls, then errors forever — a source
// that dies mid-session.
type flakyPeer struct {
	inner     transport.Peer
	calls     int
	failAfter int
}

func (p *flakyPeer) Call(ctx context.Context, method string, req, resp any) error {
	p.calls++
	if p.calls > p.failAfter {
		return &transport.RemoteError{Source: "flaky", Msg: "link down"}
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *flakyPeer) Close() error { return p.inner.Close() }

// TestDegradedSkipFailed: under the tolerant policy a dead source is
// skipped, its failure is visible in Metrics, and the query answers from
// the survivors; under fail-fast (the default) the same federation errors.
func TestDegradedSkipFailed(t *testing.T) {
	g := worldGrid()
	nd := dataset.NewNodeFromCells(1, "only", cellset.New(geo.ZEncode(7, 7)))
	idx := dits.Build(g, []*dataset.Node{nd}, 4)

	build := func(policy FailurePolicy, sessions bool) *Center {
		c := NewCenter(g, Options{Sessions: sessions, OnSourceError: policy})
		srv := NewSourceServerWithGrid("ok", idx)
		c.Register(srv.Summary(), &transport.InProc{Name: "ok", Handler: srv.Handler(), Metrics: c.Metrics})
		c.Register(dits.SourceSummary{Name: "zz-bad", Rect: geo.Rect{MaxX: 1, MaxY: 1}}, failingPeer{})
		return c
	}
	q := cellset.New(geo.ZEncode(7, 7), geo.ZEncode(8, 8))

	for _, sessions := range []bool{true, false} {
		c := build(SkipFailed, sessions)
		rs, err := c.OverlapSearch(context.Background(), q, 3)
		if err != nil {
			t.Fatalf("sessions=%v: tolerant overlap errored: %v", sessions, err)
		}
		if len(rs) != 1 || rs[0].Source != "ok" {
			t.Fatalf("sessions=%v: overlap results = %v", sessions, rs)
		}
		cov, err := c.CoverageSearch(context.Background(), q, 2, 3)
		if err != nil {
			t.Fatalf("sessions=%v: tolerant coverage errored: %v", sessions, err)
		}
		if len(cov.Picked) != 1 || cov.Picked[0].Source != "ok" {
			t.Fatalf("sessions=%v: coverage picked %v", sessions, cov.Picked)
		}
		if c.Metrics.Failures()["zz-bad"] == 0 {
			t.Errorf("sessions=%v: failure not recorded: %v", sessions, c.Metrics.Failures())
		}

		strict := build(FailFast, sessions)
		if _, err := strict.OverlapSearch(context.Background(), q, 3); err == nil {
			t.Errorf("sessions=%v: fail-fast overlap should error", sessions)
		}
		if _, err := strict.CoverageSearch(context.Background(), q, 2, 3); err == nil {
			t.Errorf("sessions=%v: fail-fast coverage should error", sessions)
		}
	}
}

// TestDegradedMidSession kills a source after it has already answered
// rounds: the tolerant center finishes on the survivors and records the
// failure.
func TestDegradedMidSession(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	_, _, servers := buildFederation(rng, 3, 80, DefaultOptions())
	center := NewCenter(worldGrid(), Options{
		GlobalFilter: true, ClipQuery: true, Sessions: true, OnSourceError: SkipFailed,
	})
	for i, srv := range servers {
		peer := transport.Peer(&transport.InProc{Name: srv.Name, Handler: srv.Handler(), Metrics: center.Metrics})
		if i == 0 {
			peer = &flakyPeer{inner: peer, failAfter: 2}
		}
		center.Register(srv.Summary(), peer)
	}
	sawFailure := false
	for trial := 0; trial < 8; trial++ {
		q := randomQuery(rng)
		if _, err := center.CoverageSearch(context.Background(), q, 3, 5); err != nil {
			t.Fatalf("trial %d: tolerant search errored: %v", trial, err)
		}
		if center.Metrics.Failures()[servers[0].Name] > 0 {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Error("flaky source never recorded a failure")
	}
}

// recoveringPeer fails its first failFirst calls, then works — a source
// with one transient outage.
type recoveringPeer struct {
	inner     transport.Peer
	calls     int
	failFirst int
}

func (p *recoveringPeer) Call(ctx context.Context, method string, req, resp any) error {
	p.calls++
	if p.calls <= p.failFirst {
		return &transport.RemoteError{Source: "recovering", Msg: "transient outage"}
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *recoveringPeer) Close() error { return p.inner.Close() }

// TestDegradedResultsAreNotCached: a tolerant answer computed while a
// source was down must not poison the result cache — once the source
// recovers, the same query must see its data again.
func TestDegradedResultsAreNotCached(t *testing.T) {
	g := worldGrid()
	mk := func(name string, id int, x, y uint32) *SourceServer {
		nd := dataset.NewNodeFromCells(id, name+"-d", cellset.New(geo.ZEncode(x, y)))
		return NewSourceServerWithGrid(name, dits.Build(g, []*dataset.Node{nd}, 4))
	}
	ok, flaky := mk("aa-ok", 1, 7, 7), mk("bb-flaky", 2, 9, 9)
	center := NewCenter(g, Options{Sessions: true, OnSourceError: SkipFailed})
	center.SetCache(cache.New(64))
	center.Register(ok.Summary(), &transport.InProc{Name: ok.Name, Handler: ok.Handler(), Metrics: center.Metrics})
	center.Register(flaky.Summary(), &recoveringPeer{
		inner:     &transport.InProc{Name: flaky.Name, Handler: flaky.Handler(), Metrics: center.Metrics},
		failFirst: 1,
	})

	q := cellset.New(geo.ZEncode(7, 7), geo.ZEncode(9, 9))
	first, err := center.OverlapSearch(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 || first[0].Source != "aa-ok" {
		t.Fatalf("degraded query = %v, want aa-ok only", first)
	}
	second, err := center.OverlapSearch(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != 2 {
		t.Fatalf("post-recovery query = %v — the degraded answer was cached", second)
	}
	// The healthy answer is cached from here on.
	third, err := center.OverlapSearch(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(third) != 2 {
		t.Fatalf("cached healthy query = %v", third)
	}
}

// churningPeer unregisters another source from the center the first time
// it is called — membership churn landing in the middle of a query's
// fan-out.
type churningPeer struct {
	inner  transport.Peer
	center *Center
	victim string
	done   bool
}

func (p *churningPeer) Call(ctx context.Context, method string, req, resp any) error {
	if !p.done {
		p.done = true
		p.center.Unregister(p.victim)
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *churningPeer) Close() error { return p.inner.Close() }

// TestEpochPinningMidQuery: a query that already started must keep the
// member set it pinned, even when a source unregisters while the query is
// in flight; the next query sees the new epoch.
func TestEpochPinningMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	center, pooled, servers := buildFederation(rng, 3, 80, Options{Sessions: true})
	victim := servers[len(servers)-1].Name

	// Re-register the first source behind a churning peer that drops the
	// victim mid-query.
	first := servers[0]
	gen := center.Generation()
	center.Register(first.Summary(), &churningPeer{
		inner:  &transport.InProc{Name: first.Name, Handler: first.Handler(), Metrics: center.Metrics},
		center: center,
		victim: victim,
	})
	if center.Generation() != gen+1 {
		t.Fatalf("re-register did not advance the epoch: %d -> %d", gen, center.Generation())
	}

	// A query containing one whole dataset from every source, so every
	// source — the victim included — must contribute a result.
	perSource := len(pooled) / len(servers)
	var q cellset.Set
	for s := range servers {
		q = q.Union(pooled[s*perSource].Cells)
	}
	during, err := center.OverlapSearch(context.Background(), q, 40)
	if err != nil {
		t.Fatal(err)
	}
	after, err := center.OverlapSearch(context.Background(), q, 40)
	if err != nil {
		t.Fatal(err)
	}
	fromVictim := func(rs []SourceResult) bool {
		for _, r := range rs {
			if r.Source == victim {
				return true
			}
		}
		return false
	}
	// The victim answered the in-flight query (pinned epoch includes it)…
	if !fromVictim(during) {
		t.Fatal("pinned-epoch query returned nothing from the victim source")
	}
	// …and is gone from queries started after the churn.
	if fromVictim(after) {
		t.Error("post-churn query still returned results from the unregistered source")
	}
	if center.NumSources() != len(servers)-1 {
		t.Errorf("NumSources = %d, want %d", center.NumSources(), len(servers)-1)
	}
}

// TestCoverageEpochPinningMidQuery is the CJSP variant: churn lands
// between greedy rounds and the pinned epoch must keep the result
// identical to a churn-free federation of the original members.
func TestCoverageEpochPinningMidQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	_, _, servers := buildFederation(rand.New(rand.NewSource(30)), 3, 80, DefaultOptions())

	baseline := NewCenter(worldGrid(), DefaultOptions())
	registerAll(baseline, servers)

	center := NewCenter(worldGrid(), DefaultOptions())
	victim := servers[len(servers)-1].Name
	for i, srv := range servers {
		peer := transport.Peer(&transport.InProc{Name: srv.Name, Handler: srv.Handler(), Metrics: center.Metrics})
		if i == 0 {
			peer = &churningPeer{inner: peer, center: center, victim: victim}
		}
		center.Register(srv.Summary(), peer)
	}

	q := randomQuery(rng)
	want, err := baseline.CoverageSearch(context.Background(), q, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := center.CoverageSearch(context.Background(), q, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("churn-during-query changed the result: %+v, want %+v", got, want)
	}
}
