package federation

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/obs"
	"dits/internal/transport"
)

// Cluster is the gateway-side federation plane over N sharded centers:
// sources are assigned to centers by consistent hash (ShardMap), queries
// scatter to every healthy center and gather with the same deterministic
// total orders a single center uses — so the merged answer is
// byte-identical to what one center over all the sources would return —
// and mutations route to the center owning the source.
//
// The plane is leaderless. The gateway health-checks centers (in-band on
// every transport failure, plus the optional Probe loop); when a center
// dies, the ring is rebuilt over the survivors and only the dead center's
// shard re-homes (consistent hashing's minimal movement), each moved
// source re-registered at its new owner before queries resume. Reads
// never fail over past a live center that answered with an error — a
// RemoteError means the center is healthy and the query genuinely failed.
//
// Concurrency: queries and mutations scatter under a read lock; failover
// (mark down, rebuild ring, re-home the shard) runs under the write lock,
// so no query can observe a half-re-homed topology — the merged answer is
// always computed against a ring whose shards partition the full roster.
type Cluster struct {
	Grid geo.Grid
	// Metrics observes the gateway→center exchanges (shared by the center
	// peers' pools).
	Metrics *transport.Metrics

	mu      sync.RWMutex
	centers []*clusterCenter
	sources map[string]ClusterSource
	owner   map[string]*clusterCenter
	ring    *ShardMap

	gen       atomic.Uint64 // bumps when a completed failover publishes a new topology
	failovers atomic.Int64  // centers marked down
	rehomed   atomic.Int64  // sources re-registered by failovers
	mutations atomic.Int64  // acknowledged mutations routed through the cluster

	// versions is the cluster's acked data-version vector: the highest
	// version any mutation response reported per source. After a source
	// failover, a read serving below this would be a stale read.
	vmu      sync.Mutex
	versions map[string]uint64
}

// ClusterSource is one roster entry: the source's stable name, its
// primary's dial address, and its replicas' addresses in failover order.
type ClusterSource struct {
	Name     string
	Addr     string
	Replicas []string
}

// clusterCenter is one center endpoint and its health bit. healthy flips
// false exactly once (no automatic readmission; see docs/OPERATIONS.md for
// replacing a dead center).
type clusterCenter struct {
	name    string
	peer    transport.Peer
	healthy atomic.Bool
}

// ErrNoCenters reports a cluster whose every center is marked down.
var ErrNoCenters = errors.New("federation: no healthy centers")

// rehomeTimeout bounds each re-registration call during a failover, so one
// hung survivor cannot wedge the whole plane behind the write lock.
const rehomeTimeout = 10 * time.Second

// NewCluster builds the plane over named center peers (wrap TCP in
// transport.Pool). The roster starts empty; AddSource registers sources.
func NewCluster(grid geo.Grid, centers map[string]transport.Peer) *Cluster {
	cl := &Cluster{
		Grid:     grid,
		Metrics:  &transport.Metrics{},
		sources:  make(map[string]ClusterSource),
		owner:    make(map[string]*clusterCenter),
		versions: make(map[string]uint64),
	}
	names := slices.Sorted(maps.Keys(centers))
	for _, name := range names {
		c := &clusterCenter{name: name, peer: centers[name]}
		c.healthy.Store(true)
		cl.centers = append(cl.centers, c)
	}
	cl.ring = NewShardMap(names)
	return cl
}

// AddSource adds a roster entry and registers it at its ring owner. On a
// transport failure the owner is failed over and registration retries at
// the new owner.
func (cl *Cluster) AddSource(ctx context.Context, src ClusterSource) error {
	if src.Name == "" || src.Addr == "" {
		return fmt.Errorf("federation: cluster source needs a name and address")
	}
	for range cl.centers {
		cl.mu.Lock()
		cl.sources[src.Name] = src
		owner := cl.centerNamed(cl.ring.Assign(src.Name))
		if owner == nil {
			cl.mu.Unlock()
			return ErrNoCenters
		}
		err := registerAt(ctx, owner, src)
		if err == nil {
			cl.owner[src.Name] = owner
		}
		cl.mu.Unlock()
		if err == nil {
			return nil
		}
		if !isTransportFailure(ctx, err) {
			return err
		}
		cl.failover(owner)
	}
	return ErrNoCenters
}

// registerAt performs one cluster.register exchange.
func registerAt(ctx context.Context, c *clusterCenter, src ClusterSource) error {
	req := ClusterRegisterRequest{Name: src.Name, Addr: src.Addr, Replicas: src.Replicas}
	var resp ClusterRegisterResponse
	if err := c.peer.Call(ctx, MethodClusterRegister, &req, &resp); err != nil {
		return fmt.Errorf("federation: register %s at center %s: %w", src.Name, c.name, err)
	}
	return nil
}

// RemoveSource unregisters a source from its owner and drops it from the
// roster. Best-effort at the center: a dead owner forgets the source with
// its whole shard anyway.
func (cl *Cluster) RemoveSource(ctx context.Context, name string) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	owner := cl.owner[name]
	delete(cl.sources, name)
	delete(cl.owner, name)
	if owner == nil || !owner.healthy.Load() {
		return nil
	}
	var resp ClusterUnregisterResponse
	return owner.peer.Call(ctx, MethodClusterUnregister, &ClusterUnregisterRequest{Name: name}, &resp)
}

// centerNamed resolves a healthy center by name; the caller holds a lock.
func (cl *Cluster) centerNamed(name string) *clusterCenter {
	for _, c := range cl.centers {
		if c.name == name && c.healthy.Load() {
			return c
		}
	}
	return nil
}

// healthySnapshot returns the healthy centers; the caller holds a lock.
func (cl *Cluster) healthySnapshot() []*clusterCenter {
	out := make([]*clusterCenter, 0, len(cl.centers))
	for _, c := range cl.centers {
		if c.healthy.Load() {
			out = append(out, c)
		}
	}
	return out
}

// isTransportFailure classifies a center call error: true for dial and
// connection failures (the center may be dead — fail over), false for
// RemoteErrors (the center is alive; the query genuinely failed) and for a
// context the CALLER cancelled.
func isTransportFailure(ctx context.Context, err error) bool {
	var re *transport.RemoteError
	return err != nil && !errors.As(err, &re) && ctx.Err() == nil
}

// failover marks a center down and re-homes its shard onto the survivors.
// Safe to call for an already-down center (no-op). Concurrent callers
// serialize behind the write lock, so by the time any of them returns the
// topology is fully re-homed and queries can retry.
func (cl *Cluster) failover(dead *clusterCenter) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if !dead.healthy.Load() {
		return // another caller already re-homed this center's shard
	}
	dead.healthy.Store(false)
	cl.failovers.Add(1)
	cl.rehomeLocked()
}

// rehomeLocked rebuilds the ring over the healthy centers and re-registers
// every source whose owner changed or died. A survivor that fails during
// re-homing is itself marked down and the rebuild restarts (bounded by the
// center count). The caller holds the write lock.
func (cl *Cluster) rehomeLocked() {
rebuild:
	for {
		healthy := cl.healthySnapshot()
		names := make([]string, len(healthy))
		for i, c := range healthy {
			names[i] = c.name
		}
		cl.ring = NewShardMap(names)
		if len(healthy) == 0 {
			cl.gen.Add(1)
			return
		}
		sources := slices.Sorted(maps.Keys(cl.sources))
		for _, name := range sources {
			cur := cl.owner[name]
			next := cl.centerNamed(cl.ring.Assign(name))
			if cur == next && cur != nil && cur.healthy.Load() {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), rehomeTimeout)
			err := registerAt(ctx, next, cl.sources[name])
			cancel()
			if err != nil && isTransportFailure(context.Background(), err) {
				next.healthy.Store(false)
				cl.failovers.Add(1)
				continue rebuild
			}
			// A RemoteError (the source itself is unreachable from the new
			// owner, say) leaves the source temporarily un-homed; the next
			// failover or probe reconciles it. Queries against the
			// remaining shards stay correct — they just miss this source,
			// exactly like SkipFailed degradation would.
			if err == nil {
				cl.owner[name] = next
				cl.rehomed.Add(1)
			} else {
				delete(cl.owner, name)
			}
		}
		cl.gen.Add(1)
		return
	}
}

// Probe health-checks every healthy center once (cluster.info) and fails
// over any that are transport-unreachable. It returns the number of
// centers marked down. The gateway runs this periodically so a center that
// dies between queries is detected before the next request pays for it.
func (cl *Cluster) Probe(ctx context.Context) int {
	cl.mu.RLock()
	targets := cl.healthySnapshot()
	cl.mu.RUnlock()
	downed := 0
	for _, c := range targets {
		var info ClusterInfoResponse
		err := c.peer.Call(ctx, MethodClusterInfo, nil, &info)
		if isTransportFailure(ctx, err) {
			cl.failover(c)
			downed++
		}
	}
	return downed
}

// scatter fans one exchange out to every healthy center and classifies the
// outcome: transport-failed centers are failed over and the exchange
// retried against the new topology (bounded by the center count); a
// RemoteError aborts with that error. fn runs once per center, concurrent.
func scatter[T any](ctx context.Context, cl *Cluster, fn func(ctx context.Context, c *clusterCenter) (T, error)) ([]T, error) {
	for range len(cl.centers) + 1 {
		cl.mu.RLock()
		targets := cl.healthySnapshot()
		if len(targets) == 0 {
			cl.mu.RUnlock()
			return nil, ErrNoCenters
		}
		outs := make([]T, len(targets))
		errs := make([]error, len(targets))
		var wg sync.WaitGroup
		for i, c := range targets {
			wg.Add(1)
			go func(i int, c *clusterCenter) {
				defer wg.Done()
				outs[i], errs[i] = fn(ctx, c)
			}(i, c)
		}
		wg.Wait()
		cl.mu.RUnlock()
		var dead []*clusterCenter
		for i, err := range errs {
			if err == nil {
				continue
			}
			if !isTransportFailure(ctx, err) {
				return nil, err
			}
			dead = append(dead, targets[i])
		}
		if len(dead) == 0 {
			return outs, nil
		}
		for _, c := range dead {
			cl.failoverTraced(ctx, c)
		}
	}
	return nil, ErrNoCenters
}

// failoverTraced runs failover under a failover.rehome span, so a traced
// query that trips over a dead center shows the failed RPC, the re-home,
// and the retried RPC as siblings in one span tree.
func (cl *Cluster) failoverTraced(ctx context.Context, dead *clusterCenter) {
	_, sp := obs.StartSpan(ctx, "failover.rehome")
	sp.SetSource(dead.name)
	cl.failover(dead)
	sp.End()
}

// OverlapSearch answers the federated OJSP across every shard: scatter to
// the healthy centers, merge the per-shard top-k under the canonical total
// order, truncate to k. Identical to a single center over all sources —
// the shards partition the sources, each shard's top-k retains every
// result that can reach the global top-k, and sortSourceResults is a total
// order, so the merge is deterministic down to the byte.
func (cl *Cluster) OverlapSearch(ctx context.Context, queryCells cellset.Set, k int) ([]SourceResult, error) {
	if k <= 0 || queryCells.IsEmpty() {
		return nil, nil
	}
	outs, err := scatter(ctx, cl, func(ctx context.Context, c *clusterCenter) ([]SourceResult, error) {
		req := ClusterOverlapRequest{Cells: queryCells, K: k}
		var resp ClusterOverlapResponse
		if err := c.peer.Call(ctx, MethodClusterOverlap, &req, &resp); err != nil {
			return nil, fmt.Errorf("federation: cluster overlap at %s: %w", c.name, err)
		}
		return resp.Results, nil
	})
	if err != nil {
		return nil, err
	}
	var all []SourceResult
	for _, rs := range outs {
		all = append(all, rs...)
	}
	sortSourceResults(all)
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// OverlapSearchBatch answers a batch across every shard: one cluster.batch
// exchange per center, per-query merge. Entry i aligns with queries[i] and
// equals what OverlapSearch(queries[i]) returns.
func (cl *Cluster) OverlapSearchBatch(ctx context.Context, queries []BatchQuery) ([][]SourceResult, error) {
	out := make([][]SourceResult, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	outs, err := scatter(ctx, cl, func(ctx context.Context, c *clusterCenter) ([][]SourceResult, error) {
		req := ClusterBatchRequest{Queries: queries}
		var resp ClusterBatchResponse
		if err := c.peer.Call(ctx, MethodClusterBatch, &req, &resp); err != nil {
			return nil, fmt.Errorf("federation: cluster batch at %s: %w", c.name, err)
		}
		if len(resp.Results) != len(queries) {
			return nil, fmt.Errorf("federation: cluster batch at %s: %d answers for %d queries",
				c.name, len(resp.Results), len(queries))
		}
		return resp.Results, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range queries {
		for _, shard := range outs {
			out[i] = append(out[i], shard[i]...)
		}
		sortSourceResults(out[i])
		if len(out[i]) > queries[i].K {
			out[i] = out[i][:queries[i].K]
		}
	}
	return out, nil
}

// CoverageSearch answers the federated CJSP across every shard: the
// gateway drives the greedy loop, each iteration scattering one
// cluster.covstep to every center and picking the global winner under
// betterOffer. The maximum over a partition equals the maximum over the
// union under a total order, so every pick — and therefore the whole
// greedy trajectory — matches a single center over all the sources.
func (cl *Cluster) CoverageSearch(ctx context.Context, queryCells cellset.Set, delta float64, k int) (CoverageResult, error) {
	res := CoverageResult{QueryCoverage: queryCells.Len(), Coverage: queryCells.Len()}
	if k <= 0 || queryCells.IsEmpty() {
		return res, nil
	}
	mergedC := cellset.FromSet(queryCells)
	merged := queryCells
	excluded := make(map[string][]int)
	for len(res.Picked) < k {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		req := ClusterCovStepRequest{Merged: merged, Delta: delta, Exclude: excludeWire(excluded)}
		outs, err := scatter(ctx, cl, func(ctx context.Context, c *clusterCenter) (ClusterCovStepResponse, error) {
			var resp ClusterCovStepResponse
			if err := c.peer.Call(ctx, MethodClusterCovStep, &req, &resp); err != nil {
				return resp, fmt.Errorf("federation: cluster coverage step at %s: %w", c.name, err)
			}
			return resp, nil
		})
		if err != nil {
			return res, err
		}
		var best *ClusterCovStepResponse
		for i := range outs {
			o := &outs[i]
			if !o.Found {
				continue
			}
			if best == nil || betterOffer(stepOffer(o), stepOffer(best)) {
				best = o
			}
		}
		if best == nil {
			break // no shard has a connected dataset left
		}
		excluded[best.Source] = append(excluded[best.Source], best.ID)
		mergedC = mergedC.Union(cellset.FromSet(best.Cells))
		merged = mergedC.Set()
		res.Picked = append(res.Picked, SourceResult{
			Source: best.Source, ID: best.ID, Name: best.Name, Overlap: best.Gain,
		})
		res.Coverage = mergedC.Len()
	}
	return res, nil
}

// stepOffer adapts a covstep response to the canonical offer order.
func stepOffer(o *ClusterCovStepResponse) offer {
	return offer{src: o.Source, cand: CoverageCandidate{Found: true, ID: o.ID, Gain: o.Gain}}
}

// excludeWire flattens the exclusion map deterministically (sorted by
// source) for the wire.
func excludeWire(excluded map[string][]int) []SourceExclude {
	out := make([]SourceExclude, 0, len(excluded))
	for _, src := range slices.Sorted(maps.Keys(excluded)) {
		out = append(out, SourceExclude{Source: src, IDs: excluded[src]})
	}
	return out
}

// mutate routes one mutation to the center owning the source, failing the
// owner over (and retrying at the re-homed owner) on a transport failure.
func (cl *Cluster) mutate(ctx context.Context, source string, method string, req any) (ClusterMutateResponse, error) {
	cl.mu.RLock()
	_, known := cl.sources[source]
	cl.mu.RUnlock()
	if !known {
		return ClusterMutateResponse{}, fmt.Errorf("%w: %q", ErrUnknownSource, source)
	}
	for range len(cl.centers) + 1 {
		cl.mu.RLock()
		owner := cl.owner[source]
		if owner != nil && !owner.healthy.Load() {
			owner = nil
		}
		var resp ClusterMutateResponse
		var err error
		if owner == nil {
			err = ErrNoCenters
		} else {
			err = owner.peer.Call(ctx, method, req, &resp)
		}
		cl.mu.RUnlock()
		if err == nil {
			if resp.Unknown {
				return resp, fmt.Errorf("%w: %q", ErrUnknownSource, source)
			}
			cl.mutations.Add(1)
			cl.noteVersion(source, resp.Version)
			return resp, nil
		}
		if errors.Is(err, ErrNoCenters) {
			// The owner died and re-homing could not place the source (or
			// is not reflected yet). Re-run a failover pass to reconcile,
			// then retry.
			if cl.reconcileOwner(source) {
				continue
			}
			return ClusterMutateResponse{}, ErrNoCenters
		}
		if !isTransportFailure(ctx, err) {
			return ClusterMutateResponse{}, err
		}
		cl.failoverTraced(ctx, owner)
	}
	return ClusterMutateResponse{}, ErrNoCenters
}

// reconcileOwner attempts to (re-)home one un-owned source; reports
// whether the source now has a healthy owner.
func (cl *Cluster) reconcileOwner(source string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if o := cl.owner[source]; o != nil && o.healthy.Load() {
		return true
	}
	next := cl.centerNamed(cl.ring.Assign(source))
	if next == nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), rehomeTimeout)
	defer cancel()
	if err := registerAt(ctx, next, cl.sources[source]); err != nil {
		return false
	}
	cl.owner[source] = next
	cl.rehomed.Add(1)
	return true
}

// noteVersion records an acknowledged mutation's data version.
func (cl *Cluster) noteVersion(source string, version uint64) {
	cl.vmu.Lock()
	if version > cl.versions[source] {
		cl.versions[source] = version
	}
	cl.vmu.Unlock()
}

// PutDataset durably upserts one dataset through the owning center.
func (cl *Cluster) PutDataset(ctx context.Context, source string, id int, name string, cells cellset.Set) (MutateResult, error) {
	if cells.IsEmpty() {
		return MutateResult{}, fmt.Errorf("federation: dataset %d has no cells", id)
	}
	resp, err := cl.mutate(ctx, source, MethodClusterPut, &ClusterPutRequest{Source: source, ID: id, Name: name, Cells: cells})
	if err != nil {
		return MutateResult{}, err
	}
	return MutateResult{Source: source, ID: id, Found: resp.Found, Version: resp.Version, NumDatasets: resp.NumDatasets}, nil
}

// DeleteDataset durably removes one dataset through the owning center.
func (cl *Cluster) DeleteDataset(ctx context.Context, source string, id int) (MutateResult, error) {
	resp, err := cl.mutate(ctx, source, MethodClusterDelete, &ClusterDeleteRequest{Source: source, ID: id})
	if err != nil {
		return MutateResult{}, err
	}
	return MutateResult{Source: source, ID: id, Found: resp.Found, Version: resp.Version, NumDatasets: resp.NumDatasets}, nil
}

// NumSources returns the roster size.
func (cl *Cluster) NumSources() int {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return len(cl.sources)
}

// Generation returns the topology generation: it bumps whenever a
// completed failover publishes a re-homed ring.
func (cl *Cluster) Generation() uint64 { return cl.gen.Load() }

// CacheInvalidations reports acknowledged mutations routed through the
// cluster — result caches live at the centers, which invalidate by data
// version exactly as in single-center mode.
func (cl *Cluster) CacheInvalidations() int64 { return cl.mutations.Load() }

// SourceVersions returns the cluster's acked data-version vector.
func (cl *Cluster) SourceVersions() map[string]uint64 {
	cl.vmu.Lock()
	defer cl.vmu.Unlock()
	out := make(map[string]uint64, len(cl.versions))
	maps.Copy(out, cl.versions)
	return out
}

// PeerWire reports the negotiated wire parameters of every center peer
// that knows them, keyed by center name.
func (cl *Cluster) PeerWire() map[string]transport.WireInfo {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	out := make(map[string]transport.WireInfo, len(cl.centers))
	for _, c := range cl.centers {
		if w, ok := c.peer.(transport.Wired); ok {
			out[c.name] = w.WireInfo()
		}
	}
	return out
}

// ClusterStats is the plane's observability snapshot.
type ClusterStats struct {
	Centers      int               `json:"centers"`
	Healthy      int               `json:"healthy"`
	Generation   uint64            `json:"generation"`
	Failovers    int64             `json:"failovers"`
	Rehomed      int64             `json:"rehomed"`
	SourceOwners map[string]string `json:"sourceOwners,omitempty"`
}

// Stats snapshots the cluster plane.
func (cl *Cluster) Stats() ClusterStats {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	st := ClusterStats{
		Centers:      len(cl.centers),
		Healthy:      len(cl.healthySnapshot()),
		Generation:   cl.gen.Load(),
		Failovers:    cl.failovers.Load(),
		Rehomed:      cl.rehomed.Load(),
		SourceOwners: make(map[string]string, len(cl.owner)),
	}
	for name, c := range cl.owner {
		st.SourceOwners[name] = c.name
	}
	return st
}

// Close releases every closable center peer.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	var first error
	for _, c := range cl.centers {
		if closer, ok := c.peer.(interface{ Close() error }); ok {
			if err := closer.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Shards returns the current assignment of roster sources to healthy
// centers — the audit surface the differential tests and OPERATIONS
// runbooks read.
func (cl *Cluster) Shards() map[string][]string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring.Shards(slices.Sorted(maps.Keys(cl.sources)))
}
