package federation

import (
	"context"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

func testServer(t *testing.T) *SourceServer {
	t.Helper()
	g := geo.NewGrid(6, geo.Rect{MinX: 0, MinY: 0, MaxX: 64, MaxY: 64})
	var nodes []*dataset.Node
	for i := 0; i < 12; i++ {
		nodes = append(nodes, dataset.NewNodeFromCells(i, "d",
			cellset.New(geo.ZEncode(uint32(i*4), 8), geo.ZEncode(uint32(i*4+1), 8))))
	}
	return NewSourceServerWithGrid("src", dits.Build(g, nodes, 4))
}

func TestHandlerStats(t *testing.T) {
	srv := testServer(t)
	var stats StatsResponse
	callHandler(t, srv.Handler(), MethodStats, nil, &stats)
	if stats.Name != "src" || stats.NumDatasets != 12 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.TreeNodes == 0 || stats.Height == 0 {
		t.Errorf("tree shape missing: %+v", stats)
	}
}

func TestHandlerSummary(t *testing.T) {
	srv := testServer(t)
	var summary dits.SourceSummary
	callHandler(t, srv.Handler(), MethodSummary, nil, &summary)
	if summary.Name != "src" || summary.Rect.IsEmpty() {
		t.Errorf("summary = %+v", summary)
	}
	if summary.Theta != 6 {
		t.Errorf("theta = %d, want 6", summary.Theta)
	}
}

func TestHandlerErrors(t *testing.T) {
	srv := testServer(t)
	h := srv.Handler()
	if _, err := h(context.Background(), transport.GobCodec, "no.such.method", nil); err == nil {
		t.Error("unknown method should error")
	}
	if _, err := h(context.Background(), transport.GobCodec, MethodOverlap, []byte("garbage")); err == nil {
		t.Error("garbage overlap body should error")
	}
	if _, err := h(context.Background(), transport.GobCodec, MethodCoverage, []byte("garbage")); err == nil {
		t.Error("garbage coverage body should error")
	}
	if _, err := h(context.Background(), BinaryCodec, MethodOverlap, []byte{'B', 99}); err == nil {
		t.Error("wrong binary message type should error")
	}
}

func TestHandlerOverlapEmptyQuery(t *testing.T) {
	srv := testServer(t)
	var resp OverlapResponse
	callHandler(t, srv.Handler(), MethodOverlap, &OverlapRequest{Cells: nil, K: 5}, &resp)
	if len(resp.Results) != 0 {
		t.Errorf("empty query returned %v", resp.Results)
	}
}

func TestHandlerCoverageExcludes(t *testing.T) {
	srv := testServer(t)
	q := cellset.New(geo.ZEncode(0, 8))
	// First call finds dataset 0 (closest); excluding it yields another.
	call := func(exclude []int) CoverageCandidate {
		var cand CoverageCandidate
		callHandler(t, srv.Handler(), MethodCoverage, &CoverageRequest{Merged: q, Delta: 4, Exclude: exclude}, &cand)
		return cand
	}
	first := call(nil)
	if !first.Found {
		t.Fatal("expected a first candidate")
	}
	second := call([]int{first.ID})
	if second.Found && second.ID == first.ID {
		t.Error("excluded dataset returned again")
	}
	// RegisterRemote round-trips the summary over a peer.
	center := NewCenter(geo.NewGrid(6, geo.Rect{MaxX: 64, MaxY: 64}), DefaultOptions())
	peer := &transport.InProc{Name: "src", Handler: srv.Handler(), Metrics: center.Metrics}
	summary, err := center.RegisterRemote(context.Background(), peer)
	if err != nil {
		t.Fatal(err)
	}
	if summary.Name != "src" || center.NumSources() != 1 {
		t.Errorf("RegisterRemote: %+v, sources %d", summary, center.NumSources())
	}
}
