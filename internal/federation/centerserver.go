package federation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"

	"dits/internal/transport"
)

// CenterServer exposes one Center to the cluster plane: it serves the
// cluster.* protocol (ditscenter), dials sources on the gateway's behalf,
// and persists every accepted Register/Unregister in a membership log so a
// restarted center re-adopts its shard without operator involvement.
//
// The server is safe for concurrent use: membership RPCs serialize under
// its mutex (and through it, log appends), while query RPCs go straight to
// the Center's lock-free epoch snapshots.
type CenterServer struct {
	name   string
	center *Center
	dial   func(addr string) (transport.Peer, error)

	mu      sync.Mutex
	log     *MemberLog // nil when the server runs without durability
	members map[string]MemberEvent
	peers   map[string]transport.Peer
	skipped []string // logged members that could not be re-dialed at boot
}

// CenterServerOptions configure a CenterServer.
type CenterServerOptions struct {
	// MemberLog is the membership log path; empty runs without durability
	// (a restarted center then waits for the gateway to re-register its
	// shard).
	MemberLog string
	// Fsync flushes every membership append to disk before acknowledging.
	Fsync bool
	// Dial opens a connection to a source address. Nil defaults to a TCP
	// pool of PoolSize connections; tests inject in-process peers.
	Dial func(addr string) (transport.Peer, error)
	// PoolSize sizes the default TCP pool per source endpoint (0 = 4).
	PoolSize int
}

// NewCenterServer wraps a center for cluster serving. With a membership
// log, the logged roster is replayed and re-registered immediately: a
// member whose source cannot be reached right now is skipped (and listed
// by Skipped) rather than failing the boot — the gateway's health plane
// re-registers it when it reconciles.
func NewCenterServer(name string, center *Center, opts CenterServerOptions) (*CenterServer, error) {
	dial := opts.Dial
	if dial == nil {
		size := opts.PoolSize
		if size <= 0 {
			size = 4
		}
		dial = func(addr string) (transport.Peer, error) {
			return transport.DialPool(addr, addr, size, center.Metrics), nil
		}
	}
	cs := &CenterServer{
		name:    name,
		center:  center,
		dial:    dial,
		members: make(map[string]MemberEvent),
		peers:   make(map[string]transport.Peer),
	}
	if opts.MemberLog != "" {
		log, events, err := OpenMemberLog(opts.MemberLog, opts.Fsync)
		if err != nil {
			return nil, err
		}
		cs.log = log
		live := FoldMembers(events)
		names := make([]string, 0, len(live))
		for name := range live {
			names = append(names, name)
		}
		slices.Sort(names)
		for _, name := range names {
			if err := cs.adopt(context.Background(), live[name]); err != nil {
				cs.skipped = append(cs.skipped, name)
			}
		}
	}
	return cs, nil
}

// Name returns the center's cluster name.
func (cs *CenterServer) Name() string { return cs.name }

// Center returns the wrapped center.
func (cs *CenterServer) Center() *Center { return cs.center }

// Skipped returns the names of logged members that could not be re-dialed
// at boot, sorted.
func (cs *CenterServer) Skipped() []string {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return slices.Clone(cs.skipped)
}

// connect dials a member's primary and replicas. Dial failures against
// replicas are tolerated (the primary still serves); a failed primary dial
// fails the connect.
func (cs *CenterServer) connect(ev MemberEvent) (transport.Peer, error) {
	primary, err := cs.dial(ev.Addr)
	if err != nil {
		return nil, fmt.Errorf("federation: dial source %s at %s: %w", ev.Name, ev.Addr, err)
	}
	peers := []transport.Peer{primary}
	for _, addr := range ev.Replicas {
		p, err := cs.dial(addr)
		if err != nil {
			continue
		}
		peers = append(peers, p)
	}
	if len(peers) == 1 && len(ev.Replicas) == 0 {
		return primary, nil
	}
	return NewReplicatedPeer(ev.Name, peers...), nil
}

// closePeer releases a replaced or removed member's connection.
func closePeer(p transport.Peer) {
	if c, ok := p.(io.Closer); ok {
		c.Close()
	}
}

// adopt connects and registers one member, replacing any previous
// registration under the same name, and records it in the in-memory
// roster. The caller appends to the membership log (adopt is also the
// boot-replay path, which must not re-append). Callers serialize via
// cs.mu except during construction.
func (cs *CenterServer) adopt(ctx context.Context, ev MemberEvent) error {
	peer, err := cs.connect(ev)
	if err != nil {
		return err
	}
	summary, err := cs.center.RegisterRemote(ctx, peer)
	if err != nil {
		closePeer(peer)
		return err
	}
	if summary.Name != ev.Name {
		cs.center.Unregister(summary.Name)
		closePeer(peer)
		return fmt.Errorf("federation: source at %s calls itself %q, registered as %q", ev.Addr, summary.Name, ev.Name)
	}
	if old, ok := cs.peers[ev.Name]; ok {
		closePeer(old)
	}
	cs.peers[ev.Name] = peer
	cs.members[ev.Name] = ev
	return nil
}

// handleRegister adopts a source and logs the join before acknowledging.
func (cs *CenterServer) handleRegister(ctx context.Context, req ClusterRegisterRequest) (ClusterRegisterResponse, error) {
	if req.Name == "" || req.Addr == "" {
		return ClusterRegisterResponse{}, fmt.Errorf("federation: cluster.register needs a source name and address")
	}
	ev := MemberEvent{Op: MemberJoin, Name: req.Name, Addr: req.Addr, Replicas: slices.Clone(req.Replicas)}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if err := cs.adopt(ctx, ev); err != nil {
		return ClusterRegisterResponse{}, err
	}
	if cs.log != nil {
		if err := cs.log.Append(ev); err != nil {
			return ClusterRegisterResponse{}, err
		}
	}
	return ClusterRegisterResponse{NumSources: cs.center.NumSources()}, nil
}

// handleUnregister removes a source and logs the leave.
func (cs *CenterServer) handleUnregister(req ClusterUnregisterRequest) (ClusterUnregisterResponse, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if peer, ok := cs.peers[req.Name]; ok {
		cs.center.Unregister(req.Name)
		closePeer(peer)
		delete(cs.peers, req.Name)
		delete(cs.members, req.Name)
		if cs.log != nil {
			if err := cs.log.Append(MemberEvent{Op: MemberLeave, Name: req.Name}); err != nil {
				return ClusterUnregisterResponse{}, err
			}
		}
	}
	return ClusterUnregisterResponse{NumSources: cs.center.NumSources()}, nil
}

// handleCovStep answers one greedy CJSP iteration over the shard.
func (cs *CenterServer) handleCovStep(ctx context.Context, req ClusterCovStepRequest) (ClusterCovStepResponse, error) {
	exclude := make(map[string][]int, len(req.Exclude))
	for _, e := range req.Exclude {
		exclude[e.Source] = e.IDs
	}
	src, cand, err := cs.center.CoverageStep(ctx, req.Merged, req.Delta, exclude)
	if err != nil {
		return ClusterCovStepResponse{}, err
	}
	if !cand.Found {
		return ClusterCovStepResponse{}, nil
	}
	return ClusterCovStepResponse{
		Found: true, Source: src, ID: cand.ID, Name: cand.Name, Gain: cand.Gain, Cells: cand.Cells,
	}, nil
}

// mutateResponse maps a center mutation outcome onto the cluster wire,
// folding ErrUnknownSource into the Unknown flag so the gateway can
// distinguish a roster disagreement from a transport failure.
func mutateResponse(res MutateResult, err error) (ClusterMutateResponse, error) {
	if err != nil {
		if errors.Is(err, ErrUnknownSource) {
			return ClusterMutateResponse{Unknown: true}, nil
		}
		return ClusterMutateResponse{}, err
	}
	return ClusterMutateResponse{Found: res.Found, Version: res.Version, NumDatasets: res.NumDatasets}, nil
}

// Handler returns the transport.Handler serving the cluster protocol.
func (cs *CenterServer) Handler() transport.Handler {
	return func(ctx context.Context, codec transport.Codec, method string, body []byte) (any, error) {
		switch method {
		case MethodClusterInfo:
			return &ClusterInfoResponse{
				Name:       cs.name,
				Generation: cs.center.Generation(),
				Sources:    cs.center.SourceNames(),
			}, nil
		case MethodClusterRegister:
			var req ClusterRegisterRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp, err := cs.handleRegister(ctx, req)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodClusterUnregister:
			var req ClusterUnregisterRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp, err := cs.handleUnregister(req)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodClusterOverlap:
			var req ClusterOverlapRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			rs, err := cs.center.OverlapSearch(ctx, req.Cells, req.K)
			if err != nil {
				return nil, err
			}
			return &ClusterOverlapResponse{Results: rs}, nil
		case MethodClusterBatch:
			var req ClusterBatchRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			outs, err := cs.center.OverlapSearchBatch(ctx, req.Queries)
			if err != nil {
				return nil, err
			}
			return &ClusterBatchResponse{Results: outs}, nil
		case MethodClusterCovStep:
			var req ClusterCovStepRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp, err := cs.handleCovStep(ctx, req)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodClusterPut:
			var req ClusterPutRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			res, err := cs.center.PutDataset(ctx, req.Source, req.ID, req.Name, req.Cells)
			resp, err := mutateResponse(res, err)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodClusterDelete:
			var req ClusterDeleteRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			res, err := cs.center.DeleteDataset(ctx, req.Source, req.ID)
			resp, err := mutateResponse(res, err)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		default:
			return nil, fmt.Errorf("federation: unknown method %q", method)
		}
	}
}

// Close releases the membership log and every source connection.
func (cs *CenterServer) Close() error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for name, p := range cs.peers {
		closePeer(p)
		delete(cs.peers, name)
	}
	if cs.log != nil {
		return cs.log.Close()
	}
	return nil
}
