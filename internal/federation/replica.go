package federation

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"dits/internal/ingest"
	"dits/internal/transport"
)

// ReplicatedPeer serves one source through its primary and read replicas:
// reads try the sticky current endpoint and fail over to the next on a
// TRANSPORT failure (dial/connection death), while mutations and WAL
// shipping always pin to the primary — a replica's store refuses local
// mutations, and failing a write over would fork the source's history.
//
// A RemoteError never triggers failover: the endpoint is alive and its
// handler answered; retrying elsewhere would turn a deterministic error
// into a different answer. Nor does a caller-cancelled context — the
// caller gave up, not the endpoint.
//
// The current-endpoint index is sticky: after a failover, subsequent reads
// go straight to the serving replica instead of re-paying a dial timeout
// against the dead primary on every call. Safe for concurrent use when the
// wrapped peers are (wrap TCP in transport.Pool).
type ReplicatedPeer struct {
	name  string
	peers []transport.Peer // primary first, then replicas in failover order
	cur   atomic.Int32
}

// NewReplicatedPeer wraps a primary and its replicas. At least one peer is
// required; with exactly one it degenerates to a pass-through.
func NewReplicatedPeer(name string, peers ...transport.Peer) *ReplicatedPeer {
	if len(peers) == 0 {
		panic("federation: NewReplicatedPeer needs at least the primary")
	}
	return &ReplicatedPeer{name: name, peers: peers}
}

// mutatesSource reports whether a method must pin to the primary.
func mutatesSource(method string) bool {
	return method == MethodDatasetPut || method == MethodDatasetDelete || method == MethodWALShip
}

// Call implements transport.Peer with read failover.
func (p *ReplicatedPeer) Call(ctx context.Context, method string, req, resp any) error {
	if mutatesSource(method) {
		return p.peers[0].Call(ctx, method, req, resp)
	}
	start := int(p.cur.Load())
	var lastErr error
	for i := 0; i < len(p.peers); i++ {
		idx := (start + i) % len(p.peers)
		err := p.peers[idx].Call(ctx, method, req, resp)
		if err == nil {
			if idx != start {
				p.cur.Store(int32(idx))
			}
			return nil
		}
		var re *transport.RemoteError
		if errors.As(err, &re) || ctx.Err() != nil {
			return err // alive-and-answered, or the caller gave up: no failover
		}
		lastErr = err
	}
	return fmt.Errorf("federation: source %s: primary and all replicas failed: %w", p.name, lastErr)
}

// Close closes every closable endpoint.
func (p *ReplicatedPeer) Close() error {
	var first error
	for _, peer := range p.peers {
		if c, ok := peer.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// DefaultReplicaPoll is how often a Replicator polls its primary when the
// interval is left zero.
const DefaultReplicaPoll = 250 * time.Millisecond

// Replicator keeps a replica store caught up with its primary by polling
// MethodWALShip: each pull asks for the WAL tail beyond the replica's own
// data version (the replication cursor) and applies it durably before the
// next pull. Catch-up is idempotent across restarts — a replica resumes
// from its persisted version and duplicate records are skipped by
// sequence number (see ingest.ApplyShipped).
type Replicator struct {
	Store    *ingest.Store  // the local replica store (Options.Replica)
	Primary  transport.Peer // the primary's connection (wrap TCP in a Pool)
	Interval time.Duration  // poll period; 0 means DefaultReplicaPoll
	// OnError observes transient pull failures (primary down, mid-transfer
	// disconnect); nil means they are silently retried next poll.
	OnError func(error)
}

// CatchUpOnce pulls until the replica reaches the primary's version at the
// time of the call (or an error). It returns the number of records applied.
func (r *Replicator) CatchUpOnce(ctx context.Context) (int, error) {
	applied := 0
	for {
		req := WALShipRequest{After: r.Store.Version()}
		var resp WALShipResponse
		if err := r.Primary.Call(ctx, MethodWALShip, &req, &resp); err != nil {
			return applied, err
		}
		if resp.TooOld {
			return applied, ingest.ErrSnapshotGap
		}
		if len(resp.Frames) == 0 {
			return applied, nil // caught up
		}
		n, err := r.Store.ApplyShipped(resp.Frames)
		applied += n
		if err != nil {
			return applied, err
		}
		if n == 0 {
			// A non-empty batch that applied nothing can only be a torn
			// transfer tail; re-pull rather than spin.
			return applied, nil
		}
	}
}

// Run polls until the context is cancelled. A snapshot gap at the primary
// is terminal (the replica must be reseeded; see docs/OPERATIONS.md);
// every other error is reported to OnError and retried next poll.
func (r *Replicator) Run(ctx context.Context) error {
	interval := r.Interval
	if interval <= 0 {
		interval = DefaultReplicaPoll
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := r.CatchUpOnce(ctx); err != nil {
			if errors.Is(err, ingest.ErrSnapshotGap) || errors.Is(err, ingest.ErrClosed) {
				return err
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if r.OnError != nil {
				r.OnError(err)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
