package federation

import (
	"fmt"
	"reflect"
	"testing"
)

// shardTestSources returns n deterministic source names.
func shardTestSources(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("source-%03d", i)
	}
	return out
}

func TestShardMapDeterministicGolden(t *testing.T) {
	// Cross-process determinism is a wire-level contract: every gateway
	// must compute the identical map with no coordination. The literal
	// expectations below pin the hash and ring construction — if this
	// test breaks, the change reshuffles every deployed cluster's shards
	// and must be treated like a wire-format bump.
	if got := shardHash("Transit"); got != 0x57014a2725fa87c2 {
		t.Fatalf("shardHash(Transit) = %#x", got)
	}
	m := NewShardMap([]string{"center-b", "center-a", "center-c", "center-b"})
	if got := m.Centers(); !reflect.DeepEqual(got, []string{"center-a", "center-b", "center-c"}) {
		t.Fatalf("Centers() = %v", got)
	}
	counts := map[string]int{}
	for _, s := range shardTestSources(256) {
		counts[m.Assign(s)]++
	}
	// Golden distribution for 256 sources over 3 centers at 64 vnodes.
	want := map[string]int{"center-a": 95, "center-b": 71, "center-c": 90}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("assignment distribution = %v, want %v", counts, want)
	}
	// A second independently built map agrees source by source.
	m2 := NewShardMap([]string{"center-c", "center-a", "center-b"})
	for _, s := range shardTestSources(256) {
		if m.Assign(s) != m2.Assign(s) {
			t.Fatalf("maps disagree on %s: %s vs %s", s, m.Assign(s), m2.Assign(s))
		}
	}
}

func TestShardMapMinimalMovement(t *testing.T) {
	sources := shardTestSources(400)
	centers := []string{"center-a", "center-b", "center-c", "center-d"}
	full := NewShardMap(centers)

	for _, removed := range centers {
		var kept []string
		for _, c := range centers {
			if c != removed {
				kept = append(kept, c)
			}
		}
		reduced := NewShardMap(kept)
		moved := 0
		for _, s := range sources {
			before, after := full.Assign(s), reduced.Assign(s)
			if before == removed {
				moved++
				continue
			}
			// Minimal movement, exactly: a source not owned by the removed
			// center keeps its assignment (the surviving ring points are
			// unchanged).
			if before != after {
				t.Fatalf("%s moved %s→%s though %s was removed", s, before, after, removed)
			}
		}
		// The removed center owned about 1/N of the sources — allow a
		// generous band around it (vnode placement is not perfectly even).
		if lo, hi := len(sources)/(len(centers)*2), len(sources)/2; moved < lo || moved > hi {
			t.Fatalf("removing %s moved %d of %d sources (want %d..%d)", removed, moved, len(sources), lo, hi)
		}
	}

	// Adding a center steals only for itself.
	grown := NewShardMap(append([]string{"center-e"}, centers...))
	moved := 0
	for _, s := range sources {
		before, after := full.Assign(s), grown.Assign(s)
		if before != after {
			if after != "center-e" {
				t.Fatalf("%s moved %s→%s though only center-e was added", s, before, after)
			}
			moved++
		}
	}
	if lo, hi := len(sources)/10, len(sources)/2; moved < lo || moved > hi {
		t.Fatalf("adding center-e moved %d of %d sources (want %d..%d)", moved, len(sources), lo, hi)
	}
}

func TestShardMapAssignUpTo(t *testing.T) {
	m := NewShardMap([]string{"center-a", "center-b", "center-c"})
	for _, s := range shardTestSources(64) {
		owner := m.Assign(s)
		order := m.AssignUpTo(s, 3)
		if len(order) != 3 || order[0] != owner {
			t.Fatalf("AssignUpTo(%s, 3) = %v, owner %s", s, order, owner)
		}
		seen := map[string]bool{}
		for _, c := range order {
			if seen[c] {
				t.Fatalf("AssignUpTo(%s) repeats %s", s, c)
			}
			seen[c] = true
		}
		if got := m.AssignUpTo(s, 2); !reflect.DeepEqual(got, order[:2]) {
			t.Fatalf("AssignUpTo(%s, 2) = %v, want prefix of %v", s, got, order)
		}
	}
	if got := m.AssignUpTo("x", 99); len(got) != 3 {
		t.Fatalf("AssignUpTo capped = %v", got)
	}
	empty := NewShardMap(nil)
	if empty.Assign("x") != "" || empty.AssignUpTo("x", 2) != nil {
		t.Fatal("empty ring must assign nothing")
	}
}

func TestShardMapShards(t *testing.T) {
	m := NewShardMap([]string{"center-a", "center-b"})
	sources := shardTestSources(40)
	shards := m.Shards(sources)
	total := 0
	for center, shard := range shards {
		total += len(shard)
		for i, s := range shard {
			if m.Assign(s) != center {
				t.Fatalf("shard of %s holds %s owned by %s", center, s, m.Assign(s))
			}
			if i > 0 && shard[i-1] >= s {
				t.Fatalf("shard of %s not sorted: %v", center, shard)
			}
		}
	}
	if total != len(sources) {
		t.Fatalf("shards cover %d of %d sources", total, len(sources))
	}
}

// FuzzShardMap feeds arbitrary center/source names through assignment and
// routing: determinism across independently built maps, owner-first
// failover order with no duplicates, and full shard coverage must hold
// for any input.
func FuzzShardMap(f *testing.F) {
	f.Add("center-a,center-b,center-c", "Transit")
	f.Add("", "x")
	f.Add("a", "")
	f.Add("a,a,b", "source-001")
	f.Add("\x00,\xff\xfe", "\x01\x02")
	f.Fuzz(func(t *testing.T, centerCSV, source string) {
		var centers []string
		start := 0
		for i := 0; i <= len(centerCSV); i++ {
			if i == len(centerCSV) || centerCSV[i] == ',' {
				centers = append(centers, centerCSV[start:i])
				start = i + 1
			}
		}
		m := NewShardMap(centers)
		m2 := NewShardMap(append([]string(nil), centers...))
		owner := m.Assign(source)
		if got := m2.Assign(source); got != owner {
			t.Fatalf("determinism: %q vs %q", owner, got)
		}
		if owner != "" {
			found := false
			for _, c := range m.Centers() {
				if c == owner {
					found = true
				}
			}
			if !found {
				t.Fatalf("assigned to unknown center %q", owner)
			}
		}
		order := m.AssignUpTo(source, m.NumCenters())
		if m.NumCenters() > 0 {
			if len(order) != m.NumCenters() || order[0] != owner {
				t.Fatalf("AssignUpTo = %v, owner %q", order, owner)
			}
			seen := map[string]bool{}
			for _, c := range order {
				if seen[c] {
					t.Fatalf("duplicate %q in %v", c, order)
				}
				seen[c] = true
			}
		}
		shards := m.Shards([]string{source, source + "x"})
		n := 0
		for _, shard := range shards {
			n += len(shard)
		}
		if m.NumCenters() > 0 && n != 2 {
			t.Fatalf("shards dropped sources: %v", shards)
		}
	})
}
