package federation

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

// Options tune the data center's query distribution strategies (§VI-A).
// Both default to on; benchmarks switch them off to model the baselines,
// which broadcast the full query to every source.
type Options struct {
	// GlobalFilter prunes non-candidate sources through DITS-G (first
	// strategy: fewer communications).
	GlobalFilter bool
	// ClipQuery ships only the query cells intersecting each candidate
	// source's root MBR (second strategy: fewer bytes per communication).
	ClipQuery bool
}

// DefaultOptions enables both distribution strategies.
func DefaultOptions() Options { return Options{GlobalFilter: true, ClipQuery: true} }

// member is one registered source: its summary and its connection.
type member struct {
	summary dits.SourceSummary
	peer    transport.Peer
}

// Center is the data center: it maintains DITS-G over the source summaries
// and coordinates multi-source OJSP and CJSP.
//
// A Center is safe for concurrent use: any number of goroutines — one per
// gateway request, say — may run OverlapSearch and CoverageSearch while
// others register or unregister sources. Query state is per-call; the
// membership map and the global index are guarded by mu. Peers themselves
// must tolerate the resulting concurrent Calls: wrap TCP connections in a
// transport.Pool (transport.InProc is already safe when its handler is).
type Center struct {
	Grid    geo.Grid // the federation's shared grid
	Options Options
	Metrics *transport.Metrics

	mu      sync.RWMutex
	members map[string]*member
	global  *dits.Global
	gf      int // leaf capacity for DITS-G

	cache *cache.Cache // optional whole-query result cache
	// cacheGen increments on every membership change and is folded into
	// every cache key. Clear() frees the old entries, but an in-flight
	// query can still Put a result computed under the old membership
	// after the Clear; the generation in the key guarantees such an
	// entry can never be returned to a query started after the change.
	cacheGen uint64
}

// NewCenter creates a data center over the shared grid.
func NewCenter(g geo.Grid, opts Options) *Center {
	return &Center{
		Grid:    g,
		Options: opts,
		Metrics: &transport.Metrics{},
		members: make(map[string]*member),
		gf:      dits.DefaultLeafCapacity,
	}
}

// SetCache installs a result cache memoizing whole-query answers keyed by
// the canonical query (cell set + parameters). Pass nil to disable. The
// cache is cleared whenever membership changes, since cached results could
// otherwise include departed sources or miss new ones.
func (c *Center) SetCache(rc *cache.Cache) {
	c.mu.Lock()
	c.cache = rc
	c.mu.Unlock()
}

// Cache returns the installed result cache (nil when disabled).
func (c *Center) Cache() *cache.Cache {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cache
}

// cacheState returns the cache together with the current membership
// generation, read atomically with respect to membership changes.
func (c *Center) cacheState() (*cache.Cache, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.cache, c.cacheGen
}

// Register adds a source: the source uploads its root summary and the
// center rebuilds DITS-G (§V-B).
func (c *Center) Register(summary dits.SourceSummary, peer transport.Peer) {
	c.mu.Lock()
	c.members[summary.Name] = &member{summary: summary, peer: peer}
	c.rebuildGlobal()
	c.cacheGen++
	c.cache.Clear()
	c.mu.Unlock()
}

// RegisterRemote fetches the source's summary over the peer connection
// (MethodSummary) and registers it — how a data center bootstraps against
// already-running source servers.
func (c *Center) RegisterRemote(peer transport.Peer) (dits.SourceSummary, error) {
	body, err := peer.Call(MethodSummary, nil)
	if err != nil {
		return dits.SourceSummary{}, fmt.Errorf("federation: fetch summary: %w", err)
	}
	var summary dits.SourceSummary
	if err := transport.Decode(body, &summary); err != nil {
		return dits.SourceSummary{}, err
	}
	c.Register(summary, peer)
	return summary, nil
}

// Unregister removes a source (its peer is not closed).
func (c *Center) Unregister(name string) {
	c.mu.Lock()
	delete(c.members, name)
	c.rebuildGlobal()
	c.cacheGen++
	c.cache.Clear()
	c.mu.Unlock()
}

// rebuildGlobal rebuilds DITS-G; the caller holds c.mu.
func (c *Center) rebuildGlobal() {
	summaries := make([]dits.SourceSummary, 0, len(c.members))
	for _, m := range c.members {
		summaries = append(summaries, m.summary)
	}
	// Deterministic global tree regardless of registration order.
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].Name < summaries[j].Name })
	c.global = dits.BuildGlobal(summaries, c.gf)
}

// NumSources returns the number of registered sources.
func (c *Center) NumSources() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.members)
}

// SourceResult is a federated OJSP result: a dataset within one source.
type SourceResult struct {
	Source  string
	ID      int
	Name    string
	Overlap int
}

// queryNode converts query cells into the raw-coordinate query summary used
// against DITS-G.
func (c *Center) queryNode(cells cellset.Set) (dits.QueryNode, bool) {
	minX, minY, maxX, maxY, ok := cells.Bounds()
	if !ok {
		return dits.QueryNode{}, false
	}
	g := c.Grid
	raw := geo.Rect{
		MinX: g.Origin.X + float64(minX)*g.CellW,
		MinY: g.Origin.Y + float64(minY)*g.CellH,
		MaxX: g.Origin.X + float64(maxX+1)*g.CellW,
		MaxY: g.Origin.Y + float64(maxY+1)*g.CellH,
	}
	return dits.QueryNode{Rect: raw, O: raw.Center(), R: raw.Radius()}, true
}

// candidates returns the sources the query must be sent to, in
// deterministic name order. It snapshots the membership under the read
// lock, so an in-flight query keeps a consistent member set even while
// sources register or unregister concurrently.
func (c *Center) candidates(qn dits.QueryNode, deltaRaw float64) []*member {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*member
	if c.Options.GlobalFilter {
		for _, s := range c.global.CandidateSources(qn, deltaRaw) {
			if m, ok := c.members[s.Name]; ok {
				out = append(out, m)
			}
		}
	} else {
		for _, m := range c.members {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].summary.Name < out[j].summary.Name })
	return out
}

// clipFor returns the query cells shipped to a source: the full set, or the
// portion within the source's root MBR expanded by expandCells grid cells.
func (c *Center) clipFor(m *member, cells cellset.Set, expandCells float64) cellset.Set {
	if !c.Options.ClipQuery {
		return cells
	}
	expand := expandCells * math.Max(c.Grid.CellW, c.Grid.CellH)
	return cells.FilterRect(c.Grid, m.summary.Rect.Expand(expand))
}

// deltaRaw converts a connectivity threshold in cell units to a safe raw
// distance for global-index pruning: cell-coordinate distance δ spans at
// most δ·max(ν, µ) raw units between cell centers, plus one cell diagonal
// of slack for the cells' own extent.
func (c *Center) deltaRaw(delta float64) float64 {
	return delta*math.Max(c.Grid.CellW, c.Grid.CellH) +
		math.Hypot(c.Grid.CellW, c.Grid.CellH)
}

// queryKey canonicalizes a query for the result cache. The cell set is
// already sorted and de-duplicated (the cellset.Set invariant), so equal
// queries serialize to equal keys regardless of how they were built. gen
// is the membership generation the query started under.
func queryKey(gen uint64, kind byte, a, b uint64, cells cellset.Set) string {
	buf := make([]byte, 0, 25+8*len(cells))
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, a)
	buf = binary.LittleEndian.AppendUint64(buf, b)
	for _, cell := range cells {
		buf = binary.LittleEndian.AppendUint64(buf, cell)
	}
	return string(buf)
}

// OverlapSearch answers the multi-source OJSP: the k datasets with the
// largest overlap with the query across all registered sources.
func (c *Center) OverlapSearch(queryCells cellset.Set, k int) ([]SourceResult, error) {
	if k <= 0 || queryCells.IsEmpty() || c.NumSources() == 0 {
		return nil, nil
	}
	rc, gen := c.cacheState()
	key := ""
	if rc != nil {
		key = queryKey(gen, 'O', uint64(k), 0, queryCells)
		if v, ok := rc.Get(key); ok {
			// Hand out a copy: callers may sort or truncate the slice.
			cached := v.([]SourceResult)
			return append([]SourceResult(nil), cached...), nil
		}
	}
	qn, ok := c.queryNode(queryCells)
	if !ok {
		return nil, nil
	}
	// Fan out to candidate sources in parallel: sources are independent
	// machines, so their local searches overlap in time. Each peer is
	// driven by exactly one goroutine.
	outs, err := fanOut(c.candidates(qn, 0), func(m *member) ([]SourceResult, error) {
		cells := c.clipFor(m, queryCells, 0)
		if cells.IsEmpty() {
			return nil, nil
		}
		body, err := transport.Encode(OverlapRequest{Cells: cells, K: k})
		if err != nil {
			return nil, err
		}
		respBody, err := m.peer.Call(MethodOverlap, body)
		if err != nil {
			return nil, fmt.Errorf("federation: overlap at %s: %w", m.summary.Name, err)
		}
		var resp OverlapResponse
		if err := transport.Decode(respBody, &resp); err != nil {
			return nil, err
		}
		rs := make([]SourceResult, len(resp.Results))
		for i, r := range resp.Results {
			rs[i] = SourceResult{Source: m.summary.Name, ID: r.ID, Name: r.Name, Overlap: r.Overlap}
		}
		return rs, nil
	})
	if err != nil {
		return nil, err
	}
	var all []SourceResult
	for _, rs := range outs {
		all = append(all, rs...)
	}
	// Aggregate: global top-k, deterministic tie-break.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Overlap != all[j].Overlap {
			return all[i].Overlap > all[j].Overlap
		}
		if all[i].Source != all[j].Source {
			return all[i].Source < all[j].Source
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	if rc != nil {
		// Cache a private copy so later caller mutations cannot corrupt it.
		rc.Put(key, append([]SourceResult(nil), all...))
	}
	return all, nil
}

// CoverageResult is the outcome of a federated CJSP search.
type CoverageResult struct {
	Picked        []SourceResult // in greedy pick order; Overlap field holds the gain
	Coverage      int            // |S_Q ∪ picked|
	QueryCoverage int            // |S_Q|
}

// CoverageSearch answers the multi-source CJSP greedily: each iteration
// asks every candidate source for its best connected dataset given the
// merged result so far, picks the global maximum marginal gain, merges it,
// and repeats up to k times (§VI-A + Algorithm 3 lifted to the federation).
func (c *Center) CoverageSearch(queryCells cellset.Set, delta float64, k int) (CoverageResult, error) {
	res := CoverageResult{QueryCoverage: queryCells.Len(), Coverage: queryCells.Len()}
	if k <= 0 || queryCells.IsEmpty() || c.NumSources() == 0 {
		return res, nil
	}
	rc, gen := c.cacheState()
	key := ""
	if rc != nil {
		key = queryKey(gen, 'C', uint64(k), math.Float64bits(delta), queryCells)
		if v, ok := rc.Get(key); ok {
			cached := v.(CoverageResult)
			cached.Picked = append([]SourceResult(nil), cached.Picked...)
			return cached, nil
		}
	}
	// The merged-query state lives on the container engine: each greedy
	// round unions the winning candidate word-parallel, and the flat form
	// shipped to sources is rematerialized from it.
	mergedC := cellset.FromSet(queryCells)
	merged := queryCells
	excluded := make(map[string][]int)
	draw := c.deltaRaw(delta)

	for len(res.Picked) < k {
		qn, ok := c.queryNode(merged)
		if !ok {
			break
		}
		offers, err := fanOut(c.candidates(qn, draw), func(m *member) (*offer, error) {
			cells := c.clipFor(m, merged, delta+1)
			if cells.IsEmpty() {
				return nil, nil
			}
			body, err := transport.Encode(CoverageRequest{
				Merged:  cells,
				Delta:   delta,
				Exclude: excluded[m.summary.Name],
			})
			if err != nil {
				return nil, err
			}
			respBody, err := m.peer.Call(MethodCoverage, body)
			if err != nil {
				return nil, fmt.Errorf("federation: coverage at %s: %w", m.summary.Name, err)
			}
			var cand CoverageCandidate
			if err := transport.Decode(respBody, &cand); err != nil {
				return nil, err
			}
			if !cand.Found {
				return nil, nil
			}
			return &offer{src: m.summary.Name, cand: cand}, nil
		})
		if err != nil {
			return res, err
		}
		var best *offer
		for _, o := range offers {
			if o == nil {
				continue
			}
			if best == nil || betterOffer(*o, *best) {
				best = o
			}
		}
		if best == nil {
			break // no source has a connected dataset left
		}
		name := best.src
		excluded[name] = append(excluded[name], best.cand.ID)
		mergedC = mergedC.Union(cellset.FromSet(best.cand.Cells))
		merged = mergedC.Set()
		res.Picked = append(res.Picked, SourceResult{
			Source: name, ID: best.cand.ID, Name: best.cand.Name, Overlap: best.cand.Gain,
		})
		res.Coverage = mergedC.Len()
	}
	if rc != nil {
		cached := res
		cached.Picked = append([]SourceResult(nil), res.Picked...)
		rc.Put(key, cached)
	}
	return res, nil
}

// offer is one source's candidate in a coverage iteration.
type offer struct {
	src  string
	cand CoverageCandidate
}

// betterOffer orders candidate offers by gain descending, then source name,
// then dataset ID, for deterministic aggregation.
func betterOffer(a, b offer) bool {
	if a.cand.Gain != b.cand.Gain {
		return a.cand.Gain > b.cand.Gain
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.cand.ID < b.cand.ID
}
