package federation

import (
	"cmp"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"maps"
	"math"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/obs"
	"dits/internal/transport"
)

// Options tune the data center's query distribution strategies (§VI-A)
// and its failure semantics. Benchmarks switch the strategies off to model
// the baselines, which broadcast the full query to every source.
type Options struct {
	// GlobalFilter prunes non-candidate sources through DITS-G (first
	// strategy: fewer communications).
	GlobalFilter bool
	// ClipQuery ships only the query cells intersecting each candidate
	// source's root MBR (second strategy: fewer bytes per communication).
	ClipQuery bool
	// Sessions runs CJSP over the session protocol: per-query sessions at
	// each source, delta-shipped rounds, and two-phase candidate offers
	// where only the round's winner ships its cells. Off, every round
	// ships the whole merged state to every candidate and every candidate
	// ships its cells back (the stateless protocol, kept as fallback and
	// baseline).
	Sessions bool
	// OnSourceError picks the failure policy for mid-query peer errors:
	// FailFast (zero value) aborts the query, SkipFailed answers from the
	// surviving sources and records the failure in Metrics.
	OnSourceError FailurePolicy
	// Workers bounds the center-side pool that prepares and merges the
	// queries of one OverlapSearchBatch (candidate filtering, per-source
	// clipping, cache probes). Zero means GOMAXPROCS. It does not affect
	// single-query searches, whose fan-out is one goroutine per source.
	Workers int
}

// DefaultOptions enables both distribution strategies and the session
// protocol, with fail-fast error semantics.
func DefaultOptions() Options {
	return Options{GlobalFilter: true, ClipQuery: true, Sessions: true}
}

// member is one registered source: its summary and its connection.
type member struct {
	summary dits.SourceSummary
	peer    transport.Peer
}

// epochSnap is one immutable membership epoch: the member set, the DITS-G
// built over it, and the generation number that versions both. A query
// loads the pointer once and works against that snapshot for its whole
// lifetime — rounds of one CJSP see one consistent federation even while
// sources register and unregister concurrently.
type epochSnap struct {
	gen     uint64
	members map[string]*member
	ordered []*member // name-sorted, for deterministic broadcast order
	global  *dits.Global
}

// rebuildEvery bounds how far the incrementally maintained DITS-G may
// drift from a fresh build: after this many single-source joins/leaves the
// next membership change rebuilds from scratch, restoring balance.
const rebuildEvery = 64

// Center is the data center: it maintains DITS-G over the source summaries
// and coordinates multi-source OJSP and CJSP.
//
// A Center is safe for concurrent use: any number of goroutines — one per
// gateway request, say — may run OverlapSearch and CoverageSearch while
// others register or unregister sources. Membership lives in an immutable
// epoch snapshot swapped atomically under mu; queries pin the snapshot
// once and never touch the lock again. Peers themselves must tolerate the
// resulting concurrent Calls: wrap TCP connections in a transport.Pool
// (transport.InProc is already safe when its handler is).
type Center struct {
	Grid    geo.Grid // the federation's shared grid
	Options Options
	Metrics *transport.Metrics

	epoch atomic.Pointer[epochSnap]

	// versions is the center's view of each source's data version,
	// updated from every mutation response. It is an immutable map behind
	// an atomic pointer: queries fold the versions of the sources they
	// may touch into their cache keys, so a mutation re-keys exactly the
	// affected entries (the stale ones age out of the LRU unreferenced).
	versions atomic.Pointer[map[string]uint64]
	// invalidations counts cache-invalidation events: one per applied
	// mutation and one per membership epoch change.
	invalidations atomic.Int64

	mu      sync.Mutex // serializes membership changes and guards cache/gf
	gf      int        // leaf capacity for DITS-G
	incrOps int        // membership ops since the last full rebuild
	cache   *cache.Cache
	// regGen records, per source, the epoch generation of its latest
	// Register/Unregister (guarded by mu). Mutation notes pinned to an
	// earlier generation come from a previous incarnation of the source
	// and are dropped; notes merely racing an unrelated epoch swap pass.
	regGen map[string]uint64
}

// ErrUnknownSource reports a mutation routed to a source name that is not
// registered in the current membership epoch.
var ErrUnknownSource = errors.New("federation: unknown source")

// sessionIDs issues center-process-unique session identifiers. The base is
// random so sessions from independent centers sharing a source collide
// with negligible probability.
var sessionIDs atomic.Uint64

func init() { sessionIDs.Store(rand.Uint64()) }

// nextSessionID returns a fresh non-zero session ID (zero means "no
// session" on the wire).
func nextSessionID() uint64 {
	for {
		if id := sessionIDs.Add(1); id != 0 {
			return id
		}
	}
}

// NewCenter creates a data center over the shared grid.
func NewCenter(g geo.Grid, opts Options) *Center {
	c := &Center{
		Grid:    g,
		Options: opts,
		Metrics: &transport.Metrics{},
		gf:      dits.DefaultLeafCapacity,
	}
	c.epoch.Store(&epochSnap{
		members: map[string]*member{},
		global:  dits.BuildGlobal(nil, c.gf),
	})
	c.versions.Store(&map[string]uint64{})
	c.regGen = map[string]uint64{}
	return c
}

// SetCache installs a result cache memoizing whole-query answers keyed by
// the canonical query (cell set + parameters). Pass nil to disable. The
// cache is cleared whenever membership changes, since cached results could
// otherwise include departed sources or miss new ones.
func (c *Center) SetCache(rc *cache.Cache) {
	c.mu.Lock()
	c.cache = rc
	c.mu.Unlock()
}

// Cache returns the installed result cache (nil when disabled). Query
// results are keyed by the pinned epoch's generation, so an entry computed
// under an old epoch can never be returned to a query started after a
// membership change even if it is Put after the change's Clear.
func (c *Center) Cache() *cache.Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache
}

// Generation returns the current membership epoch's generation number. It
// increments on every Register/Unregister.
func (c *Center) Generation() uint64 { return c.epoch.Load().gen }

// Register adds a source: the source uploads its root summary and the
// center swaps in a new membership epoch whose DITS-G is updated
// incrementally (copy-on-write) rather than rebuilt (§V-B).
func (c *Center) Register(summary dits.SourceSummary, peer transport.Peer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.epoch.Load()
	members := make(map[string]*member, len(old.members)+1)
	for k, v := range old.members {
		members[k] = v
	}
	_, existed := members[summary.Name]
	members[summary.Name] = &member{summary: summary, peer: peer}
	g := old.global
	if existed {
		g = g.WithoutSource(summary.Name)
	}
	g = g.WithSource(summary)
	// Registration is an authoritative reset of the source's state: drop
	// its version entry so a rebuilt source whose data version restarted
	// from zero is not shadowed by the previous incarnation's counter,
	// and stamp the new generation so in-flight mutation responses from
	// the previous incarnation are dropped rather than re-noted. The
	// epoch bump below invalidates every cached entry regardless.
	c.dropVersionLocked(summary.Name)
	c.swapEpochLocked(old, members, g)
	c.regGen[summary.Name] = c.epoch.Load().gen
}

// dropVersionLocked removes a source from the version vector; the caller
// holds c.mu.
func (c *Center) dropVersionLocked(name string) {
	old := *c.versions.Load()
	if _, ok := old[name]; !ok {
		return
	}
	nv := make(map[string]uint64, len(old))
	maps.Copy(nv, old)
	delete(nv, name)
	c.versions.Store(&nv)
}

// RegisterRemote fetches the source's summary over the peer connection
// (MethodSummary) and registers it — how a data center bootstraps against
// already-running source servers.
func (c *Center) RegisterRemote(ctx context.Context, peer transport.Peer) (dits.SourceSummary, error) {
	var summary dits.SourceSummary
	if err := peer.Call(ctx, MethodSummary, nil, &summary); err != nil {
		return dits.SourceSummary{}, fmt.Errorf("federation: fetch summary: %w", err)
	}
	c.Register(summary, peer)
	return summary, nil
}

// PeerWire reports the negotiated wire parameters of every registered
// source whose peer knows them (transport.Wired), keyed by source name —
// the observability surface a mixed-codec rolling upgrade is watched
// through (GET /stats).
func (c *Center) PeerWire() map[string]transport.WireInfo {
	ep := c.epoch.Load()
	out := make(map[string]transport.WireInfo, len(ep.ordered))
	for _, m := range ep.ordered {
		if w, ok := m.peer.(transport.Wired); ok {
			out[m.summary.Name] = w.WireInfo()
		}
	}
	return out
}

// Unregister removes a source (its peer is not closed). In-flight queries
// pinned to the old epoch keep their consistent member set; new queries
// see the source gone.
func (c *Center) Unregister(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.epoch.Load()
	if _, ok := old.members[name]; !ok {
		return
	}
	members := make(map[string]*member, len(old.members))
	for k, v := range old.members {
		if k != name {
			members[k] = v
		}
	}
	c.dropVersionLocked(name)
	c.swapEpochLocked(old, members, old.global.WithoutSource(name))
	c.regGen[name] = c.epoch.Load().gen
}

// swapEpochLocked publishes a new membership epoch; the caller holds c.mu.
// Every rebuildEvery incremental updates the global index is rebuilt from
// scratch so incremental drift cannot accumulate unboundedly.
func (c *Center) swapEpochLocked(old *epochSnap, members map[string]*member, g *dits.Global) {
	c.incrOps++
	if c.incrOps >= rebuildEvery {
		c.incrOps = 0
		summaries := make([]dits.SourceSummary, 0, len(members))
		for _, m := range members {
			summaries = append(summaries, m.summary)
		}
		slices.SortFunc(summaries, func(a, b dits.SourceSummary) int {
			return cmp.Compare(a.Name, b.Name)
		})
		g = dits.BuildGlobal(summaries, c.gf)
	}
	ordered := make([]*member, 0, len(members))
	for _, m := range members {
		ordered = append(ordered, m)
	}
	slices.SortFunc(ordered, func(a, b *member) int {
		return cmp.Compare(a.summary.Name, b.summary.Name)
	})
	c.epoch.Store(&epochSnap{
		gen:     old.gen + 1,
		members: members,
		ordered: ordered,
		global:  g,
	})
	c.invalidations.Add(1)
	c.cache.Clear()
}

// NumSources returns the number of registered sources.
func (c *Center) NumSources() int { return len(c.epoch.Load().members) }

// SourceResult is a federated OJSP result: a dataset within one source.
type SourceResult struct {
	Source  string
	ID      int
	Name    string
	Overlap int
}

// boundsQueryNode converts cell-coordinate bounds into the raw-coordinate
// query summary used against DITS-G.
func (c *Center) boundsQueryNode(minX, minY, maxX, maxY uint32) dits.QueryNode {
	g := c.Grid
	raw := geo.Rect{
		MinX: g.Origin.X + float64(minX)*g.CellW,
		MinY: g.Origin.Y + float64(minY)*g.CellH,
		MaxX: g.Origin.X + float64(maxX+1)*g.CellW,
		MaxY: g.Origin.Y + float64(maxY+1)*g.CellH,
	}
	return dits.QueryNode{Rect: raw, O: raw.Center(), R: raw.Radius()}
}

// queryNode converts query cells into the raw-coordinate query summary.
func (c *Center) queryNode(cells cellset.Set) (dits.QueryNode, bool) {
	minX, minY, maxX, maxY, ok := cells.Bounds()
	if !ok {
		return dits.QueryNode{}, false
	}
	return c.boundsQueryNode(minX, minY, maxX, maxY), true
}

// candidates returns the sources of the pinned epoch the query must be
// sent to, in deterministic name order.
func (c *Center) candidates(ep *epochSnap, qn dits.QueryNode, deltaRaw float64) []*member {
	if !c.Options.GlobalFilter {
		return ep.ordered
	}
	var out []*member
	for _, s := range ep.global.CandidateSources(qn, deltaRaw) {
		if m, ok := ep.members[s.Name]; ok {
			out = append(out, m)
		}
	}
	slices.SortFunc(out, func(a, b *member) int {
		return cmp.Compare(a.summary.Name, b.summary.Name)
	})
	return out
}

// clipFor returns the query cells shipped to a source: the full set, or the
// portion within the source's root MBR expanded by expandCells grid cells.
func (c *Center) clipFor(m *member, cells cellset.Set, expandCells float64) cellset.Set {
	if !c.Options.ClipQuery {
		return cells
	}
	expand := expandCells * math.Max(c.Grid.CellW, c.Grid.CellH)
	return cells.FilterRect(c.Grid, m.summary.Rect.Expand(expand))
}

// deltaRaw converts a connectivity threshold in cell units to a safe raw
// distance for global-index pruning: cell-coordinate distance δ spans at
// most δ·max(ν, µ) raw units between cell centers, plus one cell diagonal
// of slack for the cells' own extent.
func (c *Center) deltaRaw(delta float64) float64 {
	return delta*math.Max(c.Grid.CellW, c.Grid.CellH) +
		math.Hypot(c.Grid.CellW, c.Grid.CellH)
}

// queryKey canonicalizes a query for the result cache. The cell set is
// already sorted and de-duplicated (the cellset.Set invariant), so equal
// queries serialize to equal keys regardless of how they were built. gen
// is the membership generation the query started under, and members are
// the sources whose data could contribute to the answer (name-sorted):
// each one's (name, data version) pair is folded into the key, so any
// mutation at a contributing source re-keys the entry — targeted
// invalidation without scanning the cache — while mutations at sources
// the query can never touch leave its entries valid. A membership change
// bumps gen, which re-keys (and Clears) everything.
func (c *Center) queryKey(gen uint64, kind byte, a, b uint64, cells cellset.Set, members []*member) string {
	vers := *c.versions.Load()
	n := 25 + 8*len(cells)
	for _, m := range members {
		n += 10 + len(m.summary.Name)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint64(buf, gen)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, a)
	buf = binary.LittleEndian.AppendUint64(buf, b)
	for _, m := range members {
		name := m.summary.Name
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
		buf = binary.LittleEndian.AppendUint64(buf, vers[name])
	}
	for _, cell := range cells {
		buf = binary.LittleEndian.AppendUint64(buf, cell)
	}
	return string(buf)
}

// OverlapSearch answers the multi-source OJSP: the k datasets with the
// largest overlap with the query across all registered sources.
func (c *Center) OverlapSearch(ctx context.Context, queryCells cellset.Set, k int) ([]SourceResult, error) {
	if k <= 0 || queryCells.IsEmpty() {
		return nil, nil
	}
	ep := c.epoch.Load()
	if len(ep.members) == 0 {
		return nil, nil
	}
	qn, ok := c.queryNode(queryCells)
	if !ok {
		return nil, nil
	}
	// Candidates are computed before the cache probe: the key embeds each
	// candidate's data version, so a mutation at any source that could
	// contribute to this answer misses the stale entry.
	members := c.candidates(ep, qn, 0)
	rc := c.Cache()
	key := ""
	if rc != nil {
		key = c.queryKey(ep.gen, 'O', uint64(k), 0, queryCells, members)
		_, probe := obs.StartSpan(ctx, "cache.probe")
		v, ok := rc.Get(key)
		endProbe(probe, ok)
		if ok {
			// Hand out a copy: callers may sort or truncate the slice.
			cached := v.([]SourceResult)
			return append([]SourceResult(nil), cached...), nil
		}
	}
	// Fan out to candidate sources in parallel: sources are independent
	// machines, so their local searches overlap in time. Each peer is
	// driven by exactly one goroutine.
	outs, errs := fanOut(members, func(m *member) ([]SourceResult, error) {
		cells := c.clipFor(m, queryCells, 0)
		if cells.IsEmpty() {
			return nil, nil
		}
		req := OverlapRequest{Cells: cells, K: k}
		var resp OverlapResponse
		if err := m.peer.Call(ctx, MethodOverlap, &req, &resp); err != nil {
			return nil, fmt.Errorf("federation: overlap at %s: %w", m.summary.Name, err)
		}
		rs := make([]SourceResult, len(resp.Results))
		for i, r := range resp.Results {
			rs[i] = SourceResult{Source: m.summary.Name, ID: r.ID, Name: r.Name, Overlap: r.Overlap}
		}
		return rs, nil
	})
	if err := c.resolve(members, errs, nil); err != nil {
		return nil, err
	}
	degraded := false
	var all []SourceResult
	for i, rs := range outs {
		if errs[i] != nil {
			degraded = true
			continue
		}
		all = append(all, rs...)
	}
	// Aggregate: global top-k, deterministic tie-break.
	sortSourceResults(all)
	if len(all) > k {
		all = all[:k]
	}
	if rc != nil && !degraded {
		// Cache a private copy so later caller mutations cannot corrupt
		// it. Degraded answers (a skipped source under SkipFailed) are
		// never cached: the source may recover on the next query.
		rc.Put(key, append([]SourceResult(nil), all...))
	}
	return all, nil
}

// CoverageResult is the outcome of a federated CJSP search.
type CoverageResult struct {
	Picked        []SourceResult // in greedy pick order; Overlap field holds the gain
	Coverage      int            // |S_Q ∪ picked|
	QueryCoverage int            // |S_Q|
}

// CoverageSearch answers the multi-source CJSP greedily: each iteration
// asks every candidate source for its best connected dataset given the
// merged result so far, picks the global maximum marginal gain, merges it,
// and repeats up to k times (§VI-A + Algorithm 3 lifted to the federation).
// With Options.Sessions it runs the session protocol — delta-shipped
// rounds, two-phase winner fetch — which produces identical results to the
// stateless protocol at a fraction of the bytes.
func (c *Center) CoverageSearch(ctx context.Context, queryCells cellset.Set, delta float64, k int) (CoverageResult, error) {
	res := CoverageResult{QueryCoverage: queryCells.Len(), Coverage: queryCells.Len()}
	if k <= 0 || queryCells.IsEmpty() {
		return res, nil
	}
	ep := c.epoch.Load()
	if len(ep.members) == 0 {
		return res, nil
	}
	rc := c.Cache()
	key := ""
	if rc != nil {
		// A greedy coverage query may contact any source as its merged
		// region grows, so the key carries the full membership version
		// vector: any mutation anywhere re-keys coverage entries.
		key = c.queryKey(ep.gen, 'C', uint64(k), math.Float64bits(delta), queryCells, ep.ordered)
		_, probe := obs.StartSpan(ctx, "cache.probe")
		v, ok := rc.Get(key)
		endProbe(probe, ok)
		if ok {
			cached := v.(CoverageResult)
			cached.Picked = append([]SourceResult(nil), cached.Picked...)
			return cached, nil
		}
	}
	var degraded bool
	var err error
	if c.Options.Sessions {
		res, degraded, err = c.coverageSession(ctx, ep, queryCells, delta, k, res)
	} else {
		res, degraded, err = c.coverageStateless(ctx, ep, queryCells, delta, k, res)
	}
	if err != nil {
		return res, err
	}
	if rc != nil && !degraded {
		// Degraded answers (a skipped source under SkipFailed) are never
		// cached: the source may recover on the next query.
		cached := res
		cached.Picked = append([]SourceResult(nil), res.Picked...)
		rc.Put(key, cached)
	}
	return res, nil
}

// coverageStateless is the original per-round-broadcast protocol: every
// round ships the full clipped merged state to every candidate, and every
// candidate answers with its best pick's full cell set.
// It also reports whether the answer is degraded (a source was skipped
// under the tolerant policy).
func (c *Center) coverageStateless(ctx context.Context, ep *epochSnap, queryCells cellset.Set, delta float64, k int, res CoverageResult) (CoverageResult, bool, error) {
	// The merged-query state lives on the container engine: each greedy
	// round unions the winning candidate word-parallel, and the flat form
	// shipped to sources is rematerialized from it.
	mergedC := cellset.FromSet(queryCells)
	merged := queryCells
	excluded := make(map[string][]int)
	failed := make(map[string]bool)
	draw := c.deltaRaw(delta)

	for len(res.Picked) < k {
		if err := ctx.Err(); err != nil {
			return res, len(failed) > 0, err
		}
		qn, ok := c.queryNode(merged)
		if !ok {
			break
		}
		// One span per greedy round: the per-source coverage RPCs of the
		// round nest under it.
		rctx, rsp := obs.StartSpan(ctx, "cjsp.round")
		members := c.candidates(ep, qn, draw)
		members = slices.DeleteFunc(slices.Clone(members), func(m *member) bool {
			return failed[m.summary.Name]
		})
		offers, errs := fanOut(members, func(m *member) (*offer, error) {
			cells := c.clipFor(m, merged, delta+1)
			if cells.IsEmpty() {
				return nil, nil
			}
			req := CoverageRequest{
				Merged:  cells,
				Delta:   delta,
				Exclude: excluded[m.summary.Name],
			}
			var cand CoverageCandidate
			if err := m.peer.Call(rctx, MethodCoverage, &req, &cand); err != nil {
				return nil, fmt.Errorf("federation: coverage at %s: %w", m.summary.Name, err)
			}
			if !cand.Found {
				return nil, nil
			}
			return &offer{src: m.summary.Name, cand: cand}, nil
		})
		if err := c.resolve(members, errs, func(i int) {
			failed[members[i].summary.Name] = true
		}); err != nil {
			rsp.EndErr(err)
			return res, len(failed) > 0, err
		}
		var best *offer
		for i, o := range offers {
			if o == nil || errs[i] != nil {
				continue
			}
			if best == nil || betterOffer(*o, *best) {
				best = o
			}
		}
		rsp.End()
		if best == nil {
			break // no source has a connected dataset left
		}
		name := best.src
		excluded[name] = append(excluded[name], best.cand.ID)
		mergedC = mergedC.Union(cellset.FromSet(best.cand.Cells))
		merged = mergedC.Set()
		res.Picked = append(res.Picked, SourceResult{
			Source: name, ID: best.cand.ID, Name: best.cand.Name, Overlap: best.cand.Gain,
		})
		res.Coverage = mergedC.Len()
	}
	return res, len(failed) > 0, nil
}

// srcState is the center's per-source view of one coverage session.
type srcState struct {
	m       *member
	open    bool             // session established at the source
	pending *cellset.Compact // clipped winner cells not yet shipped
	last    *offer           // cached offer, valid while nothing shipped changed
	lastOK  bool             // last/nil is a valid answer for the current state
	failed  bool             // degraded: dropped for the rest of the query
}

// coverageSession runs CJSP over the session protocol. Invariants per
// round: a source with an open session holds exactly the clip of the
// center's merged state minus its pending delta; a source whose pending is
// empty and whose exclusion list did not change would answer exactly what
// it answered last round, so the center reuses the cached offer without a
// network call. It also reports whether the answer is degraded (a source
// was skipped under the tolerant policy).
func (c *Center) coverageSession(ctx context.Context, ep *epochSnap, queryCells cellset.Set, delta float64, k int, res CoverageResult) (CoverageResult, bool, error) {
	sessID := nextSessionID()
	draw := c.deltaRaw(delta)
	states := make(map[string]*srcState)
	mergedC := cellset.FromSet(queryCells)
	minX, minY, maxX, maxY, ok := queryCells.Bounds()
	if !ok {
		return res, false, nil
	}
	anyFailed := func() bool {
		for _, st := range states {
			if st.failed {
				return true
			}
		}
		return false
	}
	mergedFlat := queryCells // valid while mergedFlatOK
	mergedFlatOK := true
	excluded := make(map[string][]int)
	defer c.closeSessions(states, sessID)

rounds:
	for len(res.Picked) < k {
		if err := ctx.Err(); err != nil {
			return res, anyFailed(), err
		}
		// One span per greedy round; the round's delta-ship RPCs and the
		// winner's cell fetch nest under it.
		rctx, rsp := obs.StartSpan(ctx, "cjsp.round")
		qn := c.boundsQueryNode(minX, minY, maxX, maxY)
		cands := c.candidates(ep, qn, draw)

		// Phase one: collect offers — cached where nothing changed for
		// the source, over the wire (delta-shipped) where it did.
		offers := make([]*offer, 0, len(cands))
		var contact []*member
		reqs := make(map[string]CoverageRoundRequest)
		for _, m := range cands {
			name := m.summary.Name
			st := states[name]
			if st == nil {
				st = &srcState{m: m}
				states[name] = st
			}
			if st.failed {
				continue
			}
			if st.open && st.lastOK && st.pending.IsEmpty() {
				// Nothing shipped changed and the exclusion list is
				// untouched: the source would recompute the same offer.
				if st.last != nil {
					offers = append(offers, st.last)
				}
				continue
			}
			req := CoverageRoundRequest{Session: sessID, Delta: delta, Exclude: excluded[name]}
			if st.open {
				req.Added = st.pending.Set()
			} else {
				if !mergedFlatOK {
					mergedFlat = mergedC.Set()
					mergedFlatOK = true
				}
				req.Base = c.clipFor(m, mergedFlat, delta+1)
				if req.Base.IsEmpty() {
					continue // nothing of the merged state near this source yet
				}
			}
			contact = append(contact, m)
			reqs[name] = req
		}
		outs, errs := fanOut(contact, func(m *member) (CoverageRoundResponse, error) {
			resp, err := c.callRound(rctx, m, reqs[m.summary.Name])
			if err == nil && resp.SessionMiss {
				// Stateless fallback: the source evicted the session;
				// re-open it with the full clipped state. mergedC is
				// immutable, so materializing here is goroutine-safe.
				full := reqs[m.summary.Name]
				full.Added = nil
				full.Base = c.clipFor(m, mergedC.Set(), delta+1)
				if full.Base.IsEmpty() {
					return CoverageRoundResponse{}, nil
				}
				resp, err = c.callRound(rctx, m, full)
			}
			return resp, err
		})
		if err := c.resolve(contact, errs, func(i int) {
			st := states[contact[i].summary.Name]
			st.failed, st.open = true, false
		}); err != nil {
			rsp.EndErr(err)
			return res, anyFailed(), err
		}
		for i, m := range contact {
			if errs[i] != nil {
				continue
			}
			st := states[m.summary.Name]
			// A source whose table was full answered without storing the
			// session; keep shipping it full state until it has room.
			st.open, st.pending, st.lastOK = !outs[i].Stateless, nil, true
			st.last = nil
			if outs[i].Found {
				st.last = &offer{src: m.summary.Name, cand: CoverageCandidate{
					Found: true, ID: outs[i].ID, Name: outs[i].Name, Gain: outs[i].Gain,
				}}
				offers = append(offers, st.last)
			}
		}

		// Phase two: pick the global winner and fetch its cells — the
		// only cell set shipped back this round.
		var winner *offer
		var winnerCells cellset.Set
		for {
			var best *offer
			for _, o := range offers {
				if o == nil || states[o.src].failed {
					continue
				}
				if best == nil || betterOffer(*o, *best) {
					best = o
				}
			}
			if best == nil {
				rsp.End()
				break rounds // no source has a connected dataset left
			}
			st := states[best.src]
			fetch, err := c.fetchCells(rctx, st.m, sessID, best.cand.ID)
			if err == nil && !fetch.Found {
				err = fmt.Errorf("federation: source %s lost dataset %d mid-session", best.src, best.cand.ID)
			}
			if err != nil {
				if c.Options.OnSourceError == FailFast {
					rsp.EndErr(err)
					return res, anyFailed(), err
				}
				c.Metrics.RecordFailure(best.src)
				st.failed, st.open = true, false
				continue // re-pick among the surviving offers
			}
			if !fetch.Committed {
				// Session evicted between round and fetch: re-open with
				// the full state next round.
				st.open, st.lastOK = false, false
			}
			winner, winnerCells = best, fetch.Cells
			break
		}

		// Merge and compute next round's deltas.
		winnerC := cellset.FromSet(winnerCells)
		mergedC = mergedC.Union(winnerC)
		mergedFlatOK = false
		if wMinX, wMinY, wMaxX, wMaxY, ok := winnerCells.Bounds(); ok {
			minX, minY = min(minX, wMinX), min(minY, wMinY)
			maxX, maxY = max(maxX, wMaxX), max(maxY, wMaxY)
		}
		excluded[winner.src] = append(excluded[winner.src], winner.cand.ID)
		for name, st := range states {
			if !st.open {
				continue
			}
			if name == winner.src {
				// The winning source folded its own cells at fetch time;
				// only its exclusion list changed, which forces a
				// (delta-free) re-ask next round.
				st.lastOK = false
				continue
			}
			clipped := c.clipFor(st.m, winnerCells, delta+1)
			if clipped.IsEmpty() {
				continue // winner is far from this source; its state and offer stand
			}
			st.pending = st.pending.Union(cellset.FromSet(clipped))
		}
		res.Picked = append(res.Picked, SourceResult{
			Source: winner.src, ID: winner.cand.ID, Name: winner.cand.Name, Overlap: winner.cand.Gain,
		})
		res.Coverage = mergedC.Len()
		rsp.End()
	}
	return res, anyFailed(), nil
}

// callRound performs one coverage.round exchange.
func (c *Center) callRound(ctx context.Context, m *member, req CoverageRoundRequest) (CoverageRoundResponse, error) {
	var resp CoverageRoundResponse
	if err := m.peer.Call(ctx, MethodCoverageRound, &req, &resp); err != nil {
		return resp, fmt.Errorf("federation: coverage round at %s: %w", m.summary.Name, err)
	}
	return resp, nil
}

// fetchCells performs the second-phase coverage.fetch exchange.
func (c *Center) fetchCells(ctx context.Context, m *member, sess uint64, id int) (FetchCellsResponse, error) {
	var resp FetchCellsResponse
	req := FetchCellsRequest{Session: sess, ID: id}
	if err := m.peer.Call(ctx, MethodFetchCells, &req, &resp); err != nil {
		return resp, fmt.Errorf("federation: fetch cells at %s: %w", m.summary.Name, err)
	}
	return resp, nil
}

// closeSessions releases every open session at the end of a coverage
// query, best-effort: sources reclaim lost sessions on their own. It runs
// on a fresh context — the query's own deadline may already have expired,
// and cleanup should still go out.
func (c *Center) closeSessions(states map[string]*srcState, sessID uint64) {
	req := SessionCloseRequest{Session: sessID}
	var open []*member
	for _, st := range states {
		if st.open && !st.failed {
			open = append(open, st.m)
		}
	}
	fanOut(open, func(m *member) (struct{}, error) {
		m.peer.Call(context.Background(), MethodSessionClose, &req, nil)
		return struct{}{}, nil
	})
}

// SourceNames returns the registered source names, sorted — the shard this
// center owns when it runs under a cluster plane.
func (c *Center) SourceNames() []string {
	ep := c.epoch.Load()
	names := make([]string, len(ep.ordered))
	for i, m := range ep.ordered {
		names[i] = m.summary.Name
	}
	return names
}

// CoverageStep runs ONE greedy CJSP iteration over the center's current
// membership: every candidate source is asked for its best connected
// dataset given the merged state (the stateless protocol's per-round
// exchange), and the best offer under the canonical total order
// (betterOffer) is returned with its full cell set. Found is false when no
// source has a remaining connected dataset. The cluster gateway drives the
// cross-center greedy loop with this: each round it scatters a step to
// every center and merges the global winner, which — because the shards
// partition the sources and betterOffer is a total order — picks exactly
// the dataset a single center over the union would have picked.
func (c *Center) CoverageStep(ctx context.Context, merged cellset.Set, delta float64, exclude map[string][]int) (string, CoverageCandidate, error) {
	ep := c.epoch.Load()
	if len(ep.members) == 0 || merged.IsEmpty() {
		return "", CoverageCandidate{}, nil
	}
	qn, ok := c.queryNode(merged)
	if !ok {
		return "", CoverageCandidate{}, nil
	}
	members := c.candidates(ep, qn, c.deltaRaw(delta))
	offers, errs := fanOut(members, func(m *member) (*offer, error) {
		cells := c.clipFor(m, merged, delta+1)
		if cells.IsEmpty() {
			return nil, nil
		}
		req := CoverageRequest{Merged: cells, Delta: delta, Exclude: exclude[m.summary.Name]}
		var cand CoverageCandidate
		if err := m.peer.Call(ctx, MethodCoverage, &req, &cand); err != nil {
			return nil, fmt.Errorf("federation: coverage at %s: %w", m.summary.Name, err)
		}
		if !cand.Found {
			return nil, nil
		}
		return &offer{src: m.summary.Name, cand: cand}, nil
	})
	if err := c.resolve(members, errs, nil); err != nil {
		return "", CoverageCandidate{}, err
	}
	var best *offer
	for i, o := range offers {
		if o == nil || errs[i] != nil {
			continue
		}
		if best == nil || betterOffer(*o, *best) {
			best = o
		}
	}
	if best == nil {
		return "", CoverageCandidate{}, nil
	}
	return best.src, best.cand, nil
}

// MutateResult is the center-side outcome of a federated dataset mutation.
type MutateResult struct {
	Source      string
	ID          int
	Found       bool   // delete: the dataset existed; put: always true
	Version     uint64 // source data version after the mutation
	NumDatasets int    // datasets at the source after the mutation
}

// PutDataset durably upserts one dataset at the named source (method
// dataset.put) and invalidates the affected result-cache entries: the
// source's data version bumps (re-keying every cached answer it could
// have contributed to), and if the mutation changed the source's root
// summary the membership epoch advances so DITS-G candidate filtering
// sees the source's new extent.
func (c *Center) PutDataset(ctx context.Context, source string, id int, name string, cells cellset.Set) (MutateResult, error) {
	if cells.IsEmpty() {
		return MutateResult{}, fmt.Errorf("federation: dataset %d has no cells", id)
	}
	return c.mutate(ctx, source, id, MethodDatasetPut, &DatasetPutRequest{ID: id, Name: name, Cells: cells})
}

// DeleteDataset durably removes one dataset at the named source (method
// dataset.delete). Deleting an ID the source does not hold returns
// Found=false and mutates nothing.
func (c *Center) DeleteDataset(ctx context.Context, source string, id int) (MutateResult, error) {
	return c.mutate(ctx, source, id, MethodDatasetDelete, &DatasetDeleteRequest{ID: id})
}

// mutate routes one mutation to its source and folds the response into
// the center's version vector and (when the summary moved) DITS-G.
func (c *Center) mutate(ctx context.Context, source string, id int, method string, req any) (MutateResult, error) {
	ep := c.epoch.Load()
	m, ok := ep.members[source]
	if !ok {
		return MutateResult{}, fmt.Errorf("%w: %q", ErrUnknownSource, source)
	}
	var resp MutateResponse
	if err := m.peer.Call(ctx, method, req, &resp); err != nil {
		return MutateResult{}, fmt.Errorf("federation: %s at %s: %w", method, source, err)
	}
	res := MutateResult{
		Source: source, ID: id,
		Found: resp.Found, Version: resp.Version, NumDatasets: resp.NumDatasets,
	}
	if method == MethodDatasetDelete && !resp.Found {
		return res, nil // nothing changed; nothing to invalidate
	}
	c.noteMutation(ep, source, resp)
	return res, nil
}

// noteMutation records a source's post-mutation data version and, when
// the mutation moved the source's root summary, publishes a new
// membership epoch whose DITS-G carries the updated summary (the same
// copy-on-write path Register uses). Notes are applied in version order:
// a response that raced past a newer one is dropped entirely, so a
// late-arriving older (Version, Summary) pair — the pair is snapshotted
// atomically at the source — can never roll DITS-G back to a stale
// summary or move the version vector backwards.
//
// A note whose RPC was issued before the source's latest
// Register/Unregister is dropped: it comes from a PREVIOUS incarnation
// (crashed, rebuilt at version 0, re-registered), and re-installing its
// old high version would make the monotonic guard swallow the new
// incarnation's notes forever. The drop is safe for the cache — the
// re-registration's epoch bump already cleared and re-keyed everything.
// Notes merely racing an UNRELATED epoch swap are processed against the
// current epoch, so an acknowledged mutation's summary refresh is never
// lost to a concurrent membership change.
func (c *Center) noteMutation(ep *epochSnap, source string, resp MutateResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep.gen < c.regGen[source] {
		return // response from a superseded incarnation of the source
	}
	old := *c.versions.Load()
	if resp.Version <= old[source] {
		return // stale or duplicate response; a newer state is already noted
	}
	nv := make(map[string]uint64, len(old)+1)
	maps.Copy(nv, old)
	nv[source] = resp.Version
	c.versions.Store(&nv)
	cur := c.epoch.Load()
	if m, ok := cur.members[source]; ok && m.summary != resp.Summary {
		members := make(map[string]*member, len(cur.members))
		maps.Copy(members, cur.members)
		members[source] = &member{summary: resp.Summary, peer: m.peer}
		g := cur.global.WithoutSource(source).WithSource(resp.Summary)
		c.swapEpochLocked(cur, members, g) // counts the invalidation itself
		return
	}
	c.invalidations.Add(1)
}

// SourceVersions returns the center's view of each mutated source's data
// version. Sources that never mutated through this center are absent.
func (c *Center) SourceVersions() map[string]uint64 {
	out := make(map[string]uint64)
	maps.Copy(out, *c.versions.Load())
	return out
}

// CacheInvalidations returns the number of cache-invalidation events the
// center processed: one per applied mutation, one per membership change.
func (c *Center) CacheInvalidations() int64 { return c.invalidations.Load() }

// endProbe finishes a cache.probe span with the outcome in its Source
// field, so a span tree shows at a glance whether the query hit.
func endProbe(sp *obs.ActiveSpan, hit bool) {
	if hit {
		sp.SetSource("hit")
	} else {
		sp.SetSource("miss")
	}
	sp.End()
}

// offer is one source's candidate in a coverage iteration.
type offer struct {
	src  string
	cand CoverageCandidate
}

// betterOffer orders candidate offers by gain descending, then source name,
// then dataset ID, for deterministic aggregation.
func betterOffer(a, b offer) bool {
	if a.cand.Gain != b.cand.Gain {
		return a.cand.Gain > b.cand.Gain
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.cand.ID < b.cand.ID
}
