package federation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

// The versioned binary wire codec for the federation protocol —
// negotiated per connection by the transport.hello handshake (wire name
// BinaryCodecName), with gob remaining the fallback for legacy peers.
//
// Every payload opens with one content tag: tagBin means a hand-written
// binary message follows — a message-type byte (so a frame decoded as the
// wrong type errors instead of misparsing) and then the message fields in
// struct order — while tagGob means a gob stream follows, which is how
// the binary codec carries any message type it has no native encoding
// for (a method added later still works over a binary connection).
//
// Field primitives: unsigned ints are uvarints, signed ints are zigzag
// varints, floats are 8 little-endian bytes of their IEEE-754 bits,
// bools are one byte, strings are uvarint length + bytes, slices are
// uvarint length + elements, and cell sets use the cellset wire form
// (delta-varint cell IDs or Compact containers as raw little-endian
// words — see cellset/wire.go and docs/PROTOCOL.md).
//
// The decoder is defensive end to end: every length is validated against
// the remaining input before allocation and corrupt or truncated frames
// return errors, never panic (FuzzCodec exercises exactly this).

// BinaryCodecName is the binary codec's wire name. The trailing /1
// versions the encoding itself: an incompatible revision would register
// under /2 and negotiate independently.
const BinaryCodecName = "dits-bin/1"

const (
	tagBin = 'B'
	tagGob = 'G'
)

// Message-type bytes, one per wire struct. Append-only: reusing a
// retired value would let two builds misparse each other's frames.
const (
	msgOverlapReq byte = iota + 1
	msgOverlapResp
	msgSearchBatchReq
	msgSearchBatchResp
	msgCoverageReq
	msgCoverageCand
	msgCoverageRoundReq
	msgCoverageRoundResp
	msgFetchCellsReq
	msgFetchCellsResp
	msgSessionCloseReq
	msgSessionCloseResp
	msgStatsResp
	msgDatasetPutReq
	msgDatasetDeleteReq
	msgMutateResp
	msgVersionReq
	msgVersionResp
	msgSourceSummary
)

// BinaryCodec is the federation's binary wire codec.
var BinaryCodec transport.Codec = binCodec{}

func init() { transport.RegisterCodec(BinaryCodec) }

type binCodec struct{}

func (binCodec) Name() string { return BinaryCodecName }

// maxWireSlice caps decoded slice lengths as a pre-allocation sanity
// bound; every element costs at least one byte on the wire, so the
// per-call check against the remaining input is the real guard.
const maxWireSlice = 1 << 24

func (binCodec) Append(dst []byte, v any) ([]byte, error) {
	switch m := v.(type) {
	case nil:
		return dst, nil
	case *OverlapRequest:
		dst = append(dst, tagBin, msgOverlapReq)
		dst = m.Cells.AppendWire(dst)
		return binary.AppendVarint(dst, int64(m.K)), nil
	case *OverlapResponse:
		dst = append(dst, tagBin, msgOverlapResp)
		return appendOverlapItems(dst, m.Results), nil
	case *SearchBatchRequest:
		dst = append(dst, tagBin, msgSearchBatchReq)
		dst = binary.AppendUvarint(dst, uint64(len(m.Queries)))
		for i := range m.Queries {
			dst = m.Queries[i].Cells.AppendWire(dst)
			dst = binary.AppendVarint(dst, int64(m.Queries[i].K))
		}
		return dst, nil
	case *SearchBatchResponse:
		dst = append(dst, tagBin, msgSearchBatchResp)
		dst = binary.AppendUvarint(dst, uint64(len(m.Results)))
		for i := range m.Results {
			dst = appendOverlapItems(dst, m.Results[i].Results)
		}
		return dst, nil
	case *CoverageRequest:
		dst = append(dst, tagBin, msgCoverageReq)
		dst = m.Merged.AppendWire(dst)
		dst = appendF64(dst, m.Delta)
		return appendInts(dst, m.Exclude), nil
	case *CoverageCandidate:
		dst = append(dst, tagBin, msgCoverageCand)
		dst = appendBool(dst, m.Found)
		dst = binary.AppendVarint(dst, int64(m.ID))
		dst = appendString(dst, m.Name)
		dst = binary.AppendVarint(dst, int64(m.Gain))
		return m.Cells.AppendWire(dst), nil
	case *CoverageRoundRequest:
		dst = append(dst, tagBin, msgCoverageRoundReq)
		dst = binary.AppendUvarint(dst, m.Session)
		dst = m.Base.AppendWire(dst)
		dst = m.Added.AppendWire(dst)
		dst = appendF64(dst, m.Delta)
		return appendInts(dst, m.Exclude), nil
	case *CoverageRoundResponse:
		dst = append(dst, tagBin, msgCoverageRoundResp)
		dst = appendBool(dst, m.SessionMiss)
		dst = appendBool(dst, m.Stateless)
		dst = appendBool(dst, m.Found)
		dst = binary.AppendVarint(dst, int64(m.ID))
		dst = appendString(dst, m.Name)
		return binary.AppendVarint(dst, int64(m.Gain)), nil
	case *FetchCellsRequest:
		dst = append(dst, tagBin, msgFetchCellsReq)
		dst = binary.AppendUvarint(dst, m.Session)
		return binary.AppendVarint(dst, int64(m.ID)), nil
	case *FetchCellsResponse:
		dst = append(dst, tagBin, msgFetchCellsResp)
		dst = appendBool(dst, m.Found)
		dst = appendBool(dst, m.Committed)
		return m.Cells.AppendWire(dst), nil
	case *SessionCloseRequest:
		dst = append(dst, tagBin, msgSessionCloseReq)
		return binary.AppendUvarint(dst, m.Session), nil
	case *SessionCloseResponse:
		dst = append(dst, tagBin, msgSessionCloseResp)
		return appendBool(dst, m.Closed), nil
	case *StatsResponse:
		dst = append(dst, tagBin, msgStatsResp)
		dst = appendString(dst, m.Name)
		dst = binary.AppendVarint(dst, int64(m.NumDatasets))
		dst = binary.AppendVarint(dst, int64(m.TreeNodes))
		dst = binary.AppendVarint(dst, int64(m.Height))
		dst = binary.AppendVarint(dst, int64(m.Sessions))
		dst = binary.AppendUvarint(dst, m.DataVersion)
		dst = appendBool(dst, m.Durable)
		dst = appendBool(dst, m.MMap)
		dst = binary.AppendVarint(dst, m.MappedBytes)
		dst = binary.AppendVarint(dst, m.ResidentBytes)
		return binary.AppendVarint(dst, int64(m.OverlayMutations)), nil
	case *DatasetPutRequest:
		dst = append(dst, tagBin, msgDatasetPutReq)
		dst = binary.AppendVarint(dst, int64(m.ID))
		dst = appendString(dst, m.Name)
		return m.Cells.AppendWire(dst), nil
	case *DatasetDeleteRequest:
		dst = append(dst, tagBin, msgDatasetDeleteReq)
		return binary.AppendVarint(dst, int64(m.ID)), nil
	case *MutateResponse:
		dst = append(dst, tagBin, msgMutateResp)
		dst = appendBool(dst, m.Found)
		dst = binary.AppendUvarint(dst, m.Version)
		dst = binary.AppendVarint(dst, int64(m.NumDatasets))
		return appendSummary(dst, &m.Summary), nil
	case *VersionRequest:
		return append(dst, tagBin, msgVersionReq), nil
	case *VersionResponse:
		dst = append(dst, tagBin, msgVersionResp)
		dst = appendString(dst, m.Name)
		dst = binary.AppendUvarint(dst, m.Version)
		return appendBool(dst, m.Durable), nil
	case *dits.SourceSummary:
		dst = append(dst, tagBin, msgSourceSummary)
		return appendSummary(dst, m), nil
	default:
		// No native encoding: carry the value as a tagged gob stream so
		// new message types keep working over binary connections.
		return transport.GobCodec.Append(append(dst, tagGob), v)
	}
}

func (binCodec) Decode(data []byte, v any) error {
	if v == nil {
		return nil
	}
	if len(data) < 1 {
		return errors.New("federation: codec: empty payload")
	}
	tag, data := data[0], data[1:]
	if tag == tagGob {
		return transport.GobCodec.Decode(data, v)
	}
	if tag != tagBin {
		return fmt.Errorf("federation: codec: unknown content tag %d", tag)
	}
	if len(data) < 1 {
		return errors.New("federation: codec: missing message type")
	}
	msg, data := data[0], data[1:]
	r := wireReader{data: data}
	switch m := v.(type) {
	case *OverlapRequest:
		r.expect(msg, msgOverlapReq)
		m.Cells = r.set()
		m.K = r.int()
	case *OverlapResponse:
		r.expect(msg, msgOverlapResp)
		m.Results = r.overlapItems()
	case *SearchBatchRequest:
		r.expect(msg, msgSearchBatchReq)
		n := r.sliceLen()
		m.Queries = nil
		if r.err == nil && n > 0 {
			m.Queries = make([]OverlapRequest, n)
			for i := range m.Queries {
				m.Queries[i].Cells = r.set()
				m.Queries[i].K = r.int()
			}
		}
	case *SearchBatchResponse:
		r.expect(msg, msgSearchBatchResp)
		n := r.sliceLen()
		m.Results = nil
		if r.err == nil && n > 0 {
			m.Results = make([]OverlapResponse, n)
			for i := range m.Results {
				m.Results[i].Results = r.overlapItems()
			}
		}
	case *CoverageRequest:
		r.expect(msg, msgCoverageReq)
		m.Merged = r.set()
		m.Delta = r.f64()
		m.Exclude = r.ints()
	case *CoverageCandidate:
		r.expect(msg, msgCoverageCand)
		m.Found = r.bool()
		m.ID = r.int()
		m.Name = r.string()
		m.Gain = r.int()
		m.Cells = r.set()
	case *CoverageRoundRequest:
		r.expect(msg, msgCoverageRoundReq)
		m.Session = r.uvarint()
		m.Base = r.set()
		m.Added = r.set()
		m.Delta = r.f64()
		m.Exclude = r.ints()
	case *CoverageRoundResponse:
		r.expect(msg, msgCoverageRoundResp)
		m.SessionMiss = r.bool()
		m.Stateless = r.bool()
		m.Found = r.bool()
		m.ID = r.int()
		m.Name = r.string()
		m.Gain = r.int()
	case *FetchCellsRequest:
		r.expect(msg, msgFetchCellsReq)
		m.Session = r.uvarint()
		m.ID = r.int()
	case *FetchCellsResponse:
		r.expect(msg, msgFetchCellsResp)
		m.Found = r.bool()
		m.Committed = r.bool()
		m.Cells = r.set()
	case *SessionCloseRequest:
		r.expect(msg, msgSessionCloseReq)
		m.Session = r.uvarint()
	case *SessionCloseResponse:
		r.expect(msg, msgSessionCloseResp)
		m.Closed = r.bool()
	case *StatsResponse:
		r.expect(msg, msgStatsResp)
		m.Name = r.string()
		m.NumDatasets = r.int()
		m.TreeNodes = r.int()
		m.Height = r.int()
		m.Sessions = r.int()
		m.DataVersion = r.uvarint()
		m.Durable = r.bool()
		m.MMap = r.bool()
		m.MappedBytes = int64(r.int())
		m.ResidentBytes = int64(r.int())
		m.OverlayMutations = r.int()
	case *DatasetPutRequest:
		r.expect(msg, msgDatasetPutReq)
		m.ID = r.int()
		m.Name = r.string()
		m.Cells = r.set()
	case *DatasetDeleteRequest:
		r.expect(msg, msgDatasetDeleteReq)
		m.ID = r.int()
	case *MutateResponse:
		r.expect(msg, msgMutateResp)
		m.Found = r.bool()
		m.Version = r.uvarint()
		m.NumDatasets = r.int()
		r.summary(&m.Summary)
	case *VersionRequest:
		r.expect(msg, msgVersionReq)
	case *VersionResponse:
		r.expect(msg, msgVersionResp)
		m.Name = r.string()
		m.Version = r.uvarint()
		m.Durable = r.bool()
	case *dits.SourceSummary:
		r.expect(msg, msgSourceSummary)
		r.summary(m)
	default:
		return fmt.Errorf("federation: codec: no binary decoding for %T", v)
	}
	if r.err != nil {
		return fmt.Errorf("federation: codec: %w", r.err)
	}
	if len(r.data) != 0 {
		return fmt.Errorf("federation: codec: %d trailing bytes", len(r.data))
	}
	return nil
}

// Encode-side helpers. All are append-style and allocation-free beyond
// dst's growth, so the encode path stays zero-alloc with a pooled buffer.

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendInts(dst []byte, xs []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(xs)))
	for _, x := range xs {
		dst = binary.AppendVarint(dst, int64(x))
	}
	return dst
}

func appendOverlapItems(dst []byte, items []OverlapItem) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for i := range items {
		dst = binary.AppendVarint(dst, int64(items[i].ID))
		dst = appendString(dst, items[i].Name)
		dst = binary.AppendVarint(dst, int64(items[i].Overlap))
	}
	return dst
}

func appendSummary(dst []byte, s *dits.SourceSummary) []byte {
	dst = appendString(dst, s.Name)
	dst = appendF64(dst, s.Rect.MinX)
	dst = appendF64(dst, s.Rect.MinY)
	dst = appendF64(dst, s.Rect.MaxX)
	dst = appendF64(dst, s.Rect.MaxY)
	dst = appendF64(dst, s.O.X)
	dst = appendF64(dst, s.O.Y)
	dst = appendF64(dst, s.R)
	return binary.AppendVarint(dst, int64(s.Theta))
}

// wireReader is the decode-side cursor: reads are sticky-error, so a
// decode body reads every field unconditionally and checks err once.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
		r.data = nil
	}
}

func (r *wireReader) expect(got, want byte) {
	if got != want {
		r.fail("message type %d, want %d", got, want)
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *wireReader) int() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return int(v)
}

func (r *wireReader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.data) < 1 {
		r.fail("truncated bool")
		return false
	}
	b := r.data[0]
	r.data = r.data[1:]
	if b > 1 {
		r.fail("bool byte %d", b)
		return false
	}
	return b == 1
}

func (r *wireReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return v
}

func (r *wireReader) string() string {
	if r.err != nil {
		return ""
	}
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)) {
		r.fail("string length %d exceeds input", n)
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

// sliceLen reads a slice length, bounds-checked against the remaining
// input (one byte per element minimum).
func (r *wireReader) sliceLen() int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > maxWireSlice || n > uint64(len(r.data)) {
		r.fail("slice length %d out of range", n)
		return 0
	}
	return int(n)
}

func (r *wireReader) ints() []int {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = r.int()
	}
	if r.err != nil {
		return nil
	}
	return xs
}

func (r *wireReader) set() cellset.Set {
	if r.err != nil {
		return nil
	}
	s, rest, err := cellset.DecodeWireSet(r.data)
	if err != nil {
		r.fail("%v", err)
		return nil
	}
	r.data = rest
	return s
}

func (r *wireReader) overlapItems() []OverlapItem {
	n := r.sliceLen()
	if r.err != nil || n == 0 {
		return nil
	}
	items := make([]OverlapItem, n)
	for i := range items {
		items[i].ID = r.int()
		items[i].Name = r.string()
		items[i].Overlap = r.int()
	}
	if r.err != nil {
		return nil
	}
	return items
}

func (r *wireReader) summary(s *dits.SourceSummary) {
	s.Name = r.string()
	s.Rect = geo.Rect{MinX: r.f64(), MinY: r.f64(), MaxX: r.f64(), MaxY: r.f64()}
	s.O = geo.Point{X: r.f64(), Y: r.f64()}
	s.R = r.f64()
	s.Theta = r.int()
}
