package federation

import "sync"

// FailurePolicy decides what a federated query does when one source's peer
// fails mid-query.
type FailurePolicy int

const (
	// FailFast aborts the query on the first source error — the strict
	// mode matching the paper's all-sources-answer model.
	FailFast FailurePolicy = iota
	// SkipFailed drops the failing source from the rest of the query,
	// records the failure in the center's Metrics, and answers from the
	// surviving sources — one dead peer no longer kills a federated
	// query.
	SkipFailed
)

// fanOut runs fn against every member concurrently and collects results
// and errors in member order. Each member (and thus each peer connection)
// is driven by exactly one goroutine, so peers only need to be safe for
// sequential use. All calls run to completion before fanOut returns,
// keeping connection state consistent; the caller applies its failure
// policy to the aligned error slice.
func fanOut[T any](members []*member, fn func(*member) (T, error)) ([]T, []error) {
	outs := make([]T, len(members))
	errs := make([]error, len(members))
	if len(members) == 1 {
		// Common single-candidate case: skip the goroutine machinery.
		outs[0], errs[0] = fn(members[0])
		return outs, errs
	}
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			outs[i], errs[i] = fn(m)
		}(i, m)
	}
	wg.Wait()
	return outs, errs
}

// resolve applies the center's failure policy to a fan-out's aligned error
// slice: under FailFast the first error (in member order) is returned;
// under SkipFailed each failure is recorded against its source in Metrics
// and reported through onSkip (which may be nil), and the query proceeds
// on the survivors. The caller must ignore outs[i] whenever errs[i] != nil.
func (c *Center) resolve(members []*member, errs []error, onSkip func(i int)) error {
	for i, err := range errs {
		if err == nil {
			continue
		}
		if c.Options.OnSourceError == FailFast {
			return err
		}
		c.Metrics.RecordFailure(members[i].summary.Name)
		if onSkip != nil {
			onSkip(i)
		}
	}
	return nil
}
