package federation

import "sync"

// fanOut runs fn against every member concurrently and collects the
// results in member order. Each member (and thus each peer connection) is
// driven by exactly one goroutine, so peers only need to be safe for
// sequential use. The first error wins; the remaining calls still run to
// completion before fanOut returns, keeping connection state consistent.
func fanOut[T any](members []*member, fn func(*member) (T, error)) ([]T, error) {
	if len(members) == 1 {
		// Common single-candidate case: skip the goroutine machinery.
		out, err := fn(members[0])
		if err != nil {
			return nil, err
		}
		return []T{out}, nil
	}
	outs := make([]T, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			outs[i], errs[i] = fn(m)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}
