package federation

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"dits/internal/ingest"
)

// The membership log is a center's durable record of which sources belong
// to it: every Register/Unregister a CenterServer accepts is appended here
// before it is acknowledged, so a restarted center replays the log,
// re-dials the surviving fold of sources, and rejoins the cluster with the
// same shard — no operator re-registration, no gateway coordination. The
// on-disk format reuses the ingest WAL framing (length + CRC-32C frames
// behind a magic header), so a torn tail from a crash mid-append truncates
// to the intact prefix exactly like the data WAL.

// memberLogMagic distinguishes a membership log from the data WAL sharing
// the same frame format.
var memberLogMagic = []byte("DITSMLG\x01")

// MemberOp is the kind of one membership event.
type MemberOp uint8

const (
	// MemberJoin records a source registration (or re-registration: the
	// newest join for a name wins the fold).
	MemberJoin MemberOp = 1
	// MemberLeave records a source unregistration.
	MemberLeave MemberOp = 2
)

// MemberEvent is one durable membership change.
type MemberEvent struct {
	Op       MemberOp
	Name     string   // source name (the federation-wide identity)
	Addr     string   // dial address of the source's primary
	Replicas []string // dial addresses of its replicas, failover order
}

// MemberLog persists membership events for one center. It is not safe for
// concurrent use; CenterServer serializes appends under its own lock.
type MemberLog struct {
	log *ingest.FramedLog
}

// OpenMemberLog opens (or creates) the log at path and returns the events
// recovered from it, oldest first. A torn final frame is truncated away;
// fsync controls whether each append reaches disk before returning.
func OpenMemberLog(path string, fsync bool) (*MemberLog, []MemberEvent, error) {
	log, payloads, err := ingest.OpenFramedLog(path, memberLogMagic, fsync)
	if err != nil {
		return nil, nil, fmt.Errorf("federation: open member log: %w", err)
	}
	events := make([]MemberEvent, 0, len(payloads))
	for _, p := range payloads {
		var ev MemberEvent
		if derr := gob.NewDecoder(bytes.NewReader(p)).Decode(&ev); derr != nil {
			// An intact (CRC-clean) frame that does not decode is not a torn
			// tail — the log is from a different format version. Refuse
			// rather than silently drop membership.
			log.Close()
			return nil, nil, fmt.Errorf("federation: member log %s: undecodable event %d: %w", path, len(events), derr)
		}
		events = append(events, ev)
	}
	return &MemberLog{log: log}, events, nil
}

// Append durably records one membership event.
func (l *MemberLog) Append(ev MemberEvent) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ev); err != nil {
		return fmt.Errorf("federation: encode member event: %w", err)
	}
	if err := l.log.Append(buf.Bytes()); err != nil {
		return fmt.Errorf("federation: append member event: %w", err)
	}
	return nil
}

// Size returns the log's current length in bytes.
func (l *MemberLog) Size() int64 { return l.log.Size() }

// Close releases the underlying file.
func (l *MemberLog) Close() error { return l.log.Close() }

// FoldMembers collapses an event history into the live membership: the
// newest join per name wins, a newer leave removes it. Iteration order of
// the returned map is not defined; callers wanting determinism sort the
// names.
func FoldMembers(events []MemberEvent) map[string]MemberEvent {
	live := make(map[string]MemberEvent)
	for _, ev := range events {
		switch ev.Op {
		case MemberJoin:
			live[ev.Name] = ev
		case MemberLeave:
			delete(live, ev.Name)
		}
	}
	return live
}
