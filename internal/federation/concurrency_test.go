package federation

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/transport"
)

// tcpFederation rebuilds buildFederation's sources behind real TCP servers,
// each fronted by a connection pool of the given size, so concurrent
// queries exercise the pooled transport end to end.
func tcpFederation(t *testing.T, rng *rand.Rand, m, perSource, poolSize int) (*Center, []cellset.Set) {
	t.Helper()
	_, pooled, servers := buildFederation(rng, m, perSource, DefaultOptions())
	center := NewCenter(worldGrid(), DefaultOptions())
	for _, srv := range servers {
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ts.Close() })
		pool := transport.DialPool(srv.Name, ts.Addr(), poolSize, center.Metrics)
		t.Cleanup(func() { pool.Close() })
		if _, err := center.RegisterRemote(context.Background(), pool); err != nil {
			t.Fatal(err)
		}
	}
	// Query workloads: the cell sets of a few pooled datasets.
	var queries []cellset.Set
	for i := 0; i < 8 && i < len(pooled); i++ {
		queries = append(queries, pooled[i*7%len(pooled)].Cells)
	}
	return center, queries
}

// TestCenterConcurrentQueries is the -race test for the concurrent center:
// many goroutines issue overlap and coverage searches through pooled TCP
// peers with the result cache enabled, and every answer must equal the
// sequential baseline.
func TestCenterConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	center, queries := tcpFederation(t, rng, 3, 60, 4)
	center.SetCache(cache.New(256))

	// Sequential baselines first (these also warm the cache).
	wantOverlap := make([][]SourceResult, len(queries))
	wantCoverage := make([]CoverageResult, len(queries))
	for i, q := range queries {
		var err error
		if wantOverlap[i], err = center.OverlapSearch(context.Background(), q, 5); err != nil {
			t.Fatal(err)
		}
		if wantCoverage[i], err = center.CoverageSearch(context.Background(), q, 3, 3); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3*len(queries); i++ {
				qi := (w + i) % len(queries)
				rs, err := center.OverlapSearch(context.Background(), queries[qi], 5)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(rs, wantOverlap[qi]) {
					t.Errorf("overlap[%d] diverged under concurrency", qi)
					return
				}
				cr, err := center.CoverageSearch(context.Background(), queries[qi], 3, 3)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(cr, wantCoverage[qi]) {
					t.Errorf("coverage[%d] diverged under concurrency", qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if st := center.Cache().Stats(); st.Hits == 0 {
		t.Errorf("cache never hit: %+v", st)
	}
}

// TestCenterCachedResultsAreIsolated verifies copy-on-hit: mutating a
// returned result must not corrupt later answers for the same query.
func TestCenterCachedResultsAreIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	center, _, _ := buildFederation(rng, 2, 40, DefaultOptions())
	center.SetCache(cache.New(64))
	q := cellset.New(geo.ZEncode(3, 3), geo.ZEncode(4, 4), geo.ZEncode(5, 5))

	first, err := center.OverlapSearch(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) > 0 {
		first[0] = SourceResult{Source: "mutated", ID: -99}
	}
	second, err := center.OverlapSearch(context.Background(), q, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range second {
		if r.Source == "mutated" {
			t.Fatal("caller mutation leaked into the cache")
		}
	}

	cr, err := center.CoverageSearch(context.Background(), q, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Picked) > 0 {
		cr.Picked[0] = SourceResult{Source: "mutated"}
	}
	cr2, err := center.CoverageSearch(context.Background(), q, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cr2.Picked {
		if r.Source == "mutated" {
			t.Fatal("caller mutation leaked into the coverage cache")
		}
	}
}

// TestCenterMembershipChurn races queries against register/unregister and
// relies on the race detector to catch unsynchronized state.
func TestCenterMembershipChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	center, pooled, servers := buildFederation(rng, 3, 40, DefaultOptions())
	center.SetCache(cache.New(64))
	churn := servers[len(servers)-1]
	churnPeer := &transport.InProc{Name: churn.Name, Handler: churn.Handler(), Metrics: center.Metrics}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				center.Unregister(churn.Name)
			} else {
				center.Register(churn.Summary(), churnPeer)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := pooled[(w*31+i)%len(pooled)].Cells
				if _, err := center.OverlapSearch(context.Background(), q, 3); err != nil {
					t.Error(err)
					return
				}
				if _, err := center.CoverageSearch(context.Background(), q, 2, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	churnWG.Wait()
}
