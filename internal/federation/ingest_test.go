package federation

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/transport"
)

// buildMutableFederation is buildFederation with every source backed by a
// durable ingest store rooted in a per-test temp dir.
func buildMutableFederation(t *testing.T, rng *rand.Rand, m, perSource int, opts Options) (*Center, []*SourceServer) {
	t.Helper()
	center, _, servers := buildFederation(rng, m, perSource, opts)
	for _, srv := range servers {
		idx := srv.Index
		st, err := ingest.Open(t.TempDir(), ingest.Options{
			Fsync:         ingest.FsyncNever,
			SnapshotEvery: -1,
			Bootstrap:     func() (*dits.Local, error) { return idx, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv.EnableIngest(st)
	}
	return center, servers
}

// cellsNear builds a small cell set clustered at (cx, cy).
func cellsNear(cx, cy, n int) cellset.Set {
	side := 1 << theta
	ids := make([]uint64, n)
	for j := range ids {
		x := clamp(cx+j%5, 0, side-1)
		y := clamp(cy+j/5, 0, side-1)
		ids[j] = geo.ZEncode(uint32(x), uint32(y))
	}
	return cellset.New(ids...)
}

func TestFederatedMutationInvalidatesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	center, servers := buildMutableFederation(t, rng, 3, 40, DefaultOptions())
	center.SetCache(cache.New(128))

	query := randomQuery(rng)
	before, err := center.OverlapSearch(context.Background(), query, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache and prove the second read hits it.
	if _, err := center.OverlapSearch(context.Background(), query, 5); err != nil {
		t.Fatal(err)
	}
	if hits := center.Cache().Stats().Hits; hits == 0 {
		t.Fatal("second identical query should hit the cache")
	}

	// Insert, at the lexicographically first source, a dataset that covers
	// the query exactly: it must dethrone every cached result.
	target := servers[0].Name
	res, err := center.PutDataset(context.Background(), target, 777777, "fresh", query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Version == 0 {
		t.Fatalf("put result = %+v", res)
	}
	if got := center.SourceVersions()[target]; got != res.Version {
		t.Fatalf("version vector holds %d, want %d", got, res.Version)
	}
	if center.CacheInvalidations() == 0 {
		t.Fatal("mutation must count as a cache invalidation")
	}

	after, err := center.OverlapSearch(context.Background(), query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) == 0 || after[0].ID != 777777 || after[0].Overlap != query.Len() {
		t.Fatalf("post-mutation top result = %+v, want the inserted dataset", after)
	}
	if reflect.DeepEqual(before, after) {
		t.Fatal("results unchanged after a dominating insert: stale cache")
	}

	// Deleting it restores the original answer — again through the cache.
	del, err := center.DeleteDataset(context.Background(), target, 777777)
	if err != nil {
		t.Fatal(err)
	}
	if !del.Found {
		t.Fatal("delete of a live dataset must report Found")
	}
	restored, err := center.OverlapSearch(context.Background(), query, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, restored) {
		t.Fatalf("results after insert+delete differ from the original:\n  %v\n  %v", before, restored)
	}

	// Deletes are idempotent at the protocol level: a second delete of the
	// same ID reports Found=false without erroring or mutating anything.
	if del, err = center.DeleteDataset(context.Background(), target, 777777); err != nil || del.Found {
		t.Fatalf("double delete: res=%+v err=%v (must be Found=false, nil)", del, err)
	}

	// Re-registration is an authoritative reset: the source's entry leaves
	// the version vector so a rebuilt source restarting from version 0 is
	// not shadowed by the old counter's monotonic guard.
	for _, srv := range servers {
		if srv.Name == target {
			center.Register(srv.Summary(), &transport.InProc{Name: target, Handler: srv.Handler(), Metrics: center.Metrics})
		}
	}
	if _, ok := center.SourceVersions()[target]; ok {
		t.Fatal("re-registration must drop the source's version entry")
	}
}

func TestMutationAtUnknownOrReadOnlySource(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	center, _, _ := buildFederation(rng, 2, 10, DefaultOptions())
	if _, err := center.PutDataset(context.Background(), "nope", 1, "x", cellsNear(3, 3, 4)); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("unknown source: err = %v, want ErrUnknownSource", err)
	}
	// Sources built without EnableIngest are read-only.
	if _, err := center.PutDataset(context.Background(), "a", 1, "x", cellsNear(3, 3, 4)); err == nil {
		t.Fatal("mutation at a read-only source must fail")
	}
	var re *transport.RemoteError
	if _, err := center.DeleteDataset(context.Background(), "a", 1); !errors.As(err, &re) {
		t.Fatalf("read-only delete: err = %v, want RemoteError", err)
	}
}

// TestMutationGrowsSummary inserts data far outside a source's original
// extent and checks the center's DITS-G picks the source up for queries
// there — the summary-refresh path.
func TestMutationGrowsSummary(t *testing.T) {
	// One source confined to the lower-left corner; global filtering ON.
	g := worldGrid()
	center := NewCenter(g, DefaultOptions())
	var nodes []*dataset.Node
	for i := 0; i < 5; i++ {
		nodes = append(nodes, dataset.NewNodeFromCells(i+1, "seed", cellsNear(8+3*i, 8+2*i, 10)))
	}
	idx := dits.Build(g, nodes, 4)
	srv := NewSourceServerWithGrid("a", idx)
	st, err := ingest.Open(t.TempDir(), ingest.Options{
		Fsync:         ingest.FsyncNever,
		SnapshotEvery: -1,
		Bootstrap:     func() (*dits.Local, error) { return idx, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv.EnableIngest(st)
	center.Register(srv.Summary(), &transport.InProc{Name: "a", Handler: srv.Handler(), Metrics: center.Metrics})
	gen := center.Generation()

	// A far-corner query: the source's summary cannot reach it yet.
	side := 1 << theta
	far := cellsNear(side-8, side-8, 12)
	rs, err := center.OverlapSearch(context.Background(), far, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("far corner answered %v before any data lives there", rs)
	}

	if _, err := center.PutDataset(context.Background(), "a", 888888, "corner", far); err != nil {
		t.Fatal(err)
	}
	if center.Generation() == gen {
		t.Fatal("a summary-moving mutation must advance the membership epoch")
	}
	rs, err = center.OverlapSearch(context.Background(), far, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 888888 {
		t.Fatalf("post-mutation far query = %+v, want the inserted corner dataset", rs)
	}

	// A mutation strictly inside the (now grown) extent must NOT advance
	// the epoch — only the version vector moves.
	gen = center.Generation()
	if _, err := center.PutDataset(context.Background(), "a", 888889, "inner", cellsNear(10, 10, 6)); err != nil {
		t.Fatal(err)
	}
	if center.Generation() != gen {
		t.Fatal("an extent-preserving mutation must not advance the epoch")
	}
}

func TestSourceVersionRPC(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	center, servers := buildMutableFederation(t, rng, 1, 10, DefaultOptions())
	srv := servers[0]
	peer := &transport.InProc{Name: srv.Name, Handler: srv.Handler()}
	call := func() VersionResponse {
		var resp VersionResponse
		if err := peer.Call(context.Background(), MethodSourceVersion, nil, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	v0 := call()
	if !v0.Durable || v0.Version != 0 || v0.Name != srv.Name {
		t.Fatalf("initial version = %+v", v0)
	}
	if _, err := center.PutDataset(context.Background(), srv.Name, 42424242, "v", cellsNear(5, 5, 4)); err != nil {
		t.Fatal(err)
	}
	if v1 := call(); v1.Version != 1 {
		t.Fatalf("version after one mutation = %d, want 1", v1.Version)
	}
	// Stats carries the same counters.
	var stats StatsResponse
	if err := peer.Call(context.Background(), MethodStats, nil, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.DataVersion != 1 || !stats.Durable {
		t.Fatalf("stats = %+v, want DataVersion=1 Durable=true", stats)
	}
}

// TestConcurrentMutationsAndQueries races federated searches (overlap,
// batch, coverage with open sessions) against mutations; run under -race
// this is the serialization proof for the whole stack.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	center, servers := buildMutableFederation(t, rng, 3, 30, DefaultOptions())
	center.SetCache(cache.New(64))

	queries := make([]cellset.Set, 16)
	for i := range queries {
		queries[i] = randomQuery(rand.New(rand.NewSource(int64(100 + i))))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(w*20+i)%len(queries)]
				if _, err := center.OverlapSearch(context.Background(), q, 5); err != nil {
					errCh <- err
					return
				}
				if _, err := center.CoverageSearch(context.Background(), q, 6, 3); err != nil {
					errCh <- err
					return
				}
				if _, err := center.OverlapSearchBatch(context.Background(), []BatchQuery{{Cells: q, K: 3}, {Cells: queries[i%len(queries)], K: 2}}); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(77))
		for i := 0; i < 60; i++ {
			src := servers[mrng.Intn(len(servers))].Name
			id := 500000 + i
			if _, err := center.PutDataset(context.Background(), src, id, "churn", cellsNear(mrng.Intn(1<<theta), mrng.Intn(1<<theta), 5)); err != nil {
				errCh <- err
				return
			}
			if i%3 == 0 {
				if _, err := center.DeleteDataset(context.Background(), src, id); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for _, srv := range servers {
		var err error
		srv.view(func(idx *dits.Local) { err = idx.CheckInvariants() })
		if err != nil {
			t.Fatal(err)
		}
	}
}
