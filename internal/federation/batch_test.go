package federation

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dits/internal/cache"
	"dits/internal/transport"
)

// testFederation bundles the pieces the batch tests drive.
type testFederation struct {
	center  *Center
	servers []*SourceServer
}

// newTestFederation builds a three-source in-process federation.
func newTestFederation(t *testing.T, opts Options) *testFederation {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	center, _, servers := buildFederation(rng, 3, 40, opts)
	return &testFederation{center: center, servers: servers}
}

// batchTestQueries samples queries across the test federation's sources.
func batchTestQueries(t *testing.T, f *testFederation, n int) []BatchQuery {
	t.Helper()
	var qs []BatchQuery
	for i := 0; i < n; i++ {
		src := f.servers[i%len(f.servers)]
		nd := src.Index.All()[i%src.Index.Len()]
		cells := nd.Cells
		if i%3 == 1 { // widen some queries across source boundaries
			other := f.servers[(i+1)%len(f.servers)]
			cells = cells.Union(other.Index.All()[i%other.Index.Len()].Cells)
		}
		qs = append(qs, BatchQuery{Cells: cells, K: 1 + i%7})
	}
	return qs
}

// TestOverlapSearchBatchParity: every entry of a batched search must be
// identical to the same query asked alone, across option combinations and
// worker counts.
func TestOverlapSearchBatchParity(t *testing.T) {
	for _, opts := range []Options{
		{},
		{GlobalFilter: true, ClipQuery: true},
		{GlobalFilter: true, ClipQuery: true, Workers: 4},
	} {
		opts := opts
		t.Run(fmt.Sprintf("filter=%v_workers=%d", opts.GlobalFilter, opts.Workers), func(t *testing.T) {
			f := newTestFederation(t, opts)
			qs := batchTestQueries(t, f, 9)
			got, err := f.center.OverlapSearchBatch(context.Background(), qs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(qs) {
				t.Fatalf("got %d results for %d queries", len(got), len(qs))
			}
			for i, q := range qs {
				want, err := f.center.OverlapSearch(context.Background(), q.Cells, q.K)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("query %d: batch %v != single %v", i, got[i], want)
				}
			}
		})
	}
}

// TestOverlapSearchBatchOfOne: the smallest batch is exactly the single
// path, and parallel source servers answer identically to sequential ones.
func TestOverlapSearchBatchOfOne(t *testing.T) {
	f := newTestFederation(t, DefaultOptions())
	for _, srv := range f.servers {
		srv.Workers = 8
	}
	q := batchTestQueries(t, f, 1)[0]
	got, err := f.center.OverlapSearchBatch(context.Background(), []BatchQuery{q})
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.center.OverlapSearch(context.Background(), q.Cells, q.K)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want) {
		t.Fatalf("batch of one %v != single %v", got[0], want)
	}
}

// TestOverlapSearchBatchCacheSharing: a batch fills the result cache with
// per-query entries that single queries hit, and vice versa.
func TestOverlapSearchBatchCacheSharing(t *testing.T) {
	f := newTestFederation(t, DefaultOptions())
	f.center.SetCache(cache.New(64))
	qs := batchTestQueries(t, f, 4)
	if _, err := f.center.OverlapSearchBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	st := f.center.Cache().Stats()
	if st.Len == 0 {
		t.Fatal("batch filled no cache entries")
	}
	msgs := f.center.Metrics.Messages()
	for _, q := range qs {
		if _, err := f.center.OverlapSearch(context.Background(), q.Cells, q.K); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.center.Metrics.Messages(); got != msgs {
		t.Fatalf("single queries after a batch hit the network: %d -> %d messages", msgs, got)
	}
	// And the reverse: a fresh batch over now-cached queries is silent.
	if _, err := f.center.OverlapSearchBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	if got := f.center.Metrics.Messages(); got != msgs {
		t.Fatalf("batch over cached queries hit the network: %d -> %d messages", msgs, got)
	}
}

// TestOverlapSearchBatchRoundTrips: a batch of B queries costs one
// search.batch call per involved source, not B overlap.search calls.
func TestOverlapSearchBatchRoundTrips(t *testing.T) {
	f := newTestFederation(t, Options{}) // no filtering: every source contacted
	qs := batchTestQueries(t, f, 8)
	f.center.Metrics.Reset()
	if _, err := f.center.OverlapSearchBatch(context.Background(), qs); err != nil {
		t.Fatal(err)
	}
	per := f.center.Metrics.PerMethod()
	if per[MethodOverlap].Calls != 0 {
		t.Fatalf("batch used %d single overlap calls", per[MethodOverlap].Calls)
	}
	if got, want := per[MethodSearchBatch].Calls, int64(len(f.servers)); got != want {
		t.Fatalf("batch made %d search.batch calls, want %d (one per source)", got, want)
	}
}

// legacyPeer wraps a peer and rejects MethodSearchBatch the way a source
// predating the method would, so the center's fallback path is exercised
// over a realistic error.
type legacyPeer struct {
	transport.Peer
}

func (p *legacyPeer) Call(ctx context.Context, method string, req, resp any) error {
	if method == MethodSearchBatch {
		return &transport.RemoteError{Source: "legacy", Msg: `federation: unknown method "search.batch"`}
	}
	return p.Peer.Call(ctx, method, req, resp)
}

// TestOverlapSearchBatchLegacyFallback: a source rejecting search.batch is
// transparently served query-by-query, with identical results.
func TestOverlapSearchBatchLegacyFallback(t *testing.T) {
	f := newTestFederation(t, Options{GlobalFilter: true, ClipQuery: true})
	// Re-register the first source behind a method-rejecting peer.
	legacy := f.servers[0]
	f.center.Register(legacy.Summary(), &legacyPeer{Peer: &transport.InProc{
		Name: legacy.Name, Handler: legacy.Handler(), Metrics: f.center.Metrics,
	}})
	qs := batchTestQueries(t, f, 6)
	got, err := f.center.OverlapSearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		want, err := f.center.OverlapSearch(context.Background(), q.Cells, q.K)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d diverged under legacy fallback", i)
		}
	}
	if calls := f.center.Metrics.PerMethod()[MethodOverlap].Calls; calls == 0 {
		t.Fatal("legacy source was never served over overlap.search")
	}
}

// failingBatchPeer fails every call once armed.
type failingBatchPeer struct {
	transport.Peer
	fail bool
}

func (p *failingBatchPeer) Call(ctx context.Context, method string, req, resp any) error {
	if p.fail {
		return fmt.Errorf("peer down")
	}
	return p.Peer.Call(ctx, method, req, resp)
}

// TestOverlapSearchBatchFailurePolicies: FailFast aborts the whole batch;
// SkipFailed answers from the survivors and never caches the degraded
// queries.
func TestOverlapSearchBatchFailurePolicies(t *testing.T) {
	build := func(policy FailurePolicy) (*testFederation, *failingBatchPeer) {
		f := newTestFederation(t, Options{OnSourceError: policy})
		srv := f.servers[0]
		fp := &failingBatchPeer{Peer: &transport.InProc{
			Name: srv.Name, Handler: srv.Handler(), Metrics: f.center.Metrics,
		}}
		f.center.Register(srv.Summary(), fp)
		return f, fp
	}

	f, fp := build(FailFast)
	qs := batchTestQueries(t, f, 5)
	fp.fail = true
	if _, err := f.center.OverlapSearchBatch(context.Background(), qs); err == nil {
		t.Fatal("FailFast batch with a dead source succeeded")
	}

	f, fp = build(SkipFailed)
	f.center.SetCache(cache.New(64))
	qs = batchTestQueries(t, f, 5)
	fp.fail = true
	got, err := f.center.OverlapSearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(qs) {
		t.Fatalf("SkipFailed answered %d of %d queries", len(got), len(qs))
	}
	if f.center.Metrics.Failures()[f.servers[0].Name] == 0 {
		t.Fatal("failure not recorded in metrics")
	}
	// Recover the source: the degraded answers must not have been cached,
	// so the same batch now includes the recovered source's datasets.
	fp.fail = false
	full, err := f.center.OverlapSearchBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		want, err := f.center.OverlapSearch(context.Background(), qs[i].Cells, qs[i].K)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full[i], want) {
			t.Fatalf("query %d: post-recovery batch %v != single %v", i, full[i], want)
		}
	}
}

// TestSearchBatchSourceHandler drives MethodSearchBatch at the wire level:
// alignment, empty entries, and parity with MethodOverlap.
func TestSearchBatchSourceHandler(t *testing.T) {
	f := newTestFederation(t, Options{})
	srv := f.servers[0]
	srv.Workers = 4
	h := srv.Handler()
	q1 := srv.Index.All()[0].Cells
	q2 := srv.Index.All()[1].Cells
	req := SearchBatchRequest{Queries: []OverlapRequest{
		{Cells: q1, K: 3},
		{Cells: nil, K: 3}, // empty query: empty aligned answer
		{Cells: q2, K: 0},  // k=0: empty aligned answer
		{Cells: q2, K: 5},
	}}
	var resp SearchBatchResponse
	callHandler(t, h, MethodSearchBatch, &req, &resp)
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	if len(resp.Results[1].Results) != 0 || len(resp.Results[2].Results) != 0 {
		t.Fatal("degenerate entries must answer empty")
	}
	for _, i := range []int{0, 3} {
		var want OverlapResponse
		callHandler(t, h, MethodOverlap, &OverlapRequest{Cells: req.Queries[i].Cells, K: req.Queries[i].K}, &want)
		if !reflect.DeepEqual(resp.Results[i], want) {
			t.Fatalf("entry %d: batch %v != single %v", i, resp.Results[i], want)
		}
	}
}

// callHandler drives a source handler at the wire level through gob: the
// request is encoded, dispatched, and the handler's answer decoded into
// resp, exactly as an unnegotiated connection would carry it.
func callHandler(t *testing.T, h transport.Handler, method string, req, resp any) {
	t.Helper()
	body, err := transport.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := h(context.Background(), transport.GobCodec, method, body)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := transport.GobCodec.Append(nil, ret)
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.Decode(payload, resp); err != nil {
		t.Fatal(err)
	}
}
