package federation

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/transport"
)

// BatchQuery is one OJSP query of a batched federated search: its cell
// set and its own k.
type BatchQuery struct {
	Cells cellset.Set
	K     int
}

// centerWorkers resolves the center-side pool size for batched execution.
func (c *Center) centerWorkers() int {
	if c.Options.Workers > 0 {
		return c.Options.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// batchPrep is the per-query state the center computes before any network
// traffic: cache key/hit, and which sources are candidates with what clip.
type batchPrep struct {
	cached  bool
	key     string
	members []*member     // candidate sources, name-ordered
	clips   []cellset.Set // aligned with members; non-empty
}

// subEntry is one query of a source's sub-batch: the index into the
// center's batch and the cells clipped for this source.
type subEntry struct {
	qi   int
	clip cellset.Set
}

// OverlapSearchBatch answers a batch of federated OJSP queries in one
// round trip per candidate source: the per-query candidate filtering and
// clipping run on the center's worker pool (Options.Workers), queries are
// grouped by candidate source, each source receives ONE MethodSearchBatch
// carrying only the (clipped) queries it can contribute to, and the
// per-query answers are merged exactly like OverlapSearch would. Entry i
// of the result aligns with queries[i], and each entry is identical to
// what OverlapSearch(queries[i].Cells, queries[i].K) returns — the batch
// shares the same result cache, so mixed single/batched traffic
// deduplicates.
//
// A source that predates MethodSearchBatch (its handler rejects the
// method as unknown) is transparently retried query-by-query over
// MethodOverlap on the same connection; other failures follow
// Options.OnSourceError like every federated query.
func (c *Center) OverlapSearchBatch(ctx context.Context, queries []BatchQuery) ([][]SourceResult, error) {
	out := make([][]SourceResult, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	ep := c.epoch.Load()
	if len(ep.members) == 0 {
		return out, nil
	}
	rc := c.Cache()

	// Phase 1: per-query prep on the pool — cache probe, DITS-G candidate
	// filter, per-source clipping. Queries are independent; each is owned
	// by exactly one worker.
	preps := make([]batchPrep, len(queries))
	var cursor atomic.Int64
	workers := min(c.centerWorkers(), len(queries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				preps[i] = c.prepQuery(ep, rc, queries[i], &out[i])
			}
		}()
	}
	wg.Wait()

	// Phase 2: group by source. A source's sub-batch lists its queries in
	// center-batch order, so responses align deterministically.
	sub := make(map[*member][]subEntry)
	for i := range preps {
		if preps[i].cached {
			continue
		}
		for j, m := range preps[i].members {
			sub[m] = append(sub[m], subEntry{qi: i, clip: preps[i].clips[j]})
		}
	}
	contact := make([]*member, 0, len(sub))
	for m := range sub {
		contact = append(contact, m)
	}
	slices.SortFunc(contact, func(a, b *member) int {
		return cmp.Compare(a.summary.Name, b.summary.Name)
	})

	// Phase 3: one exchange per source (per-query fallback for sources
	// that don't speak search.batch), each on its own goroutine.
	answers, errs := fanOut(contact, func(m *member) ([]OverlapResponse, error) {
		return c.callSearchBatch(ctx, m, sub[m], queries)
	})
	if err := c.resolve(contact, errs, nil); err != nil {
		return nil, err
	}

	// Phase 4: merge per query; queries touched by a failed source are
	// degraded and never cached (the source may recover).
	degraded := make([]bool, len(queries))
	for i, resps := range answers {
		if errs[i] != nil {
			for _, e := range sub[contact[i]] {
				degraded[e.qi] = true
			}
			continue
		}
		name := contact[i].summary.Name
		for j, e := range sub[contact[i]] {
			for _, r := range resps[j].Results {
				out[e.qi] = append(out[e.qi], SourceResult{Source: name, ID: r.ID, Name: r.Name, Overlap: r.Overlap})
			}
		}
	}
	for i := range out {
		if preps[i].cached {
			continue
		}
		sortSourceResults(out[i])
		if len(out[i]) > queries[i].K {
			out[i] = out[i][:queries[i].K]
		}
		if rc != nil && preps[i].key != "" && !degraded[i] {
			rc.Put(preps[i].key, append([]SourceResult(nil), out[i]...))
		}
	}
	return out, nil
}

// prepQuery computes one query's cache/candidate/clip prep. On a cache hit
// the result slot is filled directly and no source work remains.
func (c *Center) prepQuery(ep *epochSnap, rc *cache.Cache, q BatchQuery, slot *[]SourceResult) batchPrep {
	if q.K <= 0 || q.Cells.IsEmpty() {
		return batchPrep{cached: true} // nothing to ask; the slot stays nil
	}
	qn, ok := c.queryNode(q.Cells)
	if !ok {
		return batchPrep{cached: true}
	}
	var p batchPrep
	// The candidate filter runs before the cache probe: the key embeds
	// each candidate's data version (see queryKey), exactly like the
	// single-query path, so batch and single answers share entries and
	// invalidate together.
	cands := c.candidates(ep, qn, 0)
	if rc != nil {
		p.key = c.queryKey(ep.gen, 'O', uint64(q.K), 0, q.Cells, cands)
		if v, ok := rc.Get(p.key); ok {
			cached := v.([]SourceResult)
			*slot = append([]SourceResult(nil), cached...)
			p.cached = true
			return p
		}
	}
	for _, m := range cands {
		clip := c.clipFor(m, q.Cells, 0)
		if clip.IsEmpty() {
			continue
		}
		p.members = append(p.members, m)
		p.clips = append(p.clips, clip)
	}
	return p
}

// callSearchBatch performs one source's batched exchange, falling back to
// query-at-a-time MethodOverlap calls when the source predates the batch
// method. It runs inside the source's fan-out goroutine, preserving the
// one-goroutine-per-peer invariant. The returned slice aligns with
// entries.
func (c *Center) callSearchBatch(ctx context.Context, m *member, entries []subEntry, queries []BatchQuery) ([]OverlapResponse, error) {
	req := SearchBatchRequest{Queries: make([]OverlapRequest, len(entries))}
	for i, e := range entries {
		req.Queries[i] = OverlapRequest{Cells: e.clip, K: queries[e.qi].K}
	}
	var resp SearchBatchResponse
	err := m.peer.Call(ctx, MethodSearchBatch, &req, &resp)
	if isUnknownMethod(err) {
		return c.perQueryFallback(ctx, m, entries, queries)
	}
	if err != nil {
		return nil, fmt.Errorf("federation: search batch at %s: %w", m.summary.Name, err)
	}
	if len(resp.Results) != len(entries) {
		return nil, fmt.Errorf("federation: search batch at %s: %d answers for %d queries",
			m.summary.Name, len(resp.Results), len(entries))
	}
	return resp.Results, nil
}

// perQueryFallback answers a sub-batch one MethodOverlap call at a time —
// the compatibility path for sources that do not implement
// MethodSearchBatch.
func (c *Center) perQueryFallback(ctx context.Context, m *member, entries []subEntry, queries []BatchQuery) ([]OverlapResponse, error) {
	resps := make([]OverlapResponse, len(entries))
	for i, e := range entries {
		req := OverlapRequest{Cells: e.clip, K: queries[e.qi].K}
		if err := m.peer.Call(ctx, MethodOverlap, &req, &resps[i]); err != nil {
			return nil, fmt.Errorf("federation: overlap at %s: %w", m.summary.Name, err)
		}
	}
	return resps, nil
}

// isUnknownMethod reports whether err is a source rejecting an RPC method
// it does not implement — the signal for protocol-version fallback.
func isUnknownMethod(err error) bool {
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "unknown method")
}

// sortSourceResults ranks federated overlap results the canonical way:
// overlap descending, then source name, then dataset ID.
func sortSourceResults(rs []SourceResult) {
	slices.SortFunc(rs, func(a, b SourceResult) int {
		if a.Overlap != b.Overlap {
			return cmp.Compare(b.Overlap, a.Overlap)
		}
		if a.Source != b.Source {
			return cmp.Compare(a.Source, b.Source)
		}
		return cmp.Compare(a.ID, b.ID)
	})
}
