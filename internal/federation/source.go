package federation

import (
	"fmt"

	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
	"dits/internal/transport"
)

// SourceServer is one autonomous data source: it owns its datasets, builds
// its own DITS-L index, and answers the data center's requests. The same
// handler serves both the in-process and the TCP transports.
type SourceServer struct {
	Name  string
	Index *dits.Local
}

// NewSourceServer indexes a source with the given resolution and leaf
// capacity and wraps it for serving.
func NewSourceServer(src *dataset.Source, theta, f int) *SourceServer {
	return &SourceServer{
		Name:  src.Name,
		Index: dits.BuildFromSource(src, theta, f),
	}
}

// NewSourceServerWithGrid indexes pre-gridded dataset nodes. All federation
// members must share the grid for cell IDs to be comparable.
func NewSourceServerWithGrid(name string, idx *dits.Local) *SourceServer {
	return &SourceServer{Name: name, Index: idx}
}

// Summary returns the root-node summary uploaded to the data center.
func (s *SourceServer) Summary() dits.SourceSummary {
	return s.Index.Summary(s.Name)
}

// Handler returns the transport.Handler serving this source.
func (s *SourceServer) Handler() transport.Handler {
	return func(method string, body []byte) ([]byte, error) {
		switch method {
		case MethodOverlap:
			var req OverlapRequest
			if err := transport.Decode(body, &req); err != nil {
				return nil, err
			}
			return transport.Encode(s.handleOverlap(req))
		case MethodCoverage:
			var req CoverageRequest
			if err := transport.Decode(body, &req); err != nil {
				return nil, err
			}
			return transport.Encode(s.handleCoverage(req))
		case MethodStats:
			return transport.Encode(StatsResponse{
				Name:        s.Name,
				NumDatasets: s.Index.Len(),
				TreeNodes:   s.Index.NumTreeNodes(),
				Height:      s.Index.Height(),
			})
		case MethodSummary:
			// Lets a data center bootstrap registration over the wire
			// (§V-B: "each source sends its root node to the data
			// center") instead of requiring out-of-band summaries.
			return transport.Encode(s.Summary())
		default:
			return nil, fmt.Errorf("federation: unknown method %q", method)
		}
	}
}

// handleOverlap runs the local OverlapSearch (Algorithm 2).
func (s *SourceServer) handleOverlap(req OverlapRequest) OverlapResponse {
	q := dataset.NewNodeFromCells(-1, "query", req.Cells)
	if q == nil || req.K <= 0 {
		return OverlapResponse{}
	}
	searcher := &overlap.DITSSearcher{Index: s.Index}
	rs := searcher.TopK(q, req.K)
	resp := OverlapResponse{Results: make([]OverlapItem, len(rs))}
	for i, r := range rs {
		resp.Results[i] = OverlapItem{ID: r.ID, Name: r.Name, Overlap: r.Overlap}
	}
	return resp
}

// handleCoverage runs one greedy iteration locally: FindConnectSet from the
// merged node, then the maximum-marginal-gain pick among non-excluded
// datasets (Algorithm 3's per-iteration body).
func (s *SourceServer) handleCoverage(req CoverageRequest) CoverageCandidate {
	merged := dataset.NewNodeFromCells(-1, "merged", req.Merged)
	if merged == nil {
		return CoverageCandidate{}
	}
	excluded := make(map[int]bool, len(req.Exclude))
	for _, id := range req.Exclude {
		excluded[id] = true
	}
	cands := coverage.FindConnectSet(s.Index.Root, merged, req.Delta)
	mergedC := merged.CompactCells()
	var best *dataset.Node
	bestGain := -1
	for _, nd := range cands {
		if excluded[nd.ID] || nd.Cells.Len() < bestGain {
			continue
		}
		g := mergedC.MarginalGain(nd.CompactCells())
		if g > bestGain || (g == bestGain && best != nil && nd.ID < best.ID) {
			best, bestGain = nd, g
		}
	}
	if best == nil {
		return CoverageCandidate{}
	}
	return CoverageCandidate{
		Found: true,
		ID:    best.ID,
		Name:  best.Name,
		Gain:  bestGain,
		Cells: best.Cells,
	}
}
