package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/obs"
	"dits/internal/search/coverage"
	"dits/internal/search/exec"
	"dits/internal/search/overlap"
	"dits/internal/transport"
)

// Session housekeeping defaults: a source never holds more than
// DefaultMaxSessions coverage sessions and reclaims any session idle
// longer than DefaultSessionTTL. Both bound the memory a center crash (or
// a lost close) can strand at a source.
const (
	DefaultMaxSessions = 128
	DefaultSessionTTL  = 2 * time.Minute
)

// SourceServer is one autonomous data source: it owns its datasets, builds
// its own DITS-L index, and answers the data center's requests. The same
// handler serves both the in-process and the TCP transports.
//
// A SourceServer is safe for concurrent use: the index is immutable after
// construction and the coverage-session table is guarded by a mutex. Any
// one session is only ever driven by one center query at a time (rounds
// are sequential), but different sessions proceed concurrently.
type SourceServer struct {
	Name  string
	Index *dits.Local

	// Workers sizes the per-query execution pool (search/exec): a single
	// traversal is verified by up to Workers goroutines, and batched
	// requests (MethodSearchBatch) share one tree pass across the pool.
	// Zero or one keeps every query on the sequential path. Results are
	// identical either way.
	Workers int

	// MaxSessions and SessionTTL override the eviction defaults when >0.
	MaxSessions int
	SessionTTL  time.Duration

	// store is the durable write path (EnableIngest). When set, every
	// index access — searches, session rounds, stats, summaries — goes
	// through the store's shared lock, so mutations serialize against
	// in-flight requests; when nil the source is read-only and the index
	// immutability contract applies unchanged.
	store *ingest.Store
	// ingestMu serializes mutation RPCs end-to-end (store mutation +
	// response snapshot), so a MutateResponse's Version and Summary always
	// describe the same index state — the center orders summary refreshes
	// by version and that ordering is only sound if the pair is atomic.
	ingestMu sync.Mutex

	mu       sync.Mutex
	sessions map[uint64]*covSession
	now      func() time.Time // test hook; time.Now when nil
}

// covSession is the per-query state of the session-based CJSP: the merged
// result set accumulated from the center's deltas, kept in Compact form,
// its bounds, and the distance index grown with every delta so connectivity
// checks never rebuild from scratch.
type covSession struct {
	merged                 *cellset.Compact
	distIdx                *cellset.DistIndex
	delta                  float64
	minX, minY, maxX, maxY uint32
	lastUsed               time.Time
}

// newCovSession opens session state over the full clipped base set.
func newCovSession(base cellset.Set, delta float64) *covSession {
	cs := &covSession{
		merged:  cellset.FromSet(base),
		distIdx: cellset.NewDistIndex(base, delta),
		delta:   delta,
	}
	cs.minX, cs.minY, cs.maxX, cs.maxY, _ = base.Bounds()
	return cs
}

// absorb unions one round's delta cells into the session.
func (cs *covSession) absorb(added cellset.Set) {
	if added.IsEmpty() {
		return
	}
	cs.merged = cs.merged.Union(cellset.FromSet(added))
	cs.distIdx.Add(added)
	minX, minY, maxX, maxY, ok := added.Bounds()
	if !ok {
		return
	}
	if minX < cs.minX {
		cs.minX = minX
	}
	if minY < cs.minY {
		cs.minY = minY
	}
	if maxX > cs.maxX {
		cs.maxX = maxX
	}
	if maxY > cs.maxY {
		cs.maxY = maxY
	}
}

// node materializes the query node of the merged state without flattening
// the cell set: the geometry comes from the tracked bounds (identical to
// what dataset.NewNodeFromCells would compute from the flat set) and the
// cells ride along in Compact form only.
func (cs *covSession) node() *dataset.Node {
	r := geo.Rect{
		MinX: float64(cs.minX), MinY: float64(cs.minY),
		MaxX: float64(cs.maxX), MaxY: float64(cs.maxY),
	}
	return &dataset.Node{
		ID: -1, Name: "merged", Rect: r, O: r.Center(), R: r.Radius(),
		Compact: cs.merged,
	}
}

// NewSourceServer indexes a source with the given resolution and leaf
// capacity and wraps it for serving.
func NewSourceServer(src *dataset.Source, theta, f int) *SourceServer {
	return &SourceServer{
		Name:  src.Name,
		Index: dits.BuildFromSource(src, theta, f),
	}
}

// NewSourceServerWithGrid indexes pre-gridded dataset nodes. All federation
// members must share the grid for cell IDs to be comparable.
func NewSourceServerWithGrid(name string, idx *dits.Local) *SourceServer {
	return &SourceServer{Name: name, Index: idx}
}

// EnableIngest attaches a durable write path: the server adopts the
// store's live index and starts answering dataset.put / dataset.delete.
// Mutations and searches then share the store's lock — a request sees the
// index either before or after any mutation, never mid-apply, and an open
// CJSP session simply observes each round against the index state current
// at that round (a winner deleted between offer and fetch surfaces as
// Found=false, which the center already handles).
func (s *SourceServer) EnableIngest(st *ingest.Store) {
	s.store = st
	// s.Index is not cached from the store: with an mmap-served store the
	// live index pointer changes at every snapshot swap, so every access
	// goes through view (which reads the store's current index).
	s.Index = nil
}

// NumDatasets returns the current dataset count under the index lock —
// safe against concurrent mutations and snapshot swaps.
func (s *SourceServer) NumDatasets() int {
	var n int
	s.view(func(idx *dits.Local) { n = idx.Len() })
	return n
}

// Store returns the durable ingest store attached with EnableIngest, or
// nil for a read-only source. Callers use it to expose the store's metrics.
func (s *SourceServer) Store() *ingest.Store { return s.store }

// view runs fn with shared access to the index, honoring the store's
// mutation lock when the source is mutable.
func (s *SourceServer) view(fn func(idx *dits.Local)) {
	if s.store != nil {
		s.store.View(fn)
		return
	}
	fn(s.Index)
}

// Summary returns the root-node summary uploaded to the data center.
func (s *SourceServer) Summary() dits.SourceSummary {
	var sum dits.SourceSummary
	s.view(func(idx *dits.Local) { sum = idx.Summary(s.Name) })
	return sum
}

// DataVersion returns the source's current data version: 0 for read-only
// sources, the store's monotonic mutation count otherwise.
func (s *SourceServer) DataVersion() uint64 {
	if s.store == nil {
		return 0
	}
	return s.store.Version()
}

// NumSessions returns the number of live coverage sessions, sweeping any
// whose TTL lapsed first.
func (s *SourceServer) NumSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepLocked(s.clock())
	return len(s.sessions)
}

// Handler returns the transport.Handler serving this source. The context
// carries the center's propagated deadline; search handlers pass it to the
// cancellable executor so abandoned queries stop consuming the source.
func (s *SourceServer) Handler() transport.Handler {
	return func(ctx context.Context, codec transport.Codec, method string, body []byte) (any, error) {
		switch method {
		case MethodOverlap:
			var req OverlapRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleOverlap(ctx, req)
			return &resp, nil
		case MethodSearchBatch:
			var req SearchBatchRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleSearchBatch(ctx, req)
			return &resp, nil
		case MethodCoverage:
			var req CoverageRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleCoverage(ctx, req)
			return &resp, nil
		case MethodCoverageRound:
			var req CoverageRoundRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleCoverageRound(ctx, req)
			return &resp, nil
		case MethodFetchCells:
			var req FetchCellsRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleFetchCells(req)
			return &resp, nil
		case MethodSessionClose:
			var req SessionCloseRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp := s.handleSessionClose(req)
			return &resp, nil
		case MethodDatasetPut:
			var req DatasetPutRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp, err := s.handleDatasetPut(req)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodDatasetDelete:
			var req DatasetDeleteRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			resp, err := s.handleDatasetDelete(req)
			if err != nil {
				return nil, err
			}
			return &resp, nil
		case MethodWALShip:
			var req WALShipRequest
			if err := codec.Decode(body, &req); err != nil {
				return nil, err
			}
			if s.store == nil {
				return nil, fmt.Errorf("federation: source %s has no durable store to ship from", s.Name)
			}
			frames, version, tooOld, err := s.store.ShipWAL(req.After)
			if err != nil {
				return nil, err
			}
			return &WALShipResponse{Frames: frames, Version: version, TooOld: tooOld}, nil
		case MethodSourceVersion:
			return &VersionResponse{
				Name:    s.Name,
				Version: s.DataVersion(),
				Durable: s.store != nil,
			}, nil
		case MethodStats:
			resp := StatsResponse{
				Name:        s.Name,
				Sessions:    s.NumSessions(),
				DataVersion: s.DataVersion(),
				Durable:     s.store != nil,
			}
			s.view(func(idx *dits.Local) {
				resp.NumDatasets = idx.Len()
				resp.TreeNodes = idx.NumTreeNodes()
				resp.Height = idx.Height()
			})
			if s.store != nil {
				ss := s.store.Stats()
				resp.MMap = ss.MMap
				resp.MappedBytes = ss.MappedBytes
				resp.ResidentBytes = ss.ResidentBytes
				resp.OverlayMutations = ss.SinceSnapshot
			}
			return &resp, nil
		case MethodSummary:
			// Lets a data center bootstrap registration over the wire
			// (§V-B: "each source sends its root node to the data
			// center") instead of requiring out-of-band summaries.
			sum := s.Summary()
			return &sum, nil
		default:
			return nil, fmt.Errorf("federation: unknown method %q", method)
		}
	}
}

// executor returns the source's query executor: sequential unless the
// server was configured with Workers > 1.
func (s *SourceServer) executor() *exec.Executor {
	w := s.Workers
	if w < 1 {
		w = 1
	}
	return &exec.Executor{Workers: w}
}

// handleDatasetPut durably upserts a dataset through the ingest store.
func (s *SourceServer) handleDatasetPut(req DatasetPutRequest) (MutateResponse, error) {
	if s.store == nil {
		return MutateResponse{}, fmt.Errorf("federation: source %s is read-only (no ingest store)", s.Name)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	v, err := s.store.PutDataset(req.ID, req.Name, req.Cells)
	if err != nil {
		return MutateResponse{}, err
	}
	return s.mutateResponse(true, v), nil
}

// handleDatasetDelete durably removes a dataset. An unknown ID answers
// Found=false rather than an error, so centers can treat it as idempotent.
func (s *SourceServer) handleDatasetDelete(req DatasetDeleteRequest) (MutateResponse, error) {
	if s.store == nil {
		return MutateResponse{}, fmt.Errorf("federation: source %s is read-only (no ingest store)", s.Name)
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	v, err := s.store.DeleteDataset(req.ID)
	if errors.Is(err, ingest.ErrNotFound) {
		return s.mutateResponse(false, s.store.Version()), nil
	}
	if err != nil {
		return MutateResponse{}, err
	}
	return s.mutateResponse(true, v), nil
}

// mutateResponse snapshots the post-mutation version, summary, and size.
// The caller holds ingestMu, so no other mutation RPC can interleave
// between the apply and this snapshot.
func (s *SourceServer) mutateResponse(found bool, version uint64) MutateResponse {
	resp := MutateResponse{Found: found, Version: version}
	s.view(func(idx *dits.Local) {
		resp.NumDatasets = idx.Len()
		resp.Summary = idx.Summary(s.Name)
	})
	return resp
}

// handleOverlap runs the local OverlapSearch (Algorithm 2), parallelizing
// the traversal across the configured worker pool.
func (s *SourceServer) handleOverlap(ctx context.Context, req OverlapRequest) OverlapResponse {
	q := dataset.NewNodeFromCells(-1, "query", req.Cells)
	if q == nil || req.K <= 0 {
		return OverlapResponse{}
	}
	var rs []overlap.Result
	_, sp := obs.StartSpan(ctx, "exec.overlap")
	s.view(func(idx *dits.Local) {
		if s.Workers > 1 {
			rs, _ = s.executor().OverlapTopK(ctx, idx, q, req.K)
		} else {
			rs = (&overlap.DITSSearcher{Index: idx}).TopK(q, req.K)
		}
	})
	sp.End()
	return overlapResponse(rs)
}

// overlapResponse converts searcher results to the wire shape.
func overlapResponse(rs []overlap.Result) OverlapResponse {
	resp := OverlapResponse{Results: make([]OverlapItem, len(rs))}
	for i, r := range rs {
		resp.Results[i] = OverlapItem{ID: r.ID, Name: r.Name, Overlap: r.Overlap}
	}
	return resp
}

// handleSearchBatch answers a batch of OJSP queries in one shared pass
// over the tree (search/exec): node summaries and compact leaf sets are
// visited once per batch, and verification runs on the worker pool.
func (s *SourceServer) handleSearchBatch(ctx context.Context, req SearchBatchRequest) SearchBatchResponse {
	batch := make([]exec.BatchQuery, len(req.Queries))
	for i, q := range req.Queries {
		batch[i] = exec.BatchQuery{Q: dataset.NewNodeFromCells(-1, "query", q.Cells), K: q.K}
	}
	var outs [][]overlap.Result
	_, sp := obs.StartSpan(ctx, "exec.batch")
	s.view(func(idx *dits.Local) {
		outs, _ = s.executor().OverlapTopKBatch(ctx, idx, batch)
	})
	sp.End()
	resp := SearchBatchResponse{Results: make([]OverlapResponse, len(req.Queries))}
	for i, rs := range outs {
		resp.Results[i] = overlapResponse(rs)
	}
	return resp
}

// handleCoverage runs one stateless greedy iteration: FindConnectSet from
// the merged node, then the maximum-marginal-gain pick among non-excluded
// datasets (Algorithm 3's per-iteration body). Kept as the fallback and
// comparison protocol; the session path below answers the same question
// from accumulated per-session state.
func (s *SourceServer) handleCoverage(ctx context.Context, req CoverageRequest) CoverageCandidate {
	merged := dataset.NewNodeFromCells(-1, "merged", req.Merged)
	if merged == nil {
		return CoverageCandidate{}
	}
	var out CoverageCandidate
	s.view(func(idx *dits.Local) {
		cands := s.findConnectSet(ctx, idx, merged, req.Delta, cellset.NewDistIndex(req.Merged, req.Delta))
		best, bestGain := s.pickBest(cands, merged.CompactCells(), req.Exclude)
		if best == nil {
			return
		}
		out = CoverageCandidate{
			Found: true,
			ID:    best.ID,
			Name:  best.Name,
			Gain:  bestGain,
			Cells: best.FlatCells(),
		}
	})
	return out
}

// findConnectSet runs the connectivity walk, on the worker pool when the
// server is configured for parallel execution. Both paths return the same
// datasets in the same order. The caller holds the index's shared lock.
func (s *SourceServer) findConnectSet(ctx context.Context, idx *dits.Local, qn *dataset.Node, delta float64, qIdx *cellset.DistIndex) []*dataset.Node {
	_, sp := obs.StartSpan(ctx, "exec.connect")
	defer sp.End()
	if s.Workers > 1 {
		return s.executor().FindConnectSet(ctx, idx.Root, qn, delta, qIdx)
	}
	return coverage.FindConnectSetWithIndex(idx.Root, qn, delta, qIdx)
}

// pickBest selects the maximum-marginal-gain dataset among cands against
// the merged state, skipping excluded IDs, with the deterministic
// smallest-ID tie-break shared by both protocol variants. With Workers >
// 1 the marginal gains are computed across the pool (search/exec);
// results are identical.
func (s *SourceServer) pickBest(cands []*dataset.Node, mergedC *cellset.Compact, exclude []int) (*dataset.Node, int) {
	excluded := make(map[int]bool, len(exclude))
	for _, id := range exclude {
		excluded[id] = true
	}
	if s.Workers > 1 {
		return s.executor().PickBest(context.Background(), cands,
			func(id int) bool { return excluded[id] }, mergedC)
	}
	var best *dataset.Node
	bestGain := -1
	for _, nd := range cands {
		if excluded[nd.ID] || nd.Coverage() < bestGain {
			continue
		}
		g := mergedC.MarginalGain(nd.CompactCells())
		if g > bestGain || (g == bestGain && best != nil && nd.ID < best.ID) {
			best, bestGain = nd, g
		}
	}
	return best, bestGain
}

// handleCoverageRound answers one session round: update the session state
// from Base/Added, then offer the best candidate as (ID, Gain) only.
func (s *SourceServer) handleCoverageRound(ctx context.Context, req CoverageRoundRequest) CoverageRoundResponse {
	s.mu.Lock()
	now := s.clock()
	s.sweepLocked(now)
	sess := s.sessions[req.Session]
	stateless := false
	switch {
	case sess == nil && len(req.Base) == 0:
		s.mu.Unlock()
		return CoverageRoundResponse{SessionMiss: true}
	case sess == nil:
		sess = newCovSession(req.Base, req.Delta)
		if len(s.sessions) >= s.maxSessions() {
			// Table full of live sessions: answer from the request's
			// Base without storing — never evict another in-flight
			// query's state. The center falls back to full-state rounds
			// for this source until capacity frees up.
			stateless = true
		} else {
			if s.sessions == nil {
				s.sessions = make(map[uint64]*covSession)
			}
			s.sessions[req.Session] = sess
		}
	case len(req.Base) > 0:
		// Center re-opened after a miss: replace with the full state.
		*sess = *newCovSession(req.Base, req.Delta)
	default:
		sess.absorb(req.Added)
	}
	sess.lastUsed = now
	merged, qn, qIdx, delta := sess.merged, sess.node(), sess.distIdx, sess.delta
	s.mu.Unlock()

	if merged.IsEmpty() {
		return CoverageRoundResponse{Stateless: stateless}
	}
	out := CoverageRoundResponse{Stateless: stateless}
	s.view(func(idx *dits.Local) {
		cands := s.findConnectSet(ctx, idx, qn, delta, qIdx)
		best, bestGain := s.pickBest(cands, merged, req.Exclude)
		if best == nil {
			return
		}
		out.Found, out.ID, out.Name, out.Gain = true, best.ID, best.Name, bestGain
	})
	return out
}

// handleFetchCells ships the winning dataset's full cell set and folds it
// into the session so the next round carries no delta for this source. A
// dataset's cells lie inside the source's root MBR, which is inside every
// clip region the center uses for this source, so the unclipped union is
// exactly what clipping would produce.
func (s *SourceServer) handleFetchCells(req FetchCellsRequest) FetchCellsResponse {
	// Dataset nodes are immutable once published (mutations replace the
	// node object), so the cells stay valid after the lock is released.
	var nd *dataset.Node
	s.view(func(idx *dits.Local) { nd = idx.Get(req.ID) })
	if nd == nil {
		return FetchCellsResponse{}
	}
	cells := nd.FlatCells()
	resp := FetchCellsResponse{Found: true, Cells: cells}
	if req.Session == 0 {
		return resp
	}
	s.mu.Lock()
	s.sweepLocked(s.clock())
	if sess := s.sessions[req.Session]; sess != nil {
		sess.absorb(cells)
		sess.lastUsed = s.clock()
		resp.Committed = true
	}
	s.mu.Unlock()
	return resp
}

// handleSessionClose drops the session, if still present, and sweeps any
// sessions whose TTL lapsed.
func (s *SourceServer) handleSessionClose(req SessionCloseRequest) SessionCloseResponse {
	s.mu.Lock()
	s.sweepLocked(s.clock())
	_, ok := s.sessions[req.Session]
	delete(s.sessions, req.Session)
	s.mu.Unlock()
	return SessionCloseResponse{Closed: ok}
}

// clock returns the current time; the caller holds s.mu.
func (s *SourceServer) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

// maxSessions returns the session-table capacity.
func (s *SourceServer) maxSessions() int {
	if s.MaxSessions > 0 {
		return s.MaxSessions
	}
	return DefaultMaxSessions
}

// sweepLocked reclaims sessions idle past the TTL. It runs on every
// session-table access (rounds, closes, stats), so a crashed center's
// stranded sessions are reclaimed by whatever traffic arrives next. The
// caller holds s.mu.
func (s *SourceServer) sweepLocked(now time.Time) {
	ttl := s.SessionTTL
	if ttl <= 0 {
		ttl = DefaultSessionTTL
	}
	for id, sess := range s.sessions {
		if now.Sub(sess.lastUsed) > ttl {
			delete(s.sessions, id)
		}
	}
}
