package federation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/transport"
)

// switchPeer wraps a peer with a kill switch: once down, every call fails
// with a plain (non-Remote) error, exactly like a dead TCP endpoint.
type switchPeer struct {
	inner transport.Peer
	down  atomic.Bool
	calls atomic.Int64
}

func (p *switchPeer) Call(ctx context.Context, method string, req, resp any) error {
	p.calls.Add(1)
	if p.down.Load() {
		return errors.New("connection refused")
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *switchPeer) Close() error { return nil }

// clusterPlane is a full in-process cluster topology plus the
// single-center oracle built over the SAME source servers, so every
// comparison is between two views of identical data.
type clusterPlane struct {
	oracle   *Center
	cluster  *Cluster
	servers  []*SourceServer
	switches map[string]*switchPeer
}

// buildClusterPlane wires numCenters CenterServers over the m sources of a
// buildFederation world and shards them with a Cluster. Centers alternate
// codecs so the cluster wire rides both gob and the binary passthrough.
func buildClusterPlane(t *testing.T, seed int64, numCenters, m, perSource int) *clusterPlane {
	t.Helper()
	oracle, _, servers := buildFederation(rand.New(rand.NewSource(seed)), m, perSource, DefaultOptions())
	g := worldGrid()
	byName := make(map[string]*SourceServer, len(servers))
	for _, s := range servers {
		byName[s.Name] = s
	}
	peers := make(map[string]transport.Peer, numCenters)
	switches := make(map[string]*switchPeer, numCenters)
	for i := 0; i < numCenters; i++ {
		name := fmt.Sprintf("center-%d", i)
		c := NewCenter(g, DefaultOptions())
		cs, err := NewCenterServer(name, c, CenterServerOptions{
			Dial: func(addr string) (transport.Peer, error) {
				srv, ok := byName[addr]
				if !ok {
					return nil, fmt.Errorf("no source at %q", addr)
				}
				return &transport.InProc{Name: srv.Name, Handler: srv.Handler(), Metrics: c.Metrics}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cs.Close() })
		var codec transport.Codec
		if i%2 == 1 {
			codec = BinaryCodec
		}
		sp := &switchPeer{inner: &transport.InProc{
			Name: name, Handler: cs.Handler(), Metrics: &transport.Metrics{}, Codec: codec,
		}}
		peers[name] = sp
		switches[name] = sp
	}
	cluster := NewCluster(g, peers)
	for _, srv := range servers {
		if err := cluster.AddSource(context.Background(), ClusterSource{Name: srv.Name, Addr: srv.Name}); err != nil {
			t.Fatal(err)
		}
	}
	return &clusterPlane{oracle: oracle, cluster: cluster, servers: servers, switches: switches}
}

func sameResults(t *testing.T, label string, got, want []SourceResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d\n  got  %v\n  want %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s result %d: %+v, oracle %+v", label, i, got[i], want[i])
		}
	}
}

// TestClusterParityWithSingleCenter: scattering across 2 and 3 centers
// with uneven shards must reproduce the single-center answers byte for
// byte — OJSP top-k, batches, and the full CJSP greedy trajectory.
func TestClusterParityWithSingleCenter(t *testing.T) {
	for _, numCenters := range []int{2, 3} {
		t.Run(fmt.Sprintf("centers=%d", numCenters), func(t *testing.T) {
			// 5 sources cannot split evenly over 2 or 3 centers, so the
			// shards are guaranteed uneven.
			p := buildClusterPlane(t, 21, numCenters, 5, 80)
			shards := p.cluster.Shards()
			sizes := make(map[int]bool)
			total := 0
			for _, srcs := range shards {
				sizes[len(srcs)] = true
				total += len(srcs)
			}
			if total != 5 {
				t.Fatalf("shards cover %d sources, want 5: %v", total, shards)
			}
			if len(shards) > 1 && len(sizes) < 2 {
				t.Fatalf("shards unexpectedly even: %v", shards)
			}

			rng := rand.New(rand.NewSource(31))
			ctx := context.Background()
			for trial := 0; trial < 20; trial++ {
				q := randomQuery(rng)
				for _, k := range []int{1, 5, 20} {
					want, err := p.oracle.OverlapSearch(ctx, q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := p.cluster.OverlapSearch(ctx, q, k)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, fmt.Sprintf("trial %d k=%d", trial, k), got, want)
				}
				for _, delta := range []float64{0, 2, 6} {
					want, err := p.oracle.CoverageSearch(ctx, q, delta, 4)
					if err != nil {
						t.Fatal(err)
					}
					got, err := p.cluster.CoverageSearch(ctx, q, delta, 4)
					if err != nil {
						t.Fatal(err)
					}
					if got.Coverage != want.Coverage || got.QueryCoverage != want.QueryCoverage {
						t.Fatalf("trial %d δ=%v: coverage %d/%d, oracle %d/%d",
							trial, delta, got.Coverage, got.QueryCoverage, want.Coverage, want.QueryCoverage)
					}
					sameResults(t, fmt.Sprintf("trial %d δ=%v picks", trial, delta), got.Picked, want.Picked)
				}
			}

			// Batches merge per query index.
			batch := []BatchQuery{
				{Cells: randomQuery(rng), K: 3},
				{Cells: randomQuery(rng), K: 1},
				{Cells: randomQuery(rng), K: 10},
				{Cells: nil, K: 5},
			}
			want, err := p.oracle.OverlapSearchBatch(ctx, batch)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.cluster.OverlapSearchBatch(ctx, batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range batch {
				sameResults(t, fmt.Sprintf("batch query %d", i), got[i], want[i])
			}
		})
	}
}

// TestClusterKBoundaryTies: datasets tying exactly at the k boundary must
// be broken identically by the scatter/gather merge and the single center
// — the (overlap, source, id) total order leaves no room for shard
// placement to leak into the answer.
func TestClusterKBoundaryTies(t *testing.T) {
	g := worldGrid()
	tie := cellsNear(20, 20, 9)
	oracle := NewCenter(g, DefaultOptions())
	var servers []*SourceServer
	byName := make(map[string]*SourceServer)
	// Six sources, two datasets each, all with the SAME cell set: every
	// dataset overlaps the query by exactly 9, so any k below 12 cuts
	// through a full tie group.
	for s := 0; s < 6; s++ {
		name := srcName(s)
		nodes := []*dataset.Node{
			dataset.NewNodeFromCells(s*100+1, "t1", tie),
			dataset.NewNodeFromCells(s*100+2, "t2", tie),
		}
		srv := NewSourceServerWithGrid(name, dits.Build(g, nodes, 4))
		servers = append(servers, srv)
		byName[name] = srv
		oracle.Register(srv.Summary(), &transport.InProc{Name: name, Handler: srv.Handler(), Metrics: oracle.Metrics})
	}
	peers := make(map[string]transport.Peer)
	for i := 0; i < 3; i++ {
		cname := fmt.Sprintf("center-%d", i)
		c := NewCenter(g, DefaultOptions())
		cs, err := NewCenterServer(cname, c, CenterServerOptions{
			Dial: func(addr string) (transport.Peer, error) {
				srv := byName[addr]
				return &transport.InProc{Name: srv.Name, Handler: srv.Handler(), Metrics: c.Metrics}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cs.Close() })
		peers[cname] = &transport.InProc{Name: cname, Handler: cs.Handler(), Metrics: &transport.Metrics{}}
	}
	cluster := NewCluster(g, peers)
	for _, srv := range servers {
		if err := cluster.AddSource(context.Background(), ClusterSource{Name: srv.Name, Addr: srv.Name}); err != nil {
			t.Fatal(err)
		}
	}
	// The tie group must actually straddle centers for the test to bite.
	if owners := cluster.Stats().SourceOwners; len(owners) != 6 {
		t.Fatalf("owners = %v", owners)
	} else {
		distinct := make(map[string]bool)
		for _, c := range owners {
			distinct[c] = true
		}
		if len(distinct) < 2 {
			t.Fatalf("all sources landed on one center, ties never cross shards: %v", owners)
		}
	}
	ctx := context.Background()
	for _, k := range []int{1, 3, 5, 11, 12, 40} {
		want, err := oracle.OverlapSearch(ctx, tie, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cluster.OverlapSearch(ctx, tie, k)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("k=%d", k), got, want)
		if k <= 12 && len(got) != k {
			t.Fatalf("k=%d returned %d results with 12 available", k, len(got))
		}
	}
	// CJSP over an all-tie corpus: every greedy pick is a pure tie-break.
	want, err := oracle.CoverageSearch(ctx, tie, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.CoverageSearch(ctx, tie, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "coverage picks", got.Picked, want.Picked)
	if got.Coverage != want.Coverage {
		t.Fatalf("coverage %d, oracle %d", got.Coverage, want.Coverage)
	}
}

// TestClusterCenterFailover kills centers one by one: queries must keep
// answering with single-center parity after each re-homing, mutations must
// re-route to the new owner, and the last kill must surface ErrNoCenters.
func TestClusterCenterFailover(t *testing.T) {
	p := buildClusterPlane(t, 41, 3, 5, 60)
	// Make the sources mutable so post-failover writes can be proven.
	for _, srv := range p.servers {
		idx := srv.Index
		st, err := ingest.Open(t.TempDir(), ingest.Options{
			Fsync:         ingest.FsyncNever,
			SnapshotEvery: -1,
			Bootstrap:     func() (*dits.Local, error) { return idx, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		srv.EnableIngest(st)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(51))
	q := randomQuery(rng)
	check := func(label string) {
		t.Helper()
		want, err := p.oracle.OverlapSearch(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.cluster.OverlapSearch(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, label, got, want)
	}
	check("before failover")

	// Kill a center that owns at least one source; the next query detects
	// the dead center in-band, re-homes its shard, and still answers.
	owners := p.cluster.Stats().SourceOwners
	var victim, movedSource string
	for src, c := range owners {
		victim, movedSource = c, src
		break
	}
	p.switches[victim].down.Store(true)
	check("after in-band failover")
	st := p.cluster.Stats()
	if st.Healthy != 2 || st.Failovers < 1 || st.Generation == 0 {
		t.Fatalf("stats after kill = %+v", st)
	}
	for src, c := range st.SourceOwners {
		if c == victim {
			t.Fatalf("source %s still owned by dead center %s", src, c)
		}
	}
	if len(st.SourceOwners) != 5 {
		t.Fatalf("%d sources owned after re-homing, want 5: %v", len(st.SourceOwners), st.SourceOwners)
	}

	// A write to a source the dead center used to own re-routes to the
	// re-homed owner and is immediately visible in reads.
	spot := cellsNear(40, 40, 7)
	res, err := p.cluster.PutDataset(ctx, movedSource, 990001, "post-failover", spot)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version == 0 {
		t.Fatalf("put result = %+v", res)
	}
	if got := p.cluster.SourceVersions()[movedSource]; got != res.Version {
		t.Fatalf("acked version vector holds %d, want %d", got, res.Version)
	}
	rs, err := p.cluster.OverlapSearch(ctx, spot, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].ID != 990001 || rs[0].Source != movedSource {
		t.Fatalf("post-failover write not visible: %v", rs)
	}
	if _, err := p.cluster.DeleteDataset(ctx, movedSource, 990001); err != nil {
		t.Fatal(err)
	}

	// Kill a second center, detected by the health probe this time.
	var second string
	for name, sp := range p.switches {
		if name != victim && !sp.down.Load() {
			second = name
			break
		}
	}
	p.switches[second].down.Store(true)
	if downed := p.cluster.Probe(ctx); downed != 1 {
		t.Fatalf("probe marked %d centers down, want 1", downed)
	}
	check("single surviving center")
	if st := p.cluster.Stats(); st.Healthy != 1 {
		t.Fatalf("stats after second kill = %+v", st)
	}

	// Killing the last center leaves nothing to serve from.
	for _, sp := range p.switches {
		sp.down.Store(true)
	}
	if _, err := p.cluster.OverlapSearch(ctx, q, 3); !errors.Is(err, ErrNoCenters) {
		t.Fatalf("all centers dead: err = %v, want ErrNoCenters", err)
	}
	if _, err := p.cluster.PutDataset(ctx, movedSource, 1, "x", spot); !errors.Is(err, ErrNoCenters) {
		t.Fatalf("mutation with all centers dead: err = %v, want ErrNoCenters", err)
	}
	// Unknown sources still map to ErrUnknownSource, not ErrNoCenters.
	if _, err := p.cluster.PutDataset(ctx, "nope", 1, "x", spot); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("unknown source: err = %v, want ErrUnknownSource", err)
	}
}

// TestReplicatedPeerFailover: reads fail over past a dead primary, stick
// to the serving replica, refuse to fail over on RemoteErrors, and
// mutations always pin to the primary.
func TestReplicatedPeerFailover(t *testing.T) {
	g := worldGrid()
	nd := dataset.NewNodeFromCells(7, "r", cellsNear(12, 12, 5))
	srv := NewSourceServerWithGrid("rsrc", dits.Build(g, []*dataset.Node{nd}, 4))
	primary := &switchPeer{inner: &transport.InProc{Name: "rsrc", Handler: srv.Handler()}}
	replica := &switchPeer{inner: &transport.InProc{Name: "rsrc", Handler: srv.Handler()}}
	rp := NewReplicatedPeer("rsrc", primary, replica)
	ctx := context.Background()

	var resp VersionResponse
	if err := rp.Call(ctx, MethodSourceVersion, nil, &resp); err != nil {
		t.Fatal(err)
	}
	if replica.calls.Load() != 0 {
		t.Fatal("healthy primary: replica should not be contacted")
	}

	// Dead primary: the read fails over, and the NEXT read goes straight
	// to the replica (sticky index, no re-dial against the corpse).
	primary.down.Store(true)
	if err := rp.Call(ctx, MethodSourceVersion, nil, &resp); err != nil {
		t.Fatal(err)
	}
	before := primary.calls.Load()
	if err := rp.Call(ctx, MethodSourceVersion, nil, &resp); err != nil {
		t.Fatal(err)
	}
	if primary.calls.Load() != before {
		t.Fatal("reads after failover must stick to the replica")
	}

	// Mutations pin to the primary: with it down they fail even though the
	// replica is reachable — failing a write over would fork the history.
	if err := rp.Call(ctx, MethodDatasetPut, &DatasetPutRequest{ID: 9, Cells: cellsNear(1, 1, 3)}, &MutateResponse{}); err == nil {
		t.Fatal("mutation must not fail over to a replica")
	}

	// A RemoteError comes back verbatim: the endpoint answered, so trying
	// elsewhere would turn a deterministic error into a different answer.
	primary.down.Store(false)
	rp2 := NewReplicatedPeer("rsrc", primary, replica)
	err := rp2.Call(ctx, MethodWALShip, &WALShipRequest{}, &WALShipResponse{})
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("storeless wal.ship: err = %v, want RemoteError", err)
	}

	// Every endpoint dead: the wrapped error names the source.
	primary.down.Store(true)
	replica.down.Store(true)
	if err := rp.Call(ctx, MethodSourceVersion, nil, &resp); err == nil {
		t.Fatal("all endpoints dead must error")
	}
}

// TestReplicatorCatchUpOverTransport drives the WAL-shipping loop through
// the real source handler: a replica store pulls the primary's tail keyed
// on its own version, applies idempotently, and resumes across restarts
// without duplicate applies.
func TestReplicatorCatchUpOverTransport(t *testing.T) {
	g := worldGrid()
	empty := func() (*dits.Local, error) { return dits.Build(g, nil, 4), nil }
	primarySt, err := ingest.Open(t.TempDir(), ingest.Options{
		Fsync: ingest.FsyncNever, SnapshotEvery: -1, Bootstrap: empty,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primarySt.Close()
	srv := NewSourceServerWithGrid("p", primarySt.Index())
	srv.EnableIngest(primarySt)
	peer := &switchPeer{inner: &transport.InProc{Name: "p", Handler: srv.Handler()}}

	for i := 1; i <= 10; i++ {
		if _, err := primarySt.PutDataset(i, "d", cellsNear(i, i, 4)); err != nil {
			t.Fatal(err)
		}
	}

	replicaDir := t.TempDir()
	openReplica := func() *ingest.Store {
		st, err := ingest.Open(replicaDir, ingest.Options{
			Fsync: ingest.FsyncNever, SnapshotEvery: -1, Replica: true, Bootstrap: empty,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	replicaSt := openReplica()
	r := &Replicator{Store: replicaSt, Primary: peer}
	ctx := context.Background()

	applied, err := r.CatchUpOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 10 || replicaSt.Version() != primarySt.Version() {
		t.Fatalf("caught up %d records to version %d, primary at %d",
			applied, replicaSt.Version(), primarySt.Version())
	}
	// A replica store refuses local mutations — its history comes only
	// from the primary.
	if _, err := replicaSt.PutDataset(99, "x", cellsNear(2, 2, 3)); !errors.Is(err, ingest.ErrReplica) {
		t.Fatalf("replica local mutation: err = %v, want ErrReplica", err)
	}

	// New primary writes: the next pull ships only the delta.
	for i := 11; i <= 15; i++ {
		if _, err := primarySt.PutDataset(i, "d", cellsNear(i, i, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if applied, err = r.CatchUpOnce(ctx); err != nil || applied != 5 {
		t.Fatalf("delta pull applied %d (err %v), want 5", applied, err)
	}

	// Restart the replica mid-stream: it resumes from its persisted
	// version — zero duplicate applies, then exactly the new delta.
	if err := replicaSt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := primarySt.PutDataset(16, "d", cellsNear(16, 16, 4)); err != nil {
		t.Fatal(err)
	}
	replicaSt = openReplica()
	defer replicaSt.Close()
	r = &Replicator{Store: replicaSt, Primary: peer}
	if applied, err = r.CatchUpOnce(ctx); err != nil || applied != 1 {
		t.Fatalf("post-restart pull applied %d (err %v), want exactly 1", applied, err)
	}
	if replicaSt.Version() != primarySt.Version() {
		t.Fatalf("replica at %d, primary at %d", replicaSt.Version(), primarySt.Version())
	}

	// The caught-up replica serves the primary's exact corpus.
	rsrv := NewSourceServerWithGrid("p", replicaSt.Index())
	rsrv.EnableIngest(replicaSt)
	q := cellsNear(13, 13, 4)
	oracle := NewCenter(g, DefaultOptions())
	oracle.Register(srv.Summary(), &transport.InProc{Name: "p", Handler: srv.Handler(), Metrics: oracle.Metrics})
	want, err := oracle.OverlapSearch(ctx, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	promoted := NewCenter(g, DefaultOptions())
	promoted.Register(rsrv.Summary(), &transport.InProc{Name: "p", Handler: rsrv.Handler(), Metrics: promoted.Metrics})
	got, err := promoted.OverlapSearch(ctx, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "promoted replica", got, want)

	// A dead primary surfaces as a transport error the Run loop retries.
	peer.down.Store(true)
	if _, err := r.CatchUpOnce(ctx); err == nil {
		t.Fatal("pull from a dead primary must error")
	}
}

// TestCenterServerMemberLogRestart: a restarted center re-adopts its
// logged shard without any gateway involvement, a member that cannot be
// re-dialed is skipped (not fatal), and unregistrations survive too.
func TestCenterServerMemberLogRestart(t *testing.T) {
	g := worldGrid()
	byName := make(map[string]*SourceServer)
	for s := 0; s < 2; s++ {
		name := srcName(s)
		nd := dataset.NewNodeFromCells(s+1, "m", cellsNear(10+s*20, 10, 6))
		byName[name] = NewSourceServerWithGrid(name, dits.Build(g, []*dataset.Node{nd}, 4))
	}
	logPath := filepath.Join(t.TempDir(), "members.log")
	dial := func(addr string) (transport.Peer, error) {
		srv, ok := byName[addr]
		if !ok {
			return nil, fmt.Errorf("no source at %q", addr)
		}
		return &transport.InProc{Name: srv.Name, Handler: srv.Handler()}, nil
	}
	open := func() *CenterServer {
		cs, err := NewCenterServer("c0", NewCenter(g, DefaultOptions()), CenterServerOptions{
			MemberLog: logPath, Dial: dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}
	ctx := context.Background()
	cs := open()
	gate := &transport.InProc{Name: "c0", Handler: cs.Handler()}
	for name := range byName {
		var resp ClusterRegisterResponse
		if err := gate.Call(ctx, MethodClusterRegister, &ClusterRegisterRequest{Name: name, Addr: name}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if n := cs.Center().NumSources(); n != 2 {
		t.Fatalf("registered %d sources, want 2", n)
	}
	cs.Close()

	// Restart: the shard comes back from the log alone.
	cs = open()
	if n := cs.Center().NumSources(); n != 2 {
		t.Fatalf("after restart %d sources, want 2", n)
	}
	if len(cs.Skipped()) != 0 {
		t.Fatalf("skipped = %v, want none", cs.Skipped())
	}
	rs, err := cs.Center().OverlapSearch(ctx, cellsNear(10, 10, 6), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("re-adopted sources must answer queries")
	}
	// Unregister one and restart again: the leave is durable.
	gate = &transport.InProc{Name: "c0", Handler: cs.Handler()}
	var unresp ClusterUnregisterResponse
	if err := gate.Call(ctx, MethodClusterUnregister, &ClusterUnregisterRequest{Name: srcName(0)}, &unresp); err != nil {
		t.Fatal(err)
	}
	if unresp.NumSources != 1 {
		t.Fatalf("after unregister NumSources = %d", unresp.NumSources)
	}
	cs.Close()
	cs = open()
	if n := cs.Center().NumSources(); n != 1 {
		t.Fatalf("after unregister+restart %d sources, want 1", n)
	}
	cs.Close()

	// A logged member whose endpoint is gone at boot is skipped, and the
	// rest of the shard still comes up.
	log, _, err := OpenMemberLog(logPath, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(MemberEvent{Op: MemberJoin, Name: "ghost", Addr: "ghost"}); err != nil {
		t.Fatal(err)
	}
	log.Close()
	cs = open()
	defer cs.Close()
	if got := cs.Skipped(); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("skipped = %v, want [ghost]", got)
	}
	if n := cs.Center().NumSources(); n != 1 {
		t.Fatalf("with ghost member %d sources, want 1", n)
	}
}
