package federation

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"dits/internal/cellset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
)

// codecTestMessages is one populated instance of every federation wire
// message — the corpus for the gob/binary differential tests and the
// fuzz seeds. Fields cover the edge shapes: nil and huge cell sets,
// negative ints, empty and non-ASCII strings.
func codecTestMessages() []any {
	big := make([]uint64, 0, 6000)
	for i := 0; i < 6000; i++ { // one bitmap chunk plus array chunks
		big = append(big, uint64(i)*3)
	}
	bigSet := cellset.New(big...)
	small := cellset.New(7, 9, 1<<30)
	summary := dits.SourceSummary{
		Name:  "src-α",
		Rect:  geo.Rect{MinX: -1.5, MinY: 0, MaxX: 2.25, MaxY: 1e9},
		O:     geo.Point{X: 0.375, Y: -12},
		R:     99.5,
		Theta: 12,
	}
	return []any{
		&OverlapRequest{Cells: bigSet, K: 10},
		&OverlapRequest{Cells: nil, K: -1},
		&OverlapResponse{Results: []OverlapItem{
			{ID: 1, Name: "a", Overlap: 3},
			{ID: -7, Name: "", Overlap: 0},
			{ID: 1 << 40, Name: strings.Repeat("名", 100), Overlap: -2},
		}},
		&OverlapResponse{},
		&SearchBatchRequest{Queries: []OverlapRequest{
			{Cells: small, K: 1}, {Cells: nil, K: 0}, {Cells: bigSet, K: 100},
		}},
		&SearchBatchRequest{},
		&SearchBatchResponse{Results: []OverlapResponse{
			{Results: []OverlapItem{{ID: 2, Name: "x", Overlap: 9}}},
			{},
		}},
		&CoverageRequest{Merged: bigSet, Delta: 10.5, Exclude: []int{3, -4, 1 << 33}},
		&CoverageRequest{Merged: small, Delta: 0},
		&CoverageCandidate{Found: true, ID: 12, Name: "cand", Gain: 44, Cells: small},
		&CoverageCandidate{},
		&CoverageRoundRequest{Session: 1 << 60, Base: bigSet, Added: small, Delta: 2, Exclude: []int{1}},
		&CoverageRoundRequest{Session: 1, Added: small},
		&CoverageRoundResponse{SessionMiss: true, Stateless: true, Found: true, ID: 5, Name: "w", Gain: 17},
		&CoverageRoundResponse{},
		&FetchCellsRequest{Session: 42, ID: -9},
		&FetchCellsResponse{Found: true, Committed: true, Cells: bigSet},
		&FetchCellsResponse{},
		&SessionCloseRequest{Session: ^uint64(0)},
		&SessionCloseResponse{Closed: true},
		&StatsResponse{Name: "s", NumDatasets: 4, TreeNodes: 9, Height: 2, Sessions: 1, DataVersion: 77, Durable: true},
		&DatasetPutRequest{ID: 3, Name: "d", Cells: small},
		&DatasetDeleteRequest{ID: 1 << 50},
		&MutateResponse{Found: true, Version: 8, NumDatasets: 2, Summary: summary},
		&VersionRequest{},
		&VersionResponse{Name: "v", Version: 3, Durable: true},
		&summary,
	}
}

// fresh returns a new zero value of the same pointed-to type as m.
func fresh(m any) any {
	return reflect.New(reflect.TypeOf(m).Elem()).Interface()
}

// TestCodecDifferential: every message must round-trip identically
// through the gob codec and through the binary codec — the binary wire
// form may differ, but the decoded value must not.
func TestCodecDifferential(t *testing.T) {
	for _, m := range codecTestMessages() {
		name := fmt.Sprintf("%T", m)
		for _, codec := range []transport.Codec{transport.GobCodec, BinaryCodec} {
			wire, err := codec.Append(nil, m)
			if err != nil {
				t.Fatalf("%s/%s: encode: %v", name, codec.Name(), err)
			}
			got := fresh(m)
			if err := codec.Decode(wire, got); err != nil {
				t.Fatalf("%s/%s: decode: %v", name, codec.Name(), err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Errorf("%s/%s: round trip diverged:\n got %+v\nwant %+v", name, codec.Name(), got, m)
			}
		}
	}
}

// TestCodecBinarySmaller: the binary form of cell-set-bearing messages
// must undercut gob — the whole point of the codec.
func TestCodecBinarySmaller(t *testing.T) {
	for _, m := range codecTestMessages() {
		gob, err := transport.GobCodec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		bin, err := BinaryCodec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		// Gob amortizes type descriptors across a stream; per-frame it
		// re-ships them, so binary should never lose by more than noise.
		if len(bin) > len(gob) {
			t.Errorf("%T: binary %dB > gob %dB", m, len(bin), len(gob))
		}
	}
}

// TestCodecGobPassthrough: a type without a native binary encoding rides
// a binary connection as a tagged gob stream.
func TestCodecGobPassthrough(t *testing.T) {
	type exotic struct{ A, B string }
	wire, err := BinaryCodec.Append(nil, &exotic{A: "x", B: "y"})
	if err != nil {
		t.Fatal(err)
	}
	if wire[0] != tagGob {
		t.Fatalf("exotic type not gob-tagged: %q", wire[0])
	}
	var got exotic
	if err := BinaryCodec.Decode(wire, &got); err != nil {
		t.Fatal(err)
	}
	if got.A != "x" || got.B != "y" {
		t.Fatalf("gob passthrough corrupted: %+v", got)
	}
}

// TestCodecRejectsCorrupt: wrong tags, wrong message types, trailing
// garbage, and truncation all error.
func TestCodecRejectsCorrupt(t *testing.T) {
	var resp OverlapResponse
	if err := BinaryCodec.Decode(nil, &resp); err == nil {
		t.Error("empty payload accepted")
	}
	if err := BinaryCodec.Decode([]byte{'Z', 1}, &resp); err == nil {
		t.Error("unknown content tag accepted")
	}
	if err := BinaryCodec.Decode([]byte{tagBin}, &resp); err == nil {
		t.Error("missing message type accepted")
	}
	if err := BinaryCodec.Decode([]byte{tagBin, msgOverlapReq}, &resp); err == nil {
		t.Error("wrong message type accepted")
	}
	wire, err := BinaryCodec.Append(nil, &OverlapRequest{Cells: cellset.New(1, 2), K: 5})
	if err != nil {
		t.Fatal(err)
	}
	var req OverlapRequest
	if err := BinaryCodec.Decode(append(wire, 0), &req); err == nil {
		t.Error("trailing bytes accepted")
	}
	for cut := 1; cut < len(wire); cut++ {
		var req OverlapRequest
		if err := BinaryCodec.Decode(wire[:cut], &req); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestCodecAppendZeroAlloc: with a warm destination buffer the encode
// path must not allocate — it runs inside the transport's pooled-buffer
// hot loop for every RPC.
func TestCodecAppendZeroAlloc(t *testing.T) {
	for _, m := range codecTestMessages() {
		m := m
		wire, err := BinaryCodec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, 0, len(wire)+64)
		if allocs := testing.AllocsPerRun(100, func() {
			dst, _ = BinaryCodec.Append(dst[:0], m)
		}); allocs != 0 {
			t.Errorf("%T: encode allocated %.1f times", m, allocs)
		}
	}
}

// FuzzCodec hammers the binary decoder with arbitrary frames against
// every message type: it must return an error or a value, never panic,
// and anything accepted must re-encode and re-decode stably.
func FuzzCodec(f *testing.F) {
	msgs := codecTestMessages()
	for _, m := range msgs {
		wire, err := BinaryCodec.Append(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	f.Add([]byte{tagBin, msgOverlapReq, 0, 2})
	f.Add([]byte{tagGob, 0xff, 0x81})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, m := range msgs {
			v := fresh(m)
			if err := BinaryCodec.Decode(data, v); err != nil {
				continue
			}
			wire, err := BinaryCodec.Append(nil, v)
			if err != nil {
				t.Fatalf("%T: accepted frame does not re-encode: %v", v, err)
			}
			again := fresh(m)
			if err := BinaryCodec.Decode(wire, again); err != nil {
				t.Fatalf("%T: re-encoded frame does not decode: %v", v, err)
			}
			if !reflect.DeepEqual(again, v) {
				t.Fatalf("%T: re-decode diverged", v)
			}
		}
	})
}
