// Package federation implements the multi-source joinable search framework
// of §IV and §VI-A: autonomous source servers each holding a DITS-L index,
// and a data center holding the DITS-G global index, distributing queries
// to candidate sources only and shipping only the clipped portion of the
// query each source can possibly match.
//
// # Concurrency and ownership
//
// A Center is safe for unrestricted concurrent use. Membership lives in
// an immutable epoch snapshot behind an atomic pointer: a query loads it
// once and owns that consistent view — member set, DITS-G, generation —
// for its whole lifetime, while Register/Unregister build and publish the
// next snapshot under the center's mutex. Nothing a query reads from a
// snapshot may be mutated, ever; membership changes copy.
//
// A SourceServer is safe for concurrent use: its index is immutable
// after construction (the DITS-L read contract), its handler may run on
// any number of transport connections at once, and with Workers > 1 a
// single request additionally fans its traversal out to a worker pool
// (search/exec) that owns no state beyond the request. The only mutable
// source state is the coverage-session table, guarded by the server's
// mutex; one session is driven by one center query at a time (rounds are
// sequential by protocol), while distinct sessions proceed concurrently.
// Peers registered with a center must tolerate concurrent Call — wrap
// TCP connections in a transport.Pool; each fan-out goroutine drives one
// peer exchange at a time.
package federation

import (
	"dits/internal/cellset"
	"dits/internal/index/dits"
)

// Method names of the source-server protocol.
const (
	MethodOverlap  = "overlap.search"
	MethodCoverage = "coverage.best"
	MethodStats    = "source.stats"
	MethodSummary  = "source.summary"

	// Session protocol (CJSP). One coverage query opens one session per
	// contacted source; rounds ship only the delta since the previous
	// round, and only the winning source ships cells back (two-phase).
	MethodCoverageRound = "coverage.round"
	MethodFetchCells    = "coverage.fetch"
	MethodSessionClose  = "coverage.close"

	// MethodSearchBatch ships a whole batch of OJSP queries in ONE
	// request/response exchange: the source answers every query of the
	// batch in a single pass over its DITS-L tree (search/exec), and the
	// center pays one round trip per source per batch instead of one per
	// query per source.
	MethodSearchBatch = "search.batch"

	// Ingestion protocol. A source backed by a durable store
	// (internal/ingest) accepts dataset mutations: each is WAL-logged
	// before it touches the live index, serialized against in-flight
	// searches, and bumps the source's monotonic data version. A source
	// without a store rejects both mutation methods as read-only.
	MethodDatasetPut    = "dataset.put"
	MethodDatasetDelete = "dataset.delete"
	// MethodSourceVersion reports the source's current data version, so a
	// center can audit its cached version vector against the source.
	MethodSourceVersion = "source.version"

	// MethodWALShip ships the WAL tail of a durable source to a catching-up
	// replica: the request carries the replica's data version and the
	// response the raw WAL frames beyond it (see ingest.ShipWAL). Replicas
	// poll it; a caught-up replica gets an empty batch.
	MethodWALShip = "wal.ship"
)

// Method names of the cluster protocol — the surface a CenterServer
// exposes to the gateway's scatter/gather plane. All cluster request and
// response types ride the transports' gob passthrough, so they need no
// per-codec support.
const (
	// MethodClusterInfo is the health probe and shard audit: it reports the
	// center's name, membership generation, and registered source names.
	MethodClusterInfo = "cluster.info"
	// MethodClusterRegister tells a center to adopt a source: the center
	// dials the source (and its replicas), fetches its summary, and
	// registers it — appending the event to its membership log first, so a
	// restarted center re-joins with the same shard.
	MethodClusterRegister = "cluster.register"
	// MethodClusterUnregister removes a source from the center's shard.
	MethodClusterUnregister = "cluster.unregister"
	// MethodClusterOverlap answers a federated OJSP over the center's shard.
	MethodClusterOverlap = "cluster.overlap"
	// MethodClusterBatch answers a batch of OJSP queries over the shard.
	MethodClusterBatch = "cluster.batch"
	// MethodClusterCovStep runs ONE greedy CJSP iteration over the shard:
	// the gateway drives the cross-center greedy loop, each round asking
	// every center for its shard's best offer and merging the global winner.
	MethodClusterCovStep = "cluster.covstep"
	// MethodClusterPut / MethodClusterDelete route a dataset mutation
	// through the center owning the source.
	MethodClusterPut    = "cluster.put"
	MethodClusterDelete = "cluster.delete"
)

// WALShipRequest asks a durable source for the WAL tail beyond the
// replica's data version.
type WALShipRequest struct {
	After uint64
}

// WALShipResponse carries raw WAL frames (ingest framing, possibly soft-
// capped — the replica pulls again until it reaches Version). TooOld
// reports that After precedes the source's newest snapshot, so the records
// were compacted away and the replica must be reseeded.
type WALShipResponse struct {
	Frames  []byte
	Version uint64
	TooOld  bool
}

// ClusterInfoResponse answers the gateway's health probe.
type ClusterInfoResponse struct {
	Name       string
	Generation uint64
	Sources    []string // registered source names, sorted
}

// ClusterRegisterRequest tells a center to dial and register one source.
// Replicas, in failover order, serve reads when the primary's transport
// fails; mutations and WAL shipping always pin to the primary.
type ClusterRegisterRequest struct {
	Name     string
	Addr     string
	Replicas []string
}

// ClusterRegisterResponse acknowledges a registration.
type ClusterRegisterResponse struct {
	NumSources int
}

// ClusterUnregisterRequest removes one source from the center's shard.
type ClusterUnregisterRequest struct {
	Name string
}

// ClusterUnregisterResponse acknowledges the removal.
type ClusterUnregisterResponse struct {
	NumSources int
}

// ClusterOverlapRequest is a federated OJSP scattered to one center; the
// center answers its shard's top-k and the gateway merges the shards with
// the same total order a single center uses, making the merged answer
// byte-identical to the unsharded one.
type ClusterOverlapRequest struct {
	Cells cellset.Set
	K     int
}

// ClusterOverlapResponse carries one shard's top-k.
type ClusterOverlapResponse struct {
	Results []SourceResult
}

// ClusterBatchRequest scatters a whole OJSP batch to one center.
type ClusterBatchRequest struct {
	Queries []BatchQuery
}

// ClusterBatchResponse carries the shard's per-query top-k, request order.
type ClusterBatchResponse struct {
	Results [][]SourceResult
}

// SourceExclude lists the dataset IDs already picked from one source
// during a cluster CJSP (the cross-center analogue of CoverageRequest's
// Exclude).
type SourceExclude struct {
	Source string
	IDs    []int
}

// ClusterCovStepRequest asks one center for its shard's best offer in one
// greedy CJSP iteration, given the gateway's merged state so far.
type ClusterCovStepRequest struct {
	Merged  cellset.Set
	Delta   float64
	Exclude []SourceExclude
}

// ClusterCovStepResponse is the shard's best offer; Found is false when no
// source in the shard has a remaining connected dataset. Cells is the full
// cell set of the offered dataset, so the gateway can merge the global
// winner without a second exchange.
type ClusterCovStepResponse struct {
	Found  bool
	Source string
	ID     int
	Name   string
	Gain   int
	Cells  cellset.Set
}

// ClusterPutRequest routes a durable dataset upsert through the center
// owning the source; ClusterDeleteRequest likewise for removal.
type ClusterPutRequest struct {
	Source string
	ID     int
	Name   string
	Cells  cellset.Set
}

// ClusterDeleteRequest removes one dataset at a source through its center.
type ClusterDeleteRequest struct {
	Source string
	ID     int
}

// ClusterMutateResponse answers both cluster mutation methods. Unknown
// reports the source is not registered at this center — a roster/shard
// disagreement the gateway maps back to ErrUnknownSource rather than a
// transport failure.
type ClusterMutateResponse struct {
	Unknown     bool
	Found       bool
	Version     uint64
	NumDatasets int
}

// OverlapRequest asks a source for its local top-k overlap results. Cells
// is the query's cell-based set, possibly clipped to the portion
// intersecting the source's root MBR (§VI-A, second strategy).
type OverlapRequest struct {
	Cells cellset.Set
	K     int
}

// OverlapItem is one local result.
type OverlapItem struct {
	ID      int
	Name    string
	Overlap int
}

// OverlapResponse carries a source's local top-k.
type OverlapResponse struct {
	Results []OverlapItem
}

// SearchBatchRequest asks a source for the local top-k of every query in
// a batch. Each entry is a complete OverlapRequest — its own (possibly
// clipped) cell set and its own k — so one source's batch may cover only
// the subset of the center's batch for which this source is a candidate.
// An entry with empty Cells or k <= 0 is answered with an empty result,
// keeping request and response aligned index-for-index.
type SearchBatchRequest struct {
	Queries []OverlapRequest
}

// SearchBatchResponse carries one OverlapResponse per request entry, in
// request order. len(Results) always equals len(Queries) of the request.
type SearchBatchResponse struct {
	Results []OverlapResponse
}

// CoverageRequest asks a source for its best next dataset in one greedy
// iteration of the multi-source CJSP: the dataset directly connected to the
// merged result set with the maximum marginal gain. Merged is the union of
// the query's and all picked datasets' cells, clipped to the source's
// δ-expanded root MBR — the clipped set yields exactly the same gains and
// connectivity decisions for datasets inside the source (their cells cannot
// meet clipped-away cells within δ).
type CoverageRequest struct {
	Merged  cellset.Set
	Delta   float64
	Exclude []int // dataset IDs already picked from this source
}

// CoverageCandidate is a source's best next pick; Found is false when the
// source has no remaining connected dataset with positive cells.
type CoverageCandidate struct {
	Found bool
	ID    int
	Name  string
	Gain  int
	Cells cellset.Set // full cell set, needed by the center to merge
}

// CoverageRoundRequest is one greedy CJSP round against a per-query
// session. The first contact (or a stateless fallback after the source
// evicted the session) carries Base — the full merged state clipped to the
// source's δ-expanded region. Subsequent rounds ship only Added, the
// previous winner's cells clipped the same way; the source unions them
// into its session state. The union of the clipped pieces equals the clip
// of the union (clipping is a fixed per-cell predicate), so every round
// the source sees exactly the state the stateless protocol would have
// shipped whole.
type CoverageRoundRequest struct {
	Session uint64      // center-chosen session ID, shared by all rounds of one query
	Base    cellset.Set // full clipped merged state; nil on delta rounds
	Added   cellset.Set // clipped winner cells since the previous round; may be nil
	Delta   float64     // connectivity threshold δ (cell units)
	Exclude []int       // dataset IDs already picked from this source
}

// CoverageRoundResponse is a source's offer for one round: only (ID, Gain)
// — the cells stay at the source until the center declares this offer the
// round's winner and fetches them (losers never ship cell sets).
// SessionMiss reports that the source no longer holds the session and the
// request carried no Base; the center retries with the full state.
// Stateless reports that the source answered from the request's Base
// without storing a session (its table is full of live sessions); the
// center then ships the full state again next round instead of a delta —
// graceful degradation to the stateless protocol, never eviction of
// another in-flight query's session.
type CoverageRoundResponse struct {
	SessionMiss bool
	Stateless   bool
	Found       bool
	ID          int
	Name        string
	Gain        int
}

// FetchCellsRequest is the second phase of a round: fetch the winning
// dataset's full cell set. When Session is non-zero and still live at the
// source, the source also folds the cells into its session state, so the
// next round's request to the winner carries no delta at all.
type FetchCellsRequest struct {
	Session uint64
	ID      int
}

// FetchCellsResponse carries the winner's full cell set. Committed reports
// whether the source folded the cells into the session; when false (the
// session was evicted between round and fetch) the center re-opens the
// session with the full state on the next round.
type FetchCellsResponse struct {
	Found     bool
	Committed bool
	Cells     cellset.Set
}

// SessionCloseRequest releases a source's session state at the end of a
// coverage query. Sources also evict sessions on their own (idle TTL and a
// session cap), so a lost close costs memory only until the sweep.
type SessionCloseRequest struct {
	Session uint64
}

// SessionCloseResponse acknowledges the close.
type SessionCloseResponse struct {
	Closed bool
}

// StatsResponse reports a source's basic statistics for monitoring.
type StatsResponse struct {
	Name        string
	NumDatasets int
	TreeNodes   int
	Height      int
	Sessions    int    // live coverage sessions held by the source
	DataVersion uint64 // mutations applied over the source's lifetime (0 when read-only)
	Durable     bool   // whether the source runs a WAL-backed ingest store

	// Memory posture of a source serving its index from an mmap'd
	// snapshot (ditsserve -mmap). All zero for heap-resident sources.
	MMap             bool
	MappedBytes      int64 // bytes of the live snapshot mapping
	ResidentBytes    int64 // estimated resident bytes (skeleton + touched leaves)
	OverlayMutations int   // WAL-tail mutations layered over the snapshot base
}

// DatasetPutRequest durably upserts one dataset at a source: insert when
// the ID is new, replace in place when it exists. Cells must be gridded
// under the federation's shared grid, like query cells.
type DatasetPutRequest struct {
	ID    int
	Name  string
	Cells cellset.Set
}

// DatasetDeleteRequest durably removes one dataset by ID.
type DatasetDeleteRequest struct {
	ID int
}

// MutateResponse answers both mutation methods. Version is the source's
// data version after the mutation (monotonic, persisted across restarts).
// Summary is the source's post-mutation root summary: the center folds it
// into DITS-G (copy-on-write) whenever a mutation grew or shrank the
// source's extent, so global candidate filtering never prunes a source
// whose new data now reaches a query. Found is false only for a delete of
// an ID the source does not hold (which mutates nothing).
type MutateResponse struct {
	Found       bool
	Version     uint64
	NumDatasets int
	Summary     dits.SourceSummary
}

// VersionRequest asks a source for its current data version.
type VersionRequest struct{}

// VersionResponse reports the source's data version and whether the
// source is backed by a durable (WAL) store.
type VersionResponse struct {
	Name    string
	Version uint64
	Durable bool
}
