// Package federation implements the multi-source joinable search framework
// of §IV and §VI-A: autonomous source servers each holding a DITS-L index,
// and a data center holding the DITS-G global index, distributing queries
// to candidate sources only and shipping only the clipped portion of the
// query each source can possibly match.
package federation

import "dits/internal/cellset"

// Method names of the source-server protocol.
const (
	MethodOverlap  = "overlap.search"
	MethodCoverage = "coverage.best"
	MethodStats    = "source.stats"
	MethodSummary  = "source.summary"
)

// OverlapRequest asks a source for its local top-k overlap results. Cells
// is the query's cell-based set, possibly clipped to the portion
// intersecting the source's root MBR (§VI-A, second strategy).
type OverlapRequest struct {
	Cells cellset.Set
	K     int
}

// OverlapItem is one local result.
type OverlapItem struct {
	ID      int
	Name    string
	Overlap int
}

// OverlapResponse carries a source's local top-k.
type OverlapResponse struct {
	Results []OverlapItem
}

// CoverageRequest asks a source for its best next dataset in one greedy
// iteration of the multi-source CJSP: the dataset directly connected to the
// merged result set with the maximum marginal gain. Merged is the union of
// the query's and all picked datasets' cells, clipped to the source's
// δ-expanded root MBR — the clipped set yields exactly the same gains and
// connectivity decisions for datasets inside the source (their cells cannot
// meet clipped-away cells within δ).
type CoverageRequest struct {
	Merged  cellset.Set
	Delta   float64
	Exclude []int // dataset IDs already picked from this source
}

// CoverageCandidate is a source's best next pick; Found is false when the
// source has no remaining connected dataset with positive cells.
type CoverageCandidate struct {
	Found bool
	ID    int
	Name  string
	Gain  int
	Cells cellset.Set // full cell set, needed by the center to merge
}

// StatsResponse reports a source's basic statistics for monitoring.
type StatsResponse struct {
	Name        string
	NumDatasets int
	TreeNodes   int
	Height      int
}
