package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The WAL's frame machinery, factored out for reuse: any append-only log
// that wants the same durability contract — length+CRC framed records
// behind a versioned magic header, a torn tail detected and truncated on
// open — goes through walkFrames/ScanFrames and FramedLog rather than
// reimplementing the scan. The ingest WAL itself (wal.go) and the
// federation membership log are both built on it, and WAL shipping
// (ship.go) reuses the identical scan on the receiving side, so a
// replica tolerates a torn shipped tail exactly like local recovery.

// walkFrames scans data — a concatenation of frames with NO magic header
// — and calls fn once per structurally intact frame with the frame's
// byte offset and its payload. The scan stops at the first torn or
// corrupt frame (short header, absurd length, truncated payload, bad
// CRC), or when fn returns false — in which case that frame is not
// counted. It returns the byte offset one past the last accepted frame:
// everything from there on is tail to truncate (or garbage to ignore).
func walkFrames(data []byte, fn func(off int, payload []byte) bool) int {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return off
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen <= 0 || plen > maxRecordBytes || len(data)-off-frameHeader < plen {
			return off
		}
		payload := data[off+frameHeader : off+frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return off
		}
		if !fn(off, payload) {
			return off
		}
		off += frameHeader + plen
	}
}

// ScanFrames parses a headerless frame sequence and returns every intact
// payload in order, plus the byte length of the intact prefix. Corruption
// anywhere truncates the result at the last intact frame — the same
// tolerance recovery applies to a torn WAL tail.
func ScanFrames(data []byte) (payloads [][]byte, intact int) {
	intact = walkFrames(data, func(_ int, p []byte) bool {
		payloads = append(payloads, p)
		return true
	})
	return payloads, intact
}

// appendFrame frames one payload: u32 length | u32 CRC-32C | payload.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// FramedLog is a generic append-only log of opaque payloads with the
// WAL's framing and recovery semantics. It is not safe for concurrent
// use; callers serialize appends.
type FramedLog struct {
	f      *os.File
	magic  []byte
	fsync  bool
	size   int64 // last known-good frame boundary
	broken bool  // a failed append could not be rolled back
}

// OpenFramedLog opens (or creates) the log at path, validates the magic
// header, and returns every intact payload in append order, truncating a
// torn tail in place. The magic must be non-empty; its last byte
// conventionally versions the record format.
func OpenFramedLog(path string, magic []byte, fsync bool) (*FramedLog, [][]byte, error) {
	if len(magic) == 0 {
		return nil, nil, fmt.Errorf("ingest: framed log needs a magic header")
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open framed log: %w", err)
	}
	l := &FramedLog{f: f, magic: append([]byte(nil), magic...), fsync: fsync}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: read framed log: %w", err)
	}
	if len(data) < len(magic) && string(data) == string(magic[:len(data)]) {
		// Empty file or a header torn mid-init: no record can have been
		// acknowledged yet, so reinitialize in place.
		if err := l.reinit(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return l, nil, nil
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: %s is not a framed log (bad magic)", path)
	}
	payloads, intact := ScanFrames(data[len(magic):])
	off := int64(len(magic) + intact)
	if off != int64(len(data)) {
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncate torn framed-log tail: %w", err)
		}
		if err := l.maybeSync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: seek framed log: %w", err)
	}
	l.size = off
	return l, payloads, nil
}

// reinit truncates the file and writes a fresh magic header.
func (l *FramedLog) reinit() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("ingest: init framed log: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("ingest: init framed log: %w", err)
	}
	if _, err := l.f.Write(l.magic); err != nil {
		return fmt.Errorf("ingest: init framed log: %w", err)
	}
	if err := l.maybeSync(); err != nil {
		return err
	}
	l.size = int64(len(l.magic))
	return nil
}

// Append frames, checksums, writes, and (per policy) flushes one payload.
// On failure the log rolls back to the last good frame boundary; if the
// rollback itself fails the log refuses further appends until reopened.
func (l *FramedLog) Append(payload []byte) error {
	if l.broken {
		return fmt.Errorf("ingest: framed log is in a failed state after an unrecoverable partial write; reopen it")
	}
	if len(payload) == 0 || len(payload) > maxRecordBytes {
		return fmt.Errorf("ingest: framed-log payload is %d bytes (want 1..%d)", len(payload), maxRecordBytes)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	if _, err := l.f.Write(frame); err != nil {
		return l.rollback(fmt.Errorf("ingest: framed-log append: %w", err))
	}
	if err := l.maybeSync(); err != nil {
		return l.rollback(err)
	}
	l.size += int64(len(frame))
	return nil
}

// rollback truncates back to the last good boundary after a failed append.
func (l *FramedLog) rollback(cause error) error {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = true
		return fmt.Errorf("%w (and rollback failed: %v; log disabled until reopen)", cause, err)
	}
	if _, err := l.f.Seek(l.size, io.SeekStart); err != nil {
		l.broken = true
		return fmt.Errorf("%w (and rollback seek failed: %v; log disabled until reopen)", cause, err)
	}
	return cause
}

// maybeSync flushes per the fsync policy.
func (l *FramedLog) maybeSync() error {
	if !l.fsync {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: fsync framed log: %w", err)
	}
	return nil
}

// Size returns the log's current byte size (header included).
func (l *FramedLog) Size() int64 { return l.size }

// Close closes the log file, flushing first under the always policy.
func (l *FramedLog) Close() error {
	if err := l.maybeSync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
