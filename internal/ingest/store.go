package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/index/ditsfile"
	"dits/internal/metrics"
)

// DefaultSnapshotEvery is the number of mutations between automatic
// background snapshots when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 256

// ErrNotFound reports a delete of a dataset ID the index does not hold.
var ErrNotFound = errors.New("ingest: dataset not found")

// ErrClosed reports a mutation against a closed store.
var ErrClosed = errors.New("ingest: store is closed")

// Options configure a store.
type Options struct {
	// Fsync is the WAL flush policy (default FsyncAlways).
	Fsync FsyncMode
	// SnapshotEvery is the number of applied mutations between automatic
	// background snapshots. Zero means DefaultSnapshotEvery; a negative
	// value disables automatic snapshots (Snapshot can still be called).
	SnapshotEvery int
	// Bootstrap builds the initial index the first time a store directory
	// is opened (no manifest yet). It is not called on recovery: a
	// recovered store's state comes from its snapshot and WAL, never from
	// re-reading the original source data.
	Bootstrap func() (*dits.Local, error)
	// MMap serves the snapshot base mmap'd and searched in place instead
	// of heap-resident: leaves fault in on first touch and the OS may
	// reclaim cold pages, bounding RSS below the index size. The WAL tail
	// is layered on top as an in-memory overlay (mutations go straight
	// into the file-backed index), and each committed snapshot swaps the
	// live index onto a fresh mapping, shedding the accumulated overlay.
	// Ignored on platforms without mmap support.
	MMap bool
	// Replica opens the store as a read-only replica: local mutations
	// (PutDataset / DeleteDataset) are refused with ErrReplica and state
	// advances only through ApplyShipped, which replays the primary's WAL
	// records verbatim — same sequence numbers, same data versions. A
	// replica bootstraps from the same Bootstrap as its primary (or from a
	// copied store directory) and catches up by WAL shipping (ship.go).
	Replica bool
}

// Store is the durable write path of one source: it owns the live DITS-L
// index, logs every mutation to the WAL before applying it, compacts the
// log into snapshots in the background, and recovers the index on open.
//
// Concurrency: mutations and snapshots serialize on an internal write
// lock; searches run concurrently with each other and with the disk I/O
// of a snapshot through View, blocking only for the in-memory apply of a
// mutation. The data version is monotonic across restarts (it is persisted
// in the manifest and advanced by WAL replay).
type Store struct {
	dir  string
	opts Options

	// writeMu serializes mutations and snapshots end-to-end (WAL append,
	// apply, manifest commit). mu guards the index itself: searches hold
	// it shared, the in-memory apply holds it exclusively. Lock order:
	// writeMu before mu.
	writeMu sync.Mutex
	mu      sync.RWMutex

	idx *dits.Local
	// reader backs idx when it is mmap-served; retired holds superseded
	// readers whose mappings may still be aliased by in-flight search
	// results, so they unmap only at Close (their resident pages are
	// dropped on retirement, which is what actually frees memory).
	reader    *ditsfile.Reader
	retired   []*ditsfile.Reader
	wal       *wal
	lock      *os.File      // flock-held LOCK file: one process per store dir
	seq       uint64        // last WAL sequence number issued
	snapSeq   uint64        // sequence covered by the newest committed snapshot
	version   atomic.Uint64 // data version: one bump per applied mutation
	sinceSnap int           // mutations applied since the last snapshot
	replayed  int           // records replayed by Open (for operators)
	snapshots atomic.Int64  // snapshots committed since Open

	closed     bool
	compacting atomic.Bool
	wg         sync.WaitGroup
	lastErr    error // last background-snapshot failure
}

// Open opens the store directory, recovering state when it exists: load
// the manifest's snapshot, replay the WAL tail (records past the
// snapshot), and truncate a torn final record. A fresh directory is
// bootstrapped from opts.Bootstrap and immediately anchored with an
// initial snapshot, so every subsequent recovery has a base state.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create store dir: %w", err)
	}
	st := &Store{dir: dir, opts: opts}
	// One process per store directory: two writers appending to the same
	// WAL through independent offsets would interleave garbage that the
	// next recovery truncates away as a torn tail — acknowledged
	// mutations silently lost. An advisory file lock (released by the
	// kernel even on a crash, so no stale-lockfile handling) turns that
	// into an immediate startup error.
	lock, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: open lock file: %w", err)
	}
	if err := lockFile(lock); err != nil {
		lock.Close()
		return nil, fmt.Errorf("ingest: %s is already open in another process: %w", dir, err)
	}
	st.lock = lock
	opened := false
	defer func() {
		if !opened { // any failure below: release the lock
			lock.Close()
		}
	}()
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man != nil {
		if err := st.loadSnapshot(man); err != nil {
			return nil, err
		}
		st.seq, st.snapSeq = man.Seq, man.Seq
		st.version.Store(man.Version)
	} else {
		if opts.Bootstrap == nil {
			return nil, fmt.Errorf("ingest: %s holds no store and no Bootstrap was given", dir)
		}
		st.idx, err = opts.Bootstrap()
		if err != nil {
			return nil, fmt.Errorf("ingest: bootstrap: %w", err)
		}
		if st.idx == nil {
			return nil, fmt.Errorf("ingest: bootstrap returned no index")
		}
		if err := st.commitSnapshot(0, 0); err != nil {
			return nil, err
		}
	}

	fsync := opts.Fsync == FsyncAlways
	wal, recs, err := openWAL(filepath.Join(dir, "wal.log"), fsync)
	if err != nil {
		return nil, err
	}
	st.wal = wal
	for _, rec := range recs {
		if rec.Seq <= st.snapSeq {
			// Redundant record from a crash between manifest commit and
			// WAL reset; the snapshot already contains it.
			continue
		}
		if err := st.apply(rec); err != nil {
			wal.close()
			return nil, fmt.Errorf("ingest: replay seq %d: %w", rec.Seq, err)
		}
		st.seq = rec.Seq
		st.version.Add(1)
		st.replayed++
		st.sinceSnap++
	}
	opened = true
	return st, nil
}

// loadSnapshot recovers the index from the manifest's snapshot file,
// dispatching on the recorded format. Corruption surfaces as a clean
// error here — snapshots commit via rename, so a torn WRITE leaves the
// previous manifest intact (that crash recovers from the old snapshot
// plus the full WAL); an error on a committed snapshot means real damage
// and refuses to serve rather than serving wrong data.
func (st *Store) loadSnapshot(man *manifest) error {
	path := filepath.Join(st.dir, man.Snapshot)
	switch man.Format {
	case formatDSnap:
		if st.opts.MMap {
			r, err := ditsfile.Open(path, ditsfile.Options{MMap: true, VerifyData: true})
			if err != nil {
				return fmt.Errorf("ingest: load snapshot %s: %w", man.Snapshot, err)
			}
			st.idx, st.reader = r.Index(), r
			return nil
		}
		idx, err := ditsfile.LoadHeap(path)
		if err != nil {
			return fmt.Errorf("ingest: load snapshot %s: %w", man.Snapshot, err)
		}
		st.idx = idx
		return nil
	default: // legacy gob snapshot from before the binary format
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("ingest: open snapshot %s: %w", man.Snapshot, err)
		}
		st.idx, err = dits.Load(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("ingest: load snapshot %s: %w", man.Snapshot, err)
		}
		return nil
	}
}

// apply performs one mutation on the in-memory index. Put is an upsert;
// delete requires the ID to exist.
func (st *Store) apply(rec walRecord) error {
	switch rec.Op {
	case opPut:
		nd := dataset.NewNodeFromCells(rec.ID, rec.Name, rec.Cells)
		if nd == nil {
			return fmt.Errorf("ingest: dataset %d has no cells", rec.ID)
		}
		if st.idx.Get(rec.ID) != nil {
			return st.idx.Update(nd)
		}
		return st.idx.Insert(nd)
	case opDelete:
		if st.idx.Get(rec.ID) == nil {
			return fmt.Errorf("%w: id %d", ErrNotFound, rec.ID)
		}
		return st.idx.Delete(rec.ID)
	}
	return fmt.Errorf("ingest: unknown opcode %d", rec.Op)
}

// Index returns the live index. Its contents mutate, and with
// Options.MMap the POINTER itself changes at every committed snapshot
// (the store swaps onto the fresh mapping); concurrent readers must go
// through View, which always observes the current index.
func (st *Store) Index() *dits.Local {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.idx
}

// View runs fn with shared (read) access to the index: any number of Views
// proceed concurrently, and mutations wait for them only during the
// in-memory apply step.
func (st *Store) View(fn func(idx *dits.Local)) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	fn(st.idx)
}

// Version returns the store's data version: it starts at 0, bumps by one
// per applied mutation, and is monotonic across restarts.
func (st *Store) Version() uint64 { return st.version.Load() }

// PutDataset durably upserts a dataset: the mutation is WAL-logged (and
// flushed, per policy) before the index changes, and the returned version
// is the data version after the apply.
func (st *Store) PutDataset(id int, name string, cells cellset.Set) (uint64, error) {
	if cells.IsEmpty() {
		return 0, fmt.Errorf("ingest: dataset %d has no cells", id)
	}
	return st.mutate(walRecord{Op: opPut, ID: id, Name: name, Cells: cells})
}

// DeleteDataset durably removes a dataset by ID. Deleting an ID the index
// does not hold returns ErrNotFound and logs nothing.
func (st *Store) DeleteDataset(id int) (uint64, error) {
	return st.mutate(walRecord{Op: opDelete, ID: id})
}

// mutate runs the WAL-then-apply sequence for one mutation.
func (st *Store) mutate(rec walRecord) (uint64, error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	if st.opts.Replica {
		return 0, ErrReplica
	}
	// Validate against the current index before logging, so the WAL only
	// ever holds records that apply cleanly on replay. No search or other
	// mutation can interleave: mutations hold writeMu and index reads
	// cannot observe a half-applied state (apply runs under mu).
	if rec.Op == opDelete && st.idx.Get(rec.ID) == nil {
		return 0, fmt.Errorf("%w: id %d", ErrNotFound, rec.ID)
	}
	rec.Seq = st.seq + 1
	if err := st.wal.append(rec); err != nil {
		return 0, err
	}
	st.seq = rec.Seq
	st.mu.Lock()
	err := st.apply(rec)
	if err == nil {
		st.version.Add(1)
	}
	st.mu.Unlock()
	if err != nil {
		// Cannot happen given the validation above; surface loudly if it
		// ever does, since WAL and index would disagree.
		return 0, fmt.Errorf("ingest: apply seq %d: %w", rec.Seq, err)
	}
	st.sinceSnap++
	st.maybeCompactLocked()
	return st.version.Load(), nil
}

// snapshotEvery resolves the automatic-snapshot threshold.
func (st *Store) snapshotEvery() int {
	switch {
	case st.opts.SnapshotEvery > 0:
		return st.opts.SnapshotEvery
	case st.opts.SnapshotEvery < 0:
		return 0
	}
	return DefaultSnapshotEvery
}

// maybeCompactLocked starts a background snapshot when enough mutations
// accumulated. The caller holds writeMu; the snapshot goroutine re-acquires
// it, so compaction never blocks the mutation that triggered it.
func (st *Store) maybeCompactLocked() {
	every := st.snapshotEvery()
	if every <= 0 || st.sinceSnap < every || !st.compacting.CompareAndSwap(false, true) {
		return
	}
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		defer st.compacting.Store(false)
		if err := st.Snapshot(); err != nil && !errors.Is(err, ErrClosed) {
			st.writeMu.Lock()
			st.lastErr = err
			st.writeMu.Unlock()
		}
	}()
}

// Snapshot compacts the log: write the current index as a snapshot file,
// commit the manifest, and truncate the WAL. Mutations are blocked for the
// duration; searches are not (the index encode runs under the shared
// lock). Safe to call at any time, including concurrently with mutations.
func (st *Store) Snapshot() error {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.seq == st.snapSeq {
		return nil // nothing new since the last snapshot
	}
	st.lastErr = nil // a completed snapshot supersedes any earlier failure
	if err := st.commitSnapshot(st.seq, st.version.Load()); err != nil {
		return err
	}
	if err := st.wal.reset(); err != nil {
		return err
	}
	st.sinceSnap = 0
	return nil
}

// commitSnapshot writes the index as snap-<seq>.dsnap (the binary
// ditsfile format; legacy .gob snapshots are read-only history) and
// commits the manifest pointing at it. The caller holds writeMu (or,
// during Open, has exclusive ownership). Crash windows: before the
// manifest commit the old manifest + full WAL still recover everything;
// after it, leftover WAL records at or below seq are skipped by their
// sequence numbers.
func (st *Store) commitSnapshot(seq, version uint64) error {
	// The index streams straight into the temp file — no in-memory copy
	// of the encoding. Searches proceed under the shared lock throughout;
	// mutations are already excluded by writeMu.
	name := fmt.Sprintf("snap-%016d.dsnap", seq)
	path := filepath.Join(st.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ingest: create snapshot: %w", err)
	}
	st.mu.RLock()
	err = ditsfile.Write(f, st.idx)
	st.mu.RUnlock()
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ingest: write snapshot: %w", err)
	}
	if err := syncDir(st.dir); err != nil {
		return err
	}
	if err := writeManifest(st.dir, manifest{Snapshot: name, Format: formatDSnap, Seq: seq, Version: version}); err != nil {
		return err
	}
	st.snapSeq = seq
	st.snapshots.Add(1)
	st.swapReader(path)
	// Old snapshots are now unreachable from the manifest; reclaim them.
	// (A retired reader's unlinked mapping stays valid until it unmaps.)
	for _, pat := range []string{"snap-*.gob", "snap-*.dsnap"} {
		if olds, err := filepath.Glob(filepath.Join(st.dir, pat)); err == nil {
			for _, old := range olds {
				if filepath.Base(old) != name {
					os.Remove(old)
				}
			}
		}
	}
	return nil
}

// swapReader points the live index at the just-committed snapshot when
// the store serves mmap'd. The new reader's index equals the current
// in-memory state (the snapshot was taken under writeMu), so the swap is
// invisible to searches except that the WAL-tail overlay and any
// materialized leaf copies become garbage — RSS drops back to the cold
// mapping. The old reader is retired, not closed: results still in
// flight may alias its mapping. A swap failure is not a durability
// failure (the snapshot is committed); the store just keeps serving the
// current index.
func (st *Store) swapReader(path string) {
	if !st.opts.MMap {
		return
	}
	r, err := ditsfile.Open(path, ditsfile.Options{MMap: true})
	if err != nil {
		st.lastErr = fmt.Errorf("ingest: reopen snapshot mmap: %w", err)
		return
	}
	st.mu.Lock()
	old := st.reader
	st.idx, st.reader = r.Index(), r
	st.mu.Unlock()
	if old != nil {
		old.DropResident()
		st.retired = append(st.retired, old)
	}
}

// Stats is an operator snapshot of the store's durability state.
type Stats struct {
	Version       uint64 // data version (mutations applied over the store's lifetime)
	Seq           uint64 // last WAL sequence issued
	SnapshotSeq   uint64 // sequence covered by the newest snapshot
	SinceSnapshot int    // mutations in the WAL tail (the live overlay on an mmap'd base)
	Replayed      int    // records replayed by the last Open
	Snapshots     int64  // snapshots committed since Open
	WALBytes      int64  // current WAL file size
	Fsync         string // flush policy
	Format        string // snapshot format written by compaction
	MMap          bool   // whether the index base is served mmap'd
	MappedBytes   int64  // bytes of the live snapshot mapping (0 when heap-resident)
	ResidentBytes int64  // estimated resident bytes of the file-backed index
	LeafLoads     int64  // leaves materialized from the live mapping
	LeafLoadErrs  int64  // leaf materializations that failed validation
	LastError     string // last background-snapshot failure, if any
}

// Stats returns the store's durability counters.
func (st *Store) Stats() Stats {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	s := Stats{
		Version:       st.version.Load(),
		Seq:           st.seq,
		SnapshotSeq:   st.snapSeq,
		SinceSnapshot: st.sinceSnap,
		Replayed:      st.replayed,
		Snapshots:     st.snapshots.Load(),
		WALBytes:      st.wal.size,
		Fsync:         st.opts.Fsync.String(),
		Format:        formatDSnap,
		MMap:          st.reader != nil,
	}
	if st.reader != nil {
		s.MappedBytes = st.reader.MappedBytes()
		s.ResidentBytes = st.reader.ResidentEstBytes()
		s.LeafLoads = st.reader.LeafLoads()
		s.LeafLoadErrs = st.reader.LoadErrors()
	}
	if st.lastErr != nil {
		s.LastError = st.lastErr.Error()
	}
	return s
}

// Register exposes the store's durability counters on a metrics registry
// under the dits_ingest_* names. The function-backed instruments read the
// same state Stats does, so exposition and the JSON stats never disagree.
func (st *Store) Register(r *metrics.Registry) {
	r.RegisterCounterFunc("dits_ingest_mutations_total",
		"Mutations applied over the store's lifetime", func() float64 {
			return float64(st.version.Load())
		})
	r.RegisterCounterFunc("dits_ingest_snapshots_total",
		"Snapshots committed since open", func() float64 {
			return float64(st.snapshots.Load())
		})
	r.RegisterGaugeFunc("dits_ingest_wal_bytes", "Current WAL file size",
		func() float64 { return float64(st.Stats().WALBytes) })
	r.RegisterGaugeFunc("dits_ingest_wal_tail_mutations",
		"Mutations in the WAL tail not yet covered by a snapshot (the in-memory overlay on an mmap'd base)",
		func() float64 { return float64(st.Stats().SinceSnapshot) })
	r.RegisterGaugeFunc("dits_index_mapped_bytes",
		"Bytes of the live snapshot mapping (0 when the index is heap-resident)",
		func() float64 { return float64(st.Stats().MappedBytes) })
	r.RegisterGaugeFunc("dits_index_resident_est_bytes",
		"Estimated resident bytes of the file-backed index (skeleton + materialized leaves)",
		func() float64 { return float64(st.Stats().ResidentBytes) })
	r.RegisterCounterFunc("dits_index_leaf_loads_total",
		"Leaves materialized from the snapshot mapping", func() float64 {
			return float64(st.Stats().LeafLoads)
		})
	r.RegisterCounterFunc("dits_index_leaf_load_errors_total",
		"Leaf materializations rejected by payload validation", func() float64 {
			return float64(st.Stats().LeafLoadErrs)
		})
}

// Close flushes and closes the WAL after waiting out any background
// snapshot. Further mutations return ErrClosed; the index stays readable.
func (st *Store) Close() error {
	st.writeMu.Lock()
	if st.closed {
		st.writeMu.Unlock()
		return nil
	}
	st.closed = true
	st.writeMu.Unlock()
	st.wg.Wait()
	err := st.wal.close()
	// Unmap last: nothing may alias the mappings after Close returns.
	for _, r := range st.retired {
		r.Close()
	}
	st.retired = nil
	if st.reader != nil {
		if cerr := st.reader.Close(); err == nil {
			err = cerr
		}
		st.reader = nil
	}
	st.lock.Close() // releases the flock
	return err
}
