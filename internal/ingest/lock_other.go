//go:build !unix

package ingest

import "os"

// lockFile is a no-op on platforms without flock semantics: the
// single-writer guard degrades to best effort there (the supported
// deployment targets are unix; CI exercises the real lock).
func lockFile(f *os.File) error { return nil }
