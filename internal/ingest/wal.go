// Package ingest is the durable write path of one data source: an
// append-only write-ahead log that records every dataset mutation before it
// is applied to the live DITS-L index, plus background snapshot compaction
// and crash recovery. The durability contract is WAL-then-apply: a mutation
// is acknowledged only after its record is framed, checksummed, and (under
// the default fsync policy) flushed to stable storage, so a crash at any
// point yields, on restart, exactly the index produced by some prefix of
// the acknowledged mutations — and that prefix contains every acknowledged
// mutation when fsync is on.
//
// On-disk layout (one directory per source, see docs/OPERATIONS.md):
//
//	wal.log            append-only mutation log
//	snap-<seq>.gob     index snapshot covering mutations 1..seq (persist.go)
//	MANIFEST           points at the newest committed snapshot
//
// Recovery loads the manifest's snapshot, replays the WAL records with
// sequence numbers beyond it, and tolerates a torn final record (the tail
// is truncated to the last intact frame).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"dits/internal/cellset"
)

// FsyncMode selects the WAL flush policy.
type FsyncMode int

const (
	// FsyncAlways flushes the WAL to stable storage after every append:
	// an acknowledged mutation survives power loss. The default.
	FsyncAlways FsyncMode = iota
	// FsyncNever leaves flushing to the OS page cache: far higher append
	// throughput, but a crash may lose the most recent acknowledged
	// mutations (never corrupt the survivors — framing and checksums make
	// the torn tail detectable and recovery truncates it).
	FsyncNever
)

// ParseFsyncMode parses the -fsync flag values.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("ingest: unknown fsync mode %q (want always or never)", s)
}

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	if m == FsyncNever {
		return "never"
	}
	return "always"
}

// Mutation opcodes recorded in the WAL.
const (
	opPut    byte = 1 // upsert a dataset (insert, or replace by ID)
	opDelete byte = 2 // remove a dataset by ID
)

// walMagic is the 8-byte file header; the trailing byte versions the
// record format.
var walMagic = []byte("DITSWAL\x01")

// maxRecordBytes caps one record's payload; anything larger in a length
// header is garbage from a torn write, not a record.
const maxRecordBytes = 64 << 20

// walRecord is one logged mutation. Cells is nil for deletes.
type walRecord struct {
	Seq   uint64 // mutation sequence number, strictly increasing
	Op    byte   // opPut or opDelete
	ID    int
	Name  string
	Cells cellset.Set
}

// encode appends the record's payload (no frame header) to buf.
// The layout is fixed little-endian:
//
//	u64 seq | u8 op | i64 id | u16 len(name) | name | u32 len(cells) | cells
func (r walRecord) encode(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = append(buf, r.Op)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.ID)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Name)))
	buf = append(buf, r.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Cells)))
	for _, c := range r.Cells {
		buf = binary.LittleEndian.AppendUint64(buf, c)
	}
	return buf
}

// decodeRecord parses one payload. Any structural mismatch returns an
// error, which replay treats as a torn tail.
func decodeRecord(p []byte) (walRecord, error) {
	var r walRecord
	if len(p) < 8+1+8+2 {
		return r, errors.New("ingest: short record")
	}
	r.Seq = binary.LittleEndian.Uint64(p)
	r.Op = p[8]
	r.ID = int(int64(binary.LittleEndian.Uint64(p[9:])))
	nameLen := int(binary.LittleEndian.Uint16(p[17:]))
	p = p[19:]
	if len(p) < nameLen+4 {
		return r, errors.New("ingest: truncated name")
	}
	r.Name = string(p[:nameLen])
	p = p[nameLen:]
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) != 8*n {
		return r, errors.New("ingest: truncated cell set")
	}
	if r.Op != opPut && r.Op != opDelete {
		return r, fmt.Errorf("ingest: unknown opcode %d", r.Op)
	}
	if n > 0 {
		r.Cells = make(cellset.Set, n)
		for i := range r.Cells {
			r.Cells[i] = binary.LittleEndian.Uint64(p[8*i:])
		}
	}
	return r, nil
}

// maxNameBytes caps a dataset name so the u16 length prefix always fits;
// an over-long name is rejected BEFORE logging — silently truncating it
// in the log would make the recovered index diverge from the live one.
const maxNameBytes = 0xFFFF

// wal is the append-only log file. It is not safe for concurrent use; the
// Store serializes appends under its write lock.
type wal struct {
	f     *os.File
	path  string
	fsync bool
	size  int64 // last known-good frame boundary
	// broken is set when a failed append could not be rolled back to the
	// last good boundary: further appends would land after garbage and be
	// unrecoverable, so they are refused until the store is reopened.
	broken bool
}

// frame header: u32 payload length | u32 CRC-32 (Castagnoli) of the payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// openWAL opens (or creates) the log at path and replays every intact
// record, truncating a torn tail in place so appends resume on a clean
// frame boundary. Records are returned in log order.
func openWAL(path string, fsync bool) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	w := &wal{f: f, path: path, fsync: fsync}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: read wal: %w", err)
	}
	if len(data) < len(walMagic) && string(data) == string(walMagic[:len(data)]) {
		// Empty file, or a header torn by a crash during the very first
		// init (a strict prefix of the magic, so no record can have been
		// acknowledged yet): reinitialize in place.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: init wal: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: init wal: %w", err)
		}
		if _, err := f.Write(walMagic); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: init wal: %w", err)
		}
		if err := w.maybeSync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.size = int64(len(walMagic))
		return w, nil, nil
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: %s is not a WAL (bad magic)", path)
	}

	// Replay: scan intact frames (walkFrames rejects short headers, absurd
	// lengths, and bad checksums); a payload that does not decode or whose
	// sequence number does not advance marks the torn tail, which is
	// truncated away. A torn write never corrupts preceding records
	// because appends are strictly sequential.
	var recs []walRecord
	lastSeq := uint64(0)
	off := len(walMagic) + walkFrames(data[len(walMagic):], func(_ int, payload []byte) bool {
		rec, err := decodeRecord(payload)
		if err != nil || rec.Seq <= lastSeq {
			return false
		}
		recs = append(recs, rec)
		lastSeq = rec.Seq
		return true
	})
	if int64(off) != int64(len(data)) {
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ingest: truncate torn wal tail: %w", err)
		}
		if err := w.maybeSync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ingest: seek wal: %w", err)
	}
	w.size = int64(off)
	return w, recs, nil
}

// append frames, checksums, writes, and (per policy) flushes one record.
// On any failure the log is rolled back to the last good frame boundary,
// so a partial frame can never sit in the middle of the file ahead of
// later acknowledged appends — and a record whose flush failed is removed
// rather than left to be replayed as if it had been acknowledged.
func (w *wal) append(rec walRecord) error {
	if w.broken {
		return fmt.Errorf("ingest: wal is in a failed state after an unrecoverable partial write; reopen the store")
	}
	if len(rec.Name) > maxNameBytes {
		return fmt.Errorf("ingest: dataset %d name is %d bytes (max %d)", rec.ID, len(rec.Name), maxNameBytes)
	}
	payload := rec.encode(make([]byte, 0, 23+len(rec.Name)+8*len(rec.Cells)))
	if len(payload) > maxRecordBytes {
		// Replay treats an over-long frame as a torn tail, so logging it
		// would silently drop this and every later mutation on recovery.
		return fmt.Errorf("ingest: mutation for dataset %d is %d bytes, over the %d-byte record cap", rec.ID, len(payload), maxRecordBytes)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	if _, err := w.f.Write(frame); err != nil {
		return w.rollback(fmt.Errorf("ingest: wal append: %w", err))
	}
	if err := w.maybeSync(); err != nil {
		return w.rollback(err)
	}
	w.size += int64(len(frame))
	return nil
}

// rollback truncates the log back to the last good frame boundary after a
// failed append and returns cause (annotated if the rollback itself
// failed, in which case the log is marked broken).
func (w *wal) rollback(cause error) error {
	if err := w.f.Truncate(w.size); err != nil {
		w.broken = true
		return fmt.Errorf("%w (and rollback failed: %v; wal disabled until reopen)", cause, err)
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.broken = true
		return fmt.Errorf("%w (and rollback seek failed: %v; wal disabled until reopen)", cause, err)
	}
	return cause
}

// reset truncates the log back to its header — called after a snapshot
// commit makes every logged record redundant. A failed truncate leaves
// the log untouched (the stale records are skipped by sequence number on
// replay); a seek failure AFTER the truncate leaves the fd offset past a
// zero gap, so — exactly like rollback — the log is marked broken and
// refuses appends until reopened, rather than acknowledging records that
// replay would treat as a torn tail.
func (w *wal) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("ingest: reset wal: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		w.broken = true
		return fmt.Errorf("ingest: reset wal seek failed: %w; wal disabled until reopen", err)
	}
	w.size = int64(len(walMagic))
	return w.maybeSync()
}

// maybeSync flushes per the fsync policy.
func (w *wal) maybeSync() error {
	if !w.fsync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: fsync wal: %w", err)
	}
	return nil
}

// close closes the log file, flushing first under the always policy.
func (w *wal) close() error {
	if err := w.maybeSync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
