package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// openReplica opens a replica store bootstrapped identically to the test
// primary, so version 0 means byte-identical state on both sides.
func openReplica(t *testing.T, dir string) *Store {
	t.Helper()
	return openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: -1, Replica: true})
}

// pull drives one primary→replica catch-up to completion.
func pull(t *testing.T, primary, replica *Store) int {
	t.Helper()
	total := 0
	for {
		frames, version, tooOld, err := primary.ShipWAL(replica.Version())
		if err != nil {
			t.Fatalf("ShipWAL: %v", err)
		}
		if tooOld {
			t.Fatalf("ShipWAL: unexpected snapshot gap at version %d", replica.Version())
		}
		if len(frames) == 0 {
			if replica.Version() != version {
				t.Fatalf("caught up at version %d, primary at %d", replica.Version(), version)
			}
			return total
		}
		n, err := replica.ApplyShipped(frames)
		if err != nil {
			t.Fatalf("ApplyShipped: %v", err)
		}
		if n == 0 {
			t.Fatal("ApplyShipped made no progress on a non-empty batch")
		}
		total += n
	}
}

func TestShipCatchUpMatchesPrimary(t *testing.T) {
	muts := genMutations(40, 11, testSeedDatasets)
	primary := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	defer primary.Close()
	rdir := t.TempDir()
	replica := openReplica(t, rdir)

	// Catch up in two stages, with primary mutations continuing in between
	// — the replica resumes from its data version each time.
	applyToStore(t, primary, muts, 25)
	pull(t, primary, replica)
	applyToStore(t, primary, muts[25:], len(muts)-25)
	pull(t, primary, replica)

	if got, want := replica.Version(), primary.Version(); got != want {
		t.Fatalf("replica version = %d, want %d", got, want)
	}
	want := searchFingerprint(t, primary.Index())
	if got := searchFingerprint(t, replica.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("replica search results differ from primary")
	}
	if err := replica.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// The shipped records are durable at the replica: a restart recovers
	// them from its own WAL, Bootstrap untouched.
	re, err := Open(rdir, Options{Replica: true})
	if err != nil {
		t.Fatalf("reopen replica: %v", err)
	}
	defer re.Close()
	if got := re.Version(); got != primary.Version() {
		t.Fatalf("reopened replica version = %d, want %d", got, primary.Version())
	}
	if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("reopened replica search results differ from primary")
	}
}

// TestShipTornTailPrefix is the shipping-path twin of
// TestCrashRecoveryPrefix: for ANY prefix of a shipped batch — every
// record boundary and torn cuts inside the final frame — the replica
// applies exactly the intact records and matches an in-process apply of
// that prefix. Same corpus, same tolerance, different entry point.
func TestShipTornTailPrefix(t *testing.T) {
	muts := genMutations(25, 3, testSeedDatasets)
	primary := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	defer primary.Close()
	// Shipping from version 0 returns the WAL body verbatim, so frame
	// boundaries fall out of the WAL offsets tracked per mutation.
	boundaries := []int64{0}
	walBase := primary.Stats().WALBytes
	for _, m := range muts {
		var err error
		if m.del {
			_, err = primary.DeleteDataset(m.id)
		} else {
			_, err = primary.PutDataset(m.id, m.name, m.cells)
		}
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, primary.Stats().WALBytes-walBase)
	}

	frames, _, tooOld, err := primary.ShipWAL(0)
	if err != nil || tooOld {
		t.Fatalf("ShipWAL: err=%v tooOld=%v", err, tooOld)
	}
	if int64(len(frames)) != boundaries[len(muts)] {
		t.Fatalf("shipped %d bytes, want %d (WAL body)", len(frames), boundaries[len(muts)])
	}

	applyAt := func(t *testing.T, batch []byte, wantApplied int) {
		t.Helper()
		replica := openReplica(t, t.TempDir())
		defer replica.Close()
		n, err := replica.ApplyShipped(batch)
		if err != nil {
			t.Fatalf("ApplyShipped: %v", err)
		}
		if n != wantApplied {
			t.Fatalf("applied %d records, want %d", n, wantApplied)
		}
		if got := replica.Version(); got != uint64(wantApplied) {
			t.Fatalf("version = %d, want %d", got, wantApplied)
		}
		oracle := oracleIndex(applyOracle(muts, wantApplied, testSeed, testSeedDatasets))
		if !reflect.DeepEqual(searchFingerprint(t, replica.Index()), searchFingerprint(t, oracle)) {
			t.Fatalf("prefix %d: shipped-apply results differ from in-process apply", wantApplied)
		}
	}

	// Every intact prefix.
	for i := 0; i <= len(muts); i++ {
		applyAt(t, frames[:boundaries[i]], i)
	}
	// Torn final record: cuts strictly inside the last frame.
	last, end := boundaries[len(muts)-1], boundaries[len(muts)]
	for _, cut := range []int64{last + 1, last + frameHeader - 1, last + frameHeader, (last + end) / 2, end - 1} {
		applyAt(t, frames[:cut], len(muts)-1)
	}
	// Bit flip in the final record's payload: checksum rejects the tail.
	flipped := append([]byte(nil), frames...)
	flipped[(last+frameHeader+end)/2] ^= 0x40
	applyAt(t, flipped, len(muts)-1)
	// Garbage appended after the last intact record.
	applyAt(t, append(append([]byte(nil), frames...), 0xDE, 0xAD, 0xBE, 0xEF), len(muts))
}

// TestShipResumeAfterRestart restarts a replica mid-catch-up and verifies
// it resumes from its persisted data version without duplicate applies,
// even when the next batch overlaps records it already holds.
func TestShipResumeAfterRestart(t *testing.T) {
	muts := genMutations(30, 9, testSeedDatasets)
	primary := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	defer primary.Close()
	applyToStore(t, primary, muts, len(muts))
	frames, _, _, err := primary.ShipWAL(0)
	if err != nil {
		t.Fatal(err)
	}

	rdir := t.TempDir()
	replica := openReplica(t, rdir)
	// Apply a partial batch (a torn transfer), then crash the replica.
	if _, err := replica.ApplyShipped(frames[:len(frames)/2]); err != nil {
		t.Fatal(err)
	}
	mid := replica.Version()
	if mid == 0 || mid == uint64(len(muts)) {
		t.Fatalf("want a strict mid-catch-up version, got %d of %d", mid, len(muts))
	}
	replica.Close()

	re, err := Open(rdir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Version() != mid {
		t.Fatalf("restarted replica version = %d, want %d", re.Version(), mid)
	}
	// The whole batch again: records at or below mid must be skipped.
	n, err := re.ApplyShipped(frames)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(muts)-int(mid) {
		t.Fatalf("applied %d records after restart, want %d", n, len(muts)-int(mid))
	}
	if re.Version() != uint64(len(muts)) {
		t.Fatalf("version = %d, want %d", re.Version(), len(muts))
	}
	if !reflect.DeepEqual(searchFingerprint(t, re.Index()), searchFingerprint(t, primary.Index())) {
		t.Fatal("replica results differ from primary after resumed catch-up")
	}
}

func TestShipSnapshotGapReportsTooOld(t *testing.T) {
	muts := genMutations(12, 6, testSeedDatasets)
	primary := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	defer primary.Close()
	applyToStore(t, primary, muts, len(muts))
	if err := primary.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The snapshot reset the WAL: a replica at version 0 can no longer
	// catch up by log shipping.
	_, _, tooOld, err := primary.ShipWAL(0)
	if err != nil {
		t.Fatal(err)
	}
	if !tooOld {
		t.Fatal("want tooOld for a cursor behind the snapshot")
	}
	// A caught-up cursor is still fine.
	frames, version, tooOld, err := primary.ShipWAL(primary.Version())
	if err != nil || tooOld || len(frames) != 0 || version != primary.Version() {
		t.Fatalf("caught-up ship: frames=%d version=%d tooOld=%v err=%v", len(frames), version, tooOld, err)
	}
}

func TestReplicaRefusesLocalMutations(t *testing.T) {
	replica := openReplica(t, t.TempDir())
	defer replica.Close()
	if _, err := replica.PutDataset(999, "x", randCells(rand.New(rand.NewSource(1)))); !errors.Is(err, ErrReplica) {
		t.Fatalf("PutDataset on replica: %v, want ErrReplica", err)
	}
	if _, err := replica.DeleteDataset(1); !errors.Is(err, ErrReplica) {
		t.Fatalf("DeleteDataset on replica: %v, want ErrReplica", err)
	}
	// And the inverse: a primary refuses shipped records.
	primary := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: -1})
	defer primary.Close()
	if _, err := primary.ApplyShipped(nil); err == nil {
		t.Fatal("ApplyShipped on a non-replica store must fail")
	}
}

func TestFramedLogRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "member.log")
	magic := []byte("DITSTST\x01")
	l, got, err := OpenFramedLog(path, magic, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log returned %d payloads", len(got))
	}
	var want [][]byte
	for i := 0; i < 9; i++ {
		p := []byte(fmt.Sprintf("event-%d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reopen := func(t *testing.T) ([][]byte, *FramedLog) {
		t.Helper()
		l, got, err := OpenFramedLog(path, magic, false)
		if err != nil {
			t.Fatal(err)
		}
		return got, l
	}
	got2, l2 := reopen(t)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("recovered %q, want %q", got2, want)
	}
	l2.Close()

	// Torn tail: cut into the final frame; recovery truncates to the
	// intact prefix, and appends resume cleanly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got3, l3 := reopen(t)
	if !reflect.DeepEqual(got3, want[:len(want)-1]) {
		t.Fatalf("torn-tail recovery returned %d payloads, want %d", len(got3), len(want)-1)
	}
	if err := l3.Append([]byte("after-tear")); err != nil {
		t.Fatal(err)
	}
	l3.Close()
	got4, l4 := reopen(t)
	l4.Close()
	if !reflect.DeepEqual(got4, append(append([][]byte(nil), want[:len(want)-1]...), []byte("after-tear"))) {
		t.Fatal("append after torn-tail recovery did not persist cleanly")
	}

	// Wrong magic refuses to open.
	if _, _, err := OpenFramedLog(path, []byte("OTHERMG\x01"), false); err == nil {
		t.Fatal("want error for mismatched magic")
	}
}
