//go:build unix

package ingest

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on f. The kernel
// releases flock locks when the process dies — even on a crash — so there
// is no stale-lockfile recovery to implement.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
