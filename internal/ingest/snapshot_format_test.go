package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLegacyGobSnapshotLoads pins backward compatibility: a store
// directory whose manifest predates the binary snapshot format (no format
// field, snap-<seq>.gob payload) must recover, and its next compaction
// must migrate it to the binary format.
func TestLegacyGobSnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	idx, err := bootstrap(testSeedDatasets, testSeed)()
	if err != nil {
		t.Fatal(err)
	}
	want := searchFingerprint(t, idx)

	// Hand-build the legacy layout: gob snapshot + format-less manifest.
	snapName := fmt.Sprintf("snap-%016d.gob", 0)
	f, err := os.Create(filepath.Join(dir, snapName))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeManifest(dir, manifest{Snapshot: snapName, Seq: 0, Version: 0}); err != nil {
		t.Fatal(err)
	}

	st, err := Open(dir, Options{Fsync: FsyncNever, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("open legacy store: %v", err)
	}
	if got := searchFingerprint(t, st.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("legacy gob snapshot recovered different results")
	}
	// Mutate and compact: the store must move to the binary format and
	// clean the legacy file up.
	applyToStore(t, st, genMutations(10, 8, testSeedDatasets), 10)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	afterSnap := searchFingerprint(t, st.Index())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Format != formatDSnap {
		t.Fatalf("post-compaction manifest format = %q, want %q", man.Format, formatDSnap)
	}
	if gobs, _ := filepath.Glob(filepath.Join(dir, "snap-*.gob")); len(gobs) != 0 {
		t.Fatalf("legacy snapshots not reclaimed: %v", gobs)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, afterSnap) {
		t.Fatal("migrated store recovered different results")
	}
}

// TestUnknownManifestFormatRejected: a manifest naming a format this
// binary does not understand must fail loudly, not misparse the snapshot.
func TestUnknownManifestFormatRejected(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{Fsync: FsyncNever})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	man.Format = "dsnap/999"
	if err := writeManifest(dir, *man); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("unknown snapshot format must be rejected")
	}
}

// TestMMapStoreParity runs the full mutate/compact/recover cycle with the
// index served from the mmap'd snapshot: results must match the
// heap-resident store and a from-scratch rebuild at every stage, across
// the snapshot swaps that shed the WAL-tail overlay.
func TestMMapStoreParity(t *testing.T) {
	dir := t.TempDir()
	muts := genMutations(60, 9, testSeedDatasets)
	st := openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: 16, MMap: true})
	s := st.Stats()
	if !s.MMap || s.MappedBytes == 0 {
		t.Fatalf("store not serving mmap'd after bootstrap: %+v", s)
	}
	for i := 1; i <= len(muts); i++ {
		applyToStore(t, st, muts[i-1:], 1)
		if i%20 == 0 {
			// Mid-stream checkpoint: snapshot base + live overlay must
			// equal a fresh rebuild of the surviving datasets.
			oracle := oracleIndex(applyOracle(muts, i, testSeed, testSeedDatasets))
			if got := searchFingerprint(t, st.Index()); !reflect.DeepEqual(got, searchFingerprint(t, oracle)) {
				t.Fatalf("after %d mutations: overlay results diverged from rebuild", i)
			}
		}
	}
	// Force a final compaction so the store is freshly swapped, then
	// compare against the oracle.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	oracle := oracleIndex(applyOracle(muts, len(muts), testSeed, testSeedDatasets))
	want := searchFingerprint(t, oracle)
	if got := searchFingerprint(t, st.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("mmap-served store diverged from fresh rebuild")
	}
	if err := st.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Recover mmap'd and heap-resident: identical either way.
	for _, mm := range []bool{true, false} {
		re, err := Open(dir, Options{MMap: mm})
		if err != nil {
			t.Fatalf("reopen mmap=%v: %v", mm, err)
		}
		if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
			t.Fatalf("mmap=%v recovery diverged", mm)
		}
		if s := re.Stats(); s.MMap != mm {
			t.Fatalf("Stats().MMap = %v, want %v", s.MMap, mm)
		}
		re.Close()
	}
}

// TestMMapCorruptSnapshotRejected: recovery from a bit-flipped committed
// snapshot must fail cleanly (the operator restores or re-bootstraps; the
// store never serves silently wrong data).
func TestMMapCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{Fsync: FsyncNever})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dsnap"))
	if len(snaps) != 1 {
		t.Fatalf("want one snapshot, got %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mm := range []bool{true, false} {
		if _, err := Open(dir, Options{MMap: mm}); err == nil {
			t.Fatalf("mmap=%v: corrupt committed snapshot must be rejected", mm)
		}
	}
}
