package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// manifestSchema versions the manifest format.
const manifestSchema = "dits-ingest-manifest/1"

// manifestName is the manifest's filename inside the store directory.
const manifestName = "MANIFEST"

// formatDSnap marks a snapshot in the binary ditsfile format. The empty
// string is the legacy gob encoding: manifests written before the format
// field existed carry no format, and those snapshots must keep loading.
const formatDSnap = "dsnap/1"

// manifest commits a snapshot: it names the snapshot file and records the
// mutation sequence number and data version the snapshot covers. Records
// in the WAL with Seq <= manifest.Seq are redundant and skipped on replay
// (a crash between manifest commit and WAL reset leaves them behind).
type manifest struct {
	Schema   string `json:"schema"`
	Snapshot string `json:"snapshot"`         // snapshot filename within the store dir
	Format   string `json:"format,omitempty"` // snapshot encoding; "" = legacy gob
	Seq      uint64 `json:"seq"`              // last mutation included in the snapshot
	Version  uint64 `json:"version"`          // data version at the snapshot point
}

// readManifest loads the store's manifest, returning (nil, nil) when the
// store directory has never committed one.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ingest: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("ingest: parse manifest: %w", err)
	}
	if m.Schema != manifestSchema {
		return nil, fmt.Errorf("ingest: manifest has schema %q, want %q", m.Schema, manifestSchema)
	}
	if m.Snapshot == "" || m.Snapshot != filepath.Base(m.Snapshot) {
		return nil, fmt.Errorf("ingest: manifest names invalid snapshot %q", m.Snapshot)
	}
	if m.Format != "" && m.Format != formatDSnap {
		return nil, fmt.Errorf("ingest: manifest has unknown snapshot format %q", m.Format)
	}
	return &m, nil
}

// writeManifest commits a manifest atomically: write to a temp file, fsync
// it, rename over MANIFEST, fsync the directory. After the rename either
// the old or the new manifest is fully in place — never a torn mix.
func writeManifest(dir string, m manifest) error {
	m.Schema = manifestSchema
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSynced(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("ingest: commit manifest: %w", err)
	}
	return syncDir(dir)
}

// writeFileSynced writes data to path and flushes it to stable storage.
func writeFileSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ingest: create %s: %w", filepath.Base(path), err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("ingest: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ingest: fsync %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}

// syncDir flushes directory metadata (renames, creates) to stable
// storage. Real flush failures (ENOSPC, EIO) propagate; EINVAL is
// tolerated because some filesystems reject fsync on directories while
// still ordering the metadata safely.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ingest: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return fmt.Errorf("ingest: fsync dir: %w", err)
	}
	return nil
}
