package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/overlap"
)

// testGrid is the shared world of the ingest tests.
func testGrid() geo.Grid {
	return geo.NewGrid(8, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
}

// randCells makes a clustered, non-empty cell set under the test grid.
func randCells(rng *rand.Rand) cellset.Set {
	cx, cy := rng.Float64()*90+5, rng.Float64()*90+5
	n := rng.Intn(40) + 5
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: cx + rng.NormFloat64()*3, Y: cy + rng.NormFloat64()*3}
	}
	return cellset.FromPoints(testGrid(), pts)
}

// seedNodes builds the bootstrap dataset nodes.
func seedNodes(n int, seed int64) []*dataset.Node {
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*dataset.Node, 0, n)
	for i := 0; i < n; i++ {
		if nd := dataset.NewNodeFromCells(i+1, fmt.Sprintf("seed-%d", i+1), randCells(rng)); nd != nil {
			nodes = append(nodes, nd)
		}
	}
	return nodes
}

// bootstrap returns an Options.Bootstrap building the seed index.
func bootstrap(n int, seed int64) func() (*dits.Local, error) {
	return func() (*dits.Local, error) {
		return dits.Build(testGrid(), seedNodes(n, seed), 4), nil
	}
}

// mutation is one oracle-side op mirrored into the store under test.
type mutation struct {
	del   bool
	id    int
	name  string
	cells cellset.Set
}

// genMutations produces a deterministic mix of inserts, updates, and
// deletes that is always applicable in order (deletes target live IDs).
func genMutations(n int, seed int64, liveStart int) []mutation {
	rng := rand.New(rand.NewSource(seed))
	live := make([]int, 0, liveStart+n)
	for i := 1; i <= liveStart; i++ {
		live = append(live, i)
	}
	next := liveStart + 1
	muts := make([]mutation, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.55 || len(live) == 0: // insert
			id := next
			next++
			muts = append(muts, mutation{id: id, name: fmt.Sprintf("ins-%d", id), cells: randCells(rng)})
			live = append(live, id)
		case r < 0.8: // update (re-put an existing ID)
			id := live[rng.Intn(len(live))]
			muts = append(muts, mutation{id: id, name: fmt.Sprintf("upd-%d", id), cells: randCells(rng)})
		default: // delete
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			muts = append(muts, mutation{del: true, id: id})
		}
	}
	return muts
}

// applyOracle applies the first n mutations to a plain map of nodes.
func applyOracle(muts []mutation, n int, seed int64, liveStart int) map[int]*dataset.Node {
	byID := make(map[int]*dataset.Node)
	for _, nd := range seedNodes(liveStart, seed) {
		byID[nd.ID] = nd
	}
	for _, m := range muts[:n] {
		if m.del {
			delete(byID, m.id)
		} else {
			byID[m.id] = dataset.NewNodeFromCells(m.id, m.name, m.cells)
		}
	}
	return byID
}

// oracleIndex builds a fresh index over the oracle's surviving nodes.
func oracleIndex(byID map[int]*dataset.Node) *dits.Local {
	nodes := make([]*dataset.Node, 0, len(byID))
	for _, nd := range byID {
		// Rebuild nodes from raw cells: the oracle's originals may already
		// be indexed elsewhere.
		nodes = append(nodes, dataset.NewNodeFromCells(nd.ID, nd.Name, nd.Cells))
	}
	dataset.SortByID(nodes)
	return dits.Build(testGrid(), nodes, 4)
}

// searchFingerprint runs a fixed query workload and returns the ranked
// results — the byte-identical comparison basis of the recovery property.
func searchFingerprint(t *testing.T, idx *dits.Local) [][]overlap.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var out [][]overlap.Result
	for i := 0; i < 8; i++ {
		q := dataset.NewNodeFromCells(-1, "q", randCells(rng))
		if q == nil {
			continue
		}
		out = append(out, (&overlap.DITSSearcher{Index: idx}).TopK(q, 5))
	}
	return out
}

const (
	testSeedDatasets = 12
	testSeed         = 7
)

func openTestStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.Bootstrap == nil {
		opts.Bootstrap = bootstrap(testSeedDatasets, testSeed)
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

// applyToStore mirrors the first n mutations into the store.
func applyToStore(t *testing.T, st *Store, muts []mutation, n int) {
	t.Helper()
	for i, m := range muts[:n] {
		var err error
		if m.del {
			_, err = st.DeleteDataset(m.id)
		} else {
			_, err = st.PutDataset(m.id, m.name, m.cells)
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
}

func TestStoreMutateAndReopen(t *testing.T) {
	dir := t.TempDir()
	muts := genMutations(40, 2, testSeedDatasets)
	st := openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: -1})
	applyToStore(t, st, muts, len(muts))
	if got, want := st.Version(), uint64(len(muts)); got != want {
		t.Fatalf("version = %d, want %d", got, want)
	}
	want := searchFingerprint(t, st.Index())
	if err := st.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: recovery must not consult Bootstrap.
	re, err := Open(dir, Options{Bootstrap: func() (*dits.Local, error) {
		t.Fatal("Bootstrap called on recovery")
		return nil, nil
	}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Version(); got != uint64(len(muts)) {
		t.Fatalf("recovered version = %d, want %d", got, len(muts))
	}
	if re.Stats().Replayed != len(muts) {
		t.Fatalf("replayed = %d, want %d", re.Stats().Replayed, len(muts))
	}
	if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered search results differ from pre-restart results")
	}
	// And both must match a from-scratch rebuild of the surviving datasets.
	oracle := oracleIndex(applyOracle(muts, len(muts), testSeed, testSeedDatasets))
	if got := searchFingerprint(t, oracle); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered search results differ from a fresh rebuild")
	}
}

// TestCrashRecoveryPrefix is the acceptance property: for ANY prefix of
// the WAL — every record boundary and torn cuts inside the final record —
// restart yields an index byte-identical (by search results) to applying
// that prefix in-process.
func TestCrashRecoveryPrefix(t *testing.T) {
	dir := t.TempDir()
	muts := genMutations(25, 3, testSeedDatasets)
	st := openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: -1})
	// Track the WAL offset after each mutation: boundaries[i] is the file
	// size once i mutations are logged.
	boundaries := []int64{st.Stats().WALBytes}
	for _, m := range muts {
		var err error
		if m.del {
			_, err = st.DeleteDataset(m.id)
		} else {
			_, err = st.PutDataset(m.id, m.name, m.cells)
		}
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.Stats().WALBytes)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	manifestBytes, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.dsnap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %v (%v)", snaps, err)
	}
	snapBytes, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}

	restartAt := func(t *testing.T, wal []byte, wantApplied int) {
		t.Helper()
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, filepath.Base(snaps[0])), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, manifestName), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "wal.log"), wal, 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		defer re.Close()
		if got := re.Stats().Replayed; got != wantApplied {
			t.Fatalf("replayed %d records, want %d", got, wantApplied)
		}
		if err := re.Index().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		oracle := oracleIndex(applyOracle(muts, wantApplied, testSeed, testSeedDatasets))
		if !reflect.DeepEqual(searchFingerprint(t, re.Index()), searchFingerprint(t, oracle)) {
			t.Fatalf("prefix %d: recovered results differ from in-process apply", wantApplied)
		}
	}

	// Every intact prefix.
	for i := 0; i <= len(muts); i++ {
		restartAt(t, walBytes[:boundaries[i]], i)
	}
	// Torn final record: cuts strictly inside the last frame.
	last, end := boundaries[len(muts)-1], boundaries[len(muts)]
	for _, cut := range []int64{last + 1, last + frameHeader - 1, last + frameHeader, (last + end) / 2, end - 1} {
		restartAt(t, walBytes[:cut], len(muts)-1)
	}
	// Bit flip in the final record's payload: checksum rejects the tail.
	flipped := append([]byte(nil), walBytes...)
	flipped[(last+frameHeader+end)/2] ^= 0x40
	restartAt(t, flipped, len(muts)-1)
	// Garbage appended after the last intact record.
	garbage := append(append([]byte(nil), walBytes...), 0xDE, 0xAD, 0xBE, 0xEF)
	restartAt(t, garbage, len(muts))
}

// TestRecoverySkipsSnapshottedRecords exercises the crash window between
// manifest commit and WAL reset: records at or below the manifest's
// sequence must be skipped, not re-applied.
func TestRecoverySkipsSnapshottedRecords(t *testing.T) {
	dir := t.TempDir()
	muts := genMutations(20, 4, testSeedDatasets)
	st := openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: -1})
	applyToStore(t, st, muts, 12)
	preSnapWAL, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	applyToStore(t, st, muts[12:], len(muts)-12)
	want := searchFingerprint(t, st.Index())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: prepend the already-snapshotted records back in
	// front of the tail, exactly what a WAL that was never reset holds.
	tail, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	merged := append(append([]byte(nil), preSnapWAL...), tail[len(walMagic):]...)
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), merged, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().Replayed; got != len(muts)-12 {
		t.Fatalf("replayed %d, want %d (snapshotted records must be skipped)", got, len(muts)-12)
	}
	if got := re.Version(); got != uint64(len(muts)) {
		t.Fatalf("version = %d, want %d", got, len(muts))
	}
	if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("results differ after snapshotted-record skip")
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	muts := genMutations(30, 5, testSeedDatasets)
	st := openTestStore(t, dir, Options{Fsync: FsyncNever, SnapshotEvery: 10})
	applyToStore(t, st, muts, len(muts))
	// The background compactor is asynchronous; wait for it to have
	// committed at least one snapshot and drained the WAL tail below the
	// threshold.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := st.Stats()
		if s.Snapshots >= 1 && s.SinceSnapshot < len(muts) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background snapshot never ran: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := searchFingerprint(t, st.Index())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Version(); got != uint64(len(muts)) {
		t.Fatalf("version = %d, want %d", got, len(muts))
	}
	if re.Stats().Replayed >= len(muts) {
		t.Fatalf("replayed %d records; compaction should have absorbed some", re.Stats().Replayed)
	}
	if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
		t.Fatal("results differ after compaction + restart")
	}
	// Exactly one snapshot file should survive.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.dsnap"))
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot file, got %v", snaps)
	}
}

func TestMutationErrors(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever})
	defer st.Close()
	if _, err := st.DeleteDataset(999999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: err = %v, want ErrNotFound", err)
	}
	if _, err := st.PutDataset(5, "empty", nil); err == nil {
		t.Fatal("put with no cells must fail")
	}
	// A name too long for the log's u16 length prefix is rejected before
	// logging — truncating it only on disk would make the recovered index
	// diverge from the acknowledged live one.
	longName := string(make([]byte, maxNameBytes+1))
	if _, err := st.PutDataset(6, longName, randCells(rand.New(rand.NewSource(2)))); err == nil {
		t.Fatal("put with an over-long name must fail")
	}
	v := st.Version()
	if v != 0 {
		t.Fatalf("failed mutations must not bump the version (got %d)", v)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.PutDataset(7, "late", randCells(rand.New(rand.NewSource(1)))); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: err = %v, want ErrClosed", err)
	}
}

func TestConcurrentSearchesDuringMutations(t *testing.T) {
	st := openTestStore(t, t.TempDir(), Options{Fsync: FsyncNever, SnapshotEvery: 8})
	defer st.Close()
	muts := genMutations(120, 6, testSeedDatasets)
	done := make(chan error, 1)
	go func() {
		for _, m := range muts {
			var err error
			if m.del {
				_, err = st.DeleteDataset(m.id)
			} else {
				_, err = st.PutDataset(m.id, m.name, m.cells)
			}
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		q := dataset.NewNodeFromCells(-1, "q", randCells(rng))
		st.View(func(idx *dits.Local) {
			rs := (&overlap.DITSSearcher{Index: idx}).TopK(q, 5)
			for j := 1; j < len(rs); j++ {
				if overlap.Better(rs[j], rs[j-1]) {
					t.Errorf("unsorted results under concurrent mutation")
				}
			}
		})
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := st.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTornMagicHeaderRecovers covers a crash during the very first WAL
// init: a partial magic header (no record can have been acknowledged yet)
// must reinitialize, not brick the store.
func TestTornMagicHeaderRecovers(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{Fsync: FsyncNever})
	want := searchFingerprint(t, st.Index())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 7} {
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), walMagic[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("torn %d-byte magic: %v", n, err)
		}
		if got := searchFingerprint(t, re.Index()); !reflect.DeepEqual(got, want) {
			t.Fatalf("torn %d-byte magic: results differ after recovery", n)
		}
		re.Close()
	}
	// A file that is NOT a magic prefix is still rejected loudly.
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), []byte("GARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("non-WAL garbage must be rejected, not reinitialized")
	}
}

func TestStoreDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, Options{Fsync: FsyncNever})
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("a second Open of a live store directory must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
}

func TestParseFsyncMode(t *testing.T) {
	if m, err := ParseFsyncMode("always"); err != nil || m != FsyncAlways {
		t.Fatalf("always: %v %v", m, err)
	}
	if m, err := ParseFsyncMode("never"); err != nil || m != FsyncNever {
		t.Fatalf("never: %v %v", m, err)
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode must error")
	}
}
