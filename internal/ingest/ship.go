package ingest

import (
	"errors"
	"fmt"
	"os"
)

// WAL shipping: the replication path of a source. A replica store opens
// with Options.Replica and catches up by pulling the primary's WAL tail
// keyed on its own data version — sequence numbers and the data version
// advance in lockstep (one bump per applied mutation), so the version IS
// the replication cursor. Shipped bytes are raw WAL frames: the replica
// parses them with the same scan recovery uses, appends them to its own
// WAL (original sequence numbers preserved), and applies them, making
// its on-disk state a faithful prefix of the primary's history. A torn
// or truncated shipped tail is tolerated exactly like a torn local WAL
// tail — the intact prefix applies, the rest waits for the next pull.

// ErrReplica reports a local mutation against a replica store: replicas
// apply shipped records only, so their history cannot diverge from the
// primary's.
var ErrReplica = errors.New("ingest: store is a replica (read-only; mutations go to the primary)")

// ErrSnapshotGap reports a catch-up cursor older than the primary's
// snapshot: the records in between were compacted away, so log shipping
// cannot bridge the gap and the replica must be reseeded from a copy of
// the primary's store directory (see docs/OPERATIONS.md).
var ErrSnapshotGap = errors.New("ingest: replica is behind the primary's snapshot; reseed it from a store copy")

// maxShipBytes soft-caps one shipped batch; a replica further behind
// catches up over several pulls, each applied durably before the next.
const maxShipBytes = 8 << 20

// Replica reports whether the store was opened as a replica.
func (st *Store) Replica() bool { return st.opts.Replica }

// ShipWAL returns the raw WAL frames of every record with sequence number
// beyond after, for a replica whose data version is after. The returned
// version is the store's data version at ship time; tooOld reports that
// the cursor precedes the newest snapshot (the records were compacted
// away — ErrSnapshotGap territory on the replica side). A batch is
// soft-capped at maxShipBytes; the caller pulls again from its new
// version until it reaches the shipped version.
func (st *Store) ShipWAL(after uint64) (frames []byte, version uint64, tooOld bool, err error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if st.closed {
		return nil, 0, false, ErrClosed
	}
	version = st.version.Load()
	if after >= st.seq {
		return nil, version, false, nil // replica is caught up
	}
	if after < st.snapSeq {
		return nil, version, true, nil // compacted away; reseed required
	}
	data, err := os.ReadFile(st.wal.path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("ingest: read wal for shipping: %w", err)
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != string(walMagic) {
		return nil, 0, false, fmt.Errorf("ingest: %s is not a WAL (bad magic)", st.wal.path)
	}
	body := data[len(walMagic):]
	var out []byte
	lastSeq := uint64(0)
	walkFrames(body, func(off int, payload []byte) bool {
		rec, derr := decodeRecord(payload)
		if derr != nil || rec.Seq <= lastSeq {
			return false
		}
		lastSeq = rec.Seq
		if rec.Seq > after {
			out = append(out, body[off:off+frameHeader+len(payload)]...)
		}
		return len(out) < maxShipBytes
	})
	return out, version, false, nil
}

// ApplyShipped applies a shipped WAL tail to a replica store: each intact
// frame is decoded, de-duplicated by sequence number, WAL-logged locally
// (original sequence preserved), and applied to the live index, bumping
// the data version — WAL-then-apply, exactly like a primary mutation. A
// record at or below the replica's current sequence is skipped, so a
// replica restarting mid-catch-up (or receiving overlapping batches)
// resumes from its data version without duplicate applies; a sequence
// gap is a hard error (the cursor protocol never produces one). A torn
// tail in frames stops the scan at the last intact record — the applied
// count is returned either way.
func (st *Store) ApplyShipped(frames []byte) (applied int, err error) {
	st.writeMu.Lock()
	defer st.writeMu.Unlock()
	if st.closed {
		return 0, ErrClosed
	}
	if !st.opts.Replica {
		return 0, errors.New("ingest: ApplyShipped on a non-replica store (local mutations would fork the history)")
	}
	payloads, _ := ScanFrames(frames)
	for _, p := range payloads {
		rec, derr := decodeRecord(p)
		if derr != nil {
			break // torn mid-frame content: stop at the intact prefix
		}
		if rec.Seq <= st.seq {
			continue // duplicate from an overlapping batch or a restart
		}
		if rec.Seq != st.seq+1 {
			return applied, fmt.Errorf("ingest: shipped record seq %d does not follow replica seq %d", rec.Seq, st.seq)
		}
		if err := st.wal.append(rec); err != nil {
			return applied, err
		}
		st.seq = rec.Seq
		st.mu.Lock()
		aerr := st.apply(rec)
		if aerr == nil {
			st.version.Add(1)
		}
		st.mu.Unlock()
		if aerr != nil {
			// The primary applied this record cleanly, so the replica must
			// too unless its state diverged — surface loudly.
			return applied, fmt.Errorf("ingest: apply shipped seq %d: %w", rec.Seq, aerr)
		}
		st.sinceSnap++
		applied++
	}
	st.maybeCompactLocked()
	return applied, nil
}
