package transport

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sync"
)

// On a connection that negotiated compression, every request body and
// every OK response payload is framed as one flag byte followed by the
// payload: flagRaw means the payload follows verbatim, flagGzip means it
// is gzip-compressed. Small payloads (under compressMin) and payloads
// gzip cannot shrink ship raw, so compression never costs bytes — only
// the one-byte flag, which the handshake opted into. Error payloads
// (status 1) are always raw text, so failures stay debuggable on the
// wire regardless of what was negotiated.
const (
	flagRaw  = 0
	flagGzip = 1

	// compressMin is the smallest payload worth running through gzip:
	// below it the header/trailer overhead dominates any savings.
	compressMin = 512
)

var gzWriters = sync.Pool{New: func() any {
	return gzip.NewWriter(io.Discard)
}}

var gzReaders sync.Pool // of *gzip.Reader

// appendCompressed appends the compression framing of body to dst:
// flagGzip plus the gzip stream when that is smaller, flagRaw plus the
// body verbatim otherwise.
func appendCompressed(dst, body []byte) ([]byte, error) {
	if len(body) >= compressMin {
		scratch := getBuf()
		buf := bytes.NewBuffer((*scratch)[:0])
		zw := gzWriters.Get().(*gzip.Writer)
		zw.Reset(buf)
		_, werr := zw.Write(body)
		cerr := zw.Close()
		gzWriters.Put(zw)
		if werr != nil || cerr != nil {
			*scratch = buf.Bytes()
			putBuf(scratch)
			return dst, fmt.Errorf("transport: compress: %w", errors.Join(werr, cerr))
		}
		if buf.Len() < len(body) {
			dst = append(append(dst, flagGzip), buf.Bytes()...)
			*scratch = buf.Bytes()
			putBuf(scratch)
			return dst, nil
		}
		*scratch = buf.Bytes()
		putBuf(scratch)
	}
	return append(append(dst, flagRaw), body...), nil
}

// decompressed undoes appendCompressed's framing. For raw payloads the
// returned slice aliases data; for gzip payloads it is freshly inflated,
// capped at maxFrame to keep a corrupt or hostile stream from ballooning.
func decompressed(data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, errors.New("transport: missing compression flag")
	}
	switch data[0] {
	case flagRaw:
		return data[1:], nil
	case flagGzip:
		var zr *gzip.Reader
		if v := gzReaders.Get(); v != nil {
			zr = v.(*gzip.Reader)
			if err := zr.Reset(bytes.NewReader(data[1:])); err != nil {
				return nil, fmt.Errorf("transport: decompress: %w", err)
			}
		} else {
			var err error
			if zr, err = gzip.NewReader(bytes.NewReader(data[1:])); err != nil {
				return nil, fmt.Errorf("transport: decompress: %w", err)
			}
		}
		out, err := io.ReadAll(io.LimitReader(zr, maxFrame+1))
		zr.Close()
		gzReaders.Put(zr)
		if err != nil {
			return nil, fmt.Errorf("transport: decompress: %w", err)
		}
		if len(out) > maxFrame {
			return nil, errors.New("transport: decompressed payload too large")
		}
		return out, nil
	default:
		return nil, fmt.Errorf("transport: unknown compression flag %d", data[0])
	}
}
