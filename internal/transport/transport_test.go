package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func echoHandler(method string, body []byte) ([]byte, error) {
	if method == "fail" {
		return nil, errors.New("boom")
	}
	out := append([]byte(method+":"), body...)
	return out, nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type msg struct {
		K     int
		Cells []uint64
		Name  string
	}
	in := msg{K: 7, Cells: []uint64{1, 5, 9}, Name: "q"}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.K != in.K || out.Name != in.Name || len(out.Cells) != 3 || out.Cells[2] != 9 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Error("Decode of garbage should error")
	}
}

func TestInProcCountsBytes(t *testing.T) {
	m := &Metrics{}
	p := &InProc{Name: "s1", Handler: echoHandler, Metrics: m}
	resp, err := p.Call("hello", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello:world" {
		t.Fatalf("resp = %q", resp)
	}
	if m.Messages() != 1 {
		t.Errorf("Messages = %d, want 1", m.Messages())
	}
	if m.BytesSent() != int64(len("world")+len("hello")) {
		t.Errorf("BytesSent = %d", m.BytesSent())
	}
	if m.BytesReceived() != int64(len("hello:world")) {
		t.Errorf("BytesReceived = %d", m.BytesReceived())
	}
	if _, err := p.Call("fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error not propagated: %v", err)
	}
	// Errors do not count as delivered traffic.
	if m.Messages() != 1 {
		t.Errorf("failed call counted: %d", m.Messages())
	}
	p.Close()
}

func TestMetricsTransmissionTime(t *testing.T) {
	m := &Metrics{}
	m.Record("test.method", 600, 400) // 1000 bytes total
	if got := m.TransmissionTime(1000); got != time.Second {
		t.Errorf("TransmissionTime = %v, want 1s", got)
	}
	if got := m.TransmissionTime(0); got != 0 {
		t.Errorf("zero bandwidth should yield 0, got %v", got)
	}
	pm := m.PerMethod()
	if ms := pm["test.method"]; ms.Calls != 1 || ms.BytesSent != 600 || ms.BytesReceived != 400 {
		t.Errorf("per-method stats = %+v", ms)
	}
	m.RecordFailure("src-a")
	m.RecordFailure("src-a")
	if m.TotalFailures() != 2 || m.Failures()["src-a"] != 2 {
		t.Errorf("failures = %d %v", m.TotalFailures(), m.Failures())
	}
	m.Reset()
	if m.Bytes() != 0 || m.Messages() != 0 || len(m.PerMethod()) != 0 || m.TotalFailures() != 0 {
		t.Error("Reset did not zero counters")
	}
	var nilM *Metrics
	nilM.Record("x", 1, 1)  // must not panic
	nilM.RecordFailure("x") // must not panic
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := &Metrics{}
	peer, err := Dial("s1", srv.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	for i := 0; i < 10; i++ {
		resp, err := peer.Call("m", []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "m:payload" {
			t.Fatalf("resp = %q", resp)
		}
	}
	if m.Messages() != 10 {
		t.Errorf("Messages = %d, want 10", m.Messages())
	}
	if _, err := peer.Call("fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("remote error not propagated: %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &Metrics{}
			peer, err := Dial("s", srv.Addr(), m)
			if err != nil {
				errs <- err
				return
			}
			defer peer.Close()
			for i := 0; i < 50; i++ {
				if _, err := peer.Call("x", []byte("y")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerClosedRejects(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	peer, err := Dial("s", addr, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The in-flight connection is closed by the server; calls now fail.
	if _, err := peer.Call("m", []byte("b")); err == nil {
		t.Error("Call after server close should error")
	}
	peer.Close()
}
