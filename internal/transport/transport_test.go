package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dits/internal/metrics"
)

// echoHandler answers method+":"+request for string requests; the method
// "fail" answers a handler error.
func echoHandler(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
	if method == "fail" {
		return nil, errors.New("boom")
	}
	var s string
	if len(body) > 0 {
		if err := codec.Decode(body, &s); err != nil {
			return nil, err
		}
	}
	out := method + ":" + s
	return &out, nil
}

// echo round-trips one string call through a peer.
func echo(t *testing.T, p Peer, method, payload string) string {
	t.Helper()
	var resp string
	if err := p.Call(context.Background(), method, &payload, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type msg struct {
		K     int
		Cells []uint64
		Name  string
	}
	in := msg{K: 7, Cells: []uint64{1, 5, 9}, Name: "q"}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.K != in.K || out.Name != in.Name || len(out.Cells) != 3 || out.Cells[2] != 9 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Error("Decode of garbage should error")
	}
}

func TestInProcCountsBytes(t *testing.T) {
	m := &Metrics{}
	p := &InProc{Name: "s1", Handler: echoHandler, Metrics: m}
	if got := echo(t, p, "hello", "world"); got != "hello:world" {
		t.Fatalf("resp = %q", got)
	}
	if m.Messages() != 1 {
		t.Errorf("Messages = %d, want 1", m.Messages())
	}
	reqBytes, _ := Encode("world")
	if m.BytesSent() != int64(len(reqBytes)+len("hello")) {
		t.Errorf("BytesSent = %d", m.BytesSent())
	}
	respBytes, _ := Encode("hello:world")
	if m.BytesReceived() != int64(len(respBytes)) {
		t.Errorf("BytesReceived = %d", m.BytesReceived())
	}
	if err := p.Call(context.Background(), "fail", nil, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error not propagated: %v", err)
	}
	// Errors do not count as delivered traffic.
	if m.Messages() != 1 {
		t.Errorf("failed call counted: %d", m.Messages())
	}
	if info := p.WireInfo(); info.Codec != CodecGob || info.Compression {
		t.Errorf("WireInfo = %+v, want plain gob", info)
	}
	p.Close()
}

func TestInProcHonorsCancelledContext(t *testing.T) {
	p := &InProc{Name: "s1", Handler: echoHandler, Metrics: &Metrics{}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Call(ctx, "m", nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Call on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestMetricsTransmissionTime(t *testing.T) {
	m := &Metrics{}
	m.Record("test.method", 600, 400) // 1000 bytes total
	if got := m.TransmissionTime(1000); got != time.Second {
		t.Errorf("TransmissionTime = %v, want 1s", got)
	}
	if got := m.TransmissionTime(0); got != 0 {
		t.Errorf("zero bandwidth should yield 0, got %v", got)
	}
	pm := m.PerMethod()
	if ms := pm["test.method"]; ms.Calls != 1 || ms.BytesSent != 600 || ms.BytesReceived != 400 {
		t.Errorf("per-method stats = %+v", ms)
	}
	m.RecordFailure("src-a")
	m.RecordFailure("src-a")
	if m.TotalFailures() != 2 || m.Failures()["src-a"] != 2 {
		t.Errorf("failures = %d %v", m.TotalFailures(), m.Failures())
	}
	m.RecordCompression(1000, 300, true)
	if raw, wire := m.CompressionBytes(); raw != 1000 || wire != 300 {
		t.Errorf("CompressionBytes = %d, %d", raw, wire)
	}
	if m.CompressedMessages() != 1 {
		t.Errorf("CompressedMessages = %d", m.CompressedMessages())
	}
	m.Reset()
	if m.Bytes() != 0 || m.Messages() != 0 || len(m.PerMethod()) != 0 || m.TotalFailures() != 0 {
		t.Error("Reset did not zero counters")
	}
	if raw, wire := m.CompressionBytes(); raw != 0 || wire != 0 || m.CompressedMessages() != 0 {
		t.Error("Reset did not zero compression counters")
	}
	var nilM *Metrics
	nilM.Record("x", 1, 1)             // must not panic
	nilM.RecordFailure("x")            // must not panic
	nilM.RecordCompression(1, 1, true) // must not panic
}

func TestMetricsRegisterExposes(t *testing.T) {
	m := &Metrics{}
	m.Record("overlap.search", 100, 50)
	m.RecordFailure("src-b")
	m.RecordCompression(90, 40, true)
	r := metrics.NewRegistry()
	m.Register(r)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"dits_transport_messages_total 1",
		"dits_transport_sent_bytes_total 100",
		`dits_transport_method_calls_total{method="overlap.search"} 1`,
		`dits_transport_source_failures_total{source="src-b"} 1`,
		"dits_transport_compress_raw_bytes_total 90",
		"dits_transport_compress_wire_bytes_total 40",
		"dits_transport_compressed_messages_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := &Metrics{}
	peer, err := Dial("s1", srv.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	for i := 0; i < 10; i++ {
		if got := echo(t, peer, "m", "payload"); got != "m:payload" {
			t.Fatalf("resp = %q", got)
		}
	}
	if m.Messages() != 10 {
		t.Errorf("Messages = %d, want 10", m.Messages())
	}
	if err := peer.Call(context.Background(), "fail", nil, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("remote error not propagated: %v", err)
	}
}

// TestTCPNegotiation pins the handshake outcomes: a default dial against a
// default server negotiates the preferred non-gob codec with compression,
// and both sides expose the agreement through WireInfo.
func TestTCPNegotiation(t *testing.T) {
	reverse := reverseCodec{}
	RegisterCodec(reverse)
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
		var s string
		if err := codec.Decode(body, &s); err != nil {
			return nil, err
		}
		out := method + ":" + s
		return &out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peer, err := DialWith("s1", srv.Addr(), &Metrics{}, DialConfig{Codec: reverse.Name()})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if info := peer.WireInfo(); info.Codec != reverse.Name() || !info.Compression {
		t.Fatalf("WireInfo = %+v, want %s with compression", info, reverse.Name())
	}
	if got := echo(t, peer, "m", "payload"); got != "m:payload" {
		t.Fatalf("resp = %q", got)
	}

	// Unknown forced codec must fail the dial, not silently fall back.
	if _, err := DialWith("s1", srv.Addr(), &Metrics{}, DialConfig{Codec: "no-such-codec/9"}); err == nil {
		t.Fatal("dial with unknown codec should error")
	}

	// NoCompress on either side disables compression but keeps the codec.
	plain, err := DialWith("s1", srv.Addr(), &Metrics{}, DialConfig{NoCompress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if info := plain.WireInfo(); info.Compression {
		t.Fatalf("NoCompress dial negotiated compression: %+v", info)
	}
}

// TestTCPLegacyInterop pins the gob fallback in both directions: a modern
// dialer against a server that predates the handshake (NoNegotiate) and a
// legacy dialer (NoNegotiate) against a modern server both land on plain
// gob and still exchange requests.
func TestTCPLegacyInterop(t *testing.T) {
	t.Run("legacy server", func(t *testing.T) {
		srv, err := ServeWith("127.0.0.1:0", echoHandler, ServeConfig{NoNegotiate: true})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		peer, err := Dial("s1", srv.Addr(), &Metrics{})
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()
		if info := peer.WireInfo(); info.Codec != CodecGob || info.Compression {
			t.Fatalf("WireInfo = %+v, want plain gob fallback", info)
		}
		if got := echo(t, peer, "m", "x"); got != "m:x" {
			t.Fatalf("resp = %q", got)
		}
	})
	t.Run("legacy dialer", func(t *testing.T) {
		srv, err := Serve("127.0.0.1:0", echoHandler)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		peer, err := DialWith("s1", srv.Addr(), &Metrics{}, DialConfig{NoNegotiate: true})
		if err != nil {
			t.Fatal(err)
		}
		defer peer.Close()
		if info := peer.WireInfo(); info.Codec != CodecGob || info.Compression {
			t.Fatalf("WireInfo = %+v, want plain gob", info)
		}
		if got := echo(t, peer, "m", "x"); got != "m:x" {
			t.Fatalf("resp = %q", got)
		}
	})
}

// TestTCPCompressionRoundTrip ships a payload far above compressMin and
// checks it arrives intact with the compression counters moving.
func TestTCPCompressionRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := &Metrics{}
	peer, err := Dial("s1", srv.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if info := peer.WireInfo(); !info.Compression {
		t.Fatalf("default dial did not negotiate compression: %+v", info)
	}
	big := strings.Repeat("compressible payload ", 1024)
	if got := echo(t, peer, "m", big); got != "m:"+big {
		t.Fatalf("big payload mangled (len %d)", len(got))
	}
	raw, wire := m.CompressionBytes()
	if raw == 0 || wire == 0 || wire >= raw {
		t.Fatalf("compression bytes raw=%d wire=%d, want wire < raw", raw, wire)
	}
	if m.CompressedMessages() == 0 {
		t.Fatal("no payload shipped compressed")
	}
	// Tiny payloads stay raw (below compressMin) but still round-trip.
	if got := echo(t, peer, "m", "tiny"); got != "m:tiny" {
		t.Fatalf("resp = %q", got)
	}
}

// TestTCPDeadlinePropagates checks both halves of the deadline contract: the
// client call fails once the budget runs out, and the server-side handler's
// context expires (so the source abandons the work too).
func TestTCPDeadlinePropagates(t *testing.T) {
	handlerCtxExpired := make(chan bool, 1)
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
		if _, ok := ctx.Deadline(); !ok {
			handlerCtxExpired <- false
			return nil, nil
		}
		select {
		case <-ctx.Done():
			handlerCtxExpired <- true
		case <-time.After(2 * time.Second):
			handlerCtxExpired <- false
		}
		// Reply well after the caller's deadline so the client-side failure
		// is deterministic, not a race against the in-flight response.
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peer, err := Dial("s1", srv.Addr(), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	payload := "x"
	if err := peer.Call(ctx, "m", &payload, nil); err == nil {
		t.Fatal("call past deadline should error")
	}
	select {
	case expired := <-handlerCtxExpired:
		if !expired {
			t.Fatal("handler context did not carry the caller's deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed the request")
	}

	// An already-expired context fails before touching the wire.
	expiredCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := peer.Call(expiredCtx, "m", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx = %v, want DeadlineExceeded", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &Metrics{}
			peer, err := Dial("s", srv.Addr(), m)
			if err != nil {
				errs <- err
				return
			}
			defer peer.Close()
			for i := 0; i < 50; i++ {
				payload := "y"
				var resp string
				if err := peer.Call(context.Background(), "x", &payload, &resp); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerClosedRejects(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	peer, err := Dial("s", addr, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The in-flight connection is closed by the server; calls now fail.
	payload := "b"
	if err := peer.Call(context.Background(), "m", &payload, nil); err == nil {
		t.Error("Call after server close should error")
	}
	peer.Close()
}

// reverseCodec is a registrable toy codec for negotiation tests: gob with
// every payload byte-reversed, so accidental gob fallback is detectable.
type reverseCodec struct{}

func (reverseCodec) Name() string { return "test-reverse/1" }

func (reverseCodec) Append(dst []byte, v any) ([]byte, error) {
	start := len(dst)
	out, err := GobCodec.Append(dst, v)
	if err != nil {
		return dst, err
	}
	tail := out[start:]
	for i, j := 0, len(tail)-1; i < j; i, j = i+1, j-1 {
		tail[i], tail[j] = tail[j], tail[i]
	}
	return out, nil
}

func (reverseCodec) Decode(data []byte, v any) error {
	rev := make([]byte, len(data))
	for i, b := range data {
		rev[len(data)-1-i] = b
	}
	return GobCodec.Decode(rev, v)
}
