package transport

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dits/internal/metrics"
)

func echoHandler(ctx context.Context, method string, body []byte) ([]byte, error) {
	if method == "fail" {
		return nil, errors.New("boom")
	}
	out := append([]byte(method+":"), body...)
	return out, nil
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type msg struct {
		K     int
		Cells []uint64
		Name  string
	}
	in := msg{K: 7, Cells: []uint64{1, 5, 9}, Name: "q"}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.K != in.K || out.Name != in.Name || len(out.Cells) != 3 || out.Cells[2] != 9 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if err := Decode([]byte("garbage"), &out); err == nil {
		t.Error("Decode of garbage should error")
	}
}

func TestInProcCountsBytes(t *testing.T) {
	m := &Metrics{}
	p := &InProc{Name: "s1", Handler: echoHandler, Metrics: m}
	resp, err := p.Call(context.Background(), "hello", []byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hello:world" {
		t.Fatalf("resp = %q", resp)
	}
	if m.Messages() != 1 {
		t.Errorf("Messages = %d, want 1", m.Messages())
	}
	if m.BytesSent() != int64(len("world")+len("hello")) {
		t.Errorf("BytesSent = %d", m.BytesSent())
	}
	if m.BytesReceived() != int64(len("hello:world")) {
		t.Errorf("BytesReceived = %d", m.BytesReceived())
	}
	if _, err := p.Call(context.Background(), "fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error not propagated: %v", err)
	}
	// Errors do not count as delivered traffic.
	if m.Messages() != 1 {
		t.Errorf("failed call counted: %d", m.Messages())
	}
	p.Close()
}

func TestInProcHonorsCancelledContext(t *testing.T) {
	p := &InProc{Name: "s1", Handler: echoHandler, Metrics: &Metrics{}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Call(ctx, "m", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Call on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestMetricsTransmissionTime(t *testing.T) {
	m := &Metrics{}
	m.Record("test.method", 600, 400) // 1000 bytes total
	if got := m.TransmissionTime(1000); got != time.Second {
		t.Errorf("TransmissionTime = %v, want 1s", got)
	}
	if got := m.TransmissionTime(0); got != 0 {
		t.Errorf("zero bandwidth should yield 0, got %v", got)
	}
	pm := m.PerMethod()
	if ms := pm["test.method"]; ms.Calls != 1 || ms.BytesSent != 600 || ms.BytesReceived != 400 {
		t.Errorf("per-method stats = %+v", ms)
	}
	m.RecordFailure("src-a")
	m.RecordFailure("src-a")
	if m.TotalFailures() != 2 || m.Failures()["src-a"] != 2 {
		t.Errorf("failures = %d %v", m.TotalFailures(), m.Failures())
	}
	m.Reset()
	if m.Bytes() != 0 || m.Messages() != 0 || len(m.PerMethod()) != 0 || m.TotalFailures() != 0 {
		t.Error("Reset did not zero counters")
	}
	var nilM *Metrics
	nilM.Record("x", 1, 1)  // must not panic
	nilM.RecordFailure("x") // must not panic
}

func TestMetricsRegisterExposes(t *testing.T) {
	m := &Metrics{}
	m.Record("overlap.search", 100, 50)
	m.RecordFailure("src-b")
	r := metrics.NewRegistry()
	m.Register(r)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"dits_transport_messages_total 1",
		"dits_transport_sent_bytes_total 100",
		`dits_transport_method_calls_total{method="overlap.search"} 1`,
		`dits_transport_source_failures_total{source="src-b"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := &Metrics{}
	peer, err := Dial("s1", srv.Addr(), m)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	for i := 0; i < 10; i++ {
		resp, err := peer.Call(context.Background(), "m", []byte("payload"))
		if err != nil {
			t.Fatal(err)
		}
		if string(resp) != "m:payload" {
			t.Fatalf("resp = %q", resp)
		}
	}
	if m.Messages() != 10 {
		t.Errorf("Messages = %d, want 10", m.Messages())
	}
	if _, err := peer.Call(context.Background(), "fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("remote error not propagated: %v", err)
	}
}

// TestTCPDeadlinePropagates checks both halves of the deadline contract: the
// client call fails once the budget runs out, and the server-side handler's
// context expires (so the source abandons the work too).
func TestTCPDeadlinePropagates(t *testing.T) {
	handlerCtxExpired := make(chan bool, 1)
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, method string, body []byte) ([]byte, error) {
		if _, ok := ctx.Deadline(); !ok {
			handlerCtxExpired <- false
			return body, nil
		}
		select {
		case <-ctx.Done():
			handlerCtxExpired <- true
		case <-time.After(2 * time.Second):
			handlerCtxExpired <- false
		}
		// Reply well after the caller's deadline so the client-side failure
		// is deterministic, not a race against the in-flight response.
		time.Sleep(200 * time.Millisecond)
		return body, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peer, err := Dial("s1", srv.Addr(), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := peer.Call(ctx, "m", []byte("x")); err == nil {
		t.Fatal("call past deadline should error")
	}
	select {
	case expired := <-handlerCtxExpired:
		if !expired {
			t.Fatal("handler context did not carry the caller's deadline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed the request")
	}

	// An already-expired context fails before touching the wire.
	expiredCtx, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := peer.Call(expiredCtx, "m", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx = %v, want DeadlineExceeded", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &Metrics{}
			peer, err := Dial("s", srv.Addr(), m)
			if err != nil {
				errs <- err
				return
			}
			defer peer.Close()
			for i := 0; i < 50; i++ {
				if _, err := peer.Call(context.Background(), "x", []byte("y")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPServerClosedRejects(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	peer, err := Dial("s", addr, &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// The in-flight connection is closed by the server; calls now fail.
	if _, err := peer.Call(context.Background(), "m", []byte("b")); err == nil {
		t.Error("Call after server close should error")
	}
	peer.Close()
}
