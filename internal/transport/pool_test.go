package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRoundTrip(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := &Metrics{}
	pool := DialPool("s1", srv.Addr(), 4, m)
	defer pool.Close()

	if got := echo(t, pool, "m", "payload"); got != "m:payload" {
		t.Fatalf("resp = %q", got)
	}
	if m.Messages() != 1 {
		t.Errorf("Messages = %d, want 1", m.Messages())
	}
	st := pool.Stats()
	if st.Dials != 1 || st.Idle != 1 || st.InUse != 0 {
		t.Errorf("stats after one call = %+v", st)
	}
	if info := pool.WireInfo(); info.Codec == "" {
		t.Error("pool did not surface its connections' WireInfo")
	}
}

func TestPoolRemoteErrorKeepsConnection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := DialPool("s1", srv.Addr(), 2, &Metrics{})
	defer pool.Close()

	if err := pool.Call(context.Background(), "fail", nil, nil); err == nil {
		t.Fatal("remote error not propagated")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) || re.Msg != "boom" {
			t.Fatalf("want RemoteError boom, got %v", err)
		}
	}
	// The connection that carried the handler error is healthy: it must be
	// parked, not discarded, and the next call must reuse it.
	if st := pool.Stats(); st.Idle != 1 || st.Discards != 0 {
		t.Fatalf("stats after remote error = %+v", st)
	}
	if got := echo(t, pool, "m", "x"); got != "m:x" {
		t.Fatalf("resp = %q", got)
	}
	if st := pool.Stats(); st.Dials != 1 {
		t.Fatalf("redialed a healthy connection: %+v", st)
	}
}

func TestPoolRetriesStaleIdleConnection(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	pool := DialPool("s1", addr, 2, &Metrics{})
	defer pool.Close()

	if got := echo(t, pool, "m", "a"); got != "m:a" {
		t.Fatalf("resp = %q", got)
	}
	// Kill the server underneath the parked connection, then restart on the
	// same address: the pool must notice the stale connection and retry.
	srv.Close()
	srv2, err := Serve(addr, echoHandler)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer srv2.Close()

	if got := echo(t, pool, "m", "b"); got != "m:b" {
		t.Fatalf("stale connection not retried, resp = %q", got)
	}
	if st := pool.Stats(); st.Discards != 1 || st.Dials != 2 {
		t.Errorf("stats after retry = %+v", st)
	}
}

func TestPoolBoundsConnections(t *testing.T) {
	var inFlight, peak atomic.Int64
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const size = 3
	pool := DialPool("s1", srv.Addr(), size, &Metrics{})
	defer pool.Close()

	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				payload := "x"
				if err := pool.Call(context.Background(), "m", &payload, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := pool.Stats(); st.Dials > size {
		t.Errorf("dialed %d connections, pool size %d", st.Dials, size)
	}
}

// TestPoolConcurrentCallsAndClose is the -race stress test: many goroutines
// calling while another closes the pool mid-flight.
func TestPoolConcurrentCallsAndClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := DialPool("s1", srv.Addr(), 4, &Metrics{})
	start := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				payload := fmt.Sprintf("%d-%d", c, i)
				var resp string
				err := pool.Call(context.Background(), "m", &payload, &resp)
				if err != nil {
					if errors.Is(err, ErrPoolClosed) {
						return // expected once Close lands
					}
					// Connection-level failures can surface while Close
					// tears down in-flight connections.
					return
				}
				if want := "m:" + payload; resp != want {
					t.Errorf("resp = %q, want %q", resp, want)
					return
				}
			}
		}(c)
	}
	close(start)
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.Close()
	}()
	wg.Wait()
	if err := pool.Call(context.Background(), "m", nil, nil); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Call after Close = %v, want ErrPoolClosed", err)
	}
}

// TestPoolSaturatedRespectsDeadline: a caller queued behind a saturated pool
// must give up when its context expires instead of waiting for capacity.
func TestPoolSaturatedRespectsDeadline(t *testing.T) {
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
		if method == "block" {
			<-release
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := DialPool("s1", srv.Addr(), 1, &Metrics{})
	defer pool.Close()

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		pool.Call(context.Background(), "block", nil, nil) // occupies the only slot
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the blocking call take the slot

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := pool.Call(ctx, "m", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated pool call = %v, want DeadlineExceeded", err)
	}
	close(release)
	<-done
}

func TestPoolSizeFloor(t *testing.T) {
	pool := NewPool("s", 0, func() (Peer, error) { return nil, errors.New("no dial") })
	defer pool.Close()
	if pool.Size() != 1 {
		t.Errorf("Size = %d, want 1", pool.Size())
	}
	if err := pool.Call(context.Background(), "m", nil, nil); err == nil {
		t.Error("dial failure not propagated")
	}
}
