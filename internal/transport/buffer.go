package transport

import "sync"

// Encode/decode scratch buffers, shared by every peer in the process
// (dtail's Turbo Boost idiom: direct calls writing into pooled buffers
// instead of channel hops shuttling fresh allocations). Buffers start at
// 64 KiB — large enough that typical clipped-query payloads never grow
// them — and oversized outliers are dropped on the floor rather than
// pinned in the pool forever.
const (
	bufSize    = 64 << 10
	bufKeepMax = 4 << 20
)

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, bufSize)
	return &b
}}

// getBuf checks a scratch buffer out of the pool. The caller owns it
// until putBuf and must not retain any slice of it afterwards.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// putBuf returns a scratch buffer to the pool, keeping whatever capacity
// it grew to (up to bufKeepMax) so steady-state traffic stops allocating.
func putBuf(b *[]byte) {
	if cap(*b) > bufKeepMax {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
