// Package transport carries messages between the data center and the data
// sources. Three Peer implementations are provided: an in-process
// transport whose payloads are still fully serialized (so
// communication-cost measurements are real byte counts, §VII-C2), a TCP
// transport using the same wire encoding for actually distributed
// deployments, and a connection pool multiplexing concurrent calls over
// several TCP connections to one source. Transmission time over a given
// bandwidth follows the paper's model: time = bytes / bandwidth.
//
// Payload encoding is a per-connection property: TCP connections
// negotiate a Codec (and optional compression) in a transport.hello
// exchange at dial time, falling back to gob against legacy peers, so a
// rolling upgrade can mix codecs freely — see docs/PROTOCOL.md.
//
// Every Call carries a context: a deadline set by the caller (the
// gateway's per-request admission deadline, typically) propagates over
// the wire to the source, which runs its handler under the same deadline
// — a query that can no longer be answered in time is abandoned at every
// layer instead of completing uselessly.
package transport

import (
	"context"
	"fmt"
	"time"

	"dits/internal/metrics"
	"dits/internal/obs"
)

// Handler serves one source's requests: it receives the connection's
// negotiated codec, a method name, and the encoded request body, and
// returns a response value the transport encodes with the same codec (a
// nil response encodes as an empty payload). The context carries the
// caller's remaining deadline (propagated over the wire for TCP
// transports); handlers pass it to cancellable work like the parallel
// executor.
type Handler func(ctx context.Context, codec Codec, method string, body []byte) (any, error)

// RemoteError is an application-level error returned by a source's handler.
// The request/response exchange itself succeeded, so the connection that
// carried it is still healthy — Pool uses this distinction to decide
// whether a failed connection should be discarded.
type RemoteError struct {
	Source string // peer name
	Msg    string // the handler's error text
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: source %s: %s", e.Source, e.Msg)
}

// Peer is a connection to one data source.
type Peer interface {
	// Call sends req and decodes the source's answer into resp, both
	// through the connection's negotiated codec (a nil req sends an empty
	// body; a nil resp discards the payload). The context's deadline
	// bounds the whole exchange and is shipped to the source.
	Call(ctx context.Context, method string, req, resp any) error
	// Close releases the connection.
	Close() error
}

// WireInfo describes the wire parameters a connection negotiated: the
// codec name, whether payload compression is on, and whether trace
// propagation is on. Zero Codec means the peer has not dialed (and
// therefore negotiated) yet.
type WireInfo struct {
	Codec       string `json:"codec"`
	Compression bool   `json:"compression"`
	Trace       bool   `json:"trace,omitempty"`
}

// Wired is implemented by peers that know their negotiated wire
// parameters; observability surfaces (GET /stats) use it to report the
// per-peer codec during mixed-codec rolling upgrades.
type Wired interface {
	WireInfo() WireInfo
}

// Metrics accumulates the communication cost of a search: messages
// exchanged and payload bytes in both directions, broken down per protocol
// method, plus per-source failure counts. It is built on the lock-free
// metrics primitives — Record is a handful of atomic adds, so the hottest
// fan-out paths never serialize on a stats mutex — and registers its
// counters for Prometheus exposition via Register. The zero value is
// ready to use and all methods are safe for concurrent use.
type Metrics struct {
	messages      metrics.Counter
	bytesSent     metrics.Counter
	bytesReceived metrics.Counter

	methodCalls    metrics.CounterVec // by federation method
	methodSent     metrics.CounterVec
	methodReceived metrics.CounterVec
	failures       metrics.CounterVec // by source name

	// Compression accounting, both directions: raw payload bytes before
	// the compression framing, wire bytes after it, and how many payloads
	// actually shipped gzipped. Only connections that negotiated
	// compression record here.
	compressRaw  metrics.Counter
	compressWire metrics.Counter
	compressed   metrics.Counter
}

// MethodStats is the per-method slice of the counters: how many exchanges
// used the method and how many payload bytes they carried each way.
type MethodStats struct {
	Calls         int64 `json:"calls"`
	BytesSent     int64 `json:"bytesSent"`
	BytesReceived int64 `json:"bytesReceived"`
}

// Record adds one request/response exchange of the given method.
func (m *Metrics) Record(method string, sent, received int) {
	if m == nil {
		return
	}
	m.messages.Inc()
	m.bytesSent.Add(int64(sent))
	m.bytesReceived.Add(int64(received))
	m.methodCalls.With(method).Inc()
	m.methodSent.With(method).Add(int64(sent))
	m.methodReceived.With(method).Add(int64(received))
}

// RecordFailure counts one failed exchange against the named source — how
// a center's skip-and-record policy makes degraded sources observable.
func (m *Metrics) RecordFailure(source string) {
	if m == nil {
		return
	}
	m.failures.With(source).Inc()
}

// RecordCompression adds one payload's compression accounting: its raw
// size, its framed wire size, and whether gzip was actually applied.
func (m *Metrics) RecordCompression(raw, wire int, gzipped bool) {
	if m == nil {
		return
	}
	m.compressRaw.Add(int64(raw))
	m.compressWire.Add(int64(wire))
	if gzipped {
		m.compressed.Inc()
	}
}

// CompressionBytes returns the raw (pre-compression) and wire
// (post-compression) payload byte totals of compression-negotiated
// connections, both directions combined.
func (m *Metrics) CompressionBytes() (raw, wire int64) {
	if m == nil {
		return 0, 0
	}
	return m.compressRaw.Value(), m.compressWire.Value()
}

// CompressedMessages returns how many payloads actually shipped gzipped.
func (m *Metrics) CompressedMessages() int64 {
	if m == nil {
		return 0
	}
	return m.compressed.Value()
}

// PerMethod returns a copy of the per-method counters.
func (m *Metrics) PerMethod() map[string]MethodStats {
	if m == nil {
		return nil
	}
	calls := m.methodCalls.Snapshot()
	sent := m.methodSent.Snapshot()
	recv := m.methodReceived.Snapshot()
	out := make(map[string]MethodStats, len(calls))
	for method, c := range calls {
		out[method] = MethodStats{Calls: c, BytesSent: sent[method], BytesReceived: recv[method]}
	}
	return out
}

// Failures returns a copy of the per-source failure counts.
func (m *Metrics) Failures() map[string]int64 {
	if m == nil {
		return nil
	}
	return m.failures.Snapshot()
}

// TotalFailures returns the number of failed exchanges recorded.
func (m *Metrics) TotalFailures() int64 {
	if m == nil {
		return 0
	}
	return m.failures.Total()
}

// Messages returns the number of exchanges recorded.
func (m *Metrics) Messages() int64 { return m.messages.Value() }

// Bytes returns total payload bytes transferred in both directions.
func (m *Metrics) Bytes() int64 { return m.BytesSent() + m.BytesReceived() }

// BytesSent returns request payload bytes (center -> sources).
func (m *Metrics) BytesSent() int64 { return m.bytesSent.Value() }

// BytesReceived returns response payload bytes (sources -> center).
func (m *Metrics) BytesReceived() int64 { return m.bytesReceived.Value() }

// Reset zeroes the counters.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.messages.Reset()
	m.bytesSent.Reset()
	m.bytesReceived.Reset()
	m.methodCalls.Reset()
	m.methodSent.Reset()
	m.methodReceived.Reset()
	m.failures.Reset()
	m.compressRaw.Reset()
	m.compressWire.Reset()
	m.compressed.Reset()
}

// Register exposes the transport counters on a metrics registry under the
// dits_transport_* names (see docs/OPERATIONS.md for the full reference).
func (m *Metrics) Register(r *metrics.Registry) {
	r.RegisterCounter("dits_transport_messages_total",
		"Federation request/response exchanges", &m.messages)
	r.RegisterCounter("dits_transport_sent_bytes_total",
		"Request payload bytes, center to sources", &m.bytesSent)
	r.RegisterCounter("dits_transport_received_bytes_total",
		"Response payload bytes, sources to center", &m.bytesReceived)
	r.RegisterCounterVec("dits_transport_method_calls_total",
		"Exchanges per federation method", "method", &m.methodCalls)
	r.RegisterCounterVec("dits_transport_method_sent_bytes_total",
		"Request bytes per federation method", "method", &m.methodSent)
	r.RegisterCounterVec("dits_transport_method_received_bytes_total",
		"Response bytes per federation method", "method", &m.methodReceived)
	r.RegisterCounterVec("dits_transport_source_failures_total",
		"Failed exchanges per source", "source", &m.failures)
	r.RegisterCounter("dits_transport_compress_raw_bytes_total",
		"Payload bytes before compression framing, both directions", &m.compressRaw)
	r.RegisterCounter("dits_transport_compress_wire_bytes_total",
		"Payload bytes after compression framing, both directions", &m.compressWire)
	r.RegisterCounter("dits_transport_compressed_messages_total",
		"Payloads that actually shipped gzip-compressed", &m.compressed)
}

// TransmissionTime models the network time to move the recorded bytes over
// a link of the given bandwidth (bytes per second), as in Figs. 14 and 20:
// transmission time is proportional to bytes when bandwidth is constant.
func (m *Metrics) TransmissionTime(bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(m.Bytes()) / bytesPerSecond * float64(time.Second))
}

// InProc is a Peer that invokes a Handler directly. Payloads cross the
// boundary as encoded bytes, so the metrics are identical to what a real
// network link would carry.
type InProc struct {
	Name    string
	Handler Handler
	Metrics *Metrics
	// Codec selects the encoding payloads cross the boundary in; nil
	// means gob, matching an unnegotiated TCP connection. Benchmarks set
	// it to measure both codecs on the same workload.
	Codec Codec
}

func (p *InProc) codec() Codec {
	if p.Codec != nil {
		return p.Codec
	}
	return GobCodec
}

// Call implements Peer. The context (trace included) flows directly into
// the handler, so spans recorded by in-process "remote" work land in the
// caller's trace with no wire merge — but still under an rpc span, so an
// in-process federation shows the same span taxonomy as a TCP one.
func (p *InProc) Call(ctx context.Context, method string, req, resp any) error {
	sctx, sp := obs.StartSpan(ctx, "rpc:"+method)
	sp.SetSource(p.Name)
	err := p.call(sctx, method, req, resp)
	sp.EndErr(err)
	return err
}

func (p *InProc) call(ctx context.Context, method string, req, resp any) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("transport: call %s: %w", p.Name, err)
	}
	c := p.codec()
	reqBuf := getBuf()
	defer putBuf(reqBuf)
	body, err := c.Append((*reqBuf)[:0], req)
	if err != nil {
		return err
	}
	*reqBuf = body
	ret, herr := p.Handler(ctx, c, method, body)
	if herr != nil {
		return &RemoteError{Source: p.Name, Msg: herr.Error()}
	}
	respBuf := getBuf()
	defer putBuf(respBuf)
	payload, err := c.Append((*respBuf)[:0], ret)
	if err != nil {
		return err
	}
	*respBuf = payload
	p.Metrics.Record(method, len(body)+len(method), len(payload))
	return c.Decode(payload, resp)
}

// WireInfo implements Wired. Trace is always true: the context crosses
// the in-process boundary intact.
func (p *InProc) WireInfo() WireInfo { return WireInfo{Codec: p.codec().Name(), Trace: true} }

// Close implements Peer.
func (p *InProc) Close() error { return nil }
