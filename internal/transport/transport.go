// Package transport carries messages between the data center and the data
// sources. Three Peer implementations are provided: an in-process
// transport whose payloads are still fully serialized (so
// communication-cost measurements are real byte counts, §VII-C2), a TCP
// transport using the same wire encoding for actually distributed
// deployments, and a connection pool multiplexing concurrent calls over
// several TCP connections to one source. Transmission time over a given
// bandwidth follows the paper's model: time = bytes / bandwidth.
package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"
)

// Handler serves one source's requests: it receives a method name and a
// gob-encoded request body and returns a gob-encoded response body.
type Handler func(method string, body []byte) ([]byte, error)

// RemoteError is an application-level error returned by a source's handler.
// The request/response exchange itself succeeded, so the connection that
// carried it is still healthy — Pool uses this distinction to decide
// whether a failed connection should be discarded.
type RemoteError struct {
	Source string // peer name
	Msg    string // the handler's error text
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: source %s: %s", e.Source, e.Msg)
}

// Peer is a connection to one data source.
type Peer interface {
	// Call sends a request and waits for the response.
	Call(method string, body []byte) ([]byte, error)
	// Close releases the connection.
	Close() error
}

// Encode gob-encodes a value into a payload.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode gob-decodes a payload into v.
func Decode(body []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// Metrics accumulates the communication cost of a search: messages
// exchanged and payload bytes in both directions, broken down per protocol
// method, plus per-source failure counts. It is safe for concurrent use.
type Metrics struct {
	mu            sync.Mutex
	messages      int64
	bytesSent     int64
	bytesReceived int64
	perMethod     map[string]MethodStats
	failures      map[string]int64
}

// MethodStats is the per-method slice of the counters: how many exchanges
// used the method and how many payload bytes they carried each way.
type MethodStats struct {
	Calls         int64 `json:"calls"`
	BytesSent     int64 `json:"bytesSent"`
	BytesReceived int64 `json:"bytesReceived"`
}

// Record adds one request/response exchange of the given method.
func (m *Metrics) Record(method string, sent, received int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.messages++
	m.bytesSent += int64(sent)
	m.bytesReceived += int64(received)
	if m.perMethod == nil {
		m.perMethod = make(map[string]MethodStats)
	}
	ms := m.perMethod[method]
	ms.Calls++
	ms.BytesSent += int64(sent)
	ms.BytesReceived += int64(received)
	m.perMethod[method] = ms
	m.mu.Unlock()
}

// RecordFailure counts one failed exchange against the named source — how
// a center's skip-and-record policy makes degraded sources observable.
func (m *Metrics) RecordFailure(source string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.failures == nil {
		m.failures = make(map[string]int64)
	}
	m.failures[source]++
	m.mu.Unlock()
}

// PerMethod returns a copy of the per-method counters.
func (m *Metrics) PerMethod() map[string]MethodStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]MethodStats, len(m.perMethod))
	for k, v := range m.perMethod {
		out[k] = v
	}
	return out
}

// Failures returns a copy of the per-source failure counts.
func (m *Metrics) Failures() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.failures))
	for k, v := range m.failures {
		out[k] = v
	}
	return out
}

// TotalFailures returns the number of failed exchanges recorded.
func (m *Metrics) TotalFailures() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, v := range m.failures {
		n += v
	}
	return n
}

// Messages returns the number of exchanges recorded.
func (m *Metrics) Messages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// Bytes returns total payload bytes transferred in both directions.
func (m *Metrics) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesSent + m.bytesReceived
}

// BytesSent returns request payload bytes (center -> sources).
func (m *Metrics) BytesSent() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesSent
}

// BytesReceived returns response payload bytes (sources -> center).
func (m *Metrics) BytesReceived() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytesReceived
}

// Reset zeroes the counters.
func (m *Metrics) Reset() {
	m.mu.Lock()
	m.messages, m.bytesSent, m.bytesReceived = 0, 0, 0
	m.perMethod, m.failures = nil, nil
	m.mu.Unlock()
}

// TransmissionTime models the network time to move the recorded bytes over
// a link of the given bandwidth (bytes per second), as in Figs. 14 and 20:
// transmission time is proportional to bytes when bandwidth is constant.
func (m *Metrics) TransmissionTime(bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(m.Bytes()) / bytesPerSecond * float64(time.Second))
}

// InProc is a Peer that invokes a Handler directly. Payloads cross the
// boundary as encoded bytes, so the metrics are identical to what a real
// network link would carry.
type InProc struct {
	Name    string
	Handler Handler
	Metrics *Metrics
}

// Call implements Peer.
func (p *InProc) Call(method string, body []byte) ([]byte, error) {
	resp, err := p.Handler(method, body)
	if err != nil {
		return nil, &RemoteError{Source: p.Name, Msg: err.Error()}
	}
	p.Metrics.Record(method, len(body)+len(method), len(resp))
	return resp, nil
}

// Close implements Peer.
func (p *InProc) Close() error { return nil }
