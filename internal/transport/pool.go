package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"dits/internal/obs"
)

// ErrPoolClosed is returned by Pool.Call after the pool has been closed.
var ErrPoolClosed = errors.New("transport: pool closed")

// Pool is a Peer that multiplexes concurrent Calls over up to size
// underlying connections to the same source. TCPPeer is only safe for
// sequential use; a Pool lets many goroutines — one per in-flight query at
// the data center — share one logical peer without external locking:
//
//	pool := transport.DialPool(name, addr, 8, metrics)
//	center.RegisterRemote(pool)
//
// Connections are created lazily on demand, reused via an idle list, and
// checked back in after every call. Checkin is health-aware: a call that
// fails with a *RemoteError rode a perfectly good connection (the source's
// handler rejected the request), so the connection is kept; any other
// failure means the connection itself broke, so it is discarded and the
// next call dials afresh. A call that fails on a connection taken from the
// idle list (which may have gone stale while parked) is retried once on a
// freshly dialed connection before the error is reported.
type Pool struct {
	name string
	dial func() (Peer, error)

	sem chan struct{} // capacity tokens: at most cap(sem) connections exist

	mu     sync.Mutex
	idle   []Peer
	closed bool

	dials    atomic.Int64
	discards atomic.Int64

	// wire is the negotiated wire info of the most recently dialed
	// connection (nil until the first dial). All of a pool's connections
	// negotiate against the same server, so they agree in steady state;
	// during a rolling upgrade of the server a redial may change it.
	wire atomic.Pointer[WireInfo]
}

// NewPool creates a pool of up to size connections produced by dial.
// Size values below 1 are treated as 1 (a pool of one serializes callers,
// which is exactly the old one-connection-per-source behavior, made safe).
func NewPool(name string, size int, dial func() (Peer, error)) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{
		name: name,
		dial: dial,
		sem:  make(chan struct{}, size),
	}
}

// DialPool creates a pool of up to size TCP connections to a source server
// at addr, all recording into the same Metrics.
func DialPool(name, addr string, size int, metrics *Metrics) *Pool {
	return DialPoolWith(name, addr, size, metrics, DialConfig{})
}

// DialPoolWith is DialPool with explicit negotiation preferences, applied
// to every connection the pool opens.
func DialPoolWith(name, addr string, size int, metrics *Metrics, cfg DialConfig) *Pool {
	return NewPool(name, size, func() (Peer, error) {
		return DialWith(name, addr, metrics, cfg)
	})
}

// Name returns the pool's source name.
func (p *Pool) Name() string { return p.name }

// Size returns the maximum number of connections the pool will open.
func (p *Pool) Size() int { return cap(p.sem) }

// PoolStats is a snapshot of a pool's connection accounting.
type PoolStats struct {
	Size     int   // maximum connections
	Idle     int   // healthy parked connections
	InUse    int   // connections currently serving a call
	Dials    int64 // total connections ever dialed
	Discards int64 // connections discarded as broken
}

// Stats returns a snapshot of the pool's connection accounting.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	idle := len(p.idle)
	p.mu.Unlock()
	return PoolStats{
		Size:     cap(p.sem),
		Idle:     idle,
		InUse:    len(p.sem),
		Dials:    p.dials.Load(),
		Discards: p.discards.Load(),
	}
}

// get checks a connection out of the pool, blocking while all size
// connections are in use — but no longer than the caller's context allows,
// so a deadlined request queued behind a saturated pool gives up instead of
// waiting for capacity it can no longer use. fromIdle reports whether the
// connection was parked (and may therefore have gone stale).
func (p *Pool) get(ctx context.Context) (peer Peer, fromIdle bool, err error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, false, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		peer = p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return peer, true, nil
	}
	p.mu.Unlock()
	peer, err = p.dial()
	if err != nil {
		<-p.sem
		return nil, false, err
	}
	p.dials.Add(1)
	p.noteWire(peer)
	return peer, false, nil
}

// noteWire records a freshly dialed connection's negotiated parameters
// for observability.
func (p *Pool) noteWire(peer Peer) {
	if w, ok := peer.(Wired); ok {
		info := w.WireInfo()
		p.wire.Store(&info)
	}
}

// WireInfo implements Wired: it reports the wire parameters of the most
// recently dialed connection, or the zero WireInfo before the first dial.
func (p *Pool) WireInfo() WireInfo {
	if info := p.wire.Load(); info != nil {
		return *info
	}
	return WireInfo{}
}

// put checks a connection back in. Unhealthy connections — and any
// connection returned after Close — are closed instead of parked.
func (p *Pool) put(peer Peer, healthy bool) {
	p.mu.Lock()
	if healthy && !p.closed {
		p.idle = append(p.idle, peer)
		peer = nil
	}
	p.mu.Unlock()
	if peer != nil {
		peer.Close()
		if !healthy {
			p.discards.Add(1)
		}
	}
	<-p.sem
}

// Call implements Peer. It is safe for concurrent use by any number of
// goroutines; at most Size calls are in flight at once and the rest queue.
func (p *Pool) Call(ctx context.Context, method string, req, resp any) error {
	peer, fromIdle, err := p.get(ctx)
	if err != nil {
		// No connection was ever checked out, so TCPPeer.Call never ran:
		// record the failed RPC here or a traced query that trips over a
		// dead peer at dial time would show no failed span at all.
		_, sp := obs.StartSpan(ctx, "rpc:"+method)
		sp.SetSource(p.name)
		sp.EndErr(err)
		return err
	}
	err = p.callOn(ctx, peer, method, req, resp)
	if err == nil || !fromIdle || isRemote(err) || ctx.Err() != nil {
		return err
	}
	// The parked connection had gone stale underneath us; the request never
	// reached the source, so retrying on a fresh connection is safe.
	peer, _, derr := p.getFresh()
	if derr != nil {
		return err // report the original failure
	}
	return p.callOn(ctx, peer, method, req, resp)
}

// callOn runs one call and checks the connection back in with the right
// health verdict. A call cut short by the context deadline may have left
// half a frame on the wire, so !isRemote errors (including deadline ones)
// discard the connection as usual.
func (p *Pool) callOn(ctx context.Context, peer Peer, method string, req, resp any) error {
	err := peer.Call(ctx, method, req, resp)
	p.put(peer, err == nil || isRemote(err))
	return err
}

// getFresh checks out a freshly dialed connection for the stale-connection
// retry. Parked siblings of a stale connection are suspect too, so one is
// evicted in its place, keeping the connection count within Size.
func (p *Pool) getFresh() (Peer, bool, error) {
	p.sem <- struct{}{}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		return nil, false, ErrPoolClosed
	}
	var evict Peer
	if n := len(p.idle); n > 0 {
		evict = p.idle[n-1]
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if evict != nil {
		evict.Close()
		p.discards.Add(1)
	}
	peer, err := p.dial()
	if err != nil {
		<-p.sem
		return nil, false, err
	}
	p.dials.Add(1)
	p.noteWire(peer)
	return peer, false, nil
}

// isRemote reports whether err is an application-level error from the
// source's handler, meaning the connection that carried it is healthy.
func isRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// Close implements Peer: it closes every idle connection and marks the pool
// closed. Connections currently serving a call are closed as they are
// checked back in; subsequent Calls fail with ErrPoolClosed.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	var first error
	for _, peer := range idle {
		if err := peer.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
