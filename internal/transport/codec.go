package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"slices"
	"sync"
)

// Codec turns request/response values into payload bytes and back. The
// wire codec is a per-connection property negotiated at dial time (see
// the transport.hello exchange in tcp.go): both ends of a connection
// always agree on one codec, and a center talking to a mixed fleet may
// hold binary connections to upgraded sources and gob connections to
// legacy ones at the same time.
//
// Append appends the encoding of v to dst and returns the extended
// slice, so hot paths can reuse one buffer across calls without
// allocating; encoding nil appends nothing (the empty body). Decode
// unmarshals a payload into v; decoding into nil discards the payload.
// Implementations must be safe for concurrent use.
type Codec interface {
	Name() string
	Append(dst []byte, v any) ([]byte, error)
	Decode(data []byte, v any) error
}

// CodecGob is the wire name of the gob codec — the protocol's original
// encoding and the fallback every peer must speak.
const CodecGob = "gob"

// GobCodec encodes payloads with encoding/gob. It is the codec of every
// connection whose handshake did not (or could not) negotiate anything
// better, which keeps legacy peers interoperable.
var GobCodec Codec = gobCodec{}

type gobCodec struct{}

func (gobCodec) Name() string { return CodecGob }

func (gobCodec) Append(dst []byte, v any) ([]byte, error) {
	if v == nil {
		return dst, nil
	}
	buf := bytes.NewBuffer(dst)
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return dst, fmt.Errorf("transport: encode: %w", err)
	}
	return buf.Bytes(), nil
}

func (gobCodec) Decode(data []byte, v any) error {
	if v == nil {
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

var (
	codecMu sync.RWMutex
	codecs  = map[string]Codec{CodecGob: GobCodec}
)

// RegisterCodec makes a codec available for connection negotiation under
// its Name. Packages that define codecs register them from init (the
// federation package registers its binary codec this way); registering
// two codecs with the same name panics.
func RegisterCodec(c Codec) {
	codecMu.Lock()
	defer codecMu.Unlock()
	if _, dup := codecs[c.Name()]; dup && c.Name() != CodecGob {
		panic("transport: duplicate codec " + c.Name())
	}
	codecs[c.Name()] = c
}

// LookupCodec returns the registered codec with the given wire name.
func LookupCodec(name string) (Codec, bool) {
	codecMu.RLock()
	defer codecMu.RUnlock()
	c, ok := codecs[name]
	return c, ok
}

// CodecNames returns every registered codec name in the default
// negotiation-preference order: non-gob codecs first (sorted, so the
// order is deterministic regardless of registration order), gob last.
func CodecNames() []string {
	codecMu.RLock()
	defer codecMu.RUnlock()
	names := make([]string, 0, len(codecs))
	for name := range codecs {
		if name != CodecGob {
			names = append(names, name)
		}
	}
	slices.Sort(names)
	return append(names, CodecGob)
}

// Encode gob-encodes a value into a payload. It is the codec-less helper
// kept for persistence formats and tests; wire traffic goes through the
// connection's negotiated Codec instead.
func Encode(v any) ([]byte, error) {
	return GobCodec.Append(nil, v)
}

// Decode gob-decodes a payload into v.
func Decode(body []byte, v any) error {
	return GobCodec.Decode(body, v)
}
