package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"dits/internal/obs"
)

// The TCP wire format frames each request as
//
//	uint32 method length | method | uint64 deadline ms | uint32 body length | body
//
// and each response as
//
//	uint8 status (0 ok, 1 error) | uint32 payload length | payload
//
// where an error payload is the error text. The deadline field is the
// caller's REMAINING time budget in milliseconds (0 = none): shipping a
// relative budget rather than an absolute wall-clock instant keeps the
// propagation correct across machines with skewed clocks. The server
// derives the handler's context from it, so a query that ran out of time
// is abandoned at the source too.
//
// The first request a dialer sends is a transport.hello exchange that
// negotiates the connection's codec and options (see hello below);
// everything after it is encoded with the negotiated codec, and on
// compression-negotiated connections bodies and OK payloads carry the
// one-byte compression flag (compress.go). A legacy server answers the
// hello with status 1 ("unknown method"), which the dialer takes as
// "speak gob, uncompressed" — and a legacy dialer never sends a hello,
// which leaves the server side at the same default. Error payloads are
// always raw text.
//
// When both ends negotiate the "trace" option, every post-hello exchange
// grows one extra frame per direction: requests append a trace-context
// frame (obs.AppendContext — empty for an untraced request) after the
// body, and responses append a span frame (obs.AppendSpans — the spans
// the server completed while handling the request, empty when untraced)
// after the payload, on both OK and error responses. A connection that
// did not negotiate "trace" carries exactly the pre-trace framing, so
// legacy peers interoperate untouched — the caller then records an
// explicit "untraced" span instead (see Call).

// maxFrame caps a frame payload to guard against corrupt length prefixes.
const maxFrame = 1 << 30

// MethodHello is the reserved method name of the codec negotiation
// exchange. Servers intercept it before application dispatch; it never
// reaches a Handler on a server that understands it.
const MethodHello = "transport.hello"

// helloMagic versions the hello body format itself. The body is ASCII:
//
//	dits-hello/1 <codec1,codec2,...> <option1,option2,...|->
//
// and the reply payload is "<codec>" or "<codec> gzip". Unknown magics,
// codecs, and options are ignored, so future dialers degrade gracefully
// against this server.
const helloMagic = "dits-hello/1"

// ServeConfig tunes a server's negotiation behavior.
type ServeConfig struct {
	// Codecs is the allow-list of codec names offered to dialers; nil
	// allows every registered codec. Gob is always allowed — it is the
	// floor every peer can speak.
	Codecs []string
	// NoCompress refuses the compression option regardless of what
	// dialers propose.
	NoCompress bool
	// NoNegotiate makes the server behave like a legacy build: hello
	// requests fall through to the application handler (which rejects
	// them as an unknown method), so dialers fall back to gob. It exists
	// for interop tests and emergency rollback to the old wire behavior.
	NoNegotiate bool
	// NoTrace refuses the trace option: requests are served untraced
	// even when the dialer proposes trace propagation.
	NoTrace bool
	// Recorder, when set, keeps each traced request's local span subtree
	// for this process's own GET /debug/traces (ditsserve and ditscenter
	// wire their -metrics-addr recorder here).
	Recorder *obs.Recorder
}

// allows reports whether the server may pick the named codec.
func (cfg *ServeConfig) allows(name string) bool {
	if name == CodecGob || cfg.Codecs == nil {
		return true
	}
	for _, n := range cfg.Codecs {
		if n == name {
			return true
		}
	}
	return false
}

// Server serves one data source's Handler over TCP.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     ServeConfig
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a TCP server on addr (e.g. "127.0.0.1:0") for the handler,
// negotiating freely: every registered codec, compression allowed.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeWith(addr, handler, ServeConfig{})
}

// ServeWith starts a TCP server with explicit negotiation limits.
func ServeWith(addr string, handler Handler, cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// track registers a live connection; it reports false when the server is
// already closed and the connection should be dropped.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, terminating in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

// serveConn runs one connection's request loop. All scratch buffers are
// per-connection and reused across requests: after the first few frames a
// steady-state connection reads, decodes, encodes, and writes without
// allocating beyond what the handler itself needs.
func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	codec := GobCodec
	compress := false
	traced := false // the connection negotiated the trace option
	var methodBuf, bodyBuf, respBuf, cmpBuf, traceBuf, spansBuf []byte
	names := make(map[string]string, 8) // interned method names
	// respond writes one response in the connection's negotiated framing:
	// once trace is on, every response — errors included — carries the
	// span frame, or the dialer's framing desynchronizes.
	respond := func(status byte, payload []byte) error {
		if err := w.WriteByte(status); err != nil {
			return err
		}
		if err := writeFrame(w, payload); err != nil {
			return err
		}
		if traced {
			if err := writeFrame(w, spansBuf); err != nil {
				return err
			}
		}
		return w.Flush()
	}
	for {
		var err error
		methodBuf, err = readFrameReuse(r, methodBuf)
		if err != nil {
			return
		}
		var deadlineMs uint64
		if err := binary.Read(r, binary.BigEndian, &deadlineMs); err != nil {
			return
		}
		bodyBuf, err = readFrameReuse(r, bodyBuf)
		if err != nil {
			return
		}
		method, ok := names[string(methodBuf)]
		if !ok {
			method = string(methodBuf)
			names[method] = method
		}
		if method == MethodHello && !s.cfg.NoNegotiate && !traced {
			var reply []byte
			reply, codec, compress, traced = s.negotiate(bodyBuf)
			if err := writeResponse(w, 0, reply); err != nil {
				return
			}
			continue
		}
		spansBuf = spansBuf[:0]
		var tr *obs.Trace
		if traced {
			if traceBuf, err = readFrameReuse(r, traceBuf); err != nil {
				return
			}
			if id, parent, ok := obs.ParseContext(traceBuf); ok {
				tr = obs.Adopt(id, parent)
			}
		}
		body := bodyBuf
		if compress {
			if body, err = decompressed(body); err != nil {
				if err := respond(1, []byte(err.Error())); err != nil {
					return
				}
				continue
			}
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadlineMs > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMs)*time.Millisecond)
		}
		var serveSp *obs.ActiveSpan
		if tr != nil {
			ctx = obs.WithTrace(ctx, tr)
			ctx, serveSp = obs.StartSpan(ctx, "serve:"+method)
		}
		ret, herr := s.handler(ctx, codec, method, body)
		cancel()
		if tr != nil {
			serveSp.EndErr(herr)
			spansBuf = obs.AppendSpans(spansBuf, tr.Snapshot())
			s.cfg.Recorder.Finish(tr, serveSp)
		}
		if herr == nil {
			respBuf, herr = codec.Append(respBuf[:0], ret)
		}
		if herr != nil {
			if err := respond(1, []byte(herr.Error())); err != nil {
				return
			}
			continue
		}
		payload := respBuf
		if compress {
			if cmpBuf, err = appendCompressed(cmpBuf[:0], respBuf); err != nil {
				if err := respond(1, []byte(err.Error())); err != nil {
					return
				}
				continue
			}
			payload = cmpBuf
		}
		if err := respond(0, payload); err != nil {
			return
		}
	}
}

// negotiate picks the connection's codec and options from a hello body:
// the first proposed codec that is registered and allowed wins, and an
// option (gzip compression, trace propagation) turns on iff proposed and
// permitted. Anything unparseable falls back to gob uncompressed — never
// an error, so a malformed or future hello still yields a working
// connection. The reply lists the accepted options space-separated after
// the codec ("gob gzip trace"): a pre-trace dialer looks only for "gzip"
// in the second field and never proposes "trace", so it is never
// surprised by the extra token.
func (s *Server) negotiate(body []byte) (reply []byte, codec Codec, compress, trace bool) {
	codec = GobCodec
	fields := strings.Fields(string(body))
	if len(fields) >= 2 && fields[0] == helloMagic {
		for _, name := range strings.Split(fields[1], ",") {
			if !s.cfg.allows(name) {
				continue
			}
			if c, ok := LookupCodec(name); ok {
				codec = c
				break
			}
		}
		if len(fields) >= 3 {
			for _, opt := range strings.Split(fields[2], ",") {
				switch {
				case opt == "gzip" && !s.cfg.NoCompress:
					compress = true
				case opt == "trace" && !s.cfg.NoTrace:
					trace = true
				}
			}
		}
	}
	resp := codec.Name()
	if compress {
		resp += " gzip"
	}
	if trace {
		resp += " trace"
	}
	return []byte(resp), codec, compress, trace
}

// readFrameReuse reads one length-prefixed frame into buf, growing it
// only when the frame exceeds its capacity, and returns the (possibly
// reallocated) buffer sliced to the frame.
func readFrameReuse(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return buf, errors.New("transport: frame too large")
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, b []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeResponse(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := writeFrame(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// DialConfig tunes a dialer's negotiation behavior.
type DialConfig struct {
	// Codec proposes exactly one codec by name instead of the default
	// preference list (every registered codec, gob last).
	Codec string
	// NoCompress withholds the gzip option from the handshake.
	NoCompress bool
	// NoNegotiate skips the handshake entirely and speaks legacy gob —
	// how a pre-handshake dialer behaves. It exists for interop tests and
	// emergency rollback to the old wire behavior.
	NoNegotiate bool
	// NoTrace withholds the trace option from the handshake; calls on
	// the connection are then recorded with an "untraced" marker span.
	NoTrace bool
}

// helloTimeout bounds the handshake exchange at dial time.
const helloTimeout = 10 * time.Second

// TCPPeer is a Peer over a TCP connection. It is safe for sequential use;
// guard concurrent Calls externally or use one peer per goroutine.
type TCPPeer struct {
	Name    string
	Metrics *Metrics

	conn     net.Conn
	r        *bufio.Reader
	w        *bufio.Writer
	codec    Codec
	compress bool
	trace    bool // the connection negotiated trace propagation
}

// Dial connects to a source server and negotiates the wire codec: the
// best registered codec both ends speak, compression allowed, with
// graceful fallback to uncompressed gob against a legacy server.
func Dial(name, addr string, metrics *Metrics) (*TCPPeer, error) {
	return DialWith(name, addr, metrics, DialConfig{})
}

// DialWith connects with explicit negotiation preferences.
func DialWith(name, addr string, metrics *Metrics, cfg DialConfig) (*TCPPeer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	p := &TCPPeer{
		Name:    name,
		Metrics: metrics,
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
		codec:   GobCodec,
	}
	if !cfg.NoNegotiate {
		if err := p.hello(cfg); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return p, nil
}

// hello runs the codec negotiation as the connection's first exchange. A
// status-1 reply means the server predates negotiation (it rejected the
// method); the peer then speaks uncompressed gob, exactly as before the
// handshake existed.
func (p *TCPPeer) hello(cfg DialConfig) error {
	names := CodecNames()
	if cfg.Codec != "" {
		// A forced codec is strict: it must exist locally and the server
		// must accept it — no silent fallback, so an operator pinning a
		// codec finds out immediately when a peer cannot speak it.
		if _, ok := LookupCodec(cfg.Codec); !ok {
			return fmt.Errorf("transport: hello %s: unknown codec %q", p.Name, cfg.Codec)
		}
		names = []string{cfg.Codec}
	}
	var propose []string
	if !cfg.NoCompress {
		propose = append(propose, "gzip")
	}
	if !cfg.NoTrace {
		propose = append(propose, "trace")
	}
	opts := "-"
	if len(propose) > 0 {
		opts = strings.Join(propose, ",")
	}
	body := []byte(helloMagic + " " + strings.Join(names, ",") + " " + opts)
	p.conn.SetDeadline(time.Now().Add(helloTimeout))
	defer p.conn.SetDeadline(time.Time{})
	if err := writeFrame(p.w, []byte(MethodHello)); err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	var deadline [8]byte
	if _, err := p.w.Write(deadline[:]); err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	if err := writeFrame(p.w, body); err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	if err := p.w.Flush(); err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	status, err := p.r.ReadByte()
	if err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	payload, err := readFrameReuse(p.r, nil)
	if err != nil {
		return fmt.Errorf("transport: hello %s: %w", p.Name, err)
	}
	if status != 0 {
		if cfg.Codec != "" && cfg.Codec != CodecGob {
			return fmt.Errorf("transport: hello %s: server cannot negotiate forced codec %q", p.Name, cfg.Codec)
		}
		// Legacy server: it saw an unknown method. Speak gob, plain.
		p.codec, p.compress = GobCodec, false
		return nil
	}
	fields := strings.Fields(string(payload))
	if len(fields) == 0 {
		return fmt.Errorf("transport: hello %s: empty negotiation reply", p.Name)
	}
	if cfg.Codec != "" && fields[0] != cfg.Codec {
		return fmt.Errorf("transport: hello %s: server refused forced codec %q (offered %q)", p.Name, cfg.Codec, fields[0])
	}
	codec, ok := LookupCodec(fields[0])
	if !ok {
		return fmt.Errorf("transport: hello %s: server chose unknown codec %q", p.Name, fields[0])
	}
	p.codec = codec
	p.compress, p.trace = false, false
	for _, f := range fields[1:] {
		for _, opt := range strings.Split(f, ",") {
			switch opt {
			case "gzip":
				p.compress = true
			case "trace":
				p.trace = true
			}
		}
	}
	return nil
}

// WireInfo implements Wired.
func (p *TCPPeer) WireInfo() WireInfo {
	return WireInfo{Codec: p.codec.Name(), Compression: p.compress, Trace: p.trace}
}

// Call implements Peer. A context deadline bounds the whole exchange (the
// connection's read/write deadlines are set from it) and its remaining
// budget is shipped in the request frame so the source abandons work the
// caller will never wait for. A deadline failure poisons the connection's
// framing, so the peer must be discarded afterwards — exactly what Pool's
// health-aware checkin does.
//
// On a traced context the exchange is recorded as an "rpc:<method>" span.
// When the connection negotiated trace propagation the trace follows the
// request to the server and the server's spans come back merged into the
// caller's trace; against a legacy (or NoTrace) connection the rpc span
// instead gets an explicit "untraced" child marking where visibility
// ends.
func (p *TCPPeer) Call(ctx context.Context, method string, req, resp any) error {
	tr, _ := obs.Current(ctx)
	sctx, sp := obs.StartSpan(ctx, "rpc:"+method)
	sp.SetSource(p.Name)
	if sp != nil && !p.trace {
		_, marker := obs.StartSpan(sctx, "untraced")
		marker.SetSource(p.Name)
		marker.End()
	}
	err := p.call(sctx, tr, sp, method, req, resp)
	sp.EndErr(err)
	return err
}

func (p *TCPPeer) call(ctx context.Context, tr *obs.Trace, sp *obs.ActiveSpan, method string, req, resp any) error {
	var deadlineMs uint64
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return fmt.Errorf("transport: call %s: %w", p.Name, context.DeadlineExceeded)
		}
		ms := remaining.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		deadlineMs = uint64(ms)
		p.conn.SetDeadline(dl)
		defer p.conn.SetDeadline(time.Time{})
	} else if err := ctx.Err(); err != nil {
		return fmt.Errorf("transport: call %s: %w", p.Name, err)
	}
	encBuf := getBuf()
	defer putBuf(encBuf)
	body, err := p.codec.Append((*encBuf)[:0], req)
	if err != nil {
		return err
	}
	*encBuf = body
	wire := body
	if p.compress {
		cmpBuf := getBuf()
		defer putBuf(cmpBuf)
		if wire, err = appendCompressed((*cmpBuf)[:0], body); err != nil {
			return err
		}
		*cmpBuf = wire
		p.Metrics.RecordCompression(len(body), len(wire), wire[0] == flagGzip)
	}
	if err := writeFrame(p.w, []byte(method)); err != nil {
		return fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	var dlBuf [8]byte
	binary.BigEndian.PutUint64(dlBuf[:], deadlineMs)
	if _, err := p.w.Write(dlBuf[:]); err != nil {
		return fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	if err := writeFrame(p.w, wire); err != nil {
		return fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	if p.trace {
		tcBuf := getBuf()
		defer putBuf(tcBuf)
		tc := obs.AppendContext((*tcBuf)[:0], ctx)
		*tcBuf = tc
		if err := writeFrame(p.w, tc); err != nil {
			return fmt.Errorf("transport: send %s: %w", p.Name, err)
		}
	}
	if err := p.w.Flush(); err != nil {
		return fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	status, err := p.r.ReadByte()
	if err != nil {
		return fmt.Errorf("transport: recv %s: %w", p.Name, err)
	}
	rdBuf := getBuf()
	defer putBuf(rdBuf)
	payload, err := readFrameReuse(p.r, (*rdBuf)[:0])
	*rdBuf = payload
	if err != nil {
		return fmt.Errorf("transport: recv %s: %w", p.Name, err)
	}
	if p.trace {
		// The span frame is part of the negotiated framing: read it on
		// error responses too, or the connection desynchronizes.
		spBuf := getBuf()
		defer putBuf(spBuf)
		shipped, err := readFrameReuse(p.r, (*spBuf)[:0])
		*spBuf = shipped
		if err != nil {
			return fmt.Errorf("transport: recv %s: %w", p.Name, err)
		}
		if tr != nil {
			if spans, err := obs.DecodeSpans(shipped); err == nil {
				tr.Merge(spans, sp.Start())
			}
		}
	}
	if status != 0 {
		return &RemoteError{Source: p.Name, Msg: string(payload)}
	}
	recvWire := len(payload)
	if p.compress {
		gzipped := len(payload) > 0 && payload[0] == flagGzip
		if payload, err = decompressed(payload); err != nil {
			return fmt.Errorf("transport: recv %s: %w", p.Name, err)
		}
		p.Metrics.RecordCompression(len(payload), recvWire, gzipped)
	}
	p.Metrics.Record(method, len(wire)+len(method), recvWire)
	return p.codec.Decode(payload, resp)
}

// Close implements Peer.
func (p *TCPPeer) Close() error { return p.conn.Close() }
