package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The TCP wire format frames each request as
//
//	uint32 method length | method | uint64 deadline ms | uint32 body length | body
//
// and each response as
//
//	uint8 status (0 ok, 1 error) | uint32 payload length | payload
//
// where an error payload is the error text. The deadline field is the
// caller's REMAINING time budget in milliseconds (0 = none): shipping a
// relative budget rather than an absolute wall-clock instant keeps the
// propagation correct across machines with skewed clocks. The server
// derives the handler's context from it, so a query that ran out of time
// is abandoned at the source too.

// maxFrame caps a frame payload to guard against corrupt length prefixes.
const maxFrame = 1 << 30

// Server serves one data source's Handler over TCP.
type Server struct {
	ln      net.Listener
	handler Handler
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// Serve starts a TCP server on addr (e.g. "127.0.0.1:0") for the handler.
func Serve(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// track registers a live connection; it reports false when the server is
// already closed and the connection should be dropped.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, terminating in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		method, err := readFrame(r)
		if err != nil {
			return
		}
		var deadlineMs uint64
		if err := binary.Read(r, binary.BigEndian, &deadlineMs); err != nil {
			return
		}
		body, err := readFrame(r)
		if err != nil {
			return
		}
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if deadlineMs > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMs)*time.Millisecond)
		}
		resp, herr := s.handler(ctx, string(method), body)
		cancel()
		if herr != nil {
			if err := writeResponse(w, 1, []byte(herr.Error())); err != nil {
				return
			}
			continue
		}
		if err := writeResponse(w, 0, resp); err != nil {
			return
		}
	}
}

func readFrame(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return nil, err
	}
	if n > maxFrame {
		return nil, errors.New("transport: frame too large")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, b []byte) error {
	if err := binary.Write(w, binary.BigEndian, uint32(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func writeResponse(w *bufio.Writer, status byte, payload []byte) error {
	if err := w.WriteByte(status); err != nil {
		return err
	}
	if err := writeFrame(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// TCPPeer is a Peer over a TCP connection. It is safe for sequential use;
// guard concurrent Calls externally or use one peer per goroutine.
type TCPPeer struct {
	Name    string
	Metrics *Metrics

	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a source server.
func Dial(name, addr string, metrics *Metrics) (*TCPPeer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPPeer{
		Name:    name,
		Metrics: metrics,
		conn:    conn,
		r:       bufio.NewReader(conn),
		w:       bufio.NewWriter(conn),
	}, nil
}

// Call implements Peer. A context deadline bounds the whole exchange (the
// connection's read/write deadlines are set from it) and its remaining
// budget is shipped in the request frame so the source abandons work the
// caller will never wait for. A deadline failure poisons the connection's
// framing, so the peer must be discarded afterwards — exactly what Pool's
// health-aware checkin does.
func (p *TCPPeer) Call(ctx context.Context, method string, body []byte) ([]byte, error) {
	var deadlineMs uint64
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, fmt.Errorf("transport: call %s: %w", p.Name, context.DeadlineExceeded)
		}
		ms := remaining.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		deadlineMs = uint64(ms)
		p.conn.SetDeadline(dl)
		defer p.conn.SetDeadline(time.Time{})
	} else if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: call %s: %w", p.Name, err)
	}
	if err := writeFrame(p.w, []byte(method)); err != nil {
		return nil, fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	if err := binary.Write(p.w, binary.BigEndian, deadlineMs); err != nil {
		return nil, fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	if err := writeFrame(p.w, body); err != nil {
		return nil, fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	if err := p.w.Flush(); err != nil {
		return nil, fmt.Errorf("transport: send %s: %w", p.Name, err)
	}
	status, err := p.r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("transport: recv %s: %w", p.Name, err)
	}
	payload, err := readFrame(p.r)
	if err != nil {
		return nil, fmt.Errorf("transport: recv %s: %w", p.Name, err)
	}
	if status != 0 {
		return nil, &RemoteError{Source: p.Name, Msg: string(payload)}
	}
	p.Metrics.Record(method, len(body)+len(method), len(payload))
	return payload, nil
}

// Close implements Peer.
func (p *TCPPeer) Close() error { return p.conn.Close() }
