package transport

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dits/internal/obs"
)

// tracingHandler records one handler-side span, so propagation tests can
// assert that server work shows up in the caller's trace.
func tracingHandler(ctx context.Context, codec Codec, method string, body []byte) (any, error) {
	if method == MethodHello {
		// A real application handler rejects the hello as an unknown
		// method — that status-1 reply is the legacy fallback signal.
		return nil, errors.New("unknown method")
	}
	_, sp := obs.StartSpan(ctx, "handler.work")
	time.Sleep(time.Millisecond)
	sp.End()
	if method == "fail" {
		return nil, errors.New("boom")
	}
	out := "ok"
	return &out, nil
}

func spanNames(tr *obs.Trace) map[string]obs.Span {
	out := map[string]obs.Span{}
	for _, s := range tr.Snapshot() {
		out[s.Name] = s
	}
	return out
}

func TestTCPTracePropagation(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", tracingHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial("src", srv.Addr(), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if wi := p.WireInfo(); !wi.Trace {
		t.Fatalf("trace not negotiated: %+v", wi)
	}

	tr := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), tr)
	var resp string
	if err := p.Call(ctx, "work", nil, &resp); err != nil {
		t.Fatal(err)
	}
	spans := spanNames(tr)
	rpc, ok := spans["rpc:work"]
	if !ok {
		t.Fatalf("no rpc span; have %v", spans)
	}
	serve, ok := spans["serve:work"]
	if !ok || !serve.Remote {
		t.Fatalf("server span not merged as remote; have %v", spans)
	}
	if serve.Parent != rpc.ID {
		t.Error("server span not parented to the rpc span")
	}
	work, ok := spans["handler.work"]
	if !ok || work.Parent != serve.ID {
		t.Fatalf("handler span missing or misparented; have %v", spans)
	}
	if work.Start < rpc.Start {
		t.Error("merged span not rebased onto the rpc start")
	}
	if _, ok := spans["untraced"]; ok {
		t.Error("negotiated connection must not record an untraced marker")
	}

	// An error response must still carry (and merge) the span frame, and
	// the connection must stay usable afterwards.
	before := len(tr.Snapshot())
	if err := p.Call(ctx, "fail", nil, nil); err == nil {
		t.Fatal("fail call should error")
	} else if re := new(RemoteError); !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if got := len(tr.Snapshot()); got < before+3 {
		t.Errorf("error exchange recorded %d new spans, want >= 3", got-before)
	}
	if err := p.Call(ctx, "work", nil, &resp); err != nil {
		t.Fatalf("connection desynchronized after error response: %v", err)
	}
}

func TestTCPTraceUntracedRequestOnTracedConn(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", tracingHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial("src", srv.Addr(), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// No trace in the context: the trace frame ships empty and the server
	// serves untraced; nothing breaks.
	var resp string
	for i := 0; i < 3; i++ {
		if err := p.Call(context.Background(), "work", nil, &resp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPTraceLegacyPeerGetsUntracedMarker(t *testing.T) {
	cases := []struct {
		name string
		scfg ServeConfig
		dcfg DialConfig
	}{
		{"server refuses trace", ServeConfig{NoTrace: true}, DialConfig{}},
		{"dialer withholds trace", ServeConfig{}, DialConfig{NoTrace: true}},
		{"legacy server", ServeConfig{NoNegotiate: true}, DialConfig{}},
		{"legacy dialer", ServeConfig{}, DialConfig{NoNegotiate: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, err := ServeWith("127.0.0.1:0", tracingHandler, tc.scfg)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			p, err := DialWith("src", srv.Addr(), &Metrics{}, tc.dcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			if wi := p.WireInfo(); wi.Trace {
				t.Fatalf("trace should not negotiate: %+v", wi)
			}
			tr := obs.NewTrace()
			var resp string
			if err := p.Call(obs.WithTrace(context.Background(), tr), "work", nil, &resp); err != nil {
				t.Fatal(err)
			}
			spans := spanNames(tr)
			rpc, ok := spans["rpc:work"]
			if !ok {
				t.Fatalf("no rpc span; have %v", spans)
			}
			marker, ok := spans["untraced"]
			if !ok || marker.Parent != rpc.ID || marker.Source != "src" {
				t.Fatalf("missing or wrong untraced marker; have %v", spans)
			}
			if _, ok := spans["serve:work"]; ok {
				t.Error("legacy connection should not merge server spans")
			}
		})
	}
}

func TestTCPTraceServerSideRecorder(t *testing.T) {
	rec := obs.NewRecorder(obs.RecorderOptions{Capacity: 8})
	srv, err := ServeWith("127.0.0.1:0", tracingHandler, ServeConfig{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial("src", srv.Addr(), &Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr := obs.NewTrace()
	var resp string
	if err := p.Call(obs.WithTrace(context.Background(), tr), "work", nil, &resp); err != nil {
		t.Fatal(err)
	}
	got := rec.Lookup(tr.ID())
	if got == nil {
		t.Fatal("server recorder did not keep the trace under the caller's ID")
	}
	if got.Root != "serve:work" {
		t.Errorf("server-side root = %q", got.Root)
	}
}

func TestInProcTraceSpans(t *testing.T) {
	p := &InProc{Name: "local", Handler: tracingHandler, Metrics: &Metrics{}}
	tr := obs.NewTrace()
	var resp string
	if err := p.Call(obs.WithTrace(context.Background(), tr), "work", nil, &resp); err != nil {
		t.Fatal(err)
	}
	spans := spanNames(tr)
	rpc, ok := spans["rpc:work"]
	if !ok || rpc.Source != "local" {
		t.Fatalf("no rpc span; have %v", spans)
	}
	work, ok := spans["handler.work"]
	if !ok || work.Parent != rpc.ID || work.Remote {
		t.Fatalf("in-proc handler span wrong: %+v", work)
	}
	if !p.WireInfo().Trace {
		t.Error("InProc WireInfo should report trace on")
	}
}

func TestHelloReplyBackwardCompatible(t *testing.T) {
	// A trace-negotiating server's hello reply must keep the codec first
	// and "gzip" as a standalone token, exactly where a pre-trace dialer
	// looks for them.
	s := &Server{cfg: ServeConfig{}}
	reply, _, compress, trace := s.negotiate([]byte(helloMagic + " gob gzip,trace"))
	if !compress || !trace {
		t.Fatalf("negotiate: compress=%v trace=%v", compress, trace)
	}
	fields := strings.Fields(string(reply))
	if len(fields) != 3 || fields[0] != "gob" || fields[1] != "gzip" || fields[2] != "trace" {
		t.Fatalf("reply = %q", reply)
	}
}
