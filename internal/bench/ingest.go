// The ingest experiment measures the durable write path of
// internal/ingest along the axes the paper's update experiments (Figs.
// 21-22) and the durability design add: incremental index maintenance vs
// rebuilding from scratch (the only option a frozen source has), the WAL
// overhead under both fsync policies, and recovery time from a pure WAL
// replay vs from a snapshot. Before any timing is reported the recovered
// store's search results are checked byte-identical against a fresh Build
// over the surviving datasets — the snapshot can only ever show a speedup
// that preserves answers. Results snapshot to BENCH_ingest.json:
//
//	ditsbench -exp ingest -baseline   # run and snapshot
//	ditsbench -exp ingest -compare    # rerun and diff against the snapshot
//	ditsbench -exp ingest -trace data/updates.trace   # replay a datagen trace
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/search/overlap"
	"dits/internal/workload"
)

// IngestSchema identifies the snapshot format.
const IngestSchema = "dits-bench-ingest/1"

// ingestTraceLen is the mutation count when no -trace file is given.
const ingestTraceLen = 300

// IngestEntry is one measured write-path configuration.
type IngestEntry struct {
	Op        string  `json:"op"`        // apply | rebuild | wal-never | wal-always | recover-replay | recover-snapshot
	Mutations int     `json:"mutations"` // mutations applied (or replayed)
	NsPerOp   float64 `json:"ns_per_op"` // per mutation (apply/wal ops) or per recovery (recover ops)
	TotalMs   float64 `json:"total_ms"`
	Note      string  `json:"note,omitempty"`
}

// IngestReport is the machine-readable result of one ingest run.
type IngestReport struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated,omitempty"`
	Theta     int           `json:"theta"`
	Seed      int64         `json:"seed"`
	Scale     float64       `json:"scale"`
	Mutations int           `json:"mutations"`
	Datasets  int           `json:"datasets"` // index size at the start of the trace
	Results   []IngestEntry `json:"results"`
	// InsertVsRebuildSpeedup is the headline: ns to rebuild the whole
	// index divided by ns to apply one mutation incrementally.
	InsertVsRebuildSpeedup float64 `json:"insert_vs_rebuild_speedup"`
	// RecoveryReplayMs / RecoverySnapshotMs are wall-clock restart times
	// with the whole trace in the WAL vs compacted into a snapshot.
	RecoveryReplayMs   float64 `json:"recovery_replay_ms"`
	RecoverySnapshotMs float64 `json:"recovery_snapshot_ms"`
}

// ingestOp is one gridded mutation ready to apply.
type ingestOp struct {
	del   bool
	id    int
	name  string
	cells cellset.Set
}

// ingestWorkload builds the experiment's world: the Transit source (the
// paper's motivating portal), its gridded nodes, and the gridded mutation
// trace. Ops whose points grid to zero cells are dropped, and deletes are
// kept only while their target is live after the drops.
func ingestWorkload(cfg Config) (sourceData, []ingestOp, error) {
	// The OJSP figures' larger scale is used here too: rebuild cost grows
	// with index size while incremental cost barely does, and the paper's
	// update experiments run against full-size sources.
	ocfg := overlapCfg(cfg)
	spec, _ := workload.SpecByName("Transit")
	sd := cache.gridded(spec, ocfg, cfg.Theta)

	var trace []workload.Mutation
	if cfg.TracePath != "" {
		var err error
		trace, err = workload.ReadTraceFile(cfg.TracePath)
		if err != nil {
			return sd, nil, fmt.Errorf("bench: load -trace: %w", err)
		}
		// A datagen trace spans all five sources; keep this source's rows.
		var own []workload.Mutation
		for _, m := range trace {
			if m.Source == sd.src.Name {
				own = append(own, m)
			}
		}
		trace = own
		if len(trace) == 0 {
			return sd, nil, fmt.Errorf("bench: -trace holds no mutations for source %s", sd.src.Name)
		}
	} else {
		trace = workload.GenerateTrace([]*dataset.Source{sd.src}, ingestTraceLen, cfg.Seed+7)
	}

	live := map[int]bool{}
	for _, nd := range sd.nodes {
		live[nd.ID] = true
	}
	ops := make([]ingestOp, 0, len(trace))
	for _, m := range trace {
		if m.Op == workload.MutDelete {
			if live[m.ID] {
				ops = append(ops, ingestOp{del: true, id: m.ID})
				delete(live, m.ID)
			}
			continue
		}
		pts := make([]geo.Point, len(m.Points))
		for i, p := range m.Points {
			pts[i] = geo.Point{X: p[0], Y: p[1]}
		}
		cells := cellset.FromPoints(sd.grid, pts)
		if cells.IsEmpty() {
			continue
		}
		ops = append(ops, ingestOp{id: m.ID, name: m.Name, cells: cells})
		live[m.ID] = true
	}
	if len(ops) == 0 {
		return sd, nil, fmt.Errorf("bench: ingest trace gridded to zero applicable mutations")
	}
	return sd, ops, nil
}

// freshIndex builds the pre-trace index.
func freshIndex(sd sourceData, f int) *dits.Local {
	return dits.Build(sd.grid, sd.nodes, f)
}

// applyOps runs the ops against a live index (in-memory, no WAL).
func applyOps(idx *dits.Local, ops []ingestOp) error {
	for _, op := range ops {
		var err error
		switch {
		case op.del:
			err = idx.Delete(op.id)
		case idx.Get(op.id) != nil:
			err = idx.Update(dataset.NewNodeFromCells(op.id, op.name, op.cells))
		default:
			err = idx.Insert(dataset.NewNodeFromCells(op.id, op.name, op.cells))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// applyOpsStore runs the ops through a durable store.
func applyOpsStore(st *ingest.Store, ops []ingestOp) error {
	for _, op := range ops {
		var err error
		if op.del {
			_, err = st.DeleteDataset(op.id)
		} else {
			_, err = st.PutDataset(op.id, op.name, op.cells)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ingestFingerprint is the parity basis: ranked top-k answers for sampled
// queries against the index.
func ingestFingerprint(sd sourceData, idx *dits.Local, k int) [][]overlap.Result {
	qs := queries(sd, 10, 123)
	out := make([][]overlap.Result, len(qs))
	for i, q := range qs {
		out[i] = (&overlap.DITSSearcher{Index: idx}).TopK(q, k)
	}
	return out
}

// RunIngest executes the ingest experiment, returning the machine-readable
// report and printable tables. It fails on any divergence between a
// recovered store and the in-process oracle.
func RunIngest(cfg Config) (IngestReport, []Table, error) {
	report := IngestReport{
		Schema: IngestSchema, Theta: cfg.Theta, Seed: cfg.Seed,
		Scale: overlapCfg(cfg).Scale,
	}
	sd, ops, err := ingestWorkload(cfg)
	if err != nil {
		return report, nil, err
	}
	report.Mutations = len(ops)
	report.Datasets = len(sd.nodes)

	// ---- Oracle: final state applied in-process; parity basis. ----
	oracle := freshIndex(sd, cfg.F)
	if err := applyOps(oracle, ops); err != nil {
		return report, nil, err
	}
	if err := oracle.CheckInvariants(); err != nil {
		return report, nil, err
	}
	want := ingestFingerprint(sd, oracle, cfg.K)

	// ---- Fig. 21/22 series: incremental apply time as the batch grows. ----
	for _, beta := range ParamBeta {
		if beta >= len(ops) {
			break // the full-trace entry below covers the final point
		}
		idx := freshIndex(sd, cfg.F)
		ms := timeIt(func() {
			if err := applyOps(idx, ops[:beta]); err != nil {
				panic(err)
			}
		})
		report.Results = append(report.Results, IngestEntry{
			Op: "apply", Mutations: beta,
			NsPerOp: ms * 1e6 / float64(beta), TotalMs: ms,
			Note: "in-memory Insert/Update/Delete (Figs. 21-22 series)",
		})
	}

	// Full-trace incremental apply: the headline numerator's denominator.
	idx := freshIndex(sd, cfg.F)
	applyMs := timeIt(func() {
		if err := applyOps(idx, ops); err != nil {
			panic(err)
		}
	})
	applyNs := applyMs * 1e6 / float64(len(ops))
	report.Results = append(report.Results, IngestEntry{
		Op: "apply", Mutations: len(ops), NsPerOp: applyNs, TotalMs: applyMs,
	})

	// Rebuild: what a frozen source pays to pick up ONE mutation.
	rebuildNs := measure(func() { freshIndex(sd, cfg.F) })
	report.Results = append(report.Results, IngestEntry{
		Op: "rebuild", Mutations: 1, NsPerOp: rebuildNs, TotalMs: rebuildNs / 1e6,
		Note: "full Build of the source index",
	})
	if applyNs > 0 {
		report.InsertVsRebuildSpeedup = rebuildNs / applyNs
	}

	// ---- WAL overhead under both fsync policies. ----
	type walRun struct {
		op    string
		fsync ingest.FsyncMode
	}
	var replayDir string
	for _, wr := range []walRun{{"wal-never", ingest.FsyncNever}, {"wal-always", ingest.FsyncAlways}} {
		dir, err := os.MkdirTemp("", "dits-ingest-bench-*")
		if err != nil {
			return report, nil, err
		}
		defer os.RemoveAll(dir)
		st, err := ingest.Open(dir, ingest.Options{
			Fsync:         wr.fsync,
			SnapshotEvery: -1, // keep the whole trace in the WAL for the replay measurement
			Bootstrap:     func() (*dits.Local, error) { return freshIndex(sd, cfg.F), nil },
		})
		if err != nil {
			return report, nil, err
		}
		ms := timeIt(func() {
			if err := applyOpsStore(st, ops); err != nil {
				panic(err)
			}
		})
		if got := ingestFingerprint(sd, st.Index(), cfg.K); !reflect.DeepEqual(got, want) {
			return report, nil, fmt.Errorf("bench: ingest parity violation after %s run", wr.op)
		}
		if err := st.Close(); err != nil {
			return report, nil, err
		}
		report.Results = append(report.Results, IngestEntry{
			Op: wr.op, Mutations: len(ops),
			NsPerOp: ms * 1e6 / float64(len(ops)), TotalMs: ms,
			Note: "durable put/delete through the store",
		})
		if wr.fsync == ingest.FsyncNever {
			replayDir = dir
		}
	}

	// ---- Recovery: full WAL replay vs snapshot-only. ----
	var replayed *ingest.Store
	replayMs := timeIt(func() {
		replayed, err = ingest.Open(replayDir, ingest.Options{})
	})
	if err != nil {
		return report, nil, err
	}
	if got := ingestFingerprint(sd, replayed.Index(), cfg.K); !reflect.DeepEqual(got, want) {
		return report, nil, fmt.Errorf("bench: recovery (replay) parity violation")
	}
	stats := replayed.Stats()
	if err := replayed.Snapshot(); err != nil {
		return report, nil, err
	}
	if err := replayed.Close(); err != nil {
		return report, nil, err
	}
	report.RecoveryReplayMs = replayMs
	report.Results = append(report.Results, IngestEntry{
		Op: "recover-replay", Mutations: stats.Replayed,
		NsPerOp: replayMs * 1e6, TotalMs: replayMs,
		Note: "restart: snapshot load + full WAL replay",
	})

	var snapped *ingest.Store
	snapMs := timeIt(func() {
		snapped, err = ingest.Open(replayDir, ingest.Options{})
	})
	if err != nil {
		return report, nil, err
	}
	if got := ingestFingerprint(sd, snapped.Index(), cfg.K); !reflect.DeepEqual(got, want) {
		return report, nil, fmt.Errorf("bench: recovery (snapshot) parity violation")
	}
	if err := snapped.Close(); err != nil {
		return report, nil, err
	}
	report.RecoverySnapshotMs = snapMs
	report.Results = append(report.Results, IngestEntry{
		Op: "recover-snapshot", Mutations: 0,
		NsPerOp: snapMs * 1e6, TotalMs: snapMs,
		Note: "restart: snapshot load, empty WAL",
	})

	t := Table{
		ID:    "ingest",
		Title: "Durable ingest: incremental updates vs rebuild, WAL overhead, recovery",
		Header: []string{
			"op", "mutations", "ns/op", "total ms", "note",
		},
		Notes: []string{
			fmt.Sprintf("source: Transit at scale %g (%d datasets); %d trace mutations; parity with a fresh rebuild enforced.",
				report.Scale, report.Datasets, report.Mutations),
			fmt.Sprintf("headline: one incremental mutation is %.0fx cheaper than a rebuild; recovery %0.1f ms (replay) / %0.1f ms (snapshot).",
				report.InsertVsRebuildSpeedup, report.RecoveryReplayMs, report.RecoverySnapshotMs),
		},
	}
	for _, e := range report.Results {
		t.Rows = append(t.Rows, []string{
			e.Op, itoa(e.Mutations),
			fmt.Sprintf("%.0f", e.NsPerOp),
			fmt.Sprintf("%.2f", e.TotalMs),
			e.Note,
		})
	}
	return report, []Table{t}, nil
}

// WriteIngest stamps and writes the report as indented JSON.
func WriteIngest(path string, r IngestReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadIngest loads a snapshot written by WriteIngest.
func ReadIngest(path string) (IngestReport, error) {
	var r IngestReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != IngestSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, IngestSchema)
	}
	return r, nil
}

// CompareIngest diffs a current run against a snapshot per (op, mutations)
// pair. Wall-clock drift against a snapshot from different hardware is
// informational; the insert-vs-rebuild speedup, measured live, is the
// hardware-independent signal.
func CompareIngest(base, cur IngestReport) Table {
	t := Table{
		ID:    "ingest-compare",
		Title: "Durable ingest vs baseline snapshot" + ingestGeneratedSuffix(base),
		Header: []string{
			"op", "mutations", "base ns/op", "now ns/op", "drift",
		},
		Notes: []string{
			"drift = now/base ns per op: < 1.00x is faster than the snapshot.",
			fmt.Sprintf("headline now: %.0fx vs rebuild, recovery %.1f/%.1f ms (snapshot: %.0fx, %.1f/%.1f ms).",
				cur.InsertVsRebuildSpeedup, cur.RecoveryReplayMs, cur.RecoverySnapshotMs,
				base.InsertVsRebuildSpeedup, base.RecoveryReplayMs, base.RecoverySnapshotMs),
		},
	}
	key := func(e IngestEntry) string { return fmt.Sprintf("%s|%d", e.Op, e.Mutations) }
	baseBy := make(map[string]IngestEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[key(e)] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[key(e)]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for %s/%d", e.Op, e.Mutations))
			continue
		}
		drift := "-"
		if b.NsPerOp > 0 {
			drift = fmt.Sprintf("%.2fx", e.NsPerOp/b.NsPerOp)
		}
		t.Rows = append(t.Rows, []string{
			e.Op, itoa(e.Mutations),
			fmt.Sprintf("%.0f", b.NsPerOp),
			fmt.Sprintf("%.0f", e.NsPerOp),
			drift,
		})
	}
	return t
}

func ingestGeneratedSuffix(base IngestReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Ingest adapts RunIngest to the experiment registry (plain -exp ingest
// runs without snapshotting).
func Ingest(cfg Config) []Table {
	_, tables, err := RunIngest(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
