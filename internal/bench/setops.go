// The setops experiment benchmarks the container-based cell-set engine
// against the flat-slice baseline on the kernels every query bottoms out
// in: IntersectCount (OJSP's Definition 10 measure), MarginalGain (CJSP's
// greedy objective), Union/Diff (result merging), and the DITS-L leaf
// verification OverlapCounts. Results snapshot to a machine-readable JSON
// file (BENCH_setops.json by default) so the perf trajectory of future PRs
// can be compared against a committed baseline, dtail-tools style:
//
//	ditsbench -exp setops -baseline   # run and snapshot
//	ditsbench -exp setops -compare    # run and diff against the snapshot
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
)

// SetopsSchema identifies the snapshot format.
const SetopsSchema = "dits-bench-setops/1"

// SetopsEntry is one measured kernel on one workload: flat vs compact.
type SetopsEntry struct {
	Op           string  `json:"op"`
	Workload     string  `json:"workload"`
	Cells        int     `json:"cells"` // |s|+|t| driven through the kernel per op
	FlatNsPerOp  float64 `json:"flat_ns_per_op"`
	CompNsPerOp  float64 `json:"compact_ns_per_op"`
	Speedup      float64 `json:"speedup"`           // flat / compact
	FlatMcellsPS float64 `json:"flat_mcells_per_s"` // throughput, millions of cells/sec
	CompMcellsPS float64 `json:"comp_mcells_per_s"` //
	CompactBytes int64   `json:"compact_bytes"`     // container footprint of the operand pair
	FlatBytes    int64   `json:"flat_bytes"`        // 8 bytes per cell
}

// SetopsReport is the machine-readable result of one setops run.
type SetopsReport struct {
	Schema    string        `json:"schema"`
	Generated string        `json:"generated,omitempty"` // RFC3339, stamped at write time
	Theta     int           `json:"theta"`
	Seed      int64         `json:"seed"`
	Results   []SetopsEntry `json:"results"`
}

// setopsMinTime is how long each kernel is sampled; long enough to defeat
// timer noise, short enough that the full matrix stays interactive.
const setopsMinTime = 40 * time.Millisecond

// setopsWorkload is one generated operand pair plus a leaf for the
// OverlapCounts kernel.
type setopsWorkload struct {
	name string
	s, t cellset.Set
}

// setopsWorkloads builds the two shapes that matter: z-order-clustered
// (spatially compact data → dense chunks, the case real datasets hit) and
// uniform-sparse over the whole grid (the adversarial case for bitmaps).
func setopsWorkloads(cfg Config) []setopsWorkload {
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := 1 << uint(cfg.Theta)

	// Patch side, clamped so tiny grids (-theta 6 and below) still work
	// instead of feeding rand.Intn a non-positive span.
	blk := 96
	if blk > side {
		blk = side
	}
	clustered := func() cellset.Set {
		// A handful of dense square patches: ~75% of the cells of several
		// 96×96 blocks, which Morton encoding turns into dense chunks.
		var ids []uint64
		for b := 0; b < 6; b++ {
			var bx, by int
			if side > blk {
				bx, by = rng.Intn(side-blk), rng.Intn(side-blk)
			}
			for dx := 0; dx < blk; dx++ {
				for dy := 0; dy < blk; dy++ {
					if rng.Intn(4) > 0 {
						ids = append(ids, geo.ZEncode(uint32(bx+dx), uint32(by+dy)))
					}
				}
			}
		}
		return cellset.New(ids...)
	}
	uniform := func(n int) cellset.Set {
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = geo.ZEncode(uint32(rng.Intn(side)), uint32(rng.Intn(side)))
		}
		return cellset.New(ids...)
	}

	cs, ct := clustered(), clustered()
	// Overlap the clustered pair so the intersection is non-trivial.
	ct = ct.Union(cs[:len(cs)/2])
	return []setopsWorkload{
		{name: "clustered", s: cs, t: ct},
		{name: "uniform", s: uniform(40000), t: uniform(40000)},
	}
}

// measure samples fn until setopsMinTime has elapsed and returns ns/op.
func measure(fn func()) float64 {
	fn() // warm caches before timing
	var (
		iters int
		total time.Duration
	)
	for total < setopsMinTime {
		batch := 1 + iters/2 // grow batches so cheap kernels amortize timer reads
		start := time.Now()
		for i := 0; i < batch; i++ {
			fn()
		}
		total += time.Since(start)
		iters += batch
	}
	return float64(total.Nanoseconds()) / float64(iters)
}

// RunSetops executes the setops experiment, returning both the
// machine-readable report and the printable tables.
func RunSetops(cfg Config) (SetopsReport, []Table) {
	report := SetopsReport{Schema: SetopsSchema, Theta: cfg.Theta, Seed: cfg.Seed}
	t := Table{
		ID:    "setops",
		Title: "Cell-set engine: flat []uint64 vs Roaring-style containers",
		Header: []string{
			"op", "workload", "cells", "flat ns/op", "compact ns/op", "speedup",
		},
		Notes: []string{
			"clustered = z-order-dense patches (the shape real datasets produce); uniform = adversarial sparse.",
			"speedup = flat ns / compact ns; OverlapCounts verifies one full DITS-L leaf.",
		},
	}

	for _, w := range setopsWorkloads(cfg) {
		sc, tc := cellset.FromSet(w.s), cellset.FromSet(w.t)
		cells := w.s.Len() + w.t.Len()
		kernels := []struct {
			op      string
			flat    func()
			compact func()
		}{
			{"IntersectCount", func() { w.s.IntersectCount(w.t) }, func() { sc.IntersectCount(tc) }},
			{"MarginalGain", func() { w.s.MarginalGain(w.t) }, func() { sc.MarginalGain(tc) }},
			{"Union", func() { w.s.Union(w.t) }, func() { sc.Union(tc) }},
			{"Diff", func() { w.s.Diff(w.t) }, func() { sc.Diff(tc) }},
		}
		for _, k := range kernels {
			e := setopsEntry(k.op, w.name, cells, measure(k.flat), measure(k.compact))
			e.CompactBytes = sc.MemoryBytes() + tc.MemoryBytes()
			e.FlatBytes = int64(cells) * 8
			report.Results = append(report.Results, e)
		}

		// Leaf verification: one DITS-L leaf of DefaultLeafCapacity
		// datasets carved out of the t side, probed with the s side —
		// the exact counting step of Algorithm 2.
		leaf := setopsLeaf(w.t)
		qc := sc
		e := setopsEntry("OverlapCounts", w.name, cells,
			measure(func() { leaf.OverlapCounts(w.s) }),
			measure(func() { leaf.OverlapCountsCompact(qc) }))
		e.CompactBytes = sc.MemoryBytes() + tc.MemoryBytes()
		e.FlatBytes = int64(cells) * 8
		report.Results = append(report.Results, e)
	}

	for _, e := range report.Results {
		t.Rows = append(t.Rows, []string{
			e.Op, e.Workload, itoa(e.Cells),
			fmt.Sprintf("%.0f", e.FlatNsPerOp),
			fmt.Sprintf("%.0f", e.CompNsPerOp),
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	return report, []Table{t}
}

// setopsEntry fills the derived throughput fields.
func setopsEntry(op, workload string, cells int, flatNs, compNs float64) SetopsEntry {
	e := SetopsEntry{
		Op: op, Workload: workload, Cells: cells,
		FlatNsPerOp: flatNs, CompNsPerOp: compNs,
	}
	if compNs > 0 {
		e.Speedup = flatNs / compNs
		e.CompMcellsPS = float64(cells) / compNs * 1e3
	}
	if flatNs > 0 {
		e.FlatMcellsPS = float64(cells) / flatNs * 1e3
	}
	return e
}

// setopsLeaf builds one full DITS-L leaf whose datasets partition src into
// DefaultLeafCapacity contiguous slices (so every posting list is
// realistic: each cell belongs to exactly one child).
func setopsLeaf(src cellset.Set) *dits.TreeNode {
	f := dits.DefaultLeafCapacity
	nodes := make([]*dataset.Node, 0, f)
	per := len(src)/f + 1
	for i := 0; i < f && i*per < len(src); i++ {
		end := (i + 1) * per
		if end > len(src) {
			end = len(src)
		}
		nd := dataset.NewNodeFromCells(i, fmt.Sprintf("slice-%d", i), src[i*per:end].Clone())
		if nd != nil {
			nodes = append(nodes, nd)
		}
	}
	side := float64(uint64(1) << 32)
	g := geo.NewGrid(1, geo.Rect{MinX: 0, MinY: 0, MaxX: side, MaxY: side})
	return dits.Build(g, nodes, f).Root
}

// WriteSetops stamps and writes the report as indented JSON.
func WriteSetops(path string, r SetopsReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSetops loads a snapshot written by WriteSetops.
func ReadSetops(path string) (SetopsReport, error) {
	var r SetopsReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != SetopsSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, SetopsSchema)
	}
	return r, nil
}

// CompareSetops diffs a current run against a snapshot: for every (op,
// workload) pair present in both, it reports the snapshot and current
// compact timings, the drift between them, and the current flat-vs-compact
// speedup — the regression signal future PRs gate on.
func CompareSetops(base, cur SetopsReport) Table {
	t := Table{
		ID:    "setops-compare",
		Title: "Cell-set engine vs baseline snapshot" + generatedSuffix(base),
		Header: []string{
			"op", "workload", "base compact ns", "now compact ns", "drift", "flat/compact now",
		},
		Notes: []string{
			"drift = now/base for the compact engine: < 1.00x is faster than the snapshot.",
			"flat/compact now is the live speedup over the flat-slice baseline measured this run.",
		},
	}
	baseBy := make(map[string]SetopsEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Op+"|"+e.Workload] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[e.Op+"|"+e.Workload]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for %s/%s", e.Op, e.Workload))
			continue
		}
		drift := "-"
		if b.CompNsPerOp > 0 {
			drift = fmt.Sprintf("%.2fx", e.CompNsPerOp/b.CompNsPerOp)
		}
		t.Rows = append(t.Rows, []string{
			e.Op, e.Workload,
			fmt.Sprintf("%.0f", b.CompNsPerOp),
			fmt.Sprintf("%.0f", e.CompNsPerOp),
			drift,
			fmt.Sprintf("%.2fx", e.Speedup),
		})
	}
	return t
}

func generatedSuffix(base SetopsReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Setops adapts RunSetops to the experiment registry (plain -exp setops
// runs without snapshotting).
func Setops(cfg Config) []Table {
	_, tables := RunSetops(cfg)
	return tables
}
