// The load experiment measures the serving stack end-to-end: a small
// generated federation behind a real HTTP listener (internal/load's local
// harness), driven by the open- and closed-loop generators of cmd/ditsload.
// Open-loop scenarios pace arrivals at a fixed rate and measure latency
// from the intended arrival time (coordinated-omission corrected); closed
// loops measure service time under N back-to-back clients. A final
// tight-admission scenario overloads a rate-limited gateway to demonstrate
// load shedding end to end. Results snapshot to BENCH_load.json:
//
//	ditsbench -exp load -baseline   # run and snapshot
//	ditsbench -exp load -compare    # run and diff against the snapshot
//
// Latency numbers are wall clock on whatever host runs the experiment;
// the compare table reports drift as informational (a laptop and a CI box
// will differ), with the shed-rate and error-rate columns as the
// hardware-independent regression signal.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"dits/internal/admission"
	"dits/internal/load"
)

// LoadSchema identifies the snapshot format.
const LoadSchema = "dits-bench-load/1"

// LoadEntry is one measured load scenario.
type LoadEntry struct {
	Scenario string  `json:"scenario"`
	Mode     string  `json:"mode"`
	Rate     float64 `json:"rate,omitempty"`    // open loop: offered req/s
	Clients  int     `json:"clients,omitempty"` // closed loop: concurrency
	Seconds  float64 `json:"seconds"`

	Sent       int64   `json:"sent"`
	OK         int64   `json:"ok"`
	Shed       int64   `json:"shed"`
	Throughput float64 `json:"throughput"` // ok/s
	ShedRate   float64 `json:"shed_rate"`
	ErrorRate  float64 `json:"error_rate"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// LoadReport is the machine-readable result of one load run.
type LoadReport struct {
	Schema    string      `json:"schema"`
	Generated string      `json:"generated,omitempty"`
	NumCPU    int         `json:"num_cpu"`
	Seed      int64       `json:"seed"`
	Duration  float64     `json:"scenario_seconds"` // per-scenario duration
	Results   []LoadEntry `json:"results"`
}

// loadScenario is one swept configuration.
type loadScenario struct {
	name    string
	mode    string
	rate    float64
	clients int
	tight   bool // run against the tight-admission gateway
	traced  bool // run against the fresh tracing-enabled A/B gateway
	notrace bool // run against the tracing-disabled gateway
	mix     load.Mix
}

// loadScenarios are the fixed sweep: open loop at two offered rates,
// closed loop at two client counts, a deliberate overload of a
// rate-limited gateway to exercise shedding, and an overlap-only A/B pair
// against gateways identical but for per-request tracing — the difference
// of their p50s is the tracing tax. The A/B pair runs open loop well
// below saturation: at a fixed offered rate p50 reflects service time,
// whereas a saturating closed loop would multiply every microsecond of
// overhead by the queueing it induces and report that instead.
var loadScenarios = []loadScenario{
	{name: "open-100rps", mode: "open", rate: 100},
	{name: "open-1000rps", mode: "open", rate: 1000},
	{name: "closed-8", mode: "closed", clients: 8},
	{name: "closed-64", mode: "closed", clients: 64},
	{name: "tight-shed", mode: "open", rate: 300, tight: true, mix: load.Mix{Overlap: 1}},
	{name: "overlap-traced", mode: "open", rate: 600, traced: true, mix: load.Mix{Overlap: 1}},
	{name: "overlap-notrace", mode: "open", rate: 600, notrace: true, mix: load.Mix{Overlap: 1}},
}

// RunLoad executes the load experiment, returning the machine-readable
// report and printable tables.
func RunLoad(cfg Config) (LoadReport, []Table, error) {
	secs := cfg.LoadSecs
	if secs <= 0 {
		secs = 3
	}
	report := LoadReport{
		Schema: LoadSchema, NumCPU: runtime.NumCPU(),
		Seed: cfg.Seed, Duration: secs,
	}

	// One permissive gateway for the throughput scenarios (mutable so the
	// ingest class flows), one tight gateway for the shed scenario.
	lg, err := load.StartLocal(load.LocalOptions{Sources: 2, Scale: 0.005, Seed: cfg.Seed, Mutable: true})
	if err != nil {
		return report, nil, err
	}
	defer lg.Close()
	tight, err := load.StartLocal(load.LocalOptions{
		Sources: 1, Scale: 0.005, Seed: cfg.Seed,
		Admission: admission.Config{Rate: 50, Burst: 25, MaxInFlight: 4, MaxQueue: 8},
	})
	if err != nil {
		return report, nil, err
	}
	defer tight.Close()
	// The A/B pair gets its own two gateways, both untouched by the mixed
	// scenarios above (lg has absorbed their ingest mutations by then, so
	// reusing it would fold index growth and cache churn into the
	// comparison). They differ in exactly one bit: DisableTracing.
	traced, err := load.StartLocal(load.LocalOptions{
		Sources: 2, Scale: 0.005, Seed: cfg.Seed, Mutable: true,
	})
	if err != nil {
		return report, nil, err
	}
	defer traced.Close()
	bare, err := load.StartLocal(load.LocalOptions{
		Sources: 2, Scale: 0.005, Seed: cfg.Seed, Mutable: true, DisableTracing: true,
	})
	if err != nil {
		return report, nil, err
	}
	defer bare.Close()

	runOne := func(sc loadScenario) (LoadEntry, error) {
		opts := load.Options{
			Target:   lg.URL,
			Mode:     sc.mode,
			Rate:     sc.rate,
			Clients:  sc.clients,
			Duration: time.Duration(secs * float64(time.Second)),
			Mix:      sc.mix,
			Seed:     cfg.Seed,
			ClientID: "ditsbench",
			K:        cfg.K,
		}
		switch {
		case sc.tight:
			opts.Target = tight.URL
		case sc.traced:
			opts.Target = traced.URL
		case sc.notrace:
			opts.Target = bare.URL
		default:
			opts.IngestSource = lg.IngestSource
		}
		if (sc.mix != load.Mix{}) {
			opts.IngestSource = ""
		}
		res, err := load.Run(context.Background(), opts)
		if err != nil {
			return LoadEntry{}, fmt.Errorf("bench: load scenario %s: %w", sc.name, err)
		}
		if res.OK == 0 {
			return LoadEntry{}, fmt.Errorf("bench: load scenario %s completed no requests", sc.name)
		}
		return LoadEntry{
			Scenario: sc.name, Mode: res.Mode, Rate: res.Rate, Clients: res.Clients,
			Seconds: res.Seconds, Sent: res.Sent, OK: res.OK, Shed: res.Shed,
			Throughput: res.Throughput, ShedRate: res.ShedRate, ErrorRate: res.ErrorRate,
			P50Ms: res.P50Ms, P99Ms: res.P99Ms, P999Ms: res.P999Ms,
		}, nil
	}

	// The A/B pair runs twice, interleaved, keeping each side's better
	// run: a one-off stall of the shared host (a GC cycle collecting the
	// earlier scenarios' heaps, a noisy-neighbor hiccup) lands on one run
	// of one side and would otherwise be reported as tracing overhead.
	var abBest = map[string]*LoadEntry{}
	for _, sc := range loadScenarios {
		if !sc.traced && !sc.notrace {
			e, err := runOne(sc)
			if err != nil {
				return report, nil, err
			}
			report.Results = append(report.Results, e)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, sc := range loadScenarios {
			if !sc.traced && !sc.notrace {
				continue
			}
			e, err := runOne(sc)
			if err != nil {
				return report, nil, err
			}
			if best := abBest[sc.name]; best == nil || e.P50Ms < best.P50Ms {
				abBest[sc.name] = &e
			}
		}
	}
	for _, sc := range loadScenarios {
		if e := abBest[sc.name]; e != nil {
			report.Results = append(report.Results, *e)
		}
	}

	// The tight scenario exists to demonstrate shedding; a zero shed count
	// means admission control did not engage and the experiment is wrong.
	for _, e := range report.Results {
		if e.Scenario == "tight-shed" && e.Shed == 0 {
			return report, nil, fmt.Errorf("bench: tight-shed scenario shed nothing (admission not engaged)")
		}
	}

	t := Table{
		ID:    "load",
		Title: "Serving stack under load: open/closed loops over HTTP (mixed OJSP/CJSP/batch/ingest)",
		Header: []string{
			"scenario", "mode", "offered", "sent", "ok", "shed", "ok/s", "p50 ms", "p99 ms", "p999 ms",
		},
		Notes: []string{
			fmt.Sprintf("host CPUs: %d; %gs per scenario; open-loop latency measured from intended arrival (coordinated-omission corrected).", runtime.NumCPU(), secs),
			"tight-shed offers 300 req/s to a gateway admitting 50 req/s (burst 25, 4 in flight, queue 8): the shed column is the 429s.",
		},
	}
	if note := traceOverheadNote(report.Results); note != "" {
		t.Notes = append(t.Notes, note)
	}
	for _, e := range report.Results {
		offered := fmt.Sprintf("%d clients", e.Clients)
		if e.Mode == "open" {
			offered = fmt.Sprintf("%.0f req/s", e.Rate)
		}
		t.Rows = append(t.Rows, []string{
			e.Scenario, e.Mode, offered,
			fmt.Sprintf("%d", e.Sent), fmt.Sprintf("%d", e.OK), fmt.Sprintf("%d", e.Shed),
			fmt.Sprintf("%.0f", e.Throughput),
			fmt.Sprintf("%.2f", e.P50Ms), fmt.Sprintf("%.2f", e.P99Ms), fmt.Sprintf("%.2f", e.P999Ms),
		})
	}
	return report, []Table{t}, nil
}

// WriteLoad stamps and writes the report as indented JSON.
func WriteLoad(path string, r LoadReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoad loads a snapshot written by WriteLoad.
func ReadLoad(path string) (LoadReport, error) {
	var r LoadReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != LoadSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, LoadSchema)
	}
	return r, nil
}

// CompareLoad diffs a current run against a snapshot per scenario. All
// drift is informational — absolute latency and throughput are hardware
// bound — but a shed-rate or error-rate jump is flagged in the notes.
func CompareLoad(base, cur LoadReport) Table {
	t := Table{
		ID:    "load-compare",
		Title: "Serving stack vs baseline snapshot" + loadGeneratedSuffix(base),
		Header: []string{
			"scenario", "base ok/s", "now ok/s", "drift", "base p99", "now p99", "base shed%", "now shed%",
		},
		Notes: []string{
			fmt.Sprintf("snapshot host CPUs: %d, current: %d — absolute numbers are comparable only on matching hardware.", base.NumCPU, cur.NumCPU),
			"drift = now/base throughput: > 1.00x is faster than the snapshot.",
		},
	}
	baseBy := make(map[string]LoadEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Scenario] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[e.Scenario]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for scenario %s", e.Scenario))
			continue
		}
		drift := "-"
		if b.Throughput > 0 {
			drift = fmt.Sprintf("%.2fx", e.Throughput/b.Throughput)
		}
		t.Rows = append(t.Rows, []string{
			e.Scenario,
			fmt.Sprintf("%.0f", b.Throughput), fmt.Sprintf("%.0f", e.Throughput), drift,
			fmt.Sprintf("%.2f", b.P99Ms), fmt.Sprintf("%.2f", e.P99Ms),
			fmt.Sprintf("%.1f", 100*b.ShedRate), fmt.Sprintf("%.1f", 100*e.ShedRate),
		})
		if e.ErrorRate > b.ErrorRate+0.01 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: %s error rate rose %.1f%% -> %.1f%%", e.Scenario, 100*b.ErrorRate, 100*e.ErrorRate))
		}
	}
	return t
}

// traceOverheadNote compares the open-loop A/B pair: p50 with tracing
// on vs off, against identically configured gateways at the same
// offered rate.
func traceOverheadNote(results []LoadEntry) string {
	var traced, bare *LoadEntry
	for i := range results {
		switch results[i].Scenario {
		case "overlap-traced":
			traced = &results[i]
		case "overlap-notrace":
			bare = &results[i]
		}
	}
	if traced == nil || bare == nil || bare.P50Ms <= 0 {
		return ""
	}
	return fmt.Sprintf("tracing overhead: p50 %.2fms traced vs %.2fms untraced (%+.1f%%).",
		traced.P50Ms, bare.P50Ms, 100*(traced.P50Ms-bare.P50Ms)/bare.P50Ms)
}

func loadGeneratedSuffix(base LoadReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Load adapts RunLoad to the experiment registry (plain -exp load runs
// without snapshotting).
func Load(cfg Config) []Table {
	_, tables, err := RunLoad(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
