package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps the smoke tests fast: a few datasets per source.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	cfg.OverlapScale = 0.004
	cfg.Q = 2
	cfg.K = 3
	cfg.CoverageSources = []string{"Transit"}
	return cfg
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is not short")
	}
	cfg := tinyConfig()
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tbl.Header))
					}
				}
				if !strings.Contains(tbl.String(), tbl.Title) {
					t.Errorf("%s: String() misses the title", e.ID)
				}
				if !strings.Contains(tbl.CSV(), tbl.Header[0]) {
					t.Errorf("%s: CSV() misses the header", e.ID)
				}
			}
		})
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown experiment should error")
	}
	tables, err := Run("table2", tinyConfig())
	if err != nil || len(tables) != 1 {
		t.Fatalf("table2 run: %v, %d tables", err, len(tables))
	}
}

// TestFedcommSnapshotRoundTrip runs the protocol experiment at tiny scale
// (which itself enforces stateless/session result parity) and checks the
// snapshot file round-trips and diffs cleanly.
func TestFedcommSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fedcomm builds a five-source federation; not short")
	}
	report, tables, err := RunFedcomm(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(report.Results) != 4 {
		t.Fatalf("unexpected shape: %d tables, %d results", len(tables), len(report.Results))
	}
	path := filepath.Join(t.TempDir(), "fedcomm.json")
	if err := WriteFedcomm(path, report); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFedcomm(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != FedcommSchema || len(back.Results) != len(report.Results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	cmp := CompareFedcomm(back, report)
	if len(cmp.Rows) != len(report.Results) {
		t.Fatalf("compare table has %d rows, want %d", len(cmp.Rows), len(report.Results))
	}
	if _, err := ReadFedcomm(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing snapshot should error")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}, {"22", `with"quote`}},
		Notes:  []string{"note"},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "# note") {
		t.Errorf("String output wrong:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("CSV did not quote comma cell:\n%s", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("CSV did not escape quote cell:\n%s", csv)
	}
}
