package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// tinyConfig keeps the smoke tests fast: a few datasets per source.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.004
	cfg.OverlapScale = 0.004
	cfg.Q = 2
	cfg.K = 3
	cfg.CoverageSources = []string{"Transit"}
	cfg.LoadSecs = 0.4
	cfg.BigScale = 0.02
	return cfg
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is not short")
	}
	cfg := tinyConfig()
	seen := map[string]bool{}
	for _, e := range All() {
		e := e
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Header) {
						t.Errorf("%s: row width %d != header width %d", e.ID, len(row), len(tbl.Header))
					}
				}
				if !strings.Contains(tbl.String(), tbl.Title) {
					t.Errorf("%s: String() misses the title", e.ID)
				}
				if !strings.Contains(tbl.CSV(), tbl.Header[0]) {
					t.Errorf("%s: CSV() misses the header", e.ID)
				}
			}
		})
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown experiment should error")
	}
	tables, err := Run("table2", tinyConfig())
	if err != nil || len(tables) != 1 {
		t.Fatalf("table2 run: %v, %d tables", err, len(tables))
	}
}

// TestFedcommSnapshotRoundTrip runs the protocol experiment at tiny scale
// (which itself enforces stateless/session result parity) and checks the
// snapshot file round-trips and diffs cleanly.
func TestFedcommSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("fedcomm builds a five-source federation; not short")
	}
	report, tables, err := RunFedcomm(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 queries × 2 protocols × 2 wire codecs.
	if len(tables) == 0 || len(report.Results) != 8 {
		t.Fatalf("unexpected shape: %d tables, %d results", len(tables), len(report.Results))
	}
	if report.CodecBytesReduction <= 1 {
		t.Errorf("binary codec should ship fewer bytes than gob, reduction = %.2f", report.CodecBytesReduction)
	}
	path := filepath.Join(t.TempDir(), "fedcomm.json")
	if err := WriteFedcomm(path, report); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFedcomm(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != FedcommSchema || len(back.Results) != len(report.Results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	cmp := CompareFedcomm(back, report)
	if len(cmp.Rows) != len(report.Results) {
		t.Fatalf("compare table has %d rows, want %d", len(cmp.Rows), len(report.Results))
	}
	if _, err := ReadFedcomm(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing snapshot should error")
	}
}

// execReportFixture builds a minimal report without running the
// experiment, for exercising the compare logic in isolation.
func execReportFixture(numCPU int, basis string, speedup float64) ExecReport {
	return ExecReport{
		Schema: ExecSchema, NumCPU: numCPU,
		Results: []ExecEntry{{
			Op: "parallel", Workers: 8, Queries: 2, K: 3,
			SeqNsPerQuery: 1000, ExecNsPerQuery: 500,
			Speedup: speedup, Basis: basis,
		}},
		ParallelSpeedupMaxW: speedup,
	}
}

// TestCompareExecWarnsAcrossBases pins the credibility contract of
// BENCH_exec.json: comparing a wall-clock snapshot against a modeled run
// (different hardware) must WARN in the notes, show both bases in the
// row, and never drop the row.
func TestCompareExecWarnsAcrossBases(t *testing.T) {
	base := execReportFixture(8, BasisWallClock, 4.0)
	cur := execReportFixture(1, BasisModeled, 3.5)
	tbl := CompareExec(base, cur)
	if len(tbl.Rows) != 1 {
		t.Fatalf("cross-basis compare dropped the row: %+v", tbl.Rows)
	}
	joined := strings.Join(tbl.Notes, "\n")
	if !strings.Contains(joined, "WARNING") || !strings.Contains(joined, "not directly comparable") {
		t.Fatalf("cross-basis compare must warn, notes:\n%s", joined)
	}
	if !strings.Contains(joined, "snapshot CPUs: 8 (physical 8), current CPUs: 1 (physical 1)") {
		t.Fatalf("compare must surface both hosts' CPU counts, notes:\n%s", joined)
	}
	if got := tbl.Rows[0][len(tbl.Rows[0])-1]; got != "wall-clock vs modeled" {
		t.Fatalf("basis cell = %q", got)
	}

	// Same basis on both sides: no warning, plain basis cell.
	tbl = CompareExec(execReportFixture(8, BasisWallClock, 4.0), execReportFixture(8, BasisWallClock, 4.1))
	if strings.Contains(strings.Join(tbl.Notes, "\n"), "WARNING") {
		t.Fatal("same-basis compare must not warn")
	}
	if got := tbl.Rows[0][len(tbl.Rows[0])-1]; got != BasisWallClock {
		t.Fatalf("basis cell = %q", got)
	}
}

// TestExecSnapshotNormalizesLegacyBasis checks that snapshots written
// before the wall → wall-clock rename still read and compare cleanly.
func TestExecSnapshotNormalizesLegacyBasis(t *testing.T) {
	legacy := execReportFixture(8, "wall", 4.0)
	path := filepath.Join(t.TempDir(), "exec.json")
	if err := WriteExec(path, legacy); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExec(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0].Basis != BasisWallClock {
		t.Fatalf("legacy basis not normalized: %q", back.Results[0].Basis)
	}
	tbl := CompareExec(back, execReportFixture(8, BasisWallClock, 4.2))
	if strings.Contains(strings.Join(tbl.Notes, "\n"), "WARNING") {
		t.Fatal("legacy wall vs wall-clock is the SAME basis and must not warn")
	}
}

// TestLoadSnapshotRoundTrip exercises the load experiment end to end at
// tiny duration and round-trips its snapshot through disk and compare.
func TestLoadSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("load runs real HTTP scenarios; not short")
	}
	cfg := tinyConfig()
	report, tables, err := RunLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(report.Results) != 7 {
		t.Fatalf("unexpected shape: %d tables, %d results", len(tables), len(report.Results))
	}
	var shed, traced, bare *LoadEntry
	for i := range report.Results {
		switch report.Results[i].Scenario {
		case "tight-shed":
			shed = &report.Results[i]
		case "overlap-traced":
			traced = &report.Results[i]
		case "overlap-notrace":
			bare = &report.Results[i]
		}
	}
	if shed == nil || shed.Shed == 0 || shed.ShedRate <= 0 {
		t.Fatalf("tight-shed scenario did not shed: %+v", shed)
	}
	if traced == nil || bare == nil {
		t.Fatal("missing the overlap tracing A/B pair")
	}
	if note := traceOverheadNote(report.Results); note == "" {
		t.Fatal("no tracing-overhead note produced")
	}
	for _, e := range report.Results {
		if e.OK == 0 || e.P50Ms <= 0 || e.P999Ms < e.P99Ms || e.P99Ms < e.P50Ms {
			t.Fatalf("implausible entry: %+v", e)
		}
	}
	path := filepath.Join(t.TempDir(), "load.json")
	if err := WriteLoad(path, report); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoad(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != LoadSchema || len(back.Results) != len(report.Results) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	cmp := CompareLoad(back, report)
	if len(cmp.Rows) != len(report.Results) {
		t.Fatalf("compare table has %d rows, want %d", len(cmp.Rows), len(report.Results))
	}
	if _, err := ReadLoad(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing snapshot should error")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "with,comma"}, {"22", `with"quote`}},
		Notes:  []string{"note"},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "# note") {
		t.Errorf("String output wrong:\n%s", s)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, `"with,comma"`) {
		t.Errorf("CSV did not quote comma cell:\n%s", csv)
	}
	if !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("CSV did not escape quote cell:\n%s", csv)
	}
}
