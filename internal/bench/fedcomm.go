// The fedcomm experiment measures the federation protocol itself: bytes
// and round-trips per multi-source OJSP/CJSP query under the stateless
// per-round-broadcast protocol versus the session protocol (delta-shipped
// coverage rounds, two-phase winner fetch). Every CJSP query is run under
// both protocols and the results must be identical — the experiment errors
// out on any parity violation, so the snapshot can only ever show a
// speedup that preserves answers. Results snapshot to BENCH_fedcomm.json:
//
//	ditsbench -exp fedcomm -baseline   # run and snapshot
//	ditsbench -exp fedcomm -compare    # run and diff against the snapshot
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"dits/internal/federation"
	"dits/internal/transport"
)

// FedcommSchema identifies the snapshot format. v2 adds the wire-codec
// dimension: every entry is additionally keyed by the codec the peers
// spoke, and the report carries the gob-vs-binary bytes headline.
const FedcommSchema = "dits-bench-fedcomm/2"

// FedcommEntry is one protocol × query-type × codec measurement.
type FedcommEntry struct {
	Query         string                           `json:"query"`    // OJSP or CJSP
	Protocol      string                           `json:"protocol"` // stateless or session
	Codec         string                           `json:"codec"`    // wire codec the peers spoke
	Queries       int                              `json:"queries"`
	K             int                              `json:"k"`
	Delta         float64                          `json:"delta,omitempty"`
	Bytes         int64                            `json:"bytes"`
	BytesSent     int64                            `json:"bytes_sent"`
	BytesReceived int64                            `json:"bytes_received"`
	Messages      int64                            `json:"messages"`
	BytesPerQuery float64                          `json:"bytes_per_query"`
	MsgsPerQuery  float64                          `json:"messages_per_query"`
	PerMethod     map[string]transport.MethodStats `json:"per_method,omitempty"`
}

// FedcommReport is the machine-readable result of one fedcomm run.
type FedcommReport struct {
	Schema    string         `json:"schema"`
	Generated string         `json:"generated,omitempty"`
	Theta     int            `json:"theta"`
	Seed      int64          `json:"seed"`
	Scale     float64        `json:"scale"`
	Results   []FedcommEntry `json:"results"`
	// CJSPBytesReduction is stateless bytes-per-query divided by session
	// bytes-per-query under the binary codec — the headline number of the
	// session protocol.
	CJSPBytesReduction float64 `json:"cjsp_bytes_reduction"`
	// CJSPMsgsReduction is the same ratio for round-trips.
	CJSPMsgsReduction float64 `json:"cjsp_msgs_reduction"`
	// CodecBytesReduction is total gob bytes divided by total binary-codec
	// bytes over the identical workload — the headline number of the
	// binary wire codec.
	CodecBytesReduction float64 `json:"codec_bytes_reduction"`
}

// fedcommEntry snapshots a center's metrics into one entry.
func fedcommEntry(query, protocol, codec string, q, k int, delta float64, m *transport.Metrics) FedcommEntry {
	e := FedcommEntry{
		Query: query, Protocol: protocol, Codec: codec, Queries: q, K: k, Delta: delta,
		Bytes:         m.Bytes(),
		BytesSent:     m.BytesSent(),
		BytesReceived: m.BytesReceived(),
		Messages:      m.Messages(),
		PerMethod:     m.PerMethod(),
	}
	if q > 0 {
		e.BytesPerQuery = float64(e.Bytes) / float64(q)
		e.MsgsPerQuery = float64(e.Messages) / float64(q)
	}
	return e
}

// RunFedcomm executes the fedcomm experiment, returning the
// machine-readable report and the printable tables. It fails on any
// CJSP result divergence between the two protocols.
func RunFedcomm(cfg Config) (FedcommReport, []Table, error) {
	report := FedcommReport{
		Schema: FedcommSchema, Theta: cfg.Theta, Seed: cfg.Seed, Scale: cfg.Scale,
	}
	servers, g, sds := buildSourceServers(cfg)
	queries := federationQueries(sds, g, cfg.Q, cfg.Seed)

	// The same workload runs under both wire codecs; answers must agree
	// across codecs (differential check) and, per codec, across the
	// stateless and session CJSP protocols (protocol parity).
	codecs := []transport.Codec{federation.BinaryCodec, transport.GobCodec}
	var ojspWant, cjspWant []any // answers recorded under the first codec
	var gobBytes, binBytes int64
	for ci, codec := range codecs {
		stateless := newFederation(g, servers, federation.Options{GlobalFilter: true, ClipQuery: true}, codec)
		session := newFederation(g, servers, federation.DefaultOptions(), codec)

		// OJSP: a single fan-out either way; measured for completeness so
		// the snapshot covers the full protocol surface.
		for _, p := range []struct {
			name   string
			center *federation.Center
		}{{"stateless", stateless}, {"session", session}} {
			p.center.Metrics.Reset()
			for i, q := range queries {
				rs, err := p.center.OverlapSearch(context.Background(), q, cfg.K)
				if err != nil {
					return report, nil, fmt.Errorf("bench: fedcomm OJSP (%s/%s): %w", p.name, codec.Name(), err)
				}
				if ci == 0 && p.name == "stateless" {
					ojspWant = append(ojspWant, rs)
				} else if !reflect.DeepEqual(any(rs), ojspWant[i]) {
					return report, nil, fmt.Errorf(
						"bench: fedcomm OJSP divergence on query %d (%s/%s)", i, p.name, codec.Name())
				}
			}
			report.Results = append(report.Results,
				fedcommEntry("OJSP", p.name, codec.Name(), len(queries), cfg.K, 0, p.center.Metrics))
		}

		// CJSP: run every query under both protocols with enforced parity.
		stateless.Metrics.Reset()
		session.Metrics.Reset()
		for i, q := range queries {
			a, err := stateless.CoverageSearch(context.Background(), q, cfg.Delta, cfg.K)
			if err != nil {
				return report, nil, fmt.Errorf("bench: fedcomm CJSP (stateless/%s): %w", codec.Name(), err)
			}
			b, err := session.CoverageSearch(context.Background(), q, cfg.Delta, cfg.K)
			if err != nil {
				return report, nil, fmt.Errorf("bench: fedcomm CJSP (session/%s): %w", codec.Name(), err)
			}
			if !reflect.DeepEqual(a, b) {
				return report, nil, fmt.Errorf(
					"bench: fedcomm parity violation on query %d (%s): stateless %+v, session %+v",
					i, codec.Name(), a, b)
			}
			if ci == 0 {
				cjspWant = append(cjspWant, a)
			} else if !reflect.DeepEqual(any(a), cjspWant[i]) {
				return report, nil, fmt.Errorf(
					"bench: fedcomm CJSP codec divergence on query %d (%s)", i, codec.Name())
			}
		}
		st := fedcommEntry("CJSP", "stateless", codec.Name(), len(queries), cfg.K, cfg.Delta, stateless.Metrics)
		se := fedcommEntry("CJSP", "session", codec.Name(), len(queries), cfg.K, cfg.Delta, session.Metrics)
		report.Results = append(report.Results, st, se)
		if ci == 0 { // headline protocol reductions come from the binary codec
			if se.BytesPerQuery > 0 {
				report.CJSPBytesReduction = st.BytesPerQuery / se.BytesPerQuery
			}
			if se.MsgsPerQuery > 0 {
				report.CJSPMsgsReduction = st.MsgsPerQuery / se.MsgsPerQuery
			}
		}
	}
	for _, e := range report.Results {
		switch e.Codec {
		case transport.CodecGob:
			gobBytes += e.Bytes
		default:
			binBytes += e.Bytes
		}
	}
	if binBytes > 0 {
		report.CodecBytesReduction = float64(gobBytes) / float64(binBytes)
	}

	t := Table{
		ID:    "fedcomm",
		Title: "Federation protocol: stateless broadcast vs session, gob vs binary wire codec",
		Header: []string{
			"query", "protocol", "codec", "q", "k", "bytes/query", "msgs/query", "bytes total",
		},
		Notes: []string{
			fmt.Sprintf("CJSP bytes reduction: %.2fx, round-trip reduction: %.2fx (k=%d, δ=%v, parity enforced).",
				report.CJSPBytesReduction, report.CJSPMsgsReduction, cfg.K, cfg.Delta),
			fmt.Sprintf("Codec bytes reduction (gob/binary, same workload): %.2fx.", report.CodecBytesReduction),
			"Parity: identical answers required across both protocols and both wire codecs.",
		},
	}
	for _, e := range report.Results {
		t.Rows = append(t.Rows, []string{
			e.Query, e.Protocol, e.Codec, itoa(e.Queries), itoa(e.K),
			fmt.Sprintf("%.0f", e.BytesPerQuery),
			fmt.Sprintf("%.1f", e.MsgsPerQuery),
			i64toa(e.Bytes),
		})
	}
	return report, []Table{t}, nil
}

// WriteFedcomm stamps and writes the report as indented JSON.
func WriteFedcomm(path string, r FedcommReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFedcomm loads a snapshot written by WriteFedcomm.
func ReadFedcomm(path string) (FedcommReport, error) {
	var r FedcommReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != FedcommSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, FedcommSchema)
	}
	return r, nil
}

// CompareFedcomm diffs a current run against a snapshot: per (query,
// protocol, codec) triple, the snapshot and current bytes per query and
// the drift — the regression signal for protocol and codec changes.
func CompareFedcomm(base, cur FedcommReport) Table {
	t := Table{
		ID:    "fedcomm-compare",
		Title: "Federation protocol vs baseline snapshot" + fedcommGeneratedSuffix(base),
		Header: []string{
			"query", "protocol", "codec", "base bytes/q", "now bytes/q", "drift", "base msgs/q", "now msgs/q",
		},
		Notes: []string{
			"drift = now/base bytes per query: < 1.00x ships fewer bytes than the snapshot.",
			fmt.Sprintf("CJSP bytes reduction now %.2fx (snapshot %.2fx).",
				cur.CJSPBytesReduction, base.CJSPBytesReduction),
			fmt.Sprintf("Codec bytes reduction (gob/binary) now %.2fx (snapshot %.2fx).",
				cur.CodecBytesReduction, base.CodecBytesReduction),
		},
	}
	baseBy := make(map[string]FedcommEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Query+"|"+e.Protocol+"|"+e.Codec] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[e.Query+"|"+e.Protocol+"|"+e.Codec]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for %s/%s/%s", e.Query, e.Protocol, e.Codec))
			continue
		}
		drift := "-"
		if b.BytesPerQuery > 0 {
			drift = fmt.Sprintf("%.2fx", e.BytesPerQuery/b.BytesPerQuery)
		}
		t.Rows = append(t.Rows, []string{
			e.Query, e.Protocol, e.Codec,
			fmt.Sprintf("%.0f", b.BytesPerQuery),
			fmt.Sprintf("%.0f", e.BytesPerQuery),
			drift,
			fmt.Sprintf("%.1f", b.MsgsPerQuery),
			fmt.Sprintf("%.1f", e.MsgsPerQuery),
		})
	}
	return t
}

func fedcommGeneratedSuffix(base FedcommReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Fedcomm adapts RunFedcomm to the experiment registry (plain -exp fedcomm
// runs without snapshotting).
func Fedcomm(cfg Config) []Table {
	_, tables, err := RunFedcomm(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
