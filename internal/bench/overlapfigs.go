package bench

import (
	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
	"dits/internal/search/overlap"
	"dits/internal/workload"
)

// overlapAlgos is the series order of Figs. 9-11.
var overlapAlgos = []string{"OverlapSearch", "Rtree", "Josie", "QuadTree", "STS3"}

// buildOverlapSearchers builds all five OJSP searchers over one source.
func buildOverlapSearchers(sd sourceData, f int) map[string]overlap.Searcher {
	return map[string]overlap.Searcher{
		"OverlapSearch": &overlap.DITSSearcher{Index: dits.Build(sd.grid, sd.nodes, f)},
		"QuadTree":      &overlap.QuadtreeSearcher{Index: quadtree.Build(sd.grid.Theta, sd.nodes)},
		"Rtree":         &overlap.RtreeSearcher{Index: rtree.Build(8, sd.nodes)},
		"STS3":          &overlap.STS3Searcher{Index: sts3.Build(sd.nodes)},
		"Josie":         &overlap.JosieSearcher{Index: josie.Build(sd.nodes)},
	}
}

// runOverlap measures the total time (ms) each algorithm takes to answer
// the queries at the given k.
func runOverlap(searchers map[string]overlap.Searcher, qs []*dataset.Node, k int) map[string]float64 {
	out := make(map[string]float64)
	for name, s := range searchers {
		s := s
		out[name] = timeIt(func() {
			for _, q := range qs {
				s.TopK(q, k)
			}
		})
	}
	return out
}

// overlapSweep renders one OJSP figure: rows are (source, param value),
// columns the five algorithms' total query time.
func overlapSweep(cfg Config, id, title, param string, values []int,
	run func(sd sourceData, v int) map[string]float64) []Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"source", param}, overlapAlgos...),
		Notes: []string{
			"Total time (ms) over q queries. Paper shape: OverlapSearch fastest;",
			"tree-based (OverlapSearch, Rtree) beat inverted (STS3); Josie beats STS3.",
		},
	}
	for _, spec := range workload.Specs() {
		sd := cache.gridded(spec, cfg, cfg.Theta)
		for _, v := range values {
			times := run(sd, v)
			row := []string{spec.Name, itoa(v)}
			for _, name := range overlapAlgos {
				row = append(row, ms(times[name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return []Table{t}
}

// Fig9 regenerates OJSP search time vs k.
func Fig9(cfg Config) []Table {
	cfg = overlapCfg(cfg)
	return overlapSweep(cfg, "fig9", "OJSP search time vs k", "k", ParamK,
		func(sd sourceData, k int) map[string]float64 {
			searchers := buildOverlapSearchers(sd, cfg.F)
			qs := queries(sd, cfg.Q, cfg.Seed)
			return runOverlap(searchers, qs, k)
		})
}

// Fig10 regenerates OJSP search time vs θ. The indexes are rebuilt at each
// resolution.
func Fig10(cfg Config) []Table {
	cfg = overlapCfg(cfg)
	t := Table{
		ID:     "fig10",
		Title:  "OJSP search time vs θ",
		Header: append([]string{"source", "θ"}, overlapAlgos...),
		Notes: []string{
			"Total time (ms) over q queries; all algorithms slow down as cells shrink.",
		},
	}
	for _, spec := range workload.Specs() {
		for _, theta := range ParamTheta {
			sd := cache.gridded(spec, cfg, theta)
			searchers := buildOverlapSearchers(sd, cfg.F)
			qs := queries(sd, cfg.Q, cfg.Seed)
			times := runOverlap(searchers, qs, cfg.K)
			row := []string{spec.Name, itoa(theta)}
			for _, name := range overlapAlgos {
				row = append(row, ms(times[name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return []Table{t}
}

// Fig11 regenerates OJSP search time vs q (number of queries).
func Fig11(cfg Config) []Table {
	cfg = overlapCfg(cfg)
	return overlapSweep(cfg, "fig11", "OJSP search time vs q", "q", ParamQ,
		func(sd sourceData, q int) map[string]float64 {
			searchers := buildOverlapSearchers(sd, cfg.F)
			qs := queries(sd, q, cfg.Seed)
			return runOverlap(searchers, qs, cfg.K)
		})
}

// Fig12 regenerates OJSP search time vs leaf capacity f, for the two
// capacity-parameterized algorithms (QuadTree is fixed at 4; STS3 and Josie
// have no tree), matching the paper's Fig. 12.
func Fig12(cfg Config) []Table {
	cfg = overlapCfg(cfg)
	t := Table{
		ID:     "fig12",
		Title:  "OJSP search time vs f (OverlapSearch and Rtree only)",
		Header: []string{"source", "f", "OverlapSearch", "Rtree"},
		Notes: []string{
			"Rtree here uses node capacity M=f for comparability.",
			"Paper shape: larger leaves prune less; OverlapSearch stays below Rtree.",
		},
	}
	for _, spec := range workload.Specs() {
		sd := cache.gridded(spec, cfg, cfg.Theta)
		qs := queries(sd, cfg.Q, cfg.Seed)
		for _, f := range ParamF {
			ds := &overlap.DITSSearcher{Index: dits.Build(sd.grid, sd.nodes, f)}
			rs := &overlap.RtreeSearcher{Index: rtree.Build(f, sd.nodes)}
			dt := timeIt(func() {
				for _, q := range qs {
					ds.TopK(q, cfg.K)
				}
			})
			rt := timeIt(func() {
				for _, q := range qs {
					rs.TopK(q, cfg.K)
				}
			})
			t.Rows = append(t.Rows, []string{spec.Name, itoa(f), ms(dt), ms(rt)})
		}
	}
	return []Table{t}
}
