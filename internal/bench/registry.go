package bench

import (
	"cmp"
	"fmt"
	"slices"
)

// Experiment is one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) []Table
}

// experiments indexes every experiment by ID.
var experiments = []Experiment{
	{"table1", "Statistics of the five data sources", Table1},
	{"table2", "Parameter settings", Table2},
	{"fig7", "Heatmaps of the five data sources", Fig7},
	{"fig8", "Index construction time and memory vs θ", Fig8},
	{"fig9", "OJSP search time vs k", Fig9},
	{"fig10", "OJSP search time vs θ", Fig10},
	{"fig11", "OJSP search time vs q", Fig11},
	{"fig12", "OJSP search time vs f", Fig12},
	{"fig13", "OJSP communication cost vs q (also emits fig14)", Fig13And14},
	{"fig14", "OJSP transmission time vs q (also emits fig13)", Fig13And14},
	{"fig15", "CJSP search time vs k", Fig15},
	{"fig16", "CJSP search time vs θ", Fig16},
	{"fig17", "CJSP search time vs q", Fig17},
	{"fig18", "CJSP search time vs δ", Fig18},
	{"fig19", "CJSP communication cost vs q (also emits fig20)", Fig19And20},
	{"fig20", "CJSP transmission time vs q (also emits fig19)", Fig19And20},
	{"fig21", "Index updating time vs dataset inserts", Fig21},
	{"fig22", "Index updating time vs dataset updates", Fig22},
	{"ablation", "Ablation of DITS design choices (extension)", Ablation},
	{"throughput", "Federated query throughput vs concurrent clients (extension)", Throughput},
	{"setops", "Cell-set engine: flat slices vs Roaring-style containers (extension)", Setops},
	{"fedcomm", "Federation protocol: stateless vs session, bytes and round-trips per query (extension)", Fedcomm},
	{"exec", "Query executor: parallel traversal and batched execution vs sequential (extension)", Exec},
	{"ingest", "Durable ingest: incremental updates vs rebuild, WAL overhead, recovery (extension)", Ingest},
	{"load", "Serving stack under load: open/closed-loop latency, throughput, shed rate (extension)", Load},
	{"bigsource", "Beyond-RAM serving: mmap'd snapshot searched in place under an RSS budget (extension)", Bigsource},
	{"cluster", "Sharded federation plane: scatter/gather throughput and failover recovery (extension)", Cluster},
}

// All returns every experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	slices.SortFunc(out, func(a, b Experiment) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) ([]Table, error) {
	for _, e := range experiments {
		if e.ID == id {
			return e.Run(cfg), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (try: table1, table2, fig7..fig22, ablation, throughput, setops, fedcomm, exec, ingest, load, bigsource, cluster)", id)
}
