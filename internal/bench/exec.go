// The exec experiment measures the query-execution engine of
// internal/search/exec along the two axes the engine adds: sequential vs
// parallel verification of one traversal, and one-query-at-a-time vs
// batched execution of many queries. Every executor result is checked
// byte-identical against the sequential searcher — the experiment errors
// out on any divergence, so the snapshot can only ever show a speedup that
// preserves answers. Results snapshot to BENCH_exec.json:
//
//	ditsbench -exp exec -baseline   # run and snapshot
//	ditsbench -exp exec -compare    # run and diff against the snapshot
//
// Parallel entries report both the measured wall clock and the work-span
// model computed from a per-task trace of the real schedule
// (exec.TraceOverlap + exec.ModelMakespan). The headline speedup uses the
// wall clock when the host has at least as many CPUs as workers and the
// model otherwise (basis column) — a single-core CI box cannot spend
// 8 workers of parallelism, but the schedule it would hand them is
// measured either way. Batched entries are always wall clock: the batch
// win is algorithmic (one shared tree pass), not hardware parallelism.
package bench

import (
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"slices"
	"time"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/exec"
	"dits/internal/search/overlap"
	"dits/internal/workload"
)

// ExecSchema identifies the snapshot format.
const ExecSchema = "dits-bench-exec/1"

// ExecEntry is one measured executor configuration.
type ExecEntry struct {
	Op                string  `json:"op"`       // "parallel" or "batch"
	Workload          string  `json:"workload"` // always "clustered" (real source shapes)
	Workers           int     `json:"workers"`
	Batch             int     `json:"batch,omitempty"` // batch size (batch op)
	Queries           int     `json:"queries"`
	K                 int     `json:"k"`
	SeqNsPerQuery     float64 `json:"seq_ns_per_query"`
	ExecNsPerQuery    float64 `json:"exec_ns_per_query"`              // measured wall clock
	ModeledNsPerQuery float64 `json:"modeled_ns_per_query,omitempty"` // work-span model (parallel op)
	WallSpeedup       float64 `json:"wall_speedup"`                   // seq / wall
	ModeledSpeedup    float64 `json:"modeled_speedup,omitempty"`      // seq / modeled
	Speedup           float64 `json:"speedup"`                        // per Basis
	// Basis states what the headline Speedup was computed from:
	// BasisWallClock (measured) or BasisModeled (work-span model, used
	// when the host has fewer CPUs than the configuration's workers).
	// Snapshots from different bases are not directly comparable;
	// CompareExec warns instead of pretending they are.
	Basis string `json:"basis"`
}

// The two speedup bases. Snapshots written before the rename carry
// "wall"; ReadExec normalizes it.
const (
	BasisWallClock = "wall-clock"
	BasisModeled   = "modeled"
)

// ExecReport is the machine-readable result of one exec run.
type ExecReport struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated,omitempty"`
	Theta     int     `json:"theta"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	// NumCPU is the number of CPUs the Go scheduler could actually spend
	// (GOMAXPROCS at run time) — the provenance gate for wall-clock
	// speedups: a parallel row is stamped BasisWallClock only when NumCPU
	// covers its worker count. PhysCPU records the host's physical CPU
	// count alongside, so a snapshot taken with an inflated GOMAXPROCS on
	// a smaller box is honest about it.
	NumCPU  int         `json:"num_cpu"`
	PhysCPU int         `json:"phys_cpu,omitempty"`
	Results []ExecEntry `json:"results"`
	// ParallelSpeedupMaxW is the headline single-query speedup at the
	// largest measured worker count (8 by default).
	ParallelSpeedupMaxW float64 `json:"parallel_speedup_max_workers"`
	// BatchPerQuerySpeedup is the headline per-query gain of batched over
	// one-at-a-time execution, wall clock.
	BatchPerQuerySpeedup float64 `json:"batch_per_query_speedup"`
}

// execWorkerSweep is the worker counts the parallel op measures; the last
// entry is the headline configuration.
var execWorkerSweep = []int{1, 2, 4, 8}

// execWorkload builds the exec experiment's world: one big clustered
// source index, heavy multi-region queries for the parallel op (enough
// leaves per query that scheduling matters), and ordinary sampled queries
// for the batch op.
func execWorkload(cfg Config) (*dits.Local, []*dataset.Node, []*dataset.Node) {
	ocfg := overlapCfg(cfg)
	spec, _ := workload.SpecByName("Baidu")
	sd := cache.gridded(spec, ocfg, cfg.Theta)
	idx := dits.Build(sd.grid, sd.nodes, cfg.F)

	// Heavy queries: each merges several sampled datasets, so its MBR and
	// cells span many leaves and verification dominates.
	heavyDs := workload.SampleQueries(sd.src, 4*cfg.Q, cfg.Seed+1)
	var heavy []*dataset.Node
	for i := 0; i+3 < len(heavyDs) && len(heavy) < cfg.Q; i += 4 {
		cells := cellset.FromPoints(sd.grid, heavyDs[i].Points)
		for j := 1; j < 4; j++ {
			cells = cells.Union(cellset.FromPoints(sd.grid, heavyDs[i+j].Points))
		}
		if nd := dataset.NewNodeFromCells(-1, "heavy", cells); nd != nil {
			heavy = append(heavy, nd)
		}
	}

	// Batch queries model hot-region traffic — the scenario batching is
	// built for ("queries whose cells land in the same tree regions"):
	// many users querying the same part of the city. Sampled queries are
	// ordered by the z-order of their MBR center and a contiguous run is
	// taken, so the batch shares tree regions without sharing cells.
	all := queries(sd, 16*cfg.Q, cfg.Seed+2)
	slices.SortFunc(all, func(a, b *dataset.Node) int {
		return cmp.Compare(geo.ZEncode(uint32(a.O.X), uint32(a.O.Y)),
			geo.ZEncode(uint32(b.O.X), uint32(b.O.Y)))
	})
	n := min(4*cfg.Q, len(all))
	start := min(len(all)/3, len(all)-n)
	batchQs := all[start : start+n]
	return idx, heavy, batchQs
}

// execMeasure times fn over enough repetitions to defeat timer noise and
// returns ns per call.
func execMeasure(fn func()) float64 { return measure(fn) }

// RunExec executes the exec experiment, returning the machine-readable
// report and printable tables. It fails on any divergence between an
// executor configuration and the sequential searcher.
func RunExec(cfg Config) (ExecReport, []Table, error) {
	report := ExecReport{
		Schema: ExecSchema, Theta: cfg.Theta, Seed: cfg.Seed,
		Scale: overlapCfg(cfg).Scale, NumCPU: runtime.GOMAXPROCS(0), PhysCPU: runtime.NumCPU(),
	}
	idx, heavy, batchQs := execWorkload(cfg)
	if len(heavy) == 0 || len(batchQs) == 0 {
		return report, nil, fmt.Errorf("bench: exec workload came up empty")
	}
	seq := &overlap.DITSSearcher{Index: idx}
	ctx := context.Background()
	maxW := execWorkerSweep[len(execWorkerSweep)-1]

	// ---- Parallel op: one heavy query at a time, W workers. ----
	want := make([][]overlap.Result, len(heavy))
	for i, q := range heavy {
		want[i] = seq.TopK(q, cfg.K)
	}
	seqNs := execMeasure(func() {
		for _, q := range heavy {
			seq.TopK(q, cfg.K)
		}
	}) / float64(len(heavy))

	// Work-span model from the real sequential schedule, averaged over
	// queries and repetitions.
	const traceReps = 5
	modeled := make(map[int]float64, len(execWorkerSweep))
	for r := 0; r < traceReps; r++ {
		for i, q := range heavy {
			tr := exec.TraceOverlap(idx, q, cfg.K)
			if !reflect.DeepEqual(tr.Results, want[i]) {
				return report, nil, fmt.Errorf("bench: exec trace parity violation on query %d", i)
			}
			for _, w := range execWorkerSweep {
				modeled[w] += exec.ModelMakespan(tr, w)
			}
		}
	}
	for _, w := range execWorkerSweep {
		modeled[w] /= float64(traceReps * len(heavy))
	}

	for _, w := range execWorkerSweep {
		ex := &exec.Executor{Workers: w}
		for i, q := range heavy {
			got, err := ex.OverlapTopK(ctx, idx, q, cfg.K)
			if err != nil {
				return report, nil, err
			}
			if !reflect.DeepEqual(got, want[i]) {
				return report, nil, fmt.Errorf(
					"bench: exec parity violation: workers=%d query %d", w, i)
			}
		}
		wallNs := execMeasure(func() {
			for _, q := range heavy {
				ex.OverlapTopK(ctx, idx, q, cfg.K)
			}
		}) / float64(len(heavy))
		e := ExecEntry{
			Op: "parallel", Workload: "clustered", Workers: w,
			Queries: len(heavy), K: cfg.K,
			SeqNsPerQuery: seqNs, ExecNsPerQuery: wallNs, ModeledNsPerQuery: modeled[w],
		}
		if wallNs > 0 {
			e.WallSpeedup = seqNs / wallNs
		}
		if modeled[w] > 0 {
			e.ModeledSpeedup = seqNs / modeled[w]
		}
		// Provenance gate: wall-clock is only an honest basis when the
		// scheduler could actually run w workers at once.
		e.Speedup, e.Basis = e.WallSpeedup, BasisWallClock
		if runtime.GOMAXPROCS(0) < w {
			e.Speedup, e.Basis = e.ModeledSpeedup, BasisModeled
		}
		report.Results = append(report.Results, e)
		if w == maxW {
			report.ParallelSpeedupMaxW = e.Speedup
		}
	}

	// ---- Batch op: all sampled queries in one shared pass. ----
	batch := make([]exec.BatchQuery, len(batchQs))
	wantBatch := make([][]overlap.Result, len(batchQs))
	for i, q := range batchQs {
		batch[i] = exec.BatchQuery{Q: q, K: cfg.K}
		wantBatch[i] = seq.TopK(q, cfg.K)
	}
	batchSeqNs := execMeasure(func() {
		for _, q := range batchQs {
			seq.TopK(q, cfg.K)
		}
	}) / float64(len(batchQs))

	batchWorkers := []int{1, min(maxW, cfg.Workers)}
	if batchWorkers[1] <= 1 {
		batchWorkers = batchWorkers[:1]
	}
	for _, w := range batchWorkers {
		ex := &exec.Executor{Workers: w}
		got, err := ex.OverlapTopKBatch(ctx, idx, batch)
		if err != nil {
			return report, nil, err
		}
		if !reflect.DeepEqual(got, wantBatch) {
			return report, nil, fmt.Errorf("bench: exec batch parity violation at workers=%d", w)
		}
		wallNs := execMeasure(func() {
			ex.OverlapTopKBatch(ctx, idx, batch)
		}) / float64(len(batchQs))
		e := ExecEntry{
			Op: "batch", Workload: "clustered", Workers: w, Batch: len(batchQs),
			Queries: len(batchQs), K: cfg.K,
			SeqNsPerQuery: batchSeqNs, ExecNsPerQuery: wallNs,
			Basis: BasisWallClock,
		}
		if wallNs > 0 {
			e.WallSpeedup = batchSeqNs / wallNs
			e.Speedup = e.WallSpeedup
		}
		report.Results = append(report.Results, e)
		// Headline: the best configuration the scheduler can actually spend.
		if e.Speedup > report.BatchPerQuerySpeedup && (w == 1 || runtime.GOMAXPROCS(0) >= w) {
			report.BatchPerQuerySpeedup = e.Speedup
		}
	}

	t := Table{
		ID:    "exec",
		Title: "Query executor: sequential vs parallel traversal, single vs batched execution",
		Header: []string{
			"op", "workers", "q", "seq ns/query", "exec ns/query", "modeled ns/q", "speedup", "basis",
		},
		Notes: []string{
			fmt.Sprintf("schedulable CPUs (GOMAXPROCS): %d, physical CPUs: %d; parity with the sequential searcher enforced on every configuration.",
				runtime.GOMAXPROCS(0), runtime.NumCPU()),
			"basis=modeled: work-span model of the real schedule (exec.TraceOverlap), used when workers exceed GOMAXPROCS.",
			fmt.Sprintf("headline: parallel %0.2fx at %d workers, batched %0.2fx per query.",
				report.ParallelSpeedupMaxW, maxW, report.BatchPerQuerySpeedup),
		},
	}
	for _, e := range report.Results {
		mod := "-"
		if e.ModeledNsPerQuery > 0 {
			mod = fmt.Sprintf("%.0f", e.ModeledNsPerQuery)
		}
		t.Rows = append(t.Rows, []string{
			e.Op, itoa(e.Workers), itoa(e.Queries),
			fmt.Sprintf("%.0f", e.SeqNsPerQuery),
			fmt.Sprintf("%.0f", e.ExecNsPerQuery),
			mod,
			fmt.Sprintf("%.2fx", e.Speedup),
			e.Basis,
		})
	}
	return report, []Table{t}, nil
}

// WriteExec stamps and writes the report as indented JSON.
func WriteExec(path string, r ExecReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadExec loads a snapshot written by WriteExec.
func ReadExec(path string) (ExecReport, error) {
	var r ExecReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != ExecSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, ExecSchema)
	}
	normalizeExecBases(&r)
	return r, nil
}

// normalizeExecBases rewrites the legacy "wall" basis value to
// BasisWallClock so old snapshots compare cleanly against fresh runs.
func normalizeExecBases(r *ExecReport) {
	for i := range r.Results {
		if r.Results[i].Basis == "wall" {
			r.Results[i].Basis = BasisWallClock
		}
	}
}

// CompareExec diffs a current run against a snapshot per (op, workers)
// pair — the regression signal for executor changes. Wall-clock drift
// against a snapshot from different hardware is informational; the
// speedup columns, measured live, are the hardware-independent signal.
// Entries whose speedup bases differ (a wall-clock snapshot compared on a
// smaller box that had to model, or vice versa) are flagged with a
// warning, never treated as a regression: the numbers answer different
// questions.
func CompareExec(base, cur ExecReport) Table {
	normalizeExecBases(&base)
	normalizeExecBases(&cur)
	t := Table{
		ID:    "exec-compare",
		Title: "Query executor vs baseline snapshot" + execGeneratedSuffix(base),
		Header: []string{
			"op", "workers", "base ns/q", "now ns/q", "drift", "base speedup", "now speedup", "basis",
		},
		Notes: []string{
			fmt.Sprintf("snapshot CPUs: %d (physical %d), current CPUs: %d (physical %d).",
				base.NumCPU, cpuOr(base.PhysCPU, base.NumCPU), cur.NumCPU, cpuOr(cur.PhysCPU, cur.NumCPU)),
			"drift = now/base exec ns per query: < 1.00x is faster than the snapshot.",
			fmt.Sprintf("headline now: parallel %.2fx, batch %.2fx (snapshot %.2fx / %.2fx).",
				cur.ParallelSpeedupMaxW, cur.BatchPerQuerySpeedup,
				base.ParallelSpeedupMaxW, base.BatchPerQuerySpeedup),
		},
	}
	key := func(e ExecEntry) string { return fmt.Sprintf("%s|%d", e.Op, e.Workers) }
	baseBy := make(map[string]ExecEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[key(e)] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[key(e)]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for %s/%d workers", e.Op, e.Workers))
			continue
		}
		drift := "-"
		if b.ExecNsPerQuery > 0 {
			drift = fmt.Sprintf("%.2fx", e.ExecNsPerQuery/b.ExecNsPerQuery)
		}
		basis := e.Basis
		if b.Basis != e.Basis {
			basis = fmt.Sprintf("%s vs %s", b.Basis, e.Basis)
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: %s/%d workers compares %s (snapshot) against %s (current) — speedups are not directly comparable.",
				e.Op, e.Workers, b.Basis, e.Basis))
		}
		t.Rows = append(t.Rows, []string{
			e.Op, itoa(e.Workers),
			fmt.Sprintf("%.0f", b.ExecNsPerQuery),
			fmt.Sprintf("%.0f", e.ExecNsPerQuery),
			drift,
			fmt.Sprintf("%.2fx", b.Speedup),
			fmt.Sprintf("%.2fx", e.Speedup),
			basis,
		})
	}
	return t
}

// cpuOr substitutes a fallback for snapshots predating the phys_cpu field.
func cpuOr(v, fallback int) int {
	if v > 0 {
		return v
	}
	return fallback
}

func execGeneratedSuffix(base ExecReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Exec adapts RunExec to the experiment registry (plain -exp exec runs
// without snapshotting).
func Exec(cfg Config) []Table {
	_, tables, err := RunExec(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
