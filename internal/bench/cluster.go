// The cluster experiment measures the sharded federation plane: the five
// bench sources behind 1, 2, and 3 in-process centers, driven closed-loop
// through the gateway-side Cluster scatter/gather, then two chaos phases
// that kill a center and a source primary mid-load and time how long the
// plane takes to answer again. Every run enforces byte-identical results
// against a single-center oracle over the SAME source servers, and the
// chaos phases fail the experiment if even one request errors: failover
// is in-band, so clients never see the death. Results snapshot to
// BENCH_cluster.json:
//
//	ditsbench -exp cluster -baseline   # run and snapshot
//	ditsbench -exp cluster -compare    # run and diff against the snapshot
//
// Throughput and latency are wall clock on whatever host runs the
// experiment; the failed-request columns (always zero) and recovery times
// are the regression signal.
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dits/internal/cellset"
	"dits/internal/federation"
	"dits/internal/transport"
)

// ClusterSchema identifies the snapshot format.
const ClusterSchema = "dits-bench-cluster/1"

// ClusterEntry is one measured cluster scenario.
type ClusterEntry struct {
	Scenario string  `json:"scenario"`
	Centers  int     `json:"centers"`
	Seconds  float64 `json:"seconds"`
	Requests int64   `json:"requests"`
	Failed   int64   `json:"failed"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// RecoveryMs is the time from killing a center (or a source primary)
	// to the next successful scatter, chaos scenarios only.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
}

// ClusterReport is the machine-readable result of one cluster run.
type ClusterReport struct {
	Schema    string         `json:"schema"`
	Generated string         `json:"generated,omitempty"`
	NumCPU    int            `json:"num_cpu"`
	Seed      int64          `json:"seed"`
	Results   []ClusterEntry `json:"results"`
}

// benchSwitch wraps a peer with a kill switch: once down, every call
// fails with a plain (non-Remote) error, exactly like a dead TCP
// endpoint.
type benchSwitch struct {
	inner transport.Peer
	down  atomic.Bool
}

func (p *benchSwitch) Call(ctx context.Context, method string, req, resp any) error {
	if p.down.Load() {
		return errors.New("connection refused")
	}
	return p.inner.Call(ctx, method, req, resp)
}

func (p *benchSwitch) Close() error { return nil }

// clusterWorld is one sharded topology plus the single-center oracle
// built over the same source servers.
type clusterWorld struct {
	oracle  *federation.Center
	cluster *federation.Cluster
	queries []cellset.Set
	// centerSwitch[name] kills that center's wire; sourceSwitch kills the
	// primary wire of the one replicated source (nil without replicas).
	centerSwitch  map[string]*benchSwitch
	sourceSwitch  *benchSwitch
	replicated    string // name of the source registered with a replica
	centerServers []*federation.CenterServer
}

func (w *clusterWorld) close() {
	w.cluster.Close()
	for _, cs := range w.centerServers {
		cs.Close()
	}
}

// buildClusterWorld shards the bench sources over numCenters in-process
// centers. With replicas, every center dials one source through a
// primary+replica pair whose primary can be killed; both endpoints reach
// the same server, so a failover cannot change any answer.
func buildClusterWorld(cfg Config, numCenters int, replicas bool) (*clusterWorld, error) {
	servers, g, sds := buildSourceServers(cfg)
	opts := federation.Options{GlobalFilter: true, ClipQuery: true, Sessions: true}
	q := cfg.Q
	if q > 64 {
		q = 64 // the drive loops over the set; a small set keeps it hot
	}
	w := &clusterWorld{
		oracle:       newFederation(g, servers, opts, federation.BinaryCodec),
		queries:      federationQueries(sds, g, q, cfg.Seed),
		centerSwitch: make(map[string]*benchSwitch, numCenters),
	}
	byName := make(map[string]*federation.SourceServer, len(servers))
	for _, s := range servers {
		byName[s.Name] = s
	}
	peers := make(map[string]transport.Peer, numCenters)
	for i := 0; i < numCenters; i++ {
		name := fmt.Sprintf("center-%d", i)
		c := federation.NewCenter(g, opts)
		cs, err := federation.NewCenterServer(name, c, federation.CenterServerOptions{
			Dial: func(addr string) (transport.Peer, error) {
				srcName, isReplica := strings.CutSuffix(addr, "#replica")
				srv, ok := byName[srcName]
				if !ok {
					return nil, fmt.Errorf("no source at %q", addr)
				}
				peer := transport.Peer(&transport.InProc{
					Name: srv.Name, Handler: srv.Handler(), Metrics: c.Metrics,
				})
				if replicas && !isReplica && srcName == servers[0].Name {
					sw := &benchSwitch{inner: peer}
					w.sourceSwitch = sw
					peer = sw
				}
				return peer, nil
			},
		})
		if err != nil {
			return nil, err
		}
		w.centerServers = append(w.centerServers, cs)
		var codec transport.Codec
		if i%2 == 1 {
			codec = federation.BinaryCodec
		}
		sw := &benchSwitch{inner: &transport.InProc{
			Name: name, Handler: cs.Handler(), Metrics: &transport.Metrics{}, Codec: codec,
		}}
		peers[name] = sw
		w.centerSwitch[name] = sw
	}
	w.cluster = federation.NewCluster(g, peers)
	for i, srv := range servers {
		src := federation.ClusterSource{Name: srv.Name, Addr: srv.Name}
		if replicas && i == 0 {
			src.Replicas = []string{srv.Name + "#replica"}
			w.replicated = srv.Name
		}
		if err := w.cluster.AddSource(context.Background(), src); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// checkClusterParity compares scatter/gather answers against the
// single-center oracle, byte for byte, over the query set.
func checkClusterParity(w *clusterWorld, queries []cellset.Set, k int, delta float64) error {
	ctx := context.Background()
	for i, q := range queries {
		want, err := w.oracle.OverlapSearch(ctx, q, k)
		if err != nil {
			return fmt.Errorf("oracle overlap %d: %w", i, err)
		}
		got, err := w.cluster.OverlapSearch(ctx, q, k)
		if err != nil {
			return fmt.Errorf("cluster overlap %d: %w", i, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("overlap query %d: cluster returned %d results, oracle %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("overlap query %d result %d: cluster %+v, oracle %+v", i, j, got[j], want[j])
			}
		}
		wantCov, err := w.oracle.CoverageSearch(ctx, q, delta, 4)
		if err != nil {
			return fmt.Errorf("oracle coverage %d: %w", i, err)
		}
		gotCov, err := w.cluster.CoverageSearch(ctx, q, delta, 4)
		if err != nil {
			return fmt.Errorf("cluster coverage %d: %w", i, err)
		}
		if gotCov.Coverage != wantCov.Coverage || gotCov.QueryCoverage != wantCov.QueryCoverage ||
			len(gotCov.Picked) != len(wantCov.Picked) {
			return fmt.Errorf("coverage query %d: cluster %d/%d (%d picks), oracle %d/%d (%d picks)",
				i, gotCov.Coverage, gotCov.QueryCoverage, len(gotCov.Picked),
				wantCov.Coverage, wantCov.QueryCoverage, len(wantCov.Picked))
		}
		for j := range gotCov.Picked {
			if gotCov.Picked[j] != wantCov.Picked[j] {
				return fmt.Errorf("coverage query %d pick %d: cluster %+v, oracle %+v",
					i, j, gotCov.Picked[j], wantCov.Picked[j])
			}
		}
	}
	return nil
}

// driveCluster runs clients closed-loop workers against the cluster for
// the given duration (mostly OJSP, one CJSP every 16th request) and
// returns the latency samples in ms plus request/failure counts. kill, if
// non-nil, fires once at half time and returns a label plus the measured
// recovery duration.
func driveCluster(w *clusterWorld, queries []cellset.Set, k int, delta float64,
	clients int, dur time.Duration, kill func() time.Duration) (samples []float64, requests, failed int64, recovery time.Duration) {
	var (
		mu   sync.Mutex
		reqs atomic.Int64
		errs atomic.Int64
		stop = make(chan struct{})
		wg   sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			local := make([]float64, 0, 1024)
			for i := c; ; i++ {
				select {
				case <-stop:
					mu.Lock()
					samples = append(samples, local...)
					mu.Unlock()
					return
				default:
				}
				q := queries[i%len(queries)]
				start := time.Now()
				var err error
				if i%16 == 15 {
					_, err = w.cluster.CoverageSearch(ctx, q, delta, 4)
				} else {
					_, err = w.cluster.OverlapSearch(ctx, q, k)
				}
				local = append(local, float64(time.Since(start).Nanoseconds())/1e6)
				reqs.Add(1)
				if err != nil {
					errs.Add(1)
				}
			}
		}(c)
	}
	if kill != nil {
		time.Sleep(dur / 2)
		recovery = kill()
		time.Sleep(dur / 2)
	} else {
		time.Sleep(dur)
	}
	close(stop)
	wg.Wait()
	return samples, reqs.Load(), errs.Load(), recovery
}

// RunCluster executes the cluster experiment, returning the
// machine-readable report and printable tables.
func RunCluster(cfg Config) (ClusterReport, []Table, error) {
	secs := cfg.LoadSecs
	if secs <= 0 {
		secs = 2
	}
	dur := time.Duration(secs * float64(time.Second))
	const clients = 8
	report := ClusterReport{Schema: ClusterSchema, NumCPU: runtime.NumCPU(), Seed: cfg.Seed}

	// Phase 1: throughput sweep over center counts. Parity against the
	// oracle is checked before each drive so a merge bug fails loudly
	// instead of skewing the numbers.
	for _, n := range []int{1, 2, 3} {
		w, err := buildClusterWorld(cfg, n, false)
		if err != nil {
			return report, nil, fmt.Errorf("bench: cluster sweep %d centers: %w", n, err)
		}
		queries := w.queries
		if err := checkClusterParity(w, queries[:min(8, len(queries))], cfg.K, cfg.Delta); err != nil {
			w.close()
			return report, nil, fmt.Errorf("bench: cluster parity (%d centers): %w", n, err)
		}
		samples, reqs, failed, _ := driveCluster(w, queries, cfg.K, cfg.Delta, clients, dur, nil)
		w.close()
		if failed > 0 {
			return report, nil, fmt.Errorf("bench: cluster sweep %d centers: %d of %d requests failed", n, failed, reqs)
		}
		report.Results = append(report.Results, ClusterEntry{
			Scenario: fmt.Sprintf("sweep-%d", n), Centers: n, Seconds: secs,
			Requests: reqs, Failed: failed, QPS: float64(reqs) / secs,
			P50Ms: pctMs(samples, 0.50), P99Ms: pctMs(samples, 0.99),
		})
	}

	// Phase 2: chaos. Kill a center mid-load, then (fresh world) a source
	// primary whose replica takes over. Failover is in-band, so both
	// phases demand zero failed requests, and recovery is the time until
	// the next scatter answers.
	chaos := []struct {
		scenario string
		replicas bool
		kill     func(w *clusterWorld)
	}{
		{"kill-center", false, func(w *clusterWorld) {
			// Kill the center that owns the most sources: the worst re-home.
			var victim string
			most := -1
			for name, srcs := range w.cluster.Shards() {
				if len(srcs) > most {
					victim, most = name, len(srcs)
				}
			}
			w.centerSwitch[victim].down.Store(true)
		}},
		{"kill-source", true, func(w *clusterWorld) {
			w.sourceSwitch.down.Store(true)
		}},
	}
	for _, ch := range chaos {
		w, err := buildClusterWorld(cfg, 3, ch.replicas)
		if err != nil {
			return report, nil, fmt.Errorf("bench: cluster %s: %w", ch.scenario, err)
		}
		queries := w.queries
		probe := queries[0]
		kill := func() time.Duration {
			ch.kill(w)
			start := time.Now()
			for {
				if _, err := w.cluster.OverlapSearch(context.Background(), probe, cfg.K); err == nil {
					return time.Since(start)
				}
			}
		}
		samples, reqs, failed, recovery := driveCluster(w, queries, cfg.K, cfg.Delta, clients, dur, kill)
		// Post-failover parity: the degraded plane must still match the
		// oracle byte for byte (no stale reads, no lost shard).
		parityErr := checkClusterParity(w, queries[:min(8, len(queries))], cfg.K, cfg.Delta)
		w.close()
		if failed > 0 {
			return report, nil, fmt.Errorf("bench: cluster %s: %d of %d requests failed (failover leaked to clients)", ch.scenario, failed, reqs)
		}
		if parityErr != nil {
			return report, nil, fmt.Errorf("bench: cluster %s post-failover: %w", ch.scenario, parityErr)
		}
		report.Results = append(report.Results, ClusterEntry{
			Scenario: ch.scenario, Centers: 3, Seconds: secs,
			Requests: reqs, Failed: failed, QPS: float64(reqs) / secs,
			P50Ms: pctMs(samples, 0.50), P99Ms: pctMs(samples, 0.99),
			RecoveryMs: float64(recovery.Nanoseconds()) / 1e6,
		})
	}

	t := Table{
		ID:    "cluster",
		Title: "Sharded federation plane: scatter/gather throughput and failover recovery",
		Header: []string{
			"scenario", "centers", "requests", "failed", "qps", "p50 ms", "p99 ms", "recovery ms",
		},
		Notes: []string{
			fmt.Sprintf("host CPUs: %d; %d closed-loop clients, %gs per scenario; every scenario is parity-checked against a single-center oracle.", runtime.NumCPU(), clients, secs),
			"kill-center downs the center owning the largest shard mid-load; kill-source downs a replicated source's primary. failed must be 0: failover is in-band.",
		},
	}
	for _, e := range report.Results {
		rec := "-"
		if e.RecoveryMs > 0 {
			rec = fmt.Sprintf("%.2f", e.RecoveryMs)
		}
		t.Rows = append(t.Rows, []string{
			e.Scenario, fmt.Sprintf("%d", e.Centers),
			fmt.Sprintf("%d", e.Requests), fmt.Sprintf("%d", e.Failed),
			fmt.Sprintf("%.0f", e.QPS),
			fmt.Sprintf("%.2f", e.P50Ms), fmt.Sprintf("%.2f", e.P99Ms), rec,
		})
	}
	return report, []Table{t}, nil
}

// WriteCluster stamps and writes the report as indented JSON.
func WriteCluster(path string, r ClusterReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadCluster loads a snapshot written by WriteCluster.
func ReadCluster(path string) (ClusterReport, error) {
	var r ClusterReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != ClusterSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, ClusterSchema)
	}
	return r, nil
}

// CompareCluster diffs a current run against a snapshot per scenario.
// Throughput and latency drift are informational (hardware bound); a
// failed-request count or a recovery-time blowup is flagged in the notes.
func CompareCluster(base, cur ClusterReport) Table {
	t := Table{
		ID:    "cluster-compare",
		Title: "Sharded federation plane vs baseline snapshot" + clusterGeneratedSuffix(base),
		Header: []string{
			"scenario", "base qps", "now qps", "drift", "base p99", "now p99", "base rec ms", "now rec ms",
		},
		Notes: []string{
			fmt.Sprintf("snapshot host CPUs: %d, current: %d — absolute numbers are comparable only on matching hardware.", base.NumCPU, cur.NumCPU),
			"drift = now/base qps: > 1.00x is faster than the snapshot. failed is always 0 on both sides or the run itself errors.",
		},
	}
	baseBy := make(map[string]ClusterEntry, len(base.Results))
	for _, e := range base.Results {
		baseBy[e.Scenario] = e
	}
	for _, e := range cur.Results {
		b, ok := baseBy[e.Scenario]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for scenario %s", e.Scenario))
			continue
		}
		drift := "-"
		if b.QPS > 0 {
			drift = fmt.Sprintf("%.2fx", e.QPS/b.QPS)
		}
		rec := func(v float64) string {
			if v <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		t.Rows = append(t.Rows, []string{
			e.Scenario,
			fmt.Sprintf("%.0f", b.QPS), fmt.Sprintf("%.0f", e.QPS), drift,
			fmt.Sprintf("%.2f", b.P99Ms), fmt.Sprintf("%.2f", e.P99Ms),
			rec(b.RecoveryMs), rec(e.RecoveryMs),
		})
		if e.Failed > b.Failed {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: %s failed requests rose %d -> %d", e.Scenario, b.Failed, e.Failed))
		}
		if b.RecoveryMs > 0 && e.RecoveryMs > 10*b.RecoveryMs && e.RecoveryMs > 100 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: %s recovery time rose %.2fms -> %.2fms", e.Scenario, b.RecoveryMs, e.RecoveryMs))
		}
	}
	return t
}

func clusterGeneratedSuffix(base ClusterReport) string {
	if base.Generated == "" {
		return ""
	}
	return " (" + base.Generated + ")"
}

// Cluster adapts RunCluster to the experiment registry (plain -exp
// cluster runs without snapshotting).
func Cluster(cfg Config) []Table {
	_, tables, err := RunCluster(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
