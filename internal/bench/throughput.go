package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rescache "dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
	"dits/internal/workload"
)

// throughputVariants are the gateway deployment configurations compared by
// the throughput experiment: the old one-connection-per-source center made
// safe by a pool of one, versus the concurrent deployment with pooled
// connections and the result cache.
var throughputVariants = []struct {
	name      string
	poolSize  int
	cacheSize int
}{
	{"pool=1 no-cache", 1, 0},
	{"pool=8 no-cache", 8, 0},
	{"pool=8 + cache", 8, 4096},
}

// throughputClients are the concurrent client counts swept.
var throughputClients = []int{1, 8, 64}

// throughputQueries is the number of queries issued per table cell, split
// across the concurrent clients.
const throughputQueries = 512

// NewTCPFederation starts every source behind a real TCP loopback server
// and registers each with a fresh center through a connection pool of the
// given size, with a result cache of cacheSize entries (0 disables). It
// returns the center, sampled query cell sets, and a stop function that
// closes the pools and servers. Both the throughput experiment and the
// BenchmarkGatewayThroughput benchmarks build their federations with it.
func NewTCPFederation(cfg Config, poolSize, cacheSize int) (*federation.Center, []cellset.Set, func(), error) {
	world := geo.EmptyRect
	var sds []sourceData
	for _, spec := range workload.Specs() {
		src := cache.source(spec, cfg)
		world = world.Union(src.Bounds())
		sds = append(sds, sourceData{spec: spec, src: src})
	}
	g := geo.NewGrid(cfg.Theta, world)
	center := federation.NewCenter(g, federation.DefaultOptions())
	center.SetCache(rescache.New(cacheSize))
	var stops []func()
	stop := func() {
		for _, fn := range stops {
			fn()
		}
	}
	for i := range sds {
		sds[i].grid = g
		sds[i].nodes = sds[i].src.Nodes(g)
		idx := dits.Build(g, sds[i].nodes, cfg.F)
		srv := federation.NewSourceServerWithGrid(sds[i].spec.Name, idx)
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			stop()
			return nil, nil, nil, err
		}
		pool := transport.DialPool(srv.Name, ts.Addr(), poolSize, center.Metrics)
		stops = append(stops, func() { pool.Close(); ts.Close() })
		center.Register(srv.Summary(), pool)
	}
	return center, federationQueries(sds, g, cfg.Q, cfg.Seed), stop, nil
}

// DrainQueries runs total overlap searches spread over clients goroutines
// and returns the aggregate queries/sec.
func DrainQueries(center *federation.Center, qs []cellset.Set, clients, total, k int) (float64, error) {
	var next atomic.Int64
	var firstErr atomic.Value
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(total) {
					return
				}
				if _, err := center.OverlapSearch(context.Background(), qs[i%int64(len(qs))], k); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return 0, err
	}
	return float64(total) / time.Since(start).Seconds(), nil
}

// Throughput measures aggregate federated-OJSP queries/sec over real TCP
// loopback transport at increasing client concurrency, comparing the
// serialized single-connection deployment against pooled connections plus
// the result cache (the concurrent query gateway's configuration).
func Throughput(cfg Config) []Table {
	t := Table{
		ID:     "throughput",
		Title:  "Federated OJSP throughput (queries/sec) vs concurrent clients",
		Header: []string{"clients"},
		Notes: []string{
			"Real TCP loopback transport; each cell issues the same fixed query mix.",
			"pool=1 serializes each source's connection; pool=8 + cache is ditsgate's default.",
			fmt.Sprintf("Pooling gains need parallel hardware: GOMAXPROCS=%d here.", runtime.GOMAXPROCS(0)),
		},
	}
	for _, v := range throughputVariants {
		t.Header = append(t.Header, v.name)
	}
	cells := make(map[int][]string)
	for _, clients := range throughputClients {
		cells[clients] = []string{itoa(clients)}
	}
	for _, v := range throughputVariants {
		center, qs, stop, err := NewTCPFederation(cfg, v.poolSize, v.cacheSize)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("SKIPPED %s: %v", v.name, err))
			for _, clients := range throughputClients {
				cells[clients] = append(cells[clients], "-")
			}
			continue
		}
		// Warm up once so index-side caches and the result cache (when
		// enabled) reflect steady state, as a long-running gateway would.
		if _, err := DrainQueries(center, qs, 1, len(qs), cfg.K); err != nil {
			stop()
			t.Notes = append(t.Notes, fmt.Sprintf("SKIPPED %s: %v", v.name, err))
			for _, clients := range throughputClients {
				cells[clients] = append(cells[clients], "-")
			}
			continue
		}
		for _, clients := range throughputClients {
			qps, err := DrainQueries(center, qs, clients, throughputQueries, cfg.K)
			if err != nil {
				cells[clients] = append(cells[clients], "-")
				continue
			}
			cells[clients] = append(cells[clients], fmt.Sprintf("%.0f", qps))
		}
		stop()
	}
	for _, clients := range throughputClients {
		t.Rows = append(t.Rows, cells[clients])
	}
	return []Table{t}
}
