// The bigsource experiment demonstrates the beyond-RAM serving mode: a
// source several times larger than the usual workload is built once,
// written to an on-disk snapshot (internal/index/ditsfile), every heap
// reference to it is dropped, and the snapshot is then mmap'd and searched
// in place with lazy leaf materialisation under a debug.SetMemoryLimit RSS
// budget. The run enforces two hard properties:
//
//   - parity: the mmap'd index answers every sampled query identically to
//     the heap-built index it was snapshotted from;
//   - bounded RSS: on Linux, sampled VmRSS during the serving phase must
//     stay under the budget (-rss-budget-mb) even though the index was
//     built at -bigscale (default 4, i.e. 8x the usual OJSP workload).
//
// Latency is reported per phase — heap at the baseline scale, heap at the
// big scale, mmap cold (first touch faults every leaf in) and mmap warm —
// and the headline ratio is the beyond-RAM overhead: warm mmap over heap
// at the SAME big scale, target <= 2.0. The ratio against the usual
// base-scale heap workload is reported as context (top-k overlap cost is
// data-dependent, so a bigger source is slower on any backing). Like all
// wall-clock numbers both are informational in -compare, never a failure.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"time"

	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/index/ditsfile"
	"dits/internal/search/overlap"
	"dits/internal/workload"
)

// BigsourceSchema versions the snapshot file layout.
const BigsourceSchema = "dits-bench-bigsource/1"

// bigsourceWarmRounds is how many times the warm phase replays the query
// set after the cold pass has faulted the working set in.
const bigsourceWarmRounds = 5

// BigsourcePhase is the measured latency of one serving configuration.
type BigsourcePhase struct {
	Phase   string  `json:"phase"` // heap-base | heap-big | mmap-cold | mmap-warm
	Scale   float64 `json:"scale"`
	Queries int     `json:"queries"` // latency samples collected
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// BigsourceReport is the machine-readable result, snapshotted by
// `ditsbench -exp bigsource -baseline` into BENCH_bigsource.json.
type BigsourceReport struct {
	Schema    string `json:"schema"`
	Generated string `json:"generated,omitempty"`
	Source    string `json:"source"`
	Seed      int64  `json:"seed"`
	Theta     int    `json:"theta"`
	K         int    `json:"k"`

	BaseScale    float64 `json:"base_scale"`
	BigScale     float64 `json:"big_scale"`
	BaseDatasets int     `json:"base_datasets"`
	BigDatasets  int     `json:"big_datasets"`

	SnapshotBytes     int64 `json:"snapshot_bytes"`
	MappedBytes       int64 `json:"mapped_bytes"`
	ResidentColdBytes int64 `json:"resident_cold_bytes"` // reader estimate after the cold pass
	ResidentWarmBytes int64 `json:"resident_warm_bytes"`
	LeafLoads         int64 `json:"leaf_loads"`

	// RSS accounting (Linux only; zero elsewhere). Floor is VmRSS after
	// the heap copy of the big index has been dropped and returned to the
	// OS, Peak is the maximum VmRSS sampled while serving from the map.
	BudgetMB   int     `json:"budget_mb"`
	FloorRSSMB float64 `json:"floor_rss_mb,omitempty"`
	PeakRSSMB  float64 `json:"peak_rss_mb,omitempty"`

	Phases []BigsourcePhase `json:"phases"`

	// WarmVsHeapP50/P99 divide warm mmap latency by heap latency at the
	// SAME BigScale: the overhead of serving beyond-RAM instead of
	// heap-resident. This is the <= 2.0 success target — faulting leaves
	// through the page cache must not double the cost of the search.
	WarmVsHeapP50 float64 `json:"warm_vs_heap_p50"`
	WarmVsHeapP99 float64 `json:"warm_vs_heap_p99"`

	// WarmVsBaseP50/P99 divide warm mmap latency at BigScale by heap
	// latency at BaseScale — context, not a target: top-k overlap search
	// is data-dependent, so a source holding BigScale/BaseScale times
	// the datasets answers slower on ANY backing, heap included (compare
	// heap-big against heap-base in Phases for the inherent growth).
	WarmVsBaseP50 float64 `json:"warm_vs_base_p50"`
	WarmVsBaseP99 float64 `json:"warm_vs_base_p99"`
}

// genSource generates spec at scale OUTSIDE the shared source cache: the
// whole point of the experiment is releasing the big workload before the
// serving phase, and the package-level cache would keep it reachable for
// the rest of the ditsbench run.
func genSource(spec workload.Spec, scale float64, seed int64, theta int) sourceData {
	src := workload.Generate(spec, scale, seed)
	g := geo.NewGrid(theta, src.Bounds())
	return sourceData{spec: spec, src: src, grid: g, nodes: src.Nodes(g)}
}

// timedTopK answers qs against idx, timing each query individually, and
// returns the ranked answers (the parity basis) plus the samples in ms.
// With warmup, one unrecorded pass runs first so the heap phases are
// measured as warm as the mmap-warm phase they are compared against.
func timedTopK(idx *dits.Local, qs sourceData, n int, k int, rounds int, warmup bool) ([][]overlap.Result, []float64) {
	queryNodes := queries(qs, n, 123)
	s := &overlap.DITSSearcher{Index: idx}
	if warmup {
		for _, q := range queryNodes {
			s.TopK(q, k)
		}
	}
	var samples []float64
	var results [][]overlap.Result
	for r := 0; r < rounds; r++ {
		results = make([][]overlap.Result, len(queryNodes))
		for i, q := range queryNodes {
			start := time.Now()
			results[i] = s.TopK(q, k)
			samples = append(samples, float64(time.Since(start).Nanoseconds())/1e6)
		}
	}
	return results, samples
}

// pctMs is the nearest-rank percentile of the samples (p in (0,1]).
func pctMs(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := slices.Clone(samples)
	slices.Sort(s)
	i := int(math.Ceil(p*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// rssBytes reads the process's current resident set from
// /proc/self/status. Zero means unavailable (non-Linux).
func rssBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		rest, ok := strings.CutPrefix(line, "VmRSS:")
		if !ok {
			continue
		}
		f := strings.Fields(rest)
		if len(f) == 0 {
			continue
		}
		kb, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// rssSampler polls VmRSS in the background and records the peak. VmHWM
// would be simpler but it is a whole-process high-water mark and the big
// heap build phase necessarily dwarfs the serving phase we care about.
type rssSampler struct {
	stop chan struct{}
	done chan struct{}
	peak int64
}

func startRSSSampler() *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			if v := rssBytes(); v > s.peak {
				s.peak = v
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// peakBytes stops the sampler and returns the peak VmRSS it saw.
func (s *rssSampler) peakBytes() int64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// RunBigsource executes the beyond-RAM serving experiment. It fails hard
// on any parity divergence between the mapped snapshot and the heap index
// it was written from, and (on Linux) on serving RSS above the budget.
func RunBigsource(cfg Config) (BigsourceReport, []Table, error) {
	bigScale := cfg.BigScale
	if bigScale <= 0 {
		bigScale = 4
	}
	budget := cfg.RSSBudgetMB
	if budget <= 0 {
		budget = 512
	}
	baseScale := overlapCfg(cfg).Scale
	report := BigsourceReport{
		Schema: BigsourceSchema, Source: "Transit", Seed: cfg.Seed,
		Theta: cfg.Theta, K: cfg.K,
		BaseScale: baseScale, BigScale: bigScale, BudgetMB: budget,
	}
	spec, err := workload.SpecByName(report.Source)
	if err != nil {
		return report, nil, err
	}

	// ---- Phase 1: heap baseline at the usual OJSP scale. ----
	base := genSource(spec, baseScale, cfg.Seed, cfg.Theta)
	report.BaseDatasets = len(base.nodes)
	baseIdx := dits.Build(base.grid, base.nodes, cfg.F)
	_, baseSamples := timedTopK(baseIdx, base, cfg.Q, cfg.K, bigsourceWarmRounds, true)
	report.Phases = append(report.Phases, BigsourcePhase{
		Phase: "heap-base", Scale: baseScale, Queries: len(baseSamples),
		P50Ms: pctMs(baseSamples, 0.50), P99Ms: pctMs(baseSamples, 0.99),
	})
	base, baseIdx = sourceData{}, nil

	// ---- Phase 2: big heap build, snapshot, and ground truth. ----
	big := genSource(spec, bigScale, cfg.Seed, cfg.Theta)
	report.BigDatasets = len(big.nodes)
	bigIdx := dits.Build(big.grid, big.nodes, cfg.F)
	want, bigSamples := timedTopK(bigIdx, big, cfg.Q, cfg.K, bigsourceWarmRounds, true)
	report.Phases = append(report.Phases, BigsourcePhase{
		Phase: "heap-big", Scale: bigScale, Queries: len(bigSamples),
		P50Ms: pctMs(bigSamples, 0.50), P99Ms: pctMs(bigSamples, 0.99),
	})

	dir, err := os.MkdirTemp("", "dits-bigsource-")
	if err != nil {
		return report, nil, err
	}
	defer os.RemoveAll(dir)
	snap := filepath.Join(dir, "big.dsnap")
	if err := ditsfile.WriteFile(snap, bigIdx); err != nil {
		return report, nil, err
	}
	if fi, err := os.Stat(snap); err == nil {
		report.SnapshotBytes = fi.Size()
	}

	// Release every heap reference to the big source before serving —
	// only the query nodes and the expected answers survive — and hand
	// the freed pages back to the OS so the RSS floor is honest.
	// queries() is deterministic, so resampling with the same seed yields
	// exactly the nodes timedTopK answered on the heap index above.
	qNodes := queries(sourceData{spec: big.spec, src: big.src, grid: big.grid}, cfg.Q, 123)
	big, bigIdx = sourceData{}, nil
	runtime.GC()
	debug.FreeOSMemory()
	report.FloorRSSMB = float64(rssBytes()) / (1 << 20)

	// ---- Phase 3: serve the mapped snapshot under the RSS budget. ----
	prevLimit := debug.SetMemoryLimit(int64(budget) << 20)
	defer debug.SetMemoryLimit(prevLimit)
	reader, err := ditsfile.Open(snap, ditsfile.Options{MMap: true})
	if err != nil {
		return report, nil, err
	}
	defer reader.Close()
	report.MappedBytes = reader.MappedBytes()
	sampler := startRSSSampler()

	idx := reader.Index()
	s := &overlap.DITSSearcher{Index: idx}
	var coldSamples []float64
	got := make([][]overlap.Result, len(qNodes))
	for i, q := range qNodes {
		start := time.Now()
		got[i] = s.TopK(q, cfg.K)
		coldSamples = append(coldSamples, float64(time.Since(start).Nanoseconds())/1e6)
	}
	report.ResidentColdBytes = reader.ResidentEstBytes()
	report.Phases = append(report.Phases, BigsourcePhase{
		Phase: "mmap-cold", Scale: bigScale, Queries: len(coldSamples),
		P50Ms: pctMs(coldSamples, 0.50), P99Ms: pctMs(coldSamples, 0.99),
	})
	if !reflect.DeepEqual(got, want) {
		sampler.peakBytes()
		return report, nil, fmt.Errorf("bench: bigsource parity violation: cold mmap answers diverge from the heap index")
	}

	var warmSamples []float64
	for r := 0; r < bigsourceWarmRounds; r++ {
		for i, q := range qNodes {
			start := time.Now()
			res := s.TopK(q, cfg.K)
			warmSamples = append(warmSamples, float64(time.Since(start).Nanoseconds())/1e6)
			if !reflect.DeepEqual(res, want[i]) {
				sampler.peakBytes()
				return report, nil, fmt.Errorf("bench: bigsource parity violation: warm mmap answer for query %d diverges", i)
			}
		}
	}
	report.ResidentWarmBytes = reader.ResidentEstBytes()
	report.LeafLoads = reader.LeafLoads()
	report.Phases = append(report.Phases, BigsourcePhase{
		Phase: "mmap-warm", Scale: bigScale, Queries: len(warmSamples),
		P50Ms: pctMs(warmSamples, 0.50), P99Ms: pctMs(warmSamples, 0.99),
	})

	report.PeakRSSMB = float64(sampler.peakBytes()) / (1 << 20)
	if report.PeakRSSMB > 0 && report.PeakRSSMB > float64(budget) {
		return report, nil, fmt.Errorf("bench: bigsource RSS %.1f MiB exceeds the %d MiB budget while serving mmap'd",
			report.PeakRSSMB, budget)
	}

	basePhase, bigPhase, warmPhase := report.Phases[0], report.Phases[1], report.Phases[3]
	if bigPhase.P50Ms > 0 {
		report.WarmVsHeapP50 = warmPhase.P50Ms / bigPhase.P50Ms
	}
	if bigPhase.P99Ms > 0 {
		report.WarmVsHeapP99 = warmPhase.P99Ms / bigPhase.P99Ms
	}
	if basePhase.P50Ms > 0 {
		report.WarmVsBaseP50 = warmPhase.P50Ms / basePhase.P50Ms
	}
	if basePhase.P99Ms > 0 {
		report.WarmVsBaseP99 = warmPhase.P99Ms / basePhase.P99Ms
	}
	return report, bigsourceTables(report), nil
}

func bigsourceTables(r BigsourceReport) []Table {
	t := Table{
		ID:    "bigsource",
		Title: "Beyond-RAM serving: mmap'd snapshot searched in place",
		Header: []string{
			"phase", "scale", "datasets", "samples", "p50 ms", "p99 ms",
		},
		Notes: []string{
			fmt.Sprintf("snapshot %.1f MiB, mapped %.1f MiB, resident est %.1f MiB after warm (%d leaf loads).",
				float64(r.SnapshotBytes)/(1<<20), float64(r.MappedBytes)/(1<<20),
				float64(r.ResidentWarmBytes)/(1<<20), r.LeafLoads),
			fmt.Sprintf("beyond-RAM overhead (warm mmap vs heap, both at %gx): p50 %.2fx, p99 %.2fx (target <= 2.0).",
				r.BigScale, r.WarmVsHeapP50, r.WarmVsHeapP99),
			fmt.Sprintf("context vs the usual %gx heap workload: p50 %.2fx, p99 %.2fx (the heap-big row shows how much is inherent data growth).",
				r.BaseScale, r.WarmVsBaseP50, r.WarmVsBaseP99),
		},
	}
	if r.PeakRSSMB > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("serving RSS: floor %.1f MiB, peak %.1f MiB, budget %d MiB (hard-checked).",
				r.FloorRSSMB, r.PeakRSSMB, r.BudgetMB))
	} else {
		t.Notes = append(t.Notes, "VmRSS unavailable on this platform; RSS budget not enforced.")
	}
	for _, p := range r.Phases {
		n := r.BigDatasets
		if p.Phase == "heap-base" {
			n = r.BaseDatasets
		}
		t.Rows = append(t.Rows, []string{
			p.Phase, ftoa(p.Scale), itoa(n), itoa(p.Queries), ms(p.P50Ms), ms(p.P99Ms),
		})
	}
	return []Table{t}
}

// WriteBigsource snapshots the report for later -compare runs.
func WriteBigsource(path string, r BigsourceReport) error {
	r.Generated = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBigsource loads a snapshot written by WriteBigsource.
func ReadBigsource(path string) (BigsourceReport, error) {
	var r BigsourceReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Schema != BigsourceSchema {
		return r, fmt.Errorf("bench: %s has schema %q, want %q", path, r.Schema, BigsourceSchema)
	}
	return r, nil
}

// CompareBigsource diffs a current run against a snapshot per phase.
// Wall-clock drift across hardware is informational, never a failure; the
// parity and RSS-budget checks inside RunBigsource are the hard signal.
func CompareBigsource(base, cur BigsourceReport) Table {
	suffix := ""
	if base.Generated != "" {
		suffix = " (baseline " + base.Generated + ")"
	}
	t := Table{
		ID:    "bigsource-compare",
		Title: "Beyond-RAM serving vs baseline snapshot" + suffix,
		Header: []string{
			"phase", "base p50", "now p50", "drift", "base p99", "now p99",
		},
		Notes: []string{
			"drift = now/base p50: < 1.00x is faster than the snapshot.",
			fmt.Sprintf("headline now: mmap/heap overhead p50 %.2fx, resident %.1f MiB (snapshot: %.2fx, %.1f MiB).",
				cur.WarmVsHeapP50, float64(cur.ResidentWarmBytes)/(1<<20),
				base.WarmVsHeapP50, float64(base.ResidentWarmBytes)/(1<<20)),
		},
	}
	baseBy := make(map[string]BigsourcePhase, len(base.Phases))
	for _, p := range base.Phases {
		baseBy[p.Phase] = p
	}
	for _, p := range cur.Phases {
		b, ok := baseBy[p.Phase]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("no baseline entry for phase %s", p.Phase))
			continue
		}
		drift := "-"
		if b.P50Ms > 0 {
			drift = fmt.Sprintf("%.2fx", p.P50Ms/b.P50Ms)
		}
		t.Rows = append(t.Rows, []string{
			p.Phase, ms(b.P50Ms), ms(p.P50Ms), drift, ms(b.P99Ms), ms(p.P99Ms),
		})
	}
	return t
}

// Bigsource adapts RunBigsource to the experiment registry.
func Bigsource(cfg Config) []Table {
	_, tables, err := RunBigsource(cfg)
	if err != nil {
		panic(err)
	}
	return tables
}
