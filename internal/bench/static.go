package bench

import (
	"fmt"
	"strings"

	"dits/internal/workload"
)

// Table1 regenerates Table I: the statistics of the five (synthetic) data
// sources at the configured scale.
func Table1(cfg Config) []Table {
	t := Table{
		ID:    "table1",
		Title: fmt.Sprintf("Details of five spatial data sources (scale %g of the paper's)", cfg.Scale),
		Header: []string{
			"Data source", "Number of datasets", "Number of points", "Coordinates range",
		},
		Notes: []string{
			"Synthetic stand-ins for the paper's portals; counts scale Table I, ranges match it.",
		},
	}
	for _, spec := range workload.Specs() {
		src := cache.source(spec, cfg)
		st := src.ComputeStats()
		t.Rows = append(t.Rows, []string{
			spec.Name + "-dataset",
			itoa(st.NumDatasets),
			itoa(st.NumPoints),
			fmt.Sprintf("[(%.2f, %.2f), (%.2f, %.2f)]",
				spec.Bounds.MinX, spec.Bounds.MinY, spec.Bounds.MaxX, spec.Bounds.MaxY),
		})
	}
	return []Table{t}
}

// Table2 prints the parameter grid of Table II (defaults marked *).
func Table2(cfg Config) []Table {
	mark := func(vals []int, def int) string {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = itoa(v)
			if v == def {
				parts[i] += "*"
			}
		}
		return strings.Join(parts, ", ")
	}
	markF := func(vals []float64, def float64) string {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = ftoa(v)
			if v == def {
				parts[i] += "*"
			}
		}
		return strings.Join(parts, ", ")
	}
	return []Table{{
		ID:     "table2",
		Title:  "Parameter settings (defaults marked *)",
		Header: []string{"Parameter", "Settings"},
		Rows: [][]string{
			{"k: number of results", mark(ParamK, cfg.K)},
			{"q: number of queries", mark(ParamQ, cfg.Q)},
			{"θ: resolution", mark(ParamTheta, cfg.Theta)},
			{"δ: connectivity threshold", markF(ParamDelta, cfg.Delta)},
			{"f: leaf node capacity", mark(ParamF, cfg.F)},
		},
	}}
}

// heatChars maps density quantiles to glyphs, darkest last.
const heatChars = " .:-=+*#%@"

// Fig7 renders each source's dataset-distribution heatmap as text art plus
// density statistics.
func Fig7(cfg Config) []Table {
	const res = 48
	var tables []Table
	for _, spec := range workload.Specs() {
		src := cache.source(spec, cfg)
		hm := workload.Heatmap(src, res)
		maxBin, total := 0, 0
		for _, row := range hm {
			for _, v := range row {
				total += v
				if v > maxBin {
					maxBin = v
				}
			}
		}
		t := Table{
			ID:     "fig7",
			Title:  fmt.Sprintf("%s-dataset heatmap (%d points, max bin %d)", spec.Name, total, maxBin),
			Header: []string{"density (north at top)"},
		}
		for y := res - 1; y >= 0; y-- {
			var line strings.Builder
			for x := 0; x < res; x++ {
				v := hm[y][x]
				idx := 0
				if maxBin > 0 && v > 0 {
					idx = 1 + v*(len(heatChars)-2)/maxBin
					if idx >= len(heatChars) {
						idx = len(heatChars) - 1
					}
				}
				line.WriteByte(heatChars[idx])
			}
			t.Rows = append(t.Rows, []string{line.String()})
		}
		tables = append(tables, t)
	}
	return tables
}
