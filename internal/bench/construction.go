package bench

import (
	"fmt"

	"dits/internal/index/dits"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
	"dits/internal/workload"
)

// indexNames is the column order of the Fig. 8, 21, 22 comparisons.
var indexNames = []string{"DITS-L", "QuadTree", "Rtree", "STS3", "Josie"}

// buildTimed constructs each of the five indexes over sd and reports the
// build time (ms) and estimated memory (bytes), keyed by index name.
// The built DITS-L index is returned for reuse.
func buildTimed(sd sourceData, f int) (times map[string]float64, mems map[string]int64, local *dits.Local) {
	times = make(map[string]float64)
	mems = make(map[string]int64)

	times["DITS-L"] = timeIt(func() { local = dits.Build(sd.grid, sd.nodes, f) })
	mems["DITS-L"] = local.MemoryBytes()

	var qt *quadtree.Tree
	times["QuadTree"] = timeIt(func() { qt = quadtree.Build(sd.grid.Theta, sd.nodes) })
	mems["QuadTree"] = qt.MemoryBytes()

	var rt *rtree.Tree
	times["Rtree"] = timeIt(func() { rt = rtree.Build(8, sd.nodes) })
	mems["Rtree"] = rt.MemoryBytes()

	var st *sts3.Index
	times["STS3"] = timeIt(func() { st = sts3.Build(sd.nodes) })
	mems["STS3"] = st.MemoryBytes()

	var jo *josie.Index
	times["Josie"] = timeIt(func() { jo = josie.Build(sd.nodes) })
	mems["Josie"] = jo.MemoryBytes()
	return times, mems, local
}

// Fig8 regenerates the index-construction comparison: build time and memory
// of the five indexes on every source as θ increases.
func Fig8(cfg Config) []Table {
	timeTable := Table{
		ID:     "fig8",
		Title:  "Index construction time (ms) vs θ",
		Header: append([]string{"source", "θ"}, indexNames...),
		Notes: []string{
			"Paper shape: Josie slowest overall (posting-list sorting); STS3 fastest at low θ;",
			"DITS-L at or below Rtree (median split vs quadratic split).",
		},
	}
	memTable := Table{
		ID:     "fig8",
		Title:  "Index memory (MB) vs θ",
		Header: append([]string{"source", "θ"}, indexNames...),
		Notes: []string{
			"Paper shape: QuadTree largest (node hierarchy over N cells), STS3 smallest.",
		},
	}
	for _, spec := range workload.Specs() {
		for _, theta := range ParamTheta {
			sd := cache.gridded(spec, cfg, theta)
			times, mems, _ := buildTimed(sd, cfg.F)
			trow := []string{spec.Name, itoa(theta)}
			mrow := []string{spec.Name, itoa(theta)}
			for _, name := range indexNames {
				trow = append(trow, ms(times[name]))
				mrow = append(mrow, mb(mems[name]))
			}
			timeTable.Rows = append(timeTable.Rows, trow)
			memTable.Rows = append(memTable.Rows, mrow)
		}
	}
	return []Table{timeTable, memTable}
}

// fmtSource labels a per-source figure row.
func fmtSource(name string, param string, value any) string {
	return fmt.Sprintf("%s %s=%v", name, param, value)
}
