package bench

import (
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
)

// Ablation quantifies the design choices DESIGN.md calls out, beyond the
// paper's own baselines:
//
//   - the Lemma 2/3 leaf bounds inside OverlapSearch (vs verifying every
//     MBR-intersecting leaf),
//   - the spatial merge strategy of CoverageSearch (vs SG+DITS, which is
//     exactly CoverageSearch without the merge),
//   - the bucketed connectivity kernel (DistIndex) behind FindConnectSet
//     (vs the naive pairwise distance the plain SG baseline embodies).
func Ablation(cfg Config) []Table {
	t := Table{
		ID:     "ablation",
		Title:  "Ablation of DITS design choices (total ms over q queries)",
		Header: []string{"source", "variant", "time"},
		Notes: []string{
			"overlap±bounds isolates Lemmas 2-3; coverage merge vs no-merge isolates the",
			"spatial merge strategy (Algorithm 3 line 11); SG shows life without the index.",
		},
	}
	for _, spec := range coverageSpecs(cfg) {
		sd := cache.gridded(spec, cfg, cfg.Theta)
		var idx *dits.Local
		topDown := timeIt(func() { idx = dits.Build(sd.grid, sd.nodes, cfg.F) })
		qs := queries(sd, cfg.Q, cfg.Seed)

		// Construction strategy: §V-A's O(n log n) top-down median split
		// vs the classical agglomerative bottom-up merge it rejects.
		if len(sd.nodes) <= dits.BuildBottomUpMaxDatasets {
			bottomUp := timeIt(func() { dits.BuildBottomUp(sd.grid, sd.nodes, cfg.F) })
			t.Rows = append(t.Rows,
				[]string{spec.Name, "build: top-down (Alg. 1)", ms(topDown)},
				[]string{spec.Name, "build: bottom-up agglomerative", ms(bottomUp)},
			)
		}

		withBounds := &overlap.DITSSearcher{Index: idx}
		noBounds := &overlap.DITSSearcher{Index: idx, DisableBounds: true}
		t.Rows = append(t.Rows,
			[]string{spec.Name, "overlap: bounds on", ms(timeIt(func() {
				for _, q := range qs {
					withBounds.TopK(q, cfg.K)
				}
			}))},
			[]string{spec.Name, "overlap: bounds off", ms(timeIt(func() {
				for _, q := range qs {
					noBounds.TopK(q, cfg.K)
				}
			}))},
		)

		merge := &coverage.DITSSearcher{Index: idx}
		noMerge := &coverage.SGDITS{Index: idx}
		naive := &coverage.SG{Nodes: sd.nodes}
		t.Rows = append(t.Rows,
			[]string{spec.Name, "coverage: merge strategy", ms(timeIt(func() {
				for _, q := range qs {
					merge.Search(q, cfg.Delta, cfg.K)
				}
			}))},
			[]string{spec.Name, "coverage: no merge (SG+DITS)", ms(timeIt(func() {
				for _, q := range qs {
					noMerge.Search(q, cfg.Delta, cfg.K)
				}
			}))},
			[]string{spec.Name, "coverage: no index (SG)", ms(timeIt(func() {
				for _, q := range qs {
					naive.Search(q, cfg.Delta, cfg.K)
				}
			}))},
		)
	}
	return []Table{t}
}
