package bench

import (
	"context"
	"fmt"

	"dits/internal/cellset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/transport"
	"dits/internal/workload"
)

// commVariants model the query-distribution strategies: the paper's
// OverlapSearch/CoverageSearch use both (global filter + clipping); the
// four baselines broadcast the entire query to every source. The two
// intermediate rows are an ablation of the individual strategies.
var commVariants = []struct {
	name string
	opts federation.Options
}{
	{"DITS (filter+clip)", federation.Options{GlobalFilter: true, ClipQuery: true}},
	{"filter only", federation.Options{GlobalFilter: true, ClipQuery: false}},
	{"clip only", federation.Options{GlobalFilter: false, ClipQuery: true}},
	{"baselines (broadcast)", federation.Options{GlobalFilter: false, ClipQuery: false}},
}

// buildSourceServers indexes the five workload sources under one shared
// world grid — the raw material every federation experiment wires into its
// own centers.
func buildSourceServers(cfg Config) ([]*federation.SourceServer, geo.Grid, []sourceData) {
	// Shared world grid covering all sources.
	world := geo.EmptyRect
	var sds []sourceData
	for _, spec := range workload.Specs() {
		src := cache.source(spec, cfg)
		world = world.Union(src.Bounds())
		sds = append(sds, sourceData{spec: spec, src: src})
	}
	g := geo.NewGrid(cfg.Theta, world)
	var servers []*federation.SourceServer
	for i := range sds {
		sds[i].grid = g
		sds[i].nodes = sds[i].src.Nodes(g)
		idx := dits.Build(g, sds[i].nodes, cfg.F)
		servers = append(servers, federation.NewSourceServerWithGrid(sds[i].spec.Name, idx))
	}
	return servers, g, sds
}

// newFederation wires the servers into a fresh center with the given
// options over in-process peers speaking the given codec (nil = gob).
func newFederation(g geo.Grid, servers []*federation.SourceServer, opts federation.Options, codec transport.Codec) *federation.Center {
	c := federation.NewCenter(g, opts)
	for _, srv := range servers {
		c.Register(srv.Summary(), &transport.InProc{
			Name: srv.Name, Handler: srv.Handler(), Metrics: c.Metrics,
			Codec: codec,
		})
	}
	return c
}

// buildFederations creates one federation of all five sources per variant,
// sharing the per-source DITS-L indexes.
func buildFederations(cfg Config) ([]*federation.Center, geo.Grid, []sourceData) {
	servers, g, sds := buildSourceServers(cfg)
	var centers []*federation.Center
	for _, v := range commVariants {
		centers = append(centers, newFederation(g, servers, v.opts, federation.BinaryCodec))
	}
	return centers, g, sds
}

// federationQueries samples queries across all sources under the world
// grid.
func federationQueries(sds []sourceData, g geo.Grid, q int, seed int64) []cellset.Set {
	var out []cellset.Set
	perSource := q / len(sds)
	if perSource == 0 {
		perSource = 1
	}
	for _, sd := range sds {
		for _, d := range workload.SampleQueries(sd.src, perSource, seed) {
			out = append(out, cellset.FromPoints(g, d.Points))
			if len(out) == q {
				return out
			}
		}
	}
	return out
}

// commFigure runs all query-distribution variants for increasing q and
// reports bytes transferred and modeled transmission time.
func commFigure(cfg Config, idBytes, idTime, title string,
	run func(c *federation.Center, qs []cellset.Set)) []Table {
	bytesTable := Table{
		ID:     idBytes,
		Title:  title + ": communication cost (bytes) vs q",
		Header: []string{"q"},
		Notes: []string{
			"Paper shape: the DITS strategies transmit the fewest bytes; broadcast the most.",
		},
	}
	timeTable := Table{
		ID:     idTime,
		Title:  fmt.Sprintf("%s: transmission time (ms at %.0f B/s) vs q", title, cfg.Bandwidth),
		Header: []string{"q"},
		Notes: []string{
			"Transmission time = bytes / bandwidth (§VII-C2), so it tracks the bytes figure.",
		},
	}
	for _, v := range commVariants {
		bytesTable.Header = append(bytesTable.Header, v.name)
		timeTable.Header = append(timeTable.Header, v.name)
	}
	centers, g, sds := buildFederations(cfg)
	for _, q := range ParamQ {
		qs := federationQueries(sds, g, q, cfg.Seed)
		brow := []string{itoa(q)}
		trow := []string{itoa(q)}
		for i := range commVariants {
			c := centers[i]
			c.Metrics.Reset()
			run(c, qs)
			brow = append(brow, i64toa(c.Metrics.Bytes()))
			trow = append(trow, ms(float64(c.Metrics.TransmissionTime(cfg.Bandwidth).Nanoseconds())/1e6))
		}
		bytesTable.Rows = append(bytesTable.Rows, brow)
		timeTable.Rows = append(timeTable.Rows, trow)
	}
	return []Table{bytesTable, timeTable}
}

// Fig13And14 regenerates the OJSP communication cost (Fig. 13) and
// transmission time (Fig. 14) as q increases.
func Fig13And14(cfg Config) []Table {
	return commFigure(cfg, "fig13", "fig14", "OJSP",
		func(c *federation.Center, qs []cellset.Set) {
			for _, q := range qs {
				if _, err := c.OverlapSearch(context.Background(), q, cfg.K); err != nil {
					panic(err)
				}
			}
		})
}

// Fig19And20 regenerates the CJSP communication cost (Fig. 19) and
// transmission time (Fig. 20) as q increases.
func Fig19And20(cfg Config) []Table {
	return commFigure(cfg, "fig19", "fig20", "CJSP",
		func(c *federation.Center, qs []cellset.Set) {
			for _, q := range qs {
				if _, err := c.CoverageSearch(context.Background(), q, cfg.Delta, cfg.K); err != nil {
					panic(err)
				}
			}
		})
}
