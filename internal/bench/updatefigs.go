package bench

import (
	"math/rand"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/index/josie"
	"dits/internal/index/quadtree"
	"dits/internal/index/rtree"
	"dits/internal/index/sts3"
	"dits/internal/workload"
)

// updateIndexNames is the series order of Figs. 21-22 (the paper plots
// STS3, DITS, Rtree, QuadTree, Josie).
var updateIndexNames = []string{"STS3", "DITS", "Rtree", "QuadTree", "Josie"}

// mutableIndexes builds fresh instances of all five indexes over sd and
// returns uniform insert/update closures for each.
func mutableIndexes(sd sourceData, f int) map[string]struct {
	insert func(*dataset.Node)
	update func(*dataset.Node)
} {
	d := dits.Build(sd.grid, sd.nodes, f)
	qt := quadtree.Build(sd.grid.Theta, sd.nodes)
	rt := rtree.Build(8, sd.nodes)
	st := sts3.Build(sd.nodes)
	jo := josie.Build(sd.nodes)
	return map[string]struct {
		insert func(*dataset.Node)
		update func(*dataset.Node)
	}{
		"DITS": {
			insert: func(n *dataset.Node) { _ = d.Insert(n) },
			update: func(n *dataset.Node) { _ = d.Update(n) },
		},
		"QuadTree": {insert: qt.Insert, update: qt.Update},
		"Rtree":    {insert: rt.Insert, update: rt.Update},
		"STS3":     {insert: st.Insert, update: st.Update},
		"Josie":    {insert: jo.Insert, update: jo.Update},
	}
}

// syntheticNode fabricates a new dataset node near a random existing one,
// so inserts and updates have realistic spatial locality.
func syntheticNode(rng *rand.Rand, sd sourceData, id int) *dataset.Node {
	base := sd.nodes[rng.Intn(len(sd.nodes))]
	side := int64(sd.grid.Side())
	n := 4 + rng.Intn(32)
	ids := make([]uint64, n)
	bx, by := geo.ZDecode(base.Cells[rng.Intn(base.Cells.Len())])
	for j := range ids {
		x := int64(bx) + int64(rng.Intn(17)) - 8
		y := int64(by) + int64(rng.Intn(17)) - 8
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		if x >= side {
			x = side - 1
		}
		if y >= side {
			y = side - 1
		}
		ids[j] = geo.ZEncode(uint32(x), uint32(y))
	}
	return dataset.NewNodeFromCells(id, "synthetic", cellset.New(ids...))
}

// updateFigure runs one batch-mutation figure: for each β, apply β
// operations per index and report the time.
func updateFigure(cfg Config, id, title string, insert bool) []Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"β"}, updateIndexNames...),
		Notes: []string{
			"Time (ms) to apply β operations on the Transit source.",
			"Paper shape: STS3 fastest; Josie slowest inserts (sorted posting lists);",
			"QuadTree slowest updates (per-cell delete+insert); DITS between.",
		},
	}
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		panic(err)
	}
	sd := cache.gridded(spec, cfg, cfg.Theta)
	for _, beta := range ParamBeta {
		row := []string{itoa(beta)}
		idxs := mutableIndexes(sd, cfg.F)
		for _, name := range updateIndexNames {
			ops := idxs[name]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(beta)))
			// Pre-generate the batch so generation cost is excluded.
			batch := make([]*dataset.Node, beta)
			for i := range batch {
				if insert {
					batch[i] = syntheticNode(rng, sd, 1_000_000+i)
				} else {
					victim := sd.nodes[rng.Intn(len(sd.nodes))]
					nd := syntheticNode(rng, sd, victim.ID)
					batch[i] = nd
				}
			}
			elapsed := timeIt(func() {
				for _, nd := range batch {
					if insert {
						ops.insert(nd)
					} else {
						ops.update(nd)
					}
				}
			})
			row = append(row, ms(elapsed))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig21 regenerates index updating time as dataset insertions increase.
func Fig21(cfg Config) []Table {
	return updateFigure(cfg, "fig21", "Index updating time vs number of dataset inserts", true)
}

// Fig22 regenerates index updating time as dataset updates increase.
func Fig22(cfg Config) []Table {
	return updateFigure(cfg, "fig22", "Index updating time vs number of dataset updates", false)
}
