package bench

import (
	"fmt"
	"sync"
	"time"

	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/workload"
)

// Config sets the workload scale and the default parameters (Table II;
// defaults underlined there: k=10, q=10, θ=12, δ=10, f=30).
type Config struct {
	Scale     float64 // multiple of Table I dataset counts to generate
	Seed      int64
	Theta     int
	K         int
	Q         int
	Delta     float64
	F         int
	Bandwidth float64 // bytes/second for modeled transmission time

	// OverlapScale overrides Scale for the OJSP figures (9-12): the
	// index/inverted crossover the paper reports needs thousands of
	// datasets per source, which the cheap overlap searches can afford
	// even when the quadratic CJSP baselines cannot. Zero means Scale.
	OverlapScale float64

	// CoverageSources limits the CJSP figures to these sources (SG, the
	// paper's slowest baseline, is quadratic; Transit is the paper's
	// motivating source and the cheapest). Empty means all five.
	CoverageSources []string

	// Workers is the largest worker-pool size the exec experiment drives
	// the query executor with (ditsbench -workers).
	Workers int

	// TracePath optionally points the ingest experiment at a mutation
	// trace file written by `datagen -updates` (ditsbench -trace). Empty
	// generates an equivalent trace in memory from the same generator.
	TracePath string

	// LoadSecs is the per-scenario duration of the load experiment in
	// seconds (ditsbench -loadsecs). Zero means 3.
	LoadSecs float64

	// BigScale is the workload scale of the bigsource experiment's
	// beyond-RAM index (ditsbench -bigscale). Zero means 4 — eight times
	// the default OJSP scale.
	BigScale float64

	// RSSBudgetMB is the resident-set budget in MiB the bigsource
	// experiment must stay under while serving the mmap'd snapshot
	// (ditsbench -rss-budget-mb); it also becomes the Go soft memory
	// limit for that phase. Zero means 512. Enforced on Linux only.
	RSSBudgetMB int
}

// DefaultConfig returns the scaled-down defaults used by ditsbench and the
// Go benchmarks.
func DefaultConfig() Config {
	return Config{
		Scale:           0.02,
		Seed:            1,
		Theta:           12,
		K:               10,
		Q:               10,
		Delta:           10,
		F:               30,
		Bandwidth:       125_000, // 1 Mbit/s, as a transmission-time model
		OverlapScale:    0.5,
		CoverageSources: []string{"Transit", "Baidu"},
		Workers:         8,
		BigScale:        4,
		RSSBudgetMB:     512,
	}
}

// overlapCfg returns cfg with Scale swapped for the OJSP figures.
func overlapCfg(cfg Config) Config {
	if cfg.OverlapScale > 0 {
		cfg.Scale = cfg.OverlapScale
	}
	return cfg
}

// Params are the swept values of Table II.
var (
	ParamK     = []int{10, 20, 30, 40, 50}
	ParamQ     = []int{10, 20, 30, 40, 50}
	ParamTheta = []int{10, 11, 12, 13, 14}
	ParamDelta = []float64{0, 5, 10, 15, 20}
	ParamF     = []int{10, 20, 30, 40, 50}
	ParamBeta  = []int{100, 150, 200, 250, 300} // update batch sizes (Figs. 21-22)
)

// sourceData is one generated source gridded at a resolution.
type sourceData struct {
	spec  workload.Spec
	src   *dataset.Source
	grid  geo.Grid
	nodes []*dataset.Node
}

// sourceCache memoizes generated sources and their gridded nodes, so a
// ditsbench run regenerating many figures does not regenerate the workload
// per figure.
type sourceCache struct {
	mu     sync.Mutex
	srcs   map[string]*dataset.Source
	gr     map[string][]*dataset.Node
	grGrid map[string]geo.Grid
}

var cache = &sourceCache{
	srcs:   make(map[string]*dataset.Source),
	gr:     make(map[string][]*dataset.Node),
	grGrid: make(map[string]geo.Grid),
}

func (c *sourceCache) source(spec workload.Spec, cfg Config) *dataset.Source {
	key := fmt.Sprintf("%s/%g/%d", spec.Name, cfg.Scale, cfg.Seed)
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.srcs[key]; ok {
		return s
	}
	s := workload.Generate(spec, cfg.Scale, cfg.Seed)
	c.srcs[key] = s
	return s
}

func (c *sourceCache) gridded(spec workload.Spec, cfg Config, theta int) sourceData {
	src := c.source(spec, cfg)
	key := fmt.Sprintf("%s/%g/%d/%d", spec.Name, cfg.Scale, cfg.Seed, theta)
	c.mu.Lock()
	defer c.mu.Unlock()
	if nodes, ok := c.gr[key]; ok {
		return sourceData{spec: spec, src: src, grid: c.grGrid[key], nodes: nodes}
	}
	g := geo.NewGrid(theta, src.Bounds())
	nodes := src.Nodes(g)
	c.gr[key] = nodes
	c.grGrid[key] = g
	return sourceData{spec: spec, src: src, grid: g, nodes: nodes}
}

// coverageSpecs returns the specs used by the CJSP figures.
func coverageSpecs(cfg Config) []workload.Spec {
	if len(cfg.CoverageSources) == 0 {
		return workload.Specs()
	}
	var out []workload.Spec
	for _, name := range cfg.CoverageSources {
		if sp, err := workload.SpecByName(name); err == nil {
			out = append(out, sp)
		}
	}
	return out
}

// queries samples q query nodes from a gridded source.
func queries(sd sourceData, q int, seed int64) []*dataset.Node {
	ds := workload.SampleQueries(sd.src, q, seed)
	out := make([]*dataset.Node, 0, len(ds))
	for _, d := range ds {
		nd := dataset.NewNode(sd.grid, d)
		if nd != nil {
			nd = &dataset.Node{
				ID: -1, Name: "query", Rect: nd.Rect, O: nd.O, R: nd.R,
				Cells: nd.Cells, Compact: nd.Compact,
			}
			out = append(out, nd)
		}
	}
	return out
}

// timeIt measures fn's wall-clock time in milliseconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds()) / 1e6
}
