// Package bench regenerates every table and figure of the paper's
// evaluation (§VII) on the synthetic five-source workload. Each experiment
// returns Tables that cmd/ditsbench prints as aligned text or CSV, and
// bench_test.go exposes as testing.B benchmarks.
package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated table or figure: for figures, rows are the
// x-axis points and columns the plotted series.
type Table struct {
	ID     string // experiment id, e.g. "fig9"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // interpretation notes printed under the table
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func ms(d float64) string   { return fmt.Sprintf("%.2f", d) }
func mb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%g", v) }
