package bench

import (
	"dits/internal/dataset"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
)

// coverageAlgos is the series order of Figs. 15-18.
var coverageAlgos = []string{"CoverageSearch", "SG+DITS", "SG"}

// buildCoverageSearchers builds the three CJSP algorithms over one source,
// sharing the DITS-L index between CoverageSearch and SG+DITS as in the
// paper.
func buildCoverageSearchers(sd sourceData, f int) map[string]coverage.Searcher {
	idx := dits.Build(sd.grid, sd.nodes, f)
	return map[string]coverage.Searcher{
		"CoverageSearch": &coverage.DITSSearcher{Index: idx},
		"SG+DITS":        &coverage.SGDITS{Index: idx},
		"SG":             &coverage.SG{Nodes: sd.nodes},
	}
}

// runCoverage measures total time (ms) per algorithm over the queries.
func runCoverage(searchers map[string]coverage.Searcher, qs []*dataset.Node, delta float64, k int) map[string]float64 {
	out := make(map[string]float64)
	for name, s := range searchers {
		s := s
		out[name] = timeIt(func() {
			for _, q := range qs {
				s.Search(q, delta, k)
			}
		})
	}
	return out
}

// coverageSweep renders one CJSP figure over the configured coverage
// sources.
func coverageSweep(cfg Config, id, title, param string, values []string,
	run func(sd sourceData, i int) map[string]float64) []Table {
	t := Table{
		ID:     id,
		Title:  title,
		Header: append([]string{"source", param}, coverageAlgos...),
		Notes: []string{
			"Total time (ms) over q queries. Paper shape: CoverageSearch < SG+DITS < SG",
			"(merge strategy: one tree search per iteration; SG re-verifies connectivity per member).",
		},
	}
	for _, spec := range coverageSpecs(cfg) {
		sd := cache.gridded(spec, cfg, cfg.Theta)
		for i, v := range values {
			times := run(sd, i)
			row := []string{spec.Name, v}
			for _, name := range coverageAlgos {
				row = append(row, ms(times[name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return []Table{t}
}

// Fig15 regenerates CJSP search time vs k.
func Fig15(cfg Config) []Table {
	vals := make([]string, len(ParamK))
	for i, k := range ParamK {
		vals[i] = itoa(k)
	}
	return coverageSweep(cfg, "fig15", "CJSP search time vs k", "k", vals,
		func(sd sourceData, i int) map[string]float64 {
			searchers := buildCoverageSearchers(sd, cfg.F)
			qs := queries(sd, cfg.Q, cfg.Seed)
			return runCoverage(searchers, qs, cfg.Delta, ParamK[i])
		})
}

// Fig16 regenerates CJSP search time vs θ.
func Fig16(cfg Config) []Table {
	t := Table{
		ID:     "fig16",
		Title:  "CJSP search time vs θ",
		Header: append([]string{"source", "θ"}, coverageAlgos...),
		Notes: []string{
			"Cell sets grow with θ, so all three slow down; SG fastest-growing (pairwise distances).",
		},
	}
	for _, spec := range coverageSpecs(cfg) {
		for _, theta := range ParamTheta {
			sd := cache.gridded(spec, cfg, theta)
			searchers := buildCoverageSearchers(sd, cfg.F)
			qs := queries(sd, cfg.Q, cfg.Seed)
			times := runCoverage(searchers, qs, cfg.Delta, cfg.K)
			row := []string{spec.Name, itoa(theta)}
			for _, name := range coverageAlgos {
				row = append(row, ms(times[name]))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return []Table{t}
}

// Fig17 regenerates CJSP search time vs q.
func Fig17(cfg Config) []Table {
	vals := make([]string, len(ParamQ))
	for i, q := range ParamQ {
		vals[i] = itoa(q)
	}
	return coverageSweep(cfg, "fig17", "CJSP search time vs q", "q", vals,
		func(sd sourceData, i int) map[string]float64 {
			searchers := buildCoverageSearchers(sd, cfg.F)
			qs := queries(sd, ParamQ[i], cfg.Seed)
			return runCoverage(searchers, qs, cfg.Delta, cfg.K)
		})
}

// Fig18 regenerates CJSP search time vs δ.
func Fig18(cfg Config) []Table {
	vals := make([]string, len(ParamDelta))
	for i, d := range ParamDelta {
		vals[i] = ftoa(d)
	}
	return coverageSweep(cfg, "fig18", "CJSP search time vs δ", "δ", vals,
		func(sd sourceData, i int) map[string]float64 {
			searchers := buildCoverageSearchers(sd, cfg.F)
			qs := queries(sd, cfg.Q, cfg.Seed)
			return runCoverage(searchers, qs, ParamDelta[i], cfg.K)
		})
}
