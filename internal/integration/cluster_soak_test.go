package integration

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dits/internal/admission"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/load"
	"dits/internal/transport"
)

// TestClusterSoakKillCenterAndSourceUnderLoad is the cluster chaos soak:
// a three-center sharded plane over real TCP, one source replicated via
// WAL shipping, sustained mixed load through the gateway while (1) the
// center owning the largest shard is killed and (2) the replicated
// source's primary is killed. Both failovers are in-band, so the load
// must finish with ZERO failed requests — no 5xx, no net errors — and a
// dataset ingested just before the source kill must be visible on the
// very next read (no stale reads: the replica is drained to the
// primary's acked version first). Afterwards the degraded plane must
// still answer byte-identically to a single-center oracle.
func TestClusterSoakKillCenterAndSourceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak drives sustained load over real TCP; not short")
	}
	grid := geo.NewGrid(soakTheta, geo.Rect{MinX: 0, MinY: 0, MaxX: soakSide, MaxY: soakSide})
	empty := func() (*dits.Local, error) { return dits.Build(grid, nil, 8), nil }
	ctx := context.Background()

	// alpha: mutable and replicated. The primary bootstraps empty and is
	// seeded through PutDataset so its WAL carries the full history the
	// replica ships.
	alphaNodes := soakNodes(rand.New(rand.NewSource(11)), 0, 2, 44)
	primarySt, err := ingest.Open(t.TempDir(), ingest.Options{
		Fsync: ingest.FsyncNever, SnapshotEvery: -1, Bootstrap: empty,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primarySt.Close()
	for _, nd := range alphaNodes {
		if _, err := primarySt.PutDataset(nd.ID, nd.Name, nd.Cells); err != nil {
			t.Fatal(err)
		}
	}
	alphaSrv := federation.NewSourceServerWithGrid("alpha", primarySt.Index())
	alphaSrv.EnableIngest(primarySt)
	tsAlpha, err := transport.Serve("127.0.0.1:0", alphaSrv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer tsAlpha.Close()

	replicaSt, err := ingest.Open(t.TempDir(), ingest.Options{
		Fsync: ingest.FsyncNever, SnapshotEvery: -1, Replica: true, Bootstrap: empty,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replicaSt.Close()
	replicaSrv := federation.NewSourceServerWithGrid("alpha", replicaSt.Index())
	replicaSrv.EnableIngest(replicaSt)
	tsReplica, err := transport.Serve("127.0.0.1:0", replicaSrv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer tsReplica.Close()
	primaryPool := transport.DialPool("alpha", tsAlpha.Addr(), 2, &transport.Metrics{})
	defer primaryPool.Close()
	repl := &federation.Replicator{Store: replicaSt, Primary: primaryPool, Interval: 20 * time.Millisecond}
	replCtx, replStop := context.WithCancel(ctx)
	defer replStop()
	go repl.Run(replCtx)

	// bravo and charlie: static sources on the middle and right thirds.
	staticSrvs := make(map[string]*federation.SourceServer)
	staticAddr := make(map[string]string)
	var staticNodes []*dataset.Node
	for _, spec := range []struct {
		name   string
		lo, hi int
		idBase int
		seed   int64
	}{
		{"bravo", 44, 86, 1000, 12},
		{"charlie", 86, 126, 2000, 13},
	} {
		nodes := soakNodes(rand.New(rand.NewSource(spec.seed)), spec.idBase, spec.lo, spec.hi)
		staticNodes = append(staticNodes, nodes...)
		srv := federation.NewSourceServerWithGrid(spec.name, dits.Build(grid, nodes, 8))
		staticSrvs[spec.name] = srv
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		staticAddr[spec.name] = ts.Addr()
	}

	// Three centers over real TCP, each with a durable membership log.
	met := &transport.Metrics{}
	peers := make(map[string]transport.Peer, 3)
	centerTS := make(map[string]*transport.Server, 3)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("center-%d", i)
		c := federation.NewCenter(grid, federation.Options{GlobalFilter: true, ClipQuery: true, Sessions: true})
		cs, err := federation.NewCenterServer(name, c, federation.CenterServerOptions{
			MemberLog: filepath.Join(t.TempDir(), "members.log"),
			PoolSize:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer cs.Close()
		ts, err := transport.Serve("127.0.0.1:0", cs.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		centerTS[name] = ts
		peers[name] = transport.DialPool(name, ts.Addr(), 4, met)
	}
	cluster := federation.NewCluster(grid, peers)
	cluster.Metrics = met
	defer cluster.Close()
	for _, src := range []federation.ClusterSource{
		{Name: "alpha", Addr: tsAlpha.Addr(), Replicas: []string{tsReplica.Addr()}},
		{Name: "bravo", Addr: staticAddr["bravo"]},
		{Name: "charlie", Addr: staticAddr["charlie"]},
	} {
		if err := cluster.AddSource(ctx, src); err != nil {
			t.Fatal(err)
		}
	}

	gw := gateway.NewCluster(cluster, gateway.Options{
		Admission: admission.Config{Rate: 5000, Burst: 1000, Deadline: 5 * time.Second},
	})
	hs := httptest.NewServer(gw.Handler())
	defer hs.Close()

	// Phase 1 — mixed load (searches + ingest into alpha) across a center
	// kill. The victim owns the largest shard, forcing the worst re-home.
	type loadDone struct {
		res load.Result
		err error
	}
	resCh := make(chan loadDone, 1)
	go func() {
		res, err := load.Run(ctx, load.Options{
			Target:   hs.URL,
			Mode:     "closed",
			Clients:  4,
			Duration: 1600 * time.Millisecond,
			Mix:      load.Mix{Overlap: 0.55, Coverage: 0.2, Batch: 0.1, Ingest: 0.15},
			K:        5, PointsPerQuery: 6,
			Bounds:       [4]float64{0, 0, soakSide, soakSide},
			IngestSource: "alpha",
			IngestIDs:    64,
			Seed:         43,
			ClientID:     "cluster-soak",
		})
		resCh <- loadDone{res, err}
	}()
	time.Sleep(400 * time.Millisecond)

	victim := ""
	most := -1
	for name, srcs := range cluster.Shards() {
		if len(srcs) > most {
			victim, most = name, len(srcs)
		}
	}
	centerTS[victim].Close()

	// The very next uncached query must succeed: failover is in-band.
	probe := gateway.SearchRequest{Points: cellPoints(grid, staticNodes[0]), K: 9}
	var probeResp gateway.OverlapResponse
	if code := soakPost(t, hs.URL+"/search/overlap", probe, &probeResp); code != http.StatusOK {
		t.Fatalf("first query after center kill = %d, want 200", code)
	}
	if st := cluster.Stats(); st.Healthy != 2 || st.Failovers < 1 {
		t.Fatalf("post-kill stats: healthy=%d failovers=%d, want 2 and >=1", st.Healthy, st.Failovers)
	}

	// Mid-incident observability: the cluster gauges and health page must
	// reflect the degraded plane.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(mb)
	mresp.Body.Close()
	exposition := string(mb[:n])
	for _, want := range []string{
		"dits_cluster_centers_healthy 2",
		"dits_cluster_failovers_total",
		"dits_cluster_rehomed_total",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics after center kill missing %q", want)
		}
	}
	if hresp, err := http.Get(hs.URL + "/healthz"); err != nil || hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after center kill: %v %v", hresp, err)
	} else {
		hresp.Body.Close()
	}

	done := <-resCh
	if done.err != nil {
		t.Fatalf("phase-1 load: %v", done.err)
	}
	if done.res.Sent == 0 || done.res.OK == 0 {
		t.Fatalf("phase-1 load moved no traffic: %+v", done.res)
	}
	if done.res.ClientErrors != 0 || done.res.ServerErrors != 0 || done.res.NetErrors != 0 || done.res.Shed != 0 {
		t.Fatalf("center kill leaked to clients: client=%d server=%d net=%d shed=%d",
			done.res.ClientErrors, done.res.ServerErrors, done.res.NetErrors, done.res.Shed)
	}
	if done.res.PerOp["ingest"].OK == 0 {
		t.Fatalf("phase-1 never exercised ingest: %+v", done.res.PerOp)
	}

	// Phase 2 — ingest a marker dataset, drain replication to the
	// primary's acked version, then kill the primary under search-only
	// load. The replica takes over with the exact acked history, so the
	// marker must be visible on the very next read — no stale reads.
	fixed := gateway.SearchRequest{Points: cellPoints(grid, alphaNodes[0]), K: 8}
	const freshID = 888_888
	ing := map[string]any{"source": "alpha", "id": freshID, "name": "cluster-fresh", "points": fixed.Points}
	if code := soakPost(t, hs.URL+"/ingest/dataset", ing, nil); code != http.StatusOK {
		t.Fatalf("pre-kill ingest = %d", code)
	}
	for deadline := time.Now().Add(5 * time.Second); replicaSt.Version() < primarySt.Version(); {
		if time.Now().After(deadline) {
			t.Fatalf("replica never drained: replica at %d, primary at %d", replicaSt.Version(), primarySt.Version())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resCh2 := make(chan loadDone, 1)
	go func() {
		res, err := load.Run(ctx, load.Options{
			Target:   hs.URL,
			Mode:     "closed",
			Clients:  4,
			Duration: 1200 * time.Millisecond,
			Mix:      load.Mix{Overlap: 0.65, Coverage: 0.2, Batch: 0.15},
			K:        5, PointsPerQuery: 6,
			Bounds:   [4]float64{0, 0, soakSide, soakSide},
			Seed:     44,
			ClientID: "cluster-soak-2",
		})
		resCh2 <- loadDone{res, err}
	}()
	time.Sleep(300 * time.Millisecond)
	tsAlpha.Close() // kill the replicated source's primary mid-load

	var after gateway.OverlapResponse
	if code := soakPost(t, hs.URL+"/search/overlap", fixed, &after); code != http.StatusOK {
		t.Fatalf("first query after source kill = %d, want 200 (replica takeover)", code)
	}
	found := false
	for _, r := range after.Results {
		if r.Source == "alpha" && r.ID == freshID {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale read after replica takeover: dataset %d absent from %+v", freshID, after.Results)
	}

	done2 := <-resCh2
	if done2.err != nil {
		t.Fatalf("phase-2 load: %v", done2.err)
	}
	if done2.res.Sent == 0 || done2.res.OK == 0 {
		t.Fatalf("phase-2 load moved no traffic: %+v", done2.res)
	}
	if done2.res.ClientErrors != 0 || done2.res.ServerErrors != 0 || done2.res.NetErrors != 0 || done2.res.Shed != 0 {
		t.Fatalf("source kill leaked to clients: client=%d server=%d net=%d shed=%d",
			done2.res.ClientErrors, done2.res.ServerErrors, done2.res.NetErrors, done2.res.Shed)
	}

	// A write to the dead primary must fail loudly (the replica refuses
	// local mutations); reads keep working regardless.
	ing["id"] = freshID + 1
	if code := soakPost(t, hs.URL+"/ingest/dataset", ing, nil); code == http.StatusOK {
		t.Fatal("write to a dead primary succeeded; replicas must not accept mutations")
	}
	if code := soakPost(t, hs.URL+"/search/overlap", fixed, &after); code != http.StatusOK {
		t.Fatalf("read after rejected write = %d, want 200", code)
	}

	// Parity: the degraded plane (one center down, alpha on its replica)
	// must still answer byte-identically to a single-center oracle over
	// the same live indexes.
	oracle := federation.NewCenter(grid, federation.Options{GlobalFilter: true, ClipQuery: true, Sessions: true})
	for name, srv := range map[string]*federation.SourceServer{
		"alpha": replicaSrv, "bravo": staticSrvs["bravo"], "charlie": staticSrvs["charlie"],
	} {
		oracle.Register(srv.Summary(), &transport.InProc{Name: name, Handler: srv.Handler(), Metrics: oracle.Metrics})
	}
	queries := append(append([]*dataset.Node{}, alphaNodes[:4]...), staticNodes[:4]...)
	for i, nd := range queries {
		q := nd.Cells
		want, err := oracle.OverlapSearch(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cluster.OverlapSearch(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("parity query %d: %d results, oracle %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("parity query %d result %d: %+v, oracle %+v", i, j, got[j], want[j])
			}
		}
		wantCov, err := oracle.CoverageSearch(ctx, q, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotCov, err := cluster.CoverageSearch(ctx, q, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if gotCov.Coverage != wantCov.Coverage || len(gotCov.Picked) != len(wantCov.Picked) {
			t.Fatalf("parity coverage %d: %d (%d picks), oracle %d (%d picks)",
				i, gotCov.Coverage, len(gotCov.Picked), wantCov.Coverage, len(wantCov.Picked))
		}
		for j := range gotCov.Picked {
			if gotCov.Picked[j] != wantCov.Picked[j] {
				t.Fatalf("parity coverage %d pick %d: %+v, oracle %+v", i, j, gotCov.Picked[j], wantCov.Picked[j])
			}
		}
	}
}
