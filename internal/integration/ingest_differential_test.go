package integration

import (
	"context"
	"reflect"
	"testing"

	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/exec"
	"dits/internal/search/overlap"
	"dits/internal/workload"
)

// TestMutatedIndexSearchersMatchRebuild is the ingest differential test:
// after every checkpoint of a random Insert/Delete/Update interleaving on
// a live dits.Local, EVERY searcher — sequential OJSP, the parallel
// executor, the batched executor, and CJSP (sequential and the parallel
// connect/pick components) — must return byte-identical results to a
// fresh Build over the surviving datasets. This is the property that
// makes the durable write path trustworthy: an incrementally maintained
// index is indistinguishable, by answers, from a rebuilt one.
func TestMutatedIndexSearchersMatchRebuild(t *testing.T) {
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Generate(spec, 0.04, 11)
	g := geo.NewGrid(12, src.Bounds())
	live := dits.Build(g, src.Nodes(g), 8)

	surviving := map[int]*dataset.Node{}
	for _, nd := range src.Nodes(g) {
		surviving[nd.ID] = nd
	}

	// The mutation stream comes from the same generator datagen -updates
	// uses, so this test also pins the trace format's applicability.
	trace := workload.GenerateTrace([]*dataset.Source{src}, 120, 21)
	queries := sampleQueryNodes(t, g, src, 12)

	checkpoint := func(t *testing.T, step int) {
		if err := live.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rebuilt := dits.Build(g, nodesOf(surviving), 8)
		seqLive := &overlap.DITSSearcher{Index: live}
		seqRebuilt := &overlap.DITSSearcher{Index: rebuilt}
		ex := &exec.Executor{Workers: 4}
		ctx := context.Background()

		batch := make([]exec.BatchQuery, len(queries))
		for i, q := range queries {
			batch[i] = exec.BatchQuery{Q: q, K: 7}
		}
		batchLive, err := ex.OverlapTopKBatch(ctx, live, batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			want := seqRebuilt.TopK(q, 7)
			if got := seqLive.TopK(q, 7); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d query %d: sequential OJSP diverged from rebuild\n got %v\nwant %v", step, i, got, want)
			}
			par, err := ex.OverlapTopK(ctx, live, q, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(par, want) {
				t.Fatalf("step %d query %d: parallel OJSP diverged from rebuild", step, i)
			}
			if !reflect.DeepEqual(batchLive[i], want) {
				t.Fatalf("step %d query %d: batched OJSP diverged from rebuild", step, i)
			}

			// CJSP: greedy picks, gains, and coverage totals must agree.
			covLive := (&coverage.DITSSearcher{Index: live}).Search(q, 6, 4)
			covRebuilt := (&coverage.DITSSearcher{Index: rebuilt}).Search(q, 6, 4)
			if !reflect.DeepEqual(covLive.IDs(), covRebuilt.IDs()) ||
				covLive.Coverage != covRebuilt.Coverage ||
				covLive.QueryCoverage != covRebuilt.QueryCoverage {
				t.Fatalf("step %d query %d: CJSP diverged from rebuild: %v/%d vs %v/%d",
					step, i, covLive.IDs(), covLive.Coverage, covRebuilt.IDs(), covRebuilt.Coverage)
			}

			// The parallel CJSP component the federation uses: on the SAME
			// tree it must reproduce the sequential walk exactly; against
			// the rebuilt tree (a different shape, hence a different
			// traversal order) the connected SET must match.
			seqConn := coverage.FindConnectSetWithIndex(live.Root, q, 6, cellset.NewDistIndex(q.Cells, 6))
			parConn := ex.FindConnectSet(ctx, live.Root, q, 6, cellset.NewDistIndex(q.Cells, 6))
			if !sameIDs(parConn, seqConn) {
				t.Fatalf("step %d query %d: parallel FindConnectSet diverged from sequential", step, i)
			}
			rebuiltConn := coverage.FindConnectSetWithIndex(rebuilt.Root, q, 6, cellset.NewDistIndex(q.Cells, 6))
			if !sameIDSet(parConn, rebuiltConn) {
				t.Fatalf("step %d query %d: connect set diverged from rebuild", step, i)
			}
		}
	}

	checkpoint(t, 0)
	for step, m := range trace {
		switch m.Op {
		case workload.MutDelete:
			if err := live.Delete(m.ID); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			delete(surviving, m.ID)
		case workload.MutPut:
			pts := make([]geo.Point, len(m.Points))
			for i, p := range m.Points {
				pts[i] = geo.Point{X: p[0], Y: p[1]}
			}
			nd := dataset.NewNodeFromCells(m.ID, m.Name, cellset.FromPoints(g, pts))
			if nd == nil {
				continue
			}
			if live.Get(m.ID) != nil {
				if err := live.Update(nd); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			} else if err := live.Insert(nd); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			surviving[m.ID] = nd
		}
		if step == 20 || step == 60 || step == len(trace)-1 {
			checkpoint(t, step+1)
		}
	}
}

// sampleQueryNodes grids q sampled datasets into query nodes.
func sampleQueryNodes(t *testing.T, g geo.Grid, src *dataset.Source, q int) []*dataset.Node {
	t.Helper()
	var out []*dataset.Node
	for _, d := range workload.SampleQueries(src, q, 17) {
		nd := dataset.NewNode(g, d)
		if nd == nil {
			continue
		}
		nd.ID = -1
		out = append(out, nd)
	}
	if len(out) == 0 {
		t.Fatal("no query nodes sampled")
	}
	return out
}

// sameIDs compares two node slices by dataset ID, order-sensitive.
func sameIDs(a, b []*dataset.Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// sameIDSet compares two node slices by dataset ID, order-insensitive.
func sameIDSet(a, b []*dataset.Node) bool {
	if len(a) != len(b) {
		return false
	}
	ids := make(map[int]bool, len(a))
	for _, n := range a {
		ids[n.ID] = true
	}
	for _, n := range b {
		if !ids[n.ID] {
			return false
		}
	}
	return true
}
