// Package integration exercises the full stack end to end: workload
// generation -> gridding -> DITS indexes -> searches -> live updates ->
// federation over both transports. Where unit tests pin down one module,
// these tests pin down the joints between them.
package integration

import (
	"context"
	"math/rand"
	"testing"

	"dits/internal/cellset"
	"dits/internal/core"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/search/coverage"
	"dits/internal/search/overlap"
	"dits/internal/transport"
	"dits/internal/workload"
)

// TestSearchAfterMutationsMatchesRebuild: a long random mutation sequence
// applied to a live engine must leave it answering exactly like an index
// built from scratch over the surviving datasets.
func TestSearchAfterMutationsMatchesRebuild(t *testing.T) {
	spec, err := workload.SpecByName("Transit")
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Generate(spec, 0.05, 3)
	g := geo.NewGrid(12, src.Bounds())
	live := dits.Build(g, src.Nodes(g), 10)

	rng := rand.New(rand.NewSource(4))
	surviving := map[int]*dataset.Node{}
	for _, nd := range src.Nodes(g) {
		surviving[nd.ID] = nd
	}
	extra := workload.Generate(spec, 0.05, 99) // donor pool for inserts/updates
	for step := 0; step < 150; step++ {
		donor := dataset.NewNode(g, extra.Datasets[rng.Intn(len(extra.Datasets))])
		if donor == nil {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			donor.ID = 10_000 + step
			if err := live.Insert(donor); err != nil {
				t.Fatal(err)
			}
			surviving[donor.ID] = donor
		case 1:
			if len(surviving) == 0 {
				continue
			}
			id := anyKey(rng, surviving)
			if err := live.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(surviving, id)
		default:
			if len(surviving) == 0 {
				continue
			}
			donor.ID = anyKey(rng, surviving)
			if err := live.Update(donor); err != nil {
				t.Fatal(err)
			}
			surviving[donor.ID] = donor
		}
	}
	if err := live.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	rebuilt := dits.Build(g, nodesOf(surviving), 10)
	liveS := &overlap.DITSSearcher{Index: live}
	rebuiltS := &overlap.DITSSearcher{Index: rebuilt}
	liveC := &coverage.DITSSearcher{Index: live}
	rebuiltC := &coverage.DITSSearcher{Index: rebuilt}

	for trial := 0; trial < 25; trial++ {
		q := dataset.NewNode(g, extra.Datasets[rng.Intn(len(extra.Datasets))])
		if q == nil {
			continue
		}
		q.ID = -1
		a := liveS.TopK(q, 8)
		b := rebuiltS.TopK(q, 8)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d overlap results", trial, len(a), len(b))
		}
		for i := range a {
			if a[i].Overlap != b[i].Overlap {
				t.Fatalf("trial %d: overlap rank %d: %d vs %d", trial, i, a[i].Overlap, b[i].Overlap)
			}
		}
		ca := liveC.Search(q, 5, 4)
		cb := rebuiltC.Search(q, 5, 4)
		if ca.Coverage != cb.Coverage {
			t.Fatalf("trial %d: coverage %d vs %d", trial, ca.Coverage, cb.Coverage)
		}
	}
}

// TestFederationSurvivesSourceChurn: unregistering a source must remove its
// datasets from results; re-registering restores them.
func TestFederationSourceChurn(t *testing.T) {
	g := geo.NewGrid(10, geo.Rect{MinX: 0, MinY: 0, MaxX: 1024, MaxY: 1024})
	center := federation.NewCenter(g, federation.DefaultOptions())

	mk := func(name string, baseX uint32) *federation.SourceServer {
		var nodes []*dataset.Node
		for i := 0; i < 20; i++ {
			nodes = append(nodes, dataset.NewNodeFromCells(i, name,
				cellset.New(geo.ZEncode(baseX+uint32(i), 5), geo.ZEncode(baseX+uint32(i), 6))))
		}
		return federation.NewSourceServerWithGrid(name, dits.Build(g, nodes, 5))
	}
	a := mk("a", 0)
	b := mk("b", 3)
	reg := func(s *federation.SourceServer) {
		center.Register(s.Summary(), &transport.InProc{
			Name: s.Name, Handler: s.Handler(), Metrics: center.Metrics,
			Codec: federation.BinaryCodec,
		})
	}
	reg(a)
	reg(b)

	q := cellset.New(geo.ZEncode(4, 5), geo.ZEncode(5, 5))
	rs, err := center.OverlapSearch(context.Background(), q, 50)
	if err != nil {
		t.Fatal(err)
	}
	both := map[string]bool{}
	for _, r := range rs {
		both[r.Source] = true
	}
	if !both["a"] || !both["b"] {
		t.Fatalf("expected results from both sources, got %v", rs)
	}

	center.Unregister("b")
	rs, err = center.OverlapSearch(context.Background(), q, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Source == "b" {
			t.Fatal("unregistered source still answering")
		}
	}

	reg(b)
	rs, err = center.OverlapSearch(context.Background(), q, 50)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Source == "b" {
			found = true
		}
	}
	if !found {
		t.Fatal("re-registered source missing from results")
	}
}

// TestCoreFederationAgainstSingleEngine: a federation of disjoint slices of
// one source must answer like an engine over the whole source (same grid).
func TestCoreFederationAgainstSingleEngine(t *testing.T) {
	spec, err := workload.SpecByName("Baidu")
	if err != nil {
		t.Fatal(err)
	}
	whole := workload.Generate(spec, 0.03, 8)
	bounds := whole.Bounds()

	// Split into three sources by dataset index.
	parts := make([]*dataset.Source, 3)
	for i := range parts {
		parts[i] = &dataset.Source{Name: string(rune('a' + i))}
	}
	for i, d := range whole.Datasets {
		parts[i%3].Datasets = append(parts[i%3].Datasets, d)
	}

	cfg := core.Config{Theta: 12, Bounds: bounds}
	eng, err := core.NewEngine(whole, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := core.NewFederation(parts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		q := whole.Datasets[rng.Intn(len(whole.Datasets))].Points
		want := eng.OverlapSearch(q, 10)
		got, err := fed.OverlapSearch(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if want[i].Score != got[i].Score {
				t.Fatalf("trial %d rank %d: score %d vs %d", trial, i, got[i].Score, want[i].Score)
			}
		}
		wc := eng.CoverageSearch(q, 5, 5)
		gc, err := fed.CoverageSearch(q, 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		if wc.Coverage != gc.Coverage {
			t.Fatalf("trial %d: coverage %d vs %d", trial, gc.Coverage, wc.Coverage)
		}
	}
}

func nodesOf(m map[int]*dataset.Node) []*dataset.Node {
	out := make([]*dataset.Node, 0, len(m))
	for _, nd := range m {
		out = append(out, nd)
	}
	dataset.SortByID(out)
	return out
}

func anyKey(rng *rand.Rand, m map[int]*dataset.Node) int {
	n := rng.Intn(len(m))
	for id := range m {
		if n == 0 {
			return id
		}
		n--
	}
	panic("unreachable")
}
