package integration

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dits/internal/admission"
	"dits/internal/cache"
	"dits/internal/cellset"
	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/ingest"
	"dits/internal/load"
	"dits/internal/transport"
)

// The soak world is split down the middle so queries can be aimed at one
// source: alpha (mutable, WAL-backed) owns the left half, bravo (the
// chaos victim) owns the right half.
const (
	soakTheta = 7
	soakSide  = float64(int64(1) << soakTheta)
)

// soakNodes generates clustered datasets confined to x in [xlo, xhi).
func soakNodes(rng *rand.Rand, idBase int, xlo, xhi int) []*dataset.Node {
	var nodes []*dataset.Node
	span := xhi - xlo
	for i := 0; i < 40; i++ {
		cx := xlo + rng.Intn(span)
		cy := rng.Intn(1 << soakTheta)
		var ids []uint64
		for j := 0; j < 1+rng.Intn(6); j++ {
			x := min(max(cx+rng.Intn(5), xlo), xhi-1)
			y := min(cy+rng.Intn(5), 1<<soakTheta-1)
			ids = append(ids, geo.ZEncode(uint32(x), uint32(y)))
		}
		nodes = append(nodes, dataset.NewNodeFromCells(idBase+i, fmt.Sprintf("soak-%d", idBase+i), cellset.New(ids...)))
	}
	return nodes
}

// cellPoints turns a node's cells into gateway query points.
func cellPoints(g geo.Grid, nd *dataset.Node) [][2]float64 {
	var pts [][2]float64
	for _, c := range nd.Cells {
		p := g.CellCenter(c)
		pts = append(pts, [2]float64{p.X, p.Y})
	}
	return pts
}

// soakPost POSTs JSON and decodes the response, returning the status.
func soakPost(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestSoakKillAndRestartSourceUnderLoad is the chaos soak: sustained mixed
// search+ingest load against a two-source TCP federation while one source
// is killed and later restarted at the same address. It pins the full
// degradation story: queries keep answering during the outage (SkipFailed),
// the failure counters tick, /metrics exposes every subsystem mid-incident,
// the source is picked back up after restart, and a post-recovery mutation
// is visible on the very next query — no stale cache reads.
func TestSoakKillAndRestartSourceUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("soak drives sustained load over real TCP; not short")
	}
	grid := geo.NewGrid(soakTheta, geo.Rect{MinX: 0, MinY: 0, MaxX: soakSide, MaxY: soakSide})
	center := federation.NewCenter(grid, federation.Options{
		GlobalFilter: true, ClipQuery: true, Sessions: true,
		OnSourceError: federation.SkipFailed,
	})
	center.SetCache(cache.New(1024))

	// alpha: mutable, durable, left half. Survives the whole soak and
	// absorbs the ingest traffic.
	alphaNodes := soakNodes(rand.New(rand.NewSource(1)), 0, 2, 58)
	store, err := ingest.Open(t.TempDir(), ingest.Options{
		Fsync:     ingest.FsyncNever,
		Bootstrap: func() (*dits.Local, error) { return dits.Build(grid, alphaNodes, 8), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	alphaSrv := federation.NewSourceServerWithGrid("alpha", store.Index())
	alphaSrv.EnableIngest(store)
	tsA, err := transport.Serve("127.0.0.1:0", alphaSrv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer tsA.Close()
	poolA := transport.DialPool("alpha", tsA.Addr(), 4, center.Metrics)
	defer poolA.Close()
	if _, err := center.RegisterRemote(context.Background(), poolA); err != nil {
		t.Fatal(err)
	}

	// bravo: static, right half — the chaos victim.
	bravoNodes := soakNodes(rand.New(rand.NewSource(2)), 1000, 68, 126)
	bravoSrv := federation.NewSourceServerWithGrid("bravo", dits.Build(grid, bravoNodes, 8))
	tsB, err := transport.Serve("127.0.0.1:0", bravoSrv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	bravoAddr := tsB.Addr()
	poolB := transport.DialPool("bravo", bravoAddr, 4, center.Metrics)
	defer poolB.Close()
	if _, err := center.RegisterRemote(context.Background(), poolB); err != nil {
		t.Fatal(err)
	}

	gw := gateway.NewWithOptions(center, gateway.Options{
		Admission: admission.Config{Rate: 5000, Burst: 1000, Deadline: 5 * time.Second},
	})
	store.Register(gw.Registry())
	hs := httptest.NewServer(gw.Handler())
	defer hs.Close()

	// Background soak load: mixed searches, batches, and ingest upserts
	// into alpha, running across the kill and the restart.
	type loadDone struct {
		res load.Result
		err error
	}
	resCh := make(chan loadDone, 1)
	go func() {
		res, err := load.Run(context.Background(), load.Options{
			Target:   hs.URL,
			Mode:     "closed",
			Clients:  4,
			Duration: 2200 * time.Millisecond,
			Mix:      load.Mix{Overlap: 0.55, Coverage: 0.2, Batch: 0.1, Ingest: 0.15},
			K:        5, PointsPerQuery: 6,
			Bounds:       [4]float64{0, 0, soakSide, soakSide},
			IngestSource: "alpha",
			IngestIDs:    64,
			Seed:         42,
			ClientID:     "soak",
		})
		resCh <- loadDone{res, err}
	}()

	// Phase 1 — healthy: let the load flow through both sources.
	time.Sleep(300 * time.Millisecond)
	if n := center.Metrics.TotalFailures(); n != 0 {
		t.Fatalf("healthy phase already recorded %d source failures", n)
	}

	// Phase 2 — kill bravo mid-load.
	tsB.Close()
	bravoQuery := gateway.SearchRequest{Points: cellPoints(grid, bravoNodes[0]), K: 8}
	alphaQuery := gateway.SearchRequest{Points: cellPoints(grid, alphaNodes[0]), K: 8}
	for i := 0; i < 5; i++ {
		// Vary k so each probe misses the cache and must touch the fan-out
		// path; degraded answers are never cached.
		q := bravoQuery
		q.K = 8 + i
		var resp gateway.OverlapResponse
		if code := soakPost(t, hs.URL+"/search/overlap", q, &resp); code != http.StatusOK {
			t.Fatalf("query during outage = %d, want 200 (SkipFailed degradation)", code)
		}
		for _, r := range resp.Results {
			if r.Source == "bravo" {
				t.Fatalf("dead source answered: %+v", r)
			}
		}
	}
	var resp gateway.OverlapResponse
	if code := soakPost(t, hs.URL+"/search/overlap", alphaQuery, &resp); code != http.StatusOK || len(resp.Results) == 0 {
		t.Fatalf("surviving source must keep answering during outage: code=%d results=%d", code, len(resp.Results))
	}
	if n := center.Metrics.Failures()["bravo"]; n == 0 {
		t.Fatal("outage recorded no failures for bravo")
	}

	// Mid-incident /metrics scrape: every subsystem must be on the page
	// while the federation is degraded.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	exposition := string(mb)
	for _, want := range []string{
		"dits_transport_messages_total",
		`dits_transport_source_failures_total{source="bravo"}`,
		"dits_cache_hits_total",
		"dits_cache_entries",
		"dits_ingest_mutations_total",
		"dits_ingest_wal_bytes",
		"dits_admission_admitted_total",
		"dits_gateway_request_seconds_bucket",
		"dits_gateway_sources 2",
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics during outage missing %q", want)
		}
	}

	// Phase 3 — restart bravo at its old address. The port was just
	// released; retry briefly in case the OS is slow to return it.
	var tsB2 *transport.Server
	for deadline := time.Now().Add(3 * time.Second); ; {
		tsB2, err = transport.Serve(bravoAddr, bravoSrv.Handler())
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart bravo on %s: %v", bravoAddr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	defer tsB2.Close()

	// The pool redials on demand, so recovery needs no re-registration —
	// poll until a fresh query is answered by bravo again.
	recovered := false
	for i := 0; !recovered && i < 100; i++ {
		q := bravoQuery
		q.K = 20 + i // fresh cache key per probe
		var resp gateway.OverlapResponse
		if code := soakPost(t, hs.URL+"/search/overlap", q, &resp); code == http.StatusOK {
			for _, r := range resp.Results {
				if r.Source == "bravo" {
					recovered = true
					break
				}
			}
		}
		if !recovered {
			time.Sleep(30 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatal("bravo never served results after restart")
	}

	// Phase 4 — no stale cache reads after recovery: cache the answer to a
	// fixed query, mutate alpha so the answer must change, and require the
	// very next read to see the mutation. The cache key embeds each
	// source's data version, so the pre-mutation entry must miss.
	fixed := alphaQuery
	var before gateway.OverlapResponse
	if code := soakPost(t, hs.URL+"/search/overlap", fixed, &before); code != http.StatusOK {
		t.Fatalf("pre-mutation query = %d", code)
	}
	const freshID = 777_777
	ing := map[string]any{"source": "alpha", "id": freshID, "name": "soak-fresh", "points": fixed.Points}
	if code := soakPost(t, hs.URL+"/ingest/dataset", ing, nil); code != http.StatusOK {
		t.Fatalf("post-recovery ingest = %d", code)
	}
	var after gateway.OverlapResponse
	if code := soakPost(t, hs.URL+"/search/overlap", fixed, &after); code != http.StatusOK {
		t.Fatalf("post-mutation query = %d", code)
	}
	found := false
	for _, r := range after.Results {
		if r.Source == "alpha" && r.ID == freshID {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale cache read: freshly ingested dataset %d absent from %+v", freshID, after.Results)
	}

	// Phase 5 — the soak itself must have been clean: traffic flowed the
	// whole time and nothing but the killed source's skipped fan-outs went
	// wrong (SkipFailed turns those into degraded 200s, not errors).
	done := <-resCh
	if done.err != nil {
		t.Fatalf("background load: %v", done.err)
	}
	res := done.res
	if res.Sent == 0 || res.OK == 0 {
		t.Fatalf("background load moved no traffic: %+v", res)
	}
	if res.ClientErrors != 0 || res.ServerErrors != 0 || res.NetErrors != 0 || res.Shed != 0 {
		t.Fatalf("soak load saw errors: client=%d server=%d net=%d shed=%d",
			res.ClientErrors, res.ServerErrors, res.NetErrors, res.Shed)
	}
	if res.PerOp["ingest"].OK == 0 {
		t.Fatalf("soak never exercised ingest: %+v", res.PerOp)
	}
}
