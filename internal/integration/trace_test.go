package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dits/internal/dataset"
	"dits/internal/federation"
	"dits/internal/gateway"
	"dits/internal/geo"
	"dits/internal/index/dits"
	"dits/internal/obs"
	"dits/internal/transport"
)

// tracedPost POSTs JSON and returns the status, the raw response body, and
// the gateway-assigned trace ID.
func tracedPost(t *testing.T, url string, body any) (int, []byte, string) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header.Get("X-Dits-Trace-Id")
}

// fetchTrace pulls one trace's span tree from GET /debug/traces/{id}.
func fetchTrace(t *testing.T, base, id string) obs.TraceDetail {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /debug/traces/%s = %d: %s", id, resp.StatusCode, body)
	}
	var detail obs.TraceDetail
	if err := json.NewDecoder(resp.Body).Decode(&detail); err != nil {
		t.Fatal(err)
	}
	return detail
}

// stripTook normalizes a response body for differential comparison by
// deleting the tookMs wall-clock field — the only part of an answer that
// legitimately varies between identical federations.
func stripTook(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("parse response %s: %v", body, err)
	}
	delete(m, "tookMs")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// flattenTree collects every span node of a tree, depth first.
func flattenTree(nodes []*obs.SpanNode) []*obs.SpanNode {
	var out []*obs.SpanNode
	for _, n := range nodes {
		out = append(out, n)
		out = append(out, flattenTree(n.Children)...)
	}
	return out
}

// TestClusterFailoverSingleTrace is the tracing acceptance path: a query
// through a two-center clustered gateway trips over a freshly killed
// center, fails over in-band, and still answers 200 — and the ONE trace
// behind that response, fetched over GET /debug/traces/{id}, shows the
// failed RPC, the failover.rehome, and the retried RPC under a single
// trace ID.
func TestClusterFailoverSingleTrace(t *testing.T) {
	grid := geo.NewGrid(soakTheta, geo.Rect{MinX: 0, MinY: 0, MaxX: soakSide, MaxY: soakSide})

	// Two sources over real TCP.
	sourceAddr := make(map[string]string, 2)
	var probeNode *dataset.Node
	for _, spec := range []struct {
		name   string
		lo, hi int
		idBase int
		seed   int64
	}{
		{"alpha", 2, 60, 0, 21},
		{"bravo", 60, 126, 1000, 22},
	} {
		nodes := soakNodes(rand.New(rand.NewSource(spec.seed)), spec.idBase, spec.lo, spec.hi)
		if probeNode == nil {
			probeNode = nodes[0]
		}
		srv := federation.NewSourceServerWithGrid(spec.name, dits.Build(grid, nodes, 8))
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		sourceAddr[spec.name] = ts.Addr()
	}

	// Two centers over real TCP.
	met := &transport.Metrics{}
	peers := make(map[string]transport.Peer, 2)
	centerTS := make(map[string]*transport.Server, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("center-%d", i)
		c := federation.NewCenter(grid, federation.Options{GlobalFilter: true, ClipQuery: true, Sessions: true})
		cs, err := federation.NewCenterServer(name, c, federation.CenterServerOptions{PoolSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer cs.Close()
		ts, err := transport.Serve("127.0.0.1:0", cs.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		centerTS[name] = ts
		peers[name] = transport.DialPool(name, ts.Addr(), 2, met)
	}
	cluster := federation.NewCluster(grid, peers)
	cluster.Metrics = met
	defer cluster.Close()
	for name, addr := range sourceAddr {
		if err := cluster.AddSource(t.Context(), federation.ClusterSource{Name: name, Addr: addr}); err != nil {
			t.Fatal(err)
		}
	}

	gw := gateway.NewCluster(cluster, gateway.Options{})
	hs := httptest.NewServer(gw.Handler())
	defer hs.Close()

	// Kill the center that owns at least one source, so the failover has a
	// shard to re-home. The gateway has NOT probed: the very next query
	// discovers the corpse mid-flight.
	victim := ""
	for name, srcs := range cluster.Shards() {
		if len(srcs) > 0 {
			victim = name
			break
		}
	}
	if victim == "" {
		t.Fatal("no center owns a source")
	}
	centerTS[victim].Close()

	req := gateway.SearchRequest{Points: cellPoints(grid, probeNode), K: 5}
	code, body, traceID := tracedPost(t, hs.URL+"/search/overlap", req)
	if code != http.StatusOK {
		t.Fatalf("query across center kill = %d: %s", code, body)
	}
	if traceID == "" {
		t.Fatal("response carries no X-Dits-Trace-Id header")
	}

	detail := fetchTrace(t, hs.URL, traceID)
	if detail.Root != "http.overlap" {
		t.Errorf("trace root = %q, want http.overlap", detail.Root)
	}
	var failedRPC, rehome, retriedRPC *obs.SpanNode
	for _, n := range flattenTree(detail.Tree) {
		switch {
		case n.Name == "rpc:"+federation.MethodClusterOverlap && n.Err != "":
			failedRPC = n
		case n.Name == "failover.rehome":
			rehome = n
		case n.Name == "rpc:"+federation.MethodClusterOverlap && n.Err == "":
			retriedRPC = n
		}
	}
	if failedRPC == nil {
		t.Error("trace has no failed rpc:cluster.overlap span")
	}
	if rehome == nil {
		t.Error("trace has no failover.rehome span")
	} else if rehome.Source != victim {
		t.Errorf("failover.rehome source = %q, want the killed center %q", rehome.Source, victim)
	}
	if retriedRPC == nil {
		t.Error("trace has no successful retried rpc:cluster.overlap span")
	}
	if failedRPC != nil && failedRPC.Source != victim {
		t.Errorf("failed rpc source = %q, want %q", failedRPC.Source, victim)
	}

	// The same incident must be visible in the listing too.
	resp, err := http.Get(hs.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range listing.Traces {
		if s.ID == traceID {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s not in GET /debug/traces listing", traceID)
	}
}

// TestTracedDifferentialAcrossCodecs queries three federations over the
// same sources — all-gob, all dits-bin/1, and a mixed plane where one
// source is dialed as a legacy pre-negotiation peer — and requires
// byte-identical answers from all three. The traced mixed federation must
// mark where visibility ends: the legacy peer's RPCs carry an explicit
// "untraced" span, while the fully negotiated federation has none.
func TestTracedDifferentialAcrossCodecs(t *testing.T) {
	grid := geo.NewGrid(soakTheta, geo.Rect{MinX: 0, MinY: 0, MaxX: soakSide, MaxY: soakSide})

	type sourceSpec struct {
		name string
		addr string
	}
	var sources []sourceSpec
	var queryNodes []*dataset.Node
	for _, spec := range []struct {
		name   string
		lo, hi int
		idBase int
		seed   int64
	}{
		{"alpha", 2, 60, 0, 31},
		{"bravo", 60, 126, 1000, 32},
	} {
		nodes := soakNodes(rand.New(rand.NewSource(spec.seed)), spec.idBase, spec.lo, spec.hi)
		queryNodes = append(queryNodes, nodes[0], nodes[len(nodes)/2])
		srv := federation.NewSourceServerWithGrid(spec.name, dits.Build(grid, nodes, 8))
		ts, err := transport.Serve("127.0.0.1:0", srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		defer ts.Close()
		sources = append(sources, sourceSpec{name: spec.name, addr: ts.Addr()})
	}

	legacySource := sources[0].name
	federations := []struct {
		name string
		dial func(i int) transport.DialConfig
	}{
		{"gob", func(int) transport.DialConfig { return transport.DialConfig{Codec: "gob"} }},
		{"binary", func(int) transport.DialConfig { return transport.DialConfig{Codec: federation.BinaryCodecName} }},
		{"mixed-legacy", func(i int) transport.DialConfig {
			if i == 0 {
				return transport.DialConfig{NoNegotiate: true}
			}
			return transport.DialConfig{}
		}},
	}

	type answer struct {
		fed  string
		body string
	}
	// answers[q] collects each federation's raw response to query q.
	var answers [][]answer
	traceIDs := make(map[string][]string, len(federations))
	gatewayURL := make(map[string]string, len(federations))

	for _, fed := range federations {
		center := federation.NewCenter(grid, federation.Options{
			GlobalFilter: true, ClipQuery: true, Sessions: true,
		})
		for i, src := range sources {
			pool := transport.DialPoolWith(src.name, src.addr, 2, center.Metrics, fed.dial(i))
			defer pool.Close()
			if _, err := center.RegisterRemote(t.Context(), pool); err != nil {
				t.Fatalf("federation %s: register %s: %v", fed.name, src.name, err)
			}
		}
		gw := gateway.NewWithOptions(center, gateway.Options{})
		hs := httptest.NewServer(gw.Handler())
		defer hs.Close()
		gatewayURL[fed.name] = hs.URL

		for qi, nd := range queryNodes {
			delta := 6.0
			for pi, probe := range []struct {
				path string
				req  gateway.SearchRequest
			}{
				{"/search/overlap", gateway.SearchRequest{Points: cellPoints(grid, nd), K: 4}},
				{"/search/coverage", gateway.SearchRequest{Points: cellPoints(grid, nd), K: 3, Delta: &delta}},
			} {
				code, body, traceID := tracedPost(t, hs.URL+probe.path, probe.req)
				if code != http.StatusOK {
					t.Fatalf("federation %s: %s = %d: %s", fed.name, probe.path, code, body)
				}
				if traceID == "" {
					t.Fatalf("federation %s: %s carries no trace ID", fed.name, probe.path)
				}
				idx := qi*2 + pi
				for len(answers) <= idx {
					answers = append(answers, nil)
				}
				answers[idx] = append(answers[idx], answer{fed: fed.name, body: stripTook(t, body)})
				traceIDs[fed.name] = append(traceIDs[fed.name], traceID)
			}
		}
	}

	for qi, byFed := range answers {
		for _, a := range byFed[1:] {
			if a.body != byFed[0].body {
				t.Errorf("query %d: federation %s answered differently from %s:\n%s\nvs\n%s",
					qi, a.fed, byFed[0].fed, a.body, byFed[0].body)
			}
		}
	}

	// The mixed federation's traces mark the legacy peer explicitly.
	sawUntraced := false
	for _, id := range traceIDs["mixed-legacy"] {
		detail := fetchTrace(t, gatewayURL["mixed-legacy"], id)
		for _, n := range flattenTree(detail.Tree) {
			if n.Name == "untraced" {
				sawUntraced = true
				if n.Source != legacySource {
					t.Errorf("untraced marker names source %q, want %q", n.Source, legacySource)
				}
				if strings.HasPrefix(n.Name, "serve:") {
					t.Error("legacy peer must not ship serve spans")
				}
			}
		}
	}
	if !sawUntraced {
		t.Error("mixed federation recorded no untraced marker for the legacy peer")
	}

	// The fully negotiated federation has no visibility gap: no untraced
	// markers, and the sources' serve-side spans come back into the trace.
	sawRemote := false
	for _, id := range traceIDs["binary"] {
		detail := fetchTrace(t, gatewayURL["binary"], id)
		for _, n := range flattenTree(detail.Tree) {
			if n.Name == "untraced" {
				t.Error("negotiated federation recorded an untraced marker")
			}
			if n.Remote {
				sawRemote = true
			}
		}
	}
	if !sawRemote {
		t.Error("negotiated federation's traces contain no remote (source-side) spans")
	}
}
