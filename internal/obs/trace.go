// Package obs is the zero-dependency tracing and structured-logging layer
// of the federation: Dapper-style traces with 128-bit IDs, per-stage spans
// recorded into a lock-free buffer, context propagation across goroutines
// and (via internal/transport's negotiated trace frames) across machines,
// and an always-on ring buffer of completed traces with slow-query capture
// (recorder.go) served at GET /debug/traces (http.go).
//
// A trace is started at the edge (the gateway's HTTP middleware), carried
// down through admission, the center's fan-out, the cluster's
// scatter/gather, and each source's executor via context.Context, and
// finished where it began. Spans record stage names from a small closed
// taxonomy (docs/OBSERVABILITY.md) so the per-stage duration histogram
// dits_trace_stage_seconds stays low-cardinality.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"slices"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID [16]byte

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for isZero(id) {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func isZero(id TraceID) bool { return id == TraceID{} }

// IsZero reports whether the ID is the zero (absent) trace ID.
func (id TraceID) IsZero() bool { return isZero(id) }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, false
	}
	return id, !id.IsZero()
}

// SpanID identifies one span within a trace. IDs are random so spans
// merged from remote tiers never collide with locally allocated ones.
type SpanID uint64

func newSpanID() SpanID {
	for {
		if id := SpanID(rand.Uint64()); id != 0 {
			return id
		}
	}
}

// Span is one completed stage of a trace. Start is the offset from the
// local trace anchor (never a wall-clock instant, so spans shipped across
// machines are immune to clock skew — the receiver rebases them onto its
// own anchor via Merge).
type Span struct {
	ID       SpanID
	Parent   SpanID // 0 (or the wire parent) for roots
	Name     string // stage name, e.g. "rpc:overlap.search"
	Source   string // optional peer/source/detail label
	Start    time.Duration
	Duration time.Duration
	Err      string // non-empty when the stage failed
	Remote   bool   // recorded on a remote tier and merged in
}

// maxSpans caps a trace's span buffer; a runaway query drops spans (and
// counts the drops) instead of growing without bound. inlineSpans slots
// live inside the Trace itself — almost every real trace fits there, so
// starting a trace costs one allocation; the overflow tier up to maxSpans
// is allocated only by the rare query that outgrows it.
const (
	maxSpans    = 512
	inlineSpans = 64
)

// Trace accumulates the spans of one query. Completed spans are published
// into fixed slots of atomic pointers: recording is an atomic index
// reservation plus one pointer store, so goroutines never contend, and a
// snapshot taken while a straggler goroutine (e.g. an abandoned fail-fast
// fan-out leg) is still finishing is race-free — unpublished slots simply
// read as nil.
type Trace struct {
	id     TraceID
	parent SpanID // wire parent on remote-adopted traces; 0 at the root
	start  time.Time

	n        atomic.Int32
	dropped  atomic.Int32
	spans    [inlineSpans]atomic.Pointer[Span]
	overflow atomic.Pointer[[maxSpans - inlineSpans]atomic.Pointer[Span]]
}

// NewTrace starts a trace with a fresh random ID, anchored at now.
func NewTrace() *Trace {
	return &Trace{id: NewTraceID(), start: time.Now()}
}

// Adopt continues a trace started elsewhere: spans recorded here parent
// (transitively) to the given wire parent span, and their Start offsets
// are relative to this call — the caller that shipped the context rebases
// them when they come back (Merge).
func Adopt(id TraceID, parent SpanID) *Trace {
	return &Trace{id: id, parent: parent, start: time.Now()}
}

// slot returns the publication slot for reserved index i, growing into
// the overflow tier on first use. Concurrent first-growers race one CAS;
// losers adopt the winner's array, so every index maps to one slot.
func (t *Trace) slot(i int) *atomic.Pointer[Span] {
	if i < inlineSpans {
		return &t.spans[i]
	}
	over := t.overflow.Load()
	if over == nil {
		t.overflow.CompareAndSwap(nil, new([maxSpans - inlineSpans]atomic.Pointer[Span]))
		over = t.overflow.Load()
	}
	return &over[i-inlineSpans]
}

// ID returns the trace ID.
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// Offset returns the current offset from the trace anchor.
func (t *Trace) Offset() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Start returns the trace's local anchor instant.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Dropped returns how many spans were discarded because the buffer was
// full.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	return int(t.dropped.Load())
}

// Record publishes one completed span. Safe for concurrent use; nil-safe.
func (t *Trace) Record(s Span) {
	if t == nil {
		return
	}
	i := int(t.n.Add(1)) - 1
	if i >= maxSpans {
		t.dropped.Add(1)
		return
	}
	t.slot(i).Store(&s)
}

// Merge rebases spans recorded on a remote tier onto this trace: base is
// the local offset at which the remote work began (the RPC span's start),
// so remote offsets — relative to the remote anchor — land in local time.
func (t *Trace) Merge(spans []Span, base time.Duration) {
	if t == nil {
		return
	}
	for _, s := range spans {
		s.Start += base
		s.Remote = true
		t.Record(s)
	}
}

// Snapshot returns the published spans, ordered by start offset.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	n := int(t.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		if p := t.slot(i).Load(); p != nil {
			out = append(out, *p)
		}
	}
	slices.SortStableFunc(out, func(a, b Span) int {
		switch {
		case a.Start < b.Start:
			return -1
		case a.Start > b.Start:
			return 1
		default:
			return 0
		}
	})
	return out
}

// ActiveSpan is a stage in progress. End (or EndErr) publishes it; the
// handle stays readable afterwards so the caller can ask its Duration.
// All methods are nil-safe: StartSpan on an untraced context returns a
// nil handle and the instrumented code needs no branches.
type ActiveSpan struct {
	tr       *Trace
	id       SpanID
	parent   SpanID
	name     string
	source   string
	start    time.Duration
	duration time.Duration
	err      string
}

// ID returns the span's ID (0 on a nil handle).
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetSource attaches a peer/source/detail label.
func (s *ActiveSpan) SetSource(src string) {
	if s != nil {
		s.source = src
	}
}

// Start returns the span's start offset from the trace anchor.
func (s *ActiveSpan) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// Duration returns the span's duration once ended.
func (s *ActiveSpan) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.duration
}

// Name returns the span's stage name.
func (s *ActiveSpan) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Err returns the error text the span ended with.
func (s *ActiveSpan) Err() string {
	if s == nil {
		return ""
	}
	return s.err
}

// End publishes the span.
func (s *ActiveSpan) End() { s.EndErr(nil) }

// EndErr publishes the span, recording err's text when non-nil.
func (s *ActiveSpan) EndErr(err error) {
	if s == nil || s.tr == nil {
		return
	}
	s.duration = s.tr.Offset() - s.start
	if err != nil {
		s.err = err.Error()
	}
	s.tr.Record(Span{
		ID: s.id, Parent: s.parent, Name: s.name, Source: s.source,
		Start: s.start, Duration: s.duration, Err: s.err,
	})
	s.tr = nil // publish once; later Ends are no-ops
}

// spanCtx carries the trace and the current span through a context.
type spanCtx struct {
	tr   *Trace
	span SpanID
}

type ctxKey struct{}

// WithTrace returns a context carrying the trace; spans started from it
// parent to the trace's wire parent (0 at the root).
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: tr, span: tr.parent})
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	return sc.tr
}

// Current returns the context's trace and current span ID (the parent any
// new span would get). A nil trace means the context is untraced.
func Current(ctx context.Context) (*Trace, SpanID) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	return sc.tr, sc.span
}

// StartSpan opens a stage under the context's current span and returns a
// derived context under which child stages nest. On an untraced context
// it returns ctx unchanged and a nil handle whose End is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	sc, _ := ctx.Value(ctxKey{}).(spanCtx)
	if sc.tr == nil {
		return ctx, nil
	}
	s := &ActiveSpan{
		tr:     sc.tr,
		id:     newSpanID(),
		parent: sc.span,
		name:   name,
		start:  sc.tr.Offset(),
	}
	return context.WithValue(ctx, ctxKey{}, spanCtx{tr: sc.tr, span: s.id}), s
}
