package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// OpenLogger builds the structured logger the daemons share: slog records
// in text or JSON form (-log-format), written to stderr or appended to a
// file (-log-file). Operational output never goes to stdout: tools started
// with shell redirection should not scatter log files into whatever the
// working directory happens to be. The returned close func releases the
// file, if any.
func OpenLogger(path, format string) (*slog.Logger, func(), error) {
	var out io.Writer = os.Stderr
	closeFn := func() {}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("open -log-file: %w", err)
		}
		out = f
		closeFn = func() { f.Close() }
	}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(out, nil)
	case "json":
		h = slog.NewJSONHandler(out, nil)
	default:
		closeFn()
		return nil, nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
	return slog.New(h), closeFn, nil
}
