package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// The /debug/traces surface (docs/OBSERVABILITY.md):
//
//	GET /debug/traces        → {"slow_threshold_ms":..,"traces":[summary...]}
//	GET /debug/traces?slow=1 → same, slow ring only
//	GET /debug/traces/{id}   → one full trace with its nested span tree
//
// Summaries are newest first. All responses are JSON.

// TraceSummary is one row of the trace listing.
type TraceSummary struct {
	ID         string    `json:"id"`
	Root       string    `json:"root"`
	Err        string    `json:"err,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Dropped    int       `json:"dropped_spans,omitempty"`
}

// TraceDetail is the full form served per trace ID.
type TraceDetail struct {
	TraceSummary
	Tree []*SpanNode `json:"tree"`
}

// SpanNode is one span with its children nested beneath it.
type SpanNode struct {
	Name       string      `json:"name"`
	Source     string      `json:"source,omitempty"`
	StartMs    float64     `json:"start_ms"`
	DurationMs float64     `json:"duration_ms"`
	Err        string      `json:"err,omitempty"`
	Remote     bool        `json:"remote,omitempty"`
	Children   []*SpanNode `json:"children,omitempty"`
}

func summarize(rec *Recorded) TraceSummary {
	return TraceSummary{
		ID:         rec.ID.String(),
		Root:       rec.Root,
		Err:        rec.Err,
		Start:      rec.Start,
		DurationMs: ms(rec.Duration),
		Spans:      len(rec.Spans),
		Dropped:    rec.Dropped,
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// SpanTree nests spans under their parents. Spans whose parent is not in
// the set (the root itself, and spans orphaned by buffer drops) become
// top-level nodes. Input order (by start offset) is preserved among
// siblings.
func SpanTree(spans []Span) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{
			Name: s.Name, Source: s.Source,
			StartMs: ms(s.Start), DurationMs: ms(s.Duration),
			Err: s.Err, Remote: s.Remote,
		}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok && s.Parent != s.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}

// DebugHandler serves the /debug/traces endpoints from the recorder. It
// handles both the bare listing path and the /{id} detail path, so mount
// it at "GET /debug/traces" and "GET /debug/traces/".
func (r *Recorder) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rest := strings.Trim(strings.TrimPrefix(req.URL.Path, "/debug/traces"), "/")
		w.Header().Set("Content-Type", "application/json")
		if rest == "" {
			var recs []*Recorded
			if req.URL.Query().Get("slow") != "" {
				recs = r.Slow()
			} else {
				recs = r.List(0)
			}
			sums := make([]TraceSummary, 0, len(recs))
			for _, rec := range recs {
				sums = append(sums, summarize(rec))
			}
			json.NewEncoder(w).Encode(struct {
				SlowThresholdMs float64        `json:"slow_threshold_ms"`
				Traces          []TraceSummary `json:"traces"`
			}{ms(r.SlowThreshold()), sums})
			return
		}
		id, ok := ParseTraceID(rest)
		if !ok {
			http.Error(w, `{"error":"malformed trace id"}`, http.StatusBadRequest)
			return
		}
		rec := r.Lookup(id)
		if rec == nil {
			http.Error(w, `{"error":"trace not found (evicted or never recorded)"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(TraceDetail{
			TraceSummary: summarize(rec),
			Tree:         SpanTree(rec.Spans),
		})
	})
}
