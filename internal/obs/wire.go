package obs

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"
)

// Wire encodings for the transport's negotiated trace frames
// (docs/PROTOCOL.md, "Trace propagation"). The trace-context frame is
// fixed-width binary — 16 bytes of trace ID followed by 8 bytes of
// big-endian parent span ID — and an empty frame means "untraced". The
// spans frame is a uvarint-packed list of the spans a server completed
// while handling the request, with Start offsets relative to the server's
// own trace anchor; the caller rebases them with Trace.Merge, so no
// wall-clock instant ever crosses the wire.

// ContextSize is the byte length of a non-empty trace-context frame.
const ContextSize = 24

// AppendContext appends the context's trace coordinates (trace ID +
// current span ID) to buf. An untraced context appends nothing — the
// empty frame is the wire form of "no trace".
func AppendContext(buf []byte, ctx context.Context) []byte {
	tr, span := Current(ctx)
	if tr == nil {
		return buf
	}
	id := tr.ID()
	buf = append(buf, id[:]...)
	return binary.BigEndian.AppendUint64(buf, uint64(span))
}

// ParseContext decodes a trace-context frame. ok is false for an empty
// or malformed frame (the request is then served untraced).
func ParseContext(b []byte) (id TraceID, parent SpanID, ok bool) {
	if len(b) != ContextSize {
		return id, 0, false
	}
	copy(id[:], b[:16])
	parent = SpanID(binary.BigEndian.Uint64(b[16:]))
	return id, parent, !id.IsZero()
}

// AppendSpans appends the uvarint-packed span list to buf.
func AppendSpans(buf []byte, spans []Span) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for _, s := range spans {
		buf = binary.AppendUvarint(buf, uint64(s.ID))
		buf = binary.AppendUvarint(buf, uint64(s.Parent))
		buf = appendString(buf, s.Name)
		buf = appendString(buf, s.Source)
		buf = binary.AppendUvarint(buf, uint64(max(s.Start, 0)))
		buf = binary.AppendUvarint(buf, uint64(max(s.Duration, 0)))
		buf = appendString(buf, s.Err)
	}
	return buf
}

// DecodeSpans decodes a span list produced by AppendSpans. An empty
// frame decodes to nil.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) == 0 {
		return nil, nil
	}
	n, b, err := uvarint(b)
	if err != nil {
		return nil, err
	}
	const maxWireSpans = 4 * maxSpans // guard against corrupt counts
	if n > maxWireSpans {
		return nil, fmt.Errorf("obs: span frame claims %d spans", n)
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Span
		var v uint64
		if v, b, err = uvarint(b); err != nil {
			return nil, err
		}
		s.ID = SpanID(v)
		if v, b, err = uvarint(b); err != nil {
			return nil, err
		}
		s.Parent = SpanID(v)
		if s.Name, b, err = decodeString(b); err != nil {
			return nil, err
		}
		if s.Source, b, err = decodeString(b); err != nil {
			return nil, err
		}
		if v, b, err = uvarint(b); err != nil {
			return nil, err
		}
		s.Start = time.Duration(v)
		if v, b, err = uvarint(b); err != nil {
			return nil, err
		}
		s.Duration = time.Duration(v)
		if s.Err, b, err = decodeString(b); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	n, b, err := uvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(b)) {
		return "", nil, fmt.Errorf("obs: truncated span frame")
	}
	return string(b[:n]), b[n:], nil
}

func uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("obs: truncated span frame")
	}
	return v, b[n:], nil
}
