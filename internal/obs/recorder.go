package obs

import (
	"log/slog"
	"sync"
	"time"

	"dits/internal/metrics"
)

// Recorded is one completed trace as kept by the Recorder.
type Recorded struct {
	ID       TraceID
	Root     string // root span's stage name
	Err      string // root span's error, if any
	Start    time.Time
	Duration time.Duration
	Dropped  int
	Spans    []Span
}

// RecorderOptions configure a Recorder. The zero value keeps the last
// DefaultCapacity traces and never flags a trace as slow.
type RecorderOptions struct {
	// Capacity is the completed-trace ring size (default DefaultCapacity).
	Capacity int
	// SlowThreshold marks traces at least this long as slow: they enter a
	// separate ring of the same capacity (so a burst of fast queries
	// cannot evict the evidence) and are dumped to Logger. 0 disables.
	SlowThreshold time.Duration
	// Logger receives one structured record per slow trace (nil = none).
	Logger *slog.Logger
}

// DefaultCapacity is the completed-trace ring size when unset.
const DefaultCapacity = 256

// Recorder keeps the last N completed traces in a ring, tees slow ones
// into a second ring plus a structured log record, and feeds every span
// into the per-stage duration histogram. It is the storage behind
// GET /debug/traces.
type Recorder struct {
	capacity int
	slowAt   time.Duration
	logger   *slog.Logger

	stage *metrics.HistogramVec // dits_trace_stage_seconds
	done  metrics.Counter       // dits_trace_completed_total
	slowN metrics.Counter       // dits_trace_slow_total

	mu   sync.Mutex
	ring []*Recorded // circular, next is the oldest slot
	next int
	slow []*Recorded
	sn   int
}

// NewRecorder builds a recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	return &Recorder{
		capacity: opts.Capacity,
		slowAt:   opts.SlowThreshold,
		logger:   opts.Logger,
		stage:    metrics.NewHistogramVec(metrics.DefLatencyBuckets()),
	}
}

// SlowThreshold returns the configured slow-trace threshold (0 = off).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slowAt
}

// Register exposes the recorder's instruments on a registry.
func (r *Recorder) Register(reg *metrics.Registry) {
	if r == nil {
		return
	}
	reg.RegisterHistogramVec("dits_trace_stage_seconds",
		"Per-stage span durations of completed traces", "stage", r.stage)
	reg.RegisterCounter("dits_trace_completed_total",
		"Traces completed and recorded", &r.done)
	reg.RegisterCounter("dits_trace_slow_total",
		"Completed traces at or over the slow threshold", &r.slowN)
}

// Finish snapshots a finished trace under its ended root span, records
// every stage into the duration histogram, and files the trace into the
// ring(s). Nil-safe on both receiver and trace.
func (r *Recorder) Finish(tr *Trace, root *ActiveSpan) {
	if r == nil || tr == nil {
		return
	}
	rec := &Recorded{
		ID:       tr.ID(),
		Root:     root.Name(),
		Err:      root.Err(),
		Start:    tr.Start(),
		Duration: root.Duration(),
		Dropped:  tr.Dropped(),
		Spans:    tr.Snapshot(),
	}
	for _, s := range rec.Spans {
		r.stage.With(s.Name).Observe(s.Duration.Seconds())
	}
	r.done.Inc()
	slow := r.slowAt > 0 && rec.Duration >= r.slowAt
	r.mu.Lock()
	r.ring = push(r.ring, &r.next, r.capacity, rec)
	if slow {
		r.slow = push(r.slow, &r.sn, r.capacity, rec)
	}
	r.mu.Unlock()
	if slow {
		r.slowN.Inc()
		if r.logger != nil {
			r.logger.Warn("slow query",
				"trace_id", rec.ID.String(),
				"root", rec.Root,
				"duration_ms", float64(rec.Duration)/float64(time.Millisecond),
				"spans", SpanTree(rec.Spans),
				"dropped_spans", rec.Dropped,
				"err", rec.Err,
			)
		}
	}
}

// push inserts into a fixed-capacity ring, advancing the cursor.
func push(ring []*Recorded, next *int, capacity int, rec *Recorded) []*Recorded {
	if len(ring) < capacity {
		return append(ring, rec)
	}
	ring[*next] = rec
	*next = (*next + 1) % capacity
	return ring
}

// newestFirst copies a ring into newest-first order. Caller holds r.mu.
func newestFirst(ring []*Recorded, next int) []*Recorded {
	out := make([]*Recorded, 0, len(ring))
	for i := len(ring) - 1; i >= 0; i-- {
		out = append(out, ring[(next+i)%len(ring)])
	}
	return out
}

// List returns up to n completed traces, newest first (n <= 0 = all).
func (r *Recorder) List(n int) []*Recorded {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := newestFirst(r.ring, r.next)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slow returns the slow-trace ring, newest first.
func (r *Recorder) Slow() []*Recorded {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return newestFirst(r.slow, r.sn)
}

// Lookup finds a completed trace by ID, or nil. Both rings are searched;
// a slow trace stays findable after fast traffic lapped the main ring.
func (r *Recorder) Lookup(id TraceID) *Recorded {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ring := range [][]*Recorded{r.ring, r.slow} {
		for _, rec := range ring {
			if rec != nil && rec.ID == id {
				return rec
			}
		}
	}
	return nil
}
