package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Fatal("ParseTraceID accepted garbage")
	}
	if _, ok := ParseTraceID(strings.Repeat("0", 32)); ok {
		t.Fatal("ParseTraceID accepted the zero ID")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	cctx, child := StartSpan(ctx, "child")
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.EndErr(errors.New("boom"))
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Error("child not parented to root")
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Error("grandchild not parented to child")
	}
	if byName["root"].Parent != 0 {
		t.Error("root should have zero parent")
	}
	if byName["child"].Err != "boom" {
		t.Errorf("child err = %q", byName["child"].Err)
	}
}

func TestUntracedContextIsFree(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("StartSpan on untraced ctx returned a live span")
	}
	sp.End() // must not panic
	sp.EndErr(errors.New("x"))
	sp.SetSource("y")
	if TraceFrom(ctx) != nil {
		t.Fatal("untraced ctx grew a trace")
	}
}

func TestConcurrentRecordAndSnapshotRaceFree(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_, sp := StartSpan(ctx, fmt.Sprintf("g%d", g))
				sp.End()
			}
		}(g)
	}
	// Snapshot concurrently with the writers: straggler goroutines must
	// not race a finish-time snapshot.
	for i := 0; i < 50; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	if got := len(tr.Snapshot()) + tr.Dropped(); got != 800 {
		t.Fatalf("snapshot+dropped = %d, want 800", got)
	}
}

func TestSpanBufferDrops(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpans+10; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.End()
	}
	if tr.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped())
	}
	if len(tr.Snapshot()) != maxSpans {
		t.Fatalf("snapshot kept %d spans, want %d", len(tr.Snapshot()), maxSpans)
	}
}

func TestWireSpanRoundTrip(t *testing.T) {
	in := []Span{
		{ID: 1, Parent: 0, Name: "serve:overlap.search", Start: 10 * time.Microsecond, Duration: time.Millisecond},
		{ID: 2, Parent: 1, Name: "exec.overlap", Source: "Transit", Start: 20 * time.Microsecond, Duration: 900 * time.Microsecond, Err: "context deadline exceeded"},
	}
	buf := AppendSpans(nil, in)
	out, err := DecodeSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans", len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("span %d: got %+v want %+v", i, out[i], in[i])
		}
	}
	// Truncated frames must error, not panic.
	for cut := 1; cut < len(buf); cut += 7 {
		if _, err := DecodeSpans(buf[:cut]); err == nil && cut < len(buf) {
			// Some prefixes happen to decode cleanly (count boundary); only
			// require no panic and an error on clearly-truncated strings.
			_ = err
		}
	}
}

func TestWireContextRoundTrip(t *testing.T) {
	if got := AppendContext(nil, context.Background()); len(got) != 0 {
		t.Fatalf("untraced context encoded %d bytes", len(got))
	}
	tr := NewTrace()
	ctx, sp := StartSpan(WithTrace(context.Background(), tr), "rpc")
	buf := AppendContext(nil, ctx)
	id, parent, ok := ParseContext(buf)
	if !ok || id != tr.ID() || parent != sp.ID() {
		t.Fatalf("ParseContext = %v %v %v, want %v %v", id, parent, ok, tr.ID(), sp.ID())
	}
	if _, _, ok := ParseContext(buf[:10]); ok {
		t.Fatal("ParseContext accepted a short frame")
	}
}

func TestAdoptAndMerge(t *testing.T) {
	// Caller side: a trace with an RPC span.
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, rpc := StartSpan(ctx, "rpc:overlap.search")
	rpcStart := tr.Offset()

	// Server side: adopt the shipped context, do work, ship spans back.
	remote := Adopt(tr.ID(), rpc.ID())
	rctx := WithTrace(context.Background(), remote)
	_, serve := StartSpan(rctx, "serve:overlap.search")
	serve.End()
	shipped := remote.Snapshot()

	tr.Merge(shipped, rpcStart)
	rpc.End()

	spans := tr.Snapshot()
	var merged *Span
	for i := range spans {
		if spans[i].Name == "serve:overlap.search" {
			merged = &spans[i]
		}
	}
	if merged == nil {
		t.Fatal("merged span missing")
	}
	if !merged.Remote {
		t.Error("merged span not flagged Remote")
	}
	if merged.Parent != rpc.ID() {
		t.Error("merged span not parented to the RPC span")
	}
	if merged.Start < rpcStart {
		t.Error("merged span start not rebased")
	}
}

func TestRecorderRingSlowAndLookup(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Capacity: 4, SlowThreshold: 5 * time.Millisecond})
	var want []TraceID
	for i := 0; i < 6; i++ {
		tr := NewTrace()
		ctx, root := StartSpan(WithTrace(context.Background(), tr), "http.overlap")
		_, sp := StartSpan(ctx, "cache.probe")
		sp.End()
		if i == 0 {
			time.Sleep(6 * time.Millisecond) // only the first trace is slow
		}
		root.End()
		rec.Finish(tr, root)
		want = append(want, tr.ID())
	}
	list := rec.List(0)
	if len(list) != 4 {
		t.Fatalf("ring holds %d, want 4", len(list))
	}
	if list[0].ID != want[5] {
		t.Error("listing is not newest-first")
	}
	if rec.Lookup(want[0]) == nil {
		t.Error("evicted-from-main-ring trace should still be in the slow ring")
	}
	if rec.Lookup(want[1]) != nil {
		t.Error("fast evicted trace should be gone")
	}
	if got := rec.Lookup(want[5]); got == nil || len(got.Spans) != 2 {
		t.Fatalf("Lookup newest = %+v", got)
	}
	if len(rec.Slow()) != 1 {
		t.Errorf("slow ring holds %d, want 1", len(rec.Slow()))
	}
}

func TestDebugHandler(t *testing.T) {
	rec := NewRecorder(RecorderOptions{Capacity: 8})
	tr := NewTrace()
	ctx, root := StartSpan(WithTrace(context.Background(), tr), "http.coverage")
	_, sp := StartSpan(ctx, "rpc:coverage.best")
	sp.SetSource("Transit")
	sp.End()
	root.End()
	rec.Finish(tr, root)

	h := rec.DebugHandler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var listing struct {
		Traces []TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Traces) != 1 || listing.Traces[0].Root != "http.coverage" {
		t.Fatalf("listing = %+v", listing)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces/"+tr.ID().String(), nil))
	if w.Code != 200 {
		t.Fatalf("detail status %d: %s", w.Code, w.Body)
	}
	var detail TraceDetail
	if err := json.Unmarshal(w.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if len(detail.Tree) != 1 || detail.Tree[0].Name != "http.coverage" {
		t.Fatalf("tree = %+v", detail.Tree)
	}
	if len(detail.Tree[0].Children) != 1 || detail.Tree[0].Children[0].Source != "Transit" {
		t.Fatalf("children = %+v", detail.Tree[0].Children)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces/deadbeef", nil))
	if w.Code != 400 {
		t.Fatalf("malformed id status = %d", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces/"+NewTraceID().String(), nil))
	if w.Code != 404 {
		t.Fatalf("unknown id status = %d", w.Code)
	}
}
